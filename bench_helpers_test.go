package coda_test

import (
	"context"
	"math/rand"

	"coda/internal/core"
	"coda/internal/crossval"
	"coda/internal/dataset"
	"coda/internal/metrics"
	"coda/internal/mlmodels"
	"coda/internal/preprocess"
)

// runFig3Search executes the Figure 3 graph search once with the given
// worker-pool width — the workload behind the parallelism ablation.
func runFig3Search(seed int64, workers int) error {
	rng := rand.New(rand.NewSource(seed))
	ds, _, err := dataset.MakeRegression(dataset.RegressionSpec{
		Samples: 120, Features: 6, Informative: 3, Noise: 3,
	}, rng)
	if err != nil {
		return err
	}
	g := core.NewGraph()
	g.AddFeatureScalers(
		preprocess.NewMinMaxScaler(),
		preprocess.NewRobustScaler(),
		preprocess.NewStandardScaler(),
		preprocess.NewNoOp(),
	)
	g.AddFeatureSelectors(
		[]core.Transformer{preprocess.NewCovariance(), preprocess.NewPCA(3)},
		[]core.Transformer{preprocess.NewSelectKBest(3)},
		[]core.Transformer{preprocess.NewNoOp()},
	)
	g.AddRegressionModels(
		mlmodels.NewRandomForest(mlmodels.TreeRegression, 10),
		mlmodels.NewKNN(mlmodels.KNNRegression, 5),
		mlmodels.NewDecisionTree(mlmodels.TreeRegression),
	)
	scorer, err := metrics.ScorerByName("rmse")
	if err != nil {
		return err
	}
	_, err = core.Search(context.Background(), g, ds, core.SearchOptions{
		Splitter:    crossval.KFold{K: 3, Shuffle: true},
		Scorer:      scorer,
		Parallelism: workers,
		Seed:        seed,
	})
	return err
}
