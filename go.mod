module coda

go 1.22
