package coda_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"coda/internal/core"
	"coda/internal/crossval"
	"coda/internal/dataset"
	"coda/internal/metrics"
	"coda/internal/mlmodels"
	"coda/internal/preprocess"
)

// prefixBenchFolds is the cross-validation width of the prefix-cache
// benchmark search (3 scalers x 3 selectors x 3 estimators x 5 folds).
const prefixBenchFolds = 5

// prefixBenchGraph builds the benchmark's TEG: expensive shared
// transformer stages (robust scaling sorts every column; covariance+PCA
// runs an eigendecomposition) feeding deliberately cheap estimators, so
// the prefix work the cache eliminates dominates each unit's cost.
func prefixBenchGraph() *core.Graph {
	g := core.NewGraph()
	g.AddFeatureScalers(
		preprocess.NewRobustScaler(),
		preprocess.NewStandardScaler(),
		preprocess.NewMinMaxScaler(),
	)
	g.AddFeatureSelectors(
		[]core.Transformer{preprocess.NewCovariance(), preprocess.NewPCA(12)},
		[]core.Transformer{preprocess.NewCovariance(), preprocess.NewPCA(6)},
		[]core.Transformer{preprocess.NewSelectKBest(12)},
	)
	g.AddRegressionModels(
		mlmodels.NewLinearRegression(),
		mlmodels.NewRidge(0.1),
		mlmodels.NewRidge(1),
	)
	return g
}

// prefixBenchDataset is wide enough (48 features) that scaler and
// PCA fits move real data.
func prefixBenchDataset(b *testing.B, seed int64) *dataset.Dataset {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds, _, err := dataset.MakeRegression(dataset.RegressionSpec{
		Samples: 240, Features: 48, Informative: 12, Noise: 2,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// distinctFoldPrefixPairs counts the distinct (fold, prefix spec) pairs
// the graph's pipelines can request — computed independently of the
// cache so the fits gate below cannot be fooled by its own accounting.
func distinctFoldPrefixPairs(b *testing.B, g *core.Graph, folds int) int64 {
	b.Helper()
	specs := map[string]struct{}{}
	for _, path := range g.Paths() {
		p, err := core.NewPipeline(path)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range p.PrefixSpecs() {
			specs[s] = struct{}{}
		}
	}
	return int64(len(specs) * folds)
}

func runPrefixBenchSearch(b *testing.B, seed int64, disableCache bool) *core.SearchResult {
	b.Helper()
	ds := prefixBenchDataset(b, seed)
	scorer, err := metrics.ScorerByName("rmse")
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Search(context.Background(), prefixBenchGraph(), ds, core.SearchOptions{
		Splitter:           crossval.KFold{K: prefixBenchFolds, Shuffle: true},
		Scorer:             scorer,
		Seed:               seed,
		DisablePrefixCache: disableCache,
	})
	if err != nil {
		b.Fatal(err)
	}
	if res.Best == nil {
		b.Fatal("no pipeline succeeded")
	}
	return res
}

// BenchmarkPrefixCacheSearch A/Bs the shared-prefix cache on the
// 3x3x3x5-fold search. The cache-on run must produce the same winner as
// the naive run bit for bit, hit the cache at least once, and — absent
// evictions — perform no more prefix fits than there are distinct
// (fold, prefix) pairs. CI runs this with -benchtime=1x as the
// redundant-work regression gate.
func BenchmarkPrefixCacheSearch(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"cache-on", false},
		{"cache-off", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			// The fits gate's expected pair count is derived outside the
			// timed region so the measurement is the search alone.
			want := distinctFoldPrefixPairs(b, prefixBenchGraph(), prefixBenchFolds)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := runPrefixBenchSearch(b, int64(i+1), mode.disable)
				if mode.disable {
					continue
				}
				st := res.Prefix
				if st.Hits == 0 {
					b.Fatalf("prefix cache never hit: %+v", st)
				}
				if st.Evictions == 0 && st.Fits > want {
					b.Fatalf("cached search fitted %d prefixes for only %d distinct (fold,prefix) pairs", st.Fits, want)
				}
				b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses), "hit-rate")
			}
		})
	}
}

// BenchmarkPrefixCacheEquivalence is the bench-shaped twin of the core
// equivalence property: one cache-on and one cache-off search per
// iteration whose winners must agree bit for bit. Kept alongside the
// perf benchmark so a CI bench run also revalidates correctness on the
// exact workload being timed.
func BenchmarkPrefixCacheEquivalence(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		on := runPrefixBenchSearch(b, int64(i+1), false)
		off := runPrefixBenchSearch(b, int64(i+1), true)
		if on.Best.Index != off.Best.Index ||
			math.Float64bits(on.Best.Mean) != math.Float64bits(off.Best.Mean) {
			b.Fatalf("winner diverged: cached #%d %v vs naive #%d %v",
				on.Best.Index, on.Best.Mean, off.Best.Index, off.Best.Mean)
		}
		for u := range on.Units {
			a, c := on.Units[u], off.Units[u]
			if len(a.Scores) != len(c.Scores) {
				b.Fatalf("unit %d fold count diverged", u)
			}
			for f := range a.Scores {
				if math.Float64bits(a.Scores[f]) != math.Float64bits(c.Scores[f]) {
					b.Fatalf("unit %d fold %d score diverged: %v vs %v", u, f, a.Scores[f], c.Scores[f])
				}
			}
		}
	}
}
