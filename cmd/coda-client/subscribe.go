package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"time"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/httpapi"
	"coda/internal/lifecycle"
	"coda/internal/mlmodels"
	"coda/internal/replication"
	"coda/internal/store"
	"coda/internal/tswindow"
)

// errSubscribeDone ends the stream loop once -count frames have arrived.
var errSubscribeDone = errors.New("subscribe: frame count reached")

// runSubscribe implements `coda-client subscribe`: take a lease, follow
// the push stream (SSE by default, long-poll with -poll), auto-renew at
// half-life, ack every frame, and — when a recompute trigger is armed —
// re-pull the object each time the accumulated change crosses the
// threshold, the push-driven alternative to polling for staleness.
func runSubscribe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("subscribe", flag.ExitOnError)
	var (
		server     = fs.String("server", "", "store server URL")
		key        = fs.String("key", "", "object key to watch")
		clientID   = fs.String("client", "cli", "client id on the lease")
		mode       = fs.String("mode", "notify", "push mode: value | delta | notify")
		ttl        = fs.Duration("ttl", time.Minute, "lease duration (auto-renewed at half-life)")
		count      = fs.Int("count", 0, "exit after this many update frames (0 = run until interrupted)")
		poll       = fs.Bool("poll", false, "long-poll instead of streaming over SSE")
		recomputeN = fs.Int("recompute-every", 0, "re-pull after this many pushed updates (0 disables the trigger)")
		recomputeB = fs.Int64("recompute-bytes", 0, "re-pull after this many changed bytes (0 disables the trigger)")
		lcSub      = fs.Bool("lifecycle-subscribe", false, "treat the object as a CSV series and keep a deployed AR model retrained from the notification stream (needs a -recompute-* trigger)")
		lcHistory  = fs.Int("lifecycle-history", 3, "AR model history for -lifecycle-subscribe")
	)
	ft := addFaultFlags(fs)
	lf := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := lf.setup(); err != nil {
		return err
	}
	if *server == "" || *key == "" {
		return fmt.Errorf("subscribe needs -server and -key")
	}
	c := ft.client(*server, *clientID)

	rep := store.NewReplica()
	// Seed the replica so delta leases start from a known version.
	have := uint64(0)
	if err := c.PullObject(ctx, rep, *key); err == nil {
		have = rep.VersionOf(*key)
	} else if *lcSub {
		return fmt.Errorf("subscribe: -lifecycle-subscribe needs an existing object to train on: %w", err)
	}
	info, err := c.Subscribe(ctx, *key, *mode, *ttl, have)
	if err != nil {
		return err
	}
	fmt.Printf("lease %s on %q mode=%s ttl=%s current_version=%d\n",
		info.LeaseID, *key, info.Mode, *ttl, info.CurrentVersion)
	defer func() {
		// Cancel with a fresh context: the interrupt that ended the loop
		// already cancelled ctx.
		cctx, done := context.WithTimeout(context.Background(), 5*time.Second)
		defer done()
		if err := c.CancelLease(cctx, info.LeaseID); err != nil {
			slog.Warn("cancelling lease", "lease", info.LeaseID, "err", err)
		}
	}()

	// Change-detection trigger fed by the notification stream.
	var trig replication.Trigger
	switch {
	case *recomputeN > 0:
		trig = replication.CountTrigger{N: *recomputeN}
	case *recomputeB > 0:
		trig = replication.BytesTrigger{N: *recomputeB}
	}

	// parseSeries decodes the replica's current object bytes as a CSV
	// series for lifecycle retraining.
	parseSeries := func() (*dataset.Dataset, error) {
		data, ok := rep.Data(*key)
		if !ok {
			return nil, fmt.Errorf("object %q not in replica", *key)
		}
		return dataset.ReadCSV(bytes.NewReader(data), "")
	}

	var (
		mon *replication.Monitor
		mgr *lifecycle.Manager
	)
	switch {
	case *lcSub:
		// Model life-cycle management over the push stream: a deployed AR
		// pipeline is retrained from freshly pulled data each time the
		// change-detection trigger fires.
		if trig == nil {
			return fmt.Errorf("subscribe: -lifecycle-subscribe needs -recompute-every or -recompute-bytes")
		}
		mgr, err = lifecycle.NewManager(arPipelineBuilder(*lcHistory), trig)
		if err != nil {
			return err
		}
		initial, err := parseSeries()
		if err != nil {
			return fmt.Errorf("subscribe: parsing object for lifecycle training: %w", err)
		}
		if err := mgr.Train(initial); err != nil {
			return err
		}
		fmt.Printf("lifecycle: AR(%d) pipeline trained on %d samples of %q\n",
			*lcHistory, initial.NumSamples(), *key)
	case trig != nil:
		mon = replication.NewMonitor(trig)
	}

	// Renew at half-life so the lease outlives the stream, not vice versa.
	renewCtx, stopRenew := context.WithCancel(ctx)
	defer stopRenew()
	go func() {
		t := time.NewTicker(*ttl / 2)
		defer t.Stop()
		for {
			select {
			case <-renewCtx.Done():
				return
			case <-t.C:
				if _, err := c.RenewLease(renewCtx, info.LeaseID, *ttl); err != nil {
					if renewCtx.Err() == nil {
						slog.Warn("lease renewal failed", "lease", info.LeaseID, "err", err)
					}
					return
				}
			}
		}
	}()

	seen := 0
	handle := func(n httpapi.Notification) error {
		seen++
		changed := n.ChangedBytes
		if n.Full != "" || n.Delta != "" {
			reply, err := n.Reply()
			if err != nil {
				return err
			}
			if changed == 0 {
				changed = reply.WireBytes()
			}
			if err := rep.ApplyReply(reply); err != nil {
				return fmt.Errorf("applying pushed %s: %w", reply.Kind(), err)
			}
			data, _ := rep.Data(*key)
			fmt.Printf("update %q v%d (%s, %d publishes coalesced, %d bytes on the wire, object now %d bytes)\n",
				*key, n.Version, reply.Kind(), n.Coalesced, reply.WireBytes(), len(data))
		} else {
			fmt.Printf("notify %q v%d (%d publishes coalesced, ~%d bytes changed)\n",
				*key, n.Version, n.Coalesced, n.ChangedBytes)
		}
		if err := c.AckLease(ctx, info.LeaseID, n.Version); err != nil {
			slog.Warn("acking frame", "lease", info.LeaseID, "version", n.Version, "err", err)
		}
		if mgr != nil {
			did, err := mgr.ObserveUpdate(replication.Update{
				Key: n.Key, Version: n.Version, Notify: true,
				Coalesced: n.Coalesced, ChangedBytes: changed,
			}, func() (*dataset.Dataset, error) {
				if err := c.PullObject(ctx, rep, *key); err != nil {
					return nil, err
				}
				return parseSeries()
			})
			switch {
			case err != nil:
				slog.Warn("lifecycle retrain failed", "key", *key, "err", err)
			case did:
				s := mgr.PendingUpdates()
				fmt.Printf("retrain #%d: trigger fired, model refit on %q v%d (pending now %d updates / %d bytes)\n",
					mgr.Retrains(), *key, rep.VersionOf(*key), s.Count, s.Bytes)
			}
		}
		if mon != nil {
			mon.ObserveUpdate(replication.Update{
				Key: n.Key, Version: n.Version, Notify: true,
				Coalesced: n.Coalesced, ChangedBytes: changed,
			})
			if mon.Check() {
				if err := c.PullObject(ctx, rep, *key); err != nil {
					slog.Warn("recompute pull failed", "key", *key, "err", err)
				} else {
					s := mon.Stats()
					fmt.Printf("recompute #%d: trigger fired after %d updates / %d bytes, pulled %q v%d\n",
						mon.Recomputes()+1, s.Count, s.Bytes, *key, rep.VersionOf(*key))
				}
				mon.Reset()
			}
		}
		if *count > 0 && seen >= *count {
			return errSubscribeDone
		}
		return nil
	}

	if *poll {
		for {
			n, ok, err := c.PollLease(ctx, info.LeaseID, 25*time.Second)
			if err != nil {
				if ctx.Err() != nil {
					return nil
				}
				return err
			}
			if !ok {
				continue
			}
			if err := handle(*n); err != nil {
				if errors.Is(err, errSubscribeDone) {
					return nil
				}
				return err
			}
		}
	}
	err = c.StreamLease(ctx, info.LeaseID, handle)
	switch {
	case errors.Is(err, errSubscribeDone), errors.Is(err, context.Canceled):
		return nil
	case errors.Is(err, httpapi.ErrLeaseGone):
		return fmt.Errorf("lease expired server-side; re-run subscribe")
	default:
		return err
	}
}

// arPipelineBuilder returns the lifecycle manager's fresh-pipeline factory:
// TS-as-is preprocessing into an AR(history) model on series column 0.
func arPipelineBuilder(history int) func() *core.Pipeline {
	return func() *core.Pipeline {
		g := core.NewGraph()
		g.AddTransformerStage("view", tswindow.NewTSAsIs(1, 0))
		g.AddEstimatorStage("model", mlmodels.NewARModel(history, 0))
		if err := g.Finalize(); err != nil {
			return nil
		}
		p, err := core.NewPipeline(g.Paths()[0])
		if err != nil {
			return nil
		}
		return p
	}
}
