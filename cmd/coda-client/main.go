// Command coda-client is an analytics client node (Figure 1). It runs
// Transformer-Estimator-Graph searches over CSV or synthetic data —
// cooperating through a remote DARR when -server is given — and manages
// versioned objects in a remote home data store.
//
// Usage:
//
//	coda-client search -data train.csv -target y -metric rmse -k 10
//	coda-client search -synthetic regression -server http://host:8080 -client alice
//	coda-client search -synthetic timeseries -metric rmse
//	coda-client query  -server http://host:8080 -fingerprint <fp>
//	coda-client put    -server http://host:8080 -key data -file blob.bin
//	coda-client pull   -server http://host:8080 -key data -out blob.bin
//	coda-client serve  -data train.csv -target y -addr :9090
//
// subscribe takes a lease on an object and follows its update stream
// (Section III's push modes: value, delta, or notify), renewing the lease
// at half-life and acknowledging each frame. With -recompute-every or
// -recompute-bytes, a change-detection trigger rides the notification
// stream and re-pulls the object when enough change has accumulated —
// push-driven re-analytics instead of polling:
//
//	coda-client subscribe -server http://host:8080 -key data -mode notify -recompute-every 10
//	coda-client subscribe -server http://host:8080 -key data -mode delta -count 5
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"coda/internal/core"
	"coda/internal/crossval"
	"coda/internal/dataset"
	"coda/internal/httpapi"
	"coda/internal/metrics"
	"coda/internal/mlmodels"
	"coda/internal/nn"
	"coda/internal/obs"
	"coda/internal/obs/trace"
	"coda/internal/preprocess"
	"coda/internal/retry"
	"coda/internal/sim"
	"coda/internal/store"
	"coda/internal/tsgraph"
	"coda/internal/webservice"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Interrupts cancel in-flight DARR and object-store traffic via the
	// context threaded through every client call.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "search":
		err = runSearch(ctx, os.Args[2:])
	case "query":
		err = runQuery(ctx, os.Args[2:])
	case "put":
		err = runPut(ctx, os.Args[2:])
	case "pull":
		err = runPull(ctx, os.Args[2:])
	case "subscribe":
		err = runSubscribe(ctx, os.Args[2:])
	case "serve":
		err = runServe(ctx, os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "coda-client:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: coda-client <search|query|put|pull|subscribe|serve> [flags]")
}

// logFlags is the observability flag surface shared by every subcommand:
// structured-log level/format, an optional pprof/metrics listener, and
// the tracing knobs (head sampling, slow capture, ring size).
type logFlags struct {
	level       *string
	format      *string
	debugAddr   *string
	traceSample *float64
	traceSlowMS *int
	traceRing   *int
}

func addLogFlags(fs *flag.FlagSet) *logFlags {
	return &logFlags{
		level:       fs.String("log-level", "info", "log level: debug|info|warn|error (debug logs every remote call)"),
		format:      fs.String("log-format", "text", "log format: text|json"),
		debugAddr:   fs.String("debug-addr", "", "optional listener for net/http/pprof, /metrics, /healthz and /debug/traces (e.g. :6061)"),
		traceSample: fs.Float64("trace-sample", 1.0, "fraction of traces kept by head sampling (slow traces are always kept)"),
		traceSlowMS: fs.Int("trace-slow-ms", 500, "always keep traces at least this slow, in milliseconds (0 disables slow capture)"),
		traceRing:   fs.Int("trace-ring", trace.DefaultCapacity, "completed traces retained for /debug/traces"),
	}
}

// setup configures the process logger and tracer and, when requested,
// starts the pprof/metrics debug listener.
func (lf *logFlags) setup() error {
	if err := obs.SetupDefaultLogger(*lf.level, *lf.format); err != nil {
		return err
	}
	trace.SetSampleRate(*lf.traceSample)
	trace.SetSlowThreshold(time.Duration(*lf.traceSlowMS) * time.Millisecond)
	if *lf.traceRing != trace.DefaultCapacity {
		trace.SetDefaultRecorder(trace.NewRecorder(*lf.traceRing))
	}
	if *lf.debugAddr != "" {
		addr := *lf.debugAddr
		go func() {
			slog.Info("debug server listening", "addr", addr,
				"endpoints", "/debug/pprof/ /metrics /healthz /debug/traces")
			dmux := obs.DebugMux()
			dmux.Handle("/debug/traces", trace.Handler())
			if err := http.ListenAndServe(addr, dmux); err != nil {
				slog.Error("debug server failed", "err", err)
			}
		}()
	}
	return nil
}

// runServe trains the best pipeline for a dataset and exposes it as an AI
// web service (Figure 1's third party): POST {"rows": [[...], ...]} to /score.
func runServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		dataPath = fs.String("data", "", "CSV file with a header row")
		target   = fs.String("target", "", "target column name in the CSV")
		addr     = fs.String("addr", ":9090", "listen address")
		metric   = fs.String("metric", "rmse", "scoring metric for model selection")
		k        = fs.Int("k", 5, "cross-validation folds")
		seed     = fs.Int64("seed", 1, "search seed")
		server   = fs.String("server", "", "DARR server URL: run the model-selection search cooperatively")
		clientID = fs.String("client", "serve", "client id for DARR claims")
	)
	ft := addFaultFlags(fs)
	lf := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := lf.setup(); err != nil {
		return err
	}
	var ds *dataset.Dataset
	if *dataPath != "" {
		f, err := os.Open(*dataPath)
		if err != nil {
			return fmt.Errorf("opening data: %w", err)
		}
		defer f.Close()
		ds, err = dataset.ReadCSV(f, *target)
		if err != nil {
			return err
		}
	} else {
		rng := rand.New(rand.NewSource(*seed))
		var err error
		ds, _, err = dataset.MakeRegression(dataset.RegressionSpec{Samples: 300, Features: 6, Informative: 3, Noise: 3}, rng)
		if err != nil {
			return err
		}
	}
	scorer, err := metrics.ScorerByName(*metric)
	if err != nil {
		return err
	}
	opts := core.SearchOptions{
		Splitter: crossval.KFold{K: *k, Shuffle: true},
		Scorer:   scorer,
		Seed:     *seed,
	}
	if *server != "" {
		hc := ft.client(*server, *clientID)
		hc.Metric = *metric
		hc.EnablePublishQueue(httpapi.DefaultPublishBatchSize, httpapi.DefaultPublishFlushInterval)
		defer hc.Close()
		opts.Store = hc
		opts.SkipClaimed = true
	}
	res, err := core.Search(ctx, regressionGraph(), ds, opts)
	if err != nil {
		return err
	}
	if res.BestPipeline == nil {
		return fmt.Errorf("no pipeline succeeded on the data")
	}
	fmt.Printf("serving %s (%s=%.5g) on %s\n", res.Best.Spec, *metric, res.Best.Mean, *addr)
	printProfile(res.Profile)
	fmt.Println(`POST {"rows": [[...feature values...], ...]} to /score`)
	mux := http.NewServeMux()
	mux.Handle("/score", webservice.Handler(pipelineEstimator{res.BestPipeline}))
	mux.Handle("/metrics", obs.MetricsHandler())
	mux.Handle("/healthz", obs.HealthHandler(nil))
	mux.Handle("/debug/traces", trace.Handler())
	// The middleware assigns each scoring request an X-Coda-Request-Id
	// and threads it into the handler's logs; the recovery layer turns a
	// scoring panic into a structured 500 instead of a dead connection.
	return http.ListenAndServe(*addr, obs.Middleware(obs.Recover(mux, nil), nil))
}

// printProfile summarizes the search's critical-path breakdown on stdout.
func printProfile(p core.SearchProfile) {
	if p.Total <= 0 {
		return
	}
	fmt.Printf("critical path: compute=%s darr_wait=%s store_wait=%s queue=%s other=%s (total %s)\n",
		p.Compute.Round(time.Millisecond), p.DARRWait.Round(time.Millisecond),
		p.StoreWait.Round(time.Millisecond), p.Queue.Round(time.Millisecond),
		p.Other.Round(time.Millisecond), p.Total.Round(time.Millisecond))
}

// pipelineEstimator adapts a fitted Pipeline to core.Estimator for the
// webservice handler (Fit re-fits the whole pipeline; Predict runs the
// transform-then-predict path).
type pipelineEstimator struct {
	p *core.Pipeline
}

func (pe pipelineEstimator) Name() string                         { return "served-pipeline" }
func (pe pipelineEstimator) SetParam(key string, _ float64) error { return fmt.Errorf("no params") }
func (pe pipelineEstimator) Params() map[string]float64           { return nil }
func (pe pipelineEstimator) Clone() core.Estimator                { return pipelineEstimator{pe.p.Clone()} }
func (pe pipelineEstimator) Fit(ds *dataset.Dataset) error        { return pe.p.Fit(ds) }
func (pe pipelineEstimator) Predict(ds *dataset.Dataset) ([]float64, error) {
	return pe.p.Predict(ds)
}

func runSearch(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	var (
		dataPath  = fs.String("data", "", "CSV file with a header row")
		target    = fs.String("target", "", "target column name in the CSV")
		synthetic = fs.String("synthetic", "", "use synthetic data: regression | timeseries")
		metric    = fs.String("metric", "rmse", "scoring metric")
		k         = fs.Int("k", 5, "cross-validation folds")
		server    = fs.String("server", "", "DARR server URL for cooperative search")
		clientID  = fs.String("client", "cli", "client id for DARR claims")
		noBatch   = fs.Bool("no-batch", false, "disable batched DARR cooperation (per-unit lookup/claim/publish round trips)")
		pubBatch  = fs.Int("publish-batch", httpapi.DefaultPublishBatchSize, "queued publishes per coalesced batch upload")
		pubFlush  = fs.Duration("publish-flush", httpapi.DefaultPublishFlushInterval, "max age of a queued publish before an async flush")
		seed      = fs.Int64("seed", 1, "search seed")
		parallel  = fs.Int("parallelism", 0, "concurrent pipeline evaluations (0 = one per CPU)")
		epochs    = fs.Int("epochs", 20, "network epochs (timeseries graph)")
		precision = fs.String("nn-precision", "f64", "network compute precision: f32 | f64 (timeseries graph)")
		top       = fs.Int("top", 5, "pipelines to print")
		cacheMB   = fs.Int("prefix-cache-mb", core.DefaultPrefixCacheMB, "shared-prefix cache capacity in MiB")
		noCache   = fs.Bool("no-prefix-cache", false, "disable the shared-prefix cache (re-fit every transformer prefix per unit, for A/B runs)")
	)
	fs.IntVar(parallel, "parallel", 0, "deprecated alias for -parallelism")
	ft := addFaultFlags(fs)
	lf := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := lf.setup(); err != nil {
		return err
	}
	prec, perr := nn.ParsePrecision(*precision)
	if perr != nil {
		return perr
	}

	// One request id covers the whole cooperative search: every DARR call
	// it makes carries this id in X-Coda-Request-Id, so client and server
	// logs correlate end to end.
	ctx, requestID := obs.EnsureRequestID(ctx)

	var (
		ds  *dataset.Dataset
		g   *core.Graph
		err error
	)
	switch {
	case *dataPath != "":
		f, err := os.Open(*dataPath)
		if err != nil {
			return fmt.Errorf("opening data: %w", err)
		}
		defer f.Close()
		ds, err = dataset.ReadCSV(f, *target)
		if err != nil {
			return err
		}
		g = regressionGraph()
	case *synthetic == "regression":
		rng := rand.New(rand.NewSource(*seed))
		ds, _, err = dataset.MakeRegression(dataset.RegressionSpec{Samples: 300, Features: 6, Informative: 3, Noise: 3}, rng)
		if err != nil {
			return err
		}
		g = regressionGraph()
	case *synthetic == "timeseries":
		rng := rand.New(rand.NewSource(*seed))
		ds, err = sim.GenerateSeries(sim.SeriesSpec{Steps: 400, Vars: 2, Regime: sim.RegimeAR}, rng)
		if err != nil {
			return err
		}
		g, err = tsgraph.New(tsgraph.Config{History: 8, Epochs: *epochs, Seed: *seed, Precision: prec, Slim: true})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("pass -data <csv> or -synthetic regression|timeseries")
	}

	scorer, err := metrics.ScorerByName(*metric)
	if err != nil {
		return err
	}
	var splitter crossval.Splitter = crossval.KFold{K: *k, Shuffle: true}
	if *synthetic == "timeseries" {
		n := ds.NumSamples()
		splitter = crossval.SlidingSplit{K: *k, TrainSize: n / 2, TestSize: n / 6, Buffer: 8}
	}
	opts := core.SearchOptions{
		Splitter:           splitter,
		Scorer:             scorer,
		Seed:               *seed,
		Parallelism:        *parallel,
		PrefixCacheMB:      *cacheMB,
		DisablePrefixCache: *noCache,
	}
	if *server != "" {
		hc := ft.client(*server, *clientID)
		hc.Metric = *metric
		if *noBatch {
			opts.Store = httpapi.PerUnitStore{C: hc}
		} else {
			hc.EnablePublishQueue(*pubBatch, *pubFlush)
			defer hc.Close()
			opts.Store = hc
		}
		opts.SkipClaimed = true
		slog.Info("cooperative search starting",
			"request_id", requestID, "server", *server, "client", *clientID,
			"metric", *metric, "batched", !*noBatch)
	}

	res, err := core.Search(ctx, g, ds, opts)
	if err != nil {
		return err
	}
	if *server != "" {
		slog.Info("cooperative search finished",
			"request_id", requestID, "computed", res.Computed, "cache_hits", res.CacheHits,
			"skipped", res.Skipped, "degraded", res.Degraded)
	}
	fmt.Printf("dataset fingerprint: %s\n", ds.Fingerprint())
	fmt.Printf("units: %d computed, %d from DARR, %d skipped (claimed elsewhere)\n",
		res.Computed, res.CacheHits, res.Skipped)
	if !*noCache {
		p := res.Prefix
		fmt.Printf("prefix cache: %d hits, %d misses, %d evictions (%d prefix fits for %d distinct fold-prefix pairs)\n",
			p.Hits, p.Misses, p.Evictions, p.Fits, p.DistinctPrefixes)
	}
	if res.Degraded > 0 {
		fmt.Printf("degraded: %d units computed locally because the DARR was unreachable\n", res.Degraded)
	}
	printProfile(res.Profile)

	ok := res.Units[:0:0]
	for _, u := range res.Units {
		if u.Err == "" && !u.Skipped {
			ok = append(ok, u)
		}
	}
	sort.Slice(ok, func(a, b int) bool { return scorer.Better(ok[a].Mean, ok[b].Mean) })
	if len(ok) > *top {
		ok = ok[:*top]
	}
	for i, u := range ok {
		src := "computed"
		if u.FromCache {
			src = "darr"
		}
		fmt.Printf("%2d. %s=%.5g  [%s]  %s\n", i+1, *metric, u.Mean, src, u.Spec)
	}
	if res.Best != nil {
		fmt.Printf("best: %s (%s=%.5g)\n", res.Best.Spec, *metric, res.Best.Mean)
	}
	return nil
}

func regressionGraph() *core.Graph {
	g := core.NewGraph()
	g.AddFeatureScalers(
		preprocess.NewMinMaxScaler(),
		preprocess.NewRobustScaler(),
		preprocess.NewStandardScaler(),
		preprocess.NewNoOp(),
	)
	g.AddFeatureSelectors(
		[]core.Transformer{preprocess.NewCovariance(), preprocess.NewPCA(3)},
		[]core.Transformer{preprocess.NewSelectKBest(3)},
		[]core.Transformer{preprocess.NewNoOp()},
	)
	g.AddRegressionModels(
		mlmodels.NewRandomForest(mlmodels.TreeRegression, 30),
		mlmodels.NewKNN(mlmodels.KNNRegression, 5),
		mlmodels.NewDecisionTree(mlmodels.TreeRegression),
		mlmodels.NewLinearRegression(),
	)
	return g
}

func runQuery(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	server := fs.String("server", "", "DARR server URL")
	fp := fs.String("fingerprint", "", "dataset fingerprint")
	ft := addFaultFlags(fs)
	lf := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := lf.setup(); err != nil {
		return err
	}
	if *server == "" || *fp == "" {
		return fmt.Errorf("query needs -server and -fingerprint")
	}
	recs, err := ft.client(*server, "cli").QueryByDataset(ctx, *fp)
	if err != nil {
		return err
	}
	fmt.Printf("%d records for dataset %s\n", len(recs), *fp)
	for _, r := range recs {
		fmt.Printf("  %s=%.5g by %s: %s\n", r.Metric, r.Score, r.ClientID, r.PipelineSpec)
	}
	return nil
}

func runPut(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("put", flag.ExitOnError)
	server := fs.String("server", "", "store server URL")
	key := fs.String("key", "", "object key")
	file := fs.String("file", "", "file to upload")
	ft := addFaultFlags(fs)
	lf := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := lf.setup(); err != nil {
		return err
	}
	if *server == "" || *key == "" || *file == "" {
		return fmt.Errorf("put needs -server, -key and -file")
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	version, err := ft.client(*server, "cli").PutObject(ctx, *key, data)
	if err != nil {
		return err
	}
	fmt.Printf("stored %q version %d (%d bytes)\n", *key, version, len(data))
	return nil
}

func runPull(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("pull", flag.ExitOnError)
	server := fs.String("server", "", "store server URL")
	key := fs.String("key", "", "object key")
	out := fs.String("out", "", "output file")
	ft := addFaultFlags(fs)
	lf := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := lf.setup(); err != nil {
		return err
	}
	if *server == "" || *key == "" || *out == "" {
		return fmt.Errorf("pull needs -server, -key and -out")
	}
	rep := store.NewReplica()
	if err := ft.client(*server, "cli").PullObject(ctx, rep, *key); err != nil {
		return err
	}
	data, ok := rep.Data(*key)
	if !ok {
		return fmt.Errorf("pull succeeded but replica is empty")
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("pulled %q version %d (%d bytes, %d on the wire)\n",
		*key, rep.VersionOf(*key), len(data), rep.BytesReceived())
	return nil
}

// faultFlags is the fault-tolerance flag surface shared by every
// subcommand that talks to a remote server.
type faultFlags struct {
	retries        *int
	retryBackoff   *time.Duration
	retryMax       *time.Duration
	attemptTimeout *time.Duration
	breakerFails   *int
	breakerCool    *time.Duration
}

func addFaultFlags(fs *flag.FlagSet) *faultFlags {
	return &faultFlags{
		retries:        fs.Int("retries", retry.DefaultMaxAttempts, "max attempts per request (1 disables retrying)"),
		retryBackoff:   fs.Duration("retry-backoff", retry.DefaultInitialBackoff, "initial retry backoff (grows exponentially with jitter)"),
		retryMax:       fs.Duration("retry-max-backoff", retry.DefaultMaxBackoff, "retry backoff cap"),
		attemptTimeout: fs.Duration("attempt-timeout", httpapi.DefaultPerAttemptTimeout, "per-attempt request timeout"),
		breakerFails:   fs.Int("breaker-failures", httpapi.DefaultBreakerThreshold, "consecutive failed calls that trip the circuit breaker (0 disables it)"),
		breakerCool:    fs.Duration("breaker-cooldown", httpapi.DefaultBreakerCooldown, "wait before a tripped breaker probes the server again"),
	}
}

// client builds an httpapi.Client honoring the parsed flags.
func (f *faultFlags) client(server, clientID string) *httpapi.Client {
	c := httpapi.NewClient(server, clientID)
	c.Retry = retry.Policy{
		MaxAttempts:       *f.retries,
		InitialBackoff:    *f.retryBackoff,
		MaxBackoff:        *f.retryMax,
		PerAttemptTimeout: *f.attemptTimeout,
	}
	if *f.breakerFails > 0 {
		c.Breaker = retry.NewBreaker(*f.breakerFails, *f.breakerCool, nil)
		retry.RegisterBreaker(server, c.Breaker)
	} else {
		c.Breaker = nil
	}
	return c
}
