// Command coda-server runs a cloud analytics server node (Figure 1): it
// hosts the Data Analytics Results Repository (Figure 2) and a versioned
// home data store with delta-encoded replies (Section III) over JSON/HTTP.
//
// Usage:
//
//	coda-server -addr :8080 -claim-ttl 1m -retain 4
//
// The data tier is pluggable through persistence DSNs (scheme:dir?params):
// -store-backend and -darr-backend each accept mem:, log:<dir> (append-only
// segment log, fsync on every write, snapshot-then-truncate compaction) or
// bolt:<dir> (B-tree-indexed, background auto-compaction). The bare words
// "mem" and "log" keep working — "log" resolves against -store-dir /
// -darr-dir. A durable -darr-backend is what makes cooperative results
// survive restarts; -persist-compact runs periodic compaction so boots
// replay live state, not full history:
//
//	coda-server -addr :8080 -store-backend log:/var/lib/coda/store \
//	    -darr-backend bolt:/var/lib/coda/darr -persist-compact 5m -store-shards 32
//
// Real-time push (Section III's lease-based subscriptions): POST /leases
// grants a lease on an object, GET /leases/{id}/stream serves coalesced
// update frames as Server-Sent Events (GET /leases/{id}/poll long-polls
// instead), and object PUTs fan out through a bounded worker pool so a
// slow subscriber never stalls a writer:
//
//	coda-server -addr :8080 -fanout-workers 16 -notify-coalesce 100ms -lease-sweep 30s
//
// Observability: structured logs go to stderr (-log-level debug shows
// per-request lines with X-Coda-Request-Id), /metrics serves a
// Prometheus text scrape, /healthz reports uptime/build/breaker state,
// and -debug-addr exposes net/http/pprof plus the same scrape on a
// separate listener:
//
//	coda-server -addr :8080 -log-level debug -log-format json -debug-addr :6060
//
// For resilience drills against real clients, -chaos injects faults into
// a fraction of requests (dropped connections, 500s, delays) so the
// client-side retry/backoff/circuit-breaker stack can be exercised
// end-to-end:
//
//	coda-server -addr :8080 -chaos 0.3 -chaos-seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	// Linked for its metric registrations only: the search-unit latency
	// histogram and outcome counters appear in this server's /metrics
	// schema from boot, so dashboards see the full coda metric set even
	// before any in-process search runs.
	_ "coda/internal/core"

	"coda/internal/darr"
	"coda/internal/faultinject"
	"coda/internal/httpapi"
	"coda/internal/obs"
	"coda/internal/obs/trace"
	"coda/internal/replication"
	"coda/internal/store"
)

// resolveDSN keeps the pre-DSN flag values working: bare "mem" is the
// memory backend, bare "log"/"bolt" resolve against the legacy directory
// flag, and anything with a scheme separator passes through untouched.
func resolveDSN(v, legacyDir string) string {
	switch v {
	case "mem":
		return "mem:"
	case "log", "bolt":
		return v + ":" + legacyDir
	}
	return v
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		claimTTL = flag.Duration("claim-ttl", time.Minute, "DARR work-claim expiry")
		retain   = flag.Int("retain", 4, "object versions retained for delta bases")
		block    = flag.Int("block", 64, "delta block size in bytes")
		fullFrac = flag.Float64("full-fraction", 0.5, "send delta only when smaller than this fraction of the full object")
		batchMax = flag.Int("batch-max-keys", httpapi.DefaultMaxBatchKeys, "max keys/records per batched DARR request")

		storeBackend = flag.String("store-backend", "mem", "object-store persistence DSN: mem:, log:<dir> or bolt:<dir> (bare mem/log resolve against -store-dir)")
		storeDir     = flag.String("store-dir", "coda-store", "directory a bare -store-backend log or bolt resolves to")
		storeShards  = flag.Int("store-shards", 0, "lock shards in the object store (0 = default 16)")

		darrBackend    = flag.String("darr-backend", "mem", "DARR persistence DSN: mem:, log:<dir> or bolt:<dir> (bare mem/log resolve against -darr-dir); durable backends replay records and claims at boot")
		darrDir        = flag.String("darr-dir", "coda-darr", "directory a bare -darr-backend log or bolt resolves to")
		persistCompact = flag.Duration("persist-compact", 0, "run backend compaction this often (0 disables; durable backends only)")

		fanoutWorkers  = flag.Int("fanout-workers", 8, "lease fanout worker pool size (0 disables the push serving tier)")
		notifyCoalesce = flag.Duration("notify-coalesce", 50*time.Millisecond, "minimum gap between pushes to one lease; publishes inside the window merge into one frame")
		leaseSweep     = flag.Duration("lease-sweep", 30*time.Second, "how often expired leases on idle objects are pruned")
		leaseMaxTTL    = flag.Duration("lease-max-ttl", time.Hour, "ceiling on requested lease durations")

		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "per-request read timeout")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-request write timeout")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle timeout")

		logLevel  = flag.String("log-level", "info", "log level: debug|info|warn|error (debug logs every request)")
		logFormat = flag.String("log-format", "text", "log format: text|json")
		debugAddr = flag.String("debug-addr", "", "optional listener for net/http/pprof, /metrics and /healthz (e.g. :6060)")

		traceSample = flag.Float64("trace-sample", 1.0, "fraction of traces kept by head sampling (slow traces are always kept)")
		traceSlowMS = flag.Int("trace-slow-ms", 500, "always keep traces at least this slow, in milliseconds (0 disables slow capture)")
		traceRing   = flag.Int("trace-ring", trace.DefaultCapacity, "completed traces retained for /debug/traces")

		chaos      = flag.Float64("chaos", 0, "fraction of requests to fault-inject (0 disables; split evenly between drops and 500s)")
		chaosDelay = flag.Duration("chaos-delay", 0, "also delay this long on a chaos-sized fraction of requests")
		chaosSeed  = flag.Int64("chaos-seed", 1, "seed for the deterministic chaos pattern")
	)
	flag.Parse()

	if err := obs.SetupDefaultLogger(*logLevel, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "coda-server:", err)
		os.Exit(2)
	}
	logger := slog.Default()

	trace.SetSampleRate(*traceSample)
	trace.SetSlowThreshold(time.Duration(*traceSlowMS) * time.Millisecond)
	if *traceRing != trace.DefaultCapacity {
		trace.SetDefaultRecorder(trace.NewRecorder(*traceRing))
	}

	var repo *darr.Repo
	if dsn := resolveDSN(*darrBackend, *darrDir); dsn == "mem:" {
		repo = darr.NewRepo(nil, *claimTTL)
	} else {
		var err error
		repo, err = darr.NewDurableRepo(dsn, nil, *claimTTL)
		if err != nil {
			logger.Error("opening durable DARR", "dsn", dsn, "err", err)
			os.Exit(1)
		}
		logger.Info("durable DARR recovered",
			"backend", repo.Backend(), "records", repo.Len(), "active_claims", repo.ActiveClaims())
	}
	defer repo.Close()

	storeOpts := store.Options{Retain: *retain, BlockSize: *block, FullFraction: *fullFrac, Shards: *storeShards}
	storeDSN := resolveDSN(*storeBackend, *storeDir)
	st, err := store.OpenDSN(storeDSN, storeOpts)
	if err != nil {
		logger.Error("opening object store", "dsn", storeDSN, "err", err)
		os.Exit(1)
	}
	if storeDSN != "mem:" {
		objects := 0
		st.Each(func(string) bool { objects++; return true })
		logger.Info("object store recovered", "backend", st.Backend(), "objects", objects)
	}
	var hs store.ObjectStore = st
	defer hs.Close()

	if *persistCompact > 0 {
		ticker := time.NewTicker(*persistCompact)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				if err := st.CompactBackend(); err != nil {
					logger.Warn("store compaction failed", "err", err)
				}
				if err := repo.Compact(); err != nil {
					logger.Warn("darr compaction failed", "err", err)
				}
			}
		}()
	}
	api := httpapi.NewServer(repo, hs)
	api.MaxBatchKeys = *batchMax
	if *fanoutWorkers > 0 {
		// The push serving tier: SSE/long-poll lease subscriptions with a
		// bounded fanout pool, per-lease coalescing, and a periodic sweep
		// of expired leases on idle objects.
		leases := replication.NewManagerWith(hs, nil, replication.Config{
			Workers:        *fanoutWorkers,
			CoalesceWindow: *notifyCoalesce,
			SweepInterval:  *leaseSweep,
		})
		defer leases.Close()
		api.MaxLeaseTTL = *leaseMaxTTL
		api.EnableLeases(leases)
		logger.Info("push serving tier enabled",
			"workers", *fanoutWorkers, "coalesce", *notifyCoalesce, "sweep", *leaseSweep)
	}
	var handler http.Handler = api

	if *chaos > 0 {
		cfg := faultinject.Config{
			Seed:          *chaosSeed,
			DropFraction:  *chaos / 2,
			ErrorFraction: *chaos / 2,
			Delay:         *chaosDelay,
		}
		if *chaosDelay > 0 {
			cfg.DelayFraction = *chaos
		}
		handler = faultinject.NewHandler(handler, cfg)
		logger.Warn("CHAOS MODE: injecting faults",
			"fraction", *chaos, "seed", *chaosSeed, "delay", *chaosDelay)
	}

	if *debugAddr != "" {
		go func() {
			logger.Info("debug server listening", "addr", *debugAddr,
				"endpoints", "/debug/pprof/ /metrics /healthz /debug/traces")
			dmux := obs.DebugMux()
			dmux.Handle("/debug/traces", trace.Handler())
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				logger.Error("debug server failed", "err", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:         *addr,
		Handler:      handler,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
	}
	logger.Info("coda-server listening",
		"addr", *addr, "claim_ttl", *claimTTL, "retain", *retain)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		logger.Error("coda-server exiting", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		// Graceful stop: drain in-flight requests, then let the deferred
		// Closes flush and release the durable backends.
		logger.Info("coda-server shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shCtx)
	}
}
