// Command coda-server runs a cloud analytics server node (Figure 1): it
// hosts the Data Analytics Results Repository (Figure 2) and a versioned
// home data store with delta-encoded replies (Section III) over JSON/HTTP.
//
// Usage:
//
//	coda-server -addr :8080 -claim-ttl 1m -retain 4
//
// For resilience drills against real clients, -chaos injects faults into
// a fraction of requests (dropped connections, 500s, delays) so the
// client-side retry/backoff/circuit-breaker stack can be exercised
// end-to-end:
//
//	coda-server -addr :8080 -chaos 0.3 -chaos-seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"coda/internal/darr"
	"coda/internal/faultinject"
	"coda/internal/httpapi"
	"coda/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		claimTTL = flag.Duration("claim-ttl", time.Minute, "DARR work-claim expiry")
		retain   = flag.Int("retain", 4, "object versions retained for delta bases")
		block    = flag.Int("block", 64, "delta block size in bytes")
		fullFrac = flag.Float64("full-fraction", 0.5, "send delta only when smaller than this fraction of the full object")

		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "per-request read timeout")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-request write timeout")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle timeout")

		chaos      = flag.Float64("chaos", 0, "fraction of requests to fault-inject (0 disables; split evenly between drops and 500s)")
		chaosDelay = flag.Duration("chaos-delay", 0, "also delay this long on a chaos-sized fraction of requests")
		chaosSeed  = flag.Int64("chaos-seed", 1, "seed for the deterministic chaos pattern")
	)
	flag.Parse()

	repo := darr.NewRepo(nil, *claimTTL)
	hs := store.NewHomeStore(store.Options{Retain: *retain, BlockSize: *block, FullFraction: *fullFrac})
	var handler http.Handler = httpapi.NewServer(repo, hs)

	if *chaos > 0 {
		cfg := faultinject.Config{
			Seed:          *chaosSeed,
			DropFraction:  *chaos / 2,
			ErrorFraction: *chaos / 2,
			Delay:         *chaosDelay,
		}
		if *chaosDelay > 0 {
			cfg.DelayFraction = *chaos
		}
		handler = faultinject.NewHandler(handler, cfg)
		log.Printf("coda-server CHAOS MODE: injecting faults into %.0f%% of requests (seed %d)", *chaos*100, *chaosSeed)
	}

	srv := &http.Server{
		Addr:         *addr,
		Handler:      handler,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
	}
	log.Printf("coda-server listening on %s (claim TTL %s, retain %d versions)", *addr, *claimTTL, *retain)
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "coda-server:", err)
		os.Exit(1)
	}
}
