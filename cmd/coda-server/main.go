// Command coda-server runs a cloud analytics server node (Figure 1): it
// hosts the Data Analytics Results Repository (Figure 2) and a versioned
// home data store with delta-encoded replies (Section III) over JSON/HTTP.
//
// Usage:
//
//	coda-server -addr :8080 -claim-ttl 1m -retain 4
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"coda/internal/darr"
	"coda/internal/httpapi"
	"coda/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		claimTTL = flag.Duration("claim-ttl", time.Minute, "DARR work-claim expiry")
		retain   = flag.Int("retain", 4, "object versions retained for delta bases")
		block    = flag.Int("block", 64, "delta block size in bytes")
		fullFrac = flag.Float64("full-fraction", 0.5, "send delta only when smaller than this fraction of the full object")
	)
	flag.Parse()

	repo := darr.NewRepo(nil, *claimTTL)
	hs := store.NewHomeStore(store.Options{Retain: *retain, BlockSize: *block, FullFraction: *fullFrac})
	srv := httpapi.NewServer(repo, hs)

	log.Printf("coda-server listening on %s (claim TTL %s, retain %d versions)", *addr, *claimTTL, *retain)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "coda-server:", err)
		os.Exit(1)
	}
}
