// Command coda-bench regenerates the paper's tables and figures as
// experiments (see DESIGN.md section 4 and EXPERIMENTS.md for the index),
// and compares benchmark JSON artifacts for the CI regression gate.
//
// Usage:
//
//	coda-bench -list
//	coda-bench -exp F3            # one experiment
//	coda-bench -all               # everything (slow: trains neural nets)
//	coda-bench -all -quick        # reduced sizes
//	coda-bench compare -baseline BENCH_baseline.json -current BENCH_kernels.json \
//	    -metrics allocs_op -max-regress 0.25
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"coda/internal/benchcmp"
	"coda/internal/experiments"
	"coda/internal/nn"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		if err := runCompare(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "coda-bench compare:", err)
			os.Exit(1)
		}
		return
	}
	var (
		expID = flag.String("exp", "", "experiment id to run (T1, T2, F1..F12, S1..S4)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiments")
		quick = flag.Bool("quick", false, "reduced workload sizes")
		seed  = flag.Int64("seed", 1, "experiment seed")
		prec  = flag.String("nn-precision", "f64", "network compute precision for the TS experiments: f32 | f64")
	)
	flag.Parse()

	if err := run(*expID, *all, *list, *quick, *seed, *prec); err != nil {
		fmt.Fprintln(os.Stderr, "coda-bench:", err)
		os.Exit(1)
	}
}

func run(expID string, all, list, quick bool, seed int64, precision string) error {
	if list {
		for _, r := range experiments.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return nil
	}
	prec, err := nn.ParsePrecision(precision)
	if err != nil {
		return err
	}
	cfg := experiments.Config{Seed: seed, Quick: quick, Precision: prec}
	var runners []experiments.Runner
	switch {
	case all:
		runners = experiments.All()
	case expID != "":
		r, err := experiments.ByID(expID)
		if err != nil {
			return err
		}
		runners = []experiments.Runner{r}
	default:
		return fmt.Errorf("pass -exp <id>, -all, or -list")
	}
	for _, r := range runners {
		start := time.Now()
		tbl, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Print(tbl.Format())
		fmt.Printf("(%s in %s)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runCompare implements the `compare` subcommand: diff a current benchmark
// JSON artifact against a baseline and exit nonzero on any regression
// beyond the threshold. Benchmarks missing from either side are reported
// but never fatal, so the committed baseline survives bench renames.
func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	var (
		baseline   = fs.String("baseline", "BENCH_baseline.json", "baseline benchmark JSON")
		current    = fs.String("current", "", "current benchmark JSON (required)")
		maxRegress = fs.Float64("max-regress", 0.25, "max allowed fractional growth per metric (0.25 = +25%)")
		metricsArg = fs.String("metrics", "ns_op,allocs_op", "comma-separated metrics to compare (ns_op, B_op, allocs_op); ns_op is only meaningful between runs on the same machine")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *current == "" {
		return fmt.Errorf("-current is required")
	}
	var metrics []string
	for _, m := range strings.Split(*metricsArg, ",") {
		if m = strings.TrimSpace(m); m != "" {
			metrics = append(metrics, m)
		}
	}
	base, err := benchcmp.Load(*baseline)
	if err != nil {
		return err
	}
	cur, err := benchcmp.Load(*current)
	if err != nil {
		return err
	}
	rep, err := benchcmp.Compare(base, cur, *maxRegress, metrics)
	if err != nil {
		return err
	}
	fmt.Print(rep.Format())
	if regs := rep.Regressions(); len(regs) > 0 {
		return fmt.Errorf("%d benchmark regression(s) beyond +%.0f%%", len(regs), *maxRegress*100)
	}
	fmt.Printf("no regressions beyond +%.0f%% across %d comparisons\n", *maxRegress*100, len(rep.Results))
	return nil
}
