// Command coda-bench regenerates the paper's tables and figures as
// experiments (see DESIGN.md section 4 and EXPERIMENTS.md for the index).
//
// Usage:
//
//	coda-bench -list
//	coda-bench -exp F3            # one experiment
//	coda-bench -all               # everything (slow: trains neural nets)
//	coda-bench -all -quick        # reduced sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"coda/internal/experiments"
)

func main() {
	var (
		expID = flag.String("exp", "", "experiment id to run (T1, T2, F1..F12, S1..S4)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiments")
		quick = flag.Bool("quick", false, "reduced workload sizes")
		seed  = flag.Int64("seed", 1, "experiment seed")
	)
	flag.Parse()

	if err := run(*expID, *all, *list, *quick, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "coda-bench:", err)
		os.Exit(1)
	}
}

func run(expID string, all, list, quick bool, seed int64) error {
	if list {
		for _, r := range experiments.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return nil
	}
	cfg := experiments.Config{Seed: seed, Quick: quick}
	var runners []experiments.Runner
	switch {
	case all:
		runners = experiments.All()
	case expID != "":
		r, err := experiments.ByID(expID)
		if err != nil {
			return err
		}
		runners = []experiments.Runner{r}
	default:
		return fmt.Errorf("pass -exp <id>, -all, or -list")
	}
	for _, r := range runners {
		start := time.Now()
		tbl, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Print(tbl.Format())
		fmt.Printf("(%s in %s)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
