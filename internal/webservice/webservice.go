// Package webservice models the AI Web services of Figure 1 (IBM Watson,
// Azure Cognitive Services, AWS ML, Google Cloud AI): HTTP-accessible
// scorers that complement the machine-learning capabilities of client and
// cloud nodes. It provides
//
//   - Service: the scoring contract,
//   - MockService: a latency/cost-modelled stand-in for a commercial API,
//   - Handler/HTTPService: serve any fitted core.Estimator over HTTP and
//     call it remotely,
//   - ServiceEstimator: plug a remote service into a Transformer-Estimator
//     Graph as just another model option.
package webservice

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/matrix"
	"coda/internal/obs"
)

// Scoring-endpoint telemetry, labeled by response class.
var (
	mScoreOK        = obs.GetCounter(`coda_webservice_requests_total{code="2xx"}`)
	mScoreBadInput  = obs.GetCounter(`coda_webservice_requests_total{code="4xx"}`)
	mScoreFailed    = obs.GetCounter(`coda_webservice_requests_total{code="5xx"}`)
	mScoreSeconds   = obs.GetHistogram("coda_webservice_request_seconds", nil)
	mScoredRowCount = obs.GetCounter("coda_webservice_rows_scored_total")
)

// Service scores feature rows remotely.
type Service interface {
	// Name identifies the service in pipeline specs.
	Name() string
	// Score returns one prediction per feature row.
	Score(ctx context.Context, rows [][]float64) ([]float64, error)
}

// MockService simulates a commercial AI web service: a fixed scoring
// function behind per-call latency and metered cost. Experiments use it to
// account for the price of outsourcing predictions.
type MockService struct {
	ServiceName string
	Latency     time.Duration // added per call
	CostPerCall float64

	// Fn scores one row; required.
	Fn func(row []float64) float64

	mu    sync.Mutex
	calls int
	cost  float64
}

// Name implements Service.
func (m *MockService) Name() string {
	if m.ServiceName == "" {
		return "mock-webservice"
	}
	return m.ServiceName
}

// Score implements Service, honouring context cancellation during the
// simulated latency.
func (m *MockService) Score(ctx context.Context, rows [][]float64) ([]float64, error) {
	if m.Fn == nil {
		return nil, fmt.Errorf("webservice: %s has no scoring function", m.Name())
	}
	if m.Latency > 0 {
		select {
		case <-time.After(m.Latency):
		case <-ctx.Done():
			return nil, fmt.Errorf("webservice: %s: %w", m.Name(), ctx.Err())
		}
	}
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = m.Fn(r)
	}
	m.mu.Lock()
	m.calls++
	m.cost += m.CostPerCall
	m.mu.Unlock()
	return out, nil
}

// Usage reports accumulated calls and cost.
func (m *MockService) Usage() (calls int, cost float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls, m.cost
}

// scoreRequest/scoreResponse are the HTTP wire format.
type scoreRequest struct {
	Rows [][]float64 `json:"rows"`
}

type scoreResponse struct {
	Predictions []float64 `json:"predictions"`
	Error       string    `json:"error,omitempty"`
	Status      int       `json:"status,omitempty"`
	RequestID   string    `json:"request_id,omitempty"`
}

// Handler serves a fitted estimator as an AI web service: POST a JSON
// feature matrix, receive predictions — the role the paper's cloud vendors
// play in Figure 1. Errors come back as structured JSON carrying the
// status and the request id (when the request passed through
// obs.Middleware), and are logged through slog.
func Handler(est core.Estimator) http.Handler {
	return HandlerWithLogger(est, nil)
}

// HandlerWithLogger is Handler with an explicit logger (nil uses
// slog.Default()).
func HandlerWithLogger(est core.Estimator, logger *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if logger == nil {
			logger = slog.Default()
		}
		start := time.Now()
		id := obs.RequestID(r.Context())
		fail := func(status int, msg string) {
			level := slog.LevelWarn
			counter := mScoreBadInput
			if status >= 500 {
				level = slog.LevelError
				counter = mScoreFailed
			}
			counter.Inc()
			logger.Log(r.Context(), level, "score request failed",
				"request_id", id, "status", status, "err", msg)
			writeJSON(w, status, scoreResponse{Error: msg, Status: status, RequestID: id})
		}
		if r.Method != http.MethodPost {
			fail(http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req scoreRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			fail(http.StatusBadRequest, "decoding request: "+err.Error())
			return
		}
		if len(req.Rows) == 0 {
			fail(http.StatusBadRequest, "no rows")
			return
		}
		x, err := matrix.NewFromRows(req.Rows)
		if err != nil {
			fail(http.StatusBadRequest, err.Error())
			return
		}
		ds, err := dataset.New(x, nil)
		if err != nil {
			fail(http.StatusBadRequest, err.Error())
			return
		}
		preds, err := est.Predict(ds)
		if err != nil {
			fail(http.StatusInternalServerError, err.Error())
			return
		}
		mScoreOK.Inc()
		mScoredRowCount.Add(int64(len(req.Rows)))
		mScoreSeconds.ObserveSince(start)
		logger.Debug("scored rows",
			"request_id", id, "rows", len(req.Rows), "elapsed", time.Since(start))
		writeJSON(w, http.StatusOK, scoreResponse{Predictions: preds})
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// HTTPService calls a remote scoring endpoint (one served by Handler, or
// any API speaking the same JSON contract).
type HTTPService struct {
	ServiceName string
	URL         string
	HTTP        *http.Client
}

// NewHTTPService builds a client for a remote scorer.
func NewHTTPService(name, url string) *HTTPService {
	return &HTTPService{ServiceName: name, URL: url, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

// Name implements Service.
func (h *HTTPService) Name() string { return h.ServiceName }

// Score implements Service.
func (h *HTTPService) Score(ctx context.Context, rows [][]float64) ([]float64, error) {
	raw, err := json.Marshal(scoreRequest{Rows: rows})
	if err != nil {
		return nil, fmt.Errorf("webservice: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.URL, bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("webservice: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	client := h.HTTP
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("webservice: %s: %w", h.Name(), err)
	}
	defer resp.Body.Close()
	var out scoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("webservice: decoding response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("webservice: %s returned %d: %s", h.Name(), resp.StatusCode, out.Error)
	}
	return out.Predictions, nil
}

// ErrRemoteOnly is returned when a ServiceEstimator is asked to train;
// remote services are pre-trained, so Fit only validates the data.
var ErrRemoteOnly = errors.New("webservice: remote services cannot be trained locally")

// ServiceEstimator adapts a Service to core.Estimator so a remote AI web
// service appears in a Transformer-Estimator Graph as one more modelling
// option — the paper's "full range of analytics capabilities from multiple
// parties".
type ServiceEstimator struct {
	Service Service
	// Timeout bounds each remote call (default 30s).
	Timeout time.Duration

	features int
}

// NewServiceEstimator wraps a service.
func NewServiceEstimator(s Service) *ServiceEstimator {
	return &ServiceEstimator{Service: s, Timeout: 30 * time.Second}
}

// Name implements core.Component.
func (s *ServiceEstimator) Name() string { return s.Service.Name() }

// SetParam implements core.Component; remote services expose no tunables.
func (s *ServiceEstimator) SetParam(key string, _ float64) error {
	return fmt.Errorf("webservice: %s has no parameter %q", s.Name(), key)
}

// Params implements core.Component.
func (s *ServiceEstimator) Params() map[string]float64 { return nil }

// Clone implements core.Estimator.
func (s *ServiceEstimator) Clone() core.Estimator {
	return &ServiceEstimator{Service: s.Service, Timeout: s.Timeout}
}

// Fit records the expected feature width; the remote model is pre-trained.
func (s *ServiceEstimator) Fit(ds *dataset.Dataset) error {
	if ds.NumFeatures() == 0 {
		return fmt.Errorf("webservice: %s: empty feature matrix", s.Name())
	}
	s.features = ds.NumFeatures()
	return nil
}

// Predict calls the remote service.
func (s *ServiceEstimator) Predict(ds *dataset.Dataset) ([]float64, error) {
	if s.features == 0 {
		return nil, fmt.Errorf("webservice: %s not fitted", s.Name())
	}
	if ds.NumFeatures() != s.features {
		return nil, fmt.Errorf("webservice: %s fitted with %d features, got %d", s.Name(), s.features, ds.NumFeatures())
	}
	rows := make([][]float64, ds.NumSamples())
	for i := range rows {
		rows[i] = ds.X.RowCopy(i)
	}
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	preds, err := s.Service.Score(ctx, rows)
	if err != nil {
		return nil, err
	}
	if len(preds) != len(rows) {
		return nil, fmt.Errorf("webservice: %s returned %d predictions for %d rows", s.Name(), len(preds), len(rows))
	}
	return preds, nil
}
