package webservice

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"coda/internal/core"
	"coda/internal/crossval"
	"coda/internal/dataset"
	"coda/internal/matrix"
	"coda/internal/metrics"
	"coda/internal/mlmodels"
	"coda/internal/preprocess"
)

var _ core.Estimator = (*ServiceEstimator)(nil)

func TestMockService(t *testing.T) {
	m := &MockService{
		ServiceName: "watson-mock",
		Latency:     time.Millisecond,
		CostPerCall: 0.01,
		Fn: func(row []float64) float64 {
			s := 0.0
			for _, v := range row {
				s += v
			}
			return s
		},
	}
	preds, err := m.Score(context.Background(), [][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if preds[0] != 3 || preds[1] != 7 {
		t.Fatalf("preds %v", preds)
	}
	calls, cost := m.Usage()
	if calls != 1 || cost != 0.01 {
		t.Fatalf("usage %d %v", calls, cost)
	}
	// Cancellation during latency.
	m.Latency = time.Second
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := m.Score(ctx, [][]float64{{1}}); err == nil {
		t.Fatal("want cancellation error")
	}
	// Missing scoring function.
	if _, err := (&MockService{}).Score(context.Background(), [][]float64{{1}}); err == nil {
		t.Fatal("want no-fn error")
	}
}

func trainedModel(t *testing.T) (core.Estimator, *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	ds, _, err := dataset.MakeRegression(dataset.RegressionSpec{Samples: 150, Features: 3, Informative: 3, Noise: 0.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	lr := mlmodels.NewLinearRegression()
	if err := lr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	return lr, ds
}

func TestHandlerAndHTTPService(t *testing.T) {
	model, ds := trainedModel(t)
	ts := httptest.NewServer(Handler(model))
	defer ts.Close()

	svc := NewHTTPService("remote-regressor", ts.URL)
	rows := [][]float64{ds.X.RowCopy(0), ds.X.RowCopy(1)}
	preds, err := svc.Score(context.Background(), rows)
	if err != nil {
		t.Fatal(err)
	}
	// Remote predictions must equal local ones.
	sub := ds.SliceRange(0, 2)
	local, err := model.Predict(sub)
	if err != nil {
		t.Fatal(err)
	}
	for i := range preds {
		if preds[i] != local[i] {
			t.Fatalf("remote %v != local %v", preds[i], local[i])
		}
	}
	// Bad requests surface errors.
	if _, err := svc.Score(context.Background(), nil); err == nil {
		t.Fatal("want no-rows error")
	}
}

func TestServiceEstimatorInGraph(t *testing.T) {
	// A "pre-trained commercial service" that happens to know the truth.
	truth := &MockService{
		ServiceName: "oracle-service",
		Fn: func(row []float64) float64 {
			return 3*row[0] - 2*row[1] + row[2]
		},
	}
	rng := rand.New(rand.NewSource(2))
	n := 120
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		a, b, c := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		rows[i] = []float64{a, b, c}
		y[i] = 3*a - 2*b + c + 2*rng.NormFloat64() // noisy observation of the oracle
	}
	ds := mustDS(t, rows, y)

	g := core.NewGraph()
	g.AddFeatureScalers(preprocess.NewNoOp())
	g.AddEstimatorStage("models",
		NewServiceEstimator(truth),
		mlmodels.NewDecisionTree(mlmodels.TreeRegression),
	)
	scorer, _ := metrics.ScorerByName("rmse")
	res, err := core.Search(context.Background(), g, ds, core.SearchOptions{
		Splitter: crossval.KFold{K: 3, Shuffle: true},
		Scorer:   scorer,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || !strings.Contains(res.Best.Spec, "oracle-service") {
		t.Fatalf("the oracle service should win: %+v", res.Best)
	}
	calls, _ := truth.Usage()
	if calls == 0 {
		t.Fatal("service was never called")
	}
}

func mustDS(t *testing.T, rows [][]float64, y []float64) *dataset.Dataset {
	t.Helper()
	x, err := matrix.NewFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dataset.New(x, y)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestServiceEstimatorValidation(t *testing.T) {
	svc := NewServiceEstimator(&MockService{Fn: func([]float64) float64 { return 0 }})
	if _, err := svc.Predict(&dataset.Dataset{}); err == nil {
		t.Fatal("want not-fitted error")
	}
	ds := mustDS(t, [][]float64{{1, 2}}, []float64{1})
	if err := svc.Fit(ds); err != nil {
		t.Fatal(err)
	}
	wrong := mustDS(t, [][]float64{{1, 2, 3}}, []float64{1})
	if _, err := svc.Predict(wrong); err == nil {
		t.Fatal("want feature-width error")
	}
	if err := svc.SetParam("x", 1); err == nil {
		t.Fatal("want no-params error")
	}
	c := svc.Clone()
	if c.Name() != svc.Name() {
		t.Fatal("clone renamed service")
	}
}
