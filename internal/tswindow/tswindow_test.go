package tswindow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/matrix"
)

var (
	_ core.Transformer = (*CascadedWindows)(nil)
	_ core.Transformer = (*FlatWindowing)(nil)
	_ core.Transformer = (*TSAsIID)(nil)
	_ core.Transformer = (*TSAsIs)(nil)
)

// series builds a T x 2 series where var0(t) = t and var1(t) = 100 + t, so
// every expected window entry is predictable.
func series(t *testing.T, steps int) *dataset.Dataset {
	t.Helper()
	x := matrix.New(steps, 2)
	for i := 0; i < steps; i++ {
		x.Set(i, 0, float64(i))
		x.Set(i, 1, 100+float64(i))
	}
	d, err := dataset.New(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCascadedWindowsShapesAndValues(t *testing.T) {
	d := series(t, 10)
	c := NewCascadedWindows(3, 1, 0)
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	out, err := c.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	// L = T - p - h + 1 = 10 - 3 - 1 + 1 = 7 windows (paper: L-p for h=1...
	// with the window ending at i+p-1 and target at i+p).
	if out.NumSamples() != 7 {
		t.Fatalf("window count %d, want 7", out.NumSamples())
	}
	if out.X.Cols() != 6 {
		t.Fatalf("window width %d, want p*v=6", out.X.Cols())
	}
	if out.WindowLen != 3 || out.NumVars != 2 {
		t.Fatalf("metadata p=%d v=%d", out.WindowLen, out.NumVars)
	}
	// Window 0 covers t=0,1,2 time-major: [0,100,1,101,2,102]; target var0 at t=3.
	want := []float64{0, 100, 1, 101, 2, 102}
	for j, w := range want {
		if out.X.At(0, j) != w {
			t.Fatalf("window0[%d] = %v, want %v", j, out.X.At(0, j), w)
		}
	}
	if out.Y[0] != 3 {
		t.Fatalf("Y[0] = %v, want 3", out.Y[0])
	}
	// Last window covers t=6,7,8, target at t=9.
	if out.Y[6] != 9 {
		t.Fatalf("Y[6] = %v, want 9", out.Y[6])
	}
	// Order preservation inside a window: entries strictly increase for var0.
	if out.X.At(0, 0) >= out.X.At(0, 2) || out.X.At(0, 2) >= out.X.At(0, 4) {
		t.Fatal("temporal order not preserved in window")
	}
}

func TestCascadedWindowsHorizon(t *testing.T) {
	d := series(t, 10)
	c := NewCascadedWindows(2, 3, 1)
	out, err := c.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	// L = 10 - 2 - 3 + 1 = 6; target var1 at t = i + 2 + 3 - 1 = i+4.
	if out.NumSamples() != 6 {
		t.Fatalf("count %d, want 6", out.NumSamples())
	}
	if out.Y[0] != 104 {
		t.Fatalf("Y[0] = %v, want 104", out.Y[0])
	}
}

func TestFlatWindowingMatchesCascadedValues(t *testing.T) {
	d := series(t, 12)
	casc, err := NewCascadedWindows(4, 1, 0).Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := NewFlatWindowing(4, 1, 0).Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	if !flat.X.Equal(casc.X, 0) {
		t.Fatal("flat windows must hold the same values as cascaded windows")
	}
	for i := range casc.Y {
		if flat.Y[i] != casc.Y[i] {
			t.Fatal("flat targets differ from cascaded targets")
		}
	}
	// The semantic difference is the metadata: flat is transactional.
	if flat.WindowLen != 0 {
		t.Fatalf("flat WindowLen = %d, want 0", flat.WindowLen)
	}
	if casc.WindowLen != 4 {
		t.Fatalf("cascaded WindowLen = %d, want 4", casc.WindowLen)
	}
}

func TestTSAsIID(t *testing.T) {
	d := series(t, 8)
	tr := NewTSAsIID(2, 0)
	out, err := tr.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumSamples() != 6 || out.X.Cols() != 2 {
		t.Fatalf("shape %dx%d, want 6x2", out.NumSamples(), out.X.Cols())
	}
	// Row i is the raw vector at time i; Y[i] = var0 at i+2.
	if out.X.At(3, 1) != 103 || out.Y[3] != 5 {
		t.Fatalf("values wrong: X(3,1)=%v Y[3]=%v", out.X.At(3, 1), out.Y[3])
	}
	if out.WindowLen != 0 {
		t.Fatal("IID view must not carry window metadata")
	}
}

func TestTSAsIs(t *testing.T) {
	d := series(t, 8)
	tr := NewTSAsIs(1, 1)
	out, err := tr.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumSamples() != 7 {
		t.Fatalf("count %d, want 7", out.NumSamples())
	}
	// Y[i] = var1 at i+1; X row i unchanged.
	if out.Y[0] != 101 || out.X.At(0, 0) != 0 {
		t.Fatalf("values wrong: Y[0]=%v", out.Y[0])
	}
	if out.NumVars != 2 {
		t.Fatalf("NumVars = %d, want 2", out.NumVars)
	}
	// Time order preserved.
	for i := 1; i < out.NumSamples(); i++ {
		if out.X.At(i, 0) != out.X.At(i-1, 0)+1 {
			t.Fatal("TSAsIs must preserve time order")
		}
	}
}

func TestWindowingErrors(t *testing.T) {
	d := series(t, 5)
	if _, err := NewCascadedWindows(0, 1, 0).Transform(d); err == nil {
		t.Fatal("want history error")
	}
	if _, err := NewCascadedWindows(3, 0, 0).Transform(d); err == nil {
		t.Fatal("want horizon error")
	}
	if _, err := NewCascadedWindows(3, 1, 9).Transform(d); err == nil {
		t.Fatal("want target range error")
	}
	if _, err := NewCascadedWindows(5, 1, 0).Transform(d); err == nil {
		t.Fatal("want too-short error")
	}
	if _, err := NewTSAsIID(10, 0).Transform(d); err == nil {
		t.Fatal("want IID too-short error")
	}
	if _, err := NewTSAsIs(0, 0).Transform(d); err == nil {
		t.Fatal("want as-is horizon error")
	}
}

func TestSetParamAndClone(t *testing.T) {
	c := NewCascadedWindows(3, 1, 0)
	if err := c.SetParam("history", 5); err != nil {
		t.Fatal(err)
	}
	if err := c.SetParam("horizon", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.SetParam("target", 1); err != nil {
		t.Fatal(err)
	}
	if c.History != 5 || c.Horizon != 2 || c.Target != 1 {
		t.Fatalf("SetParam not applied: %+v", c)
	}
	if err := c.SetParam("bogus", 1); err == nil {
		t.Fatal("want unknown param error")
	}
	clone := c.Clone()
	if clone.Params()["history"] != 5 {
		t.Fatal("clone lost params")
	}
	for _, tr := range []core.Transformer{NewFlatWindowing(2, 1, 0), NewTSAsIID(1, 0), NewTSAsIs(1, 0)} {
		if err := tr.SetParam("horizon", 3); err != nil {
			t.Errorf("%s: %v", tr.Name(), err)
		}
		if err := tr.SetParam("bogus", 1); err == nil {
			t.Errorf("%s: want unknown param error", tr.Name())
		}
		if tr.Clone().Params()["horizon"] != 3 {
			t.Errorf("%s: clone lost horizon", tr.Name())
		}
	}
}

// Property (paper, Fig 7/8): for any valid (T, p, h), the number of windows
// is T-p-h+1, each window has width p*v, and Y values never come from
// inside their own window.
func TestWindowCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(10)
		h := 1 + rng.Intn(5)
		T := p + h + rng.Intn(60)
		v := 1 + rng.Intn(4)
		x := matrix.New(T, v)
		for i := range x.Data() {
			x.Data()[i] = rng.NormFloat64()
		}
		d, err := dataset.New(x, nil)
		if err != nil {
			return false
		}
		out, err := NewCascadedWindows(p, h, 0).Transform(d)
		if err != nil {
			return false
		}
		if out.NumSamples() != T-p-h+1 || out.X.Cols() != p*v {
			return false
		}
		// Target for window i is series value at i+p+h-1, strictly after
		// the window's last timestamp i+p-1.
		for i := 0; i < out.NumSamples(); i++ {
			if out.Y[i] != x.At(i+p+h-1, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestYAffinePropagation pins that windowing transformers carry the target
// column's affine map into YScale/YOffset so pipelines can denormalize
// predictions.
func TestYAffinePropagation(t *testing.T) {
	d := series(t, 10)
	d.ColScale = []float64{2, 3}
	d.ColOffset = []float64{10, 20}
	transformers := []core.Transformer{
		NewCascadedWindows(3, 1, 1),
		NewFlatWindowing(3, 1, 1),
		NewTSAsIID(1, 1),
		NewTSAsIs(1, 1),
	}
	for _, tr := range transformers {
		out, err := tr.Transform(d)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if out.YScale != 3 || out.YOffset != 20 {
			t.Fatalf("%s: YScale/YOffset = %v/%v, want 3/20 (target col 1)", tr.Name(), out.YScale, out.YOffset)
		}
		// DenormY inverts: y*3+20.
		back := out.DenormY([]float64{1})
		if back[0] != 23 {
			t.Fatalf("%s: DenormY(1) = %v, want 23", tr.Name(), back[0])
		}
	}
	// Without affine metadata, Y passes through untouched.
	plain := series(t, 10)
	out, err := NewCascadedWindows(3, 1, 0).Transform(plain)
	if err != nil {
		t.Fatal(err)
	}
	ys := out.DenormY([]float64{5})
	if ys[0] != 5 {
		t.Fatalf("identity DenormY = %v", ys[0])
	}
}
