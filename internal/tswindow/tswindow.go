// Package tswindow implements the paper's custom time-series data
// preprocessors (Section IV-C4, Figures 7-10). Input datasets are
// multivariate series — X has one row per timestamp and one column per
// variable (Figure 6) — and the transformers reshape them into the layout
// each estimator family ingests:
//
//   - CascadedWindows (Fig 7): overlapping history windows of shape p x v,
//     order preserved, for the temporal networks (LSTM/CNN/WaveNet).
//   - FlatWindowing (Fig 8): the same windows flattened to 1 x p*v for
//     standard DNNs — history retained, ordering semantics dropped.
//   - TSAsIID (Fig 9): each timestamp as an independent sample, no history.
//   - TSAsIs (Fig 10): pass-through for models that consume raw series
//     (Zero model, AR).
//
// Every transformer also derives the prediction target: the value of the
// target variable Horizon steps after the window, so Y never overlaps the
// inputs it is predicted from.
package tswindow

import (
	"fmt"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/matrix"
)

func validateSeries(ds *dataset.Dataset, target int) error {
	if ds.X.Rows() == 0 {
		return fmt.Errorf("tswindow: empty series")
	}
	if target < 0 || target >= ds.X.Cols() {
		return fmt.Errorf("tswindow: target variable %d out of range for %d variables", target, ds.X.Cols())
	}
	return nil
}

// CascadedWindows converts a T x v series into L = T - History - Horizon + 1
// windows; window i holds rows i .. i+History-1 flattened time-major into a
// single row of length History*v, and Y[i] is the target variable at time
// i + History + Horizon - 1. The output dataset carries WindowLen = History
// and NumVars = v so temporal estimators can reinterpret rows as 2-D
// windows without copying.
type CascadedWindows struct {
	History int // window length p (>= 1)
	Horizon int // steps ahead to predict (>= 1)
	Target  int // target variable column
}

// NewCascadedWindows returns a window transformer with history p predicting
// the target variable horizon steps ahead.
func NewCascadedWindows(history, horizon, target int) *CascadedWindows {
	return &CascadedWindows{History: history, Horizon: horizon, Target: target}
}

// Name implements core.Component.
func (c *CascadedWindows) Name() string { return "cascadedwindows" }

// SetParam implements core.Component; "history", "horizon" and "target" are
// supported.
func (c *CascadedWindows) SetParam(key string, v float64) error {
	switch key {
	case "history":
		c.History = int(v)
	case "horizon":
		c.Horizon = int(v)
	case "target":
		c.Target = int(v)
	default:
		return fmt.Errorf("tswindow: %s has no parameter %q", c.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (c *CascadedWindows) Params() map[string]float64 {
	return map[string]float64{
		"history": float64(c.History),
		"horizon": float64(c.Horizon),
		"target":  float64(c.Target),
	}
}

// Clone implements core.Transformer.
func (c *CascadedWindows) Clone() core.Transformer {
	cp := *c
	return &cp
}

// Fit is stateless; windowing depends only on configuration.
func (c *CascadedWindows) Fit(*dataset.Dataset) error { return nil }

// Transform builds the cascaded windows.
func (c *CascadedWindows) Transform(ds *dataset.Dataset) (*dataset.Dataset, error) {
	x, y, v, err := buildWindows(ds, c.History, c.Horizon, c.Target)
	if err != nil {
		return nil, fmt.Errorf("tswindow: %s: %w", c.Name(), err)
	}
	out := &dataset.Dataset{X: x, Y: y, TargetName: ds.TargetName, WindowLen: c.History, NumVars: v}
	out.YScale, out.YOffset = ds.ColAffine(c.Target)
	return out, nil
}

// FlatWindowing produces the same L windows as CascadedWindows but marks
// the output as flat transactional data (WindowLen = 0), matching Figure 8:
// temporal history is present in the features, ordering semantics are not.
type FlatWindowing struct {
	History int
	Horizon int
	Target  int
}

// NewFlatWindowing returns a flattening window transformer.
func NewFlatWindowing(history, horizon, target int) *FlatWindowing {
	return &FlatWindowing{History: history, Horizon: horizon, Target: target}
}

// Name implements core.Component.
func (f *FlatWindowing) Name() string { return "flatwindowing" }

// SetParam implements core.Component.
func (f *FlatWindowing) SetParam(key string, v float64) error {
	switch key {
	case "history":
		f.History = int(v)
	case "horizon":
		f.Horizon = int(v)
	case "target":
		f.Target = int(v)
	default:
		return fmt.Errorf("tswindow: %s has no parameter %q", f.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (f *FlatWindowing) Params() map[string]float64 {
	return map[string]float64{
		"history": float64(f.History),
		"horizon": float64(f.Horizon),
		"target":  float64(f.Target),
	}
}

// Clone implements core.Transformer.
func (f *FlatWindowing) Clone() core.Transformer {
	cp := *f
	return &cp
}

// Fit is stateless.
func (f *FlatWindowing) Fit(*dataset.Dataset) error { return nil }

// Transform builds flattened windows.
func (f *FlatWindowing) Transform(ds *dataset.Dataset) (*dataset.Dataset, error) {
	x, y, _, err := buildWindows(ds, f.History, f.Horizon, f.Target)
	if err != nil {
		return nil, fmt.Errorf("tswindow: %s: %w", f.Name(), err)
	}
	// WindowLen stays 0: downstream estimators treat rows as flat vectors.
	out := &dataset.Dataset{X: x, Y: y, TargetName: ds.TargetName}
	out.YScale, out.YOffset = ds.ColAffine(f.Target)
	return out, nil
}

// TSAsIID exposes each timestamp as an independent sample (Figure 9): X row
// i is the raw variable vector at time i, Y[i] the target variable Horizon
// steps later. No history is available to the model.
type TSAsIID struct {
	Horizon int
	Target  int
}

// NewTSAsIID returns the transactional view transformer.
func NewTSAsIID(horizon, target int) *TSAsIID { return &TSAsIID{Horizon: horizon, Target: target} }

// Name implements core.Component.
func (t *TSAsIID) Name() string { return "tsasiid" }

// SetParam implements core.Component.
func (t *TSAsIID) SetParam(key string, v float64) error {
	switch key {
	case "horizon":
		t.Horizon = int(v)
	case "target":
		t.Target = int(v)
	default:
		return fmt.Errorf("tswindow: %s has no parameter %q", t.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (t *TSAsIID) Params() map[string]float64 {
	return map[string]float64{"horizon": float64(t.Horizon), "target": float64(t.Target)}
}

// Clone implements core.Transformer.
func (t *TSAsIID) Clone() core.Transformer {
	cp := *t
	return &cp
}

// Fit is stateless.
func (t *TSAsIID) Fit(*dataset.Dataset) error { return nil }

// Transform builds the IID view.
func (t *TSAsIID) Transform(ds *dataset.Dataset) (*dataset.Dataset, error) {
	if t.Horizon < 1 {
		return nil, fmt.Errorf("tswindow: %s: horizon %d < 1", t.Name(), t.Horizon)
	}
	if err := validateSeries(ds, t.Target); err != nil {
		return nil, fmt.Errorf("tswindow: %s: %w", t.Name(), err)
	}
	n := ds.X.Rows() - t.Horizon
	if n < 1 {
		return nil, fmt.Errorf("tswindow: %s: series of %d too short for horizon %d", t.Name(), ds.X.Rows(), t.Horizon)
	}
	x := ds.X.SliceRows(0, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = ds.X.At(i+t.Horizon, t.Target)
	}
	out := &dataset.Dataset{X: x, Y: y, ColNames: ds.ColNames, TargetName: ds.TargetName,
		ColScale: ds.ColScale, ColOffset: ds.ColOffset}
	out.YScale, out.YOffset = ds.ColAffine(t.Target)
	return out, nil
}

// TSAsIs passes the series through for estimators that consume raw ordered
// series (Figure 10: Zero model, AR). The output keeps one row per usable
// timestamp with Y[i] the target Horizon steps ahead; rows remain in time
// order and NumVars is set so series-native models know the layout.
type TSAsIs struct {
	Horizon int
	Target  int
}

// NewTSAsIs returns the pass-through series transformer.
func NewTSAsIs(horizon, target int) *TSAsIs { return &TSAsIs{Horizon: horizon, Target: target} }

// Name implements core.Component.
func (t *TSAsIs) Name() string { return "tsasis" }

// SetParam implements core.Component.
func (t *TSAsIs) SetParam(key string, v float64) error {
	switch key {
	case "horizon":
		t.Horizon = int(v)
	case "target":
		t.Target = int(v)
	default:
		return fmt.Errorf("tswindow: %s has no parameter %q", t.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (t *TSAsIs) Params() map[string]float64 {
	return map[string]float64{"horizon": float64(t.Horizon), "target": float64(t.Target)}
}

// Clone implements core.Transformer.
func (t *TSAsIs) Clone() core.Transformer {
	cp := *t
	return &cp
}

// Fit is stateless.
func (t *TSAsIs) Fit(*dataset.Dataset) error { return nil }

// Transform keeps the raw series, deriving the h-step-ahead target.
func (t *TSAsIs) Transform(ds *dataset.Dataset) (*dataset.Dataset, error) {
	if t.Horizon < 1 {
		return nil, fmt.Errorf("tswindow: %s: horizon %d < 1", t.Name(), t.Horizon)
	}
	if err := validateSeries(ds, t.Target); err != nil {
		return nil, fmt.Errorf("tswindow: %s: %w", t.Name(), err)
	}
	n := ds.X.Rows() - t.Horizon
	if n < 1 {
		return nil, fmt.Errorf("tswindow: %s: series of %d too short for horizon %d", t.Name(), ds.X.Rows(), t.Horizon)
	}
	x := ds.X.SliceRows(0, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = ds.X.At(i+t.Horizon, t.Target)
	}
	out := &dataset.Dataset{X: x, Y: y, ColNames: ds.ColNames, TargetName: ds.TargetName, NumVars: ds.X.Cols(),
		ColScale: ds.ColScale, ColOffset: ds.ColOffset}
	out.YScale, out.YOffset = ds.ColAffine(t.Target)
	return out, nil
}

// buildWindows materialises the L x (history*v) window matrix and targets in
// one backing allocation (the layout the F7 ablation compares against
// per-window allocation).
func buildWindows(ds *dataset.Dataset, history, horizon, target int) (*matrix.Matrix, []float64, int, error) {
	if history < 1 {
		return nil, nil, 0, fmt.Errorf("history %d < 1", history)
	}
	if horizon < 1 {
		return nil, nil, 0, fmt.Errorf("horizon %d < 1", horizon)
	}
	if err := validateSeries(ds, target); err != nil {
		return nil, nil, 0, err
	}
	v := ds.X.Cols()
	total := ds.X.Rows()
	l := total - history - horizon + 1
	if l < 1 {
		return nil, nil, 0, fmt.Errorf("series of %d too short for history %d + horizon %d", total, history, horizon)
	}
	x := matrix.New(l, history*v)
	y := make([]float64, l)
	for i := 0; i < l; i++ {
		dst := x.Row(i)
		for tIdx := 0; tIdx < history; tIdx++ {
			copy(dst[tIdx*v:(tIdx+1)*v], ds.X.Row(i+tIdx))
		}
		y[i] = ds.X.At(i+history+horizon-1, target)
	}
	return x, y, v, nil
}
