// Package tswindow implements the paper's custom time-series data
// preprocessors (Section IV-C4, Figures 7-10). Input datasets are
// multivariate series — X has one row per timestamp and one column per
// variable (Figure 6) — and the transformers reshape them into the layout
// each estimator family ingests:
//
//   - CascadedWindows (Fig 7): overlapping history windows of shape p x v,
//     order preserved, for the temporal networks (LSTM/CNN/WaveNet).
//   - FlatWindowing (Fig 8): the same windows flattened to 1 x p*v for
//     standard DNNs — history retained, ordering semantics dropped.
//   - TSAsIID (Fig 9): each timestamp as an independent sample, no history.
//   - TSAsIs (Fig 10): pass-through for models that consume raw series
//     (Zero model, AR).
//
// Every transformer also derives the prediction target: the value of the
// target variable Horizon steps after the window, so Y never overlaps the
// inputs it is predicted from.
package tswindow

import (
	"fmt"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/matrix"
)

func validateSeries(ds *dataset.Dataset, target int) error {
	if ds.X.Rows() == 0 {
		return fmt.Errorf("tswindow: empty series")
	}
	if target < 0 || target >= ds.X.Cols() {
		return fmt.Errorf("tswindow: target variable %d out of range for %d variables", target, ds.X.Cols())
	}
	return nil
}

// CascadedWindows converts a T x v series into L = T - History - Horizon + 1
// windows; window i holds rows i .. i+History-1 flattened time-major into a
// single row of length History*v, and Y[i] is the target variable at time
// i + History + Horizon - 1. The output dataset carries WindowLen = History
// and NumVars = v so temporal estimators can reinterpret rows as 2-D
// windows without copying.
type CascadedWindows struct {
	History int // window length p (>= 1)
	Horizon int // steps ahead to predict (>= 1)
	Target  int // target variable column
}

// NewCascadedWindows returns a window transformer with history p predicting
// the target variable horizon steps ahead.
func NewCascadedWindows(history, horizon, target int) *CascadedWindows {
	return &CascadedWindows{History: history, Horizon: horizon, Target: target}
}

// Name implements core.Component.
func (c *CascadedWindows) Name() string { return "cascadedwindows" }

// SetParam implements core.Component; "history", "horizon" and "target" are
// supported.
func (c *CascadedWindows) SetParam(key string, v float64) error {
	switch key {
	case "history":
		c.History = int(v)
	case "horizon":
		c.Horizon = int(v)
	case "target":
		c.Target = int(v)
	default:
		return fmt.Errorf("tswindow: %s has no parameter %q", c.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (c *CascadedWindows) Params() map[string]float64 {
	return map[string]float64{
		"history": float64(c.History),
		"horizon": float64(c.Horizon),
		"target":  float64(c.Target),
	}
}

// Clone implements core.Transformer.
func (c *CascadedWindows) Clone() core.Transformer {
	cp := *c
	return &cp
}

// Fit is stateless; windowing depends only on configuration.
func (c *CascadedWindows) Fit(*dataset.Dataset) error { return nil }

// Transform builds the cascaded windows.
func (c *CascadedWindows) Transform(ds *dataset.Dataset) (*dataset.Dataset, error) {
	x, y, v, err := buildWindows(ds, c.History, c.Horizon, c.Target, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("tswindow: %s: %w", c.Name(), err)
	}
	out := &dataset.Dataset{X: x, Y: y, TargetName: ds.TargetName, WindowLen: c.History, NumVars: v}
	out.YScale, out.YOffset = ds.ColAffine(c.Target)
	return out, nil
}

// TransformAffine implements core.AffineFuser: the upstream scaler's affine
// map is applied per element while the windows are copied, so the scaled
// T x v intermediate is never materialised.
func (c *CascadedWindows) TransformAffine(ds *dataset.Dataset, sub, div []float64) (*dataset.Dataset, error) {
	x, y, v, err := buildWindows(ds, c.History, c.Horizon, c.Target, sub, div)
	if err != nil {
		return nil, fmt.Errorf("tswindow: %s: %w", c.Name(), err)
	}
	out := &dataset.Dataset{X: x, Y: y, TargetName: ds.TargetName, WindowLen: c.History, NumVars: v}
	out.YScale, out.YOffset = composeAffine(ds, c.Target, sub, div)
	return out, nil
}

// TransformWindowView implements core.ViewFuser: instead of materialising
// the L x (History*v) window matrix, it returns a dataset whose X is nil
// and whose Win is a zero-copy affine-scaled view over the source series.
// Targets and affine metadata are derived exactly as TransformAffine does
// (sub/div nil means no pending scaler — the identity affine, which is
// exact). Only taken when the consuming estimator opts in; window values
// gathered from the view are bit-identical to the materialised windows
// because the affine is applied once per element on either path.
func (c *CascadedWindows) TransformWindowView(ds *dataset.Dataset, sub, div []float64) (*dataset.Dataset, error) {
	if c.History < 1 {
		return nil, fmt.Errorf("tswindow: %s: history %d < 1", c.Name(), c.History)
	}
	if c.Horizon < 1 {
		return nil, fmt.Errorf("tswindow: %s: horizon %d < 1", c.Name(), c.Horizon)
	}
	if err := validateSeries(ds, c.Target); err != nil {
		return nil, fmt.Errorf("tswindow: %s: %w", c.Name(), err)
	}
	if sub != nil {
		if err := checkAffine(ds, sub, div); err != nil {
			return nil, fmt.Errorf("tswindow: %s: %w", c.Name(), err)
		}
	}
	win, err := dataset.NewWindowView(ds.X, c.History, c.Horizon, sub, div)
	if err != nil {
		return nil, fmt.Errorf("tswindow: %s: %w", c.Name(), err)
	}
	l := win.Windows()
	y := make([]float64, l)
	for i := 0; i < l; i++ {
		raw := ds.X.At(i+c.History+c.Horizon-1, c.Target)
		if sub == nil {
			y[i] = raw
		} else {
			y[i] = applyAffine(raw, sub[c.Target], div[c.Target])
		}
	}
	out := &dataset.Dataset{Win: win, Y: y, TargetName: ds.TargetName, WindowLen: c.History, NumVars: ds.X.Cols()}
	if sub == nil {
		out.YScale, out.YOffset = ds.ColAffine(c.Target)
	} else {
		out.YScale, out.YOffset = composeAffine(ds, c.Target, sub, div)
	}
	return out, nil
}

// FlatWindowing produces the same L windows as CascadedWindows but marks
// the output as flat transactional data (WindowLen = 0), matching Figure 8:
// temporal history is present in the features, ordering semantics are not.
type FlatWindowing struct {
	History int
	Horizon int
	Target  int
}

// NewFlatWindowing returns a flattening window transformer.
func NewFlatWindowing(history, horizon, target int) *FlatWindowing {
	return &FlatWindowing{History: history, Horizon: horizon, Target: target}
}

// Name implements core.Component.
func (f *FlatWindowing) Name() string { return "flatwindowing" }

// SetParam implements core.Component.
func (f *FlatWindowing) SetParam(key string, v float64) error {
	switch key {
	case "history":
		f.History = int(v)
	case "horizon":
		f.Horizon = int(v)
	case "target":
		f.Target = int(v)
	default:
		return fmt.Errorf("tswindow: %s has no parameter %q", f.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (f *FlatWindowing) Params() map[string]float64 {
	return map[string]float64{
		"history": float64(f.History),
		"horizon": float64(f.Horizon),
		"target":  float64(f.Target),
	}
}

// Clone implements core.Transformer.
func (f *FlatWindowing) Clone() core.Transformer {
	cp := *f
	return &cp
}

// Fit is stateless.
func (f *FlatWindowing) Fit(*dataset.Dataset) error { return nil }

// Transform builds flattened windows.
func (f *FlatWindowing) Transform(ds *dataset.Dataset) (*dataset.Dataset, error) {
	x, y, _, err := buildWindows(ds, f.History, f.Horizon, f.Target, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("tswindow: %s: %w", f.Name(), err)
	}
	// WindowLen stays 0: downstream estimators treat rows as flat vectors.
	out := &dataset.Dataset{X: x, Y: y, TargetName: ds.TargetName}
	out.YScale, out.YOffset = ds.ColAffine(f.Target)
	return out, nil
}

// TransformAffine implements core.AffineFuser (see CascadedWindows).
func (f *FlatWindowing) TransformAffine(ds *dataset.Dataset, sub, div []float64) (*dataset.Dataset, error) {
	x, y, _, err := buildWindows(ds, f.History, f.Horizon, f.Target, sub, div)
	if err != nil {
		return nil, fmt.Errorf("tswindow: %s: %w", f.Name(), err)
	}
	out := &dataset.Dataset{X: x, Y: y, TargetName: ds.TargetName}
	out.YScale, out.YOffset = composeAffine(ds, f.Target, sub, div)
	return out, nil
}

// TSAsIID exposes each timestamp as an independent sample (Figure 9): X row
// i is the raw variable vector at time i, Y[i] the target variable Horizon
// steps later. No history is available to the model.
type TSAsIID struct {
	Horizon int
	Target  int
}

// NewTSAsIID returns the transactional view transformer.
func NewTSAsIID(horizon, target int) *TSAsIID { return &TSAsIID{Horizon: horizon, Target: target} }

// Name implements core.Component.
func (t *TSAsIID) Name() string { return "tsasiid" }

// SetParam implements core.Component.
func (t *TSAsIID) SetParam(key string, v float64) error {
	switch key {
	case "horizon":
		t.Horizon = int(v)
	case "target":
		t.Target = int(v)
	default:
		return fmt.Errorf("tswindow: %s has no parameter %q", t.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (t *TSAsIID) Params() map[string]float64 {
	return map[string]float64{"horizon": float64(t.Horizon), "target": float64(t.Target)}
}

// Clone implements core.Transformer.
func (t *TSAsIID) Clone() core.Transformer {
	cp := *t
	return &cp
}

// Fit is stateless.
func (t *TSAsIID) Fit(*dataset.Dataset) error { return nil }

// Transform builds the IID view.
func (t *TSAsIID) Transform(ds *dataset.Dataset) (*dataset.Dataset, error) {
	if t.Horizon < 1 {
		return nil, fmt.Errorf("tswindow: %s: horizon %d < 1", t.Name(), t.Horizon)
	}
	if err := validateSeries(ds, t.Target); err != nil {
		return nil, fmt.Errorf("tswindow: %s: %w", t.Name(), err)
	}
	n := ds.X.Rows() - t.Horizon
	if n < 1 {
		return nil, fmt.Errorf("tswindow: %s: series of %d too short for horizon %d", t.Name(), ds.X.Rows(), t.Horizon)
	}
	x := ds.X.SliceRows(0, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = ds.X.At(i+t.Horizon, t.Target)
	}
	out := &dataset.Dataset{X: x, Y: y, ColNames: ds.ColNames, TargetName: ds.TargetName,
		ColScale: ds.ColScale, ColOffset: ds.ColOffset}
	out.YScale, out.YOffset = ds.ColAffine(t.Target)
	return out, nil
}

// TransformAffine implements core.AffineFuser: rows are copied with the
// upstream scaler's affine map applied in place of the scaled intermediate.
func (t *TSAsIID) TransformAffine(ds *dataset.Dataset, sub, div []float64) (*dataset.Dataset, error) {
	x, y, err := sliceSeriesAffine(ds, t.Horizon, t.Target, sub, div, t.Name())
	if err != nil {
		return nil, err
	}
	out := &dataset.Dataset{X: x, Y: y, ColNames: ds.ColNames, TargetName: ds.TargetName}
	out.ColScale, out.ColOffset = composeAffineAll(ds, sub, div)
	out.YScale, out.YOffset = composeAffine(ds, t.Target, sub, div)
	return out, nil
}

// TSAsIs passes the series through for estimators that consume raw ordered
// series (Figure 10: Zero model, AR). The output keeps one row per usable
// timestamp with Y[i] the target Horizon steps ahead; rows remain in time
// order and NumVars is set so series-native models know the layout.
type TSAsIs struct {
	Horizon int
	Target  int
}

// NewTSAsIs returns the pass-through series transformer.
func NewTSAsIs(horizon, target int) *TSAsIs { return &TSAsIs{Horizon: horizon, Target: target} }

// Name implements core.Component.
func (t *TSAsIs) Name() string { return "tsasis" }

// SetParam implements core.Component.
func (t *TSAsIs) SetParam(key string, v float64) error {
	switch key {
	case "horizon":
		t.Horizon = int(v)
	case "target":
		t.Target = int(v)
	default:
		return fmt.Errorf("tswindow: %s has no parameter %q", t.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (t *TSAsIs) Params() map[string]float64 {
	return map[string]float64{"horizon": float64(t.Horizon), "target": float64(t.Target)}
}

// Clone implements core.Transformer.
func (t *TSAsIs) Clone() core.Transformer {
	cp := *t
	return &cp
}

// Fit is stateless.
func (t *TSAsIs) Fit(*dataset.Dataset) error { return nil }

// Transform keeps the raw series, deriving the h-step-ahead target.
func (t *TSAsIs) Transform(ds *dataset.Dataset) (*dataset.Dataset, error) {
	if t.Horizon < 1 {
		return nil, fmt.Errorf("tswindow: %s: horizon %d < 1", t.Name(), t.Horizon)
	}
	if err := validateSeries(ds, t.Target); err != nil {
		return nil, fmt.Errorf("tswindow: %s: %w", t.Name(), err)
	}
	n := ds.X.Rows() - t.Horizon
	if n < 1 {
		return nil, fmt.Errorf("tswindow: %s: series of %d too short for horizon %d", t.Name(), ds.X.Rows(), t.Horizon)
	}
	x := ds.X.SliceRows(0, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = ds.X.At(i+t.Horizon, t.Target)
	}
	out := &dataset.Dataset{X: x, Y: y, ColNames: ds.ColNames, TargetName: ds.TargetName, NumVars: ds.X.Cols(),
		ColScale: ds.ColScale, ColOffset: ds.ColOffset}
	out.YScale, out.YOffset = ds.ColAffine(t.Target)
	return out, nil
}

// TransformAffine implements core.AffineFuser (see TSAsIID).
func (t *TSAsIs) TransformAffine(ds *dataset.Dataset, sub, div []float64) (*dataset.Dataset, error) {
	x, y, err := sliceSeriesAffine(ds, t.Horizon, t.Target, sub, div, t.Name())
	if err != nil {
		return nil, err
	}
	out := &dataset.Dataset{X: x, Y: y, ColNames: ds.ColNames, TargetName: ds.TargetName, NumVars: ds.X.Cols()}
	out.ColScale, out.ColOffset = composeAffineAll(ds, sub, div)
	out.YScale, out.YOffset = composeAffine(ds, t.Target, sub, div)
	return out, nil
}

// applyAffine maps one value through the scaler affine: v = x - sub, then
// divided by div when div != 0, or exactly 0 when div == 0 (the MinMax
// constant-column sentinel). This matches every scaler Transform bit for bit
// — Standard/Robust encode degenerate columns as div = 1, and x/1.0 is
// exact.
func applyAffine(x, sub, div float64) float64 {
	v := x - sub
	if div != 0 {
		return v / div
	}
	return 0
}

// checkAffine validates a fused affine map against the input width.
func checkAffine(ds *dataset.Dataset, sub, div []float64) error {
	if len(sub) != ds.X.Cols() || len(div) != ds.X.Cols() {
		return fmt.Errorf("affine of %d/%d cols on %d-col series", len(sub), len(div), ds.X.Cols())
	}
	return nil
}

// composeAffine returns the scaled-to-original affine metadata for column j
// exactly as the unfused path would: the scaler's setAffine composes
// scale = div (or 1 when div == 0) and offset = sub with the input's
// existing affine, and the windower then reads ColAffine(j) from that
// intermediate.
func composeAffine(ds *dataset.Dataset, j int, sub, div []float64) (scale, offset float64) {
	inScale, inOffset := ds.ColAffine(j)
	eff := div[j]
	if eff == 0 {
		eff = 1
	}
	return eff * inScale, sub[j]*inScale + inOffset
}

// composeAffineAll is composeAffine over every column.
func composeAffineAll(ds *dataset.Dataset, sub, div []float64) (scale, offset []float64) {
	n := len(sub)
	scale = make([]float64, n)
	offset = make([]float64, n)
	for j := 0; j < n; j++ {
		scale[j], offset[j] = composeAffine(ds, j, sub, div)
	}
	return scale, offset
}

// sliceSeriesAffine is the fused core of TSAsIID/TSAsIs.TransformAffine:
// the first Rows-Horizon rows copied with the affine applied, plus the
// affine-scaled h-step-ahead targets.
func sliceSeriesAffine(ds *dataset.Dataset, horizon, target int, sub, div []float64, name string) (*matrix.Matrix, []float64, error) {
	if horizon < 1 {
		return nil, nil, fmt.Errorf("tswindow: %s: horizon %d < 1", name, horizon)
	}
	if err := validateSeries(ds, target); err != nil {
		return nil, nil, fmt.Errorf("tswindow: %s: %w", name, err)
	}
	if err := checkAffine(ds, sub, div); err != nil {
		return nil, nil, fmt.Errorf("tswindow: %s: %w", name, err)
	}
	n := ds.X.Rows() - horizon
	if n < 1 {
		return nil, nil, fmt.Errorf("tswindow: %s: series of %d too short for horizon %d", name, ds.X.Rows(), horizon)
	}
	v := ds.X.Cols()
	x := matrix.New(n, v)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		src := ds.X.Row(i)
		dst := x.Row(i)
		for j := 0; j < v; j++ {
			dst[j] = applyAffine(src[j], sub[j], div[j])
		}
		y[i] = applyAffine(ds.X.At(i+horizon, target), sub[target], div[target])
	}
	return x, y, nil
}

// buildWindows materialises the L x (history*v) window matrix and targets in
// one backing allocation (the layout the F7 ablation compares against
// per-window allocation). When sub/div are non-nil the upstream scaler's
// affine map is applied per element during the copy (the fused path), which
// is bit-identical to windowing an affine-scaled copy of the series.
func buildWindows(ds *dataset.Dataset, history, horizon, target int, sub, div []float64) (*matrix.Matrix, []float64, int, error) {
	if history < 1 {
		return nil, nil, 0, fmt.Errorf("history %d < 1", history)
	}
	if horizon < 1 {
		return nil, nil, 0, fmt.Errorf("horizon %d < 1", horizon)
	}
	if err := validateSeries(ds, target); err != nil {
		return nil, nil, 0, err
	}
	if sub != nil {
		if err := checkAffine(ds, sub, div); err != nil {
			return nil, nil, 0, err
		}
	}
	v := ds.X.Cols()
	total := ds.X.Rows()
	l := total - history - horizon + 1
	if l < 1 {
		return nil, nil, 0, fmt.Errorf("series of %d too short for history %d + horizon %d", total, history, horizon)
	}
	x := matrix.New(l, history*v)
	y := make([]float64, l)
	for i := 0; i < l; i++ {
		dst := x.Row(i)
		for tIdx := 0; tIdx < history; tIdx++ {
			src := ds.X.Row(i + tIdx)
			seg := dst[tIdx*v : (tIdx+1)*v]
			if sub == nil {
				copy(seg, src)
			} else {
				for j := 0; j < v; j++ {
					seg[j] = applyAffine(src[j], sub[j], div[j])
				}
			}
		}
		raw := ds.X.At(i+history+horizon-1, target)
		if sub == nil {
			y[i] = raw
		} else {
			y[i] = applyAffine(raw, sub[target], div[target])
		}
	}
	return x, y, v, nil
}
