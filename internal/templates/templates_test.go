package templates

import (
	"math/rand"
	"testing"

	"coda/internal/dataset"
	"coda/internal/matrix"
	"coda/internal/sim"
)

func TestFailurePredictionDetectsInjectedFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fd, err := sim.GenerateFailureData(sim.FailureSpec{Steps: 1200, Sensors: 4, Failures: 12, LeadTime: 12}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for name, model := range map[string]FPAModel{"logistic": FPALogistic, "forest": FPAForest} {
		model := model
		t.Run(name, func(t *testing.T) {
			res, err := FailurePrediction(fd.Series, fd.Labels, FPAConfig{History: 6, Model: model, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.TestPositives == 0 {
				t.Skip("no failures landed in the test range")
			}
			if res.F1 < 0.5 {
				t.Fatalf("%s F1 = %v on learnable precursor signature", name, res.F1)
			}
		})
	}
}

func TestFailurePredictionValidation(t *testing.T) {
	x := matrix.New(10, 2)
	series, _ := dataset.New(x, nil)
	if _, err := FailurePrediction(series, []float64{1}, FPAConfig{}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := FailurePrediction(series, make([]float64, 10), FPAConfig{History: 8}); err == nil {
		t.Fatal("want too-short error")
	}
}

func TestRootCauseAnalysisRanksTrueDrivers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 300
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		a, b, c := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		rows[i] = []float64{a, b, c}
		// Outcome driven mostly by factor b (negatively), a little by a.
		y[i] = 0.5*a - 3*b + 0.05*rng.NormFloat64()
		_ = c // noise factor
	}
	x, err := matrix.NewFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.New(x, y)
	if err != nil {
		t.Fatal(err)
	}
	ds.ColNames = []string{"temp", "pressure", "humidity"}
	res, err := RootCauseAnalysis(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Factors[0].Name != "pressure" || res.Factors[0].Direction != -1 {
		t.Fatalf("top factor = %+v, want pressure with negative direction", res.Factors[0])
	}
	if res.Factors[1].Name != "temp" || res.Factors[1].Direction != 1 {
		t.Fatalf("second factor = %+v, want temp positive", res.Factors[1])
	}
	if res.Factors[2].Name != "humidity" {
		t.Fatalf("noise factor should rank last: %+v", res.Factors)
	}
	if res.R2 < 0.95 {
		t.Fatalf("RCA model R2 = %v", res.R2)
	}
}

func TestRootCauseAnalysisValidation(t *testing.T) {
	x := matrix.New(3, 5)
	ds, _ := dataset.New(x, []float64{1, 2, 3})
	if _, err := RootCauseAnalysis(ds); err == nil {
		t.Fatal("want too-few-samples error")
	}
	ds2, _ := dataset.New(x, nil)
	if _, err := RootCauseAnalysis(ds2); err == nil {
		t.Fatal("want missing-outcome error")
	}
}

func TestAnomalyAnalysisFindsInjectedSpikes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ad, err := sim.GenerateAnomalyData(sim.AnomalySpec{Steps: 600, Vars: 2, Anomalies: 5, Magnitude: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnomalyAnalysis(ad.Series, AnomalyConfig{Threshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Every injected anomaly should be flagged at (or adjacent to) its
	// timestamp — a point spike also distorts the next step's AR residual.
	flagged := map[int]bool{}
	for _, at := range res.AnomalousAt {
		flagged[at] = true
	}
	hits := 0
	for _, truth := range ad.AnomalyTimes {
		if flagged[truth] || flagged[truth+1] || flagged[truth-1] {
			hits++
		}
	}
	if hits < len(ad.AnomalyTimes)-1 {
		t.Fatalf("found %d of %d injected anomalies (flagged %v, truth %v)", hits, len(ad.AnomalyTimes), res.AnomalousAt, ad.AnomalyTimes)
	}
	// Flag rate sanity: not everything is anomalous. A point spike can
	// contaminate a few neighbouring residuals, so allow up to ~4 flags
	// per injected anomaly.
	if len(res.AnomalousAt) > 4*len(ad.AnomalyTimes)+5 {
		t.Fatalf("flagged %d timestamps for %d injected anomalies", len(res.AnomalousAt), len(ad.AnomalyTimes))
	}
}

func TestAnomalyAnalysisValidation(t *testing.T) {
	x := matrix.New(50, 1)
	series, _ := dataset.New(x, nil)
	if _, err := AnomalyAnalysis(series, AnomalyConfig{Target: 5}); err == nil {
		t.Fatal("want target range error")
	}
}

func TestCohortAnalysisRecoversFleetStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fleet, err := sim.GenerateFleet(sim.FleetSpec{Assets: 18, Cohorts: 3, StepsEach: 60}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CohortAnalysis(fleet.AssetSeries, CohortConfig{Cohorts: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	purity, err := CohortPurity(res.Assignment, fleet.TrueCohort)
	if err != nil {
		t.Fatal(err)
	}
	if purity < 0.9 {
		t.Fatalf("cohort purity %v", purity)
	}
	if len(res.Summaries) != 18 || len(res.Summaries[0]) != 6 {
		t.Fatalf("summary shape %dx%d", len(res.Summaries), len(res.Summaries[0]))
	}
}

func TestCohortAnalysisValidation(t *testing.T) {
	if _, err := CohortAnalysis(nil, CohortConfig{Cohorts: 1}); err == nil {
		t.Fatal("want cohorts error")
	}
	x := matrix.New(10, 2)
	a, _ := dataset.New(x, nil)
	if _, err := CohortAnalysis([]*dataset.Dataset{a}, CohortConfig{Cohorts: 2}); err == nil {
		t.Fatal("want too-few-assets error")
	}
	b, _ := dataset.New(matrix.New(10, 3), nil)
	if _, err := CohortAnalysis([]*dataset.Dataset{a, b}, CohortConfig{Cohorts: 2}); err == nil {
		t.Fatal("want var mismatch error")
	}
}

func TestCohortPurityValidation(t *testing.T) {
	if _, err := CohortPurity([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("want length error")
	}
	p, err := CohortPurity([]int{0, 0, 1, 1}, []int{5, 5, 9, 9})
	if err != nil || p != 1 {
		t.Fatalf("perfect purity = %v err %v", p, err)
	}
}
