// Package templates packages the paper's AI solution templates (Section
// IV-E): Failure Prediction Analysis, Root Cause Analysis, Anomaly
// Analysis, and Cohort Analysis. Each is a one-call workflow built on the
// Transformer-Estimator machinery, trading generality for consumability by
// non-expert users — the paper's stated design point for heavy industry.
package templates

import (
	"fmt"
	"math"
	"sort"

	"coda/internal/dataset"
	"coda/internal/matrix"
	"coda/internal/metrics"
	"coda/internal/mlmodels"
	"coda/internal/preprocess"
	"coda/internal/tswindow"
)

// FPAModel selects the classifier behind Failure Prediction Analysis.
type FPAModel int

// Supported FPA classifiers.
const (
	FPALogistic FPAModel = iota + 1
	FPAForest
)

// FPAConfig configures FailurePrediction.
type FPAConfig struct {
	History   int      // sensor history window per sample (default 8)
	Model     FPAModel // classifier (default FPALogistic)
	TrainFrac float64  // leading fraction of time used for training (default 0.7)
	Seed      int64
}

// FPAResult reports a trained failure-prediction model and its quality on
// the held-out (later) time range.
type FPAResult struct {
	Precision, Recall, F1, AUC float64
	TestPositives              int
	Predictions                []float64 // hard labels on the test range
}

// FailurePrediction builds machine-learning models that predict imminent
// failures from historical sensor data and failure logs: sensor windows are
// flattened into feature vectors labelled with the failure flag at the
// window's end, trained on the early portion of history and evaluated on
// the later portion (no temporal leakage).
func FailurePrediction(series *dataset.Dataset, labels []float64, cfg FPAConfig) (*FPAResult, error) {
	if series.NumSamples() != len(labels) {
		return nil, fmt.Errorf("templates: %d sensor rows vs %d labels", series.NumSamples(), len(labels))
	}
	if cfg.History <= 0 {
		cfg.History = 8
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.7
	}
	if cfg.Model == 0 {
		cfg.Model = FPALogistic
	}
	t := series.NumSamples()
	if t < cfg.History*4 {
		return nil, fmt.Errorf("templates: series of %d too short for history %d", t, cfg.History)
	}

	// Build flat windows; the label for a window ending at time e is
	// labels[e] (is a failure imminent now?).
	n := t - cfg.History + 1
	x := matrix.New(n, cfg.History*series.NumFeatures())
	y := make([]float64, n)
	v := series.NumFeatures()
	for i := 0; i < n; i++ {
		dst := x.Row(i)
		for k := 0; k < cfg.History; k++ {
			copy(dst[k*v:(k+1)*v], series.X.Row(i+k))
		}
		y[i] = labels[i+cfg.History-1]
	}
	all, err := dataset.New(x, y)
	if err != nil {
		return nil, fmt.Errorf("templates: building FPA dataset: %w", err)
	}
	cut := int(float64(n) * cfg.TrainFrac)
	if cut <= 0 || cut >= n {
		return nil, fmt.Errorf("templates: train fraction %v leaves an empty split", cfg.TrainFrac)
	}
	train, test := all.SliceRange(0, cut), all.SliceRange(cut, n)

	scaler := preprocess.NewStandardScaler()
	if err := scaler.Fit(train); err != nil {
		return nil, fmt.Errorf("templates: FPA scaler: %w", err)
	}
	trainS, err := scaler.Transform(train)
	if err != nil {
		return nil, err
	}
	testS, err := scaler.Transform(test)
	if err != nil {
		return nil, err
	}

	res := &FPAResult{}
	var preds, scores []float64
	switch cfg.Model {
	case FPALogistic:
		clf := mlmodels.NewLogisticRegression()
		clf.Epochs = 400
		if err := clf.Fit(trainS); err != nil {
			return nil, fmt.Errorf("templates: FPA logistic fit: %w", err)
		}
		if preds, err = clf.Predict(testS); err != nil {
			return nil, err
		}
		if scores, err = clf.PredictProba(testS); err != nil {
			return nil, err
		}
	case FPAForest:
		clf := mlmodels.NewRandomForest(mlmodels.TreeClassification, 40)
		clf.Seed = cfg.Seed
		if err := clf.Fit(trainS); err != nil {
			return nil, fmt.Errorf("templates: FPA forest fit: %w", err)
		}
		if preds, err = clf.Predict(testS); err != nil {
			return nil, err
		}
		scores = preds
	default:
		return nil, fmt.Errorf("templates: unknown FPA model %d", cfg.Model)
	}

	res.Predictions = preds
	res.Precision, res.Recall, res.F1, err = metrics.PrecisionRecallF1(testS.Y, preds)
	if err != nil {
		return nil, err
	}
	for _, l := range testS.Y {
		if l == 1 {
			res.TestPositives++
		}
	}
	if auc, err := metrics.AUC(testS.Y, scores); err == nil {
		res.AUC = auc
	}
	return res, nil
}

// Factor is one ranked driver from Root Cause Analysis.
type Factor struct {
	Name string
	// Importance is the absolute standardized effect on the outcome.
	Importance float64
	// Direction is +1 when increasing the factor increases the outcome,
	// -1 otherwise — the intervention hint the paper calls for.
	Direction float64
}

// RCAResult ranks the statistical drivers of an outcome.
type RCAResult struct {
	Factors []Factor // sorted by decreasing importance
	R2      float64  // fit quality of the explanatory model
}

// RootCauseAnalysis fits a standardized linear model of the outcome (Y)
// against the process factors (X) and ranks factors by absolute
// standardized coefficient — the sensitivity analysis of Section II: how
// much each factor contributes and in which direction.
func RootCauseAnalysis(ds *dataset.Dataset) (*RCAResult, error) {
	if ds.Y == nil {
		return nil, fmt.Errorf("templates: RCA requires an outcome column")
	}
	if ds.NumSamples() < ds.NumFeatures()+2 {
		return nil, fmt.Errorf("templates: RCA needs more samples (%d) than factors (%d)", ds.NumSamples(), ds.NumFeatures())
	}
	scaler := preprocess.NewStandardScaler()
	if err := scaler.Fit(ds); err != nil {
		return nil, err
	}
	scaled, err := scaler.Transform(ds)
	if err != nil {
		return nil, err
	}
	lr := mlmodels.NewLinearRegression()
	if err := lr.Fit(scaled); err != nil {
		return nil, fmt.Errorf("templates: RCA model: %w", err)
	}
	coef, _, err := lr.Coefficients()
	if err != nil {
		return nil, err
	}
	preds, err := lr.Predict(scaled)
	if err != nil {
		return nil, err
	}
	r2, err := metrics.R2(scaled.Y, preds)
	if err != nil {
		return nil, err
	}
	out := &RCAResult{R2: r2}
	for j, c := range coef {
		name := fmt.Sprintf("x%d", j)
		if ds.ColNames != nil && j < len(ds.ColNames) {
			name = ds.ColNames[j]
		}
		dir := 1.0
		if c < 0 {
			dir = -1
		}
		out.Factors = append(out.Factors, Factor{Name: name, Importance: math.Abs(c), Direction: dir})
	}
	sort.Slice(out.Factors, func(a, b int) bool { return out.Factors[a].Importance > out.Factors[b].Importance })
	return out, nil
}

// AnomalyConfig configures AnomalyAnalysis.
type AnomalyConfig struct {
	// Threshold is the robust z-score above which a point is flagged
	// (default 5).
	Threshold float64
	// Order is the AR order of the normal-behaviour model (default 4).
	Order int
	// Target is the monitored variable column (default 0).
	Target int
}

// AnomalyResult flags timestamps operating in an anomalous mode.
type AnomalyResult struct {
	Scores      []float64 // robust z-score per timestamp
	AnomalousAt []int     // flagged timestamps, ascending
}

// AnomalyAnalysis models normal operation with an AR predictor of the
// monitored variable and flags timestamps whose prediction residual exceeds
// Threshold robust standard deviations (median absolute deviation scaled),
// separating normal from anomalous operating modes.
func AnomalyAnalysis(series *dataset.Dataset, cfg AnomalyConfig) (*AnomalyResult, error) {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 5
	}
	if cfg.Order <= 0 {
		cfg.Order = 4
	}
	if cfg.Target < 0 || cfg.Target >= series.NumFeatures() {
		return nil, fmt.Errorf("templates: anomaly target %d out of range", cfg.Target)
	}
	view, err := tswindow.NewTSAsIs(1, cfg.Target).Transform(series)
	if err != nil {
		return nil, fmt.Errorf("templates: anomaly view: %w", err)
	}
	ar := mlmodels.NewARModel(cfg.Order, cfg.Target)
	if err := ar.Fit(view); err != nil {
		return nil, fmt.Errorf("templates: anomaly AR model: %w", err)
	}
	preds, err := ar.Predict(view)
	if err != nil {
		return nil, err
	}
	resid := make([]float64, len(preds))
	for i := range preds {
		resid[i] = view.Y[i] - preds[i]
	}
	med, mad := medianMAD(resid)
	scale := 1.4826 * mad // MAD -> sigma for normal data
	if scale == 0 {
		scale = 1e-12
	}
	res := &AnomalyResult{Scores: make([]float64, len(resid))}
	for i, r := range resid {
		res.Scores[i] = math.Abs(r-med) / scale
		if res.Scores[i] > cfg.Threshold {
			// Residual at view index i concerns the series value at
			// time i+1 (horizon 1).
			res.AnomalousAt = append(res.AnomalousAt, i+1)
		}
	}
	return res, nil
}

func medianMAD(xs []float64) (med, mad float64) {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	med = s[len(s)/2]
	dev := make([]float64, len(s))
	for i, v := range s {
		dev[i] = math.Abs(v - med)
	}
	sort.Float64s(dev)
	return med, dev[len(dev)/2]
}

// CohortConfig configures CohortAnalysis.
type CohortConfig struct {
	Cohorts int // number of behaviour groups (>= 2)
	Seed    int64
}

// CohortResult groups assets by modelled behaviour.
type CohortResult struct {
	Assignment []int       // cohort index per asset
	Summaries  [][]float64 // per-asset behaviour feature vector used for clustering
}

// CohortAnalysis summarizes each asset's historical sensor behaviour (per
// variable: mean, standard deviation, and lag-1 autocorrelation) and
// clusters the summaries with k-means, bucketing similar assets into
// cohorts for fleet-level understanding.
func CohortAnalysis(assets []*dataset.Dataset, cfg CohortConfig) (*CohortResult, error) {
	if cfg.Cohorts < 2 {
		return nil, fmt.Errorf("templates: need >= 2 cohorts, got %d", cfg.Cohorts)
	}
	if len(assets) < cfg.Cohorts {
		return nil, fmt.Errorf("templates: %d assets cannot form %d cohorts", len(assets), cfg.Cohorts)
	}
	vars := assets[0].NumFeatures()
	rows := make([][]float64, len(assets))
	// noise[j] estimates each summary feature's per-asset sampling
	// uncertainty, averaged over the fleet.
	noise := make([]float64, 3*vars)
	for a, s := range assets {
		if s.NumFeatures() != vars {
			return nil, fmt.Errorf("templates: asset %d has %d vars, want %d", a, s.NumFeatures(), vars)
		}
		if s.NumSamples() < 3 {
			return nil, fmt.Errorf("templates: asset %d has too little history", a)
		}
		sqrtT := math.Sqrt(float64(s.NumSamples()))
		feats := make([]float64, 0, 3*vars)
		means := s.X.ColMeans()
		stds := s.X.ColStds()
		for j := 0; j < vars; j++ {
			feats = append(feats, means[j], stds[j], lag1Autocorr(s.X.ColCopy(j)))
			noise[3*j] += stds[j] / sqrtT / float64(len(assets))
			noise[3*j+1] += stds[j] / (math.Sqrt2 * sqrtT) / float64(len(assets))
			noise[3*j+2] += 1 / sqrtT / float64(len(assets))
		}
		rows[a] = feats
	}
	x, err := matrix.NewFromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("templates: cohort features: %w", err)
	}
	// Keep only summary features whose cross-asset spread clearly exceeds
	// their sampling noise. Without this, standardization inflates
	// pure-noise summaries (e.g. per-asset std when every asset has the
	// same noise floor) to unit variance and they scramble the
	// clustering.
	spread := x.ColStds()
	var keep []int
	for j, s := range spread {
		if s > 2*noise[j] {
			keep = append(keep, j)
		}
	}
	if len(keep) == 0 {
		// No feature is clearly informative; fall back to all of them.
		keep = make([]int, len(spread))
		for j := range keep {
			keep[j] = j
		}
	}
	summary, err := dataset.New(x.SelectCols(keep), nil)
	if err != nil {
		return nil, err
	}
	// Standardize the surviving summaries so scale differences don't
	// dominate the distance metric.
	scaler := preprocess.NewStandardScaler()
	if err := scaler.Fit(summary); err != nil {
		return nil, err
	}
	scaled, err := scaler.Transform(summary)
	if err != nil {
		return nil, err
	}
	km := mlmodels.NewKMeans(cfg.Cohorts)
	km.Seed = cfg.Seed
	if err := km.Fit(scaled); err != nil {
		return nil, fmt.Errorf("templates: cohort clustering: %w", err)
	}
	assign, err := km.Predict(scaled)
	if err != nil {
		return nil, err
	}
	out := &CohortResult{Assignment: make([]int, len(assets)), Summaries: rows}
	for i, a := range assign {
		out.Assignment[i] = int(a)
	}
	return out, nil
}

func lag1Autocorr(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mean := 0.0
	for _, v := range xs {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n-1; i++ {
		num += (xs[i] - mean) * (xs[i+1] - mean)
	}
	for _, v := range xs {
		den += (v - mean) * (v - mean)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// CohortPurity scores an assignment against ground truth by majority-class
// agreement within each discovered cohort — used by the S4 experiment.
func CohortPurity(assignment, truth []int) (float64, error) {
	if len(assignment) != len(truth) || len(assignment) == 0 {
		return 0, fmt.Errorf("templates: purity needs equal non-empty slices")
	}
	groups := map[int]map[int]int{}
	for i, c := range assignment {
		if groups[c] == nil {
			groups[c] = map[int]int{}
		}
		groups[c][truth[i]]++
	}
	agree := 0
	for _, counts := range groups {
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		agree += best
	}
	return float64(agree) / float64(len(assignment)), nil
}
