// Package sim generates synthetic multivariate industrial sensor data — the
// substitute for the paper's proprietary heavy-industry customer data. Each
// generator produces series with a known temporal structure so experiments
// can check *which model family should win where*: autocorrelated (AR)
// dynamics favour temporal models, random walks favour the Zero baseline,
// transactional cross-variable dependencies favour IID models. The package
// also injects ground-truth failures and anomalies for the solution-template
// experiments (FPA, RCA, Anomaly, Cohort).
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"coda/internal/dataset"
	"coda/internal/matrix"
)

// Regime names a temporal structure for GenerateSeries.
type Regime int

// Temporal regimes with known best-model families.
const (
	// RegimeAR: stable AR(2) dynamics plus seasonality — history helps, so
	// temporal models and AR should beat the Zero baseline.
	RegimeAR Regime = iota + 1
	// RegimeRandomWalk: a martingale — the Zero model (predict last value)
	// is optimal; nothing should beat it meaningfully.
	RegimeRandomWalk
	// RegimeTransactional: the target depends on the *current* values of
	// the other variables, not on its own history — IID models suffice.
	RegimeTransactional
	// RegimeSeasonal: strong periodic component with noise — models that
	// can see at least one period of history win.
	RegimeSeasonal
	// RegimeMeanShift: AR(1) dynamics around an operating level that
	// jumps abruptly every ~Steps/6 timestamps — genuine concept drift.
	// A model fitted before a shift carries the stale level; retraining
	// after shifts restores accuracy (the S3 experiment).
	RegimeMeanShift
)

// String names the regime.
func (r Regime) String() string {
	switch r {
	case RegimeAR:
		return "ar"
	case RegimeRandomWalk:
		return "randomwalk"
	case RegimeTransactional:
		return "transactional"
	case RegimeSeasonal:
		return "seasonal"
	case RegimeMeanShift:
		return "meanshift"
	default:
		return fmt.Sprintf("regime(%d)", int(r))
	}
}

// SeriesSpec configures GenerateSeries.
type SeriesSpec struct {
	Steps  int     // number of timestamps (>= 10)
	Vars   int     // number of sensor variables (>= 1); variable 0 is the target
	Regime Regime  // temporal structure
	Noise  float64 // observation noise stddev (default 0.1)
}

// GenerateSeries produces a Steps x Vars multivariate series whose target
// variable (column 0) follows the requested regime. Auxiliary variables are
// correlated sensors: lagged or noisy echoes of the target (AR/seasonal
// regimes) or independent drivers (transactional regime).
func GenerateSeries(spec SeriesSpec, rng *rand.Rand) (*dataset.Dataset, error) {
	if spec.Steps < 10 || spec.Vars < 1 {
		return nil, fmt.Errorf("sim: series spec needs >= 10 steps and >= 1 var, got %+v", spec)
	}
	if spec.Noise == 0 {
		spec.Noise = 0.1
	}
	x := matrix.New(spec.Steps, spec.Vars)
	target := make([]float64, spec.Steps)

	switch spec.Regime {
	case RegimeAR:
		// Stationary AR(2): y_t = 1.2 y_{t-1} - 0.4 y_{t-2} + seasonal + eps.
		for t := 0; t < spec.Steps; t++ {
			v := 0.0
			if t >= 1 {
				v += 1.2 * target[t-1]
			}
			if t >= 2 {
				v -= 0.4 * target[t-2]
			}
			v += 0.5 * math.Sin(2*math.Pi*float64(t)/24)
			v += spec.Noise * rng.NormFloat64()
			target[t] = v
		}
	case RegimeRandomWalk:
		for t := 1; t < spec.Steps; t++ {
			target[t] = target[t-1] + spec.Noise*rng.NormFloat64()
		}
	case RegimeTransactional:
		// Filled after drivers are generated below.
	case RegimeSeasonal:
		for t := 0; t < spec.Steps; t++ {
			target[t] = 3*math.Sin(2*math.Pi*float64(t)/12) +
				math.Sin(2*math.Pi*float64(t)/48) +
				spec.Noise*rng.NormFloat64()
		}
	case RegimeMeanShift:
		level := 0.0
		shiftEvery := spec.Steps / 6
		if shiftEvery < 10 {
			shiftEvery = 10
		}
		prev := 0.0
		for t := 0; t < spec.Steps; t++ {
			if t > 0 && t%shiftEvery == 0 {
				level += (rng.Float64()*2 - 1) * 10 // abrupt operating-point change
			}
			v := level + 0.5*(prev-level) + spec.Noise*rng.NormFloat64()
			target[t] = v
			prev = v
		}
	default:
		return nil, fmt.Errorf("sim: unknown regime %v", spec.Regime)
	}

	// Auxiliary sensors.
	aux := make([][]float64, spec.Vars)
	for j := 1; j < spec.Vars; j++ {
		aux[j] = make([]float64, spec.Steps)
		switch spec.Regime {
		case RegimeTransactional:
			// Independent drivers.
			for t := 0; t < spec.Steps; t++ {
				aux[j][t] = rng.NormFloat64()
			}
		default:
			// Noisy lagged echoes of the target.
			lag := j % 3
			for t := 0; t < spec.Steps; t++ {
				src := 0.0
				if t >= lag {
					src = target[t-lag]
				}
				aux[j][t] = 0.8*src + 0.3*rng.NormFloat64()
			}
		}
	}
	if spec.Regime == RegimeTransactional {
		// Target is a fixed linear function of the current drivers.
		for t := 0; t < spec.Steps; t++ {
			v := 0.0
			for j := 1; j < spec.Vars; j++ {
				w := 1.0 / float64(j)
				v += w * aux[j][t]
			}
			target[t] = v + spec.Noise*rng.NormFloat64()
		}
	}

	names := make([]string, spec.Vars)
	names[0] = "target"
	for t := 0; t < spec.Steps; t++ {
		x.Set(t, 0, target[t])
	}
	for j := 1; j < spec.Vars; j++ {
		names[j] = fmt.Sprintf("sensor%d", j)
		for t := 0; t < spec.Steps; t++ {
			x.Set(t, j, aux[j][t])
		}
	}
	return &dataset.Dataset{X: x, ColNames: names, TargetName: "target"}, nil
}

// FailureSpec configures GenerateFailureData.
type FailureSpec struct {
	Steps    int     // timestamps
	Sensors  int     // sensor count (>= 2)
	Failures int     // number of failure events to inject
	LeadTime int     // degradation window length before each failure
	Noise    float64 // sensor noise (default 0.2)
}

// FailureData is labelled sensor history for failure-prediction analysis:
// Series rows are sensor readings; Labels[t] == 1 when a failure occurs
// within LeadTime steps after t (the standard FPA target encoding);
// FailureTimes lists the injected failure timestamps.
type FailureData struct {
	Series       *dataset.Dataset
	Labels       []float64
	FailureTimes []int
}

// GenerateFailureData simulates equipment whose first two sensors drift
// upward during the LeadTime window before each failure, then reset —
// giving supervised models a learnable precursor signature.
func GenerateFailureData(spec FailureSpec, rng *rand.Rand) (*FailureData, error) {
	if spec.Steps < 50 || spec.Sensors < 2 || spec.Failures < 1 {
		return nil, fmt.Errorf("sim: failure spec needs >= 50 steps, >= 2 sensors, >= 1 failure, got %+v", spec)
	}
	if spec.LeadTime <= 0 {
		spec.LeadTime = 10
	}
	if spec.Noise == 0 {
		spec.Noise = 0.2
	}
	if spec.Failures*(spec.LeadTime+5) > spec.Steps {
		return nil, fmt.Errorf("sim: %d failures with lead %d do not fit in %d steps", spec.Failures, spec.LeadTime, spec.Steps)
	}
	x := matrix.New(spec.Steps, spec.Sensors)
	for t := 0; t < spec.Steps; t++ {
		for j := 0; j < spec.Sensors; j++ {
			x.Set(t, j, spec.Noise*rng.NormFloat64())
		}
	}
	// Place failures roughly evenly with jitter.
	gap := spec.Steps / (spec.Failures + 1)
	failures := make([]int, 0, spec.Failures)
	for f := 1; f <= spec.Failures; f++ {
		at := f*gap + rng.Intn(gap/2+1)
		if at >= spec.Steps {
			at = spec.Steps - 1
		}
		failures = append(failures, at)
		// Degradation ramp on sensors 0 and 1.
		for k := 0; k < spec.LeadTime && at-k >= 0; k++ {
			ramp := 2.0 * float64(spec.LeadTime-k) / float64(spec.LeadTime)
			x.Set(at-k, 0, x.At(at-k, 0)+ramp)
			x.Set(at-k, 1, x.At(at-k, 1)+0.5*ramp)
		}
	}
	labels := make([]float64, spec.Steps)
	for _, at := range failures {
		for k := 0; k < spec.LeadTime && at-k >= 0; k++ {
			labels[at-k] = 1
		}
	}
	names := make([]string, spec.Sensors)
	for j := range names {
		names[j] = fmt.Sprintf("sensor%d", j)
	}
	series := &dataset.Dataset{X: x, ColNames: names}
	return &FailureData{Series: series, Labels: labels, FailureTimes: failures}, nil
}

// AnomalySpec configures GenerateAnomalyData.
type AnomalySpec struct {
	Steps     int
	Vars      int
	Anomalies int     // point anomalies to inject
	Magnitude float64 // anomaly deviation in sigmas (default 8)
}

// AnomalyData carries a series plus the ground-truth anomalous timestamps.
type AnomalyData struct {
	Series       *dataset.Dataset
	AnomalyTimes []int
}

// GenerateAnomalyData produces a smooth seasonal series with Anomalies
// injected point spikes of known magnitude at known times.
func GenerateAnomalyData(spec AnomalySpec, rng *rand.Rand) (*AnomalyData, error) {
	if spec.Steps < 50 || spec.Vars < 1 || spec.Anomalies < 1 {
		return nil, fmt.Errorf("sim: anomaly spec invalid: %+v", spec)
	}
	if spec.Magnitude == 0 {
		spec.Magnitude = 8
	}
	base, err := GenerateSeries(SeriesSpec{Steps: spec.Steps, Vars: spec.Vars, Regime: RegimeSeasonal, Noise: 0.2}, rng)
	if err != nil {
		return nil, err
	}
	times := make([]int, 0, spec.Anomalies)
	used := map[int]bool{}
	for len(times) < spec.Anomalies {
		at := 5 + rng.Intn(spec.Steps-10)
		if used[at] {
			continue
		}
		used[at] = true
		times = append(times, at)
		sign := 1.0
		if rng.Float64() < 0.5 {
			sign = -1
		}
		base.X.Set(at, 0, base.X.At(at, 0)+sign*spec.Magnitude*0.2)
	}
	return &AnomalyData{Series: base, AnomalyTimes: times}, nil
}

// FleetSpec configures GenerateFleet for cohort analysis.
type FleetSpec struct {
	Assets    int // total assets (>= Cohorts)
	Cohorts   int // behavioural groups (>= 2)
	StepsEach int // series length per asset
}

// Fleet is a set of per-asset series with ground-truth cohort assignments.
type Fleet struct {
	AssetSeries []*dataset.Dataset
	TrueCohort  []int
}

// GenerateFleet simulates Assets pieces of equipment whose sensor dynamics
// depend on a hidden cohort: each cohort has a distinct operating level and
// oscillation period, so behaviour summaries cluster back into the truth.
func GenerateFleet(spec FleetSpec, rng *rand.Rand) (*Fleet, error) {
	if spec.Cohorts < 2 || spec.Assets < spec.Cohorts || spec.StepsEach < 20 {
		return nil, fmt.Errorf("sim: fleet spec invalid: %+v", spec)
	}
	fleet := &Fleet{
		AssetSeries: make([]*dataset.Dataset, spec.Assets),
		TrueCohort:  make([]int, spec.Assets),
	}
	for a := 0; a < spec.Assets; a++ {
		cohort := a % spec.Cohorts
		level := 10 * float64(cohort)
		period := 8 + 6*float64(cohort)
		x := matrix.New(spec.StepsEach, 2)
		for t := 0; t < spec.StepsEach; t++ {
			x.Set(t, 0, level+2*math.Sin(2*math.Pi*float64(t)/period)+0.3*rng.NormFloat64())
			x.Set(t, 1, level/2+0.3*rng.NormFloat64())
		}
		fleet.AssetSeries[a] = &dataset.Dataset{X: x, ColNames: []string{"load", "temp"}}
		fleet.TrueCohort[a] = cohort
	}
	return fleet, nil
}
