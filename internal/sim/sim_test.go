package sim

import (
	"math"
	"math/rand"
	"testing"
)

// autocorr computes the lag-k autocorrelation of the first differences (for
// walk detection) or raw values.
func autocorr(xs []float64, lag int) float64 {
	n := len(xs)
	mean := 0.0
	for _, v := range xs {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n-lag; i++ {
		num += (xs[i] - mean) * (xs[i+lag] - mean)
	}
	for _, v := range xs {
		den += (v - mean) * (v - mean)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func targetCol(t *testing.T, spec SeriesSpec, seed int64) []float64 {
	t.Helper()
	ds, err := GenerateSeries(spec, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return ds.X.ColCopy(0)
}

func TestGenerateSeriesShapes(t *testing.T) {
	ds, err := GenerateSeries(SeriesSpec{Steps: 100, Vars: 4, Regime: RegimeAR}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() != 100 || ds.NumFeatures() != 4 {
		t.Fatalf("shape %dx%d", ds.NumSamples(), ds.NumFeatures())
	}
	if ds.ColNames[0] != "target" || ds.ColNames[1] != "sensor1" {
		t.Fatalf("names %v", ds.ColNames)
	}
}

func TestGenerateSeriesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateSeries(SeriesSpec{Steps: 5, Vars: 1, Regime: RegimeAR}, rng); err == nil {
		t.Fatal("want steps error")
	}
	if _, err := GenerateSeries(SeriesSpec{Steps: 100, Vars: 1}, rng); err == nil {
		t.Fatal("want regime error")
	}
}

func TestARRegimeIsAutocorrelated(t *testing.T) {
	xs := targetCol(t, SeriesSpec{Steps: 500, Vars: 1, Regime: RegimeAR}, 2)
	if ac := autocorr(xs, 1); ac < 0.5 {
		t.Fatalf("AR regime lag-1 autocorr = %v, want strong positive", ac)
	}
}

func TestRandomWalkIncrementsUncorrelated(t *testing.T) {
	xs := targetCol(t, SeriesSpec{Steps: 2000, Vars: 1, Regime: RegimeRandomWalk}, 3)
	diffs := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		diffs[i-1] = xs[i] - xs[i-1]
	}
	if ac := math.Abs(autocorr(diffs, 1)); ac > 0.1 {
		t.Fatalf("random walk increments lag-1 autocorr = %v, want ~0", ac)
	}
}

func TestSeasonalRegimePeriodicity(t *testing.T) {
	xs := targetCol(t, SeriesSpec{Steps: 480, Vars: 1, Regime: RegimeSeasonal, Noise: 0.05}, 4)
	// Values one full period (12) apart should correlate strongly.
	if ac := autocorr(xs, 12); ac < 0.7 {
		t.Fatalf("seasonal lag-12 autocorr = %v, want strong", ac)
	}
}

func TestTransactionalTargetTracksDrivers(t *testing.T) {
	ds, err := GenerateSeries(SeriesSpec{Steps: 1000, Vars: 4, Regime: RegimeTransactional, Noise: 0.01}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the target from the known driver weights 1/j.
	var sse, sst float64
	mean := 0.0
	for i := 0; i < ds.NumSamples(); i++ {
		mean += ds.X.At(i, 0)
	}
	mean /= float64(ds.NumSamples())
	for i := 0; i < ds.NumSamples(); i++ {
		pred := 0.0
		for j := 1; j < 4; j++ {
			pred += ds.X.At(i, j) / float64(j)
		}
		d := ds.X.At(i, 0) - pred
		sse += d * d
		dm := ds.X.At(i, 0) - mean
		sst += dm * dm
	}
	if r2 := 1 - sse/sst; r2 < 0.95 {
		t.Fatalf("transactional target R2 vs drivers = %v, want > 0.95", r2)
	}
}

func TestGenerateFailureData(t *testing.T) {
	fd, err := GenerateFailureData(FailureSpec{Steps: 600, Sensors: 4, Failures: 5, LeadTime: 10}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.FailureTimes) != 5 {
		t.Fatalf("failures %d", len(fd.FailureTimes))
	}
	if len(fd.Labels) != 600 || fd.Series.NumSamples() != 600 {
		t.Fatal("label/series length mismatch")
	}
	// Labels are 1 exactly in the lead windows.
	pos := 0
	for _, l := range fd.Labels {
		if l == 1 {
			pos++
		}
	}
	if pos == 0 || pos > 5*10+5 {
		t.Fatalf("positive labels %d implausible", pos)
	}
	// Sensor 0 during lead windows should sit above its quiet-time level.
	var leadSum, quietSum float64
	var leadN, quietN int
	for tt := 0; tt < 600; tt++ {
		if fd.Labels[tt] == 1 {
			leadSum += fd.Series.X.At(tt, 0)
			leadN++
		} else {
			quietSum += fd.Series.X.At(tt, 0)
			quietN++
		}
	}
	if leadSum/float64(leadN) < quietSum/float64(quietN)+0.5 {
		t.Fatal("degradation signature missing from sensor 0")
	}
	if _, err := GenerateFailureData(FailureSpec{Steps: 100, Sensors: 2, Failures: 50, LeadTime: 10}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("want does-not-fit error")
	}
}

func TestGenerateAnomalyData(t *testing.T) {
	ad, err := GenerateAnomalyData(AnomalySpec{Steps: 400, Vars: 2, Anomalies: 6}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ad.AnomalyTimes) != 6 {
		t.Fatalf("anomalies %d", len(ad.AnomalyTimes))
	}
	seen := map[int]bool{}
	for _, at := range ad.AnomalyTimes {
		if at < 0 || at >= 400 {
			t.Fatalf("anomaly time %d out of range", at)
		}
		if seen[at] {
			t.Fatalf("duplicate anomaly time %d", at)
		}
		seen[at] = true
	}
	if _, err := GenerateAnomalyData(AnomalySpec{Steps: 10, Vars: 1, Anomalies: 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("want spec error")
	}
}

func TestGenerateFleet(t *testing.T) {
	fleet, err := GenerateFleet(FleetSpec{Assets: 12, Cohorts: 3, StepsEach: 50}, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.AssetSeries) != 12 || len(fleet.TrueCohort) != 12 {
		t.Fatal("fleet size wrong")
	}
	// Assets in different cohorts operate at clearly different levels.
	level := func(a int) float64 {
		s := fleet.AssetSeries[a]
		m := 0.0
		for i := 0; i < s.NumSamples(); i++ {
			m += s.X.At(i, 0)
		}
		return m / float64(s.NumSamples())
	}
	if math.Abs(level(0)-level(1)) < 5 {
		t.Fatalf("cohort levels too close: %v vs %v", level(0), level(1))
	}
	if _, err := GenerateFleet(FleetSpec{Assets: 2, Cohorts: 3, StepsEach: 50}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("want spec error")
	}
}

func TestDeterminismForSeed(t *testing.T) {
	a := targetCol(t, SeriesSpec{Steps: 50, Vars: 2, Regime: RegimeAR}, 99)
	b := targetCol(t, SeriesSpec{Steps: 50, Vars: 2, Regime: RegimeAR}, 99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce identical series")
		}
	}
}
