package sim

import (
	"testing"
	"time"

	"coda/internal/replication"
)

func TestRunPushLoadConverges(t *testing.T) {
	res, err := RunPushLoad(PushLoadSpec{
		Subscribers: 500, Publishes: 8, Workers: 4, PayloadBytes: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames < int64(res.Subscribers) {
		t.Fatalf("%d frames for %d subscribers — someone saw nothing", res.Frames, res.Subscribers)
	}
	if res.P99 <= 0 || res.Max < res.P99 || res.P99 < res.P50 {
		t.Fatalf("degenerate latency profile: p50=%v p99=%v max=%v", res.P50, res.P99, res.Max)
	}
	if res.CoalescedRatio < 1 {
		t.Fatalf("coalesced ratio %v < 1", res.CoalescedRatio)
	}
}

func TestRunPushLoadCoalescesUnderWindow(t *testing.T) {
	res, err := RunPushLoad(PushLoadSpec{
		Subscribers: 50, Publishes: 20, Workers: 4,
		CoalesceWindow: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 20 rapid publishes inside a 40ms window must not cost 20 frames per
	// lease: the window merges most of the burst.
	perLease := float64(res.Frames) / float64(res.Subscribers)
	if perLease > 10 {
		t.Fatalf("%.1f frames per lease for %d publishes — window did not coalesce", perLease, res.Publishes)
	}
	if res.CoalescedRatio < 2 {
		t.Fatalf("coalesced ratio %.2f, want >= 2 under a burst", res.CoalescedRatio)
	}
}

func TestRunPushLoadValueMode(t *testing.T) {
	res, err := RunPushLoad(PushLoadSpec{
		Subscribers: 100, Publishes: 4, Workers: 4,
		Mode: replication.PushValue, PayloadBytes: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames == 0 {
		t.Fatal("no frames delivered")
	}
}

func TestRunPushLoadRejectsEmptySpec(t *testing.T) {
	if _, err := RunPushLoad(PushLoadSpec{}); err == nil {
		t.Fatal("empty spec should error")
	}
}

// BenchmarkPushFanout100k is the acceptance harness: 100k leases on one
// hot object, a burst of publishes, p50/p99 publish→frame latency
// reported as custom metrics (CI lands them in BENCH_push.json and gates
// the p99).
func BenchmarkPushFanout100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunPushLoad(PushLoadSpec{
			Subscribers: 100_000, Publishes: 10, Workers: 8,
			CoalesceWindow: 5 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.P50), "p50-ns")
		b.ReportMetric(float64(res.P99), "p99-ns")
		b.ReportMetric(float64(res.Frames)/float64(res.Subscribers), "frames/sub")
		b.ReportMetric(res.CoalescedRatio, "coalesce-ratio")
	}
}

// BenchmarkPushFanout10k is the quicker tracking benchmark for allocation
// gating across PRs.
func BenchmarkPushFanout10k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunPushLoad(PushLoadSpec{
			Subscribers: 10_000, Publishes: 10, Workers: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.P99), "p99-ns")
	}
}
