// Push-serving load harness: subscribes a large synthetic fleet of
// clients to one hot object through replication's async fanout and
// measures how long a publish takes to reach every lease as a coalesced
// frame — the paper's push-mode propagation cost, at a scale (100k
// watchers) no real-socket test can reach in CI.
package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"coda/internal/replication"
	"coda/internal/store"
)

// PushLoadSpec sizes one fanout load run.
type PushLoadSpec struct {
	// Subscribers is the fleet size watching the single hot object.
	Subscribers int
	// Publishes is how many versions are written during the run.
	Publishes int
	// PayloadBytes sizes each published value.
	PayloadBytes int
	// Workers sizes the fanout pool; 0 uses 8.
	Workers int
	// CoalesceWindow spaces deliveries per lease; publishes inside the
	// window merge (0 = deliver as fast as workers allow).
	CoalesceWindow time.Duration
	// Mode picks the push payload; 0 uses PushNotify (the scale mode).
	Mode replication.PushMode
}

// PushLoadResult reports the run: frame counts, coalescing, and the
// publish→frame latency distribution across every delivered frame.
type PushLoadResult struct {
	Subscribers    int           `json:"subscribers"`
	Publishes      int           `json:"publishes"`
	Frames         int64         `json:"frames"`
	CoalescedRatio float64       `json:"coalesced_ratio"` // publishes represented per frame
	P50            time.Duration `json:"p50_ns"`
	P95            time.Duration `json:"p95_ns"`
	P99            time.Duration `json:"p99_ns"`
	Max            time.Duration `json:"max_ns"`
	Elapsed        time.Duration `json:"elapsed_ns"`
}

// pushProbe is one fake subscriber: it records, per frame, the latency
// from the publish that opened the frame's coalescing slot to delivery,
// plus the latest version seen — lock-free, since 100k of these run hot.
type pushProbe struct {
	publishedAt *versionClock
	lastVersion atomic.Uint64
	frames      atomic.Int64
	coalesced   atomic.Int64

	mu        sync.Mutex
	latencies []time.Duration
}

// versionClock maps version -> publish wall time, append-only.
type versionClock struct {
	mu    sync.RWMutex
	times []time.Time // index = version-1
}

func (vc *versionClock) stamp(version uint64, t time.Time) {
	vc.mu.Lock()
	for uint64(len(vc.times)) < version {
		vc.times = append(vc.times, t)
	}
	vc.times[version-1] = t
	vc.mu.Unlock()
}

func (vc *versionClock) at(version uint64) (time.Time, bool) {
	vc.mu.RLock()
	defer vc.mu.RUnlock()
	if version == 0 || uint64(len(vc.times)) < version {
		return time.Time{}, false
	}
	return vc.times[version-1], true
}

// Deliver implements replication.Subscriber.
func (p *pushProbe) Deliver(u replication.Update) {
	now := time.Now()
	p.frames.Add(1)
	if u.Coalesced > 1 {
		p.coalesced.Add(int64(u.Coalesced - 1))
	}
	for {
		prev := p.lastVersion.Load()
		if u.Version <= prev || p.lastVersion.CompareAndSwap(prev, u.Version) {
			break
		}
	}
	// Latency of the *oldest* publish in the frame would need the slot's
	// open time; the latest publish's timestamp is the conservative lower
	// bound every frame carries regardless of coalescing.
	if t, ok := p.publishedAt.at(u.Version); ok {
		p.mu.Lock()
		p.latencies = append(p.latencies, now.Sub(t))
		p.mu.Unlock()
	}
}

// RunPushLoad subscribes spec.Subscribers leases to one object, writes
// spec.Publishes versions through the manager, waits for the fanout to
// quiesce, and reports the latency distribution. It errors if any
// subscriber missed the final version — convergence is the point of the
// push tier, not just speed.
func RunPushLoad(spec PushLoadSpec) (*PushLoadResult, error) {
	if spec.Subscribers <= 0 || spec.Publishes <= 0 {
		return nil, fmt.Errorf("sim: push load needs subscribers and publishes")
	}
	workers := spec.Workers
	if workers == 0 {
		workers = 8
	}
	mode := spec.Mode
	if mode == 0 {
		mode = replication.PushNotify
	}
	payload := spec.PayloadBytes
	if payload <= 0 {
		payload = 256
	}

	hs := store.NewHomeStore(store.Options{BlockSize: 64})
	m := replication.NewManagerWith(hs, nil, replication.Config{
		Workers:        workers,
		CoalesceWindow: spec.CoalesceWindow,
	})
	defer m.Close()

	const key = "hot-object"
	vc := &versionClock{}
	probes := make([]*pushProbe, spec.Subscribers)
	for i := range probes {
		probes[i] = &pushProbe{publishedAt: vc}
		if _, err := m.Subscribe(key, fmt.Sprintf("sim-%d", i), mode, time.Hour, probes[i]); err != nil {
			return nil, err
		}
	}

	buf := make([]byte, payload)
	start := time.Now()
	var final uint64
	for i := 0; i < spec.Publishes; i++ {
		for j := range buf {
			buf[j] = byte(i + j)
		}
		// Stamp before Publish: the fanout can deliver the moment the
		// enqueue happens, and a stamp race would read as negative latency.
		vc.stamp(uint64(i+1), time.Now())
		v, err := m.Publish(key, buf)
		if err != nil {
			return nil, err
		}
		final = v
	}
	m.Flush()
	elapsed := time.Since(start)

	var all []time.Duration
	var frames, coalesced int64
	for i, p := range probes {
		if got := p.lastVersion.Load(); got != final {
			return nil, fmt.Errorf("sim: subscriber %d stopped at version %d, want %d", i, got, final)
		}
		frames += p.frames.Load()
		coalesced += p.coalesced.Load()
		p.mu.Lock()
		all = append(all, p.latencies...)
		p.mu.Unlock()
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	res := &PushLoadResult{
		Subscribers: spec.Subscribers,
		Publishes:   spec.Publishes,
		Frames:      frames,
		P50:         percentileDur(all, 0.50),
		P95:         percentileDur(all, 0.95),
		P99:         percentileDur(all, 0.99),
		Elapsed:     elapsed,
	}
	if len(all) > 0 {
		res.Max = all[len(all)-1]
	}
	if frames > 0 {
		res.CoalescedRatio = float64(frames+coalesced) / float64(frames)
	}
	return res, nil
}

// percentileDur reads the pth quantile from a sorted slice.
func percentileDur(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
