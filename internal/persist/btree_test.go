package persist

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestBindexAgainstReference drives the blocked index with a deterministic
// random op stream and checks every ordered view against a plain sorted
// slice — enough keys to force block splits and removals.
func TestBindexAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var ix bindex
	ref := map[string]bool{}

	key := func() string { return fmt.Sprintf("%03d/%03d", rng.Intn(40), rng.Intn(100)) }
	sortedRef := func() []string {
		out := make([]string, 0, len(ref))
		for k := range ref {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}

	for op := 0; op < 20000; op++ {
		k := key()
		if rng.Intn(3) == 0 {
			got := ix.remove(k)
			if got != ref[k] {
				t.Fatalf("op %d: remove(%q) = %v, ref says %v", op, k, got, ref[k])
			}
			delete(ref, k)
		} else {
			got := ix.insert(k)
			if got == ref[k] {
				t.Fatalf("op %d: insert(%q) = %v, ref says key present=%v", op, k, got, ref[k])
			}
			ref[k] = true
		}
	}
	if ix.len() != len(ref) {
		t.Fatalf("len = %d, ref has %d", ix.len(), len(ref))
	}

	want := sortedRef()
	var got []string
	ix.ascend("", func(k string) bool { got = append(got, k); return true })
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("full ascend diverges from reference (%d vs %d keys)", len(got), len(want))
	}

	// ascend from arbitrary midpoints, including keys absent from the set.
	for _, from := range []string{"", "000/000", "020/050", "035/", "039/099", "zzz"} {
		var g, w []string
		ix.ascend(from, func(k string) bool { g = append(g, k); return true })
		for _, k := range want {
			if k >= from {
				w = append(w, k)
			}
		}
		if fmt.Sprint(g) != fmt.Sprint(w) {
			t.Fatalf("ascend(%q): %d keys, reference %d", from, len(g), len(w))
		}
	}

	// Prefix iteration stays inside the prefix.
	for _, prefix := range []string{"007/", "020/", "absent/"} {
		var g, w []string
		ix.ascendPrefix(prefix, func(k string) bool { g = append(g, k); return true })
		for _, k := range want {
			if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
				w = append(w, k)
			}
		}
		if fmt.Sprint(g) != fmt.Sprint(w) {
			t.Fatalf("ascendPrefix(%q): %v, reference %v", prefix, g, w)
		}
	}

	// Early termination stops the walk.
	n := 0
	ix.ascend("", func(string) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early-stopped ascend visited %d keys, want 7", n)
	}
}
