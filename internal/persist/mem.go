package persist

import (
	"fmt"
	"net/url"
	"sync"
)

func init() {
	Register("mem", func(dir string, _ url.Values) (KV, error) {
		if dir != "" {
			return nil, fmt.Errorf("mem backend takes no directory, got %q", dir)
		}
		return newMemKV(), nil
	})
}

// memKV is the non-durable backend: the shared table and nothing else.
// It exists so every consumer runs the same code path in tests and
// single-process deployments, just without the WAL underneath.
type memKV struct {
	mu     sync.Mutex
	tab    *table
	st     Stats
	m      *backendMetrics
	closed bool
}

func newMemKV() *memKV {
	return &memKV{
		tab: newTable(),
		st:  Stats{Backend: "mem", Healthy: true},
		m:   metricsFor("mem"),
	}
}

// Name implements KV.
func (b *memKV) Name() string { return "mem" }

// PutBatch implements KV.
func (b *memKV) PutBatch(items []Item) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	for _, it := range items {
		b.tab.put(it.Key, append([]byte(nil), it.Value...))
	}
	b.st.Puts += int64(len(items))
	b.m.puts.Add(int64(len(items)))
	b.m.liveKeys.Set(float64(b.tab.len()))
	return nil
}

// GetBatch implements KV.
func (b *memKV) GetBatch(keys []string) (map[string][]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if v, ok := b.tab.get(k); ok {
			out[k] = v
		}
	}
	return out, nil
}

// Delete implements KV.
func (b *memKV) Delete(keys ...string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	var n int64
	for _, k := range keys {
		if b.tab.del(k) {
			n++
		}
	}
	b.st.Deletes += n
	b.m.deletes.Add(n)
	b.m.liveKeys.Set(float64(b.tab.len()))
	return nil
}

// Cursor implements KV.
func (b *memKV) Cursor(prefix string) (Cursor, error) {
	b.mu.Lock()
	closed := b.closed
	b.st.CursorScans++
	b.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	b.m.cursorScans.Inc()
	return newTableCursor(&b.mu, b.tab, prefix), nil
}

// Snapshot implements KV; there is no history to checkpoint.
func (b *memKV) Snapshot() error { return nil }

// Compact implements KV; there is no history to drop.
func (b *memKV) Compact() error { return nil }

// Stats implements KV.
func (b *memKV) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.st
	st.LiveKeys = b.tab.len()
	return st
}

// Close implements KV.
func (b *memKV) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	return nil
}
