package persist

import (
	"sort"
	"strings"
)

// bindex is the ordered key index every backend shares: a two-level
// B-tree-style blocked sorted index. Keys live in fixed-fanout sorted
// blocks; the block list itself is ordered, so locating a key is a binary
// search over block boundaries followed by a binary search inside one
// block. Inserts and deletes touch a single block (splitting or removing
// it as needed), and ascending iteration walks blocks in order — the shape
// that makes prefix cursors cheap.
type bindex struct {
	blocks []*kblock
	count  int
}

// kblock is one leaf of the index: an ascending run of keys.
type kblock struct {
	keys []string
}

// blockFanout is the split threshold; blocks split in half at 2x.
const blockFanout = 256

func (ix *bindex) len() int { return ix.count }

// blockFor returns the index of the block that does (or would) contain
// key: the first block whose last key is >= key, clamped to the final
// block for keys beyond every boundary.
func (ix *bindex) blockFor(key string) int {
	n := len(ix.blocks)
	i := sort.Search(n, func(i int) bool {
		b := ix.blocks[i].keys
		return b[len(b)-1] >= key
	})
	if i == n && n > 0 {
		return n - 1
	}
	return i
}

// insert adds key, reporting whether it was absent.
func (ix *bindex) insert(key string) bool {
	if len(ix.blocks) == 0 {
		ix.blocks = append(ix.blocks, &kblock{keys: []string{key}})
		ix.count++
		return true
	}
	bi := ix.blockFor(key)
	b := ix.blocks[bi]
	ki := sort.SearchStrings(b.keys, key)
	if ki < len(b.keys) && b.keys[ki] == key {
		return false
	}
	b.keys = append(b.keys, "")
	copy(b.keys[ki+1:], b.keys[ki:])
	b.keys[ki] = key
	ix.count++
	if len(b.keys) >= 2*blockFanout {
		mid := len(b.keys) / 2
		right := &kblock{keys: append([]string(nil), b.keys[mid:]...)}
		b.keys = b.keys[:mid:mid]
		ix.blocks = append(ix.blocks, nil)
		copy(ix.blocks[bi+2:], ix.blocks[bi+1:])
		ix.blocks[bi+1] = right
	}
	return true
}

// remove deletes key, reporting whether it was present. An emptied block
// leaves the block list so boundaries stay tight.
func (ix *bindex) remove(key string) bool {
	if len(ix.blocks) == 0 {
		return false
	}
	bi := ix.blockFor(key)
	b := ix.blocks[bi]
	ki := sort.SearchStrings(b.keys, key)
	if ki >= len(b.keys) || b.keys[ki] != key {
		return false
	}
	b.keys = append(b.keys[:ki], b.keys[ki+1:]...)
	ix.count--
	if len(b.keys) == 0 {
		ix.blocks = append(ix.blocks[:bi], ix.blocks[bi+1:]...)
	}
	return true
}

// ascend visits keys >= from in ascending order until fn returns false.
func (ix *bindex) ascend(from string, fn func(key string) bool) {
	if len(ix.blocks) == 0 {
		return
	}
	bi := ix.blockFor(from)
	// blockFor clamps to the last block; if even its last key sorts below
	// from, the range is empty.
	first := ix.blocks[bi].keys
	if first[len(first)-1] < from {
		return
	}
	ki := sort.SearchStrings(first, from)
	for ; bi < len(ix.blocks); bi++ {
		keys := ix.blocks[bi].keys
		for ; ki < len(keys); ki++ {
			if !fn(keys[ki]) {
				return
			}
		}
		ki = 0
	}
}

// ascendPrefix visits keys sharing prefix in ascending order.
func (ix *bindex) ascendPrefix(prefix string, fn func(key string) bool) {
	ix.ascend(prefix, func(k string) bool {
		if !strings.HasPrefix(k, prefix) {
			return false
		}
		return fn(k)
	})
}
