package persist

import (
	"context"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"coda/internal/obs/trace"
)

func init() {
	Register("log", func(dir string, params url.Values) (KV, error) {
		return openLogKV(dir, params)
	})
}

const defaultSegLimit = 4 << 20

// logKV is the segmented append-only backend: every batch is one
// CRC-framed, fsynced append to the active seg-%08d.log file, and
// Compact writes a snap-%08d.snap checkpoint of the live table then
// drops the segments it covers, so open cost tracks live keys rather
// than total history. The snapshot is written in place (no tmp+rename):
// a crash mid-snapshot leaves a torn file that fails its commit-trailer
// check at open and falls back to the previous snapshot or full replay.
type logKV struct {
	mu       sync.Mutex
	dir      string
	segLimit int64

	tab      *table
	seq      uint64   // active segment sequence number
	f        *os.File // active segment
	size     int64    // bytes in the active segment
	lastGood int64    // size at the last committed batch — the truncation point for recovery

	broken    bool
	brokenErr error
	closed    bool

	st  Stats
	m   *backendMetrics
	buf []byte
}

func segName(seq uint64) string { return fmt.Sprintf("seg-%08d.log", seq) }
func snapName(wm uint64) string { return fmt.Sprintf("snap-%08d.snap", wm) }
func parseSeq(name, prefix, ext string) (uint64, bool) {
	if len(name) != len(prefix)+8+len(ext) || name[:len(prefix)] != prefix || name[len(name)-len(ext):] != ext {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(prefix)+8], 10, 64)
	return n, err == nil
}

func openLogKV(dir string, params url.Values) (*logKV, error) {
	if dir == "" {
		return nil, fmt.Errorf("log backend needs a directory (log:<dir>)")
	}
	segLimit := int64(defaultSegLimit)
	if s := params.Get("segment"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil || n < walHeader {
			return nil, fmt.Errorf("bad segment size %q", s)
		}
		segLimit = n
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	b := &logKV{
		dir:      dir,
		segLimit: segLimit,
		tab:      newTable(),
		st:       Stats{Backend: "log", Healthy: true},
		m:        metricsFor("log"),
	}
	start := time.Now()

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs, snaps []uint64
	for _, e := range entries {
		if n, ok := parseSeq(e.Name(), "seg-", ".log"); ok {
			segs = append(segs, n)
		} else if n, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			snaps = append(snaps, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	// Newest valid snapshot wins; a torn one falls back to the previous,
	// and with none left the full segment history replays.
	var watermark uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		if pairs, wm, ok := loadSnapshotFile(filepath.Join(dir, snapName(snaps[i])), b.tab); ok {
			b.st.OpenSnapshotKeys = pairs
			watermark = wm
			break
		}
	}

	for i, seq := range segs {
		if seq < watermark {
			continue
		}
		last := i == len(segs)-1
		n, err := replayFile(filepath.Join(dir, segName(seq)), last, func(op byte, key string, val []byte) error {
			switch op {
			case opPut:
				b.tab.put(key, val)
			case opDel:
				b.tab.del(key)
			}
			return nil
		})
		b.st.OpenReplayedRecords += n
		if err != nil {
			return nil, err
		}
	}

	// Reopen the newest segment for appends, truncating any torn tail a
	// crash mid-write left behind; with no segments (fresh dir, or all
	// compacted away) start a new one above the watermark.
	b.seq = watermark
	if b.seq == 0 {
		b.seq = 1
	}
	if len(segs) > 0 {
		b.seq = segs[len(segs)-1]
		path := filepath.Join(dir, segName(b.seq))
		valid, err := validWALPrefix(path)
		if err != nil {
			return nil, err
		}
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(valid, 0); err != nil {
			f.Close()
			return nil, err
		}
		b.f, b.size, b.lastGood = f, valid, valid
	} else {
		if err := b.newSegmentLocked(b.seq); err != nil {
			return nil, err
		}
	}

	b.st.OpenSeconds = time.Since(start).Seconds()
	b.m.openReplay.ObserveSince(start)
	b.m.liveKeys.Set(float64(b.tab.len()))
	return b, nil
}

func (b *logKV) newSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(b.dir, segName(seq)), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	syncDir(b.dir)
	b.f, b.seq, b.size, b.lastGood = f, seq, 0, 0
	return nil
}

// rollLocked seals the active segment and starts the next one.
func (b *logKV) rollLocked() error {
	if b.f != nil {
		if err := b.f.Sync(); err != nil {
			return err
		}
		if err := b.f.Close(); err != nil {
			return err
		}
		b.f = nil
	}
	return b.newSegmentLocked(b.seq + 1)
}

// recoverLocked clears a latched write failure: reopen the active segment
// by path and truncate it back to the last committed batch, so a torn
// half-written record never precedes good data. Success resets the latch;
// failure keeps it and returns the original error context.
func (b *logKV) recoverLocked() error {
	f, err := os.OpenFile(filepath.Join(b.dir, segName(b.seq)), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("persist: log backend latched (%v); recovery failed: %w", b.brokenErr, err)
	}
	if err := f.Truncate(b.lastGood); err != nil {
		f.Close()
		return fmt.Errorf("persist: log backend latched (%v); recovery failed: %w", b.brokenErr, err)
	}
	if _, err := f.Seek(b.lastGood, 0); err != nil {
		f.Close()
		return fmt.Errorf("persist: log backend latched (%v); recovery failed: %w", b.brokenErr, err)
	}
	if b.f != nil {
		b.f.Close()
	}
	b.f, b.size = f, b.lastGood
	b.broken, b.brokenErr = false, nil
	return nil
}

// commitLocked durably appends b.buf as one batch: recover a latched
// failure first, roll full segments, write, fsync. Any failure latches the
// backend so no further append lands after a possibly-torn record until
// recovery truncates it away.
func (b *logKV) commitLocked() error {
	if b.broken {
		if err := b.recoverLocked(); err != nil {
			return err
		}
	}
	if b.size >= b.segLimit {
		if err := b.rollLocked(); err != nil {
			b.broken, b.brokenErr = true, err
			return err
		}
	}
	if _, err := b.f.Write(b.buf); err != nil {
		b.broken, b.brokenErr = true, err
		return err
	}
	if err := b.f.Sync(); err != nil {
		b.broken, b.brokenErr = true, err
		return err
	}
	b.size += int64(len(b.buf))
	b.lastGood = b.size
	return nil
}

// Name implements KV.
func (b *logKV) Name() string { return "log" }

// PutBatch implements KV.
func (b *logKV) PutBatch(items []Item) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	b.buf = b.buf[:0]
	for _, it := range items {
		b.buf = appendRecord(b.buf, opPut, it.Key, it.Value)
	}
	if err := b.commitLocked(); err != nil {
		return err
	}
	for _, it := range items {
		b.tab.put(it.Key, append([]byte(nil), it.Value...))
	}
	b.st.Puts += int64(len(items))
	b.m.puts.Add(int64(len(items)))
	b.m.liveKeys.Set(float64(b.tab.len()))
	return nil
}

// GetBatch implements KV.
func (b *logKV) GetBatch(keys []string) (map[string][]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if v, ok := b.tab.get(k); ok {
			out[k] = v
		}
	}
	return out, nil
}

// Delete implements KV.
func (b *logKV) Delete(keys ...string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	b.buf = b.buf[:0]
	for _, k := range keys {
		b.buf = appendRecord(b.buf, opDel, k, nil)
	}
	if err := b.commitLocked(); err != nil {
		return err
	}
	var n int64
	for _, k := range keys {
		if b.tab.del(k) {
			n++
		}
	}
	b.st.Deletes += n
	b.m.deletes.Add(n)
	b.m.liveKeys.Set(float64(b.tab.len()))
	return nil
}

// Cursor implements KV.
func (b *logKV) Cursor(prefix string) (Cursor, error) {
	b.mu.Lock()
	closed := b.closed
	b.st.CursorScans++
	b.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	b.m.cursorScans.Inc()
	return newTableCursor(&b.mu, b.tab, prefix), nil
}

// snapshotLocked rolls the active segment and checkpoints the live table
// into snap-<watermark>.snap, where the watermark is the fresh segment: a
// later open loads the snapshot and replays only segments at or above it.
func (b *logKV) snapshotLocked() (watermark uint64, err error) {
	_, sp := trace.Start(context.Background(), "persist.snapshot", trace.String("backend", "log"))
	sp.SetComponent(trace.CompStoreWait)
	defer sp.End()
	start := time.Now()
	if b.broken {
		if err := b.recoverLocked(); err != nil {
			return 0, err
		}
	}
	if err := b.rollLocked(); err != nil {
		b.broken, b.brokenErr = true, err
		return 0, err
	}
	watermark = b.seq
	if _, err := writeSnapshotFile(filepath.Join(b.dir, snapName(watermark)), b.tab, watermark); err != nil {
		return 0, err
	}
	syncDir(b.dir)
	b.st.LastCompactSeconds = time.Since(start).Seconds()
	b.m.snapshotSec.ObserveSince(start)
	return watermark, nil
}

// Snapshot implements KV.
func (b *logKV) Snapshot() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	_, err := b.snapshotLocked()
	return err
}

// Compact implements KV: snapshot, then drop the segments (and older
// snapshots) the new snapshot covers.
func (b *logKV) Compact() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	_, sp := trace.Start(context.Background(), "persist.compact", trace.String("backend", "log"))
	sp.SetComponent(trace.CompStoreWait)
	defer sp.End()
	start := time.Now()
	watermark, err := b.snapshotLocked()
	if err != nil {
		return err
	}
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if n, ok := parseSeq(e.Name(), "seg-", ".log"); ok && n < watermark {
			os.Remove(filepath.Join(b.dir, e.Name()))
		} else if n, ok := parseSeq(e.Name(), "snap-", ".snap"); ok && n < watermark {
			os.Remove(filepath.Join(b.dir, e.Name()))
		}
	}
	syncDir(b.dir)
	b.st.Compactions++
	b.st.LastCompactSeconds = time.Since(start).Seconds()
	b.m.compactions.Inc()
	return nil
}

// Stats implements KV.
func (b *logKV) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.st
	st.LiveKeys = b.tab.len()
	st.Healthy = !b.broken
	if b.brokenErr != nil {
		st.Err = b.brokenErr.Error()
	}
	return st
}

// Close implements KV.
func (b *logKV) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	if b.f != nil {
		err := b.f.Sync()
		if cerr := b.f.Close(); err == nil {
			err = cerr
		}
		b.f = nil
		return err
	}
	return nil
}
