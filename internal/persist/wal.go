package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Shared write-ahead-log framing for the durable backends. One record:
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//	payload = u8 op | u16 key length | key | value
//
// opPut and opDel are the mutations; opCommit is the snapshot trailer — a
// snapshot file without a matching commit record is torn (a crash mid-
// snapshot) and must be ignored in favor of replaying the full log.
const (
	opPut    = 1
	opDel    = 2
	opCommit = 3

	walHeader = 8 // u32 length + u32 crc
)

// errTornRec marks a partial or corrupt record: the readable data ends here.
var errTornRec = errors.New("persist: torn log record")

// appendRecord frames one record onto buf.
func appendRecord(buf []byte, op byte, key string, val []byte) []byte {
	payloadLen := 1 + 2 + len(key) + len(val)
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	buf = append(buf, 0, 0, 0, 0) // crc placeholder
	buf = append(buf, op)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
	buf = append(buf, key...)
	buf = append(buf, val...)
	crc := crc32.ChecksumIEEE(buf[start+walHeader:])
	binary.LittleEndian.PutUint32(buf[start+4:start+8], crc)
	return buf
}

// readRecord decodes one record. io.EOF means a clean end, errTornRec a
// partial or corrupt tail.
func readRecord(r *bufio.Reader) (op byte, key string, val []byte, n int64, err error) {
	var hdr [walHeader]byte
	if _, err := io.ReadFull(r, hdr[:1]); err == io.EOF {
		return 0, "", nil, 0, io.EOF
	} else if err != nil {
		return 0, "", nil, 0, errTornRec
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, "", nil, 0, errTornRec
	}
	length := binary.LittleEndian.Uint32(hdr[:4])
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if length < 3 || length > 1<<31 {
		return 0, "", nil, 0, errTornRec
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, "", nil, 0, errTornRec
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, "", nil, 0, errTornRec
	}
	op = payload[0]
	keyLen := int(binary.LittleEndian.Uint16(payload[1:3]))
	if 3+keyLen > len(payload) {
		return 0, "", nil, 0, errTornRec
	}
	key = string(payload[3 : 3+keyLen])
	val = payload[3+keyLen:]
	return op, key, val, walHeader + int64(length), nil
}

// validWALPrefix returns how many bytes of the file hold intact records —
// the truncation point for a torn tail after a crash mid-write.
func validWALPrefix(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("persist: opening wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var off int64
	for {
		_, _, _, n, err := readRecord(r)
		if err != nil {
			return off, nil // io.EOF or errTornRec: valid data ends here
		}
		off += n
	}
}

// replayFile streams every intact record of one log file into fn.
// tolerateTail controls what a torn record means: the footprint of a crash
// mid-write on the newest file (stop cleanly), or real corruption on an
// older one (error).
func replayFile(path string, tolerateTail bool, fn func(op byte, key string, val []byte) error) (records int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("persist: opening %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		op, key, val, _, err := readRecord(r)
		if err == io.EOF {
			return records, nil
		}
		if err != nil {
			if tolerateTail {
				return records, nil
			}
			return records, fmt.Errorf("persist: %s corrupt: %w", path, err)
		}
		records++
		if err := fn(op, key, val); err != nil {
			return records, err
		}
	}
}

// writeSnapshotFile streams every live pair of tab (in ascending key
// order) into path as framed opPut records, sealed by an opCommit trailer
// carrying the pair count and the log watermark (the first log sequence
// number the snapshot does NOT cover), and fsyncs. The caller serializes
// access to tab.
func writeSnapshotFile(path string, tab *table, watermark uint64) (pairs int64, err error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("persist: creating snapshot: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var buf []byte
	var count int64
	var werr error
	tab.ix.ascend("", func(k string) bool {
		v, ok := tab.get(k)
		if !ok {
			return true
		}
		buf = appendRecord(buf[:0], opPut, k, v)
		if _, err := w.Write(buf); err != nil {
			werr = err
			return false
		}
		count++
		return true
	})
	if werr == nil {
		var trailer [16]byte
		binary.LittleEndian.PutUint64(trailer[:8], uint64(count))
		binary.LittleEndian.PutUint64(trailer[8:], watermark)
		buf = appendRecord(buf[:0], opCommit, "", trailer[:])
		_, werr = w.Write(buf)
	}
	if werr == nil {
		werr = w.Flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return 0, fmt.Errorf("persist: writing snapshot: %w", werr)
	}
	return count, nil
}

// loadSnapshotFile replays a snapshot into tab, validating every frame and
// requiring the opCommit trailer to match the pair count — a torn or
// miscounted snapshot loads nothing and reports ok=false so the caller
// falls back to full log replay.
func loadSnapshotFile(path string, tab *table) (pairs int64, watermark uint64, ok bool) {
	staged := newTable()
	var committed, count int64
	sealed := false
	_, err := replayFile(path, true, func(op byte, key string, val []byte) error {
		switch op {
		case opPut:
			staged.put(key, val)
			count++
		case opCommit:
			if len(val) == 16 {
				committed = int64(binary.LittleEndian.Uint64(val[:8]))
				watermark = binary.LittleEndian.Uint64(val[8:])
				sealed = true
			}
		}
		return nil
	})
	if err != nil || !sealed || committed != count {
		return 0, 0, false
	}
	*tab = *staged
	return count, watermark, true
}

// syncDir fsyncs a directory so renames and newly created files survive a
// crash; not every filesystem supports it, so failures are ignored.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
