package persist

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"
)

// Opener constructs a backend from the DSN's directory part and query
// parameters. Backends self-register in init; Open dispatches on scheme.
type Opener func(dir string, params url.Values) (KV, error)

var (
	regMu    sync.Mutex
	registry = map[string]Opener{}
)

// Register installs an opener for a DSN scheme. Registering a scheme twice
// panics — it is a wiring bug, not a runtime condition.
func Register(scheme string, fn Opener) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[scheme]; dup {
		panic("persist: duplicate backend scheme " + scheme)
	}
	registry[scheme] = fn
}

// Schemes lists the registered DSN schemes in sorted order.
func Schemes() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for s := range registry {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Open constructs the backend a DSN names. The grammar is
//
//	<scheme>:<dir>[?<key>=<value>&...]
//
// e.g. "mem:", "log:/var/lib/coda/store", "bolt:data/darr?wal=1048576".
// The scheme picks the backend; the directory (required for durable
// backends) is where it keeps its files; query parameters tune it.
func Open(dsn string) (KV, error) {
	scheme, rest, ok := strings.Cut(dsn, ":")
	if !ok || scheme == "" {
		return nil, fmt.Errorf("persist: DSN %q missing scheme (known: %s)", dsn, strings.Join(Schemes(), ", "))
	}
	dir, query, _ := strings.Cut(rest, "?")
	params, err := url.ParseQuery(query)
	if err != nil {
		return nil, fmt.Errorf("persist: DSN %q: bad query: %w", dsn, err)
	}
	regMu.Lock()
	opener := registry[scheme]
	regMu.Unlock()
	if opener == nil {
		return nil, fmt.Errorf("persist: unknown backend scheme %q (known: %s)", scheme, strings.Join(Schemes(), ", "))
	}
	kv, err := opener(dir, params)
	if err != nil {
		return nil, fmt.Errorf("persist: opening %s backend: %w", scheme, err)
	}
	return kv, nil
}
