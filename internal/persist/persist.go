// Package persist is the storage SPI underneath every durable consumer in
// coda: one batch-first key-value contract that the object store's version
// log and the DARR's records/claims both sit on, so "pluggable persistence"
// is a layer, not a per-consumer one-off.
//
// The seam is deliberately small — gorse-style (see PAPERS.md / ROADMAP
// item 2): batched writes (PutBatch), batched reads (GetBatch), ordered
// prefix-cursor streaming so consumers like replication and lifecycle can
// iterate a large keyspace without materializing it, and explicit
// Snapshot/Compact hooks so append-only history stops replaying from byte
// zero at every open.
//
// Backends are selected by DSN through Open (mem:, log:<dir>, bolt:<dir>);
// consumers outside this package must never name a concrete backend type —
// a CI grep gate enforces that only the SPI identifiers escape.
package persist

import (
	"errors"
	"fmt"

	"coda/internal/obs"
)

// ErrClosed is returned by every operation on a closed backend.
var ErrClosed = errors.New("persist: backend closed")

// Item is one key-value pair of a batched write. Values are copied on
// write, so callers may reuse their buffers after PutBatch returns.
type Item struct {
	Key   string
	Value []byte
}

// Cursor streams an ordered, prefix-bounded view of the keyspace. Keys
// arrive in ascending byte order. The value returned by Value is owned by
// the backend and must not be modified; it stays valid until the next
// Next call. A cursor observes a snapshot of the matching key set taken
// at creation; concurrent writes never invalidate it (keys deleted after
// creation are skipped, values read are the latest).
type Cursor interface {
	// Next advances to the next pair, reporting false at the end of the
	// range (or after an error — check Err).
	Next() bool
	// Key returns the current key.
	Key() string
	// Value returns the current value (backend-owned, read-only).
	Value() []byte
	// Err reports the first error the cursor hit, if any.
	Err() error
	// Close releases the cursor.
	Close() error
}

// Stats is a point-in-time snapshot of one backend's accounting, surfaced
// through /healthz and the coda_persist_* metrics.
type Stats struct {
	// Backend names the DSN scheme ("mem", "log", "bolt").
	Backend string `json:"backend"`
	// LiveKeys counts keys currently present (puts minus deletes).
	LiveKeys int `json:"live_keys"`
	// Puts and Deletes count accepted mutations since open.
	Puts    int64 `json:"puts"`
	Deletes int64 `json:"deletes"`
	// Compactions counts completed snapshot-then-truncate cycles.
	Compactions int64 `json:"compactions"`
	// OpenSnapshotKeys is how many pairs the last Open loaded from a
	// snapshot, and OpenReplayedRecords how many log records it replayed
	// beyond the snapshot — together the O(live) vs O(history) split.
	OpenSnapshotKeys    int64 `json:"open_snapshot_keys"`
	OpenReplayedRecords int64 `json:"open_replayed_records"`
	// OpenSeconds is how long the last Open took to rebuild state.
	OpenSeconds float64 `json:"open_seconds"`
	// LastCompactSeconds is the duration of the most recent compaction.
	LastCompactSeconds float64 `json:"last_compact_seconds"`
	// CursorScans counts cursors opened.
	CursorScans int64 `json:"cursor_scans"`
	// Healthy is false when the backend latched a write failure and could
	// not yet recover; Err carries the failure.
	Healthy bool   `json:"healthy"`
	Err     string `json:"err,omitempty"`
}

// KV is the batch-first storage contract every backend implements. All
// methods are safe for concurrent use.
type KV interface {
	// Name reports the backend's DSN scheme.
	Name() string
	// PutBatch durably stores every item under one write (one fsync on
	// durable backends). An error means no item became visible.
	PutBatch(items []Item) error
	// GetBatch resolves many keys at once; absent keys are simply missing
	// from the result. Returned values are backend-owned and read-only.
	GetBatch(keys []string) (map[string][]byte, error)
	// Delete removes keys (missing keys are not an error).
	Delete(keys ...string) error
	// Cursor streams all keys with the given prefix in ascending order.
	Cursor(prefix string) (Cursor, error)
	// Snapshot persists a point-in-time copy of the live state so a later
	// open does not replay history before it. A no-op for backends with
	// no history.
	Snapshot() error
	// Compact snapshots and then drops the history the snapshot covers,
	// making open time proportional to live keys instead of total writes.
	Compact() error
	// Stats returns the backend accounting snapshot.
	Stats() Stats
	// Close flushes and releases the backend; operations fail afterwards.
	Close() error
}

// backendMetrics is the coda_persist_* series for one backend label.
type backendMetrics struct {
	compactions *obs.Counter
	snapshotSec *obs.Histogram
	openReplay  *obs.Histogram
	liveKeys    *obs.Gauge
	cursorScans *obs.Counter
	puts        *obs.Counter
	deletes     *obs.Counter
}

func metricsFor(backend string) *backendMetrics {
	l := func(name string) string { return fmt.Sprintf(`%s{backend=%q}`, name, backend) }
	return &backendMetrics{
		compactions: obs.GetCounter(l("coda_persist_compactions_total")),
		snapshotSec: obs.GetHistogram(l("coda_persist_snapshot_seconds"), nil),
		openReplay:  obs.GetHistogram(l("coda_persist_open_replay_seconds"), nil),
		liveKeys:    obs.GetGauge(l("coda_persist_live_keys")),
		cursorScans: obs.GetCounter(l("coda_persist_cursor_scans_total")),
		puts:        obs.GetCounter(l("coda_persist_puts_total")),
		deletes:     obs.GetCounter(l("coda_persist_deletes_total")),
	}
}
