package persist

import "sync"

// table is the in-memory live state every backend serves reads from: a
// hash map for O(1) point lookups plus the blocked ordered index for
// cursors and snapshot streaming. Durable backends rebuild it at open
// from their snapshot + log tail. Callers hold the backend mutex.
type table struct {
	vals map[string][]byte
	ix   bindex
}

func newTable() *table { return &table{vals: map[string][]byte{}} }

func (t *table) len() int { return len(t.vals) }

func (t *table) get(key string) ([]byte, bool) {
	v, ok := t.vals[key]
	return v, ok
}

// put stores a copy-free reference: callers pass ownership of val.
func (t *table) put(key string, val []byte) {
	if _, ok := t.vals[key]; !ok {
		t.ix.insert(key)
	}
	t.vals[key] = val
}

func (t *table) del(key string) bool {
	if _, ok := t.vals[key]; !ok {
		return false
	}
	delete(t.vals, key)
	t.ix.remove(key)
	return true
}

// prefixKeys snapshots the ascending key set under prefix.
func (t *table) prefixKeys(prefix string) []string {
	var keys []string
	t.ix.ascendPrefix(prefix, func(k string) bool {
		keys = append(keys, k)
		return true
	})
	return keys
}

// tableCursor implements Cursor over a key snapshot, re-reading each value
// under the backend mutex at Next so long scans never pin the lock and
// never see torn state: a key deleted after the snapshot is skipped, a
// value overwritten after it is served fresh.
type tableCursor struct {
	mu   *sync.Mutex
	tab  *table
	keys []string

	i      int
	key    string
	val    []byte
	closed bool
}

func newTableCursor(mu *sync.Mutex, tab *table, prefix string) *tableCursor {
	mu.Lock()
	keys := tab.prefixKeys(prefix)
	mu.Unlock()
	return &tableCursor{mu: mu, tab: tab, keys: keys}
}

// Next implements Cursor.
func (c *tableCursor) Next() bool {
	if c.closed {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.i < len(c.keys) {
		k := c.keys[c.i]
		c.i++
		if v, ok := c.tab.get(k); ok {
			c.key, c.val = k, v
			return true
		}
	}
	return false
}

// Key implements Cursor.
func (c *tableCursor) Key() string { return c.key }

// Value implements Cursor.
func (c *tableCursor) Value() []byte { return c.val }

// Err implements Cursor; in-memory iteration cannot fail.
func (c *tableCursor) Err() error { return nil }

// Close implements Cursor.
func (c *tableCursor) Close() error {
	c.closed = true
	c.keys = nil
	return nil
}
