package persist

import (
	"context"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"coda/internal/obs/trace"
)

func init() {
	Register("bolt", func(dir string, params url.Values) (KV, error) {
		return openBoltKV(dir, params)
	})
}

const defaultWALLimit = 4 << 20

// boltKV is the embedded B-tree-indexed backend: mutations append to a
// wal-%08d.log file, and a background compactor periodically rewrites
// index.db — the full live state as ascending CRC-framed pairs, bulk-
// loaded straight into the blocked B-tree index at open — then drops the
// WAL it covers. index.db is replaced atomically (tmp + rename), so open
// always sees either the old or the new index, and open cost is O(live
// keys) + the short WAL tail, never O(history). Auto-compaction kicks in
// once the WAL outgrows the ?wal=<bytes> threshold.
type boltKV struct {
	mu       sync.Mutex
	dir      string
	walLimit int64

	tab      *table
	seq      uint64   // active WAL sequence number
	f        *os.File // active WAL file
	size     int64    // bytes in the active WAL file
	lastGood int64    // size at the last committed batch
	walBytes int64    // WAL bytes not yet covered by index.db

	broken    bool
	brokenErr error
	closed    bool

	kick    chan struct{}
	done    chan struct{}
	stopped chan struct{}

	st  Stats
	m   *backendMetrics
	buf []byte
}

func walName(seq uint64) string { return fmt.Sprintf("wal-%08d.log", seq) }

const boltIndexName = "index.db"

func openBoltKV(dir string, params url.Values) (*boltKV, error) {
	if dir == "" {
		return nil, fmt.Errorf("bolt backend needs a directory (bolt:<dir>)")
	}
	walLimit := int64(defaultWALLimit)
	if s := params.Get("wal"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil || n < walHeader {
			return nil, fmt.Errorf("bad wal threshold %q", s)
		}
		walLimit = n
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	os.Remove(filepath.Join(dir, boltIndexName+".tmp")) // stale from a crashed compaction

	b := &boltKV{
		dir:      dir,
		walLimit: walLimit,
		tab:      newTable(),
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		stopped:  make(chan struct{}),
		st:       Stats{Backend: "bolt", Healthy: true},
		m:        metricsFor("bolt"),
	}
	start := time.Now()

	// index.db was renamed into place atomically, so a valid-looking but
	// torn index cannot occur short of disk corruption; loadSnapshotFile
	// still validates every frame and falls back to full WAL replay.
	var watermark uint64
	if pairs, wm, ok := loadSnapshotFile(filepath.Join(dir, boltIndexName), b.tab); ok {
		b.st.OpenSnapshotKeys = pairs
		watermark = wm
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wals []uint64
	for _, e := range entries {
		if n, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			wals = append(wals, n)
		}
	}
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	for i, seq := range wals {
		if seq < watermark {
			continue
		}
		path := filepath.Join(dir, walName(seq))
		n, err := replayFile(path, i == len(wals)-1, func(op byte, key string, val []byte) error {
			switch op {
			case opPut:
				b.tab.put(key, val)
			case opDel:
				b.tab.del(key)
			}
			return nil
		})
		b.st.OpenReplayedRecords += n
		if err != nil {
			return nil, err
		}
		if fi, err := os.Stat(path); err == nil {
			b.walBytes += fi.Size()
		}
	}

	b.seq = watermark
	if b.seq == 0 {
		b.seq = 1
	}
	if len(wals) > 0 {
		b.seq = wals[len(wals)-1]
		path := filepath.Join(dir, walName(b.seq))
		valid, err := validWALPrefix(path)
		if err != nil {
			return nil, err
		}
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(valid, 0); err != nil {
			f.Close()
			return nil, err
		}
		b.f, b.size, b.lastGood = f, valid, valid
	} else if err := b.newWALLocked(b.seq); err != nil {
		return nil, err
	}

	b.st.OpenSeconds = time.Since(start).Seconds()
	b.m.openReplay.ObserveSince(start)
	b.m.liveKeys.Set(float64(b.tab.len()))

	go func() {
		defer close(b.stopped)
		for {
			select {
			case <-b.done:
				return
			case <-b.kick:
				_ = b.Compact() // ErrClosed after Close is harmless
			}
		}
	}()
	return b, nil
}

func (b *boltKV) newWALLocked(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(b.dir, walName(seq)), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	syncDir(b.dir)
	b.f, b.seq, b.size, b.lastGood = f, seq, 0, 0
	return nil
}

func (b *boltKV) rollLocked() error {
	if b.f != nil {
		if err := b.f.Sync(); err != nil {
			return err
		}
		if err := b.f.Close(); err != nil {
			return err
		}
		b.f = nil
	}
	return b.newWALLocked(b.seq + 1)
}

// recoverLocked mirrors the log backend: reopen the active WAL by path,
// truncate back to the last committed batch, clear the latch.
func (b *boltKV) recoverLocked() error {
	f, err := os.OpenFile(filepath.Join(b.dir, walName(b.seq)), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("persist: bolt backend latched (%v); recovery failed: %w", b.brokenErr, err)
	}
	if err := f.Truncate(b.lastGood); err != nil {
		f.Close()
		return fmt.Errorf("persist: bolt backend latched (%v); recovery failed: %w", b.brokenErr, err)
	}
	if _, err := f.Seek(b.lastGood, 0); err != nil {
		f.Close()
		return fmt.Errorf("persist: bolt backend latched (%v); recovery failed: %w", b.brokenErr, err)
	}
	if b.f != nil {
		b.f.Close()
	}
	b.f, b.size = f, b.lastGood
	b.broken, b.brokenErr = false, nil
	return nil
}

func (b *boltKV) commitLocked() error {
	if b.broken {
		if err := b.recoverLocked(); err != nil {
			return err
		}
	}
	if _, err := b.f.Write(b.buf); err != nil {
		b.broken, b.brokenErr = true, err
		return err
	}
	if err := b.f.Sync(); err != nil {
		b.broken, b.brokenErr = true, err
		return err
	}
	b.size += int64(len(b.buf))
	b.lastGood = b.size
	b.walBytes += int64(len(b.buf))
	if b.walBytes > b.walLimit {
		select {
		case b.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// Name implements KV.
func (b *boltKV) Name() string { return "bolt" }

// PutBatch implements KV.
func (b *boltKV) PutBatch(items []Item) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	b.buf = b.buf[:0]
	for _, it := range items {
		b.buf = appendRecord(b.buf, opPut, it.Key, it.Value)
	}
	if err := b.commitLocked(); err != nil {
		return err
	}
	for _, it := range items {
		b.tab.put(it.Key, append([]byte(nil), it.Value...))
	}
	b.st.Puts += int64(len(items))
	b.m.puts.Add(int64(len(items)))
	b.m.liveKeys.Set(float64(b.tab.len()))
	return nil
}

// GetBatch implements KV.
func (b *boltKV) GetBatch(keys []string) (map[string][]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if v, ok := b.tab.get(k); ok {
			out[k] = v
		}
	}
	return out, nil
}

// Delete implements KV.
func (b *boltKV) Delete(keys ...string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	b.buf = b.buf[:0]
	for _, k := range keys {
		b.buf = appendRecord(b.buf, opDel, k, nil)
	}
	if err := b.commitLocked(); err != nil {
		return err
	}
	var n int64
	for _, k := range keys {
		if b.tab.del(k) {
			n++
		}
	}
	b.st.Deletes += n
	b.m.deletes.Add(n)
	b.m.liveKeys.Set(float64(b.tab.len()))
	return nil
}

// Cursor implements KV.
func (b *boltKV) Cursor(prefix string) (Cursor, error) {
	b.mu.Lock()
	closed := b.closed
	b.st.CursorScans++
	b.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	b.m.cursorScans.Inc()
	return newTableCursor(&b.mu, b.tab, prefix), nil
}

// Snapshot implements KV: rewrite index.db without dropping WAL files.
func (b *boltKV) Snapshot() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	_, err := b.snapshotLocked()
	return err
}

func (b *boltKV) snapshotLocked() (watermark uint64, err error) {
	_, sp := trace.Start(context.Background(), "persist.snapshot", trace.String("backend", "bolt"))
	sp.SetComponent(trace.CompStoreWait)
	defer sp.End()
	start := time.Now()
	if b.broken {
		if err := b.recoverLocked(); err != nil {
			return 0, err
		}
	}
	if err := b.rollLocked(); err != nil {
		b.broken, b.brokenErr = true, err
		return 0, err
	}
	watermark = b.seq
	tmp := filepath.Join(b.dir, boltIndexName+".tmp")
	if _, err := writeSnapshotFile(tmp, b.tab, watermark); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, filepath.Join(b.dir, boltIndexName)); err != nil {
		return 0, err
	}
	syncDir(b.dir)
	b.m.snapshotSec.ObserveSince(start)
	b.st.LastCompactSeconds = time.Since(start).Seconds()
	return watermark, nil
}

// Compact implements KV: rewrite index.db, then drop the WAL it covers.
func (b *boltKV) Compact() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	_, sp := trace.Start(context.Background(), "persist.compact", trace.String("backend", "bolt"))
	sp.SetComponent(trace.CompStoreWait)
	defer sp.End()
	start := time.Now()
	watermark, err := b.snapshotLocked()
	if err != nil {
		return err
	}
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if n, ok := parseSeq(e.Name(), "wal-", ".log"); ok && n < watermark {
			os.Remove(filepath.Join(b.dir, e.Name()))
		}
	}
	syncDir(b.dir)
	b.walBytes = b.size
	b.st.Compactions++
	b.st.LastCompactSeconds = time.Since(start).Seconds()
	b.m.compactions.Inc()
	return nil
}

// Stats implements KV.
func (b *boltKV) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.st
	st.LiveKeys = b.tab.len()
	st.Healthy = !b.broken
	if b.brokenErr != nil {
		st.Err = b.brokenErr.Error()
	}
	return st
}

// Close implements KV: stop the compactor, then flush and close the WAL.
func (b *boltKV) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	close(b.done)
	<-b.stopped
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f != nil {
		err := b.f.Sync()
		if cerr := b.f.Close(); err == nil {
			err = cerr
		}
		b.f = nil
		return err
	}
	return nil
}
