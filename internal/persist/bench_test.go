package persist

import (
	"fmt"
	"os"
	"testing"
)

// benchFill writes history puts over live distinct keys — the shape where
// compaction pays: open time O(live) vs O(history).
func benchFill(b *testing.B, kv KV, history, live int) {
	b.Helper()
	val := make([]byte, 256)
	for i := 0; i < history; i++ {
		k := fmt.Sprintf("k/%06d", i%live)
		if err := kv.PutBatch([]Item{{Key: k, Value: val}}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchOpenDir(b *testing.B, compact bool) string {
	b.Helper()
	dir, err := os.MkdirTemp("", "persist-bench-")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	kv, err := Open("log:" + dir)
	if err != nil {
		b.Fatal(err)
	}
	benchFill(b, kv, 10000, 100)
	if compact {
		if err := kv.Compact(); err != nil {
			b.Fatal(err)
		}
	}
	if err := kv.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// BenchmarkPersistOpenUncompacted10k replays all 10k records at open.
func BenchmarkPersistOpenUncompacted10k(b *testing.B) {
	dir := benchOpenDir(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv, err := Open("log:" + dir)
		if err != nil {
			b.Fatal(err)
		}
		kv.Close()
	}
}

// BenchmarkPersistOpenCompacted10k loads the 100-key snapshot instead —
// the number CI gates against the uncompacted open.
func BenchmarkPersistOpenCompacted10k(b *testing.B) {
	dir := benchOpenDir(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv, err := Open("log:" + dir)
		if err != nil {
			b.Fatal(err)
		}
		kv.Close()
	}
}

// BenchmarkPersistCursorScan streams 10k live keys through a prefix cursor.
func BenchmarkPersistCursorScan(b *testing.B) {
	kv, err := Open("mem:")
	if err != nil {
		b.Fatal(err)
	}
	defer kv.Close()
	benchFill(b, kv, 10000, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := kv.Cursor("k/")
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for cur.Next() {
			n++
		}
		cur.Close()
		if n != 10000 {
			b.Fatalf("scan saw %d keys", n)
		}
	}
}

// BenchmarkPersistPutBatchLog measures the durable batched write path
// (fsync included) against the in-memory floor below.
func BenchmarkPersistPutBatchLog(b *testing.B) {
	dir := b.TempDir()
	kv, err := Open("log:" + dir)
	if err != nil {
		b.Fatal(err)
	}
	defer kv.Close()
	val := make([]byte, 256)
	items := make([]Item, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range items {
			items[j] = Item{Key: fmt.Sprintf("k/%06d", (i*16+j)%1000), Value: val}
		}
		if err := kv.PutBatch(items); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPersistPutBatchMem(b *testing.B) {
	kv, err := Open("mem:")
	if err != nil {
		b.Fatal(err)
	}
	defer kv.Close()
	val := make([]byte, 256)
	items := make([]Item, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range items {
			items[j] = Item{Key: fmt.Sprintf("k/%06d", (i*16+j)%1000), Value: val}
		}
		if err := kv.PutBatch(items); err != nil {
			b.Fatal(err)
		}
	}
}
