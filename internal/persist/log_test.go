package persist

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func listNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

func fillLog(t *testing.T, kv KV, n int, liveKeys int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k/%04d", i%liveKeys)
		if err := kv.PutBatch([]Item{{Key: k, Value: []byte(fmt.Sprint(i))}}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLogCompactionDropsHistory: after Compact, old segments and snapshots
// are gone and a reopen loads the snapshot instead of replaying history.
func TestLogCompactionDropsHistory(t *testing.T) {
	dir := t.TempDir()
	kv, err := Open("log:" + dir + "?segment=1024")
	if err != nil {
		t.Fatal(err)
	}
	fillLog(t, kv, 300, 10)
	if len(listNames(t, dir)) < 3 {
		t.Fatalf("expected several segments before compaction, got %v", listNames(t, dir))
	}
	if err := kv.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := kv.Stats(); st.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", st.Compactions)
	}
	var segs, snaps int
	for _, n := range listNames(t, dir) {
		switch {
		case strings.HasSuffix(n, ".log"):
			segs++
		case strings.HasSuffix(n, ".snap"):
			snaps++
		}
	}
	if segs != 1 || snaps != 1 {
		t.Fatalf("after compact: %d segments, %d snapshots (want 1 and 1): %v", segs, snaps, listNames(t, dir))
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	kv2, err := Open("log:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	st := kv2.Stats()
	if st.OpenSnapshotKeys != 10 || st.OpenReplayedRecords != 0 {
		t.Fatalf("reopen loaded %d snapshot keys and replayed %d records, want 10 and 0", st.OpenSnapshotKeys, st.OpenReplayedRecords)
	}
	got, _ := kv2.GetBatch([]string{"k/0003"})
	if string(got["k/0003"]) != "293" {
		t.Fatalf("k/0003 = %q after compacted reopen, want 293", got["k/0003"])
	}
}

// TestLogTornSnapshotFallsBack: a snapshot torn by a crash mid-write fails
// its commit-trailer check and the open replays the full segment history
// instead — no data loss, because Snapshot alone never deletes segments.
func TestLogTornSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	kv, err := Open("log:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	fillLog(t, kv, 40, 8)
	if err := kv.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the snapshot: chop bytes off its tail, eating the commit trailer.
	var snapPath string
	for _, n := range listNames(t, dir) {
		if strings.HasSuffix(n, ".snap") {
			snapPath = filepath.Join(dir, n)
		}
	}
	if snapPath == "" {
		t.Fatal("no snapshot written")
	}
	fi, err := os.Stat(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(snapPath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	kv2, err := Open("log:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	st := kv2.Stats()
	if st.OpenSnapshotKeys != 0 {
		t.Fatalf("torn snapshot loaded %d keys, want 0 (fallback to replay)", st.OpenSnapshotKeys)
	}
	if st.OpenReplayedRecords != 40 {
		t.Fatalf("fallback replayed %d records, want 40", st.OpenReplayedRecords)
	}
	got, _ := kv2.GetBatch([]string{"k/0007"})
	if string(got["k/0007"]) != "39" {
		t.Fatalf("k/0007 = %q after fallback, want 39", got["k/0007"])
	}
}

// TestLogTornTailTruncated: garbage appended to the newest segment (a
// crash mid-append) is truncated at open and subsequent appends extend
// valid data.
func TestLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	kv, err := Open("log:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	fillLog(t, kv, 5, 5)
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, "seg-00000001.log")
	f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	kv2, err := Open("log:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	if kv2.Stats().LiveKeys != 5 {
		t.Fatalf("live keys = %d after torn tail, want 5", kv2.Stats().LiveKeys)
	}
	if err := kv2.PutBatch([]Item{{Key: "after", Value: []byte("crash")}}); err != nil {
		t.Fatal(err)
	}
	if err := kv2.Close(); err != nil {
		t.Fatal(err)
	}
	kv3, err := Open("log:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	defer kv3.Close()
	got, _ := kv3.GetBatch([]string{"after"})
	if string(got["after"]) != "crash" {
		t.Fatal("append after torn-tail truncation did not survive")
	}
}

// TestLogLatchRecovery: a transient write failure latches the backend
// (surfaced in Stats), and the next write recovers instead of requiring a
// process restart — the LogBackend broken-latch bug, fixed at this layer.
func TestLogLatchRecovery(t *testing.T) {
	dir := t.TempDir()
	b, err := openLogKV(dir, url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.PutBatch([]Item{{Key: "ok/1", Value: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	// Sabotage the file handle to simulate a transient I/O failure.
	b.mu.Lock()
	b.f.Close()
	b.mu.Unlock()
	if err := b.PutBatch([]Item{{Key: "fail/1", Value: []byte("y")}}); err == nil {
		t.Fatal("PutBatch on sabotaged handle succeeded")
	}
	if st := b.Stats(); st.Healthy || st.Err == "" {
		t.Fatalf("latched backend reports healthy: %+v", st)
	}
	// The next write recovers: truncate to last good, reopen, append.
	if err := b.PutBatch([]Item{{Key: "ok/2", Value: []byte("z")}}); err != nil {
		t.Fatalf("write after latch did not recover: %v", err)
	}
	if st := b.Stats(); !st.Healthy {
		t.Fatalf("backend still latched after recovery: %+v", st)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	kv, err := Open("log:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	got, _ := kv.GetBatch([]string{"ok/1", "ok/2", "fail/1"})
	if string(got["ok/1"]) != "x" || string(got["ok/2"]) != "z" {
		t.Fatalf("recovered log lost committed data: %v", got)
	}
	if _, ok := got["fail/1"]; ok {
		t.Fatal("failed batch leaked into the log")
	}
}

// TestBoltAutoCompaction: once the WAL outgrows its threshold the
// background compactor rewrites index.db and drops the WAL, and a reopen
// bulk-loads the index instead of replaying history.
func TestBoltAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	kv, err := Open("bolt:" + dir + "?wal=2048")
	if err != nil {
		t.Fatal(err)
	}
	fillLog(t, kv, 200, 10)
	deadline := time.Now().Add(5 * time.Second)
	for kv.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auto-compaction never ran")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range listNames(t, dir) {
		if n == "index.db" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no index.db after auto-compaction: %v", listNames(t, dir))
	}

	kv2, err := Open("bolt:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	st := kv2.Stats()
	if st.OpenSnapshotKeys != 10 {
		t.Fatalf("reopen loaded %d index keys, want 10", st.OpenSnapshotKeys)
	}
	if st.OpenReplayedRecords > 200 {
		t.Fatalf("reopen replayed %d records; index should cover most history", st.OpenReplayedRecords)
	}
	got, _ := kv2.GetBatch([]string{"k/0009"})
	if string(got["k/0009"]) != "199" {
		t.Fatalf("k/0009 = %q after bolt reopen, want 199", got["k/0009"])
	}
}

// TestOpenErrors: the DSN grammar rejects unknown schemes and missing
// directories with errors that name the alternatives.
func TestOpenErrors(t *testing.T) {
	if _, err := Open("nope:/tmp/x"); err == nil || !strings.Contains(err.Error(), "mem") {
		t.Fatalf("unknown scheme error should list known schemes, got %v", err)
	}
	if _, err := Open("no-scheme"); err == nil {
		t.Fatal("DSN without scheme accepted")
	}
	if _, err := Open("log:"); err == nil {
		t.Fatal("log DSN without directory accepted")
	}
	if _, err := Open("bolt:"); err == nil {
		t.Fatal("bolt DSN without directory accepted")
	}
	if _, err := Open("log:" + t.TempDir() + "?segment=bogus"); err == nil {
		t.Fatal("bad segment param accepted")
	}
}
