package persist

import (
	"fmt"
	"sync"
	"testing"
)

// dsnFor builds a DSN for each registered scheme against a fresh temp
// directory, so the conformance suite runs the identical contract against
// every backend — a new backend registers itself and inherits the suite.
func dsnFor(t *testing.T, scheme string) string {
	t.Helper()
	switch scheme {
	case "mem":
		return "mem:"
	default:
		return scheme + ":" + t.TempDir()
	}
}

func mustOpen(t *testing.T, dsn string) KV {
	t.Helper()
	kv, err := Open(dsn)
	if err != nil {
		t.Fatalf("Open(%q): %v", dsn, err)
	}
	return kv
}

func TestConformance(t *testing.T) {
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			t.Run("BatchRoundTrip", func(t *testing.T) { testBatchRoundTrip(t, dsnFor(t, scheme)) })
			t.Run("CursorOrderingAndPrefix", func(t *testing.T) { testCursorOrdering(t, dsnFor(t, scheme)) })
			t.Run("CompactPreservesState", func(t *testing.T) { testCompactPreserves(t, dsnFor(t, scheme)) })
			t.Run("ClosedOps", func(t *testing.T) { testClosedOps(t, dsnFor(t, scheme)) })
			t.Run("ConcurrentStress", func(t *testing.T) { testConcurrentStress(t, dsnFor(t, scheme)) })
			if scheme != "mem" {
				t.Run("ReplayAfterRestart", func(t *testing.T) { testReplayAfterRestart(t, dsnFor(t, scheme)) })
			}
		})
	}
}

func testBatchRoundTrip(t *testing.T, dsn string) {
	kv := mustOpen(t, dsn)
	defer kv.Close()
	items := []Item{
		{Key: "a/1", Value: []byte("v1")},
		{Key: "a/2", Value: []byte("v2")},
		{Key: "b/1", Value: []byte("v3")},
	}
	if err := kv.PutBatch(items); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	got, err := kv.GetBatch([]string{"a/1", "a/2", "b/1", "missing"})
	if err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("GetBatch returned %d keys, want 3", len(got))
	}
	if string(got["a/2"]) != "v2" {
		t.Fatalf("a/2 = %q, want v2", got["a/2"])
	}
	// Overwrite keeps latest; Delete removes and tolerates missing keys.
	if err := kv.PutBatch([]Item{{Key: "a/1", Value: []byte("v1b")}}); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if err := kv.Delete("a/2", "never-existed"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	got, _ = kv.GetBatch([]string{"a/1", "a/2"})
	if string(got["a/1"]) != "v1b" {
		t.Fatalf("a/1 = %q after overwrite, want v1b", got["a/1"])
	}
	if _, ok := got["a/2"]; ok {
		t.Fatal("a/2 survived Delete")
	}
	st := kv.Stats()
	if st.Puts != 4 || st.Deletes != 1 || st.LiveKeys != 2 || !st.Healthy {
		t.Fatalf("stats = %+v, want puts=4 deletes=1 live=2 healthy", st)
	}
}

func testCursorOrdering(t *testing.T, dsn string) {
	kv := mustOpen(t, dsn)
	defer kv.Close()
	// Inserted out of order on purpose; cursors must deliver byte order.
	for _, k := range []string{"p/c", "q/a", "p/a", "p/b", "q/b"} {
		if err := kv.PutBatch([]Item{{Key: k, Value: []byte(k)}}); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := kv.Cursor("p/")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var got []string
	for cur.Next() {
		got = append(got, cur.Key())
		if string(cur.Value()) != cur.Key() {
			t.Fatalf("value %q for key %q", cur.Value(), cur.Key())
		}
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	want := []string{"p/a", "p/b", "p/c"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("cursor keys = %v, want %v (ascending, prefix-isolated)", got, want)
	}
	// Full-range cursor sees both prefixes, still ascending.
	all, _ := kv.Cursor("")
	defer all.Close()
	var n int
	prev := ""
	for all.Next() {
		if all.Key() <= prev {
			t.Fatalf("cursor order violated: %q after %q", all.Key(), prev)
		}
		prev = all.Key()
		n++
	}
	if n != 5 {
		t.Fatalf("full cursor saw %d keys, want 5", n)
	}
}

func testCompactPreserves(t *testing.T, dsn string) {
	kv := mustOpen(t, dsn)
	defer kv.Close()
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k/%02d", i%10) // overwrites: history > live keys
		if err := kv.PutBatch([]Item{{Key: k, Value: []byte(fmt.Sprint(i))}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := kv.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	got, err := kv.GetBatch([]string{"k/03"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got["k/03"]) != "43" {
		t.Fatalf("k/03 = %q after compact, want 43", got["k/03"])
	}
	if kv.Stats().LiveKeys != 10 {
		t.Fatalf("live keys = %d, want 10", kv.Stats().LiveKeys)
	}
}

func testClosedOps(t *testing.T, dsn string) {
	kv := mustOpen(t, dsn)
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := kv.PutBatch([]Item{{Key: "x", Value: nil}}); err != ErrClosed {
		t.Fatalf("PutBatch after Close = %v, want ErrClosed", err)
	}
	if _, err := kv.GetBatch([]string{"x"}); err != ErrClosed {
		t.Fatalf("GetBatch after Close = %v, want ErrClosed", err)
	}
	if _, err := kv.Cursor(""); err != ErrClosed {
		t.Fatalf("Cursor after Close = %v, want ErrClosed", err)
	}
	if err := kv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// testConcurrentStress runs writers, readers and cursor scans together;
// the -race build is the assertion.
func testConcurrentStress(t *testing.T, dsn string) {
	kv := mustOpen(t, dsn)
	defer kv.Close()
	const workers, ops = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := fmt.Sprintf("w%d/%03d", w, i)
				if err := kv.PutBatch([]Item{{Key: k, Value: []byte(k)}}); err != nil {
					t.Errorf("PutBatch: %v", err)
					return
				}
				if _, err := kv.GetBatch([]string{k}); err != nil {
					t.Errorf("GetBatch: %v", err)
					return
				}
				if i%10 == 0 {
					cur, err := kv.Cursor(fmt.Sprintf("w%d/", w))
					if err != nil {
						t.Errorf("Cursor: %v", err)
						return
					}
					for cur.Next() {
					}
					cur.Close()
				}
				if i%25 == 0 {
					_ = kv.Delete(fmt.Sprintf("w%d/%03d", w, i/2))
				}
			}
		}(w)
	}
	wg.Wait()
}

// testReplayAfterRestart proves durability: state written before Close is
// bitwise identical after a reopen, including deletes.
func testReplayAfterRestart(t *testing.T, dsn string) {
	kv := mustOpen(t, dsn)
	for i := 0; i < 20; i++ {
		if err := kv.PutBatch([]Item{{Key: fmt.Sprintf("k/%02d", i), Value: []byte(fmt.Sprint(i * i))}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.Delete("k/07", "k/13"); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	kv2 := mustOpen(t, dsn)
	defer kv2.Close()
	if kv2.Stats().LiveKeys != 18 {
		t.Fatalf("live keys after restart = %d, want 18", kv2.Stats().LiveKeys)
	}
	got, err := kv2.GetBatch([]string{"k/05", "k/07"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got["k/05"]) != "25" {
		t.Fatalf("k/05 = %q after restart, want 25", got["k/05"])
	}
	if _, ok := got["k/07"]; ok {
		t.Fatal("deleted key k/07 came back after restart")
	}
}
