package preprocess

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/matrix"
)

// Compile-time checks that every transformer satisfies core.Transformer.
var (
	_ core.Transformer = (*StandardScaler)(nil)
	_ core.Transformer = (*MinMaxScaler)(nil)
	_ core.Transformer = (*RobustScaler)(nil)
	_ core.Transformer = (*NoOp)(nil)
	_ core.Transformer = (*Covariance)(nil)
	_ core.Transformer = (*PCA)(nil)
	_ core.Transformer = (*SelectKBest)(nil)
	_ core.Transformer = (*Imputer)(nil)
	_ core.Transformer = (*MICEImputer)(nil)
)

func ds(t *testing.T, rows [][]float64, y []float64) *dataset.Dataset {
	t.Helper()
	x, err := matrix.NewFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dataset.New(x, y)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestStandardScaler(t *testing.T) {
	d := ds(t, [][]float64{{1, 100}, {3, 300}}, nil)
	s := NewStandardScaler()
	if _, err := s.Transform(d); err == nil {
		t.Fatal("transform before fit should fail")
	}
	if err := s.Fit(d); err != nil {
		t.Fatal(err)
	}
	out, err := s.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	means := out.X.ColMeans()
	stds := out.X.ColStds()
	for j := 0; j < 2; j++ {
		if math.Abs(means[j]) > 1e-12 || math.Abs(stds[j]-1) > 1e-12 {
			t.Fatalf("col %d mean=%v std=%v", j, means[j], stds[j])
		}
	}
	// Original untouched.
	if d.X.At(0, 0) != 1 {
		t.Fatal("transform mutated input")
	}
	// Shape mismatch error.
	if _, err := s.Transform(ds(t, [][]float64{{1, 2, 3}}, nil)); err == nil {
		t.Fatal("want shape error")
	}
}

func TestStandardScalerConstantColumn(t *testing.T) {
	d := ds(t, [][]float64{{5, 1}, {5, 2}}, nil)
	s := NewStandardScaler()
	if err := s.Fit(d); err != nil {
		t.Fatal(err)
	}
	out, err := s.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.X.At(0, 0) != 0 || out.X.At(1, 0) != 0 {
		t.Fatal("constant column should centre to zero without dividing by zero")
	}
}

func TestMinMaxScaler(t *testing.T) {
	d := ds(t, [][]float64{{0, -10}, {5, 0}, {10, 10}}, nil)
	s := NewMinMaxScaler()
	if err := s.Fit(d); err != nil {
		t.Fatal(err)
	}
	out, err := s.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.X.At(0, 0) != 0 || out.X.At(2, 0) != 1 || out.X.At(1, 0) != 0.5 {
		t.Fatalf("minmax wrong: %v", out.X)
	}
	// Values outside the training range extrapolate beyond [0,1]; fitted
	// ranges come from training only.
	test := ds(t, [][]float64{{20, 0}}, nil)
	out, err = s.Transform(test)
	if err != nil {
		t.Fatal(err)
	}
	if out.X.At(0, 0) != 2 {
		t.Fatalf("out-of-range transform = %v, want 2", out.X.At(0, 0))
	}
}

func TestRobustScalerIgnoresOutliers(t *testing.T) {
	// Column with one huge outlier: robust scaling should map the median
	// to 0 and be insensitive to the outlier's magnitude.
	rows := [][]float64{{1}, {2}, {3}, {4}, {1e9}}
	d := ds(t, rows, nil)
	s := NewRobustScaler()
	if err := s.Fit(d); err != nil {
		t.Fatal(err)
	}
	out, err := s.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.X.At(2, 0)) > 1e-9 {
		t.Fatalf("median should map to 0, got %v", out.X.At(2, 0))
	}
	// Compare against standard scaling, which the outlier distorts badly:
	// robust-scaled inliers stay O(1).
	for i := 0; i < 4; i++ {
		if math.Abs(out.X.At(i, 0)) > 3 {
			t.Fatalf("inlier %d scaled to %v, should stay small", i, out.X.At(i, 0))
		}
	}
}

func TestNoOpPassThrough(t *testing.T) {
	d := ds(t, [][]float64{{1, 2}}, []float64{3})
	n := NewNoOp()
	if err := n.Fit(d); err != nil {
		t.Fatal(err)
	}
	out, err := n.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	if out != d {
		t.Fatal("NoOp should return the identical dataset")
	}
}

func TestPCARecoversLowRankStructure(t *testing.T) {
	// Data on a 1-D line in 3-D space: first component captures all variance.
	rng := rand.New(rand.NewSource(5))
	rows := make([][]float64, 50)
	for i := range rows {
		tt := rng.NormFloat64()
		rows[i] = []float64{2 * tt, -tt, 0.5 * tt}
	}
	d := ds(t, rows, nil)
	p := NewPCA(2)
	if err := p.Fit(d); err != nil {
		t.Fatal(err)
	}
	out, err := p.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.X.Cols() != 2 {
		t.Fatalf("PCA output cols = %d", out.X.Cols())
	}
	if p.ExplainedVariance[0] <= 0 {
		t.Fatal("first component should carry variance")
	}
	if p.ExplainedVariance[1] > 1e-9 {
		t.Fatalf("second component should be ~0 for rank-1 data, got %v", p.ExplainedVariance[1])
	}
	// Second output column should be ~0 everywhere.
	for i := 0; i < out.X.Rows(); i++ {
		if math.Abs(out.X.At(i, 1)) > 1e-6 {
			t.Fatalf("row %d second PC = %v", i, out.X.At(i, 1))
		}
	}
}

func TestPCAAllComponentsPreservesDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rows := make([][]float64, 30)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	d := ds(t, rows, nil)
	p := NewPCA(0) // keep all
	if err := p.Fit(d); err != nil {
		t.Fatal(err)
	}
	out, err := p.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	// Full orthogonal projection preserves pairwise distances.
	dist := func(x *matrix.Matrix, a, b int) float64 {
		s := 0.0
		for j := 0; j < x.Cols(); j++ {
			diff := x.At(a, j) - x.At(b, j)
			s += diff * diff
		}
		return math.Sqrt(s)
	}
	for i := 1; i < 10; i++ {
		if math.Abs(dist(d.X, 0, i)-dist(out.X, 0, i)) > 1e-8 {
			t.Fatalf("distance %d not preserved", i)
		}
	}
}

func TestSelectKBestFindsInformativeFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 200
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		informative := rng.NormFloat64()
		rows[i] = []float64{rng.NormFloat64(), informative, rng.NormFloat64(), 2 * informative}
		y[i] = 3*informative + 0.01*rng.NormFloat64()
	}
	d := ds(t, rows, y)
	d.ColNames = []string{"noise0", "signal1", "noise2", "signal3"}
	s := NewSelectKBest(2)
	if err := s.Fit(d); err != nil {
		t.Fatal(err)
	}
	kept := s.SelectedColumns()
	if len(kept) != 2 || kept[0] != 1 || kept[1] != 3 {
		t.Fatalf("SelectKBest kept %v, want [1 3]", kept)
	}
	out, err := s.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.X.Cols() != 2 || out.ColNames[0] != "signal1" || out.ColNames[1] != "signal3" {
		t.Fatalf("transform wrong: cols=%d names=%v", out.X.Cols(), out.ColNames)
	}
}

func TestSelectKBestRequiresTarget(t *testing.T) {
	d := ds(t, [][]float64{{1, 2}}, nil)
	if err := NewSelectKBest(1).Fit(d); err == nil {
		t.Fatal("want unsupervised error")
	}
}

func TestCovariancePlusPCAEqualsCenteredPCA(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows := make([][]float64, 40)
	for i := range rows {
		rows[i] = []float64{5 + rng.NormFloat64(), -3 + 2*rng.NormFloat64()}
	}
	d := ds(t, rows, nil)
	cov := NewCovariance()
	if err := cov.Fit(d); err != nil {
		t.Fatal(err)
	}
	centred, err := cov.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	means := centred.X.ColMeans()
	if math.Abs(means[0]) > 1e-9 || math.Abs(means[1]) > 1e-9 {
		t.Fatalf("covariance centering failed: %v", means)
	}
}

func TestImputerMeanMedianMode(t *testing.T) {
	nan := math.NaN()
	tests := []struct {
		strategy ImputeStrategy
		want     float64
	}{
		{ImputeMean, 2},   // mean of 1,2,3
		{ImputeMedian, 2}, // median of 1,2,3
		{ImputeMode, 1},   // mode of 1,1,2,3... adjust below
	}
	for _, tt := range tests {
		t.Run(tt.strategy.String(), func(t *testing.T) {
			rows := [][]float64{{1}, {2}, {3}, {nan}}
			if tt.strategy == ImputeMode {
				rows = [][]float64{{1}, {1}, {2}, {3}, {nan}}
			}
			d := ds(t, rows, nil)
			im := NewImputer(tt.strategy)
			if err := im.Fit(d); err != nil {
				t.Fatal(err)
			}
			out, err := im.Transform(d)
			if err != nil {
				t.Fatal(err)
			}
			got := out.X.At(out.X.Rows()-1, 0)
			if math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("%v imputed %v, want %v", tt.strategy, got, tt.want)
			}
		})
	}
}

func TestImputerKNN(t *testing.T) {
	nan := math.NaN()
	// Two clusters; the missing value sits in the first cluster by its
	// observed feature, so KNN should fill from that cluster.
	rows := [][]float64{
		{0.0, 10},
		{0.1, 11},
		{0.2, 12},
		{5.0, 100},
		{5.1, 101},
		{0.05, nan},
	}
	d := ds(t, rows, nil)
	im := NewImputer(ImputeKNN)
	im.K = 3
	if err := im.Fit(d); err != nil {
		t.Fatal(err)
	}
	out, err := im.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	got := out.X.At(5, 1)
	if got < 9 || got > 13 {
		t.Fatalf("KNN imputed %v, want ~11 (first cluster)", got)
	}
}

func TestImputerErrors(t *testing.T) {
	d := ds(t, [][]float64{{1}}, nil)
	im := NewImputer(ImputeStrategy(99))
	if err := im.Fit(d); err == nil {
		t.Fatal("want unknown-strategy error")
	}
	if _, err := NewImputer(ImputeMean).Transform(d); err == nil {
		t.Fatal("want not-fitted error")
	}
}

func TestFilterZScoreOutliers(t *testing.T) {
	rows := make([][]float64, 0, 21)
	y := make([]float64, 0, 21)
	for i := 0; i < 20; i++ {
		rows = append(rows, []float64{1 + 0.1*float64(i%5)})
		y = append(y, float64(i))
	}
	rows = append(rows, []float64{1000})
	y = append(y, 99)
	d := ds(t, rows, y)
	clean, dropped, err := FilterZScoreOutliers(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 || dropped[0] != 20 {
		t.Fatalf("dropped %v, want [20]", dropped)
	}
	if clean.NumSamples() != 20 || clean.Y[19] != 19 {
		t.Fatalf("clean dataset wrong: %d samples", clean.NumSamples())
	}
	if _, _, err := FilterZScoreOutliers(d, -1); err == nil {
		t.Fatal("want threshold error")
	}
}

func TestFilterIQROutliers(t *testing.T) {
	rows := [][]float64{{1}, {2}, {3}, {4}, {5}, {500}}
	d := ds(t, rows, nil)
	clean, dropped, err := FilterIQROutliers(d, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 || dropped[0] != 5 {
		t.Fatalf("dropped %v, want [5]", dropped)
	}
	if clean.NumSamples() != 5 {
		t.Fatalf("clean has %d samples", clean.NumSamples())
	}
	if _, _, err := FilterIQROutliers(d, 0); err == nil {
		t.Fatal("want multiplier error")
	}
}

func TestDropRowsWithMissing(t *testing.T) {
	nan := math.NaN()
	d := ds(t, [][]float64{{1, 2}, {nan, 3}, {4, 5}}, []float64{1, 2, nan})
	clean, dropped := DropRowsWithMissing(d)
	if len(dropped) != 2 || clean.NumSamples() != 1 || clean.X.At(0, 0) != 1 {
		t.Fatalf("dropped=%v clean=%d", dropped, clean.NumSamples())
	}
}

func TestCloneIsUnfittedAndKeepsParams(t *testing.T) {
	p := NewPCA(3)
	c := p.Clone()
	if c.Params()["n_components"] != 3 {
		t.Fatal("clone lost n_components")
	}
	if _, err := c.Transform(ds(t, [][]float64{{1, 2, 3}}, nil)); err == nil {
		t.Fatal("clone should be unfitted")
	}
	s := NewSelectKBest(4)
	if s.Clone().Params()["k"] != 4 {
		t.Fatal("selectkbest clone lost k")
	}
}

func TestSetParam(t *testing.T) {
	p := NewPCA(1)
	if err := p.SetParam("n_components", 5); err != nil {
		t.Fatal(err)
	}
	if p.NComponents != 5 {
		t.Fatal("SetParam did not apply")
	}
	if err := p.SetParam("bogus", 1); err == nil {
		t.Fatal("want unknown-param error")
	}
	for _, tr := range []core.Transformer{NewStandardScaler(), NewMinMaxScaler(), NewRobustScaler(), NewNoOp(), NewCovariance()} {
		if err := tr.SetParam("anything", 1); err == nil {
			t.Errorf("%s should reject params", tr.Name())
		}
	}
}

// Property: scaling then inverse relationship — minmax output of training
// data always lies in [0,1].
func TestMinMaxRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c := 2+rng.Intn(30), 1+rng.Intn(5)
		x := matrix.New(n, c)
		for i := range x.Data() {
			x.Data()[i] = rng.NormFloat64() * 100
		}
		d, err := dataset.New(x, nil)
		if err != nil {
			return false
		}
		s := NewMinMaxScaler()
		if err := s.Fit(d); err != nil {
			return false
		}
		out, err := s.Transform(d)
		if err != nil {
			return false
		}
		for _, v := range out.X.Data() {
			if v < -1e-12 || v > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestScalerAffineRoundTrip pins the ColScale/ColOffset metadata: mapping
// scaled values through the recorded affine must recover the original data
// exactly for every affine scaler, including chained scalers.
func TestScalerAffineRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rows := make([][]float64, 30)
	for i := range rows {
		rows[i] = []float64{10 + 5*rng.NormFloat64(), -3 + 0.1*rng.NormFloat64(), 7} // last col constant
	}
	d := ds(t, rows, nil)
	scalers := []core.Transformer{NewStandardScaler(), NewMinMaxScaler(), NewRobustScaler(), NewCovariance()}
	for _, s := range scalers {
		if err := s.Fit(d); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		out, err := s.Transform(d)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if out.ColScale == nil {
			t.Fatalf("%s did not record affine metadata", s.Name())
		}
		for i := 0; i < out.X.Rows(); i++ {
			for j := 0; j < out.X.Cols(); j++ {
				scale, offset := out.ColAffine(j)
				back := out.X.At(i, j)*scale + offset
				if math.Abs(back-d.X.At(i, j)) > 1e-9 {
					t.Fatalf("%s col %d: %v maps back to %v, want %v", s.Name(), j, out.X.At(i, j), back, d.X.At(i, j))
				}
			}
		}
	}
	// Chained scalers compose: standard(minmax(x)) still maps back to x.
	mm := NewMinMaxScaler()
	if err := mm.Fit(d); err != nil {
		t.Fatal(err)
	}
	step1, err := mm.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	std := NewStandardScaler()
	if err := std.Fit(step1); err != nil {
		t.Fatal(err)
	}
	step2, err := std.Transform(step1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < step2.X.Rows(); i++ {
		for j := 0; j < step2.X.Cols(); j++ {
			scale, offset := step2.ColAffine(j)
			back := step2.X.At(i, j)*scale + offset
			if math.Abs(back-d.X.At(i, j)) > 1e-9 {
				t.Fatalf("chained affine col %d: got %v want %v", j, back, d.X.At(i, j))
			}
		}
	}
}

// TestMICEImputerUsesCorrelations builds data where x1 = 2*x0 exactly:
// MICE should exploit the relationship and beat mean imputation by a wide
// margin on the missing entries.
func TestMICEImputerUsesCorrelations(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	nan := math.NaN()
	n := 120
	rows := make([][]float64, n)
	truth := make([]float64, n)
	for i := range rows {
		a := rng.NormFloat64() * 5
		rows[i] = []float64{a, 2 * a, rng.NormFloat64()}
		truth[i] = 2 * a
	}
	// Hide 20% of column 1.
	hidden := map[int]bool{}
	for i := 0; i < n; i += 5 {
		rows[i][1] = nan
		hidden[i] = true
	}
	d := ds(t, rows, nil)

	mice := NewMICEImputer()
	if err := mice.Fit(d); err != nil {
		t.Fatal(err)
	}
	out, err := mice.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	mean := NewImputer(ImputeMean)
	if err := mean.Fit(d); err != nil {
		t.Fatal(err)
	}
	outMean, err := mean.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	var miceErr, meanErr float64
	for i := range rows {
		if !hidden[i] {
			continue
		}
		miceErr += math.Abs(out.X.At(i, 1) - truth[i])
		meanErr += math.Abs(outMean.X.At(i, 1) - truth[i])
	}
	if miceErr >= meanErr/10 {
		t.Fatalf("MICE error %v should crush mean-imputation error %v on perfectly correlated data", miceErr, meanErr)
	}
	// No NaNs remain.
	for _, v := range out.X.Data() {
		if math.IsNaN(v) {
			t.Fatal("MICE left a NaN")
		}
	}
}

func TestMICEImputerValidation(t *testing.T) {
	if _, err := NewMICEImputer().Transform(ds(t, [][]float64{{1}}, nil)); err == nil {
		t.Fatal("want not-fitted error")
	}
	tiny := ds(t, [][]float64{{1, 2}, {3, 4}}, nil)
	if err := NewMICEImputer().Fit(tiny); err == nil {
		t.Fatal("want too-few-rows error")
	}
	m := NewMICEImputer()
	if err := m.SetParam("rounds", 3); err != nil {
		t.Fatal(err)
	}
	if err := m.SetParam("bogus", 1); err == nil {
		t.Fatal("want unknown param error")
	}
	if m.Clone().Params()["rounds"] != 3 {
		t.Fatal("clone lost rounds")
	}
}
