// Package preprocess implements the feature Transformers from the paper's
// Table I and Figure 3: the data scalers (StandardScaler, MinMaxScaler,
// RobustScaler, NoOp), feature transformation (Covariance centering + PCA)
// and feature selection (SelectKBest), together with the data-quality
// utilities Section III calls for (imputation and outlier filtering).
//
// Every type satisfies core.Transformer structurally; the package does not
// depend on internal/core.
package preprocess

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"coda/internal/core"
	"coda/internal/dataset"
)

// ErrNotFitted is returned when Transform is called before Fit.
var ErrNotFitted = errors.New("preprocess: transformer not fitted")

// errUnknownParam builds a consistent unknown-parameter error.
func errUnknownParam(component, key string) error {
	return fmt.Errorf("preprocess: %s has no parameter %q", component, key)
}

// setAffine records on out the affine map from scaled values back to
// original units, composing the scaler's own map (orig = scaled*scale +
// offset) with whatever affine the input dataset already carried. It keeps
// column names since scalers preserve column identity.
func setAffine(out, in *dataset.Dataset, scale, offset []float64) {
	out.ColNames = in.ColNames
	out.ColScale = make([]float64, len(scale))
	out.ColOffset = make([]float64, len(scale))
	for j := range scale {
		inScale, inOffset := in.ColAffine(j)
		out.ColScale[j] = scale[j] * inScale
		out.ColOffset[j] = offset[j]*inScale + inOffset
	}
}

// StandardScaler standardizes each feature to zero mean and unit variance.
type StandardScaler struct {
	means, stds []float64
}

// NewStandardScaler returns an unfitted StandardScaler.
func NewStandardScaler() *StandardScaler { return &StandardScaler{} }

// Name implements core.Component.
func (s *StandardScaler) Name() string { return "standardscaler" }

// SetParam implements core.Component; the scaler has no parameters.
func (s *StandardScaler) SetParam(key string, _ float64) error {
	return errUnknownParam(s.Name(), key)
}

// Params implements core.Component.
func (s *StandardScaler) Params() map[string]float64 { return nil }

// Clone implements core.Transformer.
func (s *StandardScaler) Clone() core.Transformer { return NewStandardScaler() }

// Fit learns per-column means and standard deviations in one fused pass
// over the data (matrix.ColMeansStds).
func (s *StandardScaler) Fit(ds *dataset.Dataset) error {
	s.means, s.stds = ds.X.ColMeansStds()
	return nil
}

// AffineColumns implements core.AffineSource: the fitted transform is
// out = (x - mean) / std, with std replaced by 1 for zero-variance columns
// (dividing by 1 is exact, so this matches Transform bit for bit).
func (s *StandardScaler) AffineColumns() (sub, div []float64, ok bool) {
	if s.means == nil {
		return nil, nil, false
	}
	div = make([]float64, len(s.stds))
	for j, sd := range s.stds {
		if sd > 0 {
			div[j] = sd
		} else {
			div[j] = 1
		}
	}
	return s.means, div, true
}

// Transform standardizes columns; zero-variance columns pass through centred.
func (s *StandardScaler) Transform(ds *dataset.Dataset) (*dataset.Dataset, error) {
	if s.means == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, s.Name())
	}
	if ds.X.Cols() != len(s.means) {
		return nil, fmt.Errorf("preprocess: %s fitted on %d cols, got %d", s.Name(), len(s.means), ds.X.Cols())
	}
	x := ds.X.Clone()
	for i := 0; i < x.Rows(); i++ {
		row := x.Row(i)
		for j := range row {
			row[j] -= s.means[j]
			if s.stds[j] > 0 {
				row[j] /= s.stds[j]
			}
		}
	}
	out := ds.WithX(x)
	scale := make([]float64, len(s.stds))
	for j, sd := range s.stds {
		if sd > 0 {
			scale[j] = sd
		} else {
			scale[j] = 1 // zero-variance column was only centred
		}
	}
	setAffine(out, ds, scale, s.means)
	return out, nil
}

// MinMaxScaler rescales each feature into [0, 1] using the fitted min/max.
type MinMaxScaler struct {
	mins, maxs []float64
}

// NewMinMaxScaler returns an unfitted MinMaxScaler.
func NewMinMaxScaler() *MinMaxScaler { return &MinMaxScaler{} }

// Name implements core.Component.
func (s *MinMaxScaler) Name() string { return "minmaxscaler" }

// SetParam implements core.Component; the scaler has no parameters.
func (s *MinMaxScaler) SetParam(key string, _ float64) error {
	return errUnknownParam(s.Name(), key)
}

// Params implements core.Component.
func (s *MinMaxScaler) Params() map[string]float64 { return nil }

// Clone implements core.Transformer.
func (s *MinMaxScaler) Clone() core.Transformer { return NewMinMaxScaler() }

// Fit learns per-column minima and maxima.
func (s *MinMaxScaler) Fit(ds *dataset.Dataset) error {
	s.mins = ds.X.ColMins()
	s.maxs = ds.X.ColMaxs()
	return nil
}

// AffineColumns implements core.AffineSource: out = (x - min) / span, with
// span = 0 marking constant columns whose output is exactly 0 (the fused
// consumer must map div == 0 to a zero output, matching Transform).
func (s *MinMaxScaler) AffineColumns() (sub, div []float64, ok bool) {
	if s.mins == nil {
		return nil, nil, false
	}
	div = make([]float64, len(s.mins))
	for j := range div {
		if span := s.maxs[j] - s.mins[j]; span > 0 {
			div[j] = span
		}
	}
	return s.mins, div, true
}

// Transform rescales into [0,1]; constant columns map to 0.
func (s *MinMaxScaler) Transform(ds *dataset.Dataset) (*dataset.Dataset, error) {
	if s.mins == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, s.Name())
	}
	if ds.X.Cols() != len(s.mins) {
		return nil, fmt.Errorf("preprocess: %s fitted on %d cols, got %d", s.Name(), len(s.mins), ds.X.Cols())
	}
	x := ds.X.Clone()
	for i := 0; i < x.Rows(); i++ {
		row := x.Row(i)
		for j := range row {
			span := s.maxs[j] - s.mins[j]
			row[j] -= s.mins[j]
			if span > 0 {
				row[j] /= span
			} else {
				row[j] = 0
			}
		}
	}
	out := ds.WithX(x)
	scale := make([]float64, len(s.mins))
	for j := range scale {
		if span := s.maxs[j] - s.mins[j]; span > 0 {
			scale[j] = span
		} else {
			scale[j] = 1 // constant column maps to 0; original is offset
		}
	}
	setAffine(out, ds, scale, s.mins)
	return out, nil
}

// RobustScaler centres by the median and scales by the interquartile range,
// making it resilient to the outliers common in industrial sensor data.
type RobustScaler struct {
	medians, iqrs []float64
}

// NewRobustScaler returns an unfitted RobustScaler.
func NewRobustScaler() *RobustScaler { return &RobustScaler{} }

// Name implements core.Component.
func (s *RobustScaler) Name() string { return "robustscaler" }

// SetParam implements core.Component; the scaler has no parameters.
func (s *RobustScaler) SetParam(key string, _ float64) error {
	return errUnknownParam(s.Name(), key)
}

// Params implements core.Component.
func (s *RobustScaler) Params() map[string]float64 { return nil }

// Clone implements core.Transformer.
func (s *RobustScaler) Clone() core.Transformer { return NewRobustScaler() }

// Fit learns per-column medians and interquartile ranges.
func (s *RobustScaler) Fit(ds *dataset.Dataset) error {
	cols := ds.X.Cols()
	s.medians = make([]float64, cols)
	s.iqrs = make([]float64, cols)
	for j := 0; j < cols; j++ {
		col := ds.X.ColCopy(j)
		sort.Float64s(col)
		s.medians[j] = quantileSorted(col, 0.5)
		s.iqrs[j] = quantileSorted(col, 0.75) - quantileSorted(col, 0.25)
	}
	return nil
}

// AffineColumns implements core.AffineSource: out = (x - median) / IQR,
// with IQR replaced by 1 for zero-IQR columns (exact, matching Transform).
func (s *RobustScaler) AffineColumns() (sub, div []float64, ok bool) {
	if s.medians == nil {
		return nil, nil, false
	}
	div = make([]float64, len(s.iqrs))
	for j, iqr := range s.iqrs {
		if iqr > 0 {
			div[j] = iqr
		} else {
			div[j] = 1
		}
	}
	return s.medians, div, true
}

// Transform applies (x - median) / IQR; zero-IQR columns are only centred.
func (s *RobustScaler) Transform(ds *dataset.Dataset) (*dataset.Dataset, error) {
	if s.medians == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, s.Name())
	}
	if ds.X.Cols() != len(s.medians) {
		return nil, fmt.Errorf("preprocess: %s fitted on %d cols, got %d", s.Name(), len(s.medians), ds.X.Cols())
	}
	x := ds.X.Clone()
	for i := 0; i < x.Rows(); i++ {
		row := x.Row(i)
		for j := range row {
			row[j] -= s.medians[j]
			if s.iqrs[j] > 0 {
				row[j] /= s.iqrs[j]
			}
		}
	}
	out := ds.WithX(x)
	scale := make([]float64, len(s.iqrs))
	for j, iqr := range s.iqrs {
		if iqr > 0 {
			scale[j] = iqr
		} else {
			scale[j] = 1 // zero-IQR column was only centred
		}
	}
	setAffine(out, ds, scale, s.medians)
	return out, nil
}

// NoOp is the pass-through option the paper includes in every stage so a
// stage can be skipped on some paths.
type NoOp struct{}

// NewNoOp returns the pass-through transformer.
func NewNoOp() *NoOp { return &NoOp{} }

// Name implements core.Component.
func (n *NoOp) Name() string { return "noop" }

// SetParam implements core.Component; NoOp has no parameters.
func (n *NoOp) SetParam(key string, _ float64) error { return errUnknownParam(n.Name(), key) }

// Params implements core.Component.
func (n *NoOp) Params() map[string]float64 { return nil }

// Clone implements core.Transformer.
func (n *NoOp) Clone() core.Transformer { return NewNoOp() }

// Fit is a no-op.
func (n *NoOp) Fit(*dataset.Dataset) error { return nil }

// Transform returns the dataset unchanged.
func (n *NoOp) Transform(ds *dataset.Dataset) (*dataset.Dataset, error) { return ds, nil }

// quantileSorted returns the q-quantile of an ascending-sorted slice using
// linear interpolation.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
