package preprocess

import (
	"fmt"
	"math"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/matrix"
)

// MICEImputer implements multiple imputation by chained equations, one of
// the imputation methods Section III names: missing entries start at the
// column mean, then for several rounds each incomplete column is regressed
// (ridge) on all other columns over the originally-complete rows, and its
// missing entries are replaced with the regression's predictions. The
// chained updates let imputations in one column inform the others.
type MICEImputer struct {
	Rounds int     // chained-equation sweeps (default 5)
	Alpha  float64 // ridge penalty for the per-column regressions (default 1e-3)

	// Fitted state: per incomplete column, the regression weights over the
	// remaining columns (plus intercept) learned on the training data, and
	// the per-column means for initialization.
	means  []float64
	models map[int][]float64 // col -> [intercept, w_0..w_{p-2}] over other columns
}

// NewMICEImputer returns an unfitted MICE imputer.
func NewMICEImputer() *MICEImputer { return &MICEImputer{Rounds: 5, Alpha: 1e-3} }

// Name implements core.Component.
func (m *MICEImputer) Name() string { return "mice" }

// SetParam implements core.Component; "rounds" and "alpha" are supported.
func (m *MICEImputer) SetParam(key string, v float64) error {
	switch key {
	case "rounds":
		m.Rounds = int(v)
	case "alpha":
		m.Alpha = v
	default:
		return errUnknownParam(m.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (m *MICEImputer) Params() map[string]float64 {
	return map[string]float64{"rounds": float64(m.Rounds), "alpha": m.Alpha}
}

// Clone implements core.Transformer.
func (m *MICEImputer) Clone() core.Transformer {
	return &MICEImputer{Rounds: m.Rounds, Alpha: m.Alpha}
}

// Fit learns the chained regression models on the training data.
func (m *MICEImputer) Fit(ds *dataset.Dataset) error {
	if m.Rounds < 1 {
		m.Rounds = 5
	}
	if m.Alpha <= 0 {
		m.Alpha = 1e-3
	}
	n, p := ds.NumSamples(), ds.NumFeatures()
	if n < p+2 {
		return fmt.Errorf("preprocess: mice needs more rows (%d) than columns (%d)", n, p)
	}
	m.means = make([]float64, p)
	missing := make([][]bool, n)
	colHasMissing := make([]bool, p)
	counts := make([]float64, p)
	for i := 0; i < n; i++ {
		missing[i] = make([]bool, p)
		for j, v := range ds.X.Row(i) {
			if math.IsNaN(v) {
				missing[i][j] = true
				colHasMissing[j] = true
			} else {
				m.means[j] += v
				counts[j]++
			}
		}
	}
	for j := range m.means {
		if counts[j] > 0 {
			m.means[j] /= counts[j]
		}
	}

	// Working copy initialized with mean imputation.
	work := ds.X.Clone()
	for i := 0; i < n; i++ {
		row := work.Row(i)
		for j := range row {
			if missing[i][j] {
				row[j] = m.means[j]
			}
		}
	}

	m.models = map[int][]float64{}
	for round := 0; round < m.Rounds; round++ {
		for j := 0; j < p; j++ {
			if !colHasMissing[j] {
				continue
			}
			weights, err := m.fitColumn(work, missing, j)
			if err != nil {
				return fmt.Errorf("preprocess: mice column %d: %w", j, err)
			}
			m.models[j] = weights
			// Update the working copy's missing entries with predictions.
			for i := 0; i < n; i++ {
				if missing[i][j] {
					work.Set(i, j, m.predictCell(work.Row(i), j, weights))
				}
			}
		}
	}
	return nil
}

// fitColumn regresses column j on the other columns over rows where j was
// observed, with ridge regularization.
func (m *MICEImputer) fitColumn(work *matrix.Matrix, missing [][]bool, j int) ([]float64, error) {
	n, p := work.Rows(), work.Cols()
	var rows []int
	for i := 0; i < n; i++ {
		if !missing[i][j] {
			rows = append(rows, i)
		}
	}
	if len(rows) < p+1 {
		// Too few observed rows to regress: fall back to the mean model.
		return make([]float64, p), nil // intercept 0 + zero weights => handled by +mean below? no:
	}
	cols := p - 1 // all except j
	ridgeRows := len(rows) + cols
	a := matrix.New(ridgeRows, cols+1)
	b := make([]float64, ridgeRows)
	for r, i := range rows {
		row := a.Row(r)
		row[0] = 1
		src := work.Row(i)
		k := 1
		for c := 0; c < p; c++ {
			if c == j {
				continue
			}
			row[k] = src[c]
			k++
		}
		b[r] = work.At(i, j)
	}
	s := math.Sqrt(m.Alpha)
	for c := 0; c < cols; c++ {
		a.Set(len(rows)+c, c+1, s)
	}
	return matrix.SolveLeastSquares(a, b)
}

// predictCell evaluates column j's regression on one row. A zero-weight
// model (fallback) predicts the column mean.
func (m *MICEImputer) predictCell(row []float64, j int, weights []float64) float64 {
	allZero := true
	for _, w := range weights {
		if w != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return m.means[j]
	}
	s := weights[0]
	k := 1
	for c := 0; c < len(row); c++ {
		if c == j {
			continue
		}
		s += weights[k] * row[c]
		k++
	}
	return s
}

// Transform fills NaN entries using the fitted chained models, iterating
// the same number of rounds so mutually-missing entries stabilize.
func (m *MICEImputer) Transform(ds *dataset.Dataset) (*dataset.Dataset, error) {
	if m.means == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, m.Name())
	}
	if ds.X.Cols() != len(m.means) {
		return nil, fmt.Errorf("preprocess: mice fitted on %d cols, got %d", len(m.means), ds.X.Cols())
	}
	n, p := ds.NumSamples(), ds.NumFeatures()
	x := ds.X.Clone()
	missing := make([][]bool, n)
	for i := 0; i < n; i++ {
		missing[i] = make([]bool, p)
		row := x.Row(i)
		for j, v := range row {
			if math.IsNaN(v) {
				missing[i][j] = true
				row[j] = m.means[j]
			}
		}
	}
	for round := 0; round < m.Rounds; round++ {
		for j := 0; j < p; j++ {
			weights, ok := m.models[j]
			if !ok {
				continue
			}
			for i := 0; i < n; i++ {
				if missing[i][j] {
					x.Set(i, j, m.predictCell(x.Row(i), j, weights))
				}
			}
		}
	}
	out := ds.WithX(x)
	out.ColNames = ds.ColNames
	out.ColScale = ds.ColScale
	out.ColOffset = ds.ColOffset
	return out, nil
}
