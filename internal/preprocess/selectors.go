package preprocess

import (
	"fmt"
	"math"
	"sort"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/matrix"
)

// Covariance is the centering transformer of the paper's Listing 1, where
// the feature-selection option [Covariance(), PCA()] chains covariance
// centering with a principal component analysis — together they form
// covariance-based PCA.
type Covariance struct {
	means []float64
}

// NewCovariance returns an unfitted centering transformer.
func NewCovariance() *Covariance { return &Covariance{} }

// Name implements core.Component.
func (c *Covariance) Name() string { return "covariance" }

// SetParam implements core.Component; no parameters.
func (c *Covariance) SetParam(key string, _ float64) error { return errUnknownParam(c.Name(), key) }

// Params implements core.Component.
func (c *Covariance) Params() map[string]float64 { return nil }

// Clone implements core.Transformer.
func (c *Covariance) Clone() core.Transformer { return NewCovariance() }

// Fit learns column means.
func (c *Covariance) Fit(ds *dataset.Dataset) error {
	c.means = ds.X.ColMeans()
	return nil
}

// Transform subtracts the fitted column means.
func (c *Covariance) Transform(ds *dataset.Dataset) (*dataset.Dataset, error) {
	if c.means == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, c.Name())
	}
	if ds.X.Cols() != len(c.means) {
		return nil, fmt.Errorf("preprocess: %s fitted on %d cols, got %d", c.Name(), len(c.means), ds.X.Cols())
	}
	x := ds.X.Clone()
	for i := 0; i < x.Rows(); i++ {
		row := x.Row(i)
		for j := range row {
			row[j] -= c.means[j]
		}
	}
	out := ds.WithX(x)
	scale := make([]float64, len(c.means))
	for j := range scale {
		scale[j] = 1
	}
	setAffine(out, ds, scale, c.means)
	return out, nil
}

// PCA projects features onto the top NComponents principal directions of
// the training data's covariance, via Jacobi eigendecomposition.
type PCA struct {
	// NComponents is the output dimensionality; 0 keeps all components.
	NComponents int

	means      []float64
	components *matrix.Matrix // cols x k, eigenvectors as columns
	// ExplainedVariance holds the eigenvalues of the kept components.
	ExplainedVariance []float64
}

// NewPCA returns an unfitted PCA keeping nComponents dimensions (0 = all).
func NewPCA(nComponents int) *PCA { return &PCA{NComponents: nComponents} }

// Name implements core.Component.
func (p *PCA) Name() string { return "pca" }

// SetParam implements core.Component; "n_components" is supported.
func (p *PCA) SetParam(key string, v float64) error {
	if key == "n_components" {
		p.NComponents = int(v)
		return nil
	}
	return errUnknownParam(p.Name(), key)
}

// Params implements core.Component.
func (p *PCA) Params() map[string]float64 {
	return map[string]float64{"n_components": float64(p.NComponents)}
}

// Clone implements core.Transformer.
func (p *PCA) Clone() core.Transformer { return NewPCA(p.NComponents) }

// Fit computes the principal directions of the training data.
func (p *PCA) Fit(ds *dataset.Dataset) error {
	p.means = ds.X.ColMeans()
	cov := ds.X.Covariance()
	vals, vecs, err := matrix.SymEig(cov)
	if err != nil {
		return fmt.Errorf("preprocess: pca eigendecomposition: %w", err)
	}
	k := p.NComponents
	if k <= 0 || k > ds.X.Cols() {
		k = ds.X.Cols()
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	p.components = vecs.SelectCols(idx)
	p.ExplainedVariance = append([]float64(nil), vals[:k]...)
	return nil
}

// Transform centres the data with the training means and projects it onto
// the principal directions.
func (p *PCA) Transform(ds *dataset.Dataset) (*dataset.Dataset, error) {
	if p.components == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, p.Name())
	}
	if ds.X.Cols() != len(p.means) {
		return nil, fmt.Errorf("preprocess: %s fitted on %d cols, got %d", p.Name(), len(p.means), ds.X.Cols())
	}
	centred := ds.X.Clone()
	for i := 0; i < centred.Rows(); i++ {
		row := centred.Row(i)
		for j := range row {
			row[j] -= p.means[j]
		}
	}
	projected, err := centred.Mul(p.components)
	if err != nil {
		return nil, fmt.Errorf("preprocess: pca projection: %w", err)
	}
	return ds.WithX(projected), nil
}

// SelectKBest keeps the K features with the highest absolute Pearson
// correlation with the target (a univariate score in the spirit of
// sklearn's f_regression ranking).
type SelectKBest struct {
	K int

	keep []int
}

// NewSelectKBest returns an unfitted selector keeping k features.
func NewSelectKBest(k int) *SelectKBest { return &SelectKBest{K: k} }

// Name implements core.Component.
func (s *SelectKBest) Name() string { return "selectkbest" }

// SetParam implements core.Component; "k" is supported.
func (s *SelectKBest) SetParam(key string, v float64) error {
	if key == "k" {
		s.K = int(v)
		return nil
	}
	return errUnknownParam(s.Name(), key)
}

// Params implements core.Component.
func (s *SelectKBest) Params() map[string]float64 {
	return map[string]float64{"k": float64(s.K)}
}

// Clone implements core.Transformer.
func (s *SelectKBest) Clone() core.Transformer { return NewSelectKBest(s.K) }

// Fit ranks features by |corr(x_j, y)| and remembers the top K column
// indices (in ascending index order so output column order is stable).
func (s *SelectKBest) Fit(ds *dataset.Dataset) error {
	if ds.Y == nil {
		return fmt.Errorf("preprocess: %s requires a supervised dataset", s.Name())
	}
	cols := ds.X.Cols()
	k := s.K
	if k <= 0 || k > cols {
		k = cols
	}
	scores := make([]float64, cols)
	for j := 0; j < cols; j++ {
		scores[j] = math.Abs(pearson(ds.X.ColCopy(j), ds.Y))
	}
	order := make([]int, cols)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	s.keep = append([]int(nil), order[:k]...)
	sort.Ints(s.keep)
	return nil
}

// Transform keeps the selected columns.
func (s *SelectKBest) Transform(ds *dataset.Dataset) (*dataset.Dataset, error) {
	if s.keep == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, s.Name())
	}
	for _, j := range s.keep {
		if j >= ds.X.Cols() {
			return nil, fmt.Errorf("preprocess: %s fitted with column %d, data has %d cols", s.Name(), j, ds.X.Cols())
		}
	}
	out := ds.WithX(ds.X.SelectCols(s.keep))
	if ds.ColNames != nil {
		names := make([]string, len(s.keep))
		for i, j := range s.keep {
			names[i] = ds.ColNames[j]
		}
		out.ColNames = names
	}
	if ds.ColScale != nil {
		out.ColScale = make([]float64, len(s.keep))
		out.ColOffset = make([]float64, len(s.keep))
		for i, j := range s.keep {
			out.ColScale[i], out.ColOffset[i] = ds.ColAffine(j)
		}
	}
	return out, nil
}

// SelectedColumns returns the indices kept after Fit, for RCA-style
// explanations.
func (s *SelectKBest) SelectedColumns() []int { return append([]int(nil), s.keep...) }

// pearson returns the Pearson correlation of two equal-length vectors,
// or 0 when either is constant.
func pearson(a, b []float64) float64 {
	n := float64(len(a))
	if n == 0 {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}
