package preprocess

import (
	"fmt"
	"math"
	"sort"

	"coda/internal/dataset"
)

// Outlier filtering is a row-dropping data-cleansing step (Section III), so
// it runs before pipelines rather than inside them: dropping rows at predict
// time would silently misalign predictions with inputs.

// FilterZScoreOutliers returns a copy of ds without rows where any feature
// lies more than threshold standard deviations from its column mean, plus
// the indices of the dropped rows. threshold must be positive.
func FilterZScoreOutliers(ds *dataset.Dataset, threshold float64) (*dataset.Dataset, []int, error) {
	if threshold <= 0 {
		return nil, nil, fmt.Errorf("preprocess: z-score threshold must be positive, got %v", threshold)
	}
	means := ds.X.ColMeans()
	stds := ds.X.ColStds()
	var keep, dropped []int
	for i := 0; i < ds.NumSamples(); i++ {
		out := false
		for j, v := range ds.X.Row(i) {
			if stds[j] == 0 {
				continue
			}
			if math.Abs(v-means[j])/stds[j] > threshold {
				out = true
				break
			}
		}
		if out {
			dropped = append(dropped, i)
		} else {
			keep = append(keep, i)
		}
	}
	return ds.Subset(keep), dropped, nil
}

// FilterIQROutliers returns a copy of ds without rows where any feature
// falls outside [Q1 - k*IQR, Q3 + k*IQR] for its column, plus the dropped
// row indices. k must be positive (1.5 is the Tukey convention).
func FilterIQROutliers(ds *dataset.Dataset, k float64) (*dataset.Dataset, []int, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("preprocess: IQR multiplier must be positive, got %v", k)
	}
	cols := ds.X.Cols()
	lo := make([]float64, cols)
	hi := make([]float64, cols)
	for j := 0; j < cols; j++ {
		col := ds.X.ColCopy(j)
		sort.Float64s(col)
		q1 := quantileSorted(col, 0.25)
		q3 := quantileSorted(col, 0.75)
		iqr := q3 - q1
		lo[j] = q1 - k*iqr
		hi[j] = q3 + k*iqr
	}
	var keep, dropped []int
	for i := 0; i < ds.NumSamples(); i++ {
		out := false
		for j, v := range ds.X.Row(i) {
			if v < lo[j] || v > hi[j] {
				out = true
				break
			}
		}
		if out {
			dropped = append(dropped, i)
		} else {
			keep = append(keep, i)
		}
	}
	return ds.Subset(keep), dropped, nil
}

// DropRowsWithMissing removes rows containing any NaN feature or target,
// the simplest of Section III's data-cleansing options.
func DropRowsWithMissing(ds *dataset.Dataset) (*dataset.Dataset, []int) {
	var keep, dropped []int
	for i := 0; i < ds.NumSamples(); i++ {
		bad := false
		for _, v := range ds.X.Row(i) {
			if math.IsNaN(v) {
				bad = true
				break
			}
		}
		if !bad && ds.Y != nil && math.IsNaN(ds.Y[i]) {
			bad = true
		}
		if bad {
			dropped = append(dropped, i)
		} else {
			keep = append(keep, i)
		}
	}
	return ds.Subset(keep), dropped
}
