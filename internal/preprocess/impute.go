package preprocess

import (
	"fmt"
	"math"
	"sort"

	"coda/internal/core"
	"coda/internal/dataset"
)

// ImputeStrategy selects how an Imputer fills missing (NaN) values.
type ImputeStrategy int

// Imputation strategies from Section III's fixed set of data-imputation
// techniques (mean, median, mode, k nearest neighbors).
const (
	ImputeMean ImputeStrategy = iota + 1
	ImputeMedian
	ImputeMode
	ImputeKNN
)

// String names the strategy.
func (s ImputeStrategy) String() string {
	switch s {
	case ImputeMean:
		return "mean"
	case ImputeMedian:
		return "median"
	case ImputeMode:
		return "mode"
	case ImputeKNN:
		return "knn"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Imputer fills NaN entries column-wise using the configured strategy.
// For ImputeKNN, each missing entry is filled with the average of that
// column over the K nearest training rows by distance on shared non-missing
// columns.
type Imputer struct {
	Strategy ImputeStrategy
	K        int // neighbours for ImputeKNN (default 5)

	fill     []float64 // per-column fill value for mean/median/mode
	trainX   [][]float64
	trainOK  [][]bool
	nFeature int
}

// NewImputer returns an unfitted Imputer.
func NewImputer(strategy ImputeStrategy) *Imputer { return &Imputer{Strategy: strategy, K: 5} }

// Name implements core.Component.
func (im *Imputer) Name() string { return "imputer" }

// SetParam implements core.Component; "k" (for KNN) is supported.
func (im *Imputer) SetParam(key string, v float64) error {
	if key == "k" {
		im.K = int(v)
		return nil
	}
	return errUnknownParam(im.Name(), key)
}

// Params implements core.Component.
func (im *Imputer) Params() map[string]float64 {
	return map[string]float64{"k": float64(im.K)}
}

// Clone implements core.Transformer.
func (im *Imputer) Clone() core.Transformer {
	return &Imputer{Strategy: im.Strategy, K: im.K}
}

// Fit learns per-column fill statistics over non-missing entries.
func (im *Imputer) Fit(ds *dataset.Dataset) error {
	cols := ds.X.Cols()
	im.nFeature = cols
	switch im.Strategy {
	case ImputeMean, ImputeMedian, ImputeMode:
		im.fill = make([]float64, cols)
		for j := 0; j < cols; j++ {
			var vals []float64
			for i := 0; i < ds.X.Rows(); i++ {
				if v := ds.X.At(i, j); !math.IsNaN(v) {
					vals = append(vals, v)
				}
			}
			if len(vals) == 0 {
				im.fill[j] = 0
				continue
			}
			switch im.Strategy {
			case ImputeMean:
				s := 0.0
				for _, v := range vals {
					s += v
				}
				im.fill[j] = s / float64(len(vals))
			case ImputeMedian:
				sort.Float64s(vals)
				im.fill[j] = quantileSorted(vals, 0.5)
			case ImputeMode:
				im.fill[j] = mode(vals)
			}
		}
	case ImputeKNN:
		if im.K < 1 {
			return fmt.Errorf("preprocess: KNN imputer needs K >= 1, got %d", im.K)
		}
		rows := ds.X.Rows()
		im.trainX = make([][]float64, rows)
		im.trainOK = make([][]bool, rows)
		for i := 0; i < rows; i++ {
			r := ds.X.RowCopy(i)
			ok := make([]bool, cols)
			for j, v := range r {
				ok[j] = !math.IsNaN(v)
			}
			im.trainX[i] = r
			im.trainOK[i] = ok
		}
	default:
		return fmt.Errorf("preprocess: unknown impute strategy %v", im.Strategy)
	}
	return nil
}

// Transform fills every NaN entry.
func (im *Imputer) Transform(ds *dataset.Dataset) (*dataset.Dataset, error) {
	if im.nFeature == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, im.Name())
	}
	if ds.X.Cols() != im.nFeature {
		return nil, fmt.Errorf("preprocess: imputer fitted on %d cols, got %d", im.nFeature, ds.X.Cols())
	}
	x := ds.X.Clone()
	for i := 0; i < x.Rows(); i++ {
		row := x.Row(i)
		for j, v := range row {
			if !math.IsNaN(v) {
				continue
			}
			switch im.Strategy {
			case ImputeKNN:
				row[j] = im.knnFill(row, j)
			default:
				row[j] = im.fill[j]
			}
		}
	}
	out := ds.WithX(x)
	// Imputation preserves column identity and units.
	out.ColNames = ds.ColNames
	out.ColScale = ds.ColScale
	out.ColOffset = ds.ColOffset
	return out, nil
}

// knnFill averages column j over the K nearest training rows, measured by
// Euclidean distance on columns observed in both rows.
func (im *Imputer) knnFill(row []float64, j int) float64 {
	type cand struct {
		dist float64
		val  float64
	}
	var cands []cand
	for r, tr := range im.trainX {
		if !im.trainOK[r][j] {
			continue
		}
		d, shared := 0.0, 0
		for c, v := range row {
			if c == j || math.IsNaN(v) || !im.trainOK[r][c] {
				continue
			}
			diff := v - tr[c]
			d += diff * diff
			shared++
		}
		if shared == 0 {
			d = math.MaxFloat64 / 2
		}
		cands = append(cands, cand{d, tr[j]})
	}
	if len(cands) == 0 {
		return 0
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
	k := im.K
	if k > len(cands) {
		k = len(cands)
	}
	s := 0.0
	for _, c := range cands[:k] {
		s += c.val
	}
	return s / float64(k)
}

// mode returns the most frequent value (ties broken by smallest value).
func mode(vals []float64) float64 {
	counts := make(map[float64]int, len(vals))
	for _, v := range vals {
		counts[v]++
	}
	best, bestN := math.Inf(1), -1
	for v, n := range counts {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best
}
