// Package crossval implements the cross-validation strategies the paper
// names in Section IV-B: K-fold, Monte-Carlo (shuffle split), train-test
// split, nested K-fold, and the TimeSeriesSlidingSplit of Figure 12 which
// keeps a buffer window between training and validation ranges so that no
// future information leaks into training.
package crossval

import (
	"fmt"
	"math/rand"
	"sort"
)

// Split is one train/validation partition as index sets into the dataset.
type Split struct {
	Train []int
	Test  []int
}

// Splitter produces a sequence of train/test splits for n samples. A
// Splitter carries its own configuration; Splits must be deterministic for
// a fixed rng seed so cooperating clients reproduce identical folds.
type Splitter interface {
	// Splits returns the train/test index partitions for n samples.
	Splits(n int, rng *rand.Rand) ([]Split, error)
	// Spec returns a canonical string describing the strategy and its
	// parameters, used in DARR keys so clients agree on evaluation setup.
	Spec() string
}

// KFold is the classic K-fold cross validation of Figure 4: the data is
// randomly partitioned into K equally-sized folds without replacement, each
// fold serving once as the validation set.
type KFold struct {
	K       int
	Shuffle bool // shuffle sample order before folding (default recommended for iid data)
}

// Splits implements Splitter.
func (k KFold) Splits(n int, rng *rand.Rand) ([]Split, error) {
	if k.K < 2 {
		return nil, fmt.Errorf("crossval: KFold needs K >= 2, got %d", k.K)
	}
	if n < k.K {
		return nil, fmt.Errorf("crossval: %d samples cannot form %d folds", n, k.K)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if k.Shuffle {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	splits := make([]Split, k.K)
	// Distribute remainder across the first n%K folds, like sklearn.
	base, rem := n/k.K, n%k.K
	start := 0
	for f := 0; f < k.K; f++ {
		size := base
		if f < rem {
			size++
		}
		test := append([]int(nil), order[start:start+size]...)
		train := make([]int, 0, n-size)
		train = append(train, order[:start]...)
		train = append(train, order[start+size:]...)
		splits[f] = Split{Train: train, Test: test}
		start += size
	}
	return splits, nil
}

// Spec implements Splitter.
func (k KFold) Spec() string { return fmt.Sprintf("kfold(k=%d,shuffle=%t)", k.K, k.Shuffle) }

// ShuffleSplit is Monte-Carlo cross validation: Iterations independent
// random train/test partitions with the given test fraction.
type ShuffleSplit struct {
	Iterations int
	TestFrac   float64
}

// Splits implements Splitter.
func (s ShuffleSplit) Splits(n int, rng *rand.Rand) ([]Split, error) {
	if s.Iterations < 1 {
		return nil, fmt.Errorf("crossval: ShuffleSplit needs >= 1 iteration, got %d", s.Iterations)
	}
	if s.TestFrac <= 0 || s.TestFrac >= 1 {
		return nil, fmt.Errorf("crossval: ShuffleSplit test fraction %v outside (0,1)", s.TestFrac)
	}
	testSize := int(float64(n) * s.TestFrac)
	if testSize == 0 || testSize == n {
		return nil, fmt.Errorf("crossval: ShuffleSplit of %d samples at %v leaves an empty side", n, s.TestFrac)
	}
	splits := make([]Split, s.Iterations)
	for it := range splits {
		perm := rng.Perm(n)
		splits[it] = Split{
			Test:  append([]int(nil), perm[:testSize]...),
			Train: append([]int(nil), perm[testSize:]...),
		}
	}
	return splits, nil
}

// Spec implements Splitter.
func (s ShuffleSplit) Spec() string {
	return fmt.Sprintf("shufflesplit(iter=%d,test=%g)", s.Iterations, s.TestFrac)
}

// TrainTest is a single randomized train/test split.
type TrainTest struct {
	TestFrac float64
}

// Splits implements Splitter.
func (s TrainTest) Splits(n int, rng *rand.Rand) ([]Split, error) {
	sp, err := ShuffleSplit{Iterations: 1, TestFrac: s.TestFrac}.Splits(n, rng)
	if err != nil {
		return nil, fmt.Errorf("crossval: train-test: %w", err)
	}
	return sp, nil
}

// Spec implements Splitter.
func (s TrainTest) Spec() string { return fmt.Sprintf("traintest(test=%g)", s.TestFrac) }

// NestedKFold performs K-fold where each outer training set is itself
// splittable by an inner K-fold; Splits returns the outer splits, and
// InnerSplits produces the inner folds for a given outer training set.
// The outer loop estimates generalization while the inner loop tunes
// hyperparameters.
type NestedKFold struct {
	OuterK, InnerK int
}

// Splits implements Splitter (outer folds).
func (nk NestedKFold) Splits(n int, rng *rand.Rand) ([]Split, error) {
	sp, err := (KFold{K: nk.OuterK, Shuffle: true}).Splits(n, rng)
	if err != nil {
		return nil, fmt.Errorf("crossval: nested outer: %w", err)
	}
	return sp, nil
}

// InnerSplits partitions one outer training index set into inner folds.
// Returned indices refer to the original dataset (not positions within
// outerTrain).
func (nk NestedKFold) InnerSplits(outerTrain []int, rng *rand.Rand) ([]Split, error) {
	inner, err := (KFold{K: nk.InnerK, Shuffle: true}).Splits(len(outerTrain), rng)
	if err != nil {
		return nil, fmt.Errorf("crossval: nested inner: %w", err)
	}
	for i := range inner {
		for j, p := range inner[i].Train {
			inner[i].Train[j] = outerTrain[p]
		}
		for j, p := range inner[i].Test {
			inner[i].Test[j] = outerTrain[p]
		}
	}
	return inner, nil
}

// Spec implements Splitter.
func (nk NestedKFold) Spec() string {
	return fmt.Sprintf("nestedkfold(outer=%d,inner=%d)", nk.OuterK, nk.InnerK)
}

// SlidingSplit is the TimeSeriesSlidingSplit of Figure 12: contiguous
// training and validation windows separated by a buffer, sliding forward in
// time for K iterations so that validation data always lies strictly after
// (train end + buffer).
type SlidingSplit struct {
	K         int // number of sliding iterations
	TrainSize int // samples per training window
	TestSize  int // samples per validation window
	Buffer    int // gap between train end and validation start (>= forecast horizon)
}

// Splits implements Splitter. Index order inside each split is increasing in
// time; no shuffling ever occurs.
func (s SlidingSplit) Splits(n int, _ *rand.Rand) ([]Split, error) {
	if s.K < 1 || s.TrainSize < 1 || s.TestSize < 1 || s.Buffer < 0 {
		return nil, fmt.Errorf("crossval: invalid sliding split %+v", s)
	}
	window := s.TrainSize + s.Buffer + s.TestSize
	if window > n {
		return nil, fmt.Errorf("crossval: sliding window %d exceeds %d samples", window, n)
	}
	// Slide so the last window ends at the last sample; earlier windows are
	// evenly spaced. With K == 1 the single window starts at 0.
	maxStart := n - window
	splits := make([]Split, s.K)
	for i := 0; i < s.K; i++ {
		start := 0
		if s.K > 1 {
			start = i * maxStart / (s.K - 1)
		}
		train := make([]int, s.TrainSize)
		for j := range train {
			train[j] = start + j
		}
		test := make([]int, s.TestSize)
		for j := range test {
			test[j] = start + s.TrainSize + s.Buffer + j
		}
		splits[i] = Split{Train: train, Test: test}
	}
	return splits, nil
}

// Spec implements Splitter.
func (s SlidingSplit) Spec() string {
	return fmt.Sprintf("slidingsplit(k=%d,train=%d,test=%d,buffer=%d)", s.K, s.TrainSize, s.TestSize, s.Buffer)
}

// ExpandingSplit is the classic "Time Series Split" the paper lists as an
// alternate strategy: the training window grows from the start of the
// series while a fixed-size validation window (separated by Buffer) slides
// toward the end — every iteration trains on all data before its
// validation range.
type ExpandingSplit struct {
	K        int // iterations
	TestSize int // validation samples per iteration
	Buffer   int // gap between train end and validation start (>= horizon)
	MinTrain int // smallest training window (default TestSize)
}

// Splits implements Splitter; index order is time order, never shuffled.
func (s ExpandingSplit) Splits(n int, _ *rand.Rand) ([]Split, error) {
	if s.K < 1 || s.TestSize < 1 || s.Buffer < 0 {
		return nil, fmt.Errorf("crossval: invalid expanding split %+v", s)
	}
	minTrain := s.MinTrain
	if minTrain < 1 {
		minTrain = s.TestSize
	}
	needed := minTrain + s.Buffer + s.K*s.TestSize
	if needed > n {
		return nil, fmt.Errorf("crossval: expanding split needs %d samples, have %d", needed, n)
	}
	splits := make([]Split, s.K)
	for i := 0; i < s.K; i++ {
		testEnd := n - (s.K-1-i)*s.TestSize
		testStart := testEnd - s.TestSize
		trainEnd := testStart - s.Buffer
		train := make([]int, trainEnd)
		for j := range train {
			train[j] = j
		}
		test := make([]int, s.TestSize)
		for j := range test {
			test[j] = testStart + j
		}
		splits[i] = Split{Train: train, Test: test}
	}
	return splits, nil
}

// Spec implements Splitter.
func (s ExpandingSplit) Spec() string {
	return fmt.Sprintf("expandingsplit(k=%d,test=%d,buffer=%d)", s.K, s.TestSize, s.Buffer)
}

// StratifiedKFold partitions samples into K folds while preserving each
// class's proportion per fold — essential under the class imbalances
// Section II warns about (rare failure cases vs many successes), where
// plain K-fold can produce folds with no positive samples at all.
// Labels must be provided at construction (the Splitter interface itself
// only sees sample counts).
type StratifiedKFold struct {
	K      int
	Labels []float64
}

// Splits implements Splitter. Within each class, samples are shuffled and
// dealt round-robin across folds.
func (s StratifiedKFold) Splits(n int, rng *rand.Rand) ([]Split, error) {
	if s.K < 2 {
		return nil, fmt.Errorf("crossval: StratifiedKFold needs K >= 2, got %d", s.K)
	}
	if len(s.Labels) != n {
		return nil, fmt.Errorf("crossval: StratifiedKFold has %d labels for %d samples", len(s.Labels), n)
	}
	byClass := map[float64][]int{}
	for i, l := range s.Labels {
		byClass[l] = append(byClass[l], i)
	}
	// Deterministic class order for reproducibility.
	classes := make([]float64, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Float64s(classes)
	for _, c := range classes {
		if len(byClass[c]) < s.K {
			return nil, fmt.Errorf("crossval: class %v has %d samples, fewer than %d folds", c, len(byClass[c]), s.K)
		}
	}
	folds := make([][]int, s.K)
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for pos, i := range idx {
			f := pos % s.K
			folds[f] = append(folds[f], i)
		}
	}
	splits := make([]Split, s.K)
	for f := range splits {
		test := append([]int(nil), folds[f]...)
		train := make([]int, 0, n-len(test))
		for other := range folds {
			if other != f {
				train = append(train, folds[other]...)
			}
		}
		splits[f] = Split{Train: train, Test: test}
	}
	return splits, nil
}

// Spec implements Splitter.
func (s StratifiedKFold) Spec() string { return fmt.Sprintf("stratifiedkfold(k=%d)", s.K) }
