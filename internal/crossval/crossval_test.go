package crossval

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func checkPartition(t *testing.T, n int, sp Split) {
	t.Helper()
	seen := make([]bool, n)
	for _, i := range sp.Train {
		if i < 0 || i >= n {
			t.Fatalf("train index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
	}
	for _, i := range sp.Test {
		if i < 0 || i >= n {
			t.Fatalf("test index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("index %d in both train and test", i)
		}
		seen[i] = true
	}
}

func TestKFoldPartitionLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{10, 17, 100} {
		for _, k := range []int{2, 3, 5} {
			splits, err := (KFold{K: k, Shuffle: true}).Splits(n, rng)
			if err != nil {
				t.Fatal(err)
			}
			if len(splits) != k {
				t.Fatalf("got %d folds, want %d", len(splits), k)
			}
			// Every sample appears in exactly one test fold across all splits.
			testCount := make([]int, n)
			for _, sp := range splits {
				checkPartition(t, n, sp)
				if len(sp.Train)+len(sp.Test) != n {
					t.Fatalf("fold does not cover all samples: %d+%d != %d", len(sp.Train), len(sp.Test), n)
				}
				for _, i := range sp.Test {
					testCount[i]++
				}
			}
			for i, c := range testCount {
				if c != 1 {
					t.Fatalf("n=%d k=%d: sample %d in %d test folds, want 1", n, k, i, c)
				}
			}
			// Fold sizes differ by at most one.
			minSz, maxSz := n, 0
			for _, sp := range splits {
				if len(sp.Test) < minSz {
					minSz = len(sp.Test)
				}
				if len(sp.Test) > maxSz {
					maxSz = len(sp.Test)
				}
			}
			if maxSz-minSz > 1 {
				t.Fatalf("fold sizes unbalanced: min=%d max=%d", minSz, maxSz)
			}
		}
	}
}

func TestKFoldErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := (KFold{K: 1}).Splits(10, rng); err == nil {
		t.Fatal("want K>=2 error")
	}
	if _, err := (KFold{K: 5}).Splits(3, rng); err == nil {
		t.Fatal("want too-few-samples error")
	}
}

func TestKFoldDeterministicForSeed(t *testing.T) {
	a, err := (KFold{K: 4, Shuffle: true}).Splits(50, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := (KFold{K: 4, Shuffle: true}).Splits(50, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for f := range a {
		for i := range a[f].Test {
			if a[f].Test[i] != b[f].Test[i] {
				t.Fatal("KFold not deterministic for identical seeds")
			}
		}
	}
}

func TestShuffleSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	splits, err := (ShuffleSplit{Iterations: 8, TestFrac: 0.25}).Splits(40, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 8 {
		t.Fatalf("got %d iterations", len(splits))
	}
	for _, sp := range splits {
		checkPartition(t, 40, sp)
		if len(sp.Test) != 10 || len(sp.Train) != 30 {
			t.Fatalf("sizes %d/%d", len(sp.Train), len(sp.Test))
		}
	}
	if _, err := (ShuffleSplit{Iterations: 0, TestFrac: 0.2}).Splits(10, rng); err == nil {
		t.Fatal("want iterations error")
	}
	if _, err := (ShuffleSplit{Iterations: 1, TestFrac: 0}).Splits(10, rng); err == nil {
		t.Fatal("want fraction error")
	}
	if _, err := (ShuffleSplit{Iterations: 1, TestFrac: 0.01}).Splits(10, rng); err == nil {
		t.Fatal("want empty-test error")
	}
}

func TestTrainTest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	splits, err := (TrainTest{TestFrac: 0.2}).Splits(100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 1 || len(splits[0].Test) != 20 {
		t.Fatalf("TrainTest gave %d splits, test size %d", len(splits), len(splits[0].Test))
	}
}

func TestNestedKFold(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nk := NestedKFold{OuterK: 4, InnerK: 3}
	outer, err := nk.Splits(60, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(outer) != 4 {
		t.Fatalf("outer folds %d", len(outer))
	}
	inner, err := nk.InnerSplits(outer[0].Train, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(inner) != 3 {
		t.Fatalf("inner folds %d", len(inner))
	}
	// Inner indices must be a subset of the outer training set and must
	// never touch the outer test set.
	outerTrain := map[int]bool{}
	for _, i := range outer[0].Train {
		outerTrain[i] = true
	}
	for _, sp := range inner {
		for _, i := range append(append([]int(nil), sp.Train...), sp.Test...) {
			if !outerTrain[i] {
				t.Fatalf("inner index %d escapes outer training set", i)
			}
		}
	}
}

func TestSlidingSplitNoLeakage(t *testing.T) {
	s := SlidingSplit{K: 5, TrainSize: 30, TestSize: 10, Buffer: 3}
	splits, err := s.Splits(120, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 5 {
		t.Fatalf("got %d windows", len(splits))
	}
	for w, sp := range splits {
		if len(sp.Train) != 30 || len(sp.Test) != 10 {
			t.Fatalf("window %d sizes %d/%d", w, len(sp.Train), len(sp.Test))
		}
		// Indices strictly increasing (time order preserved).
		if !sort.IntsAreSorted(sp.Train) || !sort.IntsAreSorted(sp.Test) {
			t.Fatalf("window %d not time ordered", w)
		}
		// The no-leakage invariant: last train index + buffer < first test index.
		trainEnd := sp.Train[len(sp.Train)-1]
		testStart := sp.Test[0]
		if testStart-trainEnd <= s.Buffer {
			t.Fatalf("window %d leaks: train end %d, test start %d, buffer %d", w, trainEnd, testStart, s.Buffer)
		}
	}
	// Windows slide forward.
	for w := 1; w < len(splits); w++ {
		if splits[w].Train[0] <= splits[w-1].Train[0] {
			t.Fatalf("window %d does not slide forward", w)
		}
	}
	// The last window should end exactly at the final sample.
	last := splits[len(splits)-1]
	if last.Test[len(last.Test)-1] != 119 {
		t.Fatalf("last window ends at %d, want 119", last.Test[len(last.Test)-1])
	}
}

func TestSlidingSplitErrors(t *testing.T) {
	if _, err := (SlidingSplit{K: 0, TrainSize: 5, TestSize: 2}).Splits(20, nil); err == nil {
		t.Fatal("want K error")
	}
	if _, err := (SlidingSplit{K: 2, TrainSize: 50, TestSize: 10, Buffer: 0}).Splits(20, nil); err == nil {
		t.Fatal("want window-too-large error")
	}
}

func TestSlidingSplitSingleWindow(t *testing.T) {
	splits, err := (SlidingSplit{K: 1, TrainSize: 10, TestSize: 5, Buffer: 2}).Splits(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 1 || splits[0].Train[0] != 0 {
		t.Fatalf("single window should start at 0: %+v", splits[0])
	}
}

func TestSpecStrings(t *testing.T) {
	specs := map[string]Splitter{
		"kfold(k=10,shuffle=true)":                    KFold{K: 10, Shuffle: true},
		"shufflesplit(iter=5,test=0.2)":               ShuffleSplit{Iterations: 5, TestFrac: 0.2},
		"traintest(test=0.3)":                         TrainTest{TestFrac: 0.3},
		"nestedkfold(outer=5,inner=3)":                NestedKFold{OuterK: 5, InnerK: 3},
		"slidingsplit(k=4,train=50,test=10,buffer=2)": SlidingSplit{K: 4, TrainSize: 50, TestSize: 10, Buffer: 2},
	}
	for want, s := range specs {
		if got := s.Spec(); got != want {
			t.Errorf("Spec() = %q, want %q", got, want)
		}
	}
}

// Property: for any valid KFold configuration, test folds partition [0, n).
func TestKFoldPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(6)
		n := k + rng.Intn(200)
		splits, err := (KFold{K: k, Shuffle: true}).Splits(n, rng)
		if err != nil {
			return false
		}
		count := make([]int, n)
		for _, sp := range splits {
			for _, i := range sp.Test {
				count[i]++
			}
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: sliding split never leaks regardless of configuration.
func TestSlidingSplitLeakFreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := SlidingSplit{
			K:         1 + rng.Intn(8),
			TrainSize: 1 + rng.Intn(50),
			TestSize:  1 + rng.Intn(20),
			Buffer:    rng.Intn(10),
		}
		n := s.TrainSize + s.Buffer + s.TestSize + rng.Intn(100)
		splits, err := s.Splits(n, nil)
		if err != nil {
			return false
		}
		for _, sp := range splits {
			trainEnd := sp.Train[len(sp.Train)-1]
			if sp.Test[0]-trainEnd <= s.Buffer {
				return false
			}
			if sp.Test[len(sp.Test)-1] >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExpandingSplit(t *testing.T) {
	s := ExpandingSplit{K: 4, TestSize: 10, Buffer: 2}
	splits, err := s.Splits(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 4 {
		t.Fatalf("iterations %d", len(splits))
	}
	for i, sp := range splits {
		if len(sp.Test) != 10 {
			t.Fatalf("iter %d test size %d", i, len(sp.Test))
		}
		// Training always starts at 0 and grows.
		if sp.Train[0] != 0 {
			t.Fatalf("iter %d train does not start at 0", i)
		}
		if i > 0 && len(sp.Train) <= len(splits[i-1].Train) {
			t.Fatalf("iter %d training window did not grow", i)
		}
		// No-leakage invariant.
		trainEnd := sp.Train[len(sp.Train)-1]
		if sp.Test[0]-trainEnd <= s.Buffer {
			t.Fatalf("iter %d leaks: train end %d test start %d", i, trainEnd, sp.Test[0])
		}
	}
	// Last window ends at the final sample.
	last := splits[3]
	if last.Test[len(last.Test)-1] != 99 {
		t.Fatalf("last test ends at %d", last.Test[len(last.Test)-1])
	}
	if _, err := (ExpandingSplit{K: 0, TestSize: 5}).Splits(50, nil); err == nil {
		t.Fatal("want K error")
	}
	if _, err := (ExpandingSplit{K: 10, TestSize: 50}).Splits(50, nil); err == nil {
		t.Fatal("want too-short error")
	}
	if got := s.Spec(); got != "expandingsplit(k=4,test=10,buffer=2)" {
		t.Fatalf("spec %q", got)
	}
}

func TestStratifiedKFoldPreservesClassRatios(t *testing.T) {
	// Imbalanced labels: 90 negatives, 10 positives.
	labels := make([]float64, 100)
	for i := 90; i < 100; i++ {
		labels[i] = 1
	}
	s := StratifiedKFold{K: 5, Labels: labels}
	splits, err := s.Splits(100, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	testCount := make([]int, 100)
	for f, sp := range splits {
		checkPartition(t, 100, sp)
		pos := 0
		for _, i := range sp.Test {
			testCount[i]++
			if labels[i] == 1 {
				pos++
			}
		}
		// Every fold carries exactly its share of the minority class.
		if pos != 2 {
			t.Fatalf("fold %d has %d positives, want 2", f, pos)
		}
	}
	for i, c := range testCount {
		if c != 1 {
			t.Fatalf("sample %d in %d test folds", i, c)
		}
	}
	if got := s.Spec(); got != "stratifiedkfold(k=5)" {
		t.Fatalf("spec %q", got)
	}
}

func TestStratifiedKFoldErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := (StratifiedKFold{K: 1, Labels: []float64{0, 1}}).Splits(2, rng); err == nil {
		t.Fatal("want K error")
	}
	if _, err := (StratifiedKFold{K: 2, Labels: []float64{0}}).Splits(5, rng); err == nil {
		t.Fatal("want label-length error")
	}
	// A class with fewer samples than folds cannot stratify.
	labels := []float64{0, 0, 0, 0, 1}
	if _, err := (StratifiedKFold{K: 3, Labels: labels}).Splits(5, rng); err == nil {
		t.Fatal("want tiny-class error")
	}
}
