// Package scheduler orchestrates cooperative Transformer-Estimator-Graph
// searches across multiple clients (Figure 2): every client runs the same
// model validation and selection task against a shared DARR, reusing
// published results and claiming unfinished units so the fleet partitions
// the work instead of duplicating it.
package scheduler

import (
	"context"
	"fmt"
	"sync"
	"time"

	"coda/internal/core"
	"coda/internal/darr"
	"coda/internal/dataset"
)

// ClientReport summarizes one client's share of a fleet run.
type ClientReport struct {
	ClientID  string
	Computed  int // units this client evaluated itself
	CacheHits int // units satisfied from the DARR
	Skipped   int // units another client had claimed
	Failed    int // units whose pipelines errored
	Wall      time.Duration
	BestSpec  string
	BestScore float64
}

// FleetResult aggregates a cooperative run.
type FleetResult struct {
	Reports []ClientReport
	// TotalComputed sums per-client computations — with cooperation it
	// approaches the number of distinct units; without, it approaches
	// clients x units.
	TotalComputed int
	// UniqueUnits is the number of distinct evaluation units in the task.
	UniqueUnits int
	// Wall is the longest single-client wall time.
	Wall time.Duration
}

// RedundancyFactor is TotalComputed divided by UniqueUnits (1.0 = perfect
// cooperation; `clients` = fully redundant).
func (f *FleetResult) RedundancyFactor() float64 {
	if f.UniqueUnits == 0 {
		return 0
	}
	return float64(f.TotalComputed) / float64(f.UniqueUnits)
}

// FleetOptions configures RunFleet.
type FleetOptions struct {
	Clients int // number of cooperating clients (>= 1)
	// Search is the per-client search configuration. Its Store field is
	// overwritten per client; set Cooperate to control sharing.
	Search core.SearchOptions
	// Cooperate wires every client to the shared repo; false runs each
	// client in isolation (the baseline the paper's design argues against).
	Cooperate bool
	// Stagger delays each client's start, modelling clients arriving at
	// different times (later clients then find more results in the DARR).
	Stagger time.Duration
}

// RunFleet runs the same graph search from Clients concurrent clients.
// buildGraph must return a fresh graph per call (graphs hold component
// instances that cannot be shared across clients).
func RunFleet(ctx context.Context, buildGraph func() *core.Graph, ds *dataset.Dataset, repo *darr.Repo, opts FleetOptions) (*FleetResult, error) {
	if opts.Clients < 1 {
		return nil, fmt.Errorf("scheduler: need >= 1 client, got %d", opts.Clients)
	}
	if repo == nil && opts.Cooperate {
		return nil, fmt.Errorf("scheduler: cooperation requires a repo")
	}
	// Count distinct units once.
	probe := buildGraph()
	if err := probe.Finalize(); err != nil {
		return nil, fmt.Errorf("scheduler: graph: %w", err)
	}
	unique := probe.NumPipelines() // grid-free graphs: one unit per path
	if len(opts.Search.ParamGrid) > 0 {
		unique = 0 // counted from the first client's result below
	}

	reports := make([]ClientReport, opts.Clients)
	errs := make([]error, opts.Clients)
	unitCounts := make([]int, opts.Clients)
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			if opts.Stagger > 0 {
				select {
				case <-time.After(time.Duration(c) * opts.Stagger):
				case <-ctx.Done():
					errs[c] = ctx.Err()
					return
				}
			}
			clientID := fmt.Sprintf("client-%d", c)
			so := opts.Search
			if opts.Cooperate {
				so.Store = &darr.Client{Repo: repo, ClientID: clientID, Metric: so.Scorer.Name}
				so.SkipClaimed = true
			} else {
				so.Store = nil
				so.SkipClaimed = false
			}
			start := time.Now()
			res, err := core.Search(ctx, buildGraph(), ds, so)
			if err != nil {
				errs[c] = fmt.Errorf("scheduler: %s: %w", clientID, err)
				return
			}
			rep := ClientReport{
				ClientID:  clientID,
				Computed:  res.Computed,
				CacheHits: res.CacheHits,
				Skipped:   res.Skipped,
				Wall:      time.Since(start),
			}
			for _, u := range res.Units {
				if u.Err != "" {
					rep.Failed++
				}
			}
			if res.Best != nil {
				rep.BestSpec = res.Best.Spec
				rep.BestScore = res.Best.Mean
			}
			reports[c] = rep
			unitCounts[c] = len(res.Units)
		}()
	}
	wg.Wait()
	if unique == 0 {
		for _, n := range unitCounts {
			if n > 0 {
				unique = n
				break
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := &FleetResult{Reports: reports, UniqueUnits: unique}
	for _, r := range reports {
		out.TotalComputed += r.Computed
		if r.Wall > out.Wall {
			out.Wall = r.Wall
		}
	}
	return out, nil
}
