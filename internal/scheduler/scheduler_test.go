package scheduler

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"coda/internal/core"
	"coda/internal/crossval"
	"coda/internal/darr"
	"coda/internal/dataset"
	"coda/internal/metrics"
	"coda/internal/mlmodels"
	"coda/internal/preprocess"
)

func buildGraph() *core.Graph {
	g := core.NewGraph()
	g.AddFeatureScalers(preprocess.NewStandardScaler(), preprocess.NewMinMaxScaler(), preprocess.NewNoOp())
	g.AddRegressionModels(
		mlmodels.NewLinearRegression(),
		mlmodels.NewKNN(mlmodels.KNNRegression, 5),
		mlmodels.NewDecisionTree(mlmodels.TreeRegression),
	)
	return g
}

func regDS(t *testing.T) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	ds, _, err := dataset.MakeRegression(dataset.RegressionSpec{Samples: 120, Features: 4, Informative: 3, Noise: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func baseOpts(t *testing.T) core.SearchOptions {
	t.Helper()
	scorer, err := metrics.ScorerByName("rmse")
	if err != nil {
		t.Fatal(err)
	}
	return core.SearchOptions{
		Splitter:    crossval.KFold{K: 3, Shuffle: true},
		Scorer:      scorer,
		Seed:        5,
		Parallelism: 2,
	}
}

func TestCooperativeFleetAvoidsRedundantWork(t *testing.T) {
	ds := regDS(t)
	repo := darr.NewRepo(nil, time.Minute)
	res, err := RunFleet(context.Background(), buildGraph, ds, repo, FleetOptions{
		Clients:   4,
		Search:    baseOpts(t),
		Cooperate: true,
		Stagger:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueUnits != 9 {
		t.Fatalf("unique units %d, want 9", res.UniqueUnits)
	}
	// With cooperation, the fleet computes each unit roughly once.
	if res.TotalComputed > res.UniqueUnits {
		t.Fatalf("cooperative fleet computed %d units for %d unique", res.TotalComputed, res.UniqueUnits)
	}
	if rf := res.RedundancyFactor(); rf > 1.0 {
		t.Fatalf("redundancy factor %v > 1 with cooperation", rf)
	}
	// All work units are covered by the DARR afterwards.
	if repo.Len() != res.UniqueUnits {
		t.Fatalf("DARR has %d records for %d units", repo.Len(), res.UniqueUnits)
	}
}

func TestIndependentFleetDuplicatesWork(t *testing.T) {
	ds := regDS(t)
	res, err := RunFleet(context.Background(), buildGraph, ds, nil, FleetOptions{
		Clients:   3,
		Search:    baseOpts(t),
		Cooperate: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalComputed != 3*res.UniqueUnits {
		t.Fatalf("independent fleet computed %d, want %d", res.TotalComputed, 3*res.UniqueUnits)
	}
	if rf := res.RedundancyFactor(); rf != 3 {
		t.Fatalf("redundancy factor %v, want 3", rf)
	}
}

func TestFleetAgreesOnBest(t *testing.T) {
	ds := regDS(t)
	repo := darr.NewRepo(nil, time.Minute)
	res, err := RunFleet(context.Background(), buildGraph, ds, repo, FleetOptions{
		Clients:   3,
		Search:    baseOpts(t),
		Cooperate: true,
		Stagger:   30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Later clients read everything from the cache, and every client that
	// saw all results agrees on the winner.
	last := res.Reports[len(res.Reports)-1]
	if last.CacheHits == 0 {
		t.Fatal("staggered later client should hit the cache")
	}
	for _, r := range res.Reports {
		if r.Skipped > 0 {
			continue // partial view; may differ
		}
		if r.BestSpec != last.BestSpec {
			t.Fatalf("clients disagree on best: %q vs %q", r.BestSpec, last.BestSpec)
		}
	}
}

func TestFleetValidation(t *testing.T) {
	ds := regDS(t)
	if _, err := RunFleet(context.Background(), buildGraph, ds, nil, FleetOptions{Clients: 0}); err == nil {
		t.Fatal("want clients error")
	}
	if _, err := RunFleet(context.Background(), buildGraph, ds, nil, FleetOptions{Clients: 1, Cooperate: true}); err == nil {
		t.Fatal("want repo-required error")
	}
	bad := func() *core.Graph { return core.NewGraph() }
	if _, err := RunFleet(context.Background(), bad, ds, nil, FleetOptions{Clients: 1, Search: baseOpts(t)}); err == nil {
		t.Fatal("want graph error")
	}
}

func TestFleetCancellation(t *testing.T) {
	ds := regDS(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunFleet(ctx, buildGraph, ds, nil, FleetOptions{Clients: 2, Search: baseOpts(t)}); err == nil {
		t.Fatal("want cancellation error")
	}
}
