// Package benchcmp compares two benchmark-result JSON files (the arrays
// CI's bench2json.sh emits from `go test -bench` output) and reports
// per-benchmark regressions. It backs the `coda-bench compare` CI gate.
//
// Metric semantics: ns_op is wall time and only comparable between runs on
// the same machine (CI uses it for same-run A/B self-tests); allocs_op and
// B_op are deterministic for a fixed -benchtime=Nx and safe to diff against
// a committed baseline across machines.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Entry is one benchmark line from the JSON artifact. Metric keys mirror
// `go test -bench` units with non-alphanumerics replaced by underscores
// (ns/op → ns_op, B/op → B_op, allocs/op → allocs_op).
type Entry struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsOp       float64 `json:"ns_op"`
	BOp        float64 `json:"B_op"`
	AllocsOp   float64 `json:"allocs_op"`
}

// metric returns the named metric value and whether the entry carries it
// (a zero allocs_op is still carried; only unknown names are not).
func (e Entry) metric(name string) (float64, bool) {
	switch name {
	case "ns_op":
		return e.NsOp, true
	case "B_op":
		return e.BOp, true
	case "allocs_op":
		return e.AllocsOp, true
	}
	return 0, false
}

// allocAbsSlack is the absolute allocs/op tolerance: with -benchtime=10x
// one-off warmup allocations amortise to a handful per op, so a ±2
// difference is noise, not a leak — but scaling regressions still trip the
// relative threshold.
const allocAbsSlack = 2

// Result is the comparison verdict for one (benchmark, metric) pair.
type Result struct {
	Name      string
	Metric    string
	Baseline  float64
	Current   float64
	Ratio     float64 // current/baseline; +Inf when baseline is 0 and current > 0
	Regressed bool
}

// Report is the full comparison outcome.
type Report struct {
	Results []Result
	// MissingInCurrent lists baseline benchmarks absent from the current
	// run (renamed or deleted — reported, not fatal, so baselines survive
	// benchmark reorganisation).
	MissingInCurrent []string
	// NewInCurrent lists benchmarks with no baseline entry yet.
	NewInCurrent []string
}

// Regressions returns only the failing results.
func (r *Report) Regressions() []Result {
	var out []Result
	for _, res := range r.Results {
		if res.Regressed {
			out = append(out, res)
		}
	}
	return out
}

// cpuSuffix returns the trailing "-N" GOMAXPROCS token of a benchmark name
// ("" if the name does not end in -digits).
func cpuSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i <= 0 {
		return ""
	}
	digits := name[i+1:]
	if digits == "" || strings.Trim(digits, "0123456789") != "" {
		return ""
	}
	return name[i:]
}

// normalize strips the GOMAXPROCS suffix go test appends on multi-core
// machines ("BenchmarkFoo-4" → "BenchmarkFoo") so baselines are core-count
// agnostic. The suffix is only stripped when every name in the run carries
// the same one: go test applies it uniformly, whereas trailing digits that
// are part of a benchmark's own name (shard counts, sizes) vary between
// entries and must be kept.
func normalize(entries []Entry) {
	if len(entries) < 2 {
		return
	}
	suffix := cpuSuffix(entries[0].Name)
	if suffix == "" {
		return
	}
	for _, e := range entries[1:] {
		if cpuSuffix(e.Name) != suffix {
			return
		}
	}
	for i := range entries {
		entries[i].Name = strings.TrimSuffix(entries[i].Name, suffix)
	}
}

// Load reads a benchmark JSON artifact into a name-keyed map. Duplicate
// names (the same benchmark from multiple packages) keep the first entry.
func Load(path string) (map[string]Entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchcmp: %w", err)
	}
	var entries []Entry
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, fmt.Errorf("benchcmp: parsing %s: %w", path, err)
	}
	normalize(entries)
	out := make(map[string]Entry, len(entries))
	for _, e := range entries {
		if _, dup := out[e.Name]; !dup {
			out[e.Name] = e
		}
	}
	return out, nil
}

// Compare diffs current against baseline on the given metrics, flagging any
// benchmark whose metric grew by more than maxRegress (fractional, e.g.
// 0.25 = +25%). allocs_op additionally gets allocAbsSlack of absolute
// tolerance (see above).
func Compare(baseline, current map[string]Entry, maxRegress float64, metrics []string) (*Report, error) {
	if maxRegress <= 0 {
		return nil, fmt.Errorf("benchcmp: max regression fraction must be positive, got %v", maxRegress)
	}
	for _, m := range metrics {
		if _, ok := (Entry{}).metric(m); !ok {
			return nil, fmt.Errorf("benchcmp: unknown metric %q (want ns_op, B_op or allocs_op)", m)
		}
	}
	rep := &Report{}
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			rep.MissingInCurrent = append(rep.MissingInCurrent, name)
			continue
		}
		for _, m := range metrics {
			bv, _ := base.metric(m)
			cv, _ := cur.metric(m)
			res := Result{Name: name, Metric: m, Baseline: bv, Current: cv}
			delta := cv - bv
			switch {
			case bv > 0:
				res.Ratio = cv / bv
				res.Regressed = delta > bv*maxRegress
			case cv > 0:
				res.Ratio = math.Inf(1)
				res.Regressed = true
			default:
				res.Ratio = 1
			}
			if m == "allocs_op" && delta <= allocAbsSlack {
				res.Regressed = false
			}
			rep.Results = append(rep.Results, res)
		}
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			rep.NewInCurrent = append(rep.NewInCurrent, name)
		}
	}
	sort.Strings(rep.NewInCurrent)
	return rep, nil
}

// Format renders the report as an aligned table, regressions marked with
// FAIL, suitable for CI logs.
func (r *Report) Format() string {
	var b strings.Builder
	w := 0
	for _, res := range r.Results {
		if len(res.Name) > w {
			w = len(res.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %-10s %14s %14s %8s  %s\n", w, "benchmark", "metric", "baseline", "current", "ratio", "verdict")
	for _, res := range r.Results {
		verdict := "ok"
		if res.Regressed {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "%-*s  %-10s %14.6g %14.6g %8.3f  %s\n",
			w, res.Name, res.Metric, res.Baseline, res.Current, res.Ratio, verdict)
	}
	for _, name := range r.MissingInCurrent {
		fmt.Fprintf(&b, "%-*s  missing from current run (baseline entry ignored)\n", w, name)
	}
	for _, name := range r.NewInCurrent {
		fmt.Fprintf(&b, "%-*s  new benchmark (no baseline yet)\n", w, name)
	}
	return b.String()
}
