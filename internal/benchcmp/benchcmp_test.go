package benchcmp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, entries []Entry) string {
	t.Helper()
	raw, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadNormalizesGomaxprocsSuffix(t *testing.T) {
	// A multi-core run: every name carries the same uniform -4 suffix, so
	// it is the GOMAXPROCS marker and gets stripped — including from
	// subbenchmarks whose own names end in digits (shard counts survive).
	path := writeJSON(t, []Entry{
		{Name: "BenchmarkKernelMulNaive256-4", NsOp: 100},
		{Name: "BenchmarkStoreConcurrent/mem-shards-8-4", NsOp: 50},
		{Name: "BenchmarkStoreConcurrent/mem-shards-1-4", NsOp: 60},
	})
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"BenchmarkKernelMulNaive256",
		"BenchmarkStoreConcurrent/mem-shards-8",
		"BenchmarkStoreConcurrent/mem-shards-1",
	} {
		if _, ok := got[want]; !ok {
			t.Fatalf("missing %q after normalize: %v", want, got)
		}
	}
}

func TestLoadKeepsNonUniformDigitSuffixes(t *testing.T) {
	// A single-core run: no GOMAXPROCS suffix, and the shard-count digits
	// differ between entries — nothing may be stripped.
	path := writeJSON(t, []Entry{
		{Name: "BenchmarkStoreConcurrent/mem-shards-1", NsOp: 50},
		{Name: "BenchmarkStoreConcurrent/mem-shards-8", NsOp: 60},
		{Name: "BenchmarkKernelMulNaive256", NsOp: 100},
	})
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"BenchmarkStoreConcurrent/mem-shards-1",
		"BenchmarkStoreConcurrent/mem-shards-8",
		"BenchmarkKernelMulNaive256",
	} {
		if _, ok := got[want]; !ok {
			t.Fatalf("missing %q (wrongly stripped): %v", want, got)
		}
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("want error on malformed JSON")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("want error on missing file")
	}
}

// TestCompareCatchesInjectedSlowdown is the gate's reason to exist: a 2×
// ns/op slowdown must fail, matching the CI self-test that doctors the
// current run's JSON.
func TestCompareCatchesInjectedSlowdown(t *testing.T) {
	base := map[string]Entry{"BenchmarkKernelMulParallel256": {Name: "BenchmarkKernelMulParallel256", NsOp: 1000, AllocsOp: 1}}
	cur := map[string]Entry{"BenchmarkKernelMulParallel256": {Name: "BenchmarkKernelMulParallel256", NsOp: 2000, AllocsOp: 1}}
	rep, err := Compare(base, cur, 0.25, []string{"ns_op", "allocs_op"})
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Metric != "ns_op" {
		t.Fatalf("want exactly the ns_op regression, got %+v", regs)
	}
	if regs[0].Ratio != 2 {
		t.Fatalf("ratio = %v, want 2", regs[0].Ratio)
	}
	if !strings.Contains(rep.Format(), "FAIL") {
		t.Fatalf("table missing FAIL marker:\n%s", rep.Format())
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base := map[string]Entry{"BenchmarkX": {Name: "BenchmarkX", NsOp: 1000, AllocsOp: 10}}
	cur := map[string]Entry{"BenchmarkX": {Name: "BenchmarkX", NsOp: 1200, AllocsOp: 12}}
	rep, err := Compare(base, cur, 0.25, []string{"ns_op", "allocs_op"})
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("within-threshold drift flagged: %+v\n%s", regs, rep.Format())
	}
}

func TestCompareAllocAbsoluteSlack(t *testing.T) {
	// +2 allocs on a tiny baseline is warmup noise, not a regression...
	base := map[string]Entry{"BenchmarkX": {Name: "BenchmarkX", AllocsOp: 1}}
	cur := map[string]Entry{"BenchmarkX": {Name: "BenchmarkX", AllocsOp: 3}}
	rep, err := Compare(base, cur, 0.25, []string{"allocs_op"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions()) != 0 {
		t.Fatalf("alloc slack not applied: %+v", rep.Regressions())
	}
	// ...but a real per-op leak blows past the slack and fails, including
	// from a zero baseline.
	cur["BenchmarkX"] = Entry{Name: "BenchmarkX", AllocsOp: 40}
	rep, err = Compare(base, cur, 0.25, []string{"allocs_op"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions()) != 1 {
		t.Fatalf("alloc leak not flagged: %s", rep.Format())
	}
	base["BenchmarkX"] = Entry{Name: "BenchmarkX", AllocsOp: 0}
	rep, err = Compare(base, cur, 0.25, []string{"allocs_op"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions()) != 1 {
		t.Fatalf("zero-baseline leak not flagged: %s", rep.Format())
	}
}

func TestCompareMissingAndNewAreNotFatal(t *testing.T) {
	base := map[string]Entry{
		"BenchmarkGone": {Name: "BenchmarkGone", NsOp: 10},
		"BenchmarkKept": {Name: "BenchmarkKept", NsOp: 10},
	}
	cur := map[string]Entry{
		"BenchmarkKept": {Name: "BenchmarkKept", NsOp: 10},
		"BenchmarkNew":  {Name: "BenchmarkNew", NsOp: 10},
	}
	rep, err := Compare(base, cur, 0.25, []string{"ns_op"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions()) != 0 {
		t.Fatalf("membership drift treated as regression: %+v", rep.Regressions())
	}
	if len(rep.MissingInCurrent) != 1 || rep.MissingInCurrent[0] != "BenchmarkGone" {
		t.Fatalf("missing = %v", rep.MissingInCurrent)
	}
	if len(rep.NewInCurrent) != 1 || rep.NewInCurrent[0] != "BenchmarkNew" {
		t.Fatalf("new = %v", rep.NewInCurrent)
	}
}

func TestCompareRejectsBadArgs(t *testing.T) {
	if _, err := Compare(nil, nil, 0, []string{"ns_op"}); err == nil {
		t.Fatal("want error on non-positive threshold")
	}
	if _, err := Compare(nil, nil, 0.25, []string{"watts"}); err == nil {
		t.Fatal("want error on unknown metric")
	}
}
