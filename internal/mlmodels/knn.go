package mlmodels

import (
	"fmt"
	"sort"

	"coda/internal/core"
	"coda/internal/dataset"
)

// KNNTask selects regression (neighbour mean) or classification (majority
// vote) for KNN.
type KNNTask int

// KNN tasks.
const (
	KNNRegression KNNTask = iota + 1
	KNNClassification
)

// KNN is a k-nearest-neighbours model with Euclidean distance.
type KNN struct {
	Task KNNTask
	K    int // neighbours (default 5)

	trainX [][]float64
	trainY []float64
}

// NewKNN returns an unfitted KNN with k neighbours.
func NewKNN(task KNNTask, k int) *KNN { return &KNN{Task: task, K: k} }

// Name implements core.Component.
func (m *KNN) Name() string { return "knn" }

// SetParam implements core.Component; "k" is supported.
func (m *KNN) SetParam(key string, v float64) error {
	if key == "k" {
		m.K = int(v)
		return nil
	}
	return errUnknownParam(m.Name(), key)
}

// Params implements core.Component.
func (m *KNN) Params() map[string]float64 { return map[string]float64{"k": float64(m.K)} }

// Clone implements core.Estimator.
func (m *KNN) Clone() core.Estimator { return &KNN{Task: m.Task, K: m.K} }

// Fit stores the training data.
func (m *KNN) Fit(ds *dataset.Dataset) error {
	if ds.Y == nil {
		return fmt.Errorf("mlmodels: %s requires targets", m.Name())
	}
	if ds.NumSamples() == 0 {
		return fmt.Errorf("mlmodels: %s on empty dataset", m.Name())
	}
	if m.K < 1 {
		m.K = 5
	}
	m.trainX = make([][]float64, ds.NumSamples())
	for i := range m.trainX {
		m.trainX[i] = ds.X.RowCopy(i)
	}
	m.trainY = append([]float64(nil), ds.Y...)
	return nil
}

// Predict aggregates the K nearest training samples per row.
func (m *KNN) Predict(ds *dataset.Dataset) ([]float64, error) {
	if m.trainX == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, m.Name())
	}
	if ds.NumFeatures() != len(m.trainX[0]) {
		return nil, fmt.Errorf("mlmodels: %s fitted with %d features, got %d", m.Name(), len(m.trainX[0]), ds.NumFeatures())
	}
	k := m.K
	if k > len(m.trainX) {
		k = len(m.trainX)
	}
	out := make([]float64, ds.NumSamples())
	type nb struct {
		dist float64
		y    float64
	}
	nbs := make([]nb, len(m.trainX))
	for i := 0; i < ds.NumSamples(); i++ {
		row := ds.X.Row(i)
		for t, tr := range m.trainX {
			d := 0.0
			for j, v := range row {
				diff := v - tr[j]
				d += diff * diff
			}
			nbs[t] = nb{d, m.trainY[t]}
		}
		sort.Slice(nbs, func(a, b int) bool { return nbs[a].dist < nbs[b].dist })
		switch m.Task {
		case KNNClassification:
			votes := map[float64]int{}
			for _, n := range nbs[:k] {
				votes[n.y]++
			}
			best, bestN := 0.0, -1
			for v, c := range votes {
				if c > bestN || (c == bestN && v < best) {
					best, bestN = v, c
				}
			}
			out[i] = best
		default:
			s := 0.0
			for _, n := range nbs[:k] {
				s += n.y
			}
			out[i] = s / float64(k)
		}
	}
	return out, nil
}
