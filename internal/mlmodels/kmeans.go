package mlmodels

import (
	"fmt"
	"math"
	"math/rand"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/matrix"
)

// KMeans clusters rows into K groups by Lloyd's algorithm with k-means++
// initialization. As an Estimator, Predict returns the cluster index per
// row; the Cohort Analysis solution template builds on it.
type KMeans struct {
	K        int   // clusters (>= 1)
	MaxIters int   // Lloyd iterations (default 100)
	NInit    int   // independent restarts, best inertia wins (default 5)
	Seed     int64 // rng seed

	centroids *matrix.Matrix
	inertia   float64
}

// NewKMeans returns an unfitted clusterer with k clusters.
func NewKMeans(k int) *KMeans { return &KMeans{K: k, MaxIters: 100, NInit: 5} }

// Name implements core.Component.
func (m *KMeans) Name() string { return "kmeans" }

// SetParam implements core.Component; "k", "max_iters" and "seed" are
// supported.
func (m *KMeans) SetParam(key string, v float64) error {
	switch key {
	case "k":
		m.K = int(v)
	case "max_iters":
		m.MaxIters = int(v)
	case "n_init":
		m.NInit = int(v)
	case "seed":
		m.Seed = int64(v)
	default:
		return errUnknownParam(m.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (m *KMeans) Params() map[string]float64 {
	return map[string]float64{
		"k": float64(m.K), "max_iters": float64(m.MaxIters),
		"n_init": float64(m.NInit), "seed": float64(m.Seed),
	}
}

// Clone implements core.Estimator.
func (m *KMeans) Clone() core.Estimator {
	return &KMeans{K: m.K, MaxIters: m.MaxIters, NInit: m.NInit, Seed: m.Seed}
}

// Fit runs NInit independent k-means++/Lloyd restarts and keeps the
// clustering with the lowest inertia (within-cluster sum of squares).
// Y is ignored.
func (m *KMeans) Fit(ds *dataset.Dataset) error {
	n := ds.NumSamples()
	if m.K < 1 || m.K > n {
		return fmt.Errorf("mlmodels: kmeans K=%d invalid for %d samples", m.K, n)
	}
	if m.MaxIters < 1 {
		m.MaxIters = 100
	}
	if m.NInit < 1 {
		m.NInit = 5
	}
	seeds := rand.New(rand.NewSource(m.Seed))
	best := math.Inf(1)
	var bestCentroids *matrix.Matrix
	for restart := 0; restart < m.NInit; restart++ {
		centroids := m.runOnce(ds, rand.New(rand.NewSource(seeds.Int63())))
		inertia := 0.0
		for i := 0; i < n; i++ {
			d := math.Inf(1)
			for c := 0; c < centroids.Rows(); c++ {
				if v := sqDist(ds.X.Row(i), centroids.Row(c)); v < d {
					d = v
				}
			}
			inertia += d
		}
		if inertia < best {
			best = inertia
			bestCentroids = centroids
		}
	}
	m.centroids = bestCentroids
	m.inertia = best
	return nil
}

// Inertia returns the within-cluster sum of squares of the fitted model.
func (m *KMeans) Inertia() float64 { return m.inertia }

// runOnce performs one k-means++ seeding plus Lloyd refinement.
func (m *KMeans) runOnce(ds *dataset.Dataset, rng *rand.Rand) *matrix.Matrix {
	n, p := ds.NumSamples(), ds.NumFeatures()

	// k-means++ seeding.
	centroids := matrix.New(m.K, p)
	first := rng.Intn(n)
	copy(centroids.Row(0), ds.X.Row(first))
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sqDist(ds.X.Row(i), centroids.Row(0))
	}
	for c := 1; c < m.K; c++ {
		total := 0.0
		for _, d := range minDist {
			total += d
		}
		pick := 0
		if total > 0 {
			u := rng.Float64() * total
			acc := 0.0
			for i, d := range minDist {
				acc += d
				if acc >= u {
					pick = i
					break
				}
			}
		} else {
			pick = rng.Intn(n)
		}
		copy(centroids.Row(c), ds.X.Row(pick))
		for i := range minDist {
			if d := sqDist(ds.X.Row(i), centroids.Row(c)); d < minDist[i] {
				minDist[i] = d
			}
		}
	}

	assign := make([]int, n)
	for iter := 0; iter < m.MaxIters; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < m.K; c++ {
				if d := sqDist(ds.X.Row(i), centroids.Row(c)); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, m.K)
		next := matrix.New(m.K, p)
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			dst := next.Row(c)
			for j, v := range ds.X.Row(i) {
				dst[j] += v
			}
		}
		for c := 0; c < m.K; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(next.Row(c), ds.X.Row(rng.Intn(n)))
				continue
			}
			dst := next.Row(c)
			for j := range dst {
				dst[j] /= float64(counts[c])
			}
		}
		centroids = next
	}
	return centroids
}

// Predict returns the nearest-centroid index per row.
func (m *KMeans) Predict(ds *dataset.Dataset) ([]float64, error) {
	if m.centroids == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, m.Name())
	}
	if ds.NumFeatures() != m.centroids.Cols() {
		return nil, fmt.Errorf("mlmodels: kmeans fitted with %d features, got %d", m.centroids.Cols(), ds.NumFeatures())
	}
	out := make([]float64, ds.NumSamples())
	for i := range out {
		best, bestD := 0, math.Inf(1)
		for c := 0; c < m.centroids.Rows(); c++ {
			if d := sqDist(ds.X.Row(i), m.centroids.Row(c)); d < bestD {
				best, bestD = c, d
			}
		}
		out[i] = float64(best)
	}
	return out, nil
}

// Centroids returns a copy of the fitted cluster centres.
func (m *KMeans) Centroids() (*matrix.Matrix, error) {
	if m.centroids == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, m.Name())
	}
	return m.centroids.Clone(), nil
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
