package mlmodels

import (
	"fmt"
	"math"
	"math/rand"

	"coda/internal/core"
	"coda/internal/dataset"
)

// RandomForest is a bagged ensemble of feature-subsampled CART trees.
// Regression forests average tree outputs; classification forests take a
// majority vote.
type RandomForest struct {
	Task     TreeTask
	NTrees   int   // number of trees (default 50)
	MaxDepth int   // per-tree depth cap (0 = unbounded)
	MinLeaf  int   // per-tree minimum leaf size (default 1)
	Seed     int64 // rng seed for bootstrap and feature subsampling

	trees []*DecisionTree
}

// NewRandomForest returns an unfitted forest with nTrees members.
func NewRandomForest(task TreeTask, nTrees int) *RandomForest {
	return &RandomForest{Task: task, NTrees: nTrees, MinLeaf: 1}
}

// Name implements core.Component.
func (f *RandomForest) Name() string { return "randomforest" }

// SetParam implements core.Component; "n_trees", "max_depth", "min_leaf"
// and "seed" are supported.
func (f *RandomForest) SetParam(key string, v float64) error {
	switch key {
	case "n_trees":
		f.NTrees = int(v)
	case "max_depth":
		f.MaxDepth = int(v)
	case "min_leaf":
		f.MinLeaf = int(v)
	case "seed":
		f.Seed = int64(v)
	default:
		return errUnknownParam(f.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (f *RandomForest) Params() map[string]float64 {
	return map[string]float64{
		"n_trees":   float64(f.NTrees),
		"max_depth": float64(f.MaxDepth),
		"min_leaf":  float64(f.MinLeaf),
		"seed":      float64(f.Seed),
	}
}

// Clone implements core.Estimator.
func (f *RandomForest) Clone() core.Estimator {
	return &RandomForest{Task: f.Task, NTrees: f.NTrees, MaxDepth: f.MaxDepth, MinLeaf: f.MinLeaf, Seed: f.Seed}
}

// Fit grows NTrees trees on bootstrap resamples with sqrt(p) feature
// subsampling.
func (f *RandomForest) Fit(ds *dataset.Dataset) error {
	if ds.Y == nil {
		return fmt.Errorf("mlmodels: %s requires targets", f.Name())
	}
	if f.NTrees < 1 {
		f.NTrees = 50
	}
	n := ds.NumSamples()
	if n == 0 {
		return fmt.Errorf("mlmodels: %s on empty dataset", f.Name())
	}
	rng := rand.New(rand.NewSource(f.Seed))
	maxFeatures := int(math.Sqrt(float64(ds.NumFeatures())))
	if maxFeatures < 1 {
		maxFeatures = 1
	}
	f.trees = make([]*DecisionTree, f.NTrees)
	idx := make([]int, n)
	for t := 0; t < f.NTrees; t++ {
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		boot := ds.Subset(idx)
		tree := &DecisionTree{
			Task:        f.Task,
			MaxDepth:    f.MaxDepth,
			MinLeaf:     f.MinLeaf,
			MaxFeatures: maxFeatures,
			rng:         rand.New(rand.NewSource(rng.Int63())),
		}
		if err := tree.Fit(boot); err != nil {
			return fmt.Errorf("mlmodels: %s tree %d: %w", f.Name(), t, err)
		}
		f.trees[t] = tree
	}
	return nil
}

// Predict aggregates the member trees.
func (f *RandomForest) Predict(ds *dataset.Dataset) ([]float64, error) {
	if f.trees == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, f.Name())
	}
	n := ds.NumSamples()
	switch f.Task {
	case TreeClassification:
		votes := make([]map[float64]int, n)
		for i := range votes {
			votes[i] = map[float64]int{}
		}
		for _, tree := range f.trees {
			preds, err := tree.Predict(ds)
			if err != nil {
				return nil, fmt.Errorf("mlmodels: %s member predict: %w", f.Name(), err)
			}
			for i, p := range preds {
				votes[i][p]++
			}
		}
		out := make([]float64, n)
		for i, vs := range votes {
			best, bestN := 0.0, -1
			for v, c := range vs {
				if c > bestN || (c == bestN && v < best) {
					best, bestN = v, c
				}
			}
			out[i] = best
		}
		return out, nil
	default:
		out := make([]float64, n)
		for _, tree := range f.trees {
			preds, err := tree.Predict(ds)
			if err != nil {
				return nil, fmt.Errorf("mlmodels: %s member predict: %w", f.Name(), err)
			}
			for i, p := range preds {
				out[i] += p
			}
		}
		for i := range out {
			out[i] /= float64(len(f.trees))
		}
		return out, nil
	}
}
