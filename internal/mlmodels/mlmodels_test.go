package mlmodels

import (
	"math"
	"math/rand"
	"testing"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/matrix"
	"coda/internal/metrics"
	"coda/internal/sim"
	"coda/internal/tswindow"
)

var (
	_ core.Estimator = (*LinearRegression)(nil)
	_ core.Estimator = (*DecisionTree)(nil)
	_ core.Estimator = (*RandomForest)(nil)
	_ core.Estimator = (*KNN)(nil)
	_ core.Estimator = (*KMeans)(nil)
	_ core.Estimator = (*LogisticRegression)(nil)
	_ core.Estimator = (*ZeroModel)(nil)
	_ core.Estimator = (*ARModel)(nil)
	_ core.Estimator = (*GradientBoosting)(nil)
)

func regData(t *testing.T, seed int64, n int) (*dataset.Dataset, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds, coef, err := dataset.MakeRegression(dataset.RegressionSpec{
		Samples: n, Features: 4, Informative: 3, Noise: 0.5,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return ds, coef
}

func clfData(t *testing.T, seed int64, n, classes int) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds, err := dataset.MakeClassification(dataset.ClassificationSpec{
		Samples: n, Features: 4, Classes: classes, ClusterSep: 4,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestLinearRegressionRecoversCoefficients(t *testing.T) {
	ds, coef := regData(t, 1, 400)
	lr := NewLinearRegression()
	if err := lr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	got, intercept, err := lr.Coefficients()
	if err != nil {
		t.Fatal(err)
	}
	for j := range coef {
		if math.Abs(got[j]-coef[j]) > 0.2 {
			t.Fatalf("coef %d: %v vs truth %v", j, got[j], coef[j])
		}
	}
	if math.Abs(intercept) > 0.2 {
		t.Fatalf("intercept %v, want ~0", intercept)
	}
	preds, err := lr.Predict(ds)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := metrics.R2(ds.Y, preds)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.99 {
		t.Fatalf("train R2 = %v", r2)
	}
}

func TestRidgeShrinksCoefficients(t *testing.T) {
	ds, _ := regData(t, 2, 100)
	ols := NewLinearRegression()
	ridge := NewRidge(1000)
	if err := ols.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if err := ridge.Fit(ds); err != nil {
		t.Fatal(err)
	}
	co, _, _ := ols.Coefficients()
	cr, _, _ := ridge.Coefficients()
	var no, nr float64
	for j := range co {
		no += co[j] * co[j]
		nr += cr[j] * cr[j]
	}
	if nr >= no {
		t.Fatalf("ridge norm %v not smaller than OLS norm %v", nr, no)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	x := matrix.New(2, 4)
	ds, _ := dataset.New(x, []float64{1, 2})
	if err := NewLinearRegression().Fit(ds); err == nil {
		t.Fatal("want too-few-samples error")
	}
	ds2, _ := dataset.New(x, nil)
	if err := NewLinearRegression().Fit(ds2); err == nil {
		t.Fatal("want missing-target error")
	}
	lr := NewLinearRegression()
	if _, err := lr.Predict(ds); err == nil {
		t.Fatal("want not-fitted error")
	}
}

func TestDecisionTreeRegressionFitsSteps(t *testing.T) {
	// Step function: x<0 -> 1, x>=0 -> 5. A depth-1 tree nails it.
	rows := make([][]float64, 40)
	y := make([]float64, 40)
	for i := range rows {
		v := float64(i-20) / 10
		rows[i] = []float64{v}
		if v < 0 {
			y[i] = 1
		} else {
			y[i] = 5
		}
	}
	x, _ := matrix.NewFromRows(rows)
	ds, _ := dataset.New(x, y)
	tree := NewDecisionTree(TreeRegression)
	tree.MaxDepth = 2
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	preds, err := tree.Predict(ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range preds {
		if math.Abs(preds[i]-y[i]) > 1e-9 {
			t.Fatalf("tree missed step at %d: %v vs %v", i, preds[i], y[i])
		}
	}
	if tree.Depth() < 1 {
		t.Fatal("tree should have split at least once")
	}
}

func TestDecisionTreeMaxDepthLimits(t *testing.T) {
	ds, _ := regData(t, 3, 200)
	tree := NewDecisionTree(TreeRegression)
	tree.MaxDepth = 3
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 3 {
		t.Fatalf("depth %d exceeds cap 3", d)
	}
}

func TestDecisionTreeClassification(t *testing.T) {
	ds := clfData(t, 4, 150, 3)
	tree := NewDecisionTree(TreeClassification)
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	preds, err := tree.Predict(ds)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := metrics.Accuracy(ds.Y, preds)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("train accuracy %v too low", acc)
	}
}

func TestRandomForestBeatsSingleTreeOutOfSample(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	train, _, err := dataset.MakeRegression(dataset.RegressionSpec{Samples: 300, Features: 6, Informative: 4, Noise: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr, te, err := train.TrainTestSplit(0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	tree := NewDecisionTree(TreeRegression)
	if err := tree.Fit(tr); err != nil {
		t.Fatal(err)
	}
	forest := NewRandomForest(TreeRegression, 40)
	forest.Seed = 1
	if err := forest.Fit(tr); err != nil {
		t.Fatal(err)
	}
	tp, err := tree.Predict(te)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := forest.Predict(te)
	if err != nil {
		t.Fatal(err)
	}
	treeRMSE, _ := metrics.RMSE(te.Y, tp)
	forestRMSE, _ := metrics.RMSE(te.Y, fp)
	if forestRMSE >= treeRMSE {
		t.Fatalf("forest RMSE %v not better than single tree %v", forestRMSE, treeRMSE)
	}
}

func TestRandomForestClassification(t *testing.T) {
	ds := clfData(t, 6, 200, 2)
	rng := rand.New(rand.NewSource(6))
	tr, te, err := ds.TrainTestSplit(0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := NewRandomForest(TreeClassification, 30)
	if err := f.Fit(tr); err != nil {
		t.Fatal(err)
	}
	preds, err := f.Predict(te)
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := metrics.Accuracy(te.Y, preds)
	if acc < 0.85 {
		t.Fatalf("forest accuracy %v", acc)
	}
}

func TestRandomForestDeterministicForSeed(t *testing.T) {
	ds, _ := regData(t, 7, 100)
	p1 := fitPredict(t, func() core.Estimator { f := NewRandomForest(TreeRegression, 10); f.Seed = 42; return f }, ds)
	p2 := fitPredict(t, func() core.Estimator { f := NewRandomForest(TreeRegression, 10); f.Seed = 42; return f }, ds)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed must reproduce identical forests")
		}
	}
}

func fitPredict(t *testing.T, mk func() core.Estimator, ds *dataset.Dataset) []float64 {
	t.Helper()
	m := mk()
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	p, err := m.Predict(ds)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestKNNRegressionAndClassification(t *testing.T) {
	ds := clfData(t, 8, 200, 2)
	rng := rand.New(rand.NewSource(8))
	tr, te, err := ds.TrainTestSplit(0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	knn := NewKNN(KNNClassification, 5)
	if err := knn.Fit(tr); err != nil {
		t.Fatal(err)
	}
	preds, err := knn.Predict(te)
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := metrics.Accuracy(te.Y, preds)
	if acc < 0.85 {
		t.Fatalf("knn accuracy %v", acc)
	}

	// Regression: k=1 on train data reproduces targets exactly.
	reg, _ := regData(t, 9, 50)
	k1 := NewKNN(KNNRegression, 1)
	if err := k1.Fit(reg); err != nil {
		t.Fatal(err)
	}
	rp, err := k1.Predict(reg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rp {
		if math.Abs(rp[i]-reg.Y[i]) > 1e-9 {
			t.Fatalf("1-NN self prediction differs at %d", i)
		}
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	ds := clfData(t, 10, 150, 3)
	km := NewKMeans(3)
	km.Seed = 3
	if err := km.Fit(ds); err != nil {
		t.Fatal(err)
	}
	assign, err := km.Predict(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster purity: map each cluster to its majority true class and
	// count agreement.
	majority := map[float64]map[float64]int{}
	for i, c := range assign {
		if majority[c] == nil {
			majority[c] = map[float64]int{}
		}
		majority[c][ds.Y[i]]++
	}
	agree := 0
	for _, classCounts := range majority {
		best := 0
		for _, n := range classCounts {
			if n > best {
				best = n
			}
		}
		agree += best
	}
	if purity := float64(agree) / float64(len(assign)); purity < 0.9 {
		t.Fatalf("kmeans purity %v", purity)
	}
	cents, err := km.Centroids()
	if err != nil {
		t.Fatal(err)
	}
	if cents.Rows() != 3 {
		t.Fatalf("centroids %d", cents.Rows())
	}
}

func TestKMeansErrors(t *testing.T) {
	x := matrix.New(3, 2)
	ds, _ := dataset.New(x, nil)
	if err := NewKMeans(5).Fit(ds); err == nil {
		t.Fatal("want K>n error")
	}
	if _, err := NewKMeans(2).Predict(ds); err == nil {
		t.Fatal("want not-fitted error")
	}
}

func TestLogisticRegressionSeparableData(t *testing.T) {
	ds := clfData(t, 11, 200, 2)
	lr := NewLogisticRegression()
	if err := lr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	preds, err := lr.Predict(ds)
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := metrics.Accuracy(ds.Y, preds)
	if acc < 0.9 {
		t.Fatalf("logistic accuracy %v", acc)
	}
	probs, err := lr.PredictProba(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v outside [0,1]", p)
		}
	}
	auc, err := metrics.AUC(ds.Y, probs)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.95 {
		t.Fatalf("logistic AUC %v", auc)
	}
}

func TestLogisticRejectsNonBinaryLabels(t *testing.T) {
	x := matrix.New(3, 1)
	ds, _ := dataset.New(x, []float64{0, 1, 2})
	if err := NewLogisticRegression().Fit(ds); err == nil {
		t.Fatal("want non-binary label error")
	}
}

func TestZeroModelPersistence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	series, err := sim.GenerateSeries(sim.SeriesSpec{Steps: 100, Vars: 2, Regime: sim.RegimeRandomWalk}, rng)
	if err != nil {
		t.Fatal(err)
	}
	view, err := tswindow.NewTSAsIs(1, 0).Transform(series)
	if err != nil {
		t.Fatal(err)
	}
	z := NewZeroModel(0)
	if err := z.Fit(view); err != nil {
		t.Fatal(err)
	}
	preds, err := z.Predict(view)
	if err != nil {
		t.Fatal(err)
	}
	// Prediction for row i is the series value at time i (persistence).
	for i := range preds {
		if preds[i] != series.X.At(i, 0) {
			t.Fatalf("zero model at %d: %v vs %v", i, preds[i], series.X.At(i, 0))
		}
	}
}

func TestARModelBeatsZeroOnARData(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	series, err := sim.GenerateSeries(sim.SeriesSpec{Steps: 600, Vars: 1, Regime: sim.RegimeAR}, rng)
	if err != nil {
		t.Fatal(err)
	}
	view, err := tswindow.NewTSAsIs(1, 0).Transform(series)
	if err != nil {
		t.Fatal(err)
	}
	trainEnd := 400
	train := view.SliceRange(0, trainEnd)
	test := view.SliceRange(trainEnd, view.NumSamples())

	ar := NewARModel(4, 0)
	if err := ar.Fit(train); err != nil {
		t.Fatal(err)
	}
	arPred, err := ar.Predict(test)
	if err != nil {
		t.Fatal(err)
	}
	z := NewZeroModel(0)
	if err := z.Fit(train); err != nil {
		t.Fatal(err)
	}
	zPred, err := z.Predict(test)
	if err != nil {
		t.Fatal(err)
	}
	arRMSE, _ := metrics.RMSE(test.Y, arPred)
	zRMSE, _ := metrics.RMSE(test.Y, zPred)
	if arRMSE >= zRMSE {
		t.Fatalf("AR RMSE %v should beat Zero %v on AR data", arRMSE, zRMSE)
	}
}

func TestARModelErrors(t *testing.T) {
	x := matrix.New(4, 1)
	ds, _ := dataset.New(x, []float64{1, 2, 3, 4})
	ar := NewARModel(10, 0)
	if err := ar.Fit(ds); err == nil {
		t.Fatal("want too-short error")
	}
	if _, err := ar.Predict(ds); err == nil {
		t.Fatal("want not-fitted error")
	}
	if err := NewARModel(2, 5).Fit(ds); err == nil {
		t.Fatal("want target range error")
	}
}

func TestSetParamAllModels(t *testing.T) {
	models := []core.Estimator{
		NewLinearRegression(), NewDecisionTree(TreeRegression), NewRandomForest(TreeRegression, 5),
		NewKNN(KNNRegression, 3), NewKMeans(2), NewLogisticRegression(), NewZeroModel(0), NewARModel(2, 0),
	}
	for _, m := range models {
		if err := m.SetParam("definitely_bogus_param", 1); err == nil {
			t.Errorf("%s accepted bogus param", m.Name())
		}
		c := m.Clone()
		if c.Name() != m.Name() {
			t.Errorf("clone of %s renamed to %s", m.Name(), c.Name())
		}
	}
	f := NewRandomForest(TreeRegression, 5)
	for k, v := range map[string]float64{"n_trees": 7, "max_depth": 4, "min_leaf": 2, "seed": 9} {
		if err := f.SetParam(k, v); err != nil {
			t.Fatalf("forest SetParam(%s): %v", k, err)
		}
	}
	if f.NTrees != 7 || f.MaxDepth != 4 || f.MinLeaf != 2 || f.Seed != 9 {
		t.Fatalf("forest params not applied: %+v", f)
	}
}

func TestGradientBoostingBeatsSingleTree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	full, _, err := dataset.MakeRegression(dataset.RegressionSpec{Samples: 400, Features: 6, Informative: 4, Noise: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr, te, err := full.TrainTestSplit(0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	tree := NewDecisionTree(TreeRegression)
	tree.MaxDepth = 3
	if err := tree.Fit(tr); err != nil {
		t.Fatal(err)
	}
	gbm := NewGradientBoosting(150)
	if err := gbm.Fit(tr); err != nil {
		t.Fatal(err)
	}
	tp, err := tree.Predict(te)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := gbm.Predict(te)
	if err != nil {
		t.Fatal(err)
	}
	treeRMSE, _ := metrics.RMSE(te.Y, tp)
	gbmRMSE, _ := metrics.RMSE(te.Y, gp)
	if gbmRMSE >= treeRMSE {
		t.Fatalf("boosting RMSE %v not better than one shallow tree %v", gbmRMSE, treeRMSE)
	}
}

func TestGradientBoostingParamsAndErrors(t *testing.T) {
	g := NewGradientBoosting(10)
	for k, v := range map[string]float64{"n_trees": 20, "lr": 0.05, "max_depth": 2, "min_leaf": 3} {
		if err := g.SetParam(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if g.NTrees != 20 || g.LearningRate != 0.05 || g.MaxDepth != 2 || g.MinLeaf != 3 {
		t.Fatalf("params not applied: %+v", g)
	}
	if err := g.SetParam("bogus", 1); err == nil {
		t.Fatal("want unknown param error")
	}
	if _, err := g.Predict(&dataset.Dataset{X: matrix.New(1, 1)}); err == nil {
		t.Fatal("want not-fitted error")
	}
	x := matrix.New(3, 1)
	unsup, _ := dataset.New(x, nil)
	if err := g.Fit(unsup); err == nil {
		t.Fatal("want missing-target error")
	}
	c := g.Clone()
	if c.Params()["n_trees"] != 20 {
		t.Fatal("clone lost params")
	}
}
