package mlmodels

import (
	"fmt"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/matrix"
)

// ZeroModel is the paper's baseline statistical model: it "outputs the
// previous timestamp's ground truth as the next timestamp's prediction".
// It consumes the TS-as-is view (Figure 10), where row i holds the raw
// variable vector at time i and Y[i] is the target Horizon steps ahead, so
// the prediction for row i is simply the target variable's current value.
type ZeroModel struct {
	Target int // target variable column (default 0)

	fitted bool
}

// NewZeroModel returns the persistence baseline for the given target column.
func NewZeroModel(target int) *ZeroModel { return &ZeroModel{Target: target} }

// Name implements core.Component.
func (z *ZeroModel) Name() string { return "zeromodel" }

// SetParam implements core.Component; "target" is supported.
func (z *ZeroModel) SetParam(key string, v float64) error {
	if key == "target" {
		z.Target = int(v)
		return nil
	}
	return errUnknownParam(z.Name(), key)
}

// Params implements core.Component.
func (z *ZeroModel) Params() map[string]float64 {
	return map[string]float64{"target": float64(z.Target)}
}

// Clone implements core.Estimator.
func (z *ZeroModel) Clone() core.Estimator { return &ZeroModel{Target: z.Target} }

// Fit validates the target column; the model has no learned state.
func (z *ZeroModel) Fit(ds *dataset.Dataset) error {
	if z.Target < 0 || z.Target >= ds.NumFeatures() {
		return fmt.Errorf("mlmodels: %s target %d out of range for %d vars", z.Name(), z.Target, ds.NumFeatures())
	}
	z.fitted = true
	return nil
}

// Predict returns the current value of the target variable for every row.
func (z *ZeroModel) Predict(ds *dataset.Dataset) ([]float64, error) {
	if !z.fitted {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, z.Name())
	}
	if z.Target >= ds.NumFeatures() {
		return nil, fmt.Errorf("mlmodels: %s target %d out of range for %d vars", z.Name(), z.Target, ds.NumFeatures())
	}
	out := make([]float64, ds.NumSamples())
	for i := range out {
		out[i] = ds.X.At(i, z.Target)
	}
	return out, nil
}

// ARModel is an autoregressive model of order P on the target variable,
// standing in for the ARIMA entry in the paper's statistical-model family
// (which the authors themselves left out "due to complexity in adding the
// time series prediction pipeline"). It consumes the TS-as-is view: rows
// must be in time order. Coefficients are fitted by least squares on lagged
// targets; predictions for rows with insufficient in-sample history fall
// back to persistence.
type ARModel struct {
	P      int // autoregressive order (default 3)
	Target int // target variable column

	coef      []float64 // lag coefficients, coef[0] = lag-1
	intercept float64
	fitted    bool
}

// NewARModel returns an unfitted AR(p) model for the target column.
func NewARModel(p, target int) *ARModel { return &ARModel{P: p, Target: target} }

// Name implements core.Component.
func (a *ARModel) Name() string { return "armodel" }

// SetParam implements core.Component; "p" and "target" are supported.
func (a *ARModel) SetParam(key string, v float64) error {
	switch key {
	case "p":
		a.P = int(v)
	case "target":
		a.Target = int(v)
	default:
		return errUnknownParam(a.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (a *ARModel) Params() map[string]float64 {
	return map[string]float64{"p": float64(a.P), "target": float64(a.Target)}
}

// Clone implements core.Estimator.
func (a *ARModel) Clone() core.Estimator { return &ARModel{P: a.P, Target: a.Target} }

// Fit regresses Y on the last P values of the target variable. Because the
// TS-as-is view provides Y[i] = target at time i+h, this learns the h-step
// mapping directly.
func (a *ARModel) Fit(ds *dataset.Dataset) error {
	if ds.Y == nil {
		return fmt.Errorf("mlmodels: %s requires targets", a.Name())
	}
	if a.Target < 0 || a.Target >= ds.NumFeatures() {
		return fmt.Errorf("mlmodels: %s target %d out of range for %d vars", a.Name(), a.Target, ds.NumFeatures())
	}
	if a.P < 1 {
		a.P = 3
	}
	n := ds.NumSamples()
	rows := n - a.P + 1
	if rows < a.P+2 {
		return fmt.Errorf("mlmodels: %s order %d needs more than %d samples", a.Name(), a.P, n)
	}
	// Row i of the design matrix holds target values at times
	// i+P-1, i+P-2, ..., i (most recent lag first) predicting Y[i+P-1].
	x := matrix.New(rows, a.P+1)
	b := make([]float64, rows)
	for r := 0; r < rows; r++ {
		t := r + a.P - 1
		row := x.Row(r)
		row[0] = 1
		for lag := 0; lag < a.P; lag++ {
			row[lag+1] = ds.X.At(t-lag, a.Target)
		}
		b[r] = ds.Y[t]
	}
	sol, err := matrix.SolveLeastSquares(x, b)
	if err != nil {
		return fmt.Errorf("mlmodels: %s solve: %w", a.Name(), err)
	}
	a.intercept = sol[0]
	a.coef = sol[1:]
	a.fitted = true
	return nil
}

// Predict applies the AR coefficients over the in-sample history of the
// provided (time-ordered) rows. The first P-1 rows use persistence.
func (a *ARModel) Predict(ds *dataset.Dataset) ([]float64, error) {
	if !a.fitted {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, a.Name())
	}
	if a.Target >= ds.NumFeatures() {
		return nil, fmt.Errorf("mlmodels: %s target %d out of range for %d vars", a.Name(), a.Target, ds.NumFeatures())
	}
	out := make([]float64, ds.NumSamples())
	for t := range out {
		if t < a.P-1 {
			out[t] = ds.X.At(t, a.Target) // persistence fallback
			continue
		}
		s := a.intercept
		for lag := 0; lag < a.P; lag++ {
			s += a.coef[lag] * ds.X.At(t-lag, a.Target)
		}
		out[t] = s
	}
	return out, nil
}
