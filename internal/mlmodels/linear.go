// Package mlmodels implements the classic estimators the paper's graphs
// draw on (Table I, Figure 3): linear and ridge regression, CART decision
// trees, random forests, k-nearest-neighbours, logistic regression and
// k-means, plus the statistical time-series models of Section IV-C1 (the
// Zero baseline and an AR(p) model standing in for ARIMA, which the paper
// itself omitted "due to complexity").
//
// Every type satisfies core.Estimator.
package mlmodels

import (
	"errors"
	"fmt"
	"math"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/matrix"
)

// ErrNotFitted is returned when Predict is called before Fit.
var ErrNotFitted = errors.New("mlmodels: model not fitted")

func errUnknownParam(model, key string) error {
	return fmt.Errorf("mlmodels: %s has no parameter %q", model, key)
}

// LinearRegression is ordinary least squares with an intercept, solved via
// Householder QR. Setting Alpha > 0 adds L2 (ridge) regularization using
// the augmented-rows formulation.
type LinearRegression struct {
	Alpha float64 // L2 penalty; 0 = OLS

	coef      []float64 // feature coefficients
	intercept float64
	fitted    bool
}

// NewLinearRegression returns an unfitted OLS model.
func NewLinearRegression() *LinearRegression { return &LinearRegression{} }

// NewRidge returns a ridge regression with penalty alpha.
func NewRidge(alpha float64) *LinearRegression { return &LinearRegression{Alpha: alpha} }

// Name implements core.Component.
func (l *LinearRegression) Name() string {
	if l.Alpha > 0 {
		return "ridge"
	}
	return "linearregression"
}

// SetParam implements core.Component; "alpha" is supported.
func (l *LinearRegression) SetParam(key string, v float64) error {
	if key == "alpha" {
		l.Alpha = v
		return nil
	}
	return errUnknownParam(l.Name(), key)
}

// Params implements core.Component.
func (l *LinearRegression) Params() map[string]float64 {
	return map[string]float64{"alpha": l.Alpha}
}

// Clone implements core.Estimator.
func (l *LinearRegression) Clone() core.Estimator { return &LinearRegression{Alpha: l.Alpha} }

// Fit solves min ||[1 X] b - y||^2 (+ alpha ||b_features||^2).
func (l *LinearRegression) Fit(ds *dataset.Dataset) error {
	if ds.Y == nil {
		return fmt.Errorf("mlmodels: %s requires targets", l.Name())
	}
	n, p := ds.NumSamples(), ds.NumFeatures()
	rows := n
	if l.Alpha > 0 {
		rows += p
	}
	if rows < p+1 {
		return fmt.Errorf("mlmodels: %s needs >= %d samples for %d features, got %d", l.Name(), p+1, p, n)
	}
	a := matrix.New(rows, p+1)
	b := make([]float64, rows)
	for i := 0; i < n; i++ {
		row := a.Row(i)
		row[0] = 1
		copy(row[1:], ds.X.Row(i))
		b[i] = ds.Y[i]
	}
	if l.Alpha > 0 {
		// Augmented rows sqrt(alpha)*e_j penalize feature coefficients
		// (not the intercept).
		s := math.Sqrt(l.Alpha)
		for j := 0; j < p; j++ {
			a.Set(n+j, j+1, s)
		}
	}
	x, err := matrix.SolveLeastSquares(a, b)
	if err != nil {
		return fmt.Errorf("mlmodels: %s solve: %w", l.Name(), err)
	}
	l.intercept = x[0]
	l.coef = x[1:]
	l.fitted = true
	return nil
}

// Predict returns X*coef + intercept.
func (l *LinearRegression) Predict(ds *dataset.Dataset) ([]float64, error) {
	if !l.fitted {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, l.Name())
	}
	if ds.NumFeatures() != len(l.coef) {
		return nil, fmt.Errorf("mlmodels: %s fitted with %d features, got %d", l.Name(), len(l.coef), ds.NumFeatures())
	}
	out := make([]float64, ds.NumSamples())
	for i := range out {
		s := l.intercept
		for j, v := range ds.X.Row(i) {
			s += v * l.coef[j]
		}
		out[i] = s
	}
	return out, nil
}

// Coefficients returns the fitted feature coefficients and intercept, used
// by the RCA solution template for sensitivity analysis.
func (l *LinearRegression) Coefficients() (coef []float64, intercept float64, err error) {
	if !l.fitted {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFitted, l.Name())
	}
	return append([]float64(nil), l.coef...), l.intercept, nil
}
