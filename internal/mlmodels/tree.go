package mlmodels

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"coda/internal/core"
	"coda/internal/dataset"
)

// TreeTask selects regression (variance reduction) or classification (Gini
// impurity) splitting for DecisionTree.
type TreeTask int

// Decision-tree tasks.
const (
	TreeRegression TreeTask = iota + 1
	TreeClassification
)

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	value     float64 // leaf prediction
	leaf      bool
}

// DecisionTree is a CART tree supporting regression and classification with
// depth, leaf-size, and feature-subsampling controls (the latter for use
// inside RandomForest).
type DecisionTree struct {
	Task        TreeTask
	MaxDepth    int // 0 = unbounded
	MinLeaf     int // minimum samples per leaf (default 1)
	MaxFeatures int // features considered per split; 0 = all

	root *treeNode
	rng  *rand.Rand // only set when feature subsampling is active
}

// NewDecisionTree returns an unfitted CART tree.
func NewDecisionTree(task TreeTask) *DecisionTree {
	return &DecisionTree{Task: task, MinLeaf: 1}
}

// Name implements core.Component.
func (t *DecisionTree) Name() string { return "decisiontree" }

// SetParam implements core.Component; "max_depth" and "min_leaf" are
// supported.
func (t *DecisionTree) SetParam(key string, v float64) error {
	switch key {
	case "max_depth":
		t.MaxDepth = int(v)
	case "min_leaf":
		t.MinLeaf = int(v)
	default:
		return errUnknownParam(t.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (t *DecisionTree) Params() map[string]float64 {
	return map[string]float64{"max_depth": float64(t.MaxDepth), "min_leaf": float64(t.MinLeaf)}
}

// Clone implements core.Estimator.
func (t *DecisionTree) Clone() core.Estimator {
	return &DecisionTree{Task: t.Task, MaxDepth: t.MaxDepth, MinLeaf: t.MinLeaf, MaxFeatures: t.MaxFeatures}
}

// Fit grows the tree.
func (t *DecisionTree) Fit(ds *dataset.Dataset) error {
	if ds.Y == nil {
		return fmt.Errorf("mlmodels: %s requires targets", t.Name())
	}
	if ds.NumSamples() == 0 {
		return fmt.Errorf("mlmodels: %s on empty dataset", t.Name())
	}
	if t.Task != TreeRegression && t.Task != TreeClassification {
		return fmt.Errorf("mlmodels: %s unknown task %d", t.Name(), t.Task)
	}
	if t.MinLeaf < 1 {
		t.MinLeaf = 1
	}
	idx := make([]int, ds.NumSamples())
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(ds, idx, 0)
	return nil
}

func (t *DecisionTree) grow(ds *dataset.Dataset, idx []int, depth int) *treeNode {
	if len(idx) <= t.MinLeaf || (t.MaxDepth > 0 && depth >= t.MaxDepth) || pure(ds.Y, idx) {
		return &treeNode{leaf: true, value: t.leafValue(ds.Y, idx)}
	}
	feature, threshold, ok := t.bestSplit(ds, idx)
	if !ok {
		return &treeNode{leaf: true, value: t.leafValue(ds.Y, idx)}
	}
	var left, right []int
	for _, i := range idx {
		if ds.X.At(i, feature) <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &treeNode{leaf: true, value: t.leafValue(ds.Y, idx)}
	}
	return &treeNode{
		feature:   feature,
		threshold: threshold,
		left:      t.grow(ds, left, depth+1),
		right:     t.grow(ds, right, depth+1),
	}
}

// bestSplit scans candidate features for the split minimizing weighted
// impurity (variance or Gini).
func (t *DecisionTree) bestSplit(ds *dataset.Dataset, idx []int) (feature int, threshold float64, ok bool) {
	features := make([]int, ds.NumFeatures())
	for j := range features {
		features[j] = j
	}
	if t.MaxFeatures > 0 && t.MaxFeatures < len(features) && t.rng != nil {
		t.rng.Shuffle(len(features), func(a, b int) { features[a], features[b] = features[b], features[a] })
		features = features[:t.MaxFeatures]
	}
	best := math.Inf(1)
	type pair struct{ x, y float64 }
	pairs := make([]pair, len(idx))
	for _, j := range features {
		for k, i := range idx {
			pairs[k] = pair{ds.X.At(i, j), ds.Y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].x < pairs[b].x })
		// Incremental impurity scan over sorted order.
		switch t.Task {
		case TreeRegression:
			var sumL, sqL float64
			sumR, sqR := 0.0, 0.0
			for _, p := range pairs {
				sumR += p.y
				sqR += p.y * p.y
			}
			nL, nR := 0.0, float64(len(pairs))
			for k := 0; k < len(pairs)-1; k++ {
				y := pairs[k].y
				sumL += y
				sqL += y * y
				sumR -= y
				sqR -= y * y
				nL++
				nR--
				if pairs[k].x == pairs[k+1].x {
					continue
				}
				if int(nL) < t.MinLeaf || int(nR) < t.MinLeaf {
					continue
				}
				varL := sqL - sumL*sumL/nL
				varR := sqR - sumR*sumR/nR
				if imp := varL + varR; imp < best {
					best = imp
					feature = j
					threshold = (pairs[k].x + pairs[k+1].x) / 2
					ok = true
				}
			}
		case TreeClassification:
			countsR := map[float64]float64{}
			for _, p := range pairs {
				countsR[p.y]++
			}
			countsL := map[float64]float64{}
			nL, nR := 0.0, float64(len(pairs))
			for k := 0; k < len(pairs)-1; k++ {
				y := pairs[k].y
				countsL[y]++
				countsR[y]--
				nL++
				nR--
				if pairs[k].x == pairs[k+1].x {
					continue
				}
				if int(nL) < t.MinLeaf || int(nR) < t.MinLeaf {
					continue
				}
				if imp := nL*gini(countsL, nL) + nR*gini(countsR, nR); imp < best {
					best = imp
					feature = j
					threshold = (pairs[k].x + pairs[k+1].x) / 2
					ok = true
				}
			}
		}
	}
	return feature, threshold, ok
}

func gini(counts map[float64]float64, n float64) float64 {
	g := 1.0
	for _, c := range counts {
		p := c / n
		g -= p * p
	}
	return g
}

func pure(y []float64, idx []int) bool {
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] {
			return false
		}
	}
	return true
}

func (t *DecisionTree) leafValue(y []float64, idx []int) float64 {
	switch t.Task {
	case TreeClassification:
		counts := map[float64]int{}
		for _, i := range idx {
			counts[y[i]]++
		}
		best, bestN := 0.0, -1
		for v, n := range counts {
			if n > bestN || (n == bestN && v < best) {
				best, bestN = v, n
			}
		}
		return best
	default:
		s := 0.0
		for _, i := range idx {
			s += y[i]
		}
		return s / float64(len(idx))
	}
}

// Predict routes each row down the tree.
func (t *DecisionTree) Predict(ds *dataset.Dataset) ([]float64, error) {
	if t.root == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, t.Name())
	}
	out := make([]float64, ds.NumSamples())
	for i := range out {
		node := t.root
		for !node.leaf {
			if ds.X.At(i, node.feature) <= node.threshold {
				node = node.left
			} else {
				node = node.right
			}
		}
		out[i] = node.value
	}
	return out, nil
}

// Depth returns the fitted tree's depth (0 for a single leaf).
func (t *DecisionTree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
