package mlmodels

import (
	"fmt"

	"coda/internal/core"
	"coda/internal/dataset"
)

// GradientBoosting is a least-squares gradient-boosted ensemble of shallow
// CART regression trees (one of the training techniques Section III lists).
// Each stage fits a depth-limited tree to the current residuals and adds a
// shrunken copy of its predictions.
type GradientBoosting struct {
	NTrees       int     // boosting stages (default 100)
	LearningRate float64 // shrinkage (default 0.1)
	MaxDepth     int     // per-tree depth (default 3)
	MinLeaf      int     // per-tree leaf size (default 1)

	trees []*DecisionTree
	base  float64 // initial prediction (target mean)
}

// NewGradientBoosting returns an unfitted boosted regressor.
func NewGradientBoosting(nTrees int) *GradientBoosting {
	return &GradientBoosting{NTrees: nTrees, LearningRate: 0.1, MaxDepth: 3, MinLeaf: 1}
}

// Name implements core.Component.
func (g *GradientBoosting) Name() string { return "gradientboosting" }

// SetParam implements core.Component; "n_trees", "lr", "max_depth" and
// "min_leaf" are supported.
func (g *GradientBoosting) SetParam(key string, v float64) error {
	switch key {
	case "n_trees":
		g.NTrees = int(v)
	case "lr":
		g.LearningRate = v
	case "max_depth":
		g.MaxDepth = int(v)
	case "min_leaf":
		g.MinLeaf = int(v)
	default:
		return errUnknownParam(g.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (g *GradientBoosting) Params() map[string]float64 {
	return map[string]float64{
		"n_trees": float64(g.NTrees), "lr": g.LearningRate,
		"max_depth": float64(g.MaxDepth), "min_leaf": float64(g.MinLeaf),
	}
}

// Clone implements core.Estimator.
func (g *GradientBoosting) Clone() core.Estimator {
	return &GradientBoosting{NTrees: g.NTrees, LearningRate: g.LearningRate, MaxDepth: g.MaxDepth, MinLeaf: g.MinLeaf}
}

// Fit boosts on squared-error residuals.
func (g *GradientBoosting) Fit(ds *dataset.Dataset) error {
	if ds.Y == nil {
		return fmt.Errorf("mlmodels: %s requires targets", g.Name())
	}
	n := ds.NumSamples()
	if n == 0 {
		return fmt.Errorf("mlmodels: %s on empty dataset", g.Name())
	}
	if g.NTrees < 1 {
		g.NTrees = 100
	}
	if g.LearningRate <= 0 {
		g.LearningRate = 0.1
	}
	if g.MaxDepth < 1 {
		g.MaxDepth = 3
	}
	g.base = 0
	for _, y := range ds.Y {
		g.base += y
	}
	g.base /= float64(n)

	current := make([]float64, n)
	for i := range current {
		current[i] = g.base
	}
	residual := make([]float64, n)
	work := ds.Clone()
	g.trees = make([]*DecisionTree, 0, g.NTrees)
	for stage := 0; stage < g.NTrees; stage++ {
		for i := range residual {
			residual[i] = ds.Y[i] - current[i]
		}
		work.Y = residual
		tree := &DecisionTree{Task: TreeRegression, MaxDepth: g.MaxDepth, MinLeaf: g.MinLeaf}
		if err := tree.Fit(work); err != nil {
			return fmt.Errorf("mlmodels: %s stage %d: %w", g.Name(), stage, err)
		}
		preds, err := tree.Predict(work)
		if err != nil {
			return fmt.Errorf("mlmodels: %s stage %d predict: %w", g.Name(), stage, err)
		}
		for i, p := range preds {
			current[i] += g.LearningRate * p
		}
		g.trees = append(g.trees, tree)
	}
	return nil
}

// Predict sums the base value and shrunken stage outputs.
func (g *GradientBoosting) Predict(ds *dataset.Dataset) ([]float64, error) {
	if g.trees == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, g.Name())
	}
	out := make([]float64, ds.NumSamples())
	for i := range out {
		out[i] = g.base
	}
	for _, tree := range g.trees {
		preds, err := tree.Predict(ds)
		if err != nil {
			return nil, fmt.Errorf("mlmodels: %s predict: %w", g.Name(), err)
		}
		for i, p := range preds {
			out[i] += g.LearningRate * p
		}
	}
	return out, nil
}
