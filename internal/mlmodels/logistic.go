package mlmodels

import (
	"fmt"
	"math"

	"coda/internal/core"
	"coda/internal/dataset"
)

// LogisticRegression is binary logistic regression trained by full-batch
// gradient descent with optional L2 regularization. Labels must be 0/1.
// Predict returns hard labels; PredictProba returns P(y=1).
type LogisticRegression struct {
	LearningRate float64 // step size (default 0.1)
	Epochs       int     // gradient steps (default 500)
	Alpha        float64 // L2 penalty (default 0)

	coef      []float64
	intercept float64
	fitted    bool
}

// NewLogisticRegression returns an unfitted binary classifier.
func NewLogisticRegression() *LogisticRegression {
	return &LogisticRegression{LearningRate: 0.1, Epochs: 500}
}

// Name implements core.Component.
func (l *LogisticRegression) Name() string { return "logisticregression" }

// SetParam implements core.Component; "lr", "epochs" and "alpha" are
// supported.
func (l *LogisticRegression) SetParam(key string, v float64) error {
	switch key {
	case "lr":
		l.LearningRate = v
	case "epochs":
		l.Epochs = int(v)
	case "alpha":
		l.Alpha = v
	default:
		return errUnknownParam(l.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (l *LogisticRegression) Params() map[string]float64 {
	return map[string]float64{"lr": l.LearningRate, "epochs": float64(l.Epochs), "alpha": l.Alpha}
}

// Clone implements core.Estimator.
func (l *LogisticRegression) Clone() core.Estimator {
	return &LogisticRegression{LearningRate: l.LearningRate, Epochs: l.Epochs, Alpha: l.Alpha}
}

// Fit runs gradient descent on the logistic loss.
func (l *LogisticRegression) Fit(ds *dataset.Dataset) error {
	if ds.Y == nil {
		return fmt.Errorf("mlmodels: %s requires targets", l.Name())
	}
	for i, y := range ds.Y {
		if y != 0 && y != 1 {
			return fmt.Errorf("mlmodels: %s requires 0/1 labels, got %v at row %d", l.Name(), y, i)
		}
	}
	n, p := ds.NumSamples(), ds.NumFeatures()
	if n == 0 {
		return fmt.Errorf("mlmodels: %s on empty dataset", l.Name())
	}
	if l.LearningRate <= 0 {
		l.LearningRate = 0.1
	}
	if l.Epochs <= 0 {
		l.Epochs = 500
	}
	l.coef = make([]float64, p)
	l.intercept = 0
	grad := make([]float64, p)
	for epoch := 0; epoch < l.Epochs; epoch++ {
		for j := range grad {
			grad[j] = 0
		}
		gIntercept := 0.0
		for i := 0; i < n; i++ {
			row := ds.X.Row(i)
			z := l.intercept
			for j, v := range row {
				z += v * l.coef[j]
			}
			err := sigmoid(z) - ds.Y[i]
			gIntercept += err
			for j, v := range row {
				grad[j] += err * v
			}
		}
		inv := 1.0 / float64(n)
		l.intercept -= l.LearningRate * gIntercept * inv
		for j := range l.coef {
			l.coef[j] -= l.LearningRate * (grad[j]*inv + l.Alpha*l.coef[j])
		}
	}
	l.fitted = true
	return nil
}

// PredictProba returns P(y=1) per row.
func (l *LogisticRegression) PredictProba(ds *dataset.Dataset) ([]float64, error) {
	if !l.fitted {
		return nil, fmt.Errorf("%w: %s", ErrNotFitted, l.Name())
	}
	if ds.NumFeatures() != len(l.coef) {
		return nil, fmt.Errorf("mlmodels: %s fitted with %d features, got %d", l.Name(), len(l.coef), ds.NumFeatures())
	}
	out := make([]float64, ds.NumSamples())
	for i := range out {
		z := l.intercept
		for j, v := range ds.X.Row(i) {
			z += v * l.coef[j]
		}
		out[i] = sigmoid(z)
	}
	return out, nil
}

// Predict thresholds PredictProba at 0.5.
func (l *LogisticRegression) Predict(ds *dataset.Dataset) ([]float64, error) {
	probs, err := l.PredictProba(ds)
	if err != nil {
		return nil, err
	}
	for i, p := range probs {
		if p >= 0.5 {
			probs[i] = 1
		} else {
			probs[i] = 0
		}
	}
	return probs, nil
}

// Coefficients returns the fitted weights and intercept for RCA reporting.
func (l *LogisticRegression) Coefficients() (coef []float64, intercept float64, err error) {
	if !l.fitted {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFitted, l.Name())
	}
	return append([]float64(nil), l.coef...), l.intercept, nil
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
