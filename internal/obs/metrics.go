package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The registry follows the get-or-create-by-name idiom: a series name is
// a Prometheus family name with optional literal labels, e.g.
//
//	coda_darr_hits_total
//	coda_darr_claims_total{granted="true"}
//
// Callers hold on to the returned metric and update it with atomic
// operations; the registry lock is only taken on first creation and at
// scrape time.

// DurationBuckets is the default histogram bucket layout for latencies,
// in seconds, spanning sub-millisecond pipeline units to multi-second
// WAN calls.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing integer metric with an atomic
// hot path.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (which must be non-negative to keep Prometheus semantics).
func (c *Counter) Add(n int64) {
	if disabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float metric; when built by GaugeFunc it instead
// reads a callback at scrape time.
type Gauge struct {
	fn   func() float64
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if disabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d.
func (g *Gauge) Add(d float64) {
	if disabled.Load() {
		return
	}
	atomicAddFloat(&g.bits, d)
}

// Value returns the current value (calling the callback for GaugeFunc
// gauges).
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution with atomic observation. It
// renders as a standard Prometheus histogram (_bucket/_sum/_count).
type Histogram struct {
	upper  []float64 // ascending bucket upper bounds, +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if disabled.Load() {
		return
	}
	h.counts[sort.SearchFloat64s(h.upper, v)].Add(1)
	atomicAddFloat(&h.sum, v)
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func atomicAddFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Registry holds named metrics and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]kind
	help     map[string]string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: map[string]kind{},
		help:     map[string]string{},
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that package-level Counter /
// Gauge / Histogram operate on and MetricsHandler serves.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it on
// first use. It panics if name is malformed or already registered as a
// different metric kind — both programmer errors.
func (r *Registry) Counter(name string) *Counter {
	family, _ := splitSeries(name)
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	r.claimFamily(family, kindCounter)
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the settable gauge registered under name, creating it on
// first use.
func (r *Registry) Gauge(name string) *Gauge {
	family, _ := splitSeries(name)
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	r.claimFamily(family, kindGauge)
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time; it panics if the series already exists.
func (r *Registry) GaugeFunc(name string, fn func() float64) *Gauge {
	family, _ := splitSeries(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obs: gauge %q already registered", name))
	}
	r.claimFamily(family, kindGauge)
	g := &Gauge{fn: fn}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given ascending bucket upper bounds (nil means
// DurationBuckets). Buckets are fixed at creation; later calls reuse the
// existing histogram regardless of the buckets argument.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	family, _ := splitSeries(name)
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	if buckets == nil {
		buckets = DurationBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending: %v", name, buckets))
		}
	}
	r.claimFamily(family, kindHistogram)
	h = &Histogram{upper: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
	r.hists[name] = h
	return h
}

// Help attaches a HELP string to a metric family, emitted on scrape.
func (r *Registry) Help(family, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[family] = text
}

// claimFamily records the kind of a family; caller holds the write lock.
func (r *Registry) claimFamily(family string, k kind) {
	if have, ok := r.families[family]; ok && have != k {
		panic(fmt.Sprintf("obs: metric family %q registered as both %s and %s", family, have, k))
	}
	r.families[family] = k
}

// splitSeries validates a series name and returns its family and literal
// label block (without braces; empty when unlabeled).
func splitSeries(name string) (family, labels string) {
	i := -1
	for j := 0; j < len(name); j++ {
		if name[j] == '{' {
			i = j
			break
		}
	}
	if i == -1 {
		mustValidFamily(name)
		return name, ""
	}
	if i == 0 || name[len(name)-1] != '}' || i+2 > len(name)-1 {
		panic(fmt.Sprintf("obs: malformed series name %q", name))
	}
	family = name[:i]
	mustValidFamily(family)
	return family, name[i+1 : len(name)-1]
}

func mustValidFamily(s string) {
	if s == "" {
		panic("obs: empty metric name")
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", s))
		}
	}
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), families sorted by name and series
// sorted within each family.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	families := make([]string, 0, len(r.families))
	for f := range r.families {
		families = append(families, f)
	}
	sort.Strings(families)
	series := map[string][]string{} // family -> series names
	collect := func(name string) {
		f, _ := splitSeries(name)
		series[f] = append(series[f], name)
	}
	for name := range r.counters {
		collect(name)
	}
	for name := range r.gauges {
		collect(name)
	}
	for name := range r.hists {
		collect(name)
	}
	kinds := make(map[string]kind, len(r.families))
	for f, k := range r.families {
		kinds[f] = k
	}
	help := make(map[string]string, len(r.help))
	for f, h := range r.help {
		help[f] = h
	}
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.RUnlock()

	for _, f := range families {
		if h := help[f]; h != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f, h)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f, kinds[f])
		names := series[f]
		sort.Strings(names)
		for _, name := range names {
			switch kinds[f] {
			case kindCounter:
				fmt.Fprintf(w, "%s %d\n", name, counters[name].Value())
			case kindGauge:
				fmt.Fprintf(w, "%s %s\n", name, formatFloat(gauges[name].Value()))
			case kindHistogram:
				writeHistogram(w, name, hists[name])
			}
		}
	}
}

func writeHistogram(w io.Writer, name string, h *Histogram) {
	family, labels := splitSeries(name)
	bucket := func(le string, cum uint64) {
		if labels == "" {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", family, le, cum)
		} else {
			fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", family, labels, le, cum)
		}
	}
	var cum uint64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		bucket(formatFloat(ub), cum)
	}
	cum += h.counts[len(h.upper)].Load()
	bucket("+Inf", cum)
	suffix := func(s string) string {
		if labels == "" {
			return family + s
		}
		return family + s + "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s %s\n", suffix("_sum"), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s %d\n", suffix("_count"), cum)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Package-level helpers against the Default registry.

// GetCounter returns (creating if needed) a counter in the default
// registry.
func GetCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// GetGauge returns a settable gauge in the default registry.
func GetGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// GetGaugeFunc registers a callback gauge in the default registry.
func GetGaugeFunc(name string, fn func() float64) *Gauge { return defaultRegistry.GaugeFunc(name, fn) }

// GetHistogram returns a histogram in the default registry (nil buckets
// mean DurationBuckets).
func GetHistogram(name string, buckets []float64) *Histogram {
	return defaultRegistry.Histogram(name, buckets)
}

// WritePrometheus renders the default registry.
func WritePrometheus(w io.Writer) { defaultRegistry.WritePrometheus(w) }

// MetricsHandler serves the default registry at a scrape endpoint.
func MetricsHandler() http.Handler { return defaultRegistry.Handler() }
