package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

var startTime = time.Now()

// Uptime reports how long the process has been running.
func Uptime() time.Duration { return time.Since(startTime) }

var (
	healthMu  sync.Mutex
	healthFns = map[string]func() any{}
)

// RegisterHealth adds a named component snapshot to every health report;
// fn must be safe for concurrent use and cheap. Re-registering a name
// replaces the previous reporter.
func RegisterHealth(name string, fn func() any) {
	healthMu.Lock()
	defer healthMu.Unlock()
	healthFns[name] = fn
}

// UnregisterHealth removes a component reporter.
func UnregisterHealth(name string) {
	healthMu.Lock()
	defer healthMu.Unlock()
	delete(healthFns, name)
}

// HealthSnapshot evaluates every registered reporter.
func HealthSnapshot() map[string]any {
	healthMu.Lock()
	fns := make(map[string]func() any, len(healthFns))
	for n, fn := range healthFns {
		fns[n] = fn
	}
	healthMu.Unlock()
	out := make(map[string]any, len(fns))
	for n, fn := range fns {
		out[n] = fn()
	}
	return out
}

// BuildInfo reports the Go version and, when the binary was built from a
// VCS checkout, the revision and commit time.
func BuildInfo() map[string]string {
	out := map[string]string{"go_version": runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.Main.Path != "" {
		out["module"] = bi.Main.Path
	}
	if bi.Main.Version != "" {
		out["module_version"] = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out["vcs_revision"] = s.Value
		case "vcs.time":
			out["vcs_time"] = s.Value
		case "vcs.modified":
			out["vcs_modified"] = s.Value
		}
	}
	return out
}

// HealthReply is the enriched /healthz JSON document.
type HealthReply struct {
	Status        string            `json:"status"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Build         map[string]string `json:"build"`
	Components    map[string]any    `json:"components"`
}

// HealthHandler serves the enriched health report: status, process
// uptime, build info (Go version, VCS revision), the globally registered
// component reporters, and any extra per-server reporters passed in.
func HealthHandler(extra map[string]func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		components := HealthSnapshot()
		for n, fn := range extra {
			components[n] = fn()
		}
		reply := HealthReply{
			Status:        "ok",
			UptimeSeconds: Uptime().Seconds(),
			Build:         BuildInfo(),
			Components:    components,
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(reply)
	})
}

func init() {
	defaultRegistry.Help("coda_uptime_seconds", "Seconds since the process started.")
	defaultRegistry.GaugeFunc("coda_uptime_seconds", func() float64 { return Uptime().Seconds() })
	defaultRegistry.Help("coda_go_goroutines", "Current number of goroutines.")
	defaultRegistry.GaugeFunc("coda_go_goroutines", func() float64 { return float64(runtime.NumGoroutine()) })
}
