package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// RequestIDHeader carries the request id between cooperative nodes so
// one logical operation — a whole cooperative search, or a single DARR
// call — can be followed across client and server logs.
const RequestIDHeader = "X-Coda-Request-Id"

type requestIDKey struct{}

var (
	fallbackMu  sync.Mutex
	fallbackRng = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// NewRequestID returns a 16-hex-char random id.
func NewRequestID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		fallbackMu.Lock()
		fallbackRng.Read(b[:])
		fallbackMu.Unlock()
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID stashes id in the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the context's request id, or "" when none is set.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// EnsureRequestID returns the context's request id, generating and
// attaching a fresh one when absent.
func EnsureRequestID(ctx context.Context) (context.Context, string) {
	if id := RequestID(ctx); id != "" {
		return ctx, id
	}
	id := NewRequestID()
	return WithRequestID(ctx, id), id
}

// StatusRecorder wraps a ResponseWriter to capture the response status
// code (200 when the handler never calls WriteHeader) so middleware can
// label metrics and logs with it.
type StatusRecorder struct {
	http.ResponseWriter
	Status int
	wrote  bool
}

// NewStatusRecorder wraps w, defaulting the status to 200.
func NewStatusRecorder(w http.ResponseWriter) *StatusRecorder {
	return &StatusRecorder{ResponseWriter: w, Status: http.StatusOK}
}

// WriteHeader records the first status code written.
func (sr *StatusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.Status = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

// Write marks the implicit 200 as committed before delegating.
func (sr *StatusRecorder) Write(p []byte) (int, error) {
	sr.wrote = true
	return sr.ResponseWriter.Write(p)
}

// Wrote reports whether the handler committed a status or body, i.e.
// whether a recovery path may still write its own error response.
func (sr *StatusRecorder) Wrote() bool { return sr.wrote }

// RoutePattern reduces a request path to a bounded metrics label: the
// first path segment, lowercased, restricted to [a-z0-9_-] and 32 chars
// ("root" for "/", "other" for anything unruly) so arbitrary request
// paths cannot explode the label space.
func RoutePattern(path string) string {
	p := strings.TrimPrefix(path, "/")
	if i := strings.IndexByte(p, '/'); i >= 0 {
		p = p[:i]
	}
	if p == "" {
		return "root"
	}
	p = strings.ToLower(p)
	if len(p) > 32 {
		return "other"
	}
	for i := 0; i < len(p); i++ {
		c := p[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' && c != '-' {
			return "other"
		}
	}
	return p
}

// Middleware adopts the caller's X-Coda-Request-Id (generating one when
// absent), stashes it in the request context, echoes it on the response,
// captures the response status, counts the request per route/method/
// status, and debug-logs it. Handlers read the id back with RequestID
// for their own logs. logger may be nil (slog default).
func Middleware(next http.Handler, logger *slog.Logger) http.Handler {
	if logger == nil {
		logger = slog.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		rec := NewStatusRecorder(w)
		next.ServeHTTP(rec, r.WithContext(WithRequestID(r.Context(), id)))
		elapsed := time.Since(start)
		route := RoutePattern(r.URL.Path)
		GetCounter(fmt.Sprintf(`coda_http_requests_total{route=%q,method=%q,code="%d"}`,
			route, r.Method, rec.Status)).Inc()
		GetHistogram(fmt.Sprintf(`coda_http_request_seconds{route=%q}`, route), nil).
			Observe(elapsed.Seconds())
		logger.Debug("http request",
			"request_id", id, "method", r.Method, "path", r.URL.Path,
			"status", rec.Status, "elapsed", elapsed)
	})
}

// Recover guards a handler against panics: it recovers, logs the stack
// with the request id, answers a structured 500 JSON body (when nothing
// was written yet), and increments coda_http_panics_total — a panicking
// handler must cost one request, not the connection. Layer it inside
// Middleware so the request id is already in the context. logger may be
// nil (slog default).
func Recover(next http.Handler, logger *slog.Logger) http.Handler {
	if logger == nil {
		logger = slog.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := NewStatusRecorder(w)
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			// net/http's sanctioned abort signal passes through untouched.
			if err, ok := p.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(p)
			}
			id := RequestID(r.Context())
			GetCounter("coda_http_panics_total").Inc()
			logger.Error("handler panic",
				"request_id", id, "method", r.Method, "path", r.URL.Path,
				"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
			if rec.Wrote() {
				return
			}
			rec.Header().Set("Content-Type", "application/json")
			rec.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(rec).Encode(map[string]any{
				"error":      "internal server error",
				"status":     http.StatusInternalServerError,
				"request_id": id,
			})
		}()
		next.ServeHTTP(rec, r)
	})
}
