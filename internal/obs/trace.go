package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// RequestIDHeader carries the request id between cooperative nodes so
// one logical operation — a whole cooperative search, or a single DARR
// call — can be followed across client and server logs.
const RequestIDHeader = "X-Coda-Request-Id"

type requestIDKey struct{}

var (
	fallbackMu  sync.Mutex
	fallbackRng = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// NewRequestID returns a 16-hex-char random id.
func NewRequestID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		fallbackMu.Lock()
		fallbackRng.Read(b[:])
		fallbackMu.Unlock()
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID stashes id in the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the context's request id, or "" when none is set.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// EnsureRequestID returns the context's request id, generating and
// attaching a fresh one when absent.
func EnsureRequestID(ctx context.Context) (context.Context, string) {
	if id := RequestID(ctx); id != "" {
		return ctx, id
	}
	id := NewRequestID()
	return WithRequestID(ctx, id), id
}

// Middleware adopts the caller's X-Coda-Request-Id (generating one when
// absent), stashes it in the request context, echoes it on the response,
// and debug-logs the request. Handlers read the id back with RequestID
// for their own logs. logger may be nil (slog default).
func Middleware(next http.Handler, logger *slog.Logger) http.Handler {
	if logger == nil {
		logger = slog.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(WithRequestID(r.Context(), id)))
		logger.Debug("http request",
			"request_id", id, "method", r.Method, "path", r.URL.Path,
			"elapsed", time.Since(start))
	})
}
