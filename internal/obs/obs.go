// Package obs is the observability layer for the cooperative analytics
// stack: structured logging (log/slog), a dependency-free metrics
// registry exposed in Prometheus text format, request-id tracing that
// follows a cooperative search from client to server, process health
// reporting, and a pprof debug mux. Everything here is stdlib-only so it
// can be imported from any layer (darr, store, retry, core, httpapi)
// without creating dependency cycles or pulling in third-party modules.
//
// The package is deliberately distinct from internal/metrics, which
// implements ML scoring metrics (RMSE, accuracy, ...); obs measures the
// system, internal/metrics measures the models.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync/atomic"
)

// disabled flips the whole metrics hot path off; the zero value means
// enabled. Kept package-global so instrumented code pays one atomic load
// when telemetry is off (see BenchmarkObsOverhead).
var disabled atomic.Bool

// SetEnabled turns metric collection on or off process-wide. Logging is
// unaffected; use the slog level for that.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether metric collection is on.
func Enabled() bool { return !disabled.Load() }

// ParseLevel maps a flag value to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
	}
}

// NewLogger builds a slog logger writing to w in the given format
// ("text" or "json") at the given level.
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
}

// SetupDefaultLogger configures the process-wide slog default from flag
// values: level is debug|info|warn|error, format is text|json. Output
// goes to stderr so stdout stays clean for command results.
func SetupDefaultLogger(level, format string) error {
	lv, err := ParseLevel(level)
	if err != nil {
		return err
	}
	logger, err := NewLogger(os.Stderr, lv, format)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	return nil
}

// DebugMux returns the standard debug surface served behind -debug-addr:
// net/http/pprof under /debug/pprof/, the Prometheus scrape at /metrics,
// and the process health report at /healthz.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", MetricsHandler())
	mux.Handle("/healthz", HealthHandler(nil))
	return mux
}
