package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_counter_total")
	g := r.Gauge("test_gauge")
	h := r.Histogram("test_hist_seconds", []float64{0.01, 0.1, 1})

	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%3) * 0.05)
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count %d, want %d", got, workers*perWorker)
	}
	// Every observation was 0, 0.05 or 0.1: all fall in the first two
	// buckets, so the +Inf bucket adds nothing beyond them.
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `test_hist_seconds_bucket{le="+Inf"} 16000`) {
		t.Fatalf("missing +Inf bucket:\n%s", buf.String())
	}
}

func TestPrometheusGoldenOutput(t *testing.T) {
	r := NewRegistry()
	r.Help("app_requests_total", "Total requests.")
	r.Counter(`app_requests_total{code="200"}`).Add(7)
	r.Counter(`app_requests_total{code="500"}`).Add(2)
	r.Gauge("app_temperature").Set(36.6)
	h := r.Histogram("app_latency_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	want := `# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 1
app_latency_seconds_bucket{le="1"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 5.55
app_latency_seconds_count 3
# HELP app_requests_total Total requests.
# TYPE app_requests_total counter
app_requests_total{code="200"} 7
app_requests_total{code="500"} 2
# TYPE app_temperature gauge
app_temperature 36.6
`
	if got := buf.String(); got != want {
		t.Fatalf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabeledHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`rt_seconds{route="a"}`, []float64{1})
	h.Observe(0.5)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`rt_seconds_bucket{route="a",le="1"} 1`,
		`rt_seconds_bucket{route="a",le="+Inf"} 1`,
		`rt_seconds_sum{route="a"} 0.5`,
		`rt_seconds_count{route="a"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestGetOrCreateReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x_total") != r.Counter("x_total") {
		t.Fatal("counter not deduplicated")
	}
	if r.Histogram("h_seconds", nil) != r.Histogram("h_seconds", []float64{1, 2}) {
		t.Fatal("histogram not deduplicated")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("same_name")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on kind mismatch")
		}
	}()
	r.Gauge("same_name")
}

func TestMalformedNamePanics(t *testing.T) {
	for _, name := range []string{"", "1bad", "has space", `unclosed{label="x"`, `{onlylabels}`} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("want panic for %q", name)
				}
			}()
			NewRegistry().Counter(name)
		}()
	}
}

func TestSetEnabledStopsCollection(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("toggle_total")
	SetEnabled(false)
	c.Inc()
	SetEnabled(true)
	if c.Value() != 0 {
		t.Fatal("counter incremented while disabled")
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("counter dead after re-enable")
	}
}

func TestRequestIDHelpers(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Fatalf("bad ids %q %q", a, b)
	}
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Fatal("empty context has id")
	}
	ctx, id := EnsureRequestID(ctx)
	if id == "" || RequestID(ctx) != id {
		t.Fatalf("ensure: %q vs %q", id, RequestID(ctx))
	}
	ctx2, id2 := EnsureRequestID(ctx)
	if id2 != id || ctx2 != ctx {
		t.Fatal("ensure regenerated an existing id")
	}
}

// TestRequestIDPropagation drives a full httptest round trip through the
// middleware: the client's header id reaches the handler context, is
// echoed on the response, and lands in the server log.
func TestRequestIDPropagation(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))

	var seen string
	ts := httptest.NewServer(Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
		w.WriteHeader(http.StatusNoContent)
	}), logger))
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/x", nil)
	req.Header.Set(RequestIDHeader, "feedfacecafebeef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if seen != "feedfacecafebeef" {
		t.Fatalf("handler saw id %q", seen)
	}
	if got := resp.Header.Get(RequestIDHeader); got != "feedfacecafebeef" {
		t.Fatalf("echoed id %q", got)
	}
	if !strings.Contains(logBuf.String(), "request_id=feedfacecafebeef") {
		t.Fatalf("server log missing id:\n%s", logBuf.String())
	}

	// Without a header the middleware generates one.
	resp, err = http.Get(ts.URL + "/y")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Fatal("no generated id echoed")
	}
}

func TestHealthHandler(t *testing.T) {
	RegisterHealth("test-component", func() any { return map[string]int{"n": 42} })
	defer UnregisterHealth("test-component")

	rr := httptest.NewRecorder()
	HealthHandler(map[string]func() any{
		"extra": func() any { return "here" },
	}).ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))

	var reply HealthReply
	if err := json.NewDecoder(rr.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Status != "ok" || reply.UptimeSeconds <= 0 {
		t.Fatalf("reply %+v", reply)
	}
	if reply.Build["go_version"] == "" {
		t.Fatal("missing go_version")
	}
	if _, ok := reply.Components["test-component"]; !ok {
		t.Fatal("missing registered component")
	}
	if reply.Components["extra"] != "here" {
		t.Fatal("missing extra component")
	}
}

func TestDebugMuxServesPprofAndMetrics(t *testing.T) {
	ts := httptest.NewServer(DebugMux())
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/metrics", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Fatalf("%s: status %d, %d bytes", path, resp.StatusCode, len(body))
		}
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError, "": slog.LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("want error for unknown level")
	}
	if _, err := NewLogger(io.Discard, slog.LevelInfo, "yaml"); err == nil {
		t.Fatal("want error for unknown format")
	}
}
