package trace

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Summary is one row of the /debug/traces JSON listing.
type Summary struct {
	TraceID      string    `json:"trace_id"`
	Root         string    `json:"root"`
	Start        time.Time `json:"start"`
	DurationMS   float64   `json:"duration_ms"`
	Spans        int       `json:"spans"`
	RootChildren int       `json:"root_children"`
	Remote       bool      `json:"remote"`
	Dropped      int       `json:"dropped,omitempty"`
}

// Handler serves the default recorder at /debug/traces.
func Handler() http.Handler { return DefaultRecorder().Handler() }

// Handler serves the recorder's contents: a JSON listing of recorded
// fragments (newest first), or a plain-text waterfall of one trace's
// merged fragments with ?id=<trace id>.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if id := req.URL.Query().Get("id"); id != "" {
			r.serveWaterfall(w, id)
			return
		}
		out := make([]Summary, 0, r.Len())
		for _, t := range r.Traces() {
			children := 0
			for _, s := range t.Spans {
				if s.Parent == t.Root.ID {
					children++
				}
			}
			out = append(out, Summary{
				TraceID:      t.TraceID.String(),
				Root:         t.Root.Name,
				Start:        t.Root.Start,
				DurationMS:   float64(t.Root.Duration()) / float64(time.Millisecond),
				Spans:        len(t.Spans),
				RootChildren: children,
				Remote:       t.Root.Remote,
				Dropped:      t.Dropped,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}

func (r *Recorder) serveWaterfall(w http.ResponseWriter, idHex string) {
	var id TraceID
	if len(idHex) != 32 {
		http.Error(w, "bad trace id", http.StatusBadRequest)
		return
	}
	if _, err := hex.Decode(id[:], []byte(idHex)); err != nil {
		http.Error(w, "bad trace id", http.StatusBadRequest)
		return
	}
	frags := r.Get(id)
	if len(frags) == 0 {
		http.Error(w, "trace not found", http.StatusNotFound)
		return
	}
	var spans []SpanData
	for _, f := range frags {
		spans = append(spans, f.Spans...)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "trace %s (%d fragments, %d spans)\n", idHex, len(frags), len(spans))
	writeWaterfall(w, spans)
}

// writeWaterfall renders the span forest as an indented tree with
// offsets relative to the earliest span, one line per span.
func writeWaterfall(w http.ResponseWriter, spans []SpanData) {
	if len(spans) == 0 {
		return
	}
	epoch := spans[0].Start
	byID := make(map[SpanID]bool, len(spans))
	for _, s := range spans {
		byID[s.ID] = true
		if s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	children := map[SpanID][]int{}
	var roots []int
	for i, s := range spans {
		if !s.Parent.IsZero() && byID[s.Parent] {
			children[s.Parent] = append(children[s.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	byStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool { return spans[idx[a]].Start.Before(spans[idx[b]].Start) })
	}
	byStart(roots)
	var walk func(i, depth int)
	walk = func(i, depth int) {
		s := spans[i]
		line := fmt.Sprintf("%10s %10s  %s%s",
			"+"+s.Start.Sub(epoch).Round(time.Microsecond).String(),
			s.Duration().Round(time.Microsecond),
			strings.Repeat("  ", depth), s.Name)
		if s.Component != "" {
			line += " [" + s.Component + "]"
		}
		if s.Remote {
			line += " (remote parent)"
		}
		for _, a := range s.Attrs {
			line += " " + a.Key + "=" + a.Value
		}
		fmt.Fprintln(w, line)
		for _, e := range s.Events {
			ev := fmt.Sprintf("%10s %10s  %s· %s",
				"+"+e.At.Sub(epoch).Round(time.Microsecond).String(), "",
				strings.Repeat("  ", depth+1), e.Name)
			for _, a := range e.Attrs {
				ev += " " + a.Key + "=" + a.Value
			}
			fmt.Fprintln(w, ev)
		}
		kids := children[s.ID]
		byStart(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, i := range roots {
		walk(i, 0)
	}
}
