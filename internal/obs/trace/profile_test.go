package trace

import (
	"context"
	"testing"
	"time"
)

// mkSpan builds a component-tagged span covering [lo, hi) milliseconds
// after epoch.
func mkSpan(epoch time.Time, comp string, lo, hi int) SpanData {
	return SpanData{
		Name:      comp,
		Component: comp,
		Start:     epoch.Add(time.Duration(lo) * time.Millisecond),
		End:       epoch.Add(time.Duration(hi) * time.Millisecond),
	}
}

func TestComputeProfileSumsToTotal(t *testing.T) {
	epoch := time.Unix(0, 0)
	end := epoch.Add(100 * time.Millisecond)
	spans := []SpanData{
		mkSpan(epoch, CompCompute, 0, 30),
		mkSpan(epoch, CompDARRWait, 20, 50), // overlaps compute 20-30: compute wins
		mkSpan(epoch, CompQueue, 40, 60),    // overlaps darr 40-50: darr wins
		mkSpan(epoch, CompStoreWait, 70, 80),
		{Name: "structural", Start: epoch, End: end}, // untagged: ignored
	}
	p := ComputeProfile(epoch, end, spans)
	if p.Total != 100*time.Millisecond {
		t.Fatalf("total = %v", p.Total)
	}
	wants := map[string]time.Duration{
		CompCompute:   30 * time.Millisecond,
		CompDARRWait:  20 * time.Millisecond, // 30-50
		CompQueue:     10 * time.Millisecond, // 50-60
		CompStoreWait: 10 * time.Millisecond, // 70-80
		CompOther:     30 * time.Millisecond, // 60-70 + 80-100 + nothing before 0
	}
	var sum time.Duration
	for comp, want := range wants {
		if got := p.Component(comp); got != want {
			t.Errorf("%s = %v, want %v", comp, got, want)
		}
	}
	for _, d := range p.Components {
		sum += d
	}
	if sum != p.Total {
		t.Fatalf("components sum to %v, want exactly total %v", sum, p.Total)
	}
}

func TestComputeProfileClipsToWindow(t *testing.T) {
	epoch := time.Unix(0, 0)
	end := epoch.Add(50 * time.Millisecond)
	spans := []SpanData{
		mkSpan(epoch, CompCompute, -20, 10), // starts before the window
		mkSpan(epoch, CompDARRWait, 40, 90), // ends after the window
		mkSpan(epoch, CompQueue, 60, 70),    // entirely outside
	}
	p := ComputeProfile(epoch, end, spans)
	if got := p.Component(CompCompute); got != 10*time.Millisecond {
		t.Errorf("compute = %v, want 10ms", got)
	}
	if got := p.Component(CompDARRWait); got != 10*time.Millisecond {
		t.Errorf("darr_wait = %v, want 10ms", got)
	}
	if got := p.Component(CompQueue); got != 0 {
		t.Errorf("queue = %v, want 0", got)
	}
	if got := p.Component(CompOther); got != 30*time.Millisecond {
		t.Errorf("other = %v, want 30ms", got)
	}
}

func TestComputeProfileOverlappingSameComponent(t *testing.T) {
	// Two concurrent compute spans must not double-count the overlap.
	epoch := time.Unix(0, 0)
	end := epoch.Add(40 * time.Millisecond)
	spans := []SpanData{
		mkSpan(epoch, CompCompute, 0, 30),
		mkSpan(epoch, CompCompute, 10, 40),
	}
	p := ComputeProfile(epoch, end, spans)
	if got := p.Component(CompCompute); got != 40*time.Millisecond {
		t.Errorf("compute = %v, want 40ms (no double counting)", got)
	}
	if got := p.Component(CompOther); got != 0 {
		t.Errorf("other = %v, want 0", got)
	}
}

func TestComputeProfileEmpty(t *testing.T) {
	epoch := time.Unix(0, 0)
	p := ComputeProfile(epoch, epoch, nil)
	if p.Total != 0 || len(p.Components) != 0 {
		t.Fatalf("empty window profile = %+v", p)
	}
	p = ComputeProfile(epoch, epoch.Add(time.Second), nil)
	if p.Component(CompOther) != time.Second {
		t.Fatalf("no spans: other = %v, want 1s", p.Component(CompOther))
	}
}

func TestSpanProfileLive(t *testing.T) {
	swapRecorder(t, 4)
	ctx, root := Start(context.Background(), "op")
	_, c := Start(ctx, "work")
	c.SetComponent(CompCompute)
	time.Sleep(2 * time.Millisecond)
	c.End()
	p := root.Profile()
	root.End()
	if p.Total <= 0 {
		t.Fatalf("live profile total = %v", p.Total)
	}
	if p.Component(CompCompute) <= 0 {
		t.Fatalf("live profile compute = %v", p.Component(CompCompute))
	}
	var sum time.Duration
	for _, d := range p.Components {
		sum += d
	}
	if sum != p.Total {
		t.Fatalf("live profile components sum %v != total %v", sum, p.Total)
	}
}
