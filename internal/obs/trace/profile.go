package trace

import (
	"sort"
	"time"
)

// Component labels for the critical-path analyzer. Spans tagged with one
// of these (via SetComponent) claim the wall-clock intervals they cover;
// untagged spans are structural and claim nothing.
const (
	CompCompute   = "compute"    // fold fits, refits, scoring
	CompDARRWait  = "darr_wait"  // DARR lookups, claims, publishes in flight
	CompStoreWait = "store_wait" // object-store pulls/puts in flight
	CompQueue     = "queue"      // waiting for a worker slot
	CompOther     = "other"      // root time covered by no tagged span
)

// Components lists every component label in precedence order: when
// tagged spans overlap, the earlier label wins the overlap. Compute
// outranks the waits because communication only matters to the critical
// path when nothing is computing; queue ranks last because a queued unit
// overlapping any real work was not the bottleneck.
var Components = []string{CompCompute, CompDARRWait, CompStoreWait, CompQueue, CompOther}

// Profile attributes one operation's wall time to components. The
// component durations (including Other) sum exactly to Total.
type Profile struct {
	Total      time.Duration
	Components map[string]time.Duration
}

// Component returns the time attributed to one component label.
func (p Profile) Component(name string) time.Duration { return p.Components[name] }

// ComputeProfile sweeps the component-tagged spans across [start, end),
// attributing each instant to the highest-precedence component active
// then, and the uncovered remainder to CompOther. Spans are clipped to
// the window; untagged spans are ignored.
func ComputeProfile(start, end time.Time, spans []SpanData) Profile {
	p := Profile{Components: map[string]time.Duration{}}
	if !end.After(start) {
		return p
	}
	p.Total = end.Sub(start)

	rank := map[string]int{CompCompute: 0, CompDARRWait: 1, CompStoreWait: 2, CompQueue: 3}
	type edge struct {
		at    int64 // ns offset from start
		comp  int
		delta int
	}
	total := int64(p.Total)
	var edges []edge
	for _, s := range spans {
		ri, ok := rank[s.Component]
		if !ok {
			continue
		}
		lo := int64(s.Start.Sub(start))
		hi := int64(s.End.Sub(start))
		if lo < 0 {
			lo = 0
		}
		if hi > total {
			hi = total
		}
		if hi <= lo {
			continue
		}
		edges = append(edges, edge{lo, ri, 1}, edge{hi, ri, -1})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].at < edges[j].at })

	var active [4]int
	covered := int64(0)
	sums := [4]int64{}
	prev := int64(0)
	i := 0
	for i < len(edges) {
		at := edges[i].at
		if at > prev {
			for c := 0; c < 4; c++ {
				if active[c] > 0 {
					sums[c] += at - prev
					covered += at - prev
					break
				}
			}
			prev = at
		}
		for i < len(edges) && edges[i].at == at {
			active[edges[i].comp] += edges[i].delta
			i++
		}
	}
	for c, name := range []string{CompCompute, CompDARRWait, CompStoreWait, CompQueue} {
		if sums[c] > 0 {
			p.Components[name] = time.Duration(sums[c])
		}
	}
	p.Components[CompOther] = time.Duration(total - covered)
	return p
}

// Profile computes the critical-path breakdown of the span's trace
// fragment so far, using the span's start and the current time as the
// window (call it just before End on the root span). Returns a zero
// profile on a nil span.
func (s *Span) Profile() Profile {
	if s == nil {
		return Profile{}
	}
	s.mu.Lock()
	start := s.data.Start
	s.mu.Unlock()
	spans, _ := s.st.snapshot()
	return ComputeProfile(start, time.Now(), spans)
}
