package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCapacity is the default number of completed trace fragments the
// ring recorder retains.
const DefaultCapacity = 256

// TraceData is one recorded trace fragment: the spans that ran in this
// process for one trace, plus the fragment's local root. A trace that
// crossed N processes has up to N fragments, one per process; Get merges
// the local ones (useful in tests and single-binary deployments).
type TraceData struct {
	TraceID  TraceID
	Root     SpanData
	Spans    []SpanData
	Dropped  int
	Recorded time.Time
}

// Recorder is a bounded ring of completed trace fragments: constant
// memory, newest wins, safe for concurrent writers.
type Recorder struct {
	mu   sync.Mutex
	buf  []*TraceData
	next int
	n    int
}

// NewRecorder builds a ring recorder holding up to capacity fragments
// (DefaultCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]*TraceData, capacity)}
}

// Record adds a completed fragment, evicting the oldest when full.
func (r *Recorder) Record(t *TraceData) {
	if t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len returns the number of fragments currently held.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Traces returns the held fragments, newest first.
func (r *Recorder) Traces() []*TraceData {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*TraceData, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Get returns every held fragment of one trace, oldest first.
func (r *Recorder) Get(id TraceID) []*TraceData {
	all := r.Traces()
	var out []*TraceData
	for i := len(all) - 1; i >= 0; i-- {
		if all[i].TraceID == id {
			out = append(out, all[i])
		}
	}
	return out
}

var defaultRecorder = func() *atomic.Pointer[Recorder] {
	p := new(atomic.Pointer[Recorder])
	p.Store(NewRecorder(DefaultCapacity))
	return p
}()

// DefaultRecorder returns the process-wide recorder that local roots
// report to on End.
func DefaultRecorder() *Recorder { return defaultRecorder.Load() }

// SetDefaultRecorder swaps the process-wide recorder (e.g. to resize the
// ring from a -trace-ring flag) and returns the previous one.
func SetDefaultRecorder(r *Recorder) *Recorder {
	if r == nil {
		r = NewRecorder(DefaultCapacity)
	}
	return defaultRecorder.Swap(r)
}
