package trace

import (
	"context"
	"encoding/binary"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// swapRecorder installs a fresh recorder for one test and restores the
// previous one afterwards.
func swapRecorder(t *testing.T, capacity int) *Recorder {
	t.Helper()
	r := NewRecorder(capacity)
	prev := SetDefaultRecorder(r)
	t.Cleanup(func() { SetDefaultRecorder(prev) })
	return r
}

func TestSpanHierarchyAndRecording(t *testing.T) {
	rec := swapRecorder(t, 16)

	ctx, root := Start(context.Background(), "root")
	if root == nil {
		t.Fatal("Start returned nil span with tracing enabled")
	}
	cctx, child := Start(ctx, "child", String("k", "v"))
	_, grand := Start(cctx, "grandchild")
	grand.End()
	child.End()
	if rec.Len() != 0 {
		t.Fatalf("trace recorded before local root ended: %d", rec.Len())
	}
	root.End()

	traces := rec.Traces()
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(traces))
	}
	td := traces[0]
	if td.TraceID != root.TraceID() {
		t.Fatalf("trace id mismatch")
	}
	if len(td.Spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(td.Spans))
	}
	byName := map[string]SpanData{}
	for _, s := range td.Spans {
		byName[s.Name] = s
	}
	if byName["child"].Parent != root.ID() {
		t.Errorf("child parent = %v, want root %v", byName["child"].Parent, root.ID())
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Errorf("grandchild parent = %v, want child %v", byName["grandchild"].Parent, byName["child"].ID)
	}
	if byName["root"].Parent != (SpanID{}) {
		t.Errorf("root should have no parent, got %v", byName["root"].Parent)
	}
	for _, s := range td.Spans {
		if s.TraceID != root.TraceID() {
			t.Errorf("span %s has trace id %v, want %v", s.Name, s.TraceID, root.TraceID())
		}
	}
	if got := byName["child"].Attrs[0]; got.Key != "k" || got.Value != "v" {
		t.Errorf("child attr = %+v", got)
	}
}

func TestEndIdempotent(t *testing.T) {
	rec := swapRecorder(t, 4)
	_, sp := Start(context.Background(), "once")
	sp.End()
	sp.End()
	sp.End()
	if rec.Len() != 1 {
		t.Fatalf("double End recorded %d traces, want 1", rec.Len())
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	rec := swapRecorder(t, 16)

	ctx, parent := Start(context.Background(), "client-call")
	h := http.Header{}
	Inject(ctx, h)
	v := h.Get(Header)
	want := parent.TraceID().String() + "-" + parent.ID().String() + "-01"
	if v != want {
		t.Fatalf("injected header %q, want %q", v, want)
	}

	// The receiving process extracts and starts its own local root.
	srvCtx := Extract(context.Background(), h)
	_, srv := Start(srvCtx, "server-side")
	srv.End()
	parent.End()

	frags := rec.Get(parent.TraceID())
	if len(frags) != 2 {
		t.Fatalf("got %d fragments, want 2 (server + client)", len(frags))
	}
	var serverFrag *TraceData
	for _, f := range frags {
		if f.Root.Name == "server-side" {
			serverFrag = f
		}
	}
	if serverFrag == nil {
		t.Fatal("server fragment not recorded")
	}
	if !serverFrag.Root.Remote {
		t.Error("server root should be marked Remote")
	}
	if serverFrag.Root.Parent != parent.ID() {
		t.Errorf("server root parent = %v, want client span %v", serverFrag.Root.Parent, parent.ID())
	}
	if serverFrag.TraceID != parent.TraceID() {
		t.Errorf("server fragment trace id = %v, want %v", serverFrag.TraceID, parent.TraceID())
	}
}

func TestExtractMalformedHeader(t *testing.T) {
	for _, v := range []string{
		"",
		"short",
		strings.Repeat("z", 32) + "-" + strings.Repeat("0", 16) + "-01", // bad hex
		strings.Repeat("0", 32) + "-" + strings.Repeat("a", 16) + "-01", // zero trace id
		strings.Repeat("a", 32) + "x" + strings.Repeat("a", 16) + "-01", // bad separator
	} {
		h := http.Header{}
		if v != "" {
			h.Set(Header, v)
		}
		ctx := Extract(context.Background(), h)
		if _, ok := ctx.Value(remoteKey{}).(remoteParent); ok {
			t.Errorf("Extract accepted malformed header %q", v)
		}
	}
}

func TestSamplingDeterministic(t *testing.T) {
	defer SetSampleRate(1)

	mkID := func(u uint64) TraceID {
		var id TraceID
		binary.BigEndian.PutUint64(id[:8], u)
		id[15] = 1
		return id
	}
	SetSampleRate(0.5)
	ids := []TraceID{mkID(0), mkID(1 << 62), mkID(1 << 63), mkID(^uint64(0))}
	first := make([]bool, len(ids))
	for i, id := range ids {
		first[i] = sampled(id)
		for rep := 0; rep < 10; rep++ {
			if sampled(id) != first[i] {
				t.Fatalf("sampling decision for id %v not deterministic", id)
			}
		}
	}
	// At rate 0.5 the decision is "first 8 bytes below 2^63".
	wants := []bool{true, true, false, false}
	for i := range ids {
		if first[i] != wants[i] {
			t.Errorf("sampled(id[%d]) = %v, want %v", i, first[i], wants[i])
		}
	}
	SetSampleRate(1)
	for _, id := range ids {
		if !sampled(id) {
			t.Error("rate 1 must keep every trace")
		}
	}
	SetSampleRate(0)
	for _, id := range ids {
		if sampled(id) {
			t.Error("rate 0 must drop every trace")
		}
	}
}

func TestHeadSamplingDropsAndSlowCaptureKeeps(t *testing.T) {
	rec := swapRecorder(t, 16)
	SetSampleRate(0)
	defer SetSampleRate(1)

	// Not sampled, fast: dropped.
	SetSlowThreshold(time.Hour)
	_, sp := Start(context.Background(), "fast")
	sp.End()
	if rec.Len() != 0 {
		t.Fatalf("unsampled fast trace was recorded")
	}

	// Not sampled, but slower than the threshold: tail capture keeps it.
	SetSlowThreshold(time.Nanosecond)
	defer SetSlowThreshold(500 * time.Millisecond)
	_, sp = Start(context.Background(), "slow")
	time.Sleep(time.Millisecond)
	sp.End()
	if rec.Len() != 1 {
		t.Fatalf("slow trace was not tail-captured")
	}
}

func TestSampledFlagPropagates(t *testing.T) {
	rec := swapRecorder(t, 16)
	SetSampleRate(0)
	SetSlowThreshold(0)
	defer func() {
		SetSampleRate(1)
		SetSlowThreshold(500 * time.Millisecond)
	}()

	// An unsampled client span propagates flags "00"; the server fragment
	// must agree and drop too.
	ctx, parent := Start(context.Background(), "client")
	h := http.Header{}
	Inject(ctx, h)
	if got := h.Get(Header); !strings.HasSuffix(got, "-00") {
		t.Fatalf("unsampled header = %q, want -00 suffix", got)
	}
	_, srv := Start(Extract(context.Background(), h), "server")
	srv.End()
	parent.End()
	if rec.Len() != 0 {
		t.Fatalf("unsampled trace fragments recorded: %d", rec.Len())
	}
}

func TestDisabledTracerIsNoop(t *testing.T) {
	rec := swapRecorder(t, 16)
	SetEnabled(false)
	defer SetEnabled(true)

	ctx, sp := Start(context.Background(), "off")
	if sp != nil {
		t.Fatal("Start must return nil span when disabled")
	}
	// Every method must tolerate the nil span.
	sp.SetComponent(CompCompute)
	sp.SetAttr(String("k", "v"))
	sp.AddEvent("e")
	sp.End()
	Annotate(ctx, Int("n", 1))
	AddEvent(ctx, "evt")
	Inject(ctx, http.Header{})
	if p := sp.Profile(); p.Total != 0 {
		t.Errorf("nil span profile = %+v", p)
	}
	if rec.Len() != 0 {
		t.Fatalf("disabled tracer recorded %d traces", rec.Len())
	}
}

func TestDisabledTracerZeroAllocs(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	ctx := context.Background()
	h := http.Header{}
	// Attr constructors build a variadic slice at the call site before
	// Start can bail, so hot paths guard attrs behind Enabled(); the
	// attr-less span lifecycle itself must be allocation-free.
	allocs := testing.AllocsPerRun(100, func() {
		sctx, sp := Start(ctx, "off")
		sp.SetComponent(CompCompute)
		sp.End()
		Inject(sctx, h)
		_ = Extract(sctx, h)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %v per op, want 0", allocs)
	}
}

func TestRecorderEvictionConcurrent(t *testing.T) {
	const capacity = 8
	rec := NewRecorder(capacity)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var id TraceID
				binary.BigEndian.PutUint64(id[:8], uint64(w*1000+i+1))
				rec.Record(&TraceData{
					TraceID: id,
					Root:    SpanData{TraceID: id, Name: fmt.Sprintf("t-%d-%d", w, i)},
				})
			}
		}()
	}
	wg.Wait()
	if got := rec.Len(); got != capacity {
		t.Fatalf("ring holds %d traces, want capacity %d", got, capacity)
	}
	traces := rec.Traces()
	if len(traces) != capacity {
		t.Fatalf("Traces returned %d, want %d", len(traces), capacity)
	}
	for _, td := range traces {
		if td == nil || td.TraceID.IsZero() {
			t.Fatal("ring returned nil or zero-id trace after concurrent writes")
		}
	}
}

func TestSpanCapBoundsMemory(t *testing.T) {
	rec := swapRecorder(t, 4)
	ctx, root := Start(context.Background(), "big")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, sp := Start(ctx, "child")
		sp.End()
	}
	root.End()
	td := rec.Traces()[0]
	if len(td.Spans) != maxSpansPerTrace {
		t.Fatalf("trace holds %d spans, want cap %d", len(td.Spans), maxSpansPerTrace)
	}
	// 10 extra children plus the root (which ended after the cap filled).
	if td.Dropped != 11 {
		t.Fatalf("dropped = %d, want 11", td.Dropped)
	}
}

func TestHandlerListAndWaterfall(t *testing.T) {
	rec := swapRecorder(t, 16)
	ctx, root := Start(context.Background(), "req")
	_, c1 := Start(ctx, "step-one")
	c1.SetComponent(CompCompute)
	c1.End()
	_, c2 := Start(ctx, "step-two", String("key", "val"))
	c2.End()
	root.End()

	// JSON listing.
	rr := httptest.NewRecorder()
	rec.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("list status %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{root.TraceID().String(), `"root": "req"`, `"spans": 3`, `"root_children": 2`} {
		if !strings.Contains(body, want) {
			t.Errorf("listing missing %q in %s", want, body)
		}
	}

	// Waterfall.
	rr = httptest.NewRecorder()
	rec.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/traces?id="+root.TraceID().String(), nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("waterfall status %d", rr.Code)
	}
	wf := rr.Body.String()
	for _, want := range []string{"req", "  step-one [compute]", "  step-two", "key=val"} {
		if !strings.Contains(wf, want) {
			t.Errorf("waterfall missing %q in:\n%s", want, wf)
		}
	}

	// Unknown trace id.
	rr = httptest.NewRecorder()
	rec.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/traces?id="+strings.Repeat("0", 32), nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("unknown trace status %d, want 404", rr.Code)
	}
}
