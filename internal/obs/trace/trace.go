// Package trace is the hierarchical tracing layer for the cooperative
// analytics stack. A cooperative search interleaves local compute (fold
// fits, prefix-cache hits) with WAN round trips (DARR batch lookups and
// claims, object-store pulls); flat request ids and aggregate histograms
// cannot answer "where did *this* slow search spend its time?". This
// package can: spans carry trace/span/parent ids through context, hop
// processes via an X-Coda-Traceparent header (the server adopts the
// caller's span as parent), and completed traces land in a bounded ring
// recorder served at /debug/traces. A critical-path analyzer (profile.go)
// attributes each trace's wall time to compute vs communication.
//
// Like the parent obs package everything here is stdlib-only, so it can
// be imported from any layer (core, httpapi, darr, store, retry,
// replication) without cycles. obs.SetEnabled(false) turns the tracer
// into a zero-allocation no-op: Start returns a nil *Span whose methods
// are all nil-safe.
package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"coda/internal/obs"
)

// Header carries trace context between cooperative nodes, modeled on the
// W3C traceparent format: <32 hex trace id>-<16 hex span id>-<2 hex
// flags>, where flag bit 0 means the trace was head-sampled at its root.
const Header = "X-Coda-Traceparent"

// maxSpansPerTrace bounds one trace's in-memory span buffer; spans past
// the cap are counted in TraceData.Dropped instead of stored, so a
// runaway search cannot hold unbounded memory.
const maxSpansPerTrace = 2048

// TraceID identifies one logical operation across processes.
type TraceID [16]byte

// String renders the id as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the id is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// SpanID identifies one span within a trace.
type SpanID [8]byte

// String renders the id as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the id is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// Attr is one key/value annotation on a span or event. Values are
// strings so the hot path never reflects; use the typed constructors.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Int64 builds an int64 attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// Duration builds a duration attribute.
func Duration(k string, d time.Duration) Attr { return Attr{Key: k, Value: d.String()} }

// Event is a timestamped annotation inside a span (e.g. one retry
// backoff of a client call).
type Event struct {
	Name  string    `json:"name"`
	At    time.Time `json:"at"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// SpanData is the immutable record of a finished span.
type SpanData struct {
	TraceID TraceID
	ID      SpanID
	Parent  SpanID
	// Remote marks a local-root span whose parent lives in another
	// process (adopted from the propagation header).
	Remote bool
	Name   string
	// Component classifies the span for the critical-path analyzer:
	// one of the Comp* constants, or empty for structural spans.
	Component string
	Start     time.Time
	End       time.Time
	Attrs     []Attr
	Events    []Event
}

// Duration returns the span's elapsed time.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// traceState is the per-process fragment of one trace: every span that
// started here shares it and appends itself on End.
type traceState struct {
	id      TraceID
	sampled bool

	mu      sync.Mutex
	spans   []SpanData
	dropped int
}

func (st *traceState) add(d SpanData) {
	st.mu.Lock()
	if len(st.spans) < maxSpansPerTrace {
		st.spans = append(st.spans, d)
	} else {
		st.dropped++
	}
	st.mu.Unlock()
}

func (st *traceState) snapshot() ([]SpanData, int) {
	st.mu.Lock()
	spans := make([]SpanData, len(st.spans))
	copy(spans, st.spans)
	dropped := st.dropped
	st.mu.Unlock()
	return spans, dropped
}

// Span is one timed operation in a trace. A nil *Span (returned by Start
// when tracing is off) is a valid receiver for every method.
type Span struct {
	st *traceState
	// localRoot marks the first span of this process's fragment; its End
	// decides whether the fragment is kept (sampled or slow) and hands it
	// to the recorder.
	localRoot bool

	mu    sync.Mutex
	data  SpanData
	ended bool
}

type spanKey struct{}

type remoteParent struct {
	traceID TraceID
	spanID  SpanID
	sampled bool
}

type remoteKey struct{}

// tracer on/off switch independent of obs.SetEnabled, so benchmarks can
// price tracing alone; the zero value means enabled.
var traceDisabled atomic.Bool

// SetEnabled turns span creation on or off process-wide (metrics are
// unaffected; obs.SetEnabled turns off both).
func SetEnabled(on bool) { traceDisabled.Store(!on) }

// Enabled reports whether spans are being created: both the obs layer
// and the tracer itself must be on.
func Enabled() bool { return obs.Enabled() && !traceDisabled.Load() }

// sampleBits holds the head-sampling rate as float64 bits (default 1:
// keep every trace, appropriate for small deployments and tests; large
// fleets dial it down with -trace-sample).
var sampleBits = func() *atomic.Uint64 {
	v := new(atomic.Uint64)
	v.Store(math.Float64bits(1))
	return v
}()

// slowNanos holds the always-keep-slow threshold (default 500ms).
var slowNanos = func() *atomic.Int64 {
	v := new(atomic.Int64)
	v.Store(int64(500 * time.Millisecond))
	return v
}()

// SetSampleRate sets the fraction of traces kept by head sampling,
// clamped to [0, 1]. The decision is a deterministic function of the
// trace id, so every process in a trace's path agrees with the root.
func SetSampleRate(r float64) {
	if r < 0 || math.IsNaN(r) {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	sampleBits.Store(math.Float64bits(r))
}

// SampleRate returns the current head-sampling rate.
func SampleRate() float64 { return math.Float64frombits(sampleBits.Load()) }

// SetSlowThreshold sets the duration at or above which a local root is
// recorded even when head sampling dropped the trace — the tail-capture
// path. Zero or negative disables slow capture.
func SetSlowThreshold(d time.Duration) { slowNanos.Store(int64(d)) }

// SlowThreshold returns the always-keep-slow threshold.
func SlowThreshold() time.Duration { return time.Duration(slowNanos.Load()) }

// sampled is the deterministic head-sampling decision: the trace id's
// leading 8 bytes, read as a fraction of 2^64, fall under the rate.
func sampled(id TraceID) bool {
	rate := SampleRate()
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	u := binary.BigEndian.Uint64(id[:8])
	return float64(u) < rate*math.MaxUint64
}

// Span ids mix a per-process random base with an atomic counter: unique
// without a syscall per span.
var (
	idCounter atomic.Uint64
	idBase    = func() uint64 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err != nil {
			return uint64(time.Now().UnixNano())
		}
		return binary.BigEndian.Uint64(b[:])
	}()
)

func newTraceID() TraceID {
	var t TraceID
	if _, err := crand.Read(t[:]); err != nil {
		binary.BigEndian.PutUint64(t[:8], idBase)
		binary.BigEndian.PutUint64(t[8:], idCounter.Add(1)*0x9e3779b97f4a7c15)
	}
	return t
}

func newSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], idBase^(idCounter.Add(1)*0x9e3779b97f4a7c15))
	if s.IsZero() {
		s[7] = 1
	}
	return s
}

// FromContext returns the context's current span, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start begins a span named name as a child of the context's current
// span. With no current span it starts a new trace (or, after Extract,
// adopts the remote caller's span as parent), making this span the
// process-local root whose End records the fragment. When tracing is
// off it returns the context unchanged and a nil span — zero
// allocations, and every Span method tolerates the nil.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if !Enabled() {
		return ctx, nil
	}
	d := SpanData{Name: name, Start: time.Now(), Attrs: attrs}
	var st *traceState
	localRoot := false
	if parent := FromContext(ctx); parent != nil {
		st = parent.st
		d.TraceID = st.id
		d.Parent = parent.data.ID
	} else if rp, ok := ctx.Value(remoteKey{}).(remoteParent); ok {
		st = &traceState{id: rp.traceID, sampled: rp.sampled}
		d.TraceID = rp.traceID
		d.Parent = rp.spanID
		d.Remote = true
		localRoot = true
	} else {
		id := newTraceID()
		st = &traceState{id: id, sampled: sampled(id)}
		d.TraceID = id
		localRoot = true
	}
	d.ID = newSpanID()
	s := &Span{st: st, localRoot: localRoot, data: d}
	return context.WithValue(ctx, spanKey{}, s), s
}

// TraceID returns the span's trace id (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.data.TraceID
}

// ID returns the span's id (zero for a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.data.ID
}

// SetComponent classifies the span for the critical-path analyzer.
func (s *Span) SetComponent(c string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.data.Component = c
	}
	s.mu.Unlock()
}

// SetAttr appends annotations to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil || len(attrs) == 0 {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.data.Attrs = append(s.data.Attrs, attrs...)
	}
	s.mu.Unlock()
}

// AddEvent appends a timestamped annotation (e.g. a retry backoff).
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.data.Events = append(s.data.Events, Event{Name: name, At: time.Now(), Attrs: attrs})
	}
	s.mu.Unlock()
}

// End finishes the span and appends it to its trace fragment. Ending
// the process-local root decides the fragment's fate: kept when the
// trace was head-sampled or the root ran at least the slow threshold,
// dropped otherwise. End is idempotent and nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.End = time.Now()
	d := s.data
	s.mu.Unlock()
	s.st.add(d)
	if !s.localRoot {
		return
	}
	slow := SlowThreshold()
	if s.st.sampled || (slow > 0 && d.Duration() >= slow) {
		spans, dropped := s.st.snapshot()
		DefaultRecorder().Record(&TraceData{
			TraceID: d.TraceID, Root: d, Spans: spans, Dropped: dropped, Recorded: d.End,
		})
	}
}

// Annotate adds attributes to the context's current span, if any.
func Annotate(ctx context.Context, attrs ...Attr) { FromContext(ctx).SetAttr(attrs...) }

// AddEvent adds a timestamped event to the context's current span.
func AddEvent(ctx context.Context, name string, attrs ...Attr) {
	FromContext(ctx).AddEvent(name, attrs...)
}

// Inject writes the context's span reference into an outgoing header so
// the receiving server can adopt it as parent.
func Inject(ctx context.Context, h http.Header) {
	s := FromContext(ctx)
	if s == nil {
		return
	}
	flags := "00"
	if s.st.sampled {
		flags = "01"
	}
	h.Set(Header, s.data.TraceID.String()+"-"+s.data.ID.String()+"-"+flags)
}

// Extract reads an incoming propagation header and stashes the remote
// parent reference in the context; the next Start becomes a local root
// under the caller's span. A missing or malformed header (and a
// disabled tracer) leaves the context unchanged.
func Extract(ctx context.Context, h http.Header) context.Context {
	if !Enabled() {
		return ctx
	}
	rp, ok := parseHeader(h.Get(Header))
	if !ok {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, rp)
}

// parseHeader decodes "<32hex>-<16hex>-<2hex>"; it rejects anything
// malformed or with a zero trace id rather than guessing.
func parseHeader(v string) (remoteParent, bool) {
	const want = 32 + 1 + 16 + 1 + 2
	if len(v) != want || v[32] != '-' || v[49] != '-' {
		return remoteParent{}, false
	}
	var rp remoteParent
	if _, err := hex.Decode(rp.traceID[:], []byte(v[:32])); err != nil {
		return remoteParent{}, false
	}
	if _, err := hex.Decode(rp.spanID[:], []byte(v[33:49])); err != nil {
		return remoteParent{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(v[50:])); err != nil {
		return remoteParent{}, false
	}
	if rp.traceID.IsZero() || rp.spanID.IsZero() {
		return remoteParent{}, false
	}
	rp.sampled = flags[0]&1 != 0
	return rp, true
}
