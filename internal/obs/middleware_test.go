package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// testLogger keeps intentional panic stacks out of the test output.
func testLogger(t *testing.T) *slog.Logger {
	t.Helper()
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func TestRoutePattern(t *testing.T) {
	cases := map[string]string{
		"/":                           "root",
		"/search":                     "search",
		"/search/deep/path":           "search",
		"/Search":                     "search",
		"/debug":                      "debug",
		"/with space":                 "other",
		"/" + strings.Repeat("x", 40): "other",
		"/snake_case-ok":              "snake_case-ok",
	}
	for path, want := range cases {
		if got := RoutePattern(path); got != want {
			t.Errorf("RoutePattern(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestStatusRecorderFirstWriteWins(t *testing.T) {
	rr := httptest.NewRecorder()
	sr := NewStatusRecorder(rr)
	if sr.Status != http.StatusOK || sr.Wrote() {
		t.Fatalf("fresh recorder: status=%d wrote=%v", sr.Status, sr.Wrote())
	}
	sr.WriteHeader(http.StatusTeapot)
	sr.WriteHeader(http.StatusOK) // late second write must not relabel
	if sr.Status != http.StatusTeapot || !sr.Wrote() {
		t.Fatalf("after writes: status=%d wrote=%v", sr.Status, sr.Wrote())
	}
}

func TestMiddlewareCapturesStatus(t *testing.T) {
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}), nil)
	ctr := GetCounter(`coda_http_requests_total{route="brew",method="GET",code="418"}`)
	before := ctr.Value()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/brew/coffee", nil))

	if rr.Code != http.StatusTeapot {
		t.Fatalf("status = %d", rr.Code)
	}
	if rr.Header().Get(RequestIDHeader) == "" {
		t.Error("response missing request id header")
	}
	if got := ctr.Value(); got != before+1 {
		t.Errorf("status-labeled counter = %d, want %d", got, before+1)
	}
}

func TestMiddlewareImplicit200(t *testing.T) {
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok") // never calls WriteHeader
	}), nil)
	ctr := GetCounter(`coda_http_requests_total{route="implicit",method="GET",code="200"}`)
	before := ctr.Value()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/implicit", nil))
	if got := ctr.Value(); got != before+1 {
		t.Errorf("implicit 200 counter = %d, want %d", got, before+1)
	}
}

func TestRecoverMiddleware(t *testing.T) {
	h := Middleware(Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}), testLogger(t)), testLogger(t))
	panics := GetCounter("coda_http_panics_total")
	before := panics.Value()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/boom", nil))

	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rr.Code)
	}
	var body struct {
		Error     string `json:"error"`
		Status    int    `json:"status"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("500 body is not JSON: %v (%q)", err, rr.Body.String())
	}
	if body.Error != "internal server error" || body.Status != 500 || body.RequestID == "" {
		t.Errorf("body = %+v", body)
	}
	if got := panics.Value(); got != before+1 {
		t.Errorf("coda_http_panics_total = %d, want %d", got, before+1)
	}
	// The outer Middleware labeled the request with the recovered status.
	if GetCounter(`coda_http_requests_total{route="boom",method="GET",code="500"}`).Value() == 0 {
		t.Error("recovered 500 not visible in route metrics")
	}
}

func TestRecoverLeavesCommittedResponseAlone(t *testing.T) {
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, "partial")
		panic("late panic")
	}), testLogger(t))

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/late", nil))
	if rr.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want the committed 202", rr.Code)
	}
	if got := rr.Body.String(); got != "partial" {
		t.Errorf("body = %q; recovery must not append to a committed response", got)
	}
}
