package obs

import (
	"testing"
	"time"
)

// Micro-benchmarks for the metric hot paths: these run on every DARR
// lookup and every evaluated search unit, so they must stay in the
// nanosecond range.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", nil)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.042)
		}
	})
}

func BenchmarkHistogramObserveSince(b *testing.B) {
	h := NewRegistry().Histogram("bench_since_seconds", nil)
	start := time.Now()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(start)
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	c := NewRegistry().Counter("bench_disabled_total")
	SetEnabled(false)
	defer SetEnabled(true)
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkRegistryLookup(b *testing.B) {
	r := NewRegistry()
	r.Counter(`bench_lookup_total{route="a"}`)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Counter(`bench_lookup_total{route="a"}`).Inc()
		}
	})
}
