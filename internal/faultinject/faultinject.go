// Package faultinject simulates the unreliable wide-area network between
// Figure 1's client nodes and cloud servers: an http.RoundTripper wrapper
// (and a matching server-side middleware) that drops, delays, or answers
// 500 to a configurable fraction of requests, driven deterministically
// from a seed so failing runs replay exactly.
//
// Tests wrap a client's transport with 30% loss and assert that the
// retry/breaker layer still completes cooperative searches and
// replication with correct results.
package faultinject

import (
	"context"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Config selects the faults to inject. Fractions are probabilities in
// [0, 1] evaluated per request, in order: drop, then error, then delay.
type Config struct {
	// Seed drives the fault pattern; the same seed and request order
	// reproduce the same faults.
	Seed int64
	// DropFraction of requests never reach the server: the caller sees a
	// connection reset.
	DropFraction float64
	// ErrorFraction of requests are answered with a synthetic 500 without
	// reaching the server.
	ErrorFraction float64
	// DelayFraction of requests are held for Delay before being forwarded.
	DelayFraction float64
	// Delay is the hold applied to delayed requests (default 10ms).
	Delay time.Duration
}

// Counts reports what a Transport or Handler has done so far.
type Counts struct {
	Total, Dropped, Errored, Delayed int
}

// decider is the shared seeded coin shared by Transport and Handler.
type decider struct {
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	counts Counts
}

func newDecider(cfg Config) *decider {
	if cfg.Delay <= 0 {
		cfg.Delay = 10 * time.Millisecond
	}
	return &decider{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

type verdict int

const (
	pass verdict = iota
	drop
	fail
	delay
)

func (d *decider) decide() verdict {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.counts.Total++
	u := d.rng.Float64()
	switch {
	case u < d.cfg.DropFraction:
		d.counts.Dropped++
		return drop
	case u < d.cfg.DropFraction+d.cfg.ErrorFraction:
		d.counts.Errored++
		return fail
	case u < d.cfg.DropFraction+d.cfg.ErrorFraction+d.cfg.DelayFraction:
		d.counts.Delayed++
		return delay
	default:
		return pass
	}
}

func (d *decider) snapshot() Counts {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.counts
}

// errReset mimics what the OS reports when the peer resets the
// connection; retry.Retryable classifies it as transient.
func errReset() error {
	return &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
}

// Transport is a fault-injecting http.RoundTripper wrapper for the
// client side of the WAN.
type Transport struct {
	base http.RoundTripper
	d    *decider
}

// NewTransport wraps base (nil means http.DefaultTransport).
func NewTransport(base http.RoundTripper, cfg Config) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, d: newDecider(cfg)}
}

// Counts returns a snapshot of the injected-fault counters.
func (t *Transport) Counts() Counts { return t.d.snapshot() }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch t.d.decide() {
	case drop:
		drainBody(req)
		return nil, errReset()
	case fail:
		drainBody(req)
		return synthetic500(req), nil
	case delay:
		if err := holdFor(req.Context(), t.d.cfg.Delay); err != nil {
			drainBody(req)
			return nil, err
		}
	}
	return t.base.RoundTrip(req)
}

func drainBody(req *http.Request) {
	if req.Body != nil {
		_, _ = io.Copy(io.Discard, req.Body)
		_ = req.Body.Close()
	}
}

func holdFor(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func synthetic500(req *http.Request) *http.Response {
	body := `{"error":"faultinject: injected server error"}`
	return &http.Response{
		Status:        "500 Internal Server Error",
		StatusCode:    http.StatusInternalServerError,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// Handler is the server-side twin: chaos middleware for coda-server's
// -chaos flag, used in resilience drills against real clients. Dropped
// requests abort the connection mid-response (the client sees a reset),
// errored ones answer 500.
type Handler struct {
	next http.Handler
	d    *decider
}

// NewHandler wraps next with fault injection.
func NewHandler(next http.Handler, cfg Config) *Handler {
	return &Handler{next: next, d: newDecider(cfg)}
}

// Counts returns a snapshot of the injected-fault counters.
func (h *Handler) Counts() Counts { return h.d.snapshot() }

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch h.d.decide() {
	case drop:
		// Abort the connection without a response; net/http turns this
		// panic into a closed connection, not a crash.
		panic(http.ErrAbortHandler)
	case fail:
		http.Error(w, `{"error":"faultinject: injected server error"}`, http.StatusInternalServerError)
		return
	case delay:
		if err := holdFor(r.Context(), h.d.cfg.Delay); err != nil {
			return
		}
	}
	h.next.ServeHTTP(w, r)
}
