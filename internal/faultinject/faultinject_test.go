package faultinject

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"syscall"
	"testing"

	"coda/internal/retry"
)

func okServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestTransportFractionsAndDeterminism(t *testing.T) {
	ts := okServer(t)
	run := func() (Counts, int, int) {
		tr := NewTransport(nil, Config{Seed: 42, DropFraction: 0.3, ErrorFraction: 0.1})
		client := &http.Client{Transport: tr}
		resets, fives := 0, 0
		for i := 0; i < 500; i++ {
			resp, err := client.Get(ts.URL)
			if err != nil {
				if !errors.Is(err, syscall.ECONNRESET) {
					t.Fatalf("dropped request surfaced %v, want ECONNRESET", err)
				}
				resets++
				continue
			}
			if resp.StatusCode == http.StatusInternalServerError {
				fives++
			}
			resp.Body.Close()
		}
		return tr.Counts(), resets, fives
	}
	c1, resets, fives := run()
	if c1.Total != 500 || c1.Dropped != resets || c1.Errored != fives {
		t.Fatalf("counts %+v disagree with observations (resets=%d 500s=%d)", c1, resets, fives)
	}
	// ~30% / ~10% with generous tolerance.
	if c1.Dropped < 100 || c1.Dropped > 200 {
		t.Fatalf("dropped %d of 500, want roughly 150", c1.Dropped)
	}
	if c1.Errored < 20 || c1.Errored > 90 {
		t.Fatalf("errored %d of 500, want roughly 50", c1.Errored)
	}
	c2, _, _ := run()
	if c1 != c2 {
		t.Fatalf("same seed must replay the same faults: %+v vs %+v", c1, c2)
	}
}

func TestInjectedFaultsAreRetryable(t *testing.T) {
	ts := okServer(t)
	tr := NewTransport(nil, Config{Seed: 7, DropFraction: 0.5, ErrorFraction: 0.2})
	client := &http.Client{Transport: tr}
	for i := 0; i < 200; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			if !retry.Retryable(err) {
				t.Fatalf("injected transport error must be retryable: %v", err)
			}
			continue
		}
		if resp.StatusCode >= 500 && !retry.RetryableStatus(resp.StatusCode) {
			t.Fatalf("injected status %d must be retryable", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestHandlerChaos(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	h := NewHandler(inner, Config{Seed: 3, DropFraction: 0.3, ErrorFraction: 0.2})
	ts := httptest.NewServer(h)
	defer ts.Close()

	ok, failed := 0, 0
	for i := 0; i < 200; i++ {
		resp, err := http.Get(ts.URL)
		if err != nil {
			failed++ // aborted connection
			continue
		}
		if resp.StatusCode == http.StatusOK {
			ok++
		} else {
			failed++
		}
		resp.Body.Close()
	}
	// net/http transparently re-issues GETs killed on a reused connection,
	// so the handler can see more than 200 arrivals.
	c := h.Counts()
	if c.Total < 200 || c.Dropped == 0 || c.Errored == 0 {
		t.Fatalf("handler counts %+v, want >=200 with drops and errors", c)
	}
	if ok == 0 || failed == 0 {
		t.Fatalf("ok=%d failed=%d, want a mix", ok, failed)
	}
}

func TestTransportConcurrentUse(t *testing.T) {
	ts := okServer(t)
	tr := NewTransport(nil, Config{Seed: 1, DropFraction: 0.2, ErrorFraction: 0.1})
	client := &http.Client{Transport: tr}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				resp, err := client.Get(ts.URL)
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	if c := tr.Counts(); c.Total != 400 {
		t.Fatalf("total %d, want 400", c.Total)
	}
}
