// Package delta implements the binary delta encoding of Section III: the
// home data store sends d(o1, e, k) — the difference between a node's
// version e and the latest version k — instead of the full object when the
// delta is considerably smaller, saving bandwidth.
//
// The algorithm is rsync-style: the old version is cut into fixed-size
// blocks indexed by a rolling weak hash; the new version is scanned with a
// sliding window, emitting Copy operations for block matches (verified
// byte-for-byte) and Insert operations for literal runs.
package delta

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorrupt is wrapped by Apply/Unmarshal when a delta does not fit its
// base or its encoding is malformed.
var ErrCorrupt = errors.New("delta: corrupt delta")

// Op is one reconstruction step: a copy of Len bytes from offset Off of the
// base version (Data nil), or an insertion of literal Data.
type Op struct {
	Off  int64
	Len  int64
	Data []byte
}

// IsCopy reports whether the op copies from the base.
func (o Op) IsCopy() bool { return o.Data == nil }

// Delta encodes the difference between a base version and a target version.
type Delta struct {
	BlockSize int
	BaseLen   int64
	TargetLen int64
	Ops       []Op
}

// DefaultBlockSize is the block granularity used when callers pass 0.
const DefaultBlockSize = 64

// weak is a rolling Adler-style checksum over a fixed window.
type weak struct {
	a, b uint32
	n    uint32
}

func newWeak(p []byte) weak {
	var w weak
	w.n = uint32(len(p))
	for i, c := range p {
		w.a += uint32(c)
		w.b += uint32(len(p)-i) * uint32(c)
	}
	return w
}

// roll slides the window one byte: drop out, take in.
func (w *weak) roll(out, in byte) {
	w.a += uint32(in) - uint32(out)
	w.b += w.a - w.n*uint32(out)
}

func (w weak) sum() uint32 { return w.a | w.b<<16 }

// Compute builds a delta transforming base into target using the given
// block size (0 selects DefaultBlockSize).
func Compute(base, target []byte, blockSize int) *Delta {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	d := &Delta{BlockSize: blockSize, BaseLen: int64(len(base)), TargetLen: int64(len(target))}
	if len(target) == 0 {
		return d
	}
	if len(base) < blockSize {
		d.Ops = append(d.Ops, Op{Data: append([]byte(nil), target...)})
		return d
	}

	// Index base blocks by weak hash.
	blocks := map[uint32][]int{}
	for off := 0; off+blockSize <= len(base); off += blockSize {
		h := newWeak(base[off : off+blockSize]).sum()
		blocks[h] = append(blocks[h], off)
	}

	var pendingLit []byte
	flushLit := func() {
		if len(pendingLit) > 0 {
			d.Ops = append(d.Ops, Op{Data: pendingLit})
			pendingLit = nil
		}
	}
	emitCopy := func(off, n int) {
		// Merge with a preceding contiguous copy.
		if len(d.Ops) > 0 {
			last := &d.Ops[len(d.Ops)-1]
			if last.IsCopy() && last.Off+last.Len == int64(off) {
				last.Len += int64(n)
				return
			}
		}
		d.Ops = append(d.Ops, Op{Off: int64(off), Len: int64(n)})
	}

	i := 0
	var w weak
	valid := false
	for i+blockSize <= len(target) {
		if !valid {
			w = newWeak(target[i : i+blockSize])
			valid = true
		}
		matched := false
		if offs, ok := blocks[w.sum()]; ok {
			// Prefer the candidate that extends the previous copy, so
			// repetitive data collapses into one long contiguous op.
			var expect int64 = -1
			if len(d.Ops) > 0 && len(pendingLit) == 0 {
				if last := d.Ops[len(d.Ops)-1]; last.IsCopy() {
					expect = last.Off + last.Len
				}
			}
			pick := -1
			for _, off := range offs {
				if !bytesEqual(base[off:off+blockSize], target[i:i+blockSize]) {
					continue
				}
				if pick < 0 {
					pick = off
				}
				if int64(off) == expect {
					pick = off
					break
				}
			}
			if pick >= 0 {
				flushLit()
				emitCopy(pick, blockSize)
				i += blockSize
				valid = false
				matched = true
			}
		}
		if !matched {
			pendingLit = append(pendingLit, target[i])
			if i+blockSize < len(target) {
				// Slide the window: drop target[i], take target[i+blockSize].
				w.roll(target[i], target[i+blockSize])
			} else {
				valid = false
			}
			i++
		}
	}
	pendingLit = append(pendingLit, target[i:]...)
	flushLit()
	return d
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Apply reconstructs the target from the base and the delta.
func Apply(base []byte, d *Delta) ([]byte, error) {
	if int64(len(base)) != d.BaseLen {
		return nil, fmt.Errorf("%w: base length %d, delta expects %d", ErrCorrupt, len(base), d.BaseLen)
	}
	out := make([]byte, 0, d.TargetLen)
	for i, op := range d.Ops {
		if op.IsCopy() {
			if op.Off < 0 || op.Len < 0 || op.Off+op.Len > int64(len(base)) {
				return nil, fmt.Errorf("%w: op %d copies [%d,%d) beyond base %d", ErrCorrupt, i, op.Off, op.Off+op.Len, len(base))
			}
			out = append(out, base[op.Off:op.Off+op.Len]...)
		} else {
			out = append(out, op.Data...)
		}
	}
	if int64(len(out)) != d.TargetLen {
		return nil, fmt.Errorf("%w: reconstructed %d bytes, want %d", ErrCorrupt, len(out), d.TargetLen)
	}
	return out, nil
}

// Marshal encodes the delta in a compact varint wire format.
func (d *Delta) Marshal() []byte {
	buf := make([]byte, 0, 64)
	buf = binary.AppendUvarint(buf, uint64(d.BlockSize))
	buf = binary.AppendUvarint(buf, uint64(d.BaseLen))
	buf = binary.AppendUvarint(buf, uint64(d.TargetLen))
	buf = binary.AppendUvarint(buf, uint64(len(d.Ops)))
	for _, op := range d.Ops {
		if op.IsCopy() {
			buf = append(buf, 0)
			buf = binary.AppendUvarint(buf, uint64(op.Off))
			buf = binary.AppendUvarint(buf, uint64(op.Len))
		} else {
			buf = append(buf, 1)
			buf = binary.AppendUvarint(buf, uint64(len(op.Data)))
			buf = append(buf, op.Data...)
		}
	}
	return buf
}

// WireSize returns the encoded size in bytes — the quantity the home data
// store compares against the full object to decide delta-vs-full.
func (d *Delta) WireSize() int { return len(d.Marshal()) }

// Unmarshal decodes a delta from its wire format.
func Unmarshal(buf []byte) (*Delta, error) {
	d := &Delta{}
	var n int
	read := func() (uint64, error) {
		v, sz := binary.Uvarint(buf[n:])
		if sz <= 0 {
			return 0, fmt.Errorf("%w: truncated varint at %d", ErrCorrupt, n)
		}
		n += sz
		return v, nil
	}
	bs, err := read()
	if err != nil {
		return nil, err
	}
	base, err := read()
	if err != nil {
		return nil, err
	}
	target, err := read()
	if err != nil {
		return nil, err
	}
	nops, err := read()
	if err != nil {
		return nil, err
	}
	d.BlockSize = int(bs)
	d.BaseLen = int64(base)
	d.TargetLen = int64(target)
	for i := uint64(0); i < nops; i++ {
		if n >= len(buf) {
			return nil, fmt.Errorf("%w: truncated op list", ErrCorrupt)
		}
		kind := buf[n]
		n++
		switch kind {
		case 0:
			off, err := read()
			if err != nil {
				return nil, err
			}
			length, err := read()
			if err != nil {
				return nil, err
			}
			d.Ops = append(d.Ops, Op{Off: int64(off), Len: int64(length)})
		case 1:
			length, err := read()
			if err != nil {
				return nil, err
			}
			if n+int(length) > len(buf) {
				return nil, fmt.Errorf("%w: truncated literal", ErrCorrupt)
			}
			d.Ops = append(d.Ops, Op{Data: append([]byte(nil), buf[n:n+int(length)]...)})
			n += int(length)
		default:
			return nil, fmt.Errorf("%w: unknown op kind %d", ErrCorrupt, kind)
		}
	}
	return d, nil
}
