package delta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, base, target []byte, blockSize int) *Delta {
	t.Helper()
	d := Compute(base, target, blockSize)
	got, err := Apply(base, d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(target))
	}
	return d
}

func TestIdenticalVersions(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh"), 100)
	d := roundTrip(t, data, data, 32)
	// All copies, trivially mergeable into one op.
	if len(d.Ops) != 1 || !d.Ops[0].IsCopy() {
		t.Fatalf("identical data should be a single copy op, got %d ops", len(d.Ops))
	}
	if d.WireSize() >= len(data)/10 {
		t.Fatalf("delta of identical data is %d bytes for %d-byte object", d.WireSize(), len(data))
	}
}

func TestSmallEdit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := make([]byte, 8192)
	rng.Read(base)
	target := append([]byte(nil), base...)
	// Flip a few bytes in the middle.
	for i := 4000; i < 4010; i++ {
		target[i] ^= 0xff
	}
	d := roundTrip(t, base, target, 64)
	if d.WireSize() > len(target)/4 {
		t.Fatalf("10-byte edit produced %d-byte delta for %d-byte object", d.WireSize(), len(target))
	}
}

func TestAppendOnly(t *testing.T) {
	base := bytes.Repeat([]byte("sensor-reading;"), 200)
	target := append(append([]byte(nil), base...), bytes.Repeat([]byte("new-data;"), 20)...)
	d := roundTrip(t, base, target, 64)
	if d.WireSize() > len(target)/3 {
		t.Fatalf("append produced %d-byte delta for %d-byte target", d.WireSize(), len(target))
	}
}

func TestCompletelyDifferent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := make([]byte, 2048)
	target := make([]byte, 2048)
	rng.Read(base)
	rng.Read(target)
	d := roundTrip(t, base, target, 64)
	// Delta degenerates to literals: wire size slightly above target size.
	if d.WireSize() < len(target) {
		t.Fatalf("random data delta %d suspiciously smaller than target %d", d.WireSize(), len(target))
	}
}

func TestEmptyCases(t *testing.T) {
	roundTrip(t, nil, nil, 0)
	roundTrip(t, nil, []byte("hello"), 0)
	roundTrip(t, []byte("hello"), nil, 0)
	roundTrip(t, []byte("tiny"), []byte("other"), 64) // base smaller than block
}

func TestPrefixInsertion(t *testing.T) {
	base := bytes.Repeat([]byte("0123456789abcdef"), 64)
	target := append([]byte("HEADER:"), base...)
	d := roundTrip(t, base, target, 32)
	if d.WireSize() > len(target)/4 {
		t.Fatalf("prefix insert delta %d bytes for %d-byte target", d.WireSize(), len(target))
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := make([]byte, 3000)
	rng.Read(base)
	target := append([]byte(nil), base[:1500]...)
	target = append(target, []byte("inserted data here")...)
	target = append(target, base[1500:]...)
	d := Compute(base, target, 128)
	wire := d.Marshal()
	back, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Apply(base, back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, target) {
		t.Fatal("marshal round trip lost data")
	}
	if d.WireSize() != len(wire) {
		t.Fatalf("WireSize %d != marshalled %d", d.WireSize(), len(wire))
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{}); err == nil {
		t.Fatal("want truncated error")
	}
	d := Compute([]byte("aaaa"), []byte("aaab"), 2)
	wire := d.Marshal()
	if _, err := Unmarshal(wire[:len(wire)-1]); err == nil {
		t.Fatal("want truncated-literal error")
	}
}

func TestApplyValidation(t *testing.T) {
	base := bytes.Repeat([]byte("x"), 256)
	d := Compute(base, base, 64)
	if _, err := Apply(base[:100], d); err == nil {
		t.Fatal("want base-length error")
	}
	// Corrupt a copy op to read out of range.
	bad := *d
	bad.Ops = append([]Op(nil), d.Ops...)
	bad.Ops[0] = Op{Off: 200, Len: 100}
	if _, err := Apply(base, &bad); err == nil {
		t.Fatal("want out-of-range error")
	}
}

// Property: Apply(base, Compute(base, target)) == target for arbitrary
// inputs and block sizes.
func TestComputeApplyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		baseLen := rng.Intn(2000)
		base := make([]byte, baseLen)
		rng.Read(base)
		// Build a target as a mutation of base: random splice operations.
		target := append([]byte(nil), base...)
		for k := 0; k < rng.Intn(5); k++ {
			if len(target) == 0 {
				break
			}
			pos := rng.Intn(len(target))
			switch rng.Intn(3) {
			case 0: // insert
				ins := make([]byte, rng.Intn(50))
				rng.Read(ins)
				target = append(target[:pos], append(ins, target[pos:]...)...)
			case 1: // delete
				end := pos + rng.Intn(len(target)-pos)
				target = append(target[:pos], target[end:]...)
			case 2: // overwrite
				if pos < len(target) {
					target[pos] ^= 0x5a
				}
			}
		}
		blockSize := 1 + rng.Intn(256)
		d := Compute(base, target, blockSize)
		got, err := Apply(base, d)
		if err != nil {
			return false
		}
		if !bytes.Equal(got, target) {
			return false
		}
		// Marshal round trip preserves semantics too.
		back, err := Unmarshal(d.Marshal())
		if err != nil {
			return false
		}
		got2, err := Apply(base, back)
		return err == nil && bytes.Equal(got2, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property from the paper: for small edits the delta should be considerably
// smaller than the full object.
func TestSmallEditCompressionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := make([]byte, 4096+rng.Intn(4096))
		rng.Read(base)
		target := append([]byte(nil), base...)
		// Edit at most 1% of bytes.
		edits := 1 + rng.Intn(len(base)/100)
		for k := 0; k < edits; k++ {
			target[rng.Intn(len(target))] ^= 0xff
		}
		d := Compute(base, target, 64)
		got, err := Apply(base, d)
		if err != nil || !bytes.Equal(got, target) {
			return false
		}
		return d.WireSize() < len(target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
