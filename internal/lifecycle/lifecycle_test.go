package lifecycle_test

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/lifecycle"
	"coda/internal/metrics"
	"coda/internal/mlmodels"
	"coda/internal/preprocess"
	"coda/internal/replication"
	"coda/internal/sim"
	"coda/internal/store"
	"coda/internal/tswindow"
)

// buildARPipeline returns a fresh scaling + TS-as-is + AR(3) pipeline.
func buildARPipeline(t *testing.T) func() *core.Pipeline {
	t.Helper()
	return func() *core.Pipeline {
		g := core.NewGraph()
		g.AddTransformerStage("view", tswindow.NewTSAsIs(1, 0))
		g.AddEstimatorStage("model", mlmodels.NewARModel(3, 0))
		if err := g.Finalize(); err != nil {
			t.Fatal(err)
		}
		p, err := core.NewPipeline(g.Paths()[0])
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
}

func TestManagerValidation(t *testing.T) {
	if _, err := lifecycle.NewManager(nil, replication.CountTrigger{N: 1}); err == nil {
		t.Fatal("want nil-builder error")
	}
	if _, err := lifecycle.NewManager(func() *core.Pipeline { return nil }, nil); err == nil {
		t.Fatal("want nil-trigger error")
	}
	m, err := lifecycle.NewManager(func() *core.Pipeline { return nil }, replication.CountTrigger{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(&dataset.Dataset{}); err == nil {
		t.Fatal("want not-trained error")
	}
	if _, err := m.Observe(1, nil); err == nil {
		t.Fatal("want observe-before-train error")
	}
}

func TestManagerRetrainsOnTrigger(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	series, err := sim.GenerateSeries(sim.SeriesSpec{Steps: 400, Vars: 1, Regime: sim.RegimeMeanShift, Noise: 0.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := lifecycle.NewManager(buildARPipeline(t), replication.CountTrigger{N: 24})
	if err != nil {
		t.Fatal(err)
	}
	warm := series.SliceRange(0, 100)
	if err := m.Train(warm); err != nil {
		t.Fatal(err)
	}
	if m.Retrains() != 0 {
		t.Fatal("initial train must not count as retrain")
	}
	// Stream the rest one step at a time, retraining on a sliding window.
	retrained := 0
	for tStep := 100; tStep < 300; tStep++ {
		window := series.SliceRange(tStep-99, tStep+1)
		did, err := m.Observe(8, window)
		if err != nil {
			t.Fatal(err)
		}
		if did {
			retrained++
		}
	}
	// 200 updates with trigger count>24 => retrain every 25 updates => 8.
	if retrained != 8 || m.Retrains() != 8 {
		t.Fatalf("retrained %d times (counter %d), want 8", retrained, m.Retrains())
	}
	// The 200th update triggered the 8th retrain, so stats reset; one more
	// observation should accumulate without retraining.
	if did, err := m.Observe(8, series.SliceRange(200, 300)); err != nil || did {
		t.Fatalf("observe after retrain: did=%v err=%v", did, err)
	}
	if m.PendingUpdates().Count != 1 {
		t.Fatalf("pending count %d, want 1", m.PendingUpdates().Count)
	}
	// Predictions come from the freshest model.
	preds, err := m.Predict(series.SliceRange(250, 300))
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 49 { // TS-as-is drops the last step (horizon 1)
		t.Fatalf("predictions %d", len(preds))
	}
}

// TestEndToEndLifecycleOverDataTier runs the full Figure 1 story in one
// process: a home data store publishes CSV updates over a push-delta lease,
// a client replica stays in sync, and the lifecycle manager retrains from
// the replica when the bytes trigger fires — keeping accuracy on drifting
// data far ahead of a never-retrained model.
func TestEndToEndLifecycleOverDataTier(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	series, err := sim.GenerateSeries(sim.SeriesSpec{Steps: 700, Vars: 1, Regime: sim.RegimeMeanShift, Noise: 0.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const warmup = 150

	hs := store.NewHomeStore(store.Options{Retain: 4, BlockSize: 64})
	mgr := replication.NewManager(hs, nil)
	replica := store.NewReplica()

	encode := func(end int) []byte {
		var buf bytes.Buffer
		if err := series.SliceRange(0, end).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	decode := func() *dataset.Dataset {
		raw, ok := replica.Data("train")
		if !ok {
			t.Fatal("replica empty")
		}
		ds, err := dataset.ReadCSV(bytes.NewReader(raw), "")
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}

	var lease *replication.Lease
	sub := replication.SubscriberFunc(func(u replication.Update) {
		if err := replica.ApplyReply(u.Reply); err != nil {
			t.Errorf("replica apply: %v", err)
			return
		}
		lease.AckVersion(u.Version)
	})
	lease, err = mgr.Subscribe("train", "edge-node", replication.PushDelta, time.Hour, sub)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := mgr.Publish("train", encode(warmup)); err != nil {
		t.Fatal(err)
	}

	lm, err := lifecycle.NewManager(buildARPipeline(t), replication.BytesTrigger{N: 600})
	if err != nil {
		t.Fatal(err)
	}
	if err := lm.Train(decode()); err != nil {
		t.Fatal(err)
	}
	// A frozen model for comparison.
	frozen := buildARPipeline(t)()
	if err := frozen.Fit(decode()); err != nil {
		t.Fatal(err)
	}

	var managedErr, frozenErr float64
	evals := 0
	for tStep := warmup; tStep < series.NumSamples()-1; tStep++ {
		// Publish the new observation; the lease pushes a delta.
		if _, err := mgr.Publish("train", encode(tStep+1)); err != nil {
			t.Fatal(err)
		}
		current := decode()
		// Both models forecast the next step from the recent window.
		window := current.SliceRange(current.NumSamples()-50, current.NumSamples())
		mp, err := lm.Predict(window)
		if err != nil {
			t.Fatal(err)
		}
		fp, err := frozen.Predict(window)
		if err != nil {
			t.Fatal(err)
		}
		truth := series.X.At(tStep, 0) // horizon-1 target of the window's second-to-last row
		managedErr += abs(mp[len(mp)-1] - truth)
		frozenErr += abs(fp[len(fp)-1] - truth)
		evals++

		if _, err := lm.Observe(16, current.SliceRange(current.NumSamples()-150, current.NumSamples())); err != nil {
			t.Fatal(err)
		}
	}
	if lm.Retrains() == 0 {
		t.Fatal("manager never retrained under drift")
	}
	managedMAE := managedErr / float64(evals)
	frozenMAE := frozenErr / float64(evals)
	if managedMAE >= frozenMAE*0.6 {
		t.Fatalf("managed MAE %v should clearly beat frozen %v on drifting data", managedMAE, frozenMAE)
	}
	// The delta lease kept sync cheap: far less than re-sending the CSV
	// every update.
	full := int64(len(encode(series.NumSamples()-1))) * int64(evals)
	if lease.BytesPushed() >= full/4 {
		t.Fatalf("push-delta moved %d bytes; full refreshes would be %d", lease.BytesPushed(), full)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestManagerConcurrentPredictDuringRetrain exercises the RW locking:
// predictions keep flowing while another goroutine retrains.
func TestManagerConcurrentPredictDuringRetrain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds, _, err := dataset.MakeRegression(dataset.RegressionSpec{Samples: 200, Features: 3, Informative: 3, Noise: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *core.Pipeline {
		g := core.NewGraph()
		g.AddTransformerStage("scale", preprocess.NewStandardScaler())
		g.AddEstimatorStage("model", mlmodels.NewLinearRegression())
		if err := g.Finalize(); err != nil {
			t.Fatal(err)
		}
		p, err := core.NewPipeline(g.Paths()[0])
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	m, err := lifecycle.NewManager(build, replication.CountTrigger{N: 0}) // retrain on every observe
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(ds); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			if _, err := m.Observe(1, ds); err != nil {
				t.Errorf("observe: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		preds, err := m.Predict(ds)
		if err != nil {
			t.Fatalf("predict during retrain: %v", err)
		}
		if len(preds) != ds.NumSamples() {
			t.Fatal("wrong prediction count")
		}
	}
	<-done
	if m.Retrains() != 30 {
		t.Fatalf("retrains %d, want 30", m.Retrains())
	}
	// Model quality is preserved through retrains.
	preds, err := m.Predict(ds)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := metrics.R2(ds.Y, preds)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.99 {
		t.Fatalf("post-retrain R2 %v", r2)
	}
}
