// Package lifecycle implements Section II's model life-cycle management:
// analytics run over a long period while the data keeps changing, so the
// deployed model must be retrained at the right frequency — "too frequent
// retraining can result in high overhead, while too infrequent retraining
// can result in obsolete models". A Manager owns a fitted pipeline, tracks
// incoming data updates with one of Section III's change-detection
// triggers, and retrains from fresh data when the trigger fires.
package lifecycle

import (
	"errors"
	"fmt"
	"sync"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/replication"
)

// ErrNotTrained is returned by Predict before the first Train.
var ErrNotTrained = errors.New("lifecycle: model not trained yet")

// Manager keeps one deployed pipeline fresh against a changing dataset.
// All methods are safe for concurrent use; predictions keep being served
// from the current model while updates accumulate.
type Manager struct {
	build   func() *core.Pipeline
	monitor *replication.Monitor

	mu       sync.RWMutex
	pipeline *core.Pipeline
	retrains int
	trained  bool
}

// NewManager builds a lifecycle manager. build must return a fresh,
// unfitted pipeline (the model architecture to retrain); trigger decides
// when accumulated updates warrant retraining.
func NewManager(build func() *core.Pipeline, trigger replication.Trigger) (*Manager, error) {
	if build == nil {
		return nil, fmt.Errorf("lifecycle: nil pipeline builder")
	}
	if trigger == nil {
		return nil, fmt.Errorf("lifecycle: nil trigger")
	}
	return &Manager{build: build, monitor: replication.NewMonitor(trigger)}, nil
}

// Train (re)fits a fresh pipeline on the given data and installs it. The
// update statistics reset, and the retrain counter advances when this was
// a retrain rather than the initial fit.
func (m *Manager) Train(ds *dataset.Dataset) error {
	p := m.build()
	if p == nil {
		return fmt.Errorf("lifecycle: pipeline builder returned nil")
	}
	if err := p.Fit(ds); err != nil {
		return fmt.Errorf("lifecycle: training: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.trained {
		m.retrains++
	}
	m.pipeline = p
	m.trained = true
	m.monitor.Reset()
	return nil
}

// Observe records one data update of the given payload size. When the
// trigger fires, the manager retrains on current (the up-to-date training
// data) and reports retrained = true. Observing before the initial Train
// is an error.
func (m *Manager) Observe(updateBytes int, current *dataset.Dataset) (retrained bool, err error) {
	m.mu.RLock()
	trained := m.trained
	m.mu.RUnlock()
	if !trained {
		return false, fmt.Errorf("%w: call Train before Observe", ErrNotTrained)
	}
	m.monitor.RecordUpdate(updateBytes)
	if !m.monitor.Check() {
		return false, nil
	}
	if err := m.Train(current); err != nil {
		return false, err
	}
	return true, nil
}

// ObserveUpdate is the push-driven counterpart of Observe: it folds one
// notification frame from a lease subscription (replication.Update, as
// delivered by the store's push stream or its long-poll fallback) into the
// change-detection trigger, and when the trigger fires it fetches fresh
// training data via refresh and retrains. refresh runs only on trigger
// fire, so subscribers pay the data pull exactly when a retrain happens —
// the notify-mode economy Section III describes.
func (m *Manager) ObserveUpdate(u replication.Update, refresh func() (*dataset.Dataset, error)) (retrained bool, err error) {
	m.mu.RLock()
	trained := m.trained
	m.mu.RUnlock()
	if !trained {
		return false, fmt.Errorf("%w: call Train before ObserveUpdate", ErrNotTrained)
	}
	m.monitor.ObserveUpdate(u)
	if !m.monitor.Check() {
		return false, nil
	}
	current, err := refresh()
	if err != nil {
		return false, fmt.Errorf("lifecycle: refreshing training data: %w", err)
	}
	if err := m.Train(current); err != nil {
		return false, err
	}
	return true, nil
}

// Predict serves predictions from the currently deployed model.
func (m *Manager) Predict(ds *dataset.Dataset) ([]float64, error) {
	m.mu.RLock()
	p := m.pipeline
	m.mu.RUnlock()
	if p == nil {
		return nil, ErrNotTrained
	}
	return p.Predict(ds)
}

// Retrains counts completed retrainings (excluding the initial Train).
func (m *Manager) Retrains() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.retrains
}

// PendingUpdates reports the update statistics accumulated since the last
// (re)training.
func (m *Manager) PendingUpdates() replication.UpdateStats {
	return m.monitor.Stats()
}
