package nn

import (
	"math/rand"
	"testing"

	"coda/internal/matrix"
)

func benchForwardBackward(b *testing.B, layer Layer, in *matrix.Matrix) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := layer.Forward(in, true)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := layer.Backward(out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	benchForwardBackward(b, NewDense(64, 64, rng), randInput(rng, 32, 64))
}

func BenchmarkLSTMForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	benchForwardBackward(b, NewLSTM(16, 4, 16, rng), randInput(rng, 32, 64))
}

func BenchmarkConv1DCausalDilated(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	benchForwardBackward(b, NewConv1D(64, 4, 8, 2, 4, true, rng), randInput(rng, 32, 256))
}

func BenchmarkGatedResidualBlock(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	benchForwardBackward(b, NewGatedResidualBlock(32, 8, 2, 2, rng), randInput(rng, 16, 256))
}
