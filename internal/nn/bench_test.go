package nn

import (
	"math/rand"
	"testing"

	"coda/internal/matrix"
)

func benchForwardBackward(b *testing.B, layer Layer, in *matrix.Matrix) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := layer.Forward(in, true)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := layer.Backward(out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	benchForwardBackward(b, NewDense(64, 64, rng), randInput(rng, 32, 64))
}

func BenchmarkLSTMForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	benchForwardBackward(b, NewLSTM(16, 4, 16, rng), randInput(rng, 32, 64))
}

func BenchmarkConv1DCausalDilated(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	benchForwardBackward(b, NewConv1D(64, 4, 8, 2, 4, true, rng), randInput(rng, 32, 256))
}

func BenchmarkGatedResidualBlock(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	benchForwardBackward(b, NewGatedResidualBlock(32, 8, 2, 2, rng), randInput(rng, 16, 256))
}

// Precision A/B on a full training epoch: same architecture, data and
// seeds, only the element width differs. The CI bench-kernels job records
// both so the f32 end-to-end speedup stays visible next to the raw matmul
// ratio.

func benchFitNet[T matrix.Float](b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x64 := randInput(rng, 64, 128)
	y64 := make([]float64, 64)
	for i := range y64 {
		y64[i] = rng.NormFloat64()
	}
	x := matrix.ConvertInto[T](nil, x64)
	y := matrix.ConvertVec[T](nil, y64)
	net := NewNetworkOf[T](NewAdamOf[T](0.01),
		NewDenseOf[T](128, 128, rng), NewReLUOf[T](), NewDenseOf[T](128, 1, rng))
	cfg := FitConfig{Epochs: 1, BatchSize: 32, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Fit(x, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetworkFitF64(b *testing.B) { benchFitNet[float64](b) }
func BenchmarkNetworkFitF32(b *testing.B) { benchFitNet[float32](b) }

// benchSeries is a fixed-size WindowSource for the window→conv fusion A/B.
type benchSeries struct {
	data *matrix.Matrix
	hist int
}

func (s *benchSeries) Windows() int   { return s.data.Rows() - s.hist }
func (s *benchSeries) WindowLen() int { return s.hist }
func (s *benchSeries) Vars() int      { return s.data.Cols() }
func (s *benchSeries) CopyStep(dst []float64, w, t int) {
	copy(dst, s.data.Row(w+t))
}
func (s *benchSeries) CopyStep32(dst []float32, w, t int) {
	for j, v := range s.data.Row(w + t) {
		dst[j] = float32(v)
	}
}

func windowBenchSetup() (*benchSeries, []float64) {
	rng := rand.New(rand.NewSource(8))
	src := &benchSeries{data: randInput(rng, 220, 2), hist: 16}
	y := make([]float64, src.Windows())
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	return src, y
}

func windowBenchNet(rngSeed int64) *Network {
	rng := rand.New(rand.NewSource(rngSeed))
	return NewNetwork(NewAdam(0.01),
		NewConv1D(16, 2, 8, 3, 1, false, rng),
		NewReLU(),
		NewLastTimestep(14, 8),
		NewDense(8, 1, rng),
	)
}

// Window→conv fusion A/B: the materialized variant re-gathers the full
// (windows × hist*vars) matrix every epoch before training, the fused
// variant trains straight off the window source. The CI bench-kernels job
// gates on the fused variant allocating less per op.

func BenchmarkWindowConvMaterialized(b *testing.B) {
	src, y := windowBenchSetup()
	net := windowBenchNet(5)
	cfg := FitConfig{Epochs: 1, BatchSize: 32, Seed: 1}
	idx := make([]int, src.Windows())
	for i := range idx {
		idx[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := gatherWindows[float64](nil, src, idx)
		if err := net.Fit(x, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowConvFused(b *testing.B) {
	src, y := windowBenchSetup()
	net := windowBenchNet(5)
	cfg := FitConfig{Epochs: 1, BatchSize: 32, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.FitWindowed(src, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
