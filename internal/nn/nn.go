// Package nn is the pure-Go neural-network substrate standing in for the
// Keras models in the paper's time-series prediction pipeline (Section
// IV-C). It provides dense, dropout, 1-D convolution (with causal dilation
// for the WaveNet/SeriesNet blocks), max-pooling and LSTM layers with full
// backpropagation, plus SGD and Adam optimizers.
//
// Data layout: a batch is a matrix with one sample per row. Sequence layers
// interpret each row time-major as [t0c0, t0c1, ..., t0cV, t1c0, ...] —
// exactly the layout produced by tswindow.CascadedWindows — with the
// sequence length and channel count fixed at layer construction.
package nn

import (
	"errors"
	"fmt"
	"math/rand"

	"coda/internal/matrix"
)

// ErrShape is wrapped by layer shape-mismatch errors.
var ErrShape = errors.New("nn: shape mismatch")

// Param is one learnable tensor with its accumulated gradient.
type Param struct {
	W    *matrix.Matrix
	Grad *matrix.Matrix
}

// newParam allocates a weight matrix and its gradient buffer.
func newParam(rows, cols int) *Param {
	return &Param{W: matrix.New(rows, cols), Grad: matrix.New(rows, cols)}
}

// zeroGrad clears the gradient buffer.
func (p *Param) zeroGrad() {
	d := p.Grad.Data()
	for i := range d {
		d[i] = 0
	}
}

// Layer is one differentiable stage of a network. Forward must cache
// whatever Backward needs; Backward receives dLoss/dOutput and returns
// dLoss/dInput while accumulating parameter gradients.
//
// Buffer lifetime contract: layers own arena-style scratch buffers, so the
// matrix returned by Forward is valid only until the layer's next Forward
// call, and the matrix returned by Backward only until its next Backward
// call (forward and backward buffers are distinct, so a Backward never
// clobbers a held Forward output). Callers that keep a result across calls
// must Clone it. Layers must not mutate their input x after Forward
// returns, nor the incoming grad — both belong to neighbouring layers.
type Layer interface {
	Forward(x *matrix.Matrix, training bool) (*matrix.Matrix, error)
	Backward(grad *matrix.Matrix) (*matrix.Matrix, error)
	Parameters() []*Param
}

// Network is a sequential stack of layers trained with mini-batch gradient
// descent on mean-squared error (regression) — the loss all estimators in
// the time-series pipeline optimize.
type Network struct {
	Layers    []Layer
	Optimizer Optimizer

	// Per-batch training scratch, reused across steps so Fit does not
	// allocate per mini-batch.
	bx   *matrix.Matrix
	gbuf *matrix.Matrix
	by   []float64
}

// NewNetwork builds a sequential network; opt may be nil, defaulting to
// Adam(1e-2).
func NewNetwork(opt Optimizer, layers ...Layer) *Network {
	if opt == nil {
		opt = NewAdam(0.01)
	}
	return &Network{Layers: layers, Optimizer: opt}
}

// Parameters returns all learnable parameters in layer order.
func (n *Network) Parameters() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Parameters()...)
	}
	return out
}

// Forward runs the full stack.
func (n *Network) Forward(x *matrix.Matrix, training bool) (*matrix.Matrix, error) {
	var err error
	for i, l := range n.Layers {
		x, err = l.Forward(x, training)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d forward: %w", i, err)
		}
	}
	return x, nil
}

// backward runs the full stack in reverse.
func (n *Network) backward(grad *matrix.Matrix) error {
	var err error
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad, err = n.Layers[i].Backward(grad)
		if err != nil {
			return fmt.Errorf("nn: layer %d backward: %w", i, err)
		}
	}
	return nil
}

// FitConfig controls Network.Fit.
type FitConfig struct {
	Epochs    int   // passes over the data (default 50)
	BatchSize int   // mini-batch rows (default 32)
	Seed      int64 // shuffling seed
}

// Fit trains on (x, y) minimizing MSE. y has one value per row.
func (n *Network) Fit(x *matrix.Matrix, y []float64, cfg FitConfig) error {
	if x.Rows() != len(y) {
		return fmt.Errorf("%w: %d rows vs %d targets", ErrShape, x.Rows(), len(y))
	}
	if x.Rows() == 0 {
		return fmt.Errorf("nn: empty training set")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 50
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	params := n.Parameters()
	order := make([]int, x.Rows())
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			idx := order[start:end]
			n.bx = matrix.SelectRowsInto(n.bx, x, idx)
			bx := n.bx
			n.by = matrix.RecycleVec(n.by, len(idx))
			by := n.by
			for k, i := range idx {
				by[k] = y[i]
			}
			for _, p := range params {
				p.zeroGrad()
			}
			out, err := n.Forward(bx, true)
			if err != nil {
				return err
			}
			if out.Cols() != 1 {
				return fmt.Errorf("%w: network output has %d cols, want 1", ErrShape, out.Cols())
			}
			// dMSE/dout = 2*(out - y)/batch.
			n.gbuf = matrix.RecycleNoClear(n.gbuf, out.Rows(), 1)
			grad := n.gbuf
			inv := 2.0 / float64(out.Rows())
			for i := 0; i < out.Rows(); i++ {
				grad.Set(i, 0, inv*(out.At(i, 0)-by[i]))
			}
			if err := n.backward(grad); err != nil {
				return err
			}
			n.Optimizer.Step(params)
		}
	}
	return nil
}

// Predict runs inference, returning one value per row.
func (n *Network) Predict(x *matrix.Matrix) ([]float64, error) {
	out, err := n.Forward(x, false)
	if err != nil {
		return nil, err
	}
	if out.Cols() != 1 {
		return nil, fmt.Errorf("%w: network output has %d cols, want 1", ErrShape, out.Cols())
	}
	preds := make([]float64, out.Rows())
	for i := range preds {
		preds[i] = out.At(i, 0)
	}
	return preds, nil
}

// MSELoss computes mean squared error between a 1-column output and y,
// exposed for tests and training diagnostics.
func MSELoss(out *matrix.Matrix, y []float64) (float64, error) {
	if out.Rows() != len(y) || out.Cols() != 1 {
		return 0, fmt.Errorf("%w: loss on %dx%d vs %d targets", ErrShape, out.Rows(), out.Cols(), len(y))
	}
	s := 0.0
	for i := range y {
		d := out.At(i, 0) - y[i]
		s += d * d
	}
	return s / float64(len(y)), nil
}
