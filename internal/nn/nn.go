// Package nn is the pure-Go neural-network substrate standing in for the
// Keras models in the paper's time-series prediction pipeline (Section
// IV-C). It provides dense, dropout, 1-D convolution (with causal dilation
// for the WaveNet/SeriesNet blocks), max-pooling and LSTM layers with full
// backpropagation, plus SGD and Adam optimizers.
//
// Data layout: a batch is a matrix with one sample per row. Sequence layers
// interpret each row time-major as [t0c0, t0c1, ..., t0cV, t1c0, ...] —
// exactly the layout produced by tswindow.CascadedWindows — with the
// sequence length and channel count fixed at layer construction.
//
// Every layer and the network are generic over the matrix element type
// (float32 | float64). The float64 instantiations keep their historical
// names (Network, Dense, ...) and bitwise behaviour; the float32
// instantiations form the reduced-precision training path: activations and
// gradients are computed and stored in float32 through the f32 matrix
// kernels, while the optimizers keep float64 master weights and the MSE
// loss/output gradient are accumulated in float64, so training stays close
// to the f64 trajectory (see the tolerance tests in precision_test.go and
// README "Kernel performance").
package nn

import (
	"errors"
	"fmt"
	"math/rand"

	"coda/internal/matrix"
)

// ErrShape is wrapped by layer shape-mismatch errors.
var ErrShape = errors.New("nn: shape mismatch")

// ParamOf is one learnable tensor with its accumulated gradient.
type ParamOf[T matrix.Float] struct {
	W    *matrix.Mat[T]
	Grad *matrix.Mat[T]
}

// Param is the float64 parameter type.
type Param = ParamOf[float64]

// newParam allocates a weight matrix and its gradient buffer.
func newParam[T matrix.Float](rows, cols int) *ParamOf[T] {
	return &ParamOf[T]{W: matrix.NewOf[T](rows, cols), Grad: matrix.NewOf[T](rows, cols)}
}

// zeroGrad clears the gradient buffer.
func (p *ParamOf[T]) zeroGrad() {
	d := p.Grad.Data()
	for i := range d {
		d[i] = 0
	}
}

// LayerOf is one differentiable stage of a network. Forward must cache
// whatever Backward needs; Backward receives dLoss/dOutput and returns
// dLoss/dInput while accumulating parameter gradients.
//
// Buffer lifetime contract: layers own arena-style scratch buffers, so the
// matrix returned by Forward is valid only until the layer's next Forward
// call, and the matrix returned by Backward only until its next Backward
// call (forward and backward buffers are distinct, so a Backward never
// clobbers a held Forward output). Callers that keep a result across calls
// must Clone it. Layers must not mutate their input x after Forward
// returns, nor the incoming grad — both belong to neighbouring layers.
type LayerOf[T matrix.Float] interface {
	Forward(x *matrix.Mat[T], training bool) (*matrix.Mat[T], error)
	Backward(grad *matrix.Mat[T]) (*matrix.Mat[T], error)
	Parameters() []*ParamOf[T]
}

// Layer is the float64 layer interface.
type Layer = LayerOf[float64]

// NetworkOf is a sequential stack of layers trained with mini-batch
// gradient descent on mean-squared error (regression) — the loss all
// estimators in the time-series pipeline optimize.
type NetworkOf[T matrix.Float] struct {
	Layers    []LayerOf[T]
	Optimizer OptimizerOf[T]

	// Per-batch training scratch, reused across steps so Fit does not
	// allocate per mini-batch.
	bx   *matrix.Mat[T]
	gbuf *matrix.Mat[T]
	by   []T
}

// Network is the float64 network.
type Network = NetworkOf[float64]

// NewNetworkOf builds a sequential network; opt may be nil, defaulting to
// Adam(1e-2).
func NewNetworkOf[T matrix.Float](opt OptimizerOf[T], layers ...LayerOf[T]) *NetworkOf[T] {
	if opt == nil {
		opt = NewAdamOf[T](0.01)
	}
	return &NetworkOf[T]{Layers: layers, Optimizer: opt}
}

// NewNetwork builds a float64 sequential network; opt may be nil,
// defaulting to Adam(1e-2).
func NewNetwork(opt Optimizer, layers ...Layer) *Network {
	return NewNetworkOf[float64](opt, layers...)
}

// Parameters returns all learnable parameters in layer order.
func (n *NetworkOf[T]) Parameters() []*ParamOf[T] {
	var out []*ParamOf[T]
	for _, l := range n.Layers {
		out = append(out, l.Parameters()...)
	}
	return out
}

// Forward runs the full stack.
func (n *NetworkOf[T]) Forward(x *matrix.Mat[T], training bool) (*matrix.Mat[T], error) {
	var err error
	for i, l := range n.Layers {
		x, err = l.Forward(x, training)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d forward: %w", i, err)
		}
	}
	return x, nil
}

// backward runs the full stack in reverse.
func (n *NetworkOf[T]) backward(grad *matrix.Mat[T]) error {
	var err error
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad, err = n.Layers[i].Backward(grad)
		if err != nil {
			return fmt.Errorf("nn: layer %d backward: %w", i, err)
		}
	}
	return nil
}

// FitConfig controls Network.Fit.
type FitConfig struct {
	Epochs    int   // passes over the data (default 50)
	BatchSize int   // mini-batch rows (default 32)
	Seed      int64 // shuffling seed
}

func (cfg *FitConfig) setDefaults() {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 50
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
}

// Fit trains on (x, y) minimizing MSE. y has one value per row.
func (n *NetworkOf[T]) Fit(x *matrix.Mat[T], y []T, cfg FitConfig) error {
	if x.Rows() != len(y) {
		return fmt.Errorf("%w: %d rows vs %d targets", ErrShape, x.Rows(), len(y))
	}
	if x.Rows() == 0 {
		return fmt.Errorf("nn: empty training set")
	}
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	params := n.Parameters()
	order := make([]int, x.Rows())
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(order))
			idx := order[start:end]
			n.bx = matrix.SelectRowsInto(n.bx, x, idx)
			if err := n.fitStep(n.bx, idx, y, params); err != nil {
				return err
			}
		}
	}
	return nil
}

// fitStep runs one mini-batch: forward, MSE gradient, backward, optimizer
// step. bx holds the gathered batch rows; idx indexes y.
func (n *NetworkOf[T]) fitStep(bx *matrix.Mat[T], idx []int, y []T, params []*ParamOf[T]) error {
	n.by = matrix.RecycleVec(n.by, len(idx))
	by := n.by
	for k, i := range idx {
		by[k] = y[i]
	}
	for _, p := range params {
		p.zeroGrad()
	}
	out, err := n.Forward(bx, true)
	if err != nil {
		return err
	}
	if out.Cols() != 1 {
		return fmt.Errorf("%w: network output has %d cols, want 1", ErrShape, out.Cols())
	}
	// dMSE/dout = 2*(out - y)/batch, accumulated in float64 and rounded
	// once into the gradient's element type.
	n.gbuf = matrix.RecycleNoClear(n.gbuf, out.Rows(), 1)
	grad := n.gbuf
	inv := 2.0 / float64(out.Rows())
	for i := 0; i < out.Rows(); i++ {
		grad.Set(i, 0, T(inv*(float64(out.At(i, 0))-float64(by[i]))))
	}
	if err := n.backward(grad); err != nil {
		return err
	}
	n.Optimizer.Step(params)
	return nil
}

// Predict runs inference, returning one value per row.
func (n *NetworkOf[T]) Predict(x *matrix.Mat[T]) ([]float64, error) {
	out, err := n.Forward(x, false)
	if err != nil {
		return nil, err
	}
	if out.Cols() != 1 {
		return nil, fmt.Errorf("%w: network output has %d cols, want 1", ErrShape, out.Cols())
	}
	preds := make([]float64, out.Rows())
	for i := range preds {
		preds[i] = float64(out.At(i, 0))
	}
	return preds, nil
}

// MSELoss computes mean squared error between a 1-column output and y,
// exposed for tests and training diagnostics. The sum runs in float64 for
// either element type.
func MSELoss[T matrix.Float](out *matrix.Mat[T], y []T) (float64, error) {
	if out.Rows() != len(y) || out.Cols() != 1 {
		return 0, fmt.Errorf("%w: loss on %dx%d vs %d targets", ErrShape, out.Rows(), out.Cols(), len(y))
	}
	s := 0.0
	for i := range y {
		d := float64(out.At(i, 0)) - float64(y[i])
		s += d * d
	}
	return s / float64(len(y)), nil
}
