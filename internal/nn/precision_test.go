package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"coda/internal/matrix"
)

// raceNet32 is the float32 twin of raceNet: identical architectures and
// seeds, so the two precisions start from the same (rounded) weights.
func raceNet32(kind int, seed int64) *NetworkOf[float32] {
	rng := rand.New(rand.NewSource(seed))
	switch kind % 3 {
	case 0:
		return NewNetworkOf[float32](NewAdamOf[float32](0.01),
			NewDenseOf[float32](8, 12, rng), NewReLUOf[float32](), NewDenseOf[float32](12, 1, rng))
	case 1:
		return NewNetworkOf[float32](NewAdamOf[float32](0.01),
			NewLSTMOf[float32](4, 2, 6, rng), NewDenseOf[float32](6, 1, rng))
	default:
		return NewNetworkOf[float32](NewAdamOf[float32](0.01),
			NewConv1DOf[float32](4, 2, 5, 2, 1, true, rng),
			NewLastTimestepOf[float32](4, 5),
			NewDenseOf[float32](5, 1, rng))
	}
}

// TestF32FitTracksF64 is the precision contract test: for every layer
// family and several seeds, training the float32 network must track the
// float64 network trained from the same seed within a small relative
// tolerance, both in predictions and in final training loss. The f64
// master-weight accumulator in the optimizers is what keeps the drift this
// small over many updates.
func TestF32FitTracksF64(t *testing.T) {
	x, y := raceData()
	x32 := matrix.ConvertInto[float32](nil, x)
	y32 := matrix.ConvertVec[float32](nil, y)
	cfg := FitConfig{Epochs: 5, BatchSize: 8, Seed: 0}

	const relTol = 2e-2 // documented f32-vs-f64 tolerance (README)
	for kind := 0; kind < 3; kind++ {
		for _, seed := range []int64{101, 202, 303} {
			t.Run(fmt.Sprintf("kind%d_seed%d", kind, seed), func(t *testing.T) {
				cfg := cfg
				cfg.Seed = seed
				n64 := raceNet(kind, seed)
				if err := n64.Fit(x, y, cfg); err != nil {
					t.Fatal(err)
				}
				p64, err := n64.Predict(x)
				if err != nil {
					t.Fatal(err)
				}
				n32 := raceNet32(kind, seed)
				if err := n32.Fit(x32, y32, cfg); err != nil {
					t.Fatal(err)
				}
				p32, err := n32.Predict(x32)
				if err != nil {
					t.Fatal(err)
				}
				if len(p32) != len(p64) {
					t.Fatalf("prediction lengths differ: %d vs %d", len(p32), len(p64))
				}
				scale := 0.0
				for _, v := range p64 {
					scale = math.Max(scale, math.Abs(v))
				}
				for i := range p64 {
					diff := math.Abs(p32[i] - p64[i])
					if diff > relTol*(scale+1) {
						t.Fatalf("prediction %d diverged: f32 %v vs f64 %v (diff %v > tol %v)",
							i, p32[i], p64[i], diff, relTol*(scale+1))
					}
				}

				out64, err := n64.Forward(x, false)
				if err != nil {
					t.Fatal(err)
				}
				out32, err := n32.Forward(x32, false)
				if err != nil {
					t.Fatal(err)
				}
				l64, err := MSELoss(out64, y)
				if err != nil {
					t.Fatal(err)
				}
				l32, err := MSELoss(out32, y32)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(l32-l64) > relTol*(l64+1e-3) {
					t.Fatalf("training loss diverged: f32 %v vs f64 %v", l32, l64)
				}
			})
		}
	}
}

// TestF32ParallelNetworksMatchSerial is the float32 twin of
// TestParallelNetworksMatchSerial: the reduced-precision kernels keep the
// deterministic-summation contract, so concurrently trained f32 networks
// (kernel workers at 8, many goroutines) must be bitwise identical to
// serial twins. Run under -race in CI this also stresses the f32 arenas.
func TestF32ParallelNetworksMatchSerial(t *testing.T) {
	prev := matrix.Parallelism()
	matrix.SetMaxWorkers(8)
	defer matrix.SetMaxWorkers(prev)

	x, y := raceData()
	x32 := matrix.ConvertInto[float32](nil, x)
	y32 := matrix.ConvertVec[float32](nil, y)
	cfg := FitConfig{Epochs: 3, BatchSize: 8, Seed: 5}

	const n = 9
	want := make([][]float64, n)
	for i := 0; i < n; i++ {
		net := raceNet32(i, int64(100+i))
		if err := net.Fit(x32, y32, cfg); err != nil {
			t.Fatal(err)
		}
		preds, err := net.Predict(x32)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = preds
	}

	got := make([][]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			net := raceNet32(i, int64(100+i))
			if err := net.Fit(x32, y32, cfg); err != nil {
				errs[i] = err
				return
			}
			got[i], errs[i] = net.Predict(x32)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("net %d: %v", i, errs[i])
		}
		for k := range got[i] {
			if math.Float64bits(got[i][k]) != math.Float64bits(want[i][k]) {
				t.Fatalf("net %d pred %d: parallel %v != serial %v", i, k, got[i][k], want[i][k])
			}
		}
	}
}

// TestParsePrecision pins the flag grammar for -nn-precision.
func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
	}{
		{"", F64}, {"f64", F64}, {"float64", F64}, {"64", F64},
		{"f32", F32}, {"float32", F32}, {"32", F32},
	} {
		got, err := ParsePrecision(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePrecision(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePrecision("f16"); err == nil {
		t.Fatal("want error for f16")
	}
}
