package nn

import (
	"fmt"
	"math"
	"math/rand"

	"coda/internal/matrix"
)

// LSTMOf processes time-major sequence rows through a single LSTM layer.
// With ReturnSeq false it emits the final hidden state
// (batch, SeqLen*InSize) -> (batch, Hidden); with ReturnSeq true it emits
// every hidden state (batch, SeqLen*Hidden), allowing LSTMs to stack for
// the paper's deep four-layer architecture. Backward runs full
// backpropagation through time.
//
// Gate layout in the packed weight matrices is [input | forget | cell | output],
// each Hidden wide.
//
// The recurrence is batched: the input projection for every timestep is one
// (batch*SeqLen) x InSize by InSize x 4*Hidden matmul over a no-copy view of
// the input, and BPTT collects all pre-activation gate gradients into one
// (batch*SeqLen) x 4*Hidden buffer so the input-weight gradient and the
// input gradient are each a single matmul. Values can differ from a
// per-element recurrence in the last bits (summation order), bounded by
// normal dot-product rounding; results are still deterministic for a seed.
// Gate activations run in float64 for either element type.
type LSTMOf[T matrix.Float] struct {
	SeqLen    int
	InSize    int
	Hidden    int
	ReturnSeq bool

	wx *ParamOf[T] // InSize x 4*Hidden
	wh *ParamOf[T] // Hidden x 4*Hidden
	b  *ParamOf[T] // 1 x 4*Hidden

	// Forward caches for BPTT (per timestep), recycled across calls.
	lastX *matrix.Mat[T]
	hs    []*matrix.Mat[T] // hidden states, hs[t] is batch x Hidden (t = -1 stored at index 0)
	cs    []*matrix.Mat[T] // cell states, same indexing
	gates []*matrix.Mat[T] // post-activation gates, batch x 4*Hidden

	// Scratch buffers (see LayerOf contract).
	xw         *matrix.Mat[T] // (batch*SeqLen) x 4H input projections
	hw         *matrix.Mat[T] // batch x 4H recurrent projection
	out        *matrix.Mat[T]
	dGt        *matrix.Mat[T] // batch x 4H pre-activation gate grads at t
	dGAll      *matrix.Mat[T] // (batch*SeqLen) x 4H collected gate grads
	dh, dhNext *matrix.Mat[T]
	dc         *matrix.Mat[T]
	dx         *matrix.Mat[T]
}

// LSTM is the float64 LSTM layer.
type LSTM = LSTMOf[float64]

// NewLSTMOf builds an LSTM with Glorot-uniform weights and forget-gate
// bias 1. The rng stream is consumed identically for either element type.
func NewLSTMOf[T matrix.Float](seqLen, inSize, hidden int, rng *rand.Rand) *LSTMOf[T] {
	l := &LSTMOf[T]{
		SeqLen: seqLen, InSize: inSize, Hidden: hidden,
		wx: newParam[T](inSize, 4*hidden),
		wh: newParam[T](hidden, 4*hidden),
		b:  newParam[T](1, 4*hidden),
	}
	initUniform := func(p *ParamOf[T], fanIn int) {
		limit := math.Sqrt(6.0 / float64(fanIn+4*hidden))
		d := p.W.Data()
		for i := range d {
			d[i] = T((2*rng.Float64() - 1) * limit)
		}
	}
	initUniform(l.wx, inSize)
	initUniform(l.wh, hidden)
	// Forget-gate bias of 1 helps gradient flow early in training.
	for j := hidden; j < 2*hidden; j++ {
		l.b.W.Set(0, j, 1)
	}
	return l
}

// NewLSTM builds a float64 LSTM with Glorot-uniform weights and forget-gate
// bias 1.
func NewLSTM(seqLen, inSize, hidden int, rng *rand.Rand) *LSTM {
	return NewLSTMOf[float64](seqLen, inSize, hidden, rng)
}

// recycleStates resizes a per-timestep buffer slice, keeping entries so
// their backing arrays are reused.
func recycleStates[T matrix.Float](ms []*matrix.Mat[T], n int) []*matrix.Mat[T] {
	if cap(ms) >= n {
		return ms[:n]
	}
	out := make([]*matrix.Mat[T], n)
	copy(out, ms)
	return out
}

// Forward runs the recurrence and returns the final hidden state.
func (l *LSTMOf[T]) Forward(x *matrix.Mat[T], _ bool) (*matrix.Mat[T], error) {
	if x.Cols() != l.SeqLen*l.InSize {
		return nil, fmt.Errorf("%w: lstm expects %d cols (%d x %d), got %d", ErrShape, l.SeqLen*l.InSize, l.SeqLen, l.InSize, x.Cols())
	}
	batch := x.Rows()
	h4 := 4 * l.Hidden
	l.lastX = x

	// One matmul projects every timestep: row i*SeqLen+t of the view is
	// sample i's input at time t.
	xview, err := matrix.FromSlice(batch*l.SeqLen, l.InSize, x.Data())
	if err != nil {
		return nil, fmt.Errorf("nn: lstm forward view: %w", err)
	}
	l.xw, err = matrix.MulInto(l.xw, xview, l.wx.W)
	if err != nil {
		return nil, fmt.Errorf("nn: lstm forward xW: %w", err)
	}

	l.hs = recycleStates(l.hs, l.SeqLen+1)
	l.cs = recycleStates(l.cs, l.SeqLen+1)
	l.gates = recycleStates(l.gates, l.SeqLen)
	l.hs[0] = matrix.Recycle(l.hs[0], batch, l.Hidden)
	l.cs[0] = matrix.Recycle(l.cs[0], batch, l.Hidden)

	bias := l.b.W.Row(0)
	for t := 0; t < l.SeqLen; t++ {
		hPrev := l.hs[t]
		cPrev := l.cs[t]
		l.hw, err = matrix.MulInto(l.hw, hPrev, l.wh.W)
		if err != nil {
			return nil, fmt.Errorf("nn: lstm forward hW: %w", err)
		}
		g := matrix.RecycleNoClear(l.gates[t], batch, h4)
		hNew := matrix.RecycleNoClear(l.hs[t+1], batch, l.Hidden)
		cNew := matrix.RecycleNoClear(l.cs[t+1], batch, l.Hidden)
		for i := 0; i < batch; i++ {
			grow := g.Row(i)
			xwrow := l.xw.Row(i*l.SeqLen + t)
			hwrow := l.hw.Row(i)
			for j := 0; j < h4; j++ {
				grow[j] = xwrow[j] + hwrow[j] + bias[j]
			}
			// Activations: i, f -> sigmoid; g (cell candidate) -> tanh; o -> sigmoid.
			crow := cNew.Row(i)
			cprow := cPrev.Row(i)
			hnrow := hNew.Row(i)
			for j := 0; j < l.Hidden; j++ {
				ig := sigmoidNN(float64(grow[j]))
				fg := sigmoidNN(float64(grow[l.Hidden+j]))
				cg := math.Tanh(float64(grow[2*l.Hidden+j]))
				og := sigmoidNN(float64(grow[3*l.Hidden+j]))
				grow[j], grow[l.Hidden+j], grow[2*l.Hidden+j], grow[3*l.Hidden+j] = T(ig), T(fg), T(cg), T(og)
				crow[j] = T(fg*float64(cprow[j]) + ig*cg)
				hnrow[j] = T(og * math.Tanh(float64(crow[j])))
			}
		}
		l.gates[t] = g
		l.hs[t+1] = hNew
		l.cs[t+1] = cNew
	}
	if !l.ReturnSeq {
		out := matrix.RecycleNoClear(l.out, batch, l.Hidden)
		l.out = out
		copy(out.Data(), l.hs[l.SeqLen].Data())
		return out, nil
	}
	out := matrix.RecycleNoClear(l.out, batch, l.SeqLen*l.Hidden)
	l.out = out
	for t := 0; t < l.SeqLen; t++ {
		h := l.hs[t+1]
		for i := 0; i < batch; i++ {
			copy(out.Row(i)[t*l.Hidden:(t+1)*l.Hidden], h.Row(i))
		}
	}
	return out, nil
}

// Backward runs BPTT from the final-hidden-state gradient.
func (l *LSTMOf[T]) Backward(grad *matrix.Mat[T]) (*matrix.Mat[T], error) {
	if l.lastX == nil {
		return nil, fmt.Errorf("nn: lstm backward before forward")
	}
	batch := l.lastX.Rows()
	h4 := 4 * l.Hidden
	wantCols := l.Hidden
	if l.ReturnSeq {
		wantCols = l.SeqLen * l.Hidden
	}
	if grad.Rows() != batch || grad.Cols() != wantCols {
		return nil, fmt.Errorf("%w: lstm backward grad %dx%d, want %dx%d", ErrShape, grad.Rows(), grad.Cols(), batch, wantCols)
	}
	var dh *matrix.Mat[T]
	if l.ReturnSeq {
		dh = matrix.Recycle(l.dh, batch, l.Hidden)
	} else {
		dh = matrix.RecycleNoClear(l.dh, batch, l.Hidden)
		copy(dh.Data(), grad.Data())
	}
	dhNext := matrix.RecycleNoClear(l.dhNext, batch, l.Hidden)
	dc := matrix.Recycle(l.dc, batch, l.Hidden)
	dGAll := matrix.RecycleNoClear(l.dGAll, batch*l.SeqLen, h4)

	for t := l.SeqLen - 1; t >= 0; t-- {
		if l.ReturnSeq {
			// Add the loss gradient arriving directly at this timestep's
			// hidden output.
			for i := 0; i < batch; i++ {
				dst := dh.Row(i)
				src := grad.Row(i)[t*l.Hidden : (t+1)*l.Hidden]
				for j, v := range src {
					dst[j] += v
				}
			}
		}
		g := l.gates[t]
		cPrev := l.cs[t]
		c := l.cs[t+1]
		hPrev := l.hs[t]
		dGt := matrix.RecycleNoClear(l.dGt, batch, h4)
		l.dGt = dGt
		for i := 0; i < batch; i++ {
			grow := g.Row(i)
			crow := c.Row(i)
			cprow := cPrev.Row(i)
			dhrow := dh.Row(i)
			dcrow := dc.Row(i)
			dgrow := dGt.Row(i)
			for j := 0; j < l.Hidden; j++ {
				ig := float64(grow[j])
				fg := float64(grow[l.Hidden+j])
				cg := float64(grow[2*l.Hidden+j])
				og := float64(grow[3*l.Hidden+j])
				tc := math.Tanh(float64(crow[j]))
				dct := float64(dcrow[j]) + float64(dhrow[j])*og*(1-tc*tc)
				dgrow[j] = T(dct * cg * ig * (1 - ig))
				dgrow[l.Hidden+j] = T(dct * float64(cprow[j]) * fg * (1 - fg))
				dgrow[2*l.Hidden+j] = T(dct * ig * (1 - cg*cg))
				dgrow[3*l.Hidden+j] = T(float64(dhrow[j]) * tc * og * (1 - og))
				// Next (earlier) timestep's cell gradient.
				dcrow[j] = T(dct * fg)
			}
			copy(dGAll.Row(i*l.SeqLen+t), dgrow)
		}
		// Recurrent-weight gradient and the hidden-state gradient for the
		// earlier timestep, each as one matmul over the batch.
		if err := matrix.MulTransposeAAccum(l.wh.Grad, hPrev, dGt); err != nil {
			return nil, fmt.Errorf("nn: lstm backward dWh: %w", err)
		}
		var err error
		dhNext, err = matrix.MulTransposeBInto(dhNext, dGt, l.wh.W)
		if err != nil {
			return nil, fmt.Errorf("nn: lstm backward dh: %w", err)
		}
		dh, dhNext = dhNext, dh
	}
	l.dh, l.dhNext = dh, dhNext

	// Bias gradient: column sums of every timestep's gate gradient.
	bd := l.b.Grad.Row(0)
	for r := 0; r < dGAll.Rows(); r++ {
		for j, v := range dGAll.Row(r) {
			bd[j] += v
		}
	}
	// Input-weight gradient and input gradient: one matmul each over the
	// collected gate gradients.
	xview, err := matrix.FromSlice(batch*l.SeqLen, l.InSize, l.lastX.Data())
	if err != nil {
		return nil, fmt.Errorf("nn: lstm backward view: %w", err)
	}
	if err := matrix.MulTransposeAAccum(l.wx.Grad, xview, dGAll); err != nil {
		return nil, fmt.Errorf("nn: lstm backward dWx: %w", err)
	}
	dx := matrix.RecycleNoClear(l.dx, batch, l.SeqLen*l.InSize)
	l.dx = dx
	dxview, err := matrix.FromSlice(batch*l.SeqLen, l.InSize, dx.Data())
	if err != nil {
		return nil, fmt.Errorf("nn: lstm backward dx view: %w", err)
	}
	if _, err := matrix.MulTransposeBInto(dxview, dGAll, l.wx.W); err != nil {
		return nil, fmt.Errorf("nn: lstm backward dx: %w", err)
	}
	l.dGAll = dGAll
	return dx, nil
}

// Parameters implements LayerOf.
func (l *LSTMOf[T]) Parameters() []*ParamOf[T] { return []*ParamOf[T]{l.wx, l.wh, l.b} }

func sigmoidNN(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
