package nn

import (
	"fmt"
	"math"
	"math/rand"

	"coda/internal/matrix"
)

// LSTM processes time-major sequence rows through a single LSTM layer.
// With ReturnSeq false it emits the final hidden state
// (batch, SeqLen*InSize) -> (batch, Hidden); with ReturnSeq true it emits
// every hidden state (batch, SeqLen*Hidden), allowing LSTMs to stack for
// the paper's deep four-layer architecture. Backward runs full
// backpropagation through time.
//
// Gate layout in the packed weight matrices is [input | forget | cell | output],
// each Hidden wide.
type LSTM struct {
	SeqLen    int
	InSize    int
	Hidden    int
	ReturnSeq bool

	wx *Param // InSize x 4*Hidden
	wh *Param // Hidden x 4*Hidden
	b  *Param // 1 x 4*Hidden

	// Forward caches for BPTT (per timestep).
	lastX *matrix.Matrix
	hs    []*matrix.Matrix // hidden states, hs[t] is batch x Hidden (t = -1 stored at index 0)
	cs    []*matrix.Matrix // cell states, same indexing
	gates []*matrix.Matrix // post-activation gates, batch x 4*Hidden
}

// NewLSTM builds an LSTM with Glorot-uniform weights and forget-gate bias 1.
func NewLSTM(seqLen, inSize, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		SeqLen: seqLen, InSize: inSize, Hidden: hidden,
		wx: newParam(inSize, 4*hidden),
		wh: newParam(hidden, 4*hidden),
		b:  newParam(1, 4*hidden),
	}
	initUniform := func(p *Param, fanIn int) {
		limit := math.Sqrt(6.0 / float64(fanIn+4*hidden))
		d := p.W.Data()
		for i := range d {
			d[i] = (2*rng.Float64() - 1) * limit
		}
	}
	initUniform(l.wx, inSize)
	initUniform(l.wh, hidden)
	// Forget-gate bias of 1 helps gradient flow early in training.
	for j := hidden; j < 2*hidden; j++ {
		l.b.W.Set(0, j, 1)
	}
	return l
}

// Forward runs the recurrence and returns the final hidden state.
func (l *LSTM) Forward(x *matrix.Matrix, _ bool) (*matrix.Matrix, error) {
	if x.Cols() != l.SeqLen*l.InSize {
		return nil, fmt.Errorf("%w: lstm expects %d cols (%d x %d), got %d", ErrShape, l.SeqLen*l.InSize, l.SeqLen, l.InSize, x.Cols())
	}
	batch := x.Rows()
	h4 := 4 * l.Hidden
	l.lastX = x
	l.hs = make([]*matrix.Matrix, l.SeqLen+1)
	l.cs = make([]*matrix.Matrix, l.SeqLen+1)
	l.gates = make([]*matrix.Matrix, l.SeqLen)
	l.hs[0] = matrix.New(batch, l.Hidden)
	l.cs[0] = matrix.New(batch, l.Hidden)

	for t := 0; t < l.SeqLen; t++ {
		g := matrix.New(batch, h4)
		hPrev := l.hs[t]
		cPrev := l.cs[t]
		hNew := matrix.New(batch, l.Hidden)
		cNew := matrix.New(batch, l.Hidden)
		bias := l.b.W.Row(0)
		for i := 0; i < batch; i++ {
			xt := x.Row(i)[t*l.InSize : (t+1)*l.InSize]
			grow := g.Row(i)
			copy(grow, bias)
			for a, xv := range xt {
				if xv == 0 {
					continue
				}
				wrow := l.wx.W.Row(a)
				for j := 0; j < h4; j++ {
					grow[j] += xv * wrow[j]
				}
			}
			hrow := hPrev.Row(i)
			for a, hv := range hrow {
				if hv == 0 {
					continue
				}
				wrow := l.wh.W.Row(a)
				for j := 0; j < h4; j++ {
					grow[j] += hv * wrow[j]
				}
			}
			// Activations: i, f -> sigmoid; g (cell candidate) -> tanh; o -> sigmoid.
			crow := cNew.Row(i)
			cprow := cPrev.Row(i)
			hnrow := hNew.Row(i)
			for j := 0; j < l.Hidden; j++ {
				ig := sigmoidNN(grow[j])
				fg := sigmoidNN(grow[l.Hidden+j])
				cg := math.Tanh(grow[2*l.Hidden+j])
				og := sigmoidNN(grow[3*l.Hidden+j])
				grow[j], grow[l.Hidden+j], grow[2*l.Hidden+j], grow[3*l.Hidden+j] = ig, fg, cg, og
				crow[j] = fg*cprow[j] + ig*cg
				hnrow[j] = og * math.Tanh(crow[j])
			}
		}
		l.gates[t] = g
		l.hs[t+1] = hNew
		l.cs[t+1] = cNew
	}
	if !l.ReturnSeq {
		return l.hs[l.SeqLen].Clone(), nil
	}
	out := matrix.New(batch, l.SeqLen*l.Hidden)
	for t := 0; t < l.SeqLen; t++ {
		h := l.hs[t+1]
		for i := 0; i < batch; i++ {
			copy(out.Row(i)[t*l.Hidden:(t+1)*l.Hidden], h.Row(i))
		}
	}
	return out, nil
}

// Backward runs BPTT from the final-hidden-state gradient.
func (l *LSTM) Backward(grad *matrix.Matrix) (*matrix.Matrix, error) {
	if l.lastX == nil {
		return nil, fmt.Errorf("nn: lstm backward before forward")
	}
	batch := l.lastX.Rows()
	wantCols := l.Hidden
	if l.ReturnSeq {
		wantCols = l.SeqLen * l.Hidden
	}
	if grad.Rows() != batch || grad.Cols() != wantCols {
		return nil, fmt.Errorf("%w: lstm backward grad %dx%d, want %dx%d", ErrShape, grad.Rows(), grad.Cols(), batch, wantCols)
	}
	dx := matrix.New(batch, l.lastX.Cols())
	var dh *matrix.Matrix
	if l.ReturnSeq {
		dh = matrix.New(batch, l.Hidden)
	} else {
		dh = grad.Clone()
	}
	dc := matrix.New(batch, l.Hidden)

	for t := l.SeqLen - 1; t >= 0; t-- {
		if l.ReturnSeq {
			// Add the loss gradient arriving directly at this timestep's
			// hidden output.
			for i := 0; i < batch; i++ {
				dst := dh.Row(i)
				src := grad.Row(i)[t*l.Hidden : (t+1)*l.Hidden]
				for j, v := range src {
					dst[j] += v
				}
			}
		}
		g := l.gates[t]
		cPrev := l.cs[t]
		c := l.cs[t+1]
		hPrev := l.hs[t]
		dhNext := matrix.New(batch, l.Hidden)
		for i := 0; i < batch; i++ {
			grow := g.Row(i)
			crow := c.Row(i)
			cprow := cPrev.Row(i)
			dhrow := dh.Row(i)
			dcrow := dc.Row(i)
			xt := l.lastX.Row(i)[t*l.InSize : (t+1)*l.InSize]
			dxt := dx.Row(i)[t*l.InSize : (t+1)*l.InSize]
			hprow := hPrev.Row(i)
			dhprow := dhNext.Row(i)
			for j := 0; j < l.Hidden; j++ {
				ig, fg, cg, og := grow[j], grow[l.Hidden+j], grow[2*l.Hidden+j], grow[3*l.Hidden+j]
				tc := math.Tanh(crow[j])
				dct := dcrow[j] + dhrow[j]*og*(1-tc*tc)
				dig := dct * cg * ig * (1 - ig)
				dfg := dct * cprow[j] * fg * (1 - fg)
				dcg := dct * ig * (1 - cg*cg)
				dog := dhrow[j] * tc * og * (1 - og)
				// Next (earlier) timestep's cell gradient.
				dcrow[j] = dct * fg

				// Pre-activation gate gradients drive all weight grads.
				preGrads := [4]float64{dig, dfg, dcg, dog}
				for gi, dpre := range preGrads {
					col := gi*l.Hidden + j
					l.b.Grad.Set(0, col, l.b.Grad.At(0, col)+dpre)
					for a, xv := range xt {
						l.wx.Grad.Set(a, col, l.wx.Grad.At(a, col)+dpre*xv)
						dxt[a] += dpre * l.wx.W.At(a, col)
					}
					for a, hv := range hprow {
						l.wh.Grad.Set(a, col, l.wh.Grad.At(a, col)+dpre*hv)
						dhprow[a] += dpre * l.wh.W.At(a, col)
					}
				}
			}
		}
		dh = dhNext
	}
	return dx, nil
}

// Parameters implements Layer.
func (l *LSTM) Parameters() []*Param { return []*Param{l.wx, l.wh, l.b} }

func sigmoidNN(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
