package nn

import (
	"fmt"
	"math/rand"

	"coda/internal/matrix"
)

// WindowSource is a strided, affine-scaled view of a raw time series: window
// w covers WindowLen consecutive timesteps of Vars channels, and CopyStep
// yields one (scaled) timestep of one window. It is the zero-copy
// counterpart of a materialized windowed dataset matrix — implemented by
// dataset.WindowView — and lets the first Conv1D layer's im2col gather read
// straight from the source series, skipping the (windows x WindowLen*Vars)
// intermediate entirely.
//
// CopyStep and CopyStep32 must produce the same values a materializing
// windower would: each element scaled independently, so the f64 gather is
// bitwise identical to reading the materialized matrix and the f32 gather
// rounds each element exactly once.
type WindowSource interface {
	Windows() int   // number of windows
	WindowLen() int // timesteps per window
	Vars() int      // channels per timestep

	// CopyStep writes the Vars scaled values of window w at timestep t
	// (0 <= t < WindowLen) into dst, which has length >= Vars.
	CopyStep(dst []float64, w, t int)
	// CopyStep32 is CopyStep with a single f64→f32 rounding per element.
	CopyStep32(dst []float32, w, t int)
}

// windowForwarder is implemented by layers (Conv1DOf) whose forward pass can
// gather its input directly from a WindowSource.
type windowForwarder[T matrix.Float] interface {
	ForwardWindows(src WindowSource, idx []int, training bool) (*matrix.Mat[T], error)
}

// gatherWindows materializes the windows idx of src into dst, one full
// window per row — the fallback when the first layer cannot gather for
// itself. Element values are identical to the fused path's gathers.
func gatherWindows[T matrix.Float](dst *matrix.Mat[T], src WindowSource, idx []int) *matrix.Mat[T] {
	h, v := src.WindowLen(), src.Vars()
	dst = matrix.Recycle(dst, len(idx), h*v)
	switch d := any(dst).(type) {
	case *matrix.Mat[float64]:
		for k, w := range idx {
			row := d.Row(k)
			for t := 0; t < h; t++ {
				src.CopyStep(row[t*v:(t+1)*v], w, t)
			}
		}
	case *matrix.Mat[float32]:
		for k, w := range idx {
			row := d.Row(k)
			for t := 0; t < h; t++ {
				src.CopyStep32(row[t*v:(t+1)*v], w, t)
			}
		}
	}
	return dst
}

// forwardWindowed runs the stack on the windows idx: the first layer
// gathers from src directly when it can (Conv1DOf), otherwise the windows
// are materialized into the network's batch scratch first.
func (n *NetworkOf[T]) forwardWindowed(src WindowSource, idx []int, training bool) (*matrix.Mat[T], error) {
	if len(n.Layers) == 0 {
		return nil, fmt.Errorf("nn: empty network")
	}
	var x *matrix.Mat[T]
	var err error
	if wf, ok := n.Layers[0].(windowForwarder[T]); ok {
		x, err = wf.ForwardWindows(src, idx, training)
		if err != nil {
			return nil, fmt.Errorf("nn: layer 0 forward: %w", err)
		}
	} else {
		n.bx = gatherWindows(n.bx, src, idx)
		x, err = n.Layers[0].Forward(n.bx, training)
		if err != nil {
			return nil, fmt.Errorf("nn: layer 0 forward: %w", err)
		}
	}
	for i := 1; i < len(n.Layers); i++ {
		x, err = n.Layers[i].Forward(x, training)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d forward: %w", i, err)
		}
	}
	return x, nil
}

// FitWindowed trains like Fit but draws mini-batches from a WindowSource
// instead of a materialized window matrix. Shuffling consumes the rng
// exactly as Fit does for the same window count, and batch targets follow
// the same gather order, so for float64 the training trajectory is bitwise
// identical to Fit on the materialized windows.
func (n *NetworkOf[T]) FitWindowed(src WindowSource, y []T, cfg FitConfig) error {
	if src.Windows() != len(y) {
		return fmt.Errorf("%w: %d windows vs %d targets", ErrShape, src.Windows(), len(y))
	}
	if len(y) == 0 {
		return fmt.Errorf("nn: empty training set")
	}
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	params := n.Parameters()
	order := make([]int, len(y))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(order))
			idx := order[start:end]
			if err := n.fitStepWindowed(src, idx, y, params); err != nil {
				return err
			}
		}
	}
	return nil
}

// fitStepWindowed is fitStep with a windowed forward pass.
func (n *NetworkOf[T]) fitStepWindowed(src WindowSource, idx []int, y []T, params []*ParamOf[T]) error {
	n.by = matrix.RecycleVec(n.by, len(idx))
	by := n.by
	for k, i := range idx {
		by[k] = y[i]
	}
	for _, p := range params {
		p.zeroGrad()
	}
	out, err := n.forwardWindowed(src, idx, true)
	if err != nil {
		return err
	}
	if out.Cols() != 1 {
		return fmt.Errorf("%w: network output has %d cols, want 1", ErrShape, out.Cols())
	}
	n.gbuf = matrix.RecycleNoClear(n.gbuf, out.Rows(), 1)
	grad := n.gbuf
	inv := 2.0 / float64(out.Rows())
	for i := 0; i < out.Rows(); i++ {
		grad.Set(i, 0, T(inv*(float64(out.At(i, 0))-float64(by[i]))))
	}
	if err := n.backward(grad); err != nil {
		return err
	}
	n.Optimizer.Step(params)
	return nil
}

// PredictWindowed runs inference over every window of src in one pass,
// matching Predict on the materialized window matrix.
func (n *NetworkOf[T]) PredictWindowed(src WindowSource) ([]float64, error) {
	idx := make([]int, src.Windows())
	for i := range idx {
		idx[i] = i
	}
	out, err := n.forwardWindowed(src, idx, false)
	if err != nil {
		return nil, err
	}
	if out.Cols() != 1 {
		return nil, fmt.Errorf("%w: network output has %d cols, want 1", ErrShape, out.Cols())
	}
	preds := make([]float64, out.Rows())
	for i := range preds {
		preds[i] = float64(out.At(i, 0))
	}
	return preds, nil
}
