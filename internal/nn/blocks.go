package nn

import (
	"fmt"
	"math"
	"math/rand"

	"coda/internal/matrix"
)

// GatedResidualBlockOf is one WaveNet building block: two dilated causal
// convolutions feed a gated activation tanh(f) * sigmoid(g), a 1x1
// convolution projects the result back, and the block output adds the
// input (residual connection). Channel count is preserved so blocks stack.
type GatedResidualBlockOf[T matrix.Float] struct {
	SeqLen   int
	Channels int

	convF, convG *Conv1DOf[T] // dilated causal convs
	proj         *Conv1DOf[T] // 1x1 projection

	lastA, lastB *matrix.Mat[T] // pre-activation conv outputs
	lastGated    *matrix.Mat[T]

	out, da, db, dxSum *matrix.Mat[T] // reused scratch (see LayerOf)
}

// GatedResidualBlock is the float64 WaveNet block.
type GatedResidualBlock = GatedResidualBlockOf[float64]

// NewGatedResidualBlockOf builds a block with the given kernel and dilation.
func NewGatedResidualBlockOf[T matrix.Float](seqLen, channels, kernel, dilation int, rng *rand.Rand) *GatedResidualBlockOf[T] {
	return &GatedResidualBlockOf[T]{
		SeqLen:   seqLen,
		Channels: channels,
		convF:    NewConv1DOf[T](seqLen, channels, channels, kernel, dilation, true, rng),
		convG:    NewConv1DOf[T](seqLen, channels, channels, kernel, dilation, true, rng),
		proj:     NewConv1DOf[T](seqLen, channels, channels, 1, 1, true, rng),
	}
}

// NewGatedResidualBlock builds a float64 block with the given kernel and
// dilation.
func NewGatedResidualBlock(seqLen, channels, kernel, dilation int, rng *rand.Rand) *GatedResidualBlock {
	return NewGatedResidualBlockOf[float64](seqLen, channels, kernel, dilation, rng)
}

// Forward computes x + proj(tanh(convF(x)) * sigmoid(convG(x))).
func (b *GatedResidualBlockOf[T]) Forward(x *matrix.Mat[T], training bool) (*matrix.Mat[T], error) {
	a, err := b.convF.Forward(x, training)
	if err != nil {
		return nil, fmt.Errorf("nn: gated block filter conv: %w", err)
	}
	g, err := b.convG.Forward(x, training)
	if err != nil {
		return nil, fmt.Errorf("nn: gated block gate conv: %w", err)
	}
	b.lastA, b.lastB = a, g
	gated := matrix.RecycleNoClear(b.lastGated, a.Rows(), a.Cols())
	ad, gd, od := a.Data(), g.Data(), gated.Data()
	for i := range od {
		od[i] = T(math.Tanh(float64(ad[i])) * sigmoidNN(float64(gd[i])))
	}
	b.lastGated = gated
	r, err := b.proj.Forward(gated, training)
	if err != nil {
		return nil, fmt.Errorf("nn: gated block projection: %w", err)
	}
	out, err := matrix.AddInto(b.out, x, r)
	if err != nil {
		return nil, fmt.Errorf("nn: gated block residual: %w", err)
	}
	b.out = out
	return out, nil
}

// Backward propagates through the residual sum, gate, and convolutions.
func (b *GatedResidualBlockOf[T]) Backward(grad *matrix.Mat[T]) (*matrix.Mat[T], error) {
	if b.lastA == nil {
		return nil, fmt.Errorf("nn: gated block backward before forward")
	}
	dGated, err := b.proj.Backward(grad)
	if err != nil {
		return nil, fmt.Errorf("nn: gated block projection backward: %w", err)
	}
	da := matrix.RecycleNoClear(b.da, dGated.Rows(), dGated.Cols())
	db := matrix.RecycleNoClear(b.db, dGated.Rows(), dGated.Cols())
	b.da, b.db = da, db
	ad, gd := b.lastA.Data(), b.lastB.Data()
	dgd, dad, dbd := dGated.Data(), da.Data(), db.Data()
	for i := range dgd {
		ta := math.Tanh(float64(ad[i]))
		sg := sigmoidNN(float64(gd[i]))
		dg := float64(dgd[i])
		dad[i] = T(dg * sg * (1 - ta*ta))
		dbd[i] = T(dg * ta * sg * (1 - sg))
	}
	dxF, err := b.convF.Backward(da)
	if err != nil {
		return nil, fmt.Errorf("nn: gated block filter backward: %w", err)
	}
	dxG, err := b.convG.Backward(db)
	if err != nil {
		return nil, fmt.Errorf("nn: gated block gate backward: %w", err)
	}
	// dx = grad (residual path) + filter path + gate path.
	dx, err := matrix.AddInto(b.dxSum, grad, dxF)
	if err != nil {
		return nil, fmt.Errorf("nn: gated block residual grad: %w", err)
	}
	b.dxSum = dx
	if _, err = matrix.AddInto(dx, dx, dxG); err != nil {
		return nil, fmt.Errorf("nn: gated block gate grad: %w", err)
	}
	return dx, nil
}

// Parameters implements LayerOf.
func (b *GatedResidualBlockOf[T]) Parameters() []*ParamOf[T] {
	var out []*ParamOf[T]
	out = append(out, b.convF.Parameters()...)
	out = append(out, b.convG.Parameters()...)
	out = append(out, b.proj.Parameters()...)
	return out
}

// ResidualConvBlockOf is the SeriesNet-style block: a dilated causal
// convolution with ReLU, a 1x1 projection, and a linear residual
// connection (no gating).
type ResidualConvBlockOf[T matrix.Float] struct {
	SeqLen   int
	Channels int

	conv *Conv1DOf[T]
	proj *Conv1DOf[T]
	relu *ReLUOf[T]

	out, dxSum *matrix.Mat[T] // reused scratch (see LayerOf)
}

// ResidualConvBlock is the float64 SeriesNet block.
type ResidualConvBlock = ResidualConvBlockOf[float64]

// NewResidualConvBlockOf builds a block with the given kernel and dilation.
func NewResidualConvBlockOf[T matrix.Float](seqLen, channels, kernel, dilation int, rng *rand.Rand) *ResidualConvBlockOf[T] {
	return &ResidualConvBlockOf[T]{
		SeqLen:   seqLen,
		Channels: channels,
		conv:     NewConv1DOf[T](seqLen, channels, channels, kernel, dilation, true, rng),
		proj:     NewConv1DOf[T](seqLen, channels, channels, 1, 1, true, rng),
		relu:     NewReLUOf[T](),
	}
}

// NewResidualConvBlock builds a float64 block with the given kernel and
// dilation.
func NewResidualConvBlock(seqLen, channels, kernel, dilation int, rng *rand.Rand) *ResidualConvBlock {
	return NewResidualConvBlockOf[float64](seqLen, channels, kernel, dilation, rng)
}

// Forward computes x + proj(relu(conv(x))).
func (b *ResidualConvBlockOf[T]) Forward(x *matrix.Mat[T], training bool) (*matrix.Mat[T], error) {
	z, err := b.conv.Forward(x, training)
	if err != nil {
		return nil, fmt.Errorf("nn: residual block conv: %w", err)
	}
	z, err = b.relu.Forward(z, training)
	if err != nil {
		return nil, fmt.Errorf("nn: residual block relu: %w", err)
	}
	r, err := b.proj.Forward(z, training)
	if err != nil {
		return nil, fmt.Errorf("nn: residual block projection: %w", err)
	}
	out, err := matrix.AddInto(b.out, x, r)
	if err != nil {
		return nil, fmt.Errorf("nn: residual block sum: %w", err)
	}
	b.out = out
	return out, nil
}

// Backward propagates through the residual sum and convolutions.
func (b *ResidualConvBlockOf[T]) Backward(grad *matrix.Mat[T]) (*matrix.Mat[T], error) {
	dz, err := b.proj.Backward(grad)
	if err != nil {
		return nil, fmt.Errorf("nn: residual block projection backward: %w", err)
	}
	dz, err = b.relu.Backward(dz)
	if err != nil {
		return nil, fmt.Errorf("nn: residual block relu backward: %w", err)
	}
	dxC, err := b.conv.Backward(dz)
	if err != nil {
		return nil, fmt.Errorf("nn: residual block conv backward: %w", err)
	}
	dx, err := matrix.AddInto(b.dxSum, grad, dxC)
	if err != nil {
		return nil, fmt.Errorf("nn: residual block grad sum: %w", err)
	}
	b.dxSum = dx
	return dx, nil
}

// Parameters implements LayerOf.
func (b *ResidualConvBlockOf[T]) Parameters() []*ParamOf[T] {
	var out []*ParamOf[T]
	out = append(out, b.conv.Parameters()...)
	out = append(out, b.proj.Parameters()...)
	return out
}
