package nn

import (
	"math"

	"coda/internal/matrix"
)

// OptimizerOf updates parameters from their accumulated gradients.
//
// Both optimizers run their update math in float64 against per-parameter
// master weights. When T is float64 the master IS the weight slice itself —
// zero-copy, updating in place exactly as the historical non-generic code
// did. When T is float32 a float64 master copy is kept in the optimizer
// state and rounded back into the f32 weights after each step, so the
// reduced-precision path loses precision only in activations/gradients,
// not in the accumulated weight trajectory.
type OptimizerOf[T matrix.Float] interface {
	Step(params []*ParamOf[T])
}

// Optimizer is the float64 optimizer interface.
type Optimizer = OptimizerOf[float64]

// masterWeights returns the float64 master slice for w: w itself when T is
// float64, else a lazily-initialised shadow copy stored in *store.
func masterWeights[T matrix.Float](store *[]float64, w []T) []float64 {
	if w64, ok := any(w).([]float64); ok {
		return w64
	}
	if *store == nil {
		m := make([]float64, len(w))
		for i, v := range w {
			m[i] = float64(v)
		}
		*store = m
	}
	return *store
}

// storeMaster rounds the master weights back into w when they are distinct
// slices (no-op for float64, where master aliases w).
func storeMaster[T matrix.Float](w []T, master []float64) {
	if _, ok := any(w).([]float64); ok {
		return
	}
	for i := range w {
		w[i] = T(master[i])
	}
}

type sgdState struct {
	velocity []float64
	master   []float64
}

// SGDOf is stochastic gradient descent with optional momentum.
type SGDOf[T matrix.Float] struct {
	LR       float64
	Momentum float64
	state    map[*ParamOf[T]]*sgdState
}

// SGD is the float64 SGD optimizer.
type SGD = SGDOf[float64]

// NewSGDOf returns SGD with the given learning rate and momentum.
func NewSGDOf[T matrix.Float](lr, momentum float64) *SGDOf[T] {
	return &SGDOf[T]{LR: lr, Momentum: momentum, state: make(map[*ParamOf[T]]*sgdState)}
}

// NewSGD returns a float64 SGD optimizer.
func NewSGD(lr, momentum float64) *SGD { return NewSGDOf[float64](lr, momentum) }

// Step applies one SGD update.
func (s *SGDOf[T]) Step(params []*ParamOf[T]) {
	if s.state == nil {
		s.state = make(map[*ParamOf[T]]*sgdState)
	}
	for _, p := range params {
		w := p.W.Data()
		g := p.Grad.Data()
		st := s.state[p]
		if st == nil {
			st = &sgdState{}
			s.state[p] = st
		}
		master := masterWeights(&st.master, w)
		if s.Momentum == 0 {
			for i := range master {
				master[i] -= s.LR * float64(g[i])
			}
		} else {
			if st.velocity == nil {
				st.velocity = make([]float64, len(w))
			}
			v := st.velocity
			for i := range master {
				v[i] = s.Momentum*v[i] - s.LR*float64(g[i])
				master[i] += v[i]
			}
		}
		storeMaster(w, master)
	}
}

type adamState struct {
	m      []float64
	v      []float64
	master []float64
}

// AdamOf is the Adam optimizer (Kingma & Ba) with bias correction.
type AdamOf[T matrix.Float] struct {
	LR, Beta1, Beta2, Eps float64

	t     int
	state map[*ParamOf[T]]*adamState
}

// Adam is the float64 Adam optimizer.
type Adam = AdamOf[float64]

// NewAdamOf returns Adam with standard betas (0.9, 0.999) and eps 1e-8.
func NewAdamOf[T matrix.Float](lr float64) *AdamOf[T] {
	return &AdamOf[T]{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, state: make(map[*ParamOf[T]]*adamState)}
}

// NewAdam returns a float64 Adam optimizer.
func NewAdam(lr float64) *Adam { return NewAdamOf[float64](lr) }

// Step applies one Adam update.
func (a *AdamOf[T]) Step(params []*ParamOf[T]) {
	if a.state == nil {
		a.state = make(map[*ParamOf[T]]*adamState)
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		w := p.W.Data()
		g := p.Grad.Data()
		st := a.state[p]
		if st == nil {
			st = &adamState{m: make([]float64, len(w)), v: make([]float64, len(w))}
			a.state[p] = st
		}
		m, v := st.m, st.v
		master := masterWeights(&st.master, w)
		for i := range master {
			gi := float64(g[i])
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
			mhat := m[i] / c1
			vhat := v[i] / c2
			master[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
		storeMaster(w, master)
	}
}
