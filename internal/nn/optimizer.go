package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*Param][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: map[*Param][]float64{}}
}

// Step applies one update.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		g := p.Grad.Data()
		w := p.W.Data()
		if s.Momentum == 0 {
			for i := range w {
				w[i] -= s.LR * g[i]
			}
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = make([]float64, len(w))
			s.velocity[p] = v
		}
		for i := range w {
			v[i] = s.Momentum*v[i] - s.LR*g[i]
			w[i] += v[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam returns Adam with standard betas (0.9, 0.999).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, m: map[*Param][]float64{}, v: map[*Param][]float64{}}
}

// Step applies one update.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		g := p.Grad.Data()
		w := p.W.Data()
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(w))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, len(w))
			a.v[p] = v
		}
		for i := range w {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g[i]
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g[i]*g[i]
			mhat := m[i] / c1
			vhat := v[i] / c2
			w[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}
