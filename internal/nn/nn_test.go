package nn

import (
	"math"
	"math/rand"
	"testing"

	"coda/internal/matrix"
)

// numericalGradCheck verifies every parameter gradient of a single layer
// against a central finite difference of the scalar loss sum(out^2)/2.
func numericalGradCheck(t *testing.T, layer Layer, in *matrix.Matrix, tol float64) {
	t.Helper()
	loss := func() float64 {
		out, err := layer.Forward(in, false)
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, v := range out.Data() {
			s += v * v / 2
		}
		return s
	}
	// Analytic pass: dLoss/dOut = out.
	out, err := layer.Forward(in, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range layer.Parameters() {
		p.zeroGrad()
	}
	dIn, err := layer.Backward(out.Clone())
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-5
	// Check parameter gradients.
	for pi, p := range layer.Parameters() {
		data := p.W.Data()
		grads := p.Grad.Data()
		step := len(data)/6 + 1 // sample entries to keep tests fast
		for i := 0; i < len(data); i += step {
			orig := data[i]
			data[i] = orig + eps
			lPlus := loss()
			data[i] = orig - eps
			lMinus := loss()
			data[i] = orig
			num := (lPlus - lMinus) / (2 * eps)
			if math.Abs(num-grads[i]) > tol*(1+math.Abs(num)) {
				t.Fatalf("param %d entry %d: analytic %v vs numeric %v", pi, i, grads[i], num)
			}
		}
	}
	// Check input gradients.
	data := in.Data()
	step := len(data)/6 + 1
	for i := 0; i < len(data); i += step {
		orig := data[i]
		data[i] = orig + eps
		lPlus := loss()
		data[i] = orig - eps
		lMinus := loss()
		data[i] = orig
		num := (lPlus - lMinus) / (2 * eps)
		if math.Abs(num-dIn.Data()[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("input entry %d: analytic %v vs numeric %v", i, dIn.Data()[i], num)
		}
	}
}

func randInput(rng *rand.Rand, rows, cols int) *matrix.Matrix {
	m := matrix.New(rows, cols)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	return m
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layer := NewDense(5, 3, rng)
	numericalGradCheck(t, layer, randInput(rng, 4, 5), 1e-4)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Keep values away from the kink at 0.
	in := randInput(rng, 3, 6)
	for i, v := range in.Data() {
		if math.Abs(v) < 0.1 {
			in.Data()[i] = 0.5
		}
	}
	numericalGradCheck(t, NewReLU(), in, 1e-4)
}

func TestTanhGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	numericalGradCheck(t, NewTanh(), randInput(rng, 3, 4), 1e-4)
}

func TestConv1DGradientsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	layer := NewConv1D(8, 2, 3, 3, 1, false, rng)
	numericalGradCheck(t, layer, randInput(rng, 2, 16), 1e-4)
}

func TestConv1DGradientsCausalDilated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	layer := NewConv1D(8, 2, 2, 2, 2, true, rng)
	if layer.OutLen() != 8 {
		t.Fatalf("causal OutLen = %d, want 8", layer.OutLen())
	}
	numericalGradCheck(t, layer, randInput(rng, 2, 16), 1e-4)
}

func TestConv1DCausality(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	layer := NewConv1D(10, 1, 1, 3, 2, true, rng)
	in := randInput(rng, 1, 10)
	out1, err := layer.Forward(in, false)
	if err != nil {
		t.Fatal(err)
	}
	// Forward outputs are only valid until the layer's next Forward
	// (Layer buffer contract), so keep a copy across the second call.
	out1 = out1.Clone()
	// Perturb the last timestep: only the last output may change.
	in2 := in.Clone()
	in2.Set(0, 9, in2.At(0, 9)+100)
	out2, err := layer.Forward(in2, false)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 9; tt++ {
		if out1.At(0, tt) != out2.At(0, tt) {
			t.Fatalf("causal conv leaked future info at t=%d", tt)
		}
	}
	if out1.At(0, 9) == out2.At(0, 9) {
		t.Fatal("last output should respond to last input")
	}
}

func TestMaxPool1D(t *testing.T) {
	layer := NewMaxPool1D(4, 2, 2)
	in, err := matrix.NewFromRows([][]float64{{1, 10, 3, 20, 5, 30, 2, 40}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := layer.Forward(in, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 20, 5, 40}
	for j, w := range want {
		if out.At(0, j) != w {
			t.Fatalf("pool out[%d] = %v, want %v", j, out.At(0, j), w)
		}
	}
	// Gradient routes to argmax positions only.
	grad, _ := matrix.NewFromRows([][]float64{{1, 1, 1, 1}})
	dx, err := layer.Backward(grad)
	if err != nil {
		t.Fatal(err)
	}
	wantDx := []float64{0, 0, 1, 1, 1, 0, 0, 1}
	for j, w := range wantDx {
		if dx.At(0, j) != w {
			t.Fatalf("pool dx[%d] = %v, want %v", j, dx.At(0, j), w)
		}
	}
}

func TestLastTimestep(t *testing.T) {
	layer := NewLastTimestep(3, 2)
	in, _ := matrix.NewFromRows([][]float64{{1, 2, 3, 4, 5, 6}})
	out, err := layer.Forward(in, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0) != 5 || out.At(0, 1) != 6 {
		t.Fatalf("last timestep = %v", out)
	}
	grad, _ := matrix.NewFromRows([][]float64{{7, 8}})
	dx, err := layer.Backward(grad)
	if err != nil {
		t.Fatal(err)
	}
	if dx.At(0, 4) != 7 || dx.At(0, 5) != 8 || dx.At(0, 0) != 0 {
		t.Fatalf("last timestep dx = %v", dx)
	}
}

func TestLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	layer := NewLSTM(4, 2, 3, rng)
	numericalGradCheck(t, layer, randInput(rng, 2, 8), 1e-4)
}

func TestGatedResidualBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	layer := NewGatedResidualBlock(6, 2, 2, 2, rng)
	numericalGradCheck(t, layer, randInput(rng, 2, 12), 1e-4)
}

func TestResidualConvBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	layer := NewResidualConvBlock(6, 2, 2, 1, rng)
	in := randInput(rng, 2, 12)
	// Keep conv pre-activations away from the ReLU kink by scaling inputs.
	for i := range in.Data() {
		in.Data()[i] *= 2
	}
	numericalGradCheck(t, layer, in, 1e-3)
}

func TestDropoutTrainVsInference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	layer := NewDropout(0.5, rng)
	in := randInput(rng, 10, 20)
	outInfer, err := layer.Forward(in, false)
	if err != nil {
		t.Fatal(err)
	}
	if !outInfer.Equal(in, 0) {
		t.Fatal("dropout must be identity at inference")
	}
	outTrain, err := layer.Forward(in, true)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range outTrain.Data() {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 50 || zeros > 150 {
		t.Fatalf("dropout zeroed %d/200 entries at rate 0.5", zeros)
	}
	// Backward applies the same mask.
	grad := randInput(rng, 10, 20)
	dx, err := layer.Backward(grad)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range outTrain.Data() {
		if v == 0 && dx.Data()[i] != 0 {
			t.Fatal("gradient leaked through dropped unit")
		}
	}
	if _, err := NewDropout(1.5, rng).Forward(in, true); err == nil {
		t.Fatal("want rate error")
	}
}

func TestNetworkLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 200
	x := randInput(rng, n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = 2*x.At(i, 0) - x.At(i, 1) + 0.5*x.At(i, 2)
	}
	net := NewNetwork(NewAdam(0.01), NewDense(3, 16, rng), NewReLU(), NewDense(16, 1, rng))
	if err := net.Fit(x, y, FitConfig{Epochs: 200, BatchSize: 32, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	preds, err := net.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	mse := 0.0
	for i := range y {
		d := preds[i] - y[i]
		mse += d * d
	}
	mse /= float64(n)
	if mse > 0.05 {
		t.Fatalf("network failed to learn linear map: MSE %v", mse)
	}
}

func TestLSTMNetworkLearnsSequenceSum(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	seqLen, n := 5, 300
	x := randInput(rng, n, seqLen)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < seqLen; j++ {
			s += x.At(i, j)
		}
		y[i] = s
	}
	net := NewNetwork(NewAdam(0.02),
		NewLSTM(seqLen, 1, 8, rng),
		NewDense(8, 1, rng),
	)
	if err := net.Fit(x, y, FitConfig{Epochs: 150, BatchSize: 32, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	preds, err := net.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	var sse, sst float64
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	for i := range y {
		sse += (preds[i] - y[i]) * (preds[i] - y[i])
		sst += (y[i] - mean) * (y[i] - mean)
	}
	if r2 := 1 - sse/sst; r2 < 0.9 {
		t.Fatalf("LSTM failed to learn sequence sum: R2 %v", r2)
	}
}

func TestSGDMomentumAndAdamReduceLoss(t *testing.T) {
	for name, opt := range map[string]Optimizer{
		"sgd":          NewSGD(0.05, 0),
		"sgd-momentum": NewSGD(0.05, 0.9),
		"adam":         NewAdam(0.01),
	} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(13))
			x := randInput(rng, 100, 2)
			y := make([]float64, 100)
			for i := range y {
				y[i] = x.At(i, 0) + x.At(i, 1)
			}
			net := NewNetwork(opt, NewDense(2, 1, rng))
			out, err := net.Forward(x, false)
			if err != nil {
				t.Fatal(err)
			}
			before, _ := MSELoss(out, y)
			if err := net.Fit(x, y, FitConfig{Epochs: 50, BatchSize: 25, Seed: 3}); err != nil {
				t.Fatal(err)
			}
			out, err = net.Forward(x, false)
			if err != nil {
				t.Fatal(err)
			}
			after, _ := MSELoss(out, y)
			if after >= before/2 {
				t.Fatalf("%s did not reduce loss: %v -> %v", name, before, after)
			}
		})
	}
}

func TestNetworkErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := NewNetwork(nil, NewDense(2, 1, rng))
	x := randInput(rng, 3, 2)
	if err := net.Fit(x, []float64{1, 2}, FitConfig{}); err == nil {
		t.Fatal("want length error")
	}
	if err := net.Fit(matrix.New(0, 2), nil, FitConfig{}); err == nil {
		t.Fatal("want empty error")
	}
	// Wrong input width surfaces a shape error.
	if _, err := net.Predict(randInput(rng, 2, 5)); err == nil {
		t.Fatal("want shape error")
	}
	// Multi-column output rejected.
	net2 := NewNetwork(nil, NewDense(2, 3, rng))
	if err := net2.Fit(x, []float64{1, 2, 3}, FitConfig{Epochs: 1}); err == nil {
		t.Fatal("want output-cols error")
	}
}

func TestFitDeterministicForSeed(t *testing.T) {
	make2 := func() []float64 {
		rng := rand.New(rand.NewSource(20))
		x := randInput(rng, 50, 2)
		y := make([]float64, 50)
		for i := range y {
			y[i] = x.At(i, 0) - x.At(i, 1)
		}
		net := NewNetwork(NewAdam(0.01), NewDense(2, 4, rng), NewTanh(), NewDense(4, 1, rng))
		if err := net.Fit(x, y, FitConfig{Epochs: 10, BatchSize: 16, Seed: 5}); err != nil {
			t.Fatal(err)
		}
		p, err := net.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := make2(), make2()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training not deterministic for identical seeds")
		}
	}
}

func TestLSTMReturnSeqGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	layer := NewLSTM(3, 2, 2, rng)
	layer.ReturnSeq = true
	numericalGradCheck(t, layer, randInput(rng, 2, 6), 1e-4)
}

func TestLSTMReturnSeqShape(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	layer := NewLSTM(4, 1, 3, rng)
	layer.ReturnSeq = true
	out, err := layer.Forward(randInput(rng, 2, 4), false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 2 || out.Cols() != 12 {
		t.Fatalf("return-seq shape %dx%d, want 2x12", out.Rows(), out.Cols())
	}
	// Last Hidden columns must equal the non-return-seq output.
	layer2 := NewLSTM(4, 1, 3, rng)
	layer2.wx.W = layer.wx.W.Clone()
	layer2.wh.W = layer.wh.W.Clone()
	layer2.b.W = layer.b.W.Clone()
	in := randInput(rng, 2, 4)
	seq, err := layer.Forward(in, false)
	if err != nil {
		t.Fatal(err)
	}
	last, err := layer2.Forward(in, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(seq.At(i, 9+j)-last.At(i, j)) > 1e-12 {
				t.Fatal("return-seq last step differs from final-state output")
			}
		}
	}
}
