package nn

import (
	"fmt"
	"math"
	"math/rand"

	"coda/internal/matrix"
)

// DenseOf is a fully-connected layer: out = x*W + b.
type DenseOf[T matrix.Float] struct {
	In, Out int
	w, b    *ParamOf[T]
	lastX   *matrix.Mat[T]

	out, dx *matrix.Mat[T] // reused forward/backward scratch (see LayerOf)
}

// Dense is the float64 fully-connected layer.
type Dense = DenseOf[float64]

// NewDenseOf builds a Dense layer with Glorot-uniform initialization from
// rng. The rng stream is consumed identically for either element type, so
// f32 and f64 layers built from the same seed share (rounded) weights.
func NewDenseOf[T matrix.Float](in, out int, rng *rand.Rand) *DenseOf[T] {
	d := &DenseOf[T]{In: in, Out: out, w: newParam[T](in, out), b: newParam[T](1, out)}
	limit := math.Sqrt(6.0 / float64(in+out))
	wd := d.w.W.Data()
	for i := range wd {
		wd[i] = T((2*rng.Float64() - 1) * limit)
	}
	return d
}

// NewDense builds a float64 Dense layer with Glorot-uniform initialization.
func NewDense(in, out int, rng *rand.Rand) *Dense { return NewDenseOf[float64](in, out, rng) }

// Forward computes x*W + b.
func (d *DenseOf[T]) Forward(x *matrix.Mat[T], _ bool) (*matrix.Mat[T], error) {
	if x.Cols() != d.In {
		return nil, fmt.Errorf("%w: dense expects %d inputs, got %d", ErrShape, d.In, x.Cols())
	}
	d.lastX = x
	out, err := matrix.MulInto(d.out, x, d.w.W)
	if err != nil {
		return nil, fmt.Errorf("nn: dense forward: %w", err)
	}
	d.out = out
	bias := d.b.W.Row(0)
	for i := 0; i < out.Rows(); i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += bias[j]
		}
	}
	return out, nil
}

// Backward accumulates dW = x^T*grad, db = colsum(grad), returns grad*W^T.
func (d *DenseOf[T]) Backward(grad *matrix.Mat[T]) (*matrix.Mat[T], error) {
	if d.lastX == nil {
		return nil, fmt.Errorf("nn: dense backward before forward")
	}
	// dW += xᵀ*grad, folded into the gradient without materialising xᵀ.
	if err := matrix.MulTransposeAAccum(d.w.Grad, d.lastX, grad); err != nil {
		return nil, fmt.Errorf("nn: dense backward dW: %w", err)
	}
	bd := d.b.Grad.Row(0)
	for i := 0; i < grad.Rows(); i++ {
		for j, v := range grad.Row(i) {
			bd[j] += v
		}
	}
	dx, err := matrix.MulTransposeBInto(d.dx, grad, d.w.W)
	if err != nil {
		return nil, fmt.Errorf("nn: dense backward dX: %w", err)
	}
	d.dx = dx
	return dx, nil
}

// Parameters implements LayerOf.
func (d *DenseOf[T]) Parameters() []*ParamOf[T] { return []*ParamOf[T]{d.w, d.b} }

// ReLUOf applies max(0, x) elementwise.
type ReLUOf[T matrix.Float] struct {
	mask    []bool
	out, dx *matrix.Mat[T]
}

// ReLU is the float64 ReLU activation.
type ReLU = ReLUOf[float64]

// NewReLUOf returns a ReLU activation.
func NewReLUOf[T matrix.Float]() *ReLUOf[T] { return &ReLUOf[T]{} }

// NewReLU returns a float64 ReLU activation.
func NewReLU() *ReLU { return NewReLUOf[float64]() }

// Forward applies the activation.
func (r *ReLUOf[T]) Forward(x *matrix.Mat[T], _ bool) (*matrix.Mat[T], error) {
	out := matrix.RecycleNoClear(r.out, x.Rows(), x.Cols())
	r.out = out
	src, d := x.Data(), out.Data()
	if cap(r.mask) >= len(d) {
		r.mask = r.mask[:len(d)]
	} else {
		r.mask = make([]bool, len(d))
	}
	for i, v := range src {
		if v > 0 {
			r.mask[i] = true
			d[i] = v
		} else {
			r.mask[i] = false
			d[i] = 0
		}
	}
	return out, nil
}

// Backward gates gradients through the positive mask.
func (r *ReLUOf[T]) Backward(grad *matrix.Mat[T]) (*matrix.Mat[T], error) {
	if r.mask == nil || len(r.mask) != len(grad.Data()) {
		return nil, fmt.Errorf("%w: relu backward without matching forward", ErrShape)
	}
	out := matrix.RecycleNoClear(r.dx, grad.Rows(), grad.Cols())
	r.dx = out
	src, d := grad.Data(), out.Data()
	for i, v := range src {
		if r.mask[i] {
			d[i] = v
		} else {
			d[i] = 0
		}
	}
	return out, nil
}

// Parameters implements LayerOf.
func (r *ReLUOf[T]) Parameters() []*ParamOf[T] { return nil }

// TanhOf applies tanh elementwise (computed in float64 for either width).
type TanhOf[T matrix.Float] struct {
	lastOut *matrix.Mat[T]
	dx      *matrix.Mat[T]
}

// Tanh is the float64 tanh activation.
type Tanh = TanhOf[float64]

// NewTanhOf returns a tanh activation.
func NewTanhOf[T matrix.Float]() *TanhOf[T] { return &TanhOf[T]{} }

// NewTanh returns a float64 tanh activation.
func NewTanh() *Tanh { return NewTanhOf[float64]() }

// Forward applies tanh.
func (t *TanhOf[T]) Forward(x *matrix.Mat[T], _ bool) (*matrix.Mat[T], error) {
	out := matrix.RecycleNoClear(t.lastOut, x.Rows(), x.Cols())
	t.lastOut = out
	src, d := x.Data(), out.Data()
	for i, v := range src {
		d[i] = T(math.Tanh(float64(v)))
	}
	return out, nil
}

// Backward multiplies by 1 - tanh^2.
func (t *TanhOf[T]) Backward(grad *matrix.Mat[T]) (*matrix.Mat[T], error) {
	if t.lastOut == nil || len(t.lastOut.Data()) != len(grad.Data()) {
		return nil, fmt.Errorf("%w: tanh backward without matching forward", ErrShape)
	}
	out := matrix.RecycleNoClear(t.dx, grad.Rows(), grad.Cols())
	t.dx = out
	src, d := grad.Data(), out.Data()
	o := t.lastOut.Data()
	for i, v := range src {
		d[i] = v * (1 - o[i]*o[i])
	}
	return out, nil
}

// Parameters implements LayerOf.
func (t *TanhOf[T]) Parameters() []*ParamOf[T] { return nil }

// DropoutOf zeroes each activation with probability Rate during training,
// scaling survivors by 1/(1-Rate) (inverted dropout); inference is identity.
type DropoutOf[T matrix.Float] struct {
	Rate    float64
	rng     *rand.Rand
	mask    []T
	out, dx *matrix.Mat[T]
}

// Dropout is the float64 dropout layer.
type Dropout = DropoutOf[float64]

// NewDropoutOf builds a dropout layer; rate must be in [0, 1).
func NewDropoutOf[T matrix.Float](rate float64, rng *rand.Rand) *DropoutOf[T] {
	return &DropoutOf[T]{Rate: rate, rng: rng}
}

// NewDropout builds a float64 dropout layer; rate must be in [0, 1).
func NewDropout(rate float64, rng *rand.Rand) *Dropout { return NewDropoutOf[float64](rate, rng) }

// Forward applies the stochastic mask during training.
func (d *DropoutOf[T]) Forward(x *matrix.Mat[T], training bool) (*matrix.Mat[T], error) {
	if d.Rate < 0 || d.Rate >= 1 {
		return nil, fmt.Errorf("nn: dropout rate %v outside [0,1)", d.Rate)
	}
	if !training || d.Rate == 0 {
		d.mask = nil
		return x, nil
	}
	out := matrix.RecycleNoClear(d.out, x.Rows(), x.Cols())
	d.out = out
	src, data := x.Data(), out.Data()
	if cap(d.mask) >= len(data) {
		d.mask = d.mask[:len(data)]
	} else {
		d.mask = make([]T, len(data))
	}
	keep := 1 - d.Rate
	scale := T(1 / keep)
	for i, v := range src {
		if d.rng.Float64() < keep {
			d.mask[i] = scale
			data[i] = v * scale
		} else {
			d.mask[i] = 0
			data[i] = 0
		}
	}
	return out, nil
}

// Backward applies the same mask to the gradient.
func (d *DropoutOf[T]) Backward(grad *matrix.Mat[T]) (*matrix.Mat[T], error) {
	if d.mask == nil {
		return grad, nil
	}
	if len(d.mask) != len(grad.Data()) {
		return nil, fmt.Errorf("%w: dropout backward without matching forward", ErrShape)
	}
	out := matrix.RecycleNoClear(d.dx, grad.Rows(), grad.Cols())
	d.dx = out
	src, data := grad.Data(), out.Data()
	for i, v := range src {
		data[i] = v * d.mask[i]
	}
	return out, nil
}

// Parameters implements LayerOf.
func (d *DropoutOf[T]) Parameters() []*ParamOf[T] { return nil }
