package nn

import (
	"fmt"
	"math"
	"math/rand"

	"coda/internal/matrix"
)

// Dense is a fully-connected layer: out = x*W + b.
type Dense struct {
	In, Out int
	w, b    *Param
	lastX   *matrix.Matrix

	out, dx *matrix.Matrix // reused forward/backward scratch (see Layer)
}

// NewDense builds a Dense layer with Glorot-uniform initialization from rng.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, w: newParam(in, out), b: newParam(1, out)}
	limit := math.Sqrt(6.0 / float64(in+out))
	wd := d.w.W.Data()
	for i := range wd {
		wd[i] = (2*rng.Float64() - 1) * limit
	}
	return d
}

// Forward computes x*W + b.
func (d *Dense) Forward(x *matrix.Matrix, _ bool) (*matrix.Matrix, error) {
	if x.Cols() != d.In {
		return nil, fmt.Errorf("%w: dense expects %d inputs, got %d", ErrShape, d.In, x.Cols())
	}
	d.lastX = x
	out, err := matrix.MulInto(d.out, x, d.w.W)
	if err != nil {
		return nil, fmt.Errorf("nn: dense forward: %w", err)
	}
	d.out = out
	bias := d.b.W.Row(0)
	for i := 0; i < out.Rows(); i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += bias[j]
		}
	}
	return out, nil
}

// Backward accumulates dW = x^T*grad, db = colsum(grad), returns grad*W^T.
func (d *Dense) Backward(grad *matrix.Matrix) (*matrix.Matrix, error) {
	if d.lastX == nil {
		return nil, fmt.Errorf("nn: dense backward before forward")
	}
	// dW += xᵀ*grad, folded into the gradient without materialising xᵀ.
	if err := matrix.MulTransposeAAccum(d.w.Grad, d.lastX, grad); err != nil {
		return nil, fmt.Errorf("nn: dense backward dW: %w", err)
	}
	bd := d.b.Grad.Row(0)
	for i := 0; i < grad.Rows(); i++ {
		for j, v := range grad.Row(i) {
			bd[j] += v
		}
	}
	dx, err := matrix.MulTransposeBInto(d.dx, grad, d.w.W)
	if err != nil {
		return nil, fmt.Errorf("nn: dense backward dX: %w", err)
	}
	d.dx = dx
	return dx, nil
}

// Parameters implements Layer.
func (d *Dense) Parameters() []*Param { return []*Param{d.w, d.b} }

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	mask    []bool
	out, dx *matrix.Matrix
}

// NewReLU returns a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies the activation.
func (r *ReLU) Forward(x *matrix.Matrix, _ bool) (*matrix.Matrix, error) {
	out := matrix.RecycleNoClear(r.out, x.Rows(), x.Cols())
	r.out = out
	src, d := x.Data(), out.Data()
	if cap(r.mask) >= len(d) {
		r.mask = r.mask[:len(d)]
	} else {
		r.mask = make([]bool, len(d))
	}
	for i, v := range src {
		if v > 0 {
			r.mask[i] = true
			d[i] = v
		} else {
			r.mask[i] = false
			d[i] = 0
		}
	}
	return out, nil
}

// Backward gates gradients through the positive mask.
func (r *ReLU) Backward(grad *matrix.Matrix) (*matrix.Matrix, error) {
	if r.mask == nil || len(r.mask) != len(grad.Data()) {
		return nil, fmt.Errorf("%w: relu backward without matching forward", ErrShape)
	}
	out := matrix.RecycleNoClear(r.dx, grad.Rows(), grad.Cols())
	r.dx = out
	src, d := grad.Data(), out.Data()
	for i, v := range src {
		if r.mask[i] {
			d[i] = v
		} else {
			d[i] = 0
		}
	}
	return out, nil
}

// Parameters implements Layer.
func (r *ReLU) Parameters() []*Param { return nil }

// Tanh applies tanh elementwise.
type Tanh struct {
	lastOut *matrix.Matrix
	dx      *matrix.Matrix
}

// NewTanh returns a tanh activation.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh.
func (t *Tanh) Forward(x *matrix.Matrix, _ bool) (*matrix.Matrix, error) {
	out := matrix.RecycleNoClear(t.lastOut, x.Rows(), x.Cols())
	t.lastOut = out
	src, d := x.Data(), out.Data()
	for i, v := range src {
		d[i] = math.Tanh(v)
	}
	return out, nil
}

// Backward multiplies by 1 - tanh^2.
func (t *Tanh) Backward(grad *matrix.Matrix) (*matrix.Matrix, error) {
	if t.lastOut == nil || len(t.lastOut.Data()) != len(grad.Data()) {
		return nil, fmt.Errorf("%w: tanh backward without matching forward", ErrShape)
	}
	out := matrix.RecycleNoClear(t.dx, grad.Rows(), grad.Cols())
	t.dx = out
	src, d := grad.Data(), out.Data()
	o := t.lastOut.Data()
	for i, v := range src {
		d[i] = v * (1 - o[i]*o[i])
	}
	return out, nil
}

// Parameters implements Layer.
func (t *Tanh) Parameters() []*Param { return nil }

// Dropout zeroes each activation with probability Rate during training,
// scaling survivors by 1/(1-Rate) (inverted dropout); inference is identity.
type Dropout struct {
	Rate    float64
	rng     *rand.Rand
	mask    []float64
	out, dx *matrix.Matrix
}

// NewDropout builds a dropout layer; rate must be in [0, 1).
func NewDropout(rate float64, rng *rand.Rand) *Dropout {
	return &Dropout{Rate: rate, rng: rng}
}

// Forward applies the stochastic mask during training.
func (d *Dropout) Forward(x *matrix.Matrix, training bool) (*matrix.Matrix, error) {
	if d.Rate < 0 || d.Rate >= 1 {
		return nil, fmt.Errorf("nn: dropout rate %v outside [0,1)", d.Rate)
	}
	if !training || d.Rate == 0 {
		d.mask = nil
		return x, nil
	}
	out := matrix.RecycleNoClear(d.out, x.Rows(), x.Cols())
	d.out = out
	src, data := x.Data(), out.Data()
	if cap(d.mask) >= len(data) {
		d.mask = d.mask[:len(data)]
	} else {
		d.mask = make([]float64, len(data))
	}
	keep := 1 - d.Rate
	for i, v := range src {
		if d.rng.Float64() < keep {
			d.mask[i] = 1 / keep
			data[i] = v * d.mask[i]
		} else {
			d.mask[i] = 0
			data[i] = 0
		}
	}
	return out, nil
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(grad *matrix.Matrix) (*matrix.Matrix, error) {
	if d.mask == nil {
		return grad, nil
	}
	if len(d.mask) != len(grad.Data()) {
		return nil, fmt.Errorf("%w: dropout backward without matching forward", ErrShape)
	}
	out := matrix.RecycleNoClear(d.dx, grad.Rows(), grad.Cols())
	d.dx = out
	src, data := grad.Data(), out.Data()
	for i, v := range src {
		data[i] = v * d.mask[i]
	}
	return out, nil
}

// Parameters implements Layer.
func (d *Dropout) Parameters() []*Param { return nil }
