package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"coda/internal/matrix"
)

// raceNet builds a small stack covering every arena-buffered layer family
// (dense, activation, recurrent, convolutional) from a fixed seed.
func raceNet(kind int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	switch kind % 3 {
	case 0:
		return NewNetwork(NewAdam(0.01),
			NewDense(8, 12, rng), NewReLU(), NewDense(12, 1, rng))
	case 1:
		return NewNetwork(NewAdam(0.01),
			NewLSTM(4, 2, 6, rng), NewDense(6, 1, rng))
	default:
		return NewNetwork(NewAdam(0.01),
			NewConv1D(4, 2, 5, 2, 1, true, rng),
			NewLastTimestep(4, 5),
			NewDense(5, 1, rng))
	}
}

// raceData returns a shared training set; rows are interpreted either as 8
// flat features or as a 4x2 time-major sequence, so one dataset serves all
// three network kinds.
func raceData() (*matrix.Matrix, []float64) {
	rng := rand.New(rand.NewSource(3))
	x := matrix.New(24, 8)
	y := make([]float64, 24)
	for i := 0; i < 24; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		y[i] = row[0] - 0.5*row[3]
	}
	return x, y
}

// TestParallelNetworksMatchSerial trains many networks concurrently on a
// shared (read-only) dataset — under -race this stresses the per-layer
// scratch arenas and the global matrix kernel semaphore — and requires each
// network's predictions to be bitwise identical to a serially-trained twin,
// proving no scratch state leaks across network instances.
func TestParallelNetworksMatchSerial(t *testing.T) {
	prev := matrix.Parallelism()
	matrix.SetMaxWorkers(8)
	defer matrix.SetMaxWorkers(prev)

	x, y := raceData()
	cfg := FitConfig{Epochs: 3, BatchSize: 8, Seed: 5}

	const n = 9
	want := make([][]float64, n)
	for i := 0; i < n; i++ {
		net := raceNet(i, int64(100+i))
		if err := net.Fit(x, y, cfg); err != nil {
			t.Fatal(err)
		}
		preds, err := net.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = preds
	}

	got := make([][]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			net := raceNet(i, int64(100+i))
			if err := net.Fit(x, y, cfg); err != nil {
				errs[i] = err
				return
			}
			got[i], errs[i] = net.Predict(x)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("net %d: %v", i, errs[i])
		}
		if len(got[i]) != len(want[i]) {
			t.Fatalf("net %d: %d preds vs %d", i, len(got[i]), len(want[i]))
		}
		for k := range got[i] {
			if math.Float64bits(got[i][k]) != math.Float64bits(want[i][k]) {
				t.Fatalf("net %d pred %d: parallel %v != serial %v", i, k, got[i][k], want[i][k])
			}
		}
	}
}
