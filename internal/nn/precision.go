package nn

import "fmt"

// Precision selects the element width of the NN compute path. F64 is the
// historical default with bitwise-reproducible kernels; F32 halves the
// memory traffic of activations/gradients and uses the f32 matrix kernels,
// with optimizers keeping float64 master weights so predictions track the
// f64 trajectory within the documented tolerance (README "Kernel
// performance").
type Precision int

const (
	// F64 trains and predicts in float64 (default).
	F64 Precision = 64
	// F32 trains and predicts in float32 with f64 master weights.
	F32 Precision = 32
)

// ParsePrecision accepts "f64"/"f32" (and the aliases "float64"/"float32",
// "64"/"32", ""); the empty string means F64.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "f64", "float64", "64":
		return F64, nil
	case "f32", "float32", "32":
		return F32, nil
	}
	return F64, fmt.Errorf("nn: unknown precision %q (want f32 or f64)", s)
}

// String returns "f32" or "f64".
func (p Precision) String() string {
	if p == F32 {
		return "f32"
	}
	return "f64"
}
