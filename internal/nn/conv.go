package nn

import (
	"fmt"
	"math"
	"math/rand"

	"coda/internal/matrix"
)

// Conv1D is a 1-D convolution over time-major sequence rows. With Causal
// set, the output has the same length as the input and position t sees only
// inputs at or before t (left zero padding), enabling the WaveNet-style
// dilated stacks; otherwise the convolution is "valid" and the output
// shrinks by (Kernel-1)*Dilation timesteps.
type Conv1D struct {
	SeqLen     int // input timesteps
	InChannels int
	Filters    int
	Kernel     int
	Dilation   int  // 1 = ordinary convolution
	Causal     bool // left-pad so output length == SeqLen

	w, b  *Param // w is (Kernel*InChannels) x Filters
	lastX *matrix.Matrix
}

// NewConv1D builds a convolution with He-uniform initialization.
func NewConv1D(seqLen, inChannels, filters, kernel, dilation int, causal bool, rng *rand.Rand) *Conv1D {
	if dilation < 1 {
		dilation = 1
	}
	c := &Conv1D{
		SeqLen: seqLen, InChannels: inChannels, Filters: filters,
		Kernel: kernel, Dilation: dilation, Causal: causal,
		w: newParam(kernel*inChannels, filters), b: newParam(1, filters),
	}
	limit := math.Sqrt(6.0 / float64(kernel*inChannels))
	wd := c.w.W.Data()
	for i := range wd {
		wd[i] = (2*rng.Float64() - 1) * limit
	}
	return c
}

// OutLen returns the output sequence length.
func (c *Conv1D) OutLen() int {
	if c.Causal {
		return c.SeqLen
	}
	return c.SeqLen - (c.Kernel-1)*c.Dilation
}

// inTime maps (output timestep t, kernel tap k) to the input timestep, or
// -1 when the tap falls into the causal zero padding.
func (c *Conv1D) inTime(t, k int) int {
	if c.Causal {
		tin := t - (c.Kernel-1-k)*c.Dilation
		if tin < 0 {
			return -1
		}
		return tin
	}
	return t + k*c.Dilation
}

// Forward applies the convolution to every row.
func (c *Conv1D) Forward(x *matrix.Matrix, _ bool) (*matrix.Matrix, error) {
	if x.Cols() != c.SeqLen*c.InChannels {
		return nil, fmt.Errorf("%w: conv1d expects %d cols (%d x %d), got %d", ErrShape, c.SeqLen*c.InChannels, c.SeqLen, c.InChannels, x.Cols())
	}
	outLen := c.OutLen()
	if outLen < 1 {
		return nil, fmt.Errorf("%w: conv1d kernel %d dilation %d too large for %d steps", ErrShape, c.Kernel, c.Dilation, c.SeqLen)
	}
	c.lastX = x
	out := matrix.New(x.Rows(), outLen*c.Filters)
	w := c.w.W
	bias := c.b.W.Row(0)
	for i := 0; i < x.Rows(); i++ {
		in := x.Row(i)
		dst := out.Row(i)
		for t := 0; t < outLen; t++ {
			for f := 0; f < c.Filters; f++ {
				s := bias[f]
				for k := 0; k < c.Kernel; k++ {
					tin := c.inTime(t, k)
					if tin < 0 {
						continue
					}
					base := tin * c.InChannels
					for ch := 0; ch < c.InChannels; ch++ {
						s += w.At(k*c.InChannels+ch, f) * in[base+ch]
					}
				}
				dst[t*c.Filters+f] = s
			}
		}
	}
	return out, nil
}

// Backward accumulates weight/bias gradients and returns the input gradient.
func (c *Conv1D) Backward(grad *matrix.Matrix) (*matrix.Matrix, error) {
	if c.lastX == nil {
		return nil, fmt.Errorf("nn: conv1d backward before forward")
	}
	outLen := c.OutLen()
	if grad.Cols() != outLen*c.Filters || grad.Rows() != c.lastX.Rows() {
		return nil, fmt.Errorf("%w: conv1d backward grad %dx%d", ErrShape, grad.Rows(), grad.Cols())
	}
	dx := matrix.New(c.lastX.Rows(), c.lastX.Cols())
	wGrad := c.w.Grad
	bGrad := c.b.Grad.Row(0)
	w := c.w.W
	for i := 0; i < grad.Rows(); i++ {
		in := c.lastX.Row(i)
		dIn := dx.Row(i)
		g := grad.Row(i)
		for t := 0; t < outLen; t++ {
			for f := 0; f < c.Filters; f++ {
				gv := g[t*c.Filters+f]
				if gv == 0 {
					continue
				}
				bGrad[f] += gv
				for k := 0; k < c.Kernel; k++ {
					tin := c.inTime(t, k)
					if tin < 0 {
						continue
					}
					base := tin * c.InChannels
					for ch := 0; ch < c.InChannels; ch++ {
						wi := k*c.InChannels + ch
						wGrad.Set(wi, f, wGrad.At(wi, f)+gv*in[base+ch])
						dIn[base+ch] += gv * w.At(wi, f)
					}
				}
			}
		}
	}
	return dx, nil
}

// Parameters implements Layer.
func (c *Conv1D) Parameters() []*Param { return []*Param{c.w, c.b} }

// MaxPool1D downsamples each channel by taking the maximum over
// non-overlapping windows of Pool timesteps.
type MaxPool1D struct {
	SeqLen   int
	Channels int
	Pool     int

	argmax []int // per forward: flattened output position -> input col
	rows   int
}

// NewMaxPool1D builds a pooling layer; SeqLen must be >= Pool.
func NewMaxPool1D(seqLen, channels, pool int) *MaxPool1D {
	return &MaxPool1D{SeqLen: seqLen, Channels: channels, Pool: pool}
}

// OutLen returns the pooled sequence length.
func (m *MaxPool1D) OutLen() int { return m.SeqLen / m.Pool }

// Forward pools each row.
func (m *MaxPool1D) Forward(x *matrix.Matrix, _ bool) (*matrix.Matrix, error) {
	if m.Pool < 1 || m.OutLen() < 1 {
		return nil, fmt.Errorf("%w: maxpool pool=%d over %d steps", ErrShape, m.Pool, m.SeqLen)
	}
	if x.Cols() != m.SeqLen*m.Channels {
		return nil, fmt.Errorf("%w: maxpool expects %d cols, got %d", ErrShape, m.SeqLen*m.Channels, x.Cols())
	}
	outLen := m.OutLen()
	out := matrix.New(x.Rows(), outLen*m.Channels)
	m.rows = x.Rows()
	m.argmax = make([]int, x.Rows()*outLen*m.Channels)
	for i := 0; i < x.Rows(); i++ {
		in := x.Row(i)
		dst := out.Row(i)
		for t := 0; t < outLen; t++ {
			for ch := 0; ch < m.Channels; ch++ {
				best := math.Inf(-1)
				bestCol := -1
				for k := 0; k < m.Pool; k++ {
					col := (t*m.Pool+k)*m.Channels + ch
					if in[col] > best {
						best = in[col]
						bestCol = col
					}
				}
				outPos := t*m.Channels + ch
				dst[outPos] = best
				m.argmax[i*outLen*m.Channels+outPos] = bestCol
			}
		}
	}
	return out, nil
}

// Backward routes gradients to the argmax positions.
func (m *MaxPool1D) Backward(grad *matrix.Matrix) (*matrix.Matrix, error) {
	outLen := m.OutLen()
	if m.argmax == nil || grad.Rows() != m.rows || grad.Cols() != outLen*m.Channels {
		return nil, fmt.Errorf("%w: maxpool backward without matching forward", ErrShape)
	}
	dx := matrix.New(m.rows, m.SeqLen*m.Channels)
	for i := 0; i < grad.Rows(); i++ {
		g := grad.Row(i)
		dIn := dx.Row(i)
		for pos, gv := range g {
			dIn[m.argmax[i*outLen*m.Channels+pos]] += gv
		}
	}
	return dx, nil
}

// Parameters implements Layer.
func (m *MaxPool1D) Parameters() []*Param { return nil }

// LastTimestep extracts the final timestep's channel vector from a sequence
// row, the standard head for causal stacks: (batch, T*C) -> (batch, C).
type LastTimestep struct {
	SeqLen   int
	Channels int
	rows     int
}

// NewLastTimestep builds the extraction layer.
func NewLastTimestep(seqLen, channels int) *LastTimestep {
	return &LastTimestep{SeqLen: seqLen, Channels: channels}
}

// Forward slices out the last timestep.
func (l *LastTimestep) Forward(x *matrix.Matrix, _ bool) (*matrix.Matrix, error) {
	if x.Cols() != l.SeqLen*l.Channels {
		return nil, fmt.Errorf("%w: lasttimestep expects %d cols, got %d", ErrShape, l.SeqLen*l.Channels, x.Cols())
	}
	l.rows = x.Rows()
	out := matrix.New(x.Rows(), l.Channels)
	off := (l.SeqLen - 1) * l.Channels
	for i := 0; i < x.Rows(); i++ {
		copy(out.Row(i), x.Row(i)[off:off+l.Channels])
	}
	return out, nil
}

// Backward scatters the gradient into the last timestep slot.
func (l *LastTimestep) Backward(grad *matrix.Matrix) (*matrix.Matrix, error) {
	if grad.Rows() != l.rows || grad.Cols() != l.Channels {
		return nil, fmt.Errorf("%w: lasttimestep backward grad %dx%d", ErrShape, grad.Rows(), grad.Cols())
	}
	dx := matrix.New(l.rows, l.SeqLen*l.Channels)
	off := (l.SeqLen - 1) * l.Channels
	for i := 0; i < grad.Rows(); i++ {
		copy(dx.Row(i)[off:off+l.Channels], grad.Row(i))
	}
	return dx, nil
}

// Parameters implements Layer.
func (l *LastTimestep) Parameters() []*Param { return nil }
