package nn

import (
	"fmt"
	"math"
	"math/rand"

	"coda/internal/matrix"
)

// Conv1DOf is a 1-D convolution over time-major sequence rows. With Causal
// set, the output has the same length as the input and position t sees only
// inputs at or before t (left zero padding), enabling the WaveNet-style
// dilated stacks; otherwise the convolution is "valid" and the output
// shrinks by (Kernel-1)*Dilation timesteps.
//
// Both passes are expressed as matmuls over an im2col scratch buffer: each
// (sample, output step) pair becomes a row holding its Kernel*InChannels
// receptive field (zeros where a causal tap falls into the padding), so the
// convolution is one (batch*outLen) x (K*IC) by (K*IC) x Filters product
// through the blocked kernels. Output values can differ from the previous
// scalar loops in the last bits (the bias is now added after the taps);
// gradients follow the same im2col/col2im structure.
//
// As the first layer of a network, the im2col gather can also read straight
// from a WindowSource (ForwardWindows) — the fused window→conv path — in
// which case the materialized windowed input matrix never exists.
type Conv1DOf[T matrix.Float] struct {
	SeqLen     int // input timesteps
	InChannels int
	Filters    int
	Kernel     int
	Dilation   int  // 1 = ordinary convolution
	Causal     bool // left-pad so output length == SeqLen

	w, b  *ParamOf[T] // w is (Kernel*InChannels) x Filters
	lastX *matrix.Mat[T]

	// Windowed-forward state: when winMode is set the layer's last Forward
	// was a ForwardWindows gather of winBatch windows, lastX is nil, and
	// Backward skips the dcols/col2im input-gradient stage (the source
	// series is not a trainable input).
	winMode  bool
	winBatch int

	cols  *matrix.Mat[T] // (batch*outLen) x (Kernel*InChannels) im2col
	out   *matrix.Mat[T]
	dcols *matrix.Mat[T]
	dx    *matrix.Mat[T]
}

// Conv1D is the float64 1-D convolution layer.
type Conv1D = Conv1DOf[float64]

// NewConv1DOf builds a convolution with He-uniform initialization. The rng
// stream is consumed identically for either element type.
func NewConv1DOf[T matrix.Float](seqLen, inChannels, filters, kernel, dilation int, causal bool, rng *rand.Rand) *Conv1DOf[T] {
	if dilation < 1 {
		dilation = 1
	}
	c := &Conv1DOf[T]{
		SeqLen: seqLen, InChannels: inChannels, Filters: filters,
		Kernel: kernel, Dilation: dilation, Causal: causal,
		w: newParam[T](kernel*inChannels, filters), b: newParam[T](1, filters),
	}
	limit := math.Sqrt(6.0 / float64(kernel*inChannels))
	wd := c.w.W.Data()
	for i := range wd {
		wd[i] = T((2*rng.Float64() - 1) * limit)
	}
	return c
}

// NewConv1D builds a float64 convolution with He-uniform initialization.
func NewConv1D(seqLen, inChannels, filters, kernel, dilation int, causal bool, rng *rand.Rand) *Conv1D {
	return NewConv1DOf[float64](seqLen, inChannels, filters, kernel, dilation, causal, rng)
}

// OutLen returns the output sequence length.
func (c *Conv1DOf[T]) OutLen() int {
	if c.Causal {
		return c.SeqLen
	}
	return c.SeqLen - (c.Kernel-1)*c.Dilation
}

// inTime maps (output timestep t, kernel tap k) to the input timestep, or
// -1 when the tap falls into the causal zero padding.
func (c *Conv1DOf[T]) inTime(t, k int) int {
	if c.Causal {
		tin := t - (c.Kernel-1-k)*c.Dilation
		if tin < 0 {
			return -1
		}
		return tin
	}
	return t + k*c.Dilation
}

// Forward applies the convolution to every row.
func (c *Conv1DOf[T]) Forward(x *matrix.Mat[T], _ bool) (*matrix.Mat[T], error) {
	if x.Cols() != c.SeqLen*c.InChannels {
		return nil, fmt.Errorf("%w: conv1d expects %d cols (%d x %d), got %d", ErrShape, c.SeqLen*c.InChannels, c.SeqLen, c.InChannels, x.Cols())
	}
	outLen := c.OutLen()
	if outLen < 1 {
		return nil, fmt.Errorf("%w: conv1d kernel %d dilation %d too large for %d steps", ErrShape, c.Kernel, c.Dilation, c.SeqLen)
	}
	c.lastX = x
	c.winMode = false
	batch := x.Rows()
	ic := c.InChannels
	cols := matrix.Recycle(c.cols, batch*outLen, c.Kernel*ic) // zeros feed causal padding
	c.cols = cols
	for i := 0; i < batch; i++ {
		in := x.Row(i)
		for t := 0; t < outLen; t++ {
			dst := cols.Row(i*outLen + t)
			for k := 0; k < c.Kernel; k++ {
				tin := c.inTime(t, k)
				if tin < 0 {
					continue
				}
				copy(dst[k*ic:(k+1)*ic], in[tin*ic:(tin+1)*ic])
			}
		}
	}
	return c.matmulCols(batch, outLen)
}

// ForwardWindows is the fused window→conv forward: it builds the im2col
// buffer by gathering (affine-scaled) timesteps of the windows idx directly
// from src, so the (len(idx) x SeqLen*InChannels) windowed input matrix is
// never materialized. Each gathered element passes through the same affine
// scaling a materializing windower would apply, making the im2col buffer —
// and hence the output — bitwise identical to Forward on the materialized
// windows (f64; for f32 both paths round identically too, as the gather is
// elementwise).
//
// Only valid as the first layer of a network: Backward after a windowed
// forward accumulates weight/bias gradients but returns a nil input
// gradient (the source series is not trainable).
func (c *Conv1DOf[T]) ForwardWindows(src WindowSource, idx []int, _ bool) (*matrix.Mat[T], error) {
	if src.WindowLen() != c.SeqLen || src.Vars() != c.InChannels {
		return nil, fmt.Errorf("%w: conv1d expects %dx%d windows, source has %dx%d", ErrShape, c.SeqLen, c.InChannels, src.WindowLen(), src.Vars())
	}
	outLen := c.OutLen()
	if outLen < 1 {
		return nil, fmt.Errorf("%w: conv1d kernel %d dilation %d too large for %d steps", ErrShape, c.Kernel, c.Dilation, c.SeqLen)
	}
	c.lastX = nil
	c.winMode = true
	c.winBatch = len(idx)
	batch := len(idx)
	ic := c.InChannels
	cols := matrix.Recycle(c.cols, batch*outLen, c.Kernel*ic)
	c.cols = cols
	switch cw := any(cols).(type) {
	case *matrix.Mat[float64]:
		for i, w := range idx {
			for t := 0; t < outLen; t++ {
				dst := cw.Row(i*outLen + t)
				for k := 0; k < c.Kernel; k++ {
					tin := c.inTime(t, k)
					if tin < 0 {
						continue
					}
					src.CopyStep(dst[k*ic:(k+1)*ic], w, tin)
				}
			}
		}
	case *matrix.Mat[float32]:
		for i, w := range idx {
			for t := 0; t < outLen; t++ {
				dst := cw.Row(i*outLen + t)
				for k := 0; k < c.Kernel; k++ {
					tin := c.inTime(t, k)
					if tin < 0 {
						continue
					}
					src.CopyStep32(dst[k*ic:(k+1)*ic], w, tin)
				}
			}
		}
	}
	return c.matmulCols(batch, outLen)
}

// matmulCols multiplies the populated im2col buffer by the filter bank and
// adds the bias, shared by both forward entry points.
func (c *Conv1DOf[T]) matmulCols(batch, outLen int) (*matrix.Mat[T], error) {
	out := matrix.RecycleNoClear(c.out, batch, outLen*c.Filters)
	c.out = out
	outView, err := matrix.FromSlice(batch*outLen, c.Filters, out.Data())
	if err != nil {
		return nil, fmt.Errorf("nn: conv1d forward view: %w", err)
	}
	if _, err := matrix.MulInto(outView, c.cols, c.w.W); err != nil {
		return nil, fmt.Errorf("nn: conv1d forward: %w", err)
	}
	bias := c.b.W.Row(0)
	for r := 0; r < outView.Rows(); r++ {
		row := outView.Row(r)
		for f, bv := range bias {
			row[f] += bv
		}
	}
	return out, nil
}

// Backward accumulates weight/bias gradients and returns the input gradient
// (nil after a windowed forward — see ForwardWindows).
func (c *Conv1DOf[T]) Backward(grad *matrix.Mat[T]) (*matrix.Mat[T], error) {
	var batch int
	switch {
	case c.winMode:
		batch = c.winBatch
	case c.lastX != nil:
		batch = c.lastX.Rows()
	default:
		return nil, fmt.Errorf("nn: conv1d backward before forward")
	}
	outLen := c.OutLen()
	if grad.Cols() != outLen*c.Filters || grad.Rows() != batch {
		return nil, fmt.Errorf("%w: conv1d backward grad %dx%d", ErrShape, grad.Rows(), grad.Cols())
	}
	gview, err := matrix.FromSlice(batch*outLen, c.Filters, grad.Data())
	if err != nil {
		return nil, fmt.Errorf("nn: conv1d backward view: %w", err)
	}
	bGrad := c.b.Grad.Row(0)
	for r := 0; r < gview.Rows(); r++ {
		for f, v := range gview.Row(r) {
			bGrad[f] += v
		}
	}
	// dW += colsᵀ * grad over every (sample, step) row at once.
	if err := matrix.MulTransposeAAccum(c.w.Grad, c.cols, gview); err != nil {
		return nil, fmt.Errorf("nn: conv1d backward dW: %w", err)
	}
	if c.winMode {
		// Fused first layer: the input is the raw source series, which has
		// no gradient consumer, so dcols and the col2im scatter are skipped
		// entirely — the second allocation/bandwidth win of the fusion.
		return nil, nil
	}
	dcols, err := matrix.MulTransposeBInto(c.dcols, gview, c.w.W)
	if err != nil {
		return nil, fmt.Errorf("nn: conv1d backward dcols: %w", err)
	}
	c.dcols = dcols
	// col2im: scatter-add receptive-field gradients back onto timesteps.
	ic := c.InChannels
	dx := matrix.Recycle(c.dx, batch, c.SeqLen*ic)
	c.dx = dx
	for i := 0; i < batch; i++ {
		dIn := dx.Row(i)
		for t := 0; t < outLen; t++ {
			src := dcols.Row(i*outLen + t)
			for k := 0; k < c.Kernel; k++ {
				tin := c.inTime(t, k)
				if tin < 0 {
					continue
				}
				d := dIn[tin*ic : (tin+1)*ic]
				s := src[k*ic : (k+1)*ic]
				for ch, v := range s {
					d[ch] += v
				}
			}
		}
	}
	return dx, nil
}

// Parameters implements LayerOf.
func (c *Conv1DOf[T]) Parameters() []*ParamOf[T] { return []*ParamOf[T]{c.w, c.b} }

// MaxPool1DOf downsamples each channel by taking the maximum over
// non-overlapping windows of Pool timesteps.
type MaxPool1DOf[T matrix.Float] struct {
	SeqLen   int
	Channels int
	Pool     int

	argmax  []int // per forward: flattened output position -> input col
	rows    int
	out, dx *matrix.Mat[T]
}

// MaxPool1D is the float64 max-pooling layer.
type MaxPool1D = MaxPool1DOf[float64]

// NewMaxPool1DOf builds a pooling layer; SeqLen must be >= Pool.
func NewMaxPool1DOf[T matrix.Float](seqLen, channels, pool int) *MaxPool1DOf[T] {
	return &MaxPool1DOf[T]{SeqLen: seqLen, Channels: channels, Pool: pool}
}

// NewMaxPool1D builds a float64 pooling layer; SeqLen must be >= Pool.
func NewMaxPool1D(seqLen, channels, pool int) *MaxPool1D {
	return NewMaxPool1DOf[float64](seqLen, channels, pool)
}

// OutLen returns the pooled sequence length.
func (m *MaxPool1DOf[T]) OutLen() int { return m.SeqLen / m.Pool }

// Forward pools each row.
func (m *MaxPool1DOf[T]) Forward(x *matrix.Mat[T], _ bool) (*matrix.Mat[T], error) {
	if m.Pool < 1 || m.OutLen() < 1 {
		return nil, fmt.Errorf("%w: maxpool pool=%d over %d steps", ErrShape, m.Pool, m.SeqLen)
	}
	if x.Cols() != m.SeqLen*m.Channels {
		return nil, fmt.Errorf("%w: maxpool expects %d cols, got %d", ErrShape, m.SeqLen*m.Channels, x.Cols())
	}
	outLen := m.OutLen()
	out := matrix.RecycleNoClear(m.out, x.Rows(), outLen*m.Channels)
	m.out = out
	m.rows = x.Rows()
	need := x.Rows() * outLen * m.Channels
	if cap(m.argmax) >= need {
		m.argmax = m.argmax[:need]
	} else {
		m.argmax = make([]int, need)
	}
	for i := 0; i < x.Rows(); i++ {
		in := x.Row(i)
		dst := out.Row(i)
		for t := 0; t < outLen; t++ {
			for ch := 0; ch < m.Channels; ch++ {
				best := T(math.Inf(-1))
				bestCol := -1
				for k := 0; k < m.Pool; k++ {
					col := (t*m.Pool+k)*m.Channels + ch
					if in[col] > best {
						best = in[col]
						bestCol = col
					}
				}
				outPos := t*m.Channels + ch
				dst[outPos] = best
				m.argmax[i*outLen*m.Channels+outPos] = bestCol
			}
		}
	}
	return out, nil
}

// Backward routes gradients to the argmax positions.
func (m *MaxPool1DOf[T]) Backward(grad *matrix.Mat[T]) (*matrix.Mat[T], error) {
	outLen := m.OutLen()
	if m.argmax == nil || grad.Rows() != m.rows || grad.Cols() != outLen*m.Channels {
		return nil, fmt.Errorf("%w: maxpool backward without matching forward", ErrShape)
	}
	dx := matrix.Recycle(m.dx, m.rows, m.SeqLen*m.Channels)
	m.dx = dx
	for i := 0; i < grad.Rows(); i++ {
		g := grad.Row(i)
		dIn := dx.Row(i)
		for pos, gv := range g {
			dIn[m.argmax[i*outLen*m.Channels+pos]] += gv
		}
	}
	return dx, nil
}

// Parameters implements LayerOf.
func (m *MaxPool1DOf[T]) Parameters() []*ParamOf[T] { return nil }

// LastTimestepOf extracts the final timestep's channel vector from a
// sequence row, the standard head for causal stacks: (batch, T*C) -> (batch, C).
type LastTimestepOf[T matrix.Float] struct {
	SeqLen   int
	Channels int
	rows     int
	out, dx  *matrix.Mat[T]
}

// LastTimestep is the float64 extraction layer.
type LastTimestep = LastTimestepOf[float64]

// NewLastTimestepOf builds the extraction layer.
func NewLastTimestepOf[T matrix.Float](seqLen, channels int) *LastTimestepOf[T] {
	return &LastTimestepOf[T]{SeqLen: seqLen, Channels: channels}
}

// NewLastTimestep builds the float64 extraction layer.
func NewLastTimestep(seqLen, channels int) *LastTimestep {
	return NewLastTimestepOf[float64](seqLen, channels)
}

// Forward slices out the last timestep.
func (l *LastTimestepOf[T]) Forward(x *matrix.Mat[T], _ bool) (*matrix.Mat[T], error) {
	if x.Cols() != l.SeqLen*l.Channels {
		return nil, fmt.Errorf("%w: lasttimestep expects %d cols, got %d", ErrShape, l.SeqLen*l.Channels, x.Cols())
	}
	l.rows = x.Rows()
	out := matrix.RecycleNoClear(l.out, x.Rows(), l.Channels)
	l.out = out
	off := (l.SeqLen - 1) * l.Channels
	for i := 0; i < x.Rows(); i++ {
		copy(out.Row(i), x.Row(i)[off:off+l.Channels])
	}
	return out, nil
}

// Backward scatters the gradient into the last timestep slot.
func (l *LastTimestepOf[T]) Backward(grad *matrix.Mat[T]) (*matrix.Mat[T], error) {
	if grad.Rows() != l.rows || grad.Cols() != l.Channels {
		return nil, fmt.Errorf("%w: lasttimestep backward grad %dx%d", ErrShape, grad.Rows(), grad.Cols())
	}
	dx := matrix.Recycle(l.dx, l.rows, l.SeqLen*l.Channels)
	l.dx = dx
	off := (l.SeqLen - 1) * l.Channels
	for i := 0; i < grad.Rows(); i++ {
		copy(dx.Row(i)[off:off+l.Channels], grad.Row(i))
	}
	return dx, nil
}

// Parameters implements LayerOf.
func (l *LastTimestepOf[T]) Parameters() []*ParamOf[T] { return nil }
