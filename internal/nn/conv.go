package nn

import (
	"fmt"
	"math"
	"math/rand"

	"coda/internal/matrix"
)

// Conv1D is a 1-D convolution over time-major sequence rows. With Causal
// set, the output has the same length as the input and position t sees only
// inputs at or before t (left zero padding), enabling the WaveNet-style
// dilated stacks; otherwise the convolution is "valid" and the output
// shrinks by (Kernel-1)*Dilation timesteps.
//
// Both passes are expressed as matmuls over an im2col scratch buffer: each
// (sample, output step) pair becomes a row holding its Kernel*InChannels
// receptive field (zeros where a causal tap falls into the padding), so the
// convolution is one (batch*outLen) x (K*IC) by (K*IC) x Filters product
// through the blocked kernels. Output values can differ from the previous
// scalar loops in the last bits (the bias is now added after the taps);
// gradients follow the same im2col/col2im structure.
type Conv1D struct {
	SeqLen     int // input timesteps
	InChannels int
	Filters    int
	Kernel     int
	Dilation   int  // 1 = ordinary convolution
	Causal     bool // left-pad so output length == SeqLen

	w, b  *Param // w is (Kernel*InChannels) x Filters
	lastX *matrix.Matrix

	cols  *matrix.Matrix // (batch*outLen) x (Kernel*InChannels) im2col
	out   *matrix.Matrix
	dcols *matrix.Matrix
	dx    *matrix.Matrix
}

// NewConv1D builds a convolution with He-uniform initialization.
func NewConv1D(seqLen, inChannels, filters, kernel, dilation int, causal bool, rng *rand.Rand) *Conv1D {
	if dilation < 1 {
		dilation = 1
	}
	c := &Conv1D{
		SeqLen: seqLen, InChannels: inChannels, Filters: filters,
		Kernel: kernel, Dilation: dilation, Causal: causal,
		w: newParam(kernel*inChannels, filters), b: newParam(1, filters),
	}
	limit := math.Sqrt(6.0 / float64(kernel*inChannels))
	wd := c.w.W.Data()
	for i := range wd {
		wd[i] = (2*rng.Float64() - 1) * limit
	}
	return c
}

// OutLen returns the output sequence length.
func (c *Conv1D) OutLen() int {
	if c.Causal {
		return c.SeqLen
	}
	return c.SeqLen - (c.Kernel-1)*c.Dilation
}

// inTime maps (output timestep t, kernel tap k) to the input timestep, or
// -1 when the tap falls into the causal zero padding.
func (c *Conv1D) inTime(t, k int) int {
	if c.Causal {
		tin := t - (c.Kernel-1-k)*c.Dilation
		if tin < 0 {
			return -1
		}
		return tin
	}
	return t + k*c.Dilation
}

// Forward applies the convolution to every row.
func (c *Conv1D) Forward(x *matrix.Matrix, _ bool) (*matrix.Matrix, error) {
	if x.Cols() != c.SeqLen*c.InChannels {
		return nil, fmt.Errorf("%w: conv1d expects %d cols (%d x %d), got %d", ErrShape, c.SeqLen*c.InChannels, c.SeqLen, c.InChannels, x.Cols())
	}
	outLen := c.OutLen()
	if outLen < 1 {
		return nil, fmt.Errorf("%w: conv1d kernel %d dilation %d too large for %d steps", ErrShape, c.Kernel, c.Dilation, c.SeqLen)
	}
	c.lastX = x
	batch := x.Rows()
	ic := c.InChannels
	cols := matrix.Recycle(c.cols, batch*outLen, c.Kernel*ic) // zeros feed causal padding
	c.cols = cols
	for i := 0; i < batch; i++ {
		in := x.Row(i)
		for t := 0; t < outLen; t++ {
			dst := cols.Row(i*outLen + t)
			for k := 0; k < c.Kernel; k++ {
				tin := c.inTime(t, k)
				if tin < 0 {
					continue
				}
				copy(dst[k*ic:(k+1)*ic], in[tin*ic:(tin+1)*ic])
			}
		}
	}
	out := matrix.RecycleNoClear(c.out, batch, outLen*c.Filters)
	c.out = out
	outView, err := matrix.FromSlice(batch*outLen, c.Filters, out.Data())
	if err != nil {
		return nil, fmt.Errorf("nn: conv1d forward view: %w", err)
	}
	if _, err := matrix.MulInto(outView, cols, c.w.W); err != nil {
		return nil, fmt.Errorf("nn: conv1d forward: %w", err)
	}
	bias := c.b.W.Row(0)
	for r := 0; r < outView.Rows(); r++ {
		row := outView.Row(r)
		for f, bv := range bias {
			row[f] += bv
		}
	}
	return out, nil
}

// Backward accumulates weight/bias gradients and returns the input gradient.
func (c *Conv1D) Backward(grad *matrix.Matrix) (*matrix.Matrix, error) {
	if c.lastX == nil {
		return nil, fmt.Errorf("nn: conv1d backward before forward")
	}
	outLen := c.OutLen()
	batch := c.lastX.Rows()
	if grad.Cols() != outLen*c.Filters || grad.Rows() != batch {
		return nil, fmt.Errorf("%w: conv1d backward grad %dx%d", ErrShape, grad.Rows(), grad.Cols())
	}
	gview, err := matrix.FromSlice(batch*outLen, c.Filters, grad.Data())
	if err != nil {
		return nil, fmt.Errorf("nn: conv1d backward view: %w", err)
	}
	bGrad := c.b.Grad.Row(0)
	for r := 0; r < gview.Rows(); r++ {
		for f, v := range gview.Row(r) {
			bGrad[f] += v
		}
	}
	// dW += colsᵀ * grad over every (sample, step) row at once.
	if err := matrix.MulTransposeAAccum(c.w.Grad, c.cols, gview); err != nil {
		return nil, fmt.Errorf("nn: conv1d backward dW: %w", err)
	}
	dcols, err := matrix.MulTransposeBInto(c.dcols, gview, c.w.W)
	if err != nil {
		return nil, fmt.Errorf("nn: conv1d backward dcols: %w", err)
	}
	c.dcols = dcols
	// col2im: scatter-add receptive-field gradients back onto timesteps.
	ic := c.InChannels
	dx := matrix.Recycle(c.dx, batch, c.SeqLen*ic)
	c.dx = dx
	for i := 0; i < batch; i++ {
		dIn := dx.Row(i)
		for t := 0; t < outLen; t++ {
			src := dcols.Row(i*outLen + t)
			for k := 0; k < c.Kernel; k++ {
				tin := c.inTime(t, k)
				if tin < 0 {
					continue
				}
				d := dIn[tin*ic : (tin+1)*ic]
				s := src[k*ic : (k+1)*ic]
				for ch, v := range s {
					d[ch] += v
				}
			}
		}
	}
	return dx, nil
}

// Parameters implements Layer.
func (c *Conv1D) Parameters() []*Param { return []*Param{c.w, c.b} }

// MaxPool1D downsamples each channel by taking the maximum over
// non-overlapping windows of Pool timesteps.
type MaxPool1D struct {
	SeqLen   int
	Channels int
	Pool     int

	argmax  []int // per forward: flattened output position -> input col
	rows    int
	out, dx *matrix.Matrix
}

// NewMaxPool1D builds a pooling layer; SeqLen must be >= Pool.
func NewMaxPool1D(seqLen, channels, pool int) *MaxPool1D {
	return &MaxPool1D{SeqLen: seqLen, Channels: channels, Pool: pool}
}

// OutLen returns the pooled sequence length.
func (m *MaxPool1D) OutLen() int { return m.SeqLen / m.Pool }

// Forward pools each row.
func (m *MaxPool1D) Forward(x *matrix.Matrix, _ bool) (*matrix.Matrix, error) {
	if m.Pool < 1 || m.OutLen() < 1 {
		return nil, fmt.Errorf("%w: maxpool pool=%d over %d steps", ErrShape, m.Pool, m.SeqLen)
	}
	if x.Cols() != m.SeqLen*m.Channels {
		return nil, fmt.Errorf("%w: maxpool expects %d cols, got %d", ErrShape, m.SeqLen*m.Channels, x.Cols())
	}
	outLen := m.OutLen()
	out := matrix.RecycleNoClear(m.out, x.Rows(), outLen*m.Channels)
	m.out = out
	m.rows = x.Rows()
	need := x.Rows() * outLen * m.Channels
	if cap(m.argmax) >= need {
		m.argmax = m.argmax[:need]
	} else {
		m.argmax = make([]int, need)
	}
	for i := 0; i < x.Rows(); i++ {
		in := x.Row(i)
		dst := out.Row(i)
		for t := 0; t < outLen; t++ {
			for ch := 0; ch < m.Channels; ch++ {
				best := math.Inf(-1)
				bestCol := -1
				for k := 0; k < m.Pool; k++ {
					col := (t*m.Pool+k)*m.Channels + ch
					if in[col] > best {
						best = in[col]
						bestCol = col
					}
				}
				outPos := t*m.Channels + ch
				dst[outPos] = best
				m.argmax[i*outLen*m.Channels+outPos] = bestCol
			}
		}
	}
	return out, nil
}

// Backward routes gradients to the argmax positions.
func (m *MaxPool1D) Backward(grad *matrix.Matrix) (*matrix.Matrix, error) {
	outLen := m.OutLen()
	if m.argmax == nil || grad.Rows() != m.rows || grad.Cols() != outLen*m.Channels {
		return nil, fmt.Errorf("%w: maxpool backward without matching forward", ErrShape)
	}
	dx := matrix.Recycle(m.dx, m.rows, m.SeqLen*m.Channels)
	m.dx = dx
	for i := 0; i < grad.Rows(); i++ {
		g := grad.Row(i)
		dIn := dx.Row(i)
		for pos, gv := range g {
			dIn[m.argmax[i*outLen*m.Channels+pos]] += gv
		}
	}
	return dx, nil
}

// Parameters implements Layer.
func (m *MaxPool1D) Parameters() []*Param { return nil }

// LastTimestep extracts the final timestep's channel vector from a sequence
// row, the standard head for causal stacks: (batch, T*C) -> (batch, C).
type LastTimestep struct {
	SeqLen   int
	Channels int
	rows     int
	out, dx  *matrix.Matrix
}

// NewLastTimestep builds the extraction layer.
func NewLastTimestep(seqLen, channels int) *LastTimestep {
	return &LastTimestep{SeqLen: seqLen, Channels: channels}
}

// Forward slices out the last timestep.
func (l *LastTimestep) Forward(x *matrix.Matrix, _ bool) (*matrix.Matrix, error) {
	if x.Cols() != l.SeqLen*l.Channels {
		return nil, fmt.Errorf("%w: lasttimestep expects %d cols, got %d", ErrShape, l.SeqLen*l.Channels, x.Cols())
	}
	l.rows = x.Rows()
	out := matrix.RecycleNoClear(l.out, x.Rows(), l.Channels)
	l.out = out
	off := (l.SeqLen - 1) * l.Channels
	for i := 0; i < x.Rows(); i++ {
		copy(out.Row(i), x.Row(i)[off:off+l.Channels])
	}
	return out, nil
}

// Backward scatters the gradient into the last timestep slot.
func (l *LastTimestep) Backward(grad *matrix.Matrix) (*matrix.Matrix, error) {
	if grad.Rows() != l.rows || grad.Cols() != l.Channels {
		return nil, fmt.Errorf("%w: lasttimestep backward grad %dx%d", ErrShape, grad.Rows(), grad.Cols())
	}
	dx := matrix.Recycle(l.dx, l.rows, l.SeqLen*l.Channels)
	l.dx = dx
	off := (l.SeqLen - 1) * l.Channels
	for i := 0; i < grad.Rows(); i++ {
		copy(dx.Row(i)[off:off+l.Channels], grad.Row(i))
	}
	return dx, nil
}

// Parameters implements Layer.
func (l *LastTimestep) Parameters() []*Param { return nil }
