// Package darr implements the Data Analytics Results Repository of Section
// III (Figure 2): a cloud-side repository where cooperating clients store
// every analytics result together with an explanation of how it was
// achieved. Clients query the DARR to learn which calculations have already
// run for a data set, reuse those results, and claim non-overlapping work.
//
// Records are keyed by core.UnitKey — dataset fingerprint, pipeline spec
// (with parameters) and evaluation spec — so clients that agree on the
// scoring mechanism share results exactly. Claims carry a TTL so a crashed
// client's work is eventually re-issued.
package darr

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"coda/internal/obs"
	"coda/internal/persist"
)

// DARR telemetry: cooperative reuse shows up as the hit/miss ratio, and
// claim grants/denials show how well clients partition the work.
var (
	mLookups       = obs.GetCounter("coda_darr_lookups_total")
	mHits          = obs.GetCounter("coda_darr_hits_total")
	mMisses        = obs.GetCounter("coda_darr_misses_total")
	mPuts          = obs.GetCounter("coda_darr_puts_total")
	mClaimsGranted = obs.GetCounter(`coda_darr_claims_total{granted="true"}`)
	mClaimsDenied  = obs.GetCounter(`coda_darr_claims_total{granted="false"}`)

	// Batched-protocol telemetry: one batch call replaces many per-unit
	// round trips, so the interesting numbers are how many batch calls
	// arrive and how many keys each carries. The per-key counters above
	// still tick inside batches, so hit/miss ratios see through both
	// protocols.
	mBatchLookups = obs.GetCounter("coda_darr_batch_lookups_total")
	mBatchClaims  = obs.GetCounter("coda_darr_batch_claims_total")
	mBatchPuts    = obs.GetCounter("coda_darr_batch_puts_total")
	mBatchKeys    = obs.GetHistogram("coda_darr_batch_size_keys", BatchSizeBuckets)
)

// BatchSizeBuckets is the histogram layout for batch sizes (keys or
// records per batched DARR call).
var BatchSizeBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}

// ErrNotFound is returned when a record key is unknown.
var ErrNotFound = errors.New("darr: record not found")

// Record is one completed analytics calculation.
type Record struct {
	Key          string    `json:"key"`
	DatasetFP    string    `json:"dataset_fp"`
	PipelineSpec string    `json:"pipeline_spec"`
	EvalSpec     string    `json:"eval_spec"`
	Metric       string    `json:"metric"`
	Score        float64   `json:"score"`
	Explanation  string    `json:"explanation"`
	ClientID     string    `json:"client_id"`
	CreatedAt    time.Time `json:"created_at"`
}

type claim struct {
	clientID string
	expires  time.Time
}

// Repo is the DARR implementation; the HTTP tier exposes it to remote
// clients. It serves from memory; with a persistence backend attached
// (NewDurableRepo) every record and claim is written through to the
// shared persist layer before it becomes visible, and a restart replays
// them — the paper's "results outlive any one search" property.
type Repo struct {
	now      func() time.Time
	claimTTL time.Duration
	kv       persist.KV // nil = memory-only

	mu      sync.Mutex
	records map[string]Record
	claims  map[string]claim
	// accounting for experiments
	lookups, hits, puts int
}

// NewRepo builds a repository. nowFn may be nil (wall clock); claimTTL <= 0
// defaults to one minute.
func NewRepo(nowFn func() time.Time, claimTTL time.Duration) *Repo {
	if nowFn == nil {
		nowFn = time.Now
	}
	if claimTTL <= 0 {
		claimTTL = time.Minute
	}
	return &Repo{
		now:      nowFn,
		claimTTL: claimTTL,
		records:  map[string]Record{},
		claims:   map[string]claim{},
	}
}

// Put stores (or overwrites) a record and releases any claim on its key
// immediately — a publisher's claim must never linger until TTL once the
// result is available, or peers would wait on work that is already done.
// With a backend attached the record (and the claim release) is durable
// before it becomes visible; a refused write leaves the repo unchanged.
func (r *Repo) Put(rec Record) error {
	if rec.Key == "" {
		return fmt.Errorf("darr: record has empty key")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec.CreatedAt.IsZero() {
		rec.CreatedAt = r.now()
	}
	if err := r.persistRecordsLocked([]Record{rec}); err != nil {
		return err
	}
	r.records[rec.Key] = rec
	delete(r.claims, rec.Key)
	r.puts++
	mPuts.Inc()
	return nil
}

// Get returns the record for a key.
func (r *Repo) Get(key string) (Record, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookups++
	mLookups.Inc()
	rec, ok := r.records[key]
	if !ok {
		mMisses.Inc()
		return Record{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	r.hits++
	mHits.Inc()
	return rec, nil
}

// QueryByDataset returns all records for a dataset fingerprint, sorted by
// pipeline spec — how a client discovers "which calculations have been run
// for a certain data set".
func (r *Repo) QueryByDataset(fp string) []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Record
	for _, rec := range r.records {
		if rec.DatasetFP == fp {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].PipelineSpec < out[b].PipelineSpec })
	return out
}

// Claim atomically reserves a key for clientID. It returns false when
// another client holds an unexpired claim or the result already exists.
// Re-claiming one's own key refreshes the TTL and returns true.
func (r *Repo) Claim(key, clientID string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	granted := r.claimLocked(key, clientID, r.now())
	if granted && r.kv != nil {
		if err := r.persistClaimsLocked(key); err != nil {
			// A claim that would not survive a restart is worse than a
			// denial: the client would compute while peers re-claim.
			delete(r.claims, key)
			return false
		}
	}
	return granted
}

func (r *Repo) claimLocked(key, clientID string, now time.Time) bool {
	if _, done := r.records[key]; done {
		mClaimsDenied.Inc()
		return false
	}
	c, held := r.claims[key]
	if held && c.clientID != clientID && now.Before(c.expires) {
		mClaimsDenied.Inc()
		return false
	}
	r.claims[key] = claim{clientID: clientID, expires: now.Add(r.claimTTL)}
	mClaimsGranted.Inc()
	return true
}

// GetBatch resolves many keys under one lock acquisition, returning
// records only for the keys that exist. Backs the batched lookup
// endpoint and the in-process batch client.
func (r *Repo) GetBatch(keys []string) map[string]Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	mBatchLookups.Inc()
	mBatchKeys.Observe(float64(len(keys)))
	out := make(map[string]Record, len(keys))
	for _, k := range keys {
		r.lookups++
		mLookups.Inc()
		rec, ok := r.records[k]
		if !ok {
			mMisses.Inc()
			continue
		}
		r.hits++
		mHits.Inc()
		out[k] = rec
	}
	return out
}

// ClaimBatch attempts to reserve every key for clientID atomically —
// all decisions are made under one lock against one clock reading — and
// reports the per-key grants with Claim's exact semantics.
func (r *Repo) ClaimBatch(keys []string, clientID string) map[string]bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	mBatchClaims.Inc()
	mBatchKeys.Observe(float64(len(keys)))
	now := r.now()
	out := make(map[string]bool, len(keys))
	var granted []string
	for _, k := range keys {
		out[k] = r.claimLocked(k, clientID, now)
		if out[k] {
			granted = append(granted, k)
		}
	}
	if len(granted) > 0 && r.kv != nil {
		if err := r.persistClaimsLocked(granted...); err != nil {
			for _, k := range granted {
				delete(r.claims, k)
				out[k] = false
			}
		}
	}
	return out
}

// PutBatch stores many records under one lock acquisition, releasing
// their claims like Put. It validates every record before storing any,
// so a bad record rejects the whole batch.
func (r *Repo) PutBatch(recs []Record) error {
	for i, rec := range recs {
		if rec.Key == "" {
			return fmt.Errorf("darr: batch record %d has empty key", i)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	mBatchPuts.Inc()
	mBatchKeys.Observe(float64(len(recs)))
	now := r.now()
	stamped := make([]Record, len(recs))
	for i, rec := range recs {
		if rec.CreatedAt.IsZero() {
			rec.CreatedAt = now
		}
		stamped[i] = rec
	}
	if err := r.persistRecordsLocked(stamped); err != nil {
		return err
	}
	for _, rec := range stamped {
		r.records[rec.Key] = rec
		delete(r.claims, rec.Key)
		r.puts++
		mPuts.Inc()
	}
	return nil
}

// Release drops clientID's claim on key (a no-op for other clients' claims).
func (r *Repo) Release(key, clientID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.claims[key]; ok && c.clientID == clientID {
		delete(r.claims, key)
		if r.kv != nil {
			// Best-effort: a failed delete leaves a durable claim that
			// load prunes once it expires or its record appears.
			_ = r.kv.Delete(claimKey(key))
		}
	}
}

// ActiveClaims counts unexpired claims.
func (r *Repo) ActiveClaims() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	n := 0
	for _, c := range r.claims {
		if now.Before(c.expires) {
			n++
		}
	}
	return n
}

// Len returns the number of stored records.
func (r *Repo) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.records)
}

// Stats reports lookup/hit/put counts for the cooperation experiments.
func (r *Repo) Stats() (lookups, hits, puts int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lookups, r.hits, r.puts
}

// Client adapts a Repo to core.ResultStore for one named client, parsing
// the structured fields out of unit keys when publishing.
type Client struct {
	Repo     *Repo
	ClientID string
	Metric   string
}

// Lookup implements core.ResultStore. The context is unused: the repo is
// in-process and cannot block.
func (c *Client) Lookup(_ context.Context, key string) (float64, bool, error) {
	rec, err := c.Repo.Get(key)
	if errors.Is(err, ErrNotFound) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return rec.Score, true, nil
}

// Claim implements core.ResultStore.
func (c *Client) Claim(_ context.Context, key string) (bool, error) {
	return c.Repo.Claim(key, c.ClientID), nil
}

// LookupBatch implements core.BatchResultStore.
func (c *Client) LookupBatch(_ context.Context, keys []string) (map[string]float64, error) {
	recs := c.Repo.GetBatch(keys)
	out := make(map[string]float64, len(recs))
	for k, rec := range recs {
		out[k] = rec.Score
	}
	return out, nil
}

// ClaimBatch implements core.BatchResultStore.
func (c *Client) ClaimBatch(_ context.Context, keys []string) (map[string]bool, error) {
	return c.Repo.ClaimBatch(keys, c.ClientID), nil
}

// Release implements core.BatchResultStore: a claimed-but-failed unit
// frees its key immediately instead of blocking peers until TTL.
func (c *Client) Release(_ context.Context, key string) error {
	c.Repo.Release(key, c.ClientID)
	return nil
}

// Publish implements core.ResultStore.
func (c *Client) Publish(_ context.Context, key string, score float64, explanation string) error {
	fp, spec, eval := SplitKey(key)
	return c.Repo.Put(Record{
		Key:          key,
		DatasetFP:    fp,
		PipelineSpec: spec,
		EvalSpec:     eval,
		Metric:       c.Metric,
		Score:        score,
		Explanation:  explanation,
		ClientID:     c.ClientID,
	})
}

// SplitKey decomposes a core.UnitKey into its dataset fingerprint, pipeline
// spec and evaluation spec. Pipeline specs never contain '|' (they use
// " -> "), while evaluation specs do, so the first two separators delimit
// the three fields.
func SplitKey(key string) (datasetFP, pipelineSpec, evalSpec string) {
	fp, rest, ok := strings.Cut(key, "|")
	if !ok {
		return "", key, ""
	}
	spec, eval, ok := strings.Cut(rest, "|")
	if !ok {
		return fp, rest, ""
	}
	return fp, spec, eval
}
