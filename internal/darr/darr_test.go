package darr

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"coda/internal/core"
)

// fixed clock helper.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)} }

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestPutGetAndQuery(t *testing.T) {
	r := NewRepo(nil, 0)
	rec := Record{
		Key:       "fp1|input -> noop -> knn(k=5)|kfold(k=5,shuffle=true)|rmse|seed=1",
		DatasetFP: "fp1", PipelineSpec: "input -> noop -> knn(k=5)",
		EvalSpec: "kfold(k=5,shuffle=true)|rmse|seed=1",
		Metric:   "rmse", Score: 1.5, ClientID: "c1", Explanation: "test",
	}
	if err := r.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get(rec.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != 1.5 || got.ClientID != "c1" {
		t.Fatalf("got %+v", got)
	}
	if got.CreatedAt.IsZero() {
		t.Fatal("CreatedAt not stamped")
	}
	if _, err := r.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := r.Put(Record{}); err == nil {
		t.Fatal("want empty-key error")
	}

	// Query by dataset.
	rec2 := rec
	rec2.Key = "fp1|input -> noop -> linearregression(alpha=0)|eval"
	rec2.PipelineSpec = "input -> noop -> linearregression(alpha=0)"
	if err := r.Put(rec2); err != nil {
		t.Fatal(err)
	}
	rec3 := rec
	rec3.Key = "fp2|other|eval"
	rec3.DatasetFP = "fp2"
	if err := r.Put(rec3); err != nil {
		t.Fatal(err)
	}
	recs := r.QueryByDataset("fp1")
	if len(recs) != 2 {
		t.Fatalf("query returned %d records", len(recs))
	}
	// Sorted by pipeline spec.
	if recs[0].PipelineSpec > recs[1].PipelineSpec {
		t.Fatal("query results not sorted")
	}
	if len(r.QueryByDataset("fp3")) != 0 {
		t.Fatal("unknown dataset should return nothing")
	}
}

func TestClaimSemantics(t *testing.T) {
	ck := newClock()
	r := NewRepo(ck.Now, time.Minute)
	if !r.Claim("k1", "alice") {
		t.Fatal("first claim should succeed")
	}
	if r.Claim("k1", "bob") {
		t.Fatal("second client must not steal an active claim")
	}
	if !r.Claim("k1", "alice") {
		t.Fatal("re-claim by owner should refresh")
	}
	// Claims expire so crashed clients don't block work forever.
	ck.Advance(2 * time.Minute)
	if !r.Claim("k1", "bob") {
		t.Fatal("expired claim should be reclaimable")
	}
	// Completed work cannot be claimed.
	if err := r.Put(Record{Key: "k2", DatasetFP: "fp"}); err != nil {
		t.Fatal(err)
	}
	if r.Claim("k2", "alice") {
		t.Fatal("existing record must not be claimable")
	}
}

func TestReleaseClaim(t *testing.T) {
	r := NewRepo(nil, time.Hour)
	r.Claim("k", "alice")
	r.Release("k", "bob") // not the owner: no-op
	if r.Claim("k", "bob") {
		t.Fatal("release by non-owner must not free the claim")
	}
	r.Release("k", "alice")
	if !r.Claim("k", "bob") {
		t.Fatal("released claim should be available")
	}
}

func TestPutReleasesClaim(t *testing.T) {
	r := NewRepo(nil, time.Hour)
	r.Claim("k", "alice")
	if err := r.Put(Record{Key: "k"}); err != nil {
		t.Fatal(err)
	}
	if r.ActiveClaims() != 0 {
		t.Fatal("publishing a result should clear its claim")
	}
}

func TestClientAdapterImplementsResultStore(t *testing.T) {
	var _ core.ResultStore = (*Client)(nil)
	repo := NewRepo(nil, time.Minute)
	c := &Client{Repo: repo, ClientID: "c1", Metric: "rmse"}

	key := core.UnitKey("fpX", "input -> noop -> knn(k=3)", "kfold(k=3,shuffle=true)|rmse|seed=7")
	if _, ok, err := c.Lookup(context.Background(), key); err != nil || ok {
		t.Fatalf("lookup empty repo: ok=%v err=%v", ok, err)
	}
	claimed, err := c.Claim(context.Background(), key)
	if err != nil || !claimed {
		t.Fatalf("claim: %v %v", claimed, err)
	}
	if err := c.Publish(context.Background(), key, 2.25, "explanation here"); err != nil {
		t.Fatal(err)
	}
	score, ok, err := c.Lookup(context.Background(), key)
	if err != nil || !ok || score != 2.25 {
		t.Fatalf("lookup after publish: %v %v %v", score, ok, err)
	}
	// The record carries the parsed structure.
	rec, err := repo.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if rec.DatasetFP != "fpX" {
		t.Fatalf("fp %q", rec.DatasetFP)
	}
	if rec.PipelineSpec != "input -> noop -> knn(k=3)" {
		t.Fatalf("spec %q", rec.PipelineSpec)
	}
	if rec.EvalSpec != "kfold(k=3,shuffle=true)|rmse|seed=7" {
		t.Fatalf("eval %q", rec.EvalSpec)
	}
	if rec.Metric != "rmse" || rec.ClientID != "c1" {
		t.Fatalf("metadata %+v", rec)
	}
	// Query sees it.
	if got := repo.QueryByDataset("fpX"); len(got) != 1 {
		t.Fatalf("query %d", len(got))
	}
}

func TestSplitKey(t *testing.T) {
	fp, spec, eval := SplitKey("abc|input -> x -> y|kfold(k=5)|rmse|seed=1")
	if fp != "abc" || spec != "input -> x -> y" || eval != "kfold(k=5)|rmse|seed=1" {
		t.Fatalf("split = %q %q %q", fp, spec, eval)
	}
	fp, spec, eval = SplitKey("nokey")
	if fp != "" || spec != "nokey" || eval != "" {
		t.Fatalf("degenerate split = %q %q %q", fp, spec, eval)
	}
}

func TestConcurrentClaims(t *testing.T) {
	r := NewRepo(nil, time.Minute)
	const workers = 16
	winners := make(chan string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r.Claim("contested", string(rune('a'+w))) {
				winners <- string(rune('a' + w))
			}
		}()
	}
	wg.Wait()
	close(winners)
	n := 0
	for range winners {
		n++
	}
	if n != 1 {
		t.Fatalf("%d clients won a single claim", n)
	}
}

func TestStats(t *testing.T) {
	r := NewRepo(nil, time.Minute)
	_ = r.Put(Record{Key: "k"})
	_, _ = r.Get("k")
	_, _ = r.Get("missing")
	lookups, hits, puts := r.Stats()
	if lookups != 2 || hits != 1 || puts != 1 {
		t.Fatalf("stats %d %d %d", lookups, hits, puts)
	}
	if r.Len() != 1 {
		t.Fatalf("len %d", r.Len())
	}
}
