package darr

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"coda/internal/core"
)

// fixed clock helper.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)} }

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestPutGetAndQuery(t *testing.T) {
	r := NewRepo(nil, 0)
	rec := Record{
		Key:       "fp1|input -> noop -> knn(k=5)|kfold(k=5,shuffle=true)|rmse|seed=1",
		DatasetFP: "fp1", PipelineSpec: "input -> noop -> knn(k=5)",
		EvalSpec: "kfold(k=5,shuffle=true)|rmse|seed=1",
		Metric:   "rmse", Score: 1.5, ClientID: "c1", Explanation: "test",
	}
	if err := r.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get(rec.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != 1.5 || got.ClientID != "c1" {
		t.Fatalf("got %+v", got)
	}
	if got.CreatedAt.IsZero() {
		t.Fatal("CreatedAt not stamped")
	}
	if _, err := r.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := r.Put(Record{}); err == nil {
		t.Fatal("want empty-key error")
	}

	// Query by dataset.
	rec2 := rec
	rec2.Key = "fp1|input -> noop -> linearregression(alpha=0)|eval"
	rec2.PipelineSpec = "input -> noop -> linearregression(alpha=0)"
	if err := r.Put(rec2); err != nil {
		t.Fatal(err)
	}
	rec3 := rec
	rec3.Key = "fp2|other|eval"
	rec3.DatasetFP = "fp2"
	if err := r.Put(rec3); err != nil {
		t.Fatal(err)
	}
	recs := r.QueryByDataset("fp1")
	if len(recs) != 2 {
		t.Fatalf("query returned %d records", len(recs))
	}
	// Sorted by pipeline spec.
	if recs[0].PipelineSpec > recs[1].PipelineSpec {
		t.Fatal("query results not sorted")
	}
	if len(r.QueryByDataset("fp3")) != 0 {
		t.Fatal("unknown dataset should return nothing")
	}
}

func TestClaimSemantics(t *testing.T) {
	ck := newClock()
	r := NewRepo(ck.Now, time.Minute)
	if !r.Claim("k1", "alice") {
		t.Fatal("first claim should succeed")
	}
	if r.Claim("k1", "bob") {
		t.Fatal("second client must not steal an active claim")
	}
	if !r.Claim("k1", "alice") {
		t.Fatal("re-claim by owner should refresh")
	}
	// Claims expire so crashed clients don't block work forever.
	ck.Advance(2 * time.Minute)
	if !r.Claim("k1", "bob") {
		t.Fatal("expired claim should be reclaimable")
	}
	// Completed work cannot be claimed.
	if err := r.Put(Record{Key: "k2", DatasetFP: "fp"}); err != nil {
		t.Fatal(err)
	}
	if r.Claim("k2", "alice") {
		t.Fatal("existing record must not be claimable")
	}
}

func TestReleaseClaim(t *testing.T) {
	r := NewRepo(nil, time.Hour)
	r.Claim("k", "alice")
	r.Release("k", "bob") // not the owner: no-op
	if r.Claim("k", "bob") {
		t.Fatal("release by non-owner must not free the claim")
	}
	r.Release("k", "alice")
	if !r.Claim("k", "bob") {
		t.Fatal("released claim should be available")
	}
}

func TestPutReleasesClaim(t *testing.T) {
	r := NewRepo(nil, time.Hour)
	r.Claim("k", "alice")
	if err := r.Put(Record{Key: "k"}); err != nil {
		t.Fatal(err)
	}
	if r.ActiveClaims() != 0 {
		t.Fatal("publishing a result should clear its claim")
	}
}

func TestClientAdapterImplementsResultStore(t *testing.T) {
	var _ core.ResultStore = (*Client)(nil)
	repo := NewRepo(nil, time.Minute)
	c := &Client{Repo: repo, ClientID: "c1", Metric: "rmse"}

	key := core.UnitKey("fpX", "input -> noop -> knn(k=3)", "kfold(k=3,shuffle=true)|rmse|seed=7")
	if _, ok, err := c.Lookup(context.Background(), key); err != nil || ok {
		t.Fatalf("lookup empty repo: ok=%v err=%v", ok, err)
	}
	claimed, err := c.Claim(context.Background(), key)
	if err != nil || !claimed {
		t.Fatalf("claim: %v %v", claimed, err)
	}
	if err := c.Publish(context.Background(), key, 2.25, "explanation here"); err != nil {
		t.Fatal(err)
	}
	score, ok, err := c.Lookup(context.Background(), key)
	if err != nil || !ok || score != 2.25 {
		t.Fatalf("lookup after publish: %v %v %v", score, ok, err)
	}
	// The record carries the parsed structure.
	rec, err := repo.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if rec.DatasetFP != "fpX" {
		t.Fatalf("fp %q", rec.DatasetFP)
	}
	if rec.PipelineSpec != "input -> noop -> knn(k=3)" {
		t.Fatalf("spec %q", rec.PipelineSpec)
	}
	if rec.EvalSpec != "kfold(k=3,shuffle=true)|rmse|seed=7" {
		t.Fatalf("eval %q", rec.EvalSpec)
	}
	if rec.Metric != "rmse" || rec.ClientID != "c1" {
		t.Fatalf("metadata %+v", rec)
	}
	// Query sees it.
	if got := repo.QueryByDataset("fpX"); len(got) != 1 {
		t.Fatalf("query %d", len(got))
	}
}

func TestSplitKey(t *testing.T) {
	for _, tc := range []struct {
		key, fp, spec, eval string
	}{
		{"abc|input -> x -> y|kfold(k=5)|rmse|seed=1", "abc", "input -> x -> y", "kfold(k=5)|rmse|seed=1"},
		// No separators: everything lands in the spec position.
		{"nokey", "", "nokey", ""},
		{"", "", "", ""},
		// One separator: no eval spec.
		{"fp|spec", "fp", "spec", ""},
		{"|", "", "", ""},
		// Empty fields survive round the separators.
		{"||", "", "", ""},
		{"fp||eval", "fp", "", "eval"},
		{"|spec|eval", "", "spec", "eval"},
		{"fp|spec|", "fp", "spec", ""},
	} {
		fp, spec, eval := SplitKey(tc.key)
		if fp != tc.fp || spec != tc.spec || eval != tc.eval {
			t.Errorf("SplitKey(%q) = %q %q %q, want %q %q %q",
				tc.key, fp, spec, eval, tc.fp, tc.spec, tc.eval)
		}
	}
}

// TestClaimExpiryBoundary drives the TTL edge with a fake clock: a
// claim is held strictly before its expiry instant and free at it.
func TestClaimExpiryBoundary(t *testing.T) {
	ck := newClock()
	r := NewRepo(ck.Now, time.Minute)
	if !r.Claim("k", "alice") {
		t.Fatal("first claim should succeed")
	}
	ck.Advance(time.Minute - time.Nanosecond)
	if r.Claim("k", "bob") {
		t.Fatal("claim stolen one nanosecond before expiry")
	}
	ck.Advance(time.Nanosecond)
	if !r.Claim("k", "bob") {
		t.Fatal("claim not reclaimable exactly at expiry")
	}
	// Bob's fresh claim restarts the TTL from his grant time.
	ck.Advance(time.Minute - time.Nanosecond)
	if r.Claim("k", "carol") {
		t.Fatal("refreshed claim expired too early")
	}
	if r.ActiveClaims() != 1 {
		t.Fatalf("active claims %d, want 1", r.ActiveClaims())
	}
}

// TestOwnerReclaimRefreshesTTL: an owner re-claim pushes expiry forward,
// so a heartbeating client keeps its work.
func TestOwnerReclaimRefreshesTTL(t *testing.T) {
	ck := newClock()
	r := NewRepo(ck.Now, time.Minute)
	r.Claim("k", "alice")
	ck.Advance(45 * time.Second)
	if !r.Claim("k", "alice") {
		t.Fatal("owner re-claim must succeed")
	}
	// 30s later the original TTL would have lapsed; the refresh holds.
	ck.Advance(30 * time.Second)
	if r.Claim("k", "bob") {
		t.Fatal("refreshed claim lost before its new expiry")
	}
}

func TestRepoBatchOps(t *testing.T) {
	ck := newClock()
	r := NewRepo(ck.Now, time.Minute)
	if err := r.PutBatch([]Record{
		{Key: "a", DatasetFP: "fp", Score: 1},
		{Key: "b", DatasetFP: "fp", Score: 2},
	}); err != nil {
		t.Fatal(err)
	}
	got := r.GetBatch([]string{"a", "b", "missing"})
	if len(got) != 2 || got["a"].Score != 1 || got["b"].Score != 2 {
		t.Fatalf("GetBatch = %+v", got)
	}
	if got["a"].CreatedAt.IsZero() {
		t.Fatal("PutBatch must stamp CreatedAt")
	}
	lookups, hits, puts := r.Stats()
	if lookups != 3 || hits != 2 || puts != 2 {
		t.Fatalf("stats lookups=%d hits=%d puts=%d; batches must feed the per-key accounting", lookups, hits, puts)
	}

	// Claims: existing records are denied, fresh keys granted, and a
	// peer's unexpired claim blocks.
	r.Claim("held", "peer")
	granted := r.ClaimBatch([]string{"a", "new1", "new2", "held"}, "alice")
	want := map[string]bool{"a": false, "new1": true, "new2": true, "held": false}
	for k, w := range want {
		if granted[k] != w {
			t.Fatalf("ClaimBatch[%q] = %v, want %v (all: %+v)", k, granted[k], w, granted)
		}
	}
	// PutBatch clears the claims it fulfills.
	if err := r.PutBatch([]Record{{Key: "new1", Score: 3}}); err != nil {
		t.Fatal(err)
	}
	if r.Claim("new1", "bob") {
		t.Fatal("published key must not be claimable")
	}
	if !r.Claim("new2", "alice") {
		t.Fatal("alice still owns new2")
	}

	// A bad record rejects the whole batch atomically.
	if err := r.PutBatch([]Record{{Key: "ok", Score: 9}, {Key: ""}}); err == nil {
		t.Fatal("want empty-key error")
	}
	if _, err := r.Get("ok"); !errors.Is(err, ErrNotFound) {
		t.Fatal("rejected batch must store nothing")
	}
}

func TestClientBatchAdapter(t *testing.T) {
	var _ core.BatchResultStore = (*Client)(nil)
	repo := NewRepo(nil, time.Minute)
	alice := &Client{Repo: repo, ClientID: "alice", Metric: "rmse"}
	bob := &Client{Repo: repo, ClientID: "bob", Metric: "rmse"}
	ctx := context.Background()

	keys := []string{"fp|s1|e", "fp|s2|e"}
	scores, err := alice.LookupBatch(ctx, keys)
	if err != nil || len(scores) != 0 {
		t.Fatalf("empty repo LookupBatch = %v, %v", scores, err)
	}
	granted, err := alice.ClaimBatch(ctx, keys)
	if err != nil || !granted[keys[0]] || !granted[keys[1]] {
		t.Fatalf("ClaimBatch = %v, %v", granted, err)
	}
	// Alice abandons one unit; bob can take it over immediately.
	if err := alice.Release(ctx, keys[1]); err != nil {
		t.Fatal(err)
	}
	bobGrants, err := bob.ClaimBatch(ctx, keys)
	if err != nil || bobGrants[keys[0]] || !bobGrants[keys[1]] {
		t.Fatalf("bob ClaimBatch = %v, %v", bobGrants, err)
	}
	if err := alice.Publish(ctx, keys[0], 1.25, "done"); err != nil {
		t.Fatal(err)
	}
	scores, err = bob.LookupBatch(ctx, keys)
	if err != nil || len(scores) != 1 || scores[keys[0]] != 1.25 {
		t.Fatalf("LookupBatch after publish = %v, %v", scores, err)
	}
}

func TestConcurrentClaims(t *testing.T) {
	r := NewRepo(nil, time.Minute)
	const workers = 16
	winners := make(chan string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r.Claim("contested", string(rune('a'+w))) {
				winners <- string(rune('a' + w))
			}
		}()
	}
	wg.Wait()
	close(winners)
	n := 0
	for range winners {
		n++
	}
	if n != 1 {
		t.Fatalf("%d clients won a single claim", n)
	}
}

func TestStats(t *testing.T) {
	r := NewRepo(nil, time.Minute)
	_ = r.Put(Record{Key: "k"})
	_, _ = r.Get("k")
	_, _ = r.Get("missing")
	lookups, hits, puts := r.Stats()
	if lookups != 2 || hits != 1 || puts != 1 {
		t.Fatalf("stats %d %d %d", lookups, hits, puts)
	}
	if r.Len() != 1 {
		t.Fatalf("len %d", r.Len())
	}
}
