package darr

import (
	"encoding/json"
	"fmt"
	"net/url"
	"strings"
	"time"

	"coda/internal/persist"
)

// Durable layout on the shared persistence layer: records under
// r/<url.PathEscape(key)> and claims under c/<url.PathEscape(key)>, both
// JSON. Claims store their absolute expiry, so replay re-derives the
// remaining TTL instead of granting a crashed process a fresh window.
const (
	recPrefix   = "r/"
	claimPrefix = "c/"
)

func recKey(key string) string   { return recPrefix + url.PathEscape(key) }
func claimKey(key string) string { return claimPrefix + url.PathEscape(key) }

// claimRec is the persisted form of a claim.
type claimRec struct {
	ClientID string    `json:"client_id"`
	Expires  time.Time `json:"expires"`
}

// NewDurableRepo builds a repository whose records and claims are written
// through to the persistence backend a DSN names (see persist.Open) and
// replayed at open — cooperative results survive restarts. "mem:" works
// but adds nothing over NewRepo. nowFn and claimTTL behave as in NewRepo.
func NewDurableRepo(dsn string, nowFn func() time.Time, claimTTL time.Duration) (*Repo, error) {
	kv, err := persist.Open(dsn)
	if err != nil {
		return nil, err
	}
	r := NewRepo(nowFn, claimTTL)
	r.kv = kv
	if err := r.load(); err != nil {
		_ = kv.Close()
		return nil, err
	}
	return r, nil
}

// load rebuilds records and claims from the backend. Replayed claims pass
// the same liveness rules a fresh Claim would: a claim whose record was
// published is gone (the publish released it, even if the claim-delete
// itself did not land before a crash), and a claim past its absolute
// expiry is gone (the TTL does not restart). Both kinds are also deleted
// from the backend so they never replay again.
func (r *Repo) load() error {
	cur, err := r.kv.Cursor(recPrefix)
	if err != nil {
		return err
	}
	for cur.Next() {
		var rec Record
		if err := json.Unmarshal(cur.Value(), &rec); err != nil {
			cur.Close()
			return fmt.Errorf("darr: corrupt record %q: %w", cur.Key(), err)
		}
		r.records[rec.Key] = rec
	}
	if err := cur.Err(); err != nil {
		cur.Close()
		return err
	}
	cur.Close()

	ccur, err := r.kv.Cursor(claimPrefix)
	if err != nil {
		return err
	}
	now := r.now()
	var stale []string
	for ccur.Next() {
		key, err := url.PathUnescape(strings.TrimPrefix(ccur.Key(), claimPrefix))
		if err != nil {
			ccur.Close()
			return fmt.Errorf("darr: corrupt claim key %q: %w", ccur.Key(), err)
		}
		var cr claimRec
		if err := json.Unmarshal(ccur.Value(), &cr); err != nil {
			ccur.Close()
			return fmt.Errorf("darr: corrupt claim %q: %w", ccur.Key(), err)
		}
		if _, done := r.records[key]; done || !now.Before(cr.Expires) {
			stale = append(stale, ccur.Key())
			continue
		}
		r.claims[key] = claim{clientID: cr.ClientID, expires: cr.Expires}
	}
	if err := ccur.Err(); err != nil {
		ccur.Close()
		return err
	}
	ccur.Close()
	if len(stale) > 0 {
		if err := r.kv.Delete(stale...); err != nil {
			return err
		}
	}
	return nil
}

// persistRecordsLocked writes records (and the release of their claims)
// through to the backend before they become visible. Record writes land
// first: a crash between the two batches leaves claim keys whose records
// exist, which load drops. Caller holds r.mu.
func (r *Repo) persistRecordsLocked(recs []Record) error {
	if r.kv == nil {
		return nil
	}
	items := make([]persist.Item, len(recs))
	claimKeys := make([]string, len(recs))
	for i, rec := range recs {
		v, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("darr: encoding record %q: %w", rec.Key, err)
		}
		items[i] = persist.Item{Key: recKey(rec.Key), Value: v}
		claimKeys[i] = claimKey(rec.Key)
	}
	if err := r.kv.PutBatch(items); err != nil {
		return fmt.Errorf("darr: persisting records: %w", err)
	}
	return r.kv.Delete(claimKeys...)
}

// persistClaimsLocked writes the current claim state of keys through to
// the backend; a refusal means the grant must not stand (the caller rolls
// the map back), because a claim that would vanish at restart is worse
// than a denial. Caller holds r.mu.
func (r *Repo) persistClaimsLocked(keys ...string) error {
	if r.kv == nil {
		return nil
	}
	items := make([]persist.Item, 0, len(keys))
	for _, k := range keys {
		c, ok := r.claims[k]
		if !ok {
			continue
		}
		v, err := json.Marshal(claimRec{ClientID: c.clientID, Expires: c.expires})
		if err != nil {
			return err
		}
		items = append(items, persist.Item{Key: claimKey(k), Value: v})
	}
	return r.kv.PutBatch(items)
}

// Backend names the persistence backend underneath the repo ("mem" when
// memory-only).
func (r *Repo) Backend() string {
	if r.kv == nil {
		return "mem"
	}
	return r.kv.Name()
}

// PersistStats reports the backend accounting; ok is false when the repo
// is memory-only.
func (r *Repo) PersistStats() (persist.Stats, bool) {
	if r.kv == nil {
		return persist.Stats{}, false
	}
	return r.kv.Stats(), true
}

// Compact runs the backend's compaction cycle; a no-op when memory-only.
func (r *Repo) Compact() error {
	if r.kv == nil {
		return nil
	}
	return r.kv.Compact()
}

// Close releases the persistence backend; a no-op when memory-only.
func (r *Repo) Close() error {
	if r.kv == nil {
		return nil
	}
	return r.kv.Close()
}
