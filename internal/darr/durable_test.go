package darr

import (
	"fmt"
	"testing"
	"time"
)

func rec(key, client string, score float64) Record {
	return Record{
		Key:          key,
		DatasetFP:    "fp-" + key,
		PipelineSpec: "pipe",
		EvalSpec:     "cv5",
		Metric:       "f1",
		Score:        score,
		ClientID:     client,
	}
}

// TestDurableRestartSurvival: records and unexpired claims come back after
// a close/reopen, and replayed claims keep their ORIGINAL absolute expiry —
// a restart must not extend a claim's lease.
func TestDurableRestartSurvival(t *testing.T) {
	for _, scheme := range []string{"log", "bolt"} {
		t.Run(scheme, func(t *testing.T) {
			dir := t.TempDir()
			dsn := scheme + ":" + dir
			clk := newClock()
			ttl := time.Minute

			r, err := NewDurableRepo(dsn, clk.Now, ttl)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Put(rec("k1", "c1", 0.91)); err != nil {
				t.Fatal(err)
			}
			if err := r.Put(rec("k2", "c1", 0.84)); err != nil {
				t.Fatal(err)
			}
			if !r.Claim("pending", "c1") {
				t.Fatal("fresh claim denied")
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}

			// "Restart" 30s later: inside the original TTL window.
			clk.Advance(30 * time.Second)
			r2, err := NewDurableRepo(dsn, clk.Now, ttl)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r2.Get("k1")
			if err != nil || got.Score != 0.91 || got.ClientID != "c1" {
				t.Fatalf("k1 after restart: %+v, %v", got, err)
			}
			if r2.Len() != 2 {
				t.Fatalf("records after restart = %d, want 2", r2.Len())
			}
			if r2.ActiveClaims() != 1 {
				t.Fatalf("active claims after restart = %d, want 1", r2.ActiveClaims())
			}
			// The replayed claim still blocks other clients...
			if r2.Claim("pending", "c2") {
				t.Fatal("replayed claim did not block a second client")
			}
			// ...but expires at the ORIGINAL absolute time, not restart+TTL.
			clk.Advance(31 * time.Second) // 61s after grant
			if !r2.Claim("pending", "c2") {
				t.Fatal("claim survived past its original expiry after restart")
			}
			if err := r2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestClaimReleasedOnPublish is the regression for the claim-lingering
// bug: once the holder publishes, the claim must be gone immediately — in
// memory AND across a restart — so a second client gets the cached result
// (a hit) instead of waiting out the TTL.
func TestClaimReleasedOnPublish(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	ttl := time.Hour // long TTL: if the claim lingers, the test sees it

	r, err := NewDurableRepo("log:"+dir, clk.Now, ttl)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Claim("job", "c1") {
		t.Fatal("c1 claim denied")
	}
	if err := r.Put(rec("job", "c1", 0.77)); err != nil {
		t.Fatal(err)
	}
	// Immediately after publish: no claim left.
	if r.ActiveClaims() != 0 {
		t.Fatalf("claim lingered after publish: %d active", r.ActiveClaims())
	}
	// The second client hits the cached record right away.
	got, err := r.Get("job")
	if err != nil || got.Score != 0.77 {
		t.Fatalf("c2 lookup after publish: %+v, %v", got, err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Across a restart the release is just as durable: no resurrected claim.
	r2, err := NewDurableRepo("log:"+dir, clk.Now, ttl)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.ActiveClaims() != 0 {
		t.Fatalf("claim resurrected by restart: %d active", r2.ActiveClaims())
	}
	if got, err := r2.Get("job"); err != nil || got.Score != 0.77 {
		t.Fatalf("record lost across restart: %+v, %v", got, err)
	}
}

// TestExpiredClaimsDroppedAtLoad: claims past their TTL at restart are
// purged from the backend, not replayed.
func TestExpiredClaimsDroppedAtLoad(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	r, err := NewDurableRepo("log:"+dir, clk.Now, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Claim("stale", "c1") {
		t.Fatal("claim denied")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	clk.Advance(2 * time.Minute)
	r2, err := NewDurableRepo("log:"+dir, clk.Now, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.ActiveClaims() != 0 {
		t.Fatalf("expired claim replayed: %d active", r2.ActiveClaims())
	}
	if !r2.Claim("stale", "c2") {
		t.Fatal("key not claimable after expired claim dropped")
	}
}

// TestDurableBatches: PutBatch and ClaimBatch write through as single
// backend batches and survive a restart.
func TestDurableBatches(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	r, err := NewDurableRepo("log:"+dir, clk.Now, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, 10)
	for i := range recs {
		recs[i] = rec(fmt.Sprintf("b/%02d", i), "c1", float64(i)/10)
	}
	if err := r.PutBatch(recs); err != nil {
		t.Fatal(err)
	}
	claims := r.ClaimBatch([]string{"pend/1", "pend/2", "b/03"}, "c1")
	if !claims["pend/1"] || !claims["pend/2"] {
		t.Fatalf("fresh batch claims denied: %v", claims)
	}
	if claims["b/03"] {
		t.Fatal("claim granted for an existing record")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := NewDurableRepo("log:"+dir, clk.Now, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 10 {
		t.Fatalf("records after restart = %d, want 10", r2.Len())
	}
	if r2.ActiveClaims() != 2 {
		t.Fatalf("claims after restart = %d, want 2", r2.ActiveClaims())
	}
	got := r2.GetBatch([]string{"b/00", "b/07"})
	if len(got) != 2 || got["b/07"].Score != 0.7 {
		t.Fatalf("GetBatch after restart: %v", got)
	}
}

// TestDurableReleaseAndCompact: Release drops the durable claim, and
// Compact leaves the repo state intact across a reopen.
func TestDurableReleaseAndCompact(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	r, err := NewDurableRepo("log:"+dir, clk.Now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Claim("x", "c1") {
		t.Fatal("claim denied")
	}
	r.Release("x", "c1")
	for i := 0; i < 30; i++ {
		if err := r.Put(rec("hot", "c1", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	if st, ok := r.PersistStats(); !ok || st.Compactions != 1 {
		t.Fatalf("persist stats after compact: %+v ok=%v", st, ok)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := NewDurableRepo("log:"+dir, clk.Now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.ActiveClaims() != 0 {
		t.Fatal("released claim came back after compact+restart")
	}
	if got, err := r2.Get("hot"); err != nil || got.Score != 29 {
		t.Fatalf("hot = %+v, %v after compact+restart", got, err)
	}
	if r2.Backend() != "log" {
		t.Fatalf("backend = %q", r2.Backend())
	}
}

// TestMemoryRepoUnchanged: a plain NewRepo has no backend and behaves
// exactly as before the durability work.
func TestMemoryRepoUnchanged(t *testing.T) {
	r := NewRepo(nil, time.Minute)
	if r.Backend() != "mem" {
		t.Fatalf("memory repo backend = %q", r.Backend())
	}
	if _, ok := r.PersistStats(); ok {
		t.Fatal("memory repo reports persist stats")
	}
	if err := r.Put(rec("k", "c", 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkDarrPutMem / BenchmarkDarrPutDurable measure the durability
// write-through overhead per published record — the number reported in
// BENCH_persist.json as durable-vs-mem Put cost.
func BenchmarkDarrPutMem(b *testing.B) {
	r := NewRepo(nil, time.Minute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Put(rec(fmt.Sprintf("k/%05d", i%1000), "bench", 0.5)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDarrPutDurable(b *testing.B) {
	dir := b.TempDir()
	r, err := NewDurableRepo("log:"+dir, nil, time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Put(rec(fmt.Sprintf("k/%05d", i%1000), "bench", 0.5)); err != nil {
			b.Fatal(err)
		}
	}
}
