package matrix

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Kernel parallelism budget.
//
// All parallel kernels in this package draw extra workers from one global
// semaphore instead of spawning GOMAXPROCS goroutines each. The calling
// goroutine always participates, so a kernel needs 0 tokens to run serially
// and n-1 tokens to run n-wide; tokens are acquired non-blocking and a kernel
// simply degrades toward serial when none are available. This is what keeps
// an 8-way core.Search from oversubscribing the machine with 8 concurrent
// 8-way matmuls: the search workers collectively share maxWorkers-1 extra
// kernel goroutines, and under full search parallelism each matmul tends to
// run serially — which is exactly the right schedule, because the search
// already saturates the cores with independent work.

// workerSem holds the current semaphore. Capacity = maxWorkers-1 extra
// goroutines beyond the callers themselves.
var workerSem atomic.Pointer[chan struct{}]

// maxWorkersVal mirrors the configured budget for Parallelism().
var maxWorkersVal atomic.Int64

func init() {
	SetMaxWorkers(runtime.GOMAXPROCS(0))
}

// SetMaxWorkers sets the total kernel parallelism budget: at most n
// goroutines (including callers) compute inside this package's parallel
// kernels at any moment, across all concurrent callers. n < 1 is clamped to
// 1 (fully serial kernels). The default is GOMAXPROCS at init.
//
// Results never depend on this setting: every parallel kernel partitions
// work so each output element is produced by exactly one goroutine with the
// same operation order as the serial code.
func SetMaxWorkers(n int) {
	if n < 1 {
		n = 1
	}
	sem := make(chan struct{}, n-1)
	workerSem.Store(&sem)
	maxWorkersVal.Store(int64(n))
}

// Parallelism returns the configured kernel worker budget (see SetMaxWorkers).
func Parallelism() int { return int(maxWorkersVal.Load()) }

// grabWorkers tries to reserve up to want-1 extra worker tokens without
// blocking. It returns the number reserved and the semaphore to release
// them to.
func grabWorkers(want int) (int, chan struct{}) {
	if want <= 1 {
		return 0, nil
	}
	sem := *workerSem.Load()
	n := 0
	for n < want-1 {
		select {
		case sem <- struct{}{}:
			n++
		default:
			return n, sem
		}
	}
	return n, sem
}

// parallelRows splits [0, rows) into contiguous chunks and runs fn on each,
// using the calling goroutine plus however many extra workers the global
// budget grants (possibly zero). minRows bounds the smallest chunk so tiny
// matrices stay serial. fn must be safe to call concurrently on disjoint
// ranges.
func parallelRows(rows, minRows int, fn func(lo, hi int)) {
	if minRows < 1 {
		minRows = 1
	}
	want := rows / minRows
	if want <= 1 {
		fn(0, rows)
		return
	}
	extra, sem := grabWorkers(want)
	if extra == 0 {
		fn(0, rows)
		return
	}
	workers := extra + 1
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		lo := w * chunk
		if lo >= rows {
			<-sem // chunking rounded up; return the unused token
			continue
		}
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(lo, hi)
		}(lo, hi)
	}
	fn(0, chunk)
	wg.Wait()
}
