package matrix

import (
	"math/rand"
	"runtime"
	"testing"
)

// Kernel A/B benchmarks. BenchmarkKernelMulNaive256 is the pre-blocking
// reference kernel; the CI bench-kernels job asserts MulBlocked256 and
// MulParallel256 beat it on the same machine (README "Kernel performance"
// shows how to run the comparison locally).

func benchMat(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkKernelMulNaive256(b *testing.B) {
	a := benchMat(256, 256, 1)
	c := benchMat(256, 256, 2)
	var dst *Matrix
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = naiveMulInto(dst, a, c)
	}
}

func BenchmarkKernelMulBlocked256(b *testing.B) {
	defer SetMaxWorkers(runtime.GOMAXPROCS(0))
	SetMaxWorkers(1) // isolate cache blocking from parallelism
	a := benchMat(256, 256, 1)
	c := benchMat(256, 256, 2)
	var dst *Matrix
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = MulInto(dst, a, c)
	}
}

func BenchmarkKernelMulParallel256(b *testing.B) {
	a := benchMat(256, 256, 1)
	c := benchMat(256, 256, 2)
	var dst *Matrix
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = MulInto(dst, a, c)
	}
}

func BenchmarkKernelMulTransposeA256(b *testing.B) {
	a := benchMat(256, 256, 3)
	c := benchMat(256, 256, 4)
	var dst *Matrix
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = MulTransposeAInto(dst, a, c)
	}
}

func BenchmarkKernelMulVec1024(b *testing.B) {
	m := benchMat(1024, 512, 5)
	v := benchMat(1, 512, 6).Row(0)
	var dst []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = MulVecInto(dst, m, v)
	}
}

func BenchmarkKernelTranspose1024(b *testing.B) {
	m := benchMat(1024, 768, 7)
	var dst *Matrix
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = TInto(dst, m)
	}
}

func benchMat32(rows, cols int, seed int64) *Mat[float32] {
	rng := rand.New(rand.NewSource(seed))
	m := NewOf[float32](rows, cols)
	for i := range m.data {
		m.data[i] = float32(rng.NormFloat64())
	}
	return m
}

// Precision A/B at 256^3: identical seeds and blocking, only the element
// width (and the f32 kernel's unrolled accumulation) differs. The CI
// bench-kernels job asserts the f32 kernel beats the f64 one on the same
// machine; README "Kernel performance" documents the expected ratio.

func BenchmarkPrecisionMulF64_256(b *testing.B) {
	a := benchMat(256, 256, 1)
	c := benchMat(256, 256, 2)
	var dst *Matrix
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = MulInto(dst, a, c)
	}
}

func BenchmarkPrecisionMulF32_256(b *testing.B) {
	a := benchMat32(256, 256, 1)
	c := benchMat32(256, 256, 2)
	var dst *Mat[float32]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = MulInto(dst, a, c)
	}
}

func BenchmarkPrecisionMulTransposeB_F64_256(b *testing.B) {
	a := benchMat(256, 256, 3)
	c := benchMat(256, 256, 4)
	var dst *Matrix
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = MulTransposeBInto(dst, a, c)
	}
}

func BenchmarkPrecisionMulTransposeB_F32_256(b *testing.B) {
	a := benchMat32(256, 256, 3)
	c := benchMat32(256, 256, 4)
	var dst *Mat[float32]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = MulTransposeBInto(dst, a, c)
	}
}

func BenchmarkKernelCovariance(b *testing.B) {
	m := benchMat(2048, 64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Covariance()
	}
}

func BenchmarkKernelColStds(b *testing.B) {
	m := benchMat(4096, 64, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.ColStds()
	}
}
