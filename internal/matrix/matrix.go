// Package matrix provides the dense linear-algebra substrate used by every
// analytics component in coda: row-major matrices generic over float32 and
// float64, with arithmetic, QR-based least squares, and a Jacobi
// eigendecomposition for PCA.
//
// The package is deliberately small and allocation-conscious rather than a
// general BLAS replacement; components in internal/preprocess,
// internal/mlmodels and internal/nn only need the operations defined here.
//
// Matrix (= Mat[float64]) is the default element type across the repo; the
// float32 instantiation backs the reduced-precision NN training path (see
// internal/nn). The float64 kernels keep their historical bitwise contract
// (identical to the naive serial loops at any worker count); the float32
// kernels are deterministic — fixed summation order, independent of the
// worker budget — but use a reassociated, unrolled accumulation order chosen
// for speed (see kernels.go).
package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned (wrapped) whenever operand dimensions are incompatible.
var ErrShape = errors.New("matrix: incompatible shapes")

// Float constrains matrix element types to the two IEEE-754 widths the
// compute kernels support.
type Float interface {
	float32 | float64
}

// Mat is a dense, row-major matrix of T values.
//
// The zero value is an empty 0x0 matrix. Use New/NewOf or NewFromRows to
// build non-empty matrices.
type Mat[T Float] struct {
	rows, cols int
	data       []T // len == rows*cols, row-major
}

// Matrix is the float64 matrix every f64 code path uses; it predates the
// generic Mat and remains the package's primary type.
type Matrix = Mat[float64]

// New returns a zeroed rows x cols float64 matrix.
// It panics if rows or cols is negative; a zero dimension is allowed.
func New(rows, cols int) *Matrix {
	return NewOf[float64](rows, cols)
}

// NewOf returns a zeroed rows x cols matrix of T.
// It panics if rows or cols is negative; a zero dimension is allowed.
func NewOf[T Float](rows, cols int) *Mat[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	return &Mat[T]{rows: rows, cols: cols, data: make([]T, rows*cols)}
}

// NewFromRows builds a matrix from a slice of equal-length rows, copying the
// data. It returns an error if rows are ragged.
func NewFromRows[T Float](rows [][]T) (*Mat[T], error) {
	if len(rows) == 0 {
		return NewOf[T](0, 0), nil
	}
	cols := len(rows[0])
	m := NewOf[T](len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrShape, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// FromSlice wraps an existing row-major backing slice without copying.
// len(data) must equal rows*cols.
func FromSlice[T Float](rows, cols int, data []T) (*Mat[T], error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("%w: data length %d != %d*%d", ErrShape, len(data), rows, cols)
	}
	return &Mat[T]{rows: rows, cols: cols, data: data}, nil
}

// ConvertInto copies src into dst element-by-element, converting precision
// and reusing dst's backing array when it has capacity. Used at the f64↔f32
// boundary of the reduced-precision NN path.
func ConvertInto[D, S Float](dst *Mat[D], src *Mat[S]) *Mat[D] {
	dst = RecycleNoClear(dst, src.rows, src.cols)
	for i, v := range src.data {
		dst.data[i] = D(v)
	}
	return dst
}

// ConvertVec copies src into a []D, converting precision and reusing dst
// when it has capacity.
func ConvertVec[D, S Float](dst []D, src []S) []D {
	dst = RecycleVec(dst, len(src))
	for i, v := range src {
		dst[i] = D(v)
	}
	return dst
}

// Rows returns the number of rows.
func (m *Mat[T]) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Mat[T]) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Mat[T]) At(i, j int) T { return m.data[i*m.cols+j] }

// Set assigns v to the element at row i, column j.
func (m *Mat[T]) Set(i, j int, v T) { m.data[i*m.cols+j] = v }

// Row returns a view (not a copy) of row i as a slice.
func (m *Mat[T]) Row(i int) []T { return m.data[i*m.cols : (i+1)*m.cols] }

// RowCopy returns a copy of row i.
func (m *Mat[T]) RowCopy(i int) []T {
	out := make([]T, m.cols)
	copy(out, m.Row(i))
	return out
}

// ColCopy returns a copy of column j.
func (m *Mat[T]) ColCopy(j int) []T {
	out := make([]T, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Data returns the underlying row-major backing slice (not a copy).
func (m *Mat[T]) Data() []T { return m.data }

// Clone returns a deep copy of m.
func (m *Mat[T]) Clone() *Mat[T] {
	c := NewOf[T](m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// SelectRows returns a new matrix containing rows idx (in order), copying data.
func (m *Mat[T]) SelectRows(idx []int) *Mat[T] {
	out := NewOf[T](len(idx), m.cols)
	for k, i := range idx {
		copy(out.Row(k), m.Row(i))
	}
	return out
}

// SelectCols returns a new matrix containing columns idx (in order).
func (m *Mat[T]) SelectCols(idx []int) *Mat[T] {
	out := NewOf[T](m.rows, len(idx))
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for k, j := range idx {
			dst[k] = src[j]
		}
	}
	return out
}

// SliceRows returns a copy of rows [a, b).
func (m *Mat[T]) SliceRows(a, b int) *Mat[T] {
	out := NewOf[T](b-a, m.cols)
	copy(out.data, m.data[a*m.cols:b*m.cols])
	return out
}

// T returns the transpose of m as a new matrix (tiled; see TInto).
func (m *Mat[T]) T() *Mat[T] {
	return TInto(nil, m)
}

// Add returns m + b.
func (m *Mat[T]) Add(b *Mat[T]) (*Mat[T], error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: add %dx%d and %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out, nil
}

// Sub returns m - b.
func (m *Mat[T]) Sub(b *Mat[T]) (*Mat[T], error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: sub %dx%d and %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out, nil
}

// Scale returns s*m as a new matrix.
func (m *Mat[T]) Scale(s T) *Mat[T] {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Mul returns the matrix product m*b. The kernel is cache-blocked and
// parallel above a size cutoff (see kernels.go); the float64 kernel is
// bitwise identical to the naive triple loop at any worker count.
func (m *Mat[T]) Mul(b *Mat[T]) (*Mat[T], error) {
	return MulInto(nil, m, b)
}

// MulVec returns the matrix-vector product m*v. Each element is an
// ascending-index dot product; rows are computed in parallel above a
// size cutoff with bitwise-identical results.
func (m *Mat[T]) MulVec(v []T) ([]T, error) {
	return MulVecInto(nil, m, v)
}

// ColMeans returns the per-column mean.
func (m *Mat[T]) ColMeans() []T {
	means := make([]T, m.cols)
	if m.rows == 0 {
		return means
	}
	for i := 0; i < m.rows; i++ {
		for j, v := range m.Row(i) {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= T(m.rows)
	}
	return means
}

// ColStds returns the per-column (population) standard deviation in a
// single pass over the data. Sums are shifted by row 0 — a value of the
// column's own magnitude — so the one-pass variance Σd²/n - (Σd/n)²
// stays numerically benign even for large-offset data (unlike the
// textbook ΣX²-based one-pass form); see TestColStatsStability.
func (m *Mat[T]) ColStds() []T {
	_, stds := m.ColMeansStds()
	return stds
}

// ColMins returns the per-column minimum. For an empty matrix all zeros.
func (m *Mat[T]) ColMins() []T {
	mins := make([]T, m.cols)
	if m.rows == 0 {
		return mins
	}
	copy(mins, m.Row(0))
	for i := 1; i < m.rows; i++ {
		for j, v := range m.Row(i) {
			if v < mins[j] {
				mins[j] = v
			}
		}
	}
	return mins
}

// ColMaxs returns the per-column maximum. For an empty matrix all zeros.
func (m *Mat[T]) ColMaxs() []T {
	maxs := make([]T, m.cols)
	if m.rows == 0 {
		return maxs
	}
	copy(maxs, m.Row(0))
	for i := 1; i < m.rows; i++ {
		for j, v := range m.Row(i) {
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	return maxs
}

// Covariance returns the cols x cols sample covariance matrix of m's
// columns in a single pass over the data (the old kernel needed a ColMeans
// pass first). Products are accumulated about a row-0 shift s:
//
//	cov[a][b] = (Σ(xa-sa)(xb-sb) - Da*Db/n) / (n-1),  Da = Σ(xa-sa)
//
// Shifting by an actual data row keeps the correction term commensurate
// with the product sum, so cancellation stays benign for large-offset data
// (see TestCovarianceStability). The kernel is serial: it feeds the Jacobi
// eigensolver, which dominates PCA cost, and serial accumulation keeps the
// result independent of the worker budget.
func (m *Mat[T]) Covariance() *Mat[T] {
	cov := NewOf[T](m.cols, m.cols)
	if m.rows < 2 {
		return cov
	}
	c := m.cols
	shift := m.RowCopy(0)
	d := make([]T, c)    // per-column Σ (x - shift)
	drow := make([]T, c) // current row minus shift
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dv := v - shift[j]
			drow[j] = dv
			d[j] += dv
		}
		for a := 0; a < c; a++ {
			da := drow[a]
			if da == 0 {
				continue
			}
			crow := cov.Row(a)
			for b := a; b < c; b++ {
				crow[b] += da * drow[b]
			}
		}
	}
	n := T(m.rows)
	n1 := T(m.rows - 1)
	for a := 0; a < c; a++ {
		for b := a; b < c; b++ {
			v := (cov.At(a, b) - d[a]*d[b]/n) / n1
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov
}

// Equal reports whether m and b have identical shape and all entries within
// tol of each other.
func (m *Mat[T]) Equal(b *Mat[T], tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(float64(v)-float64(b.data[i])) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging.
func (m *Mat[T]) String() string {
	s := fmt.Sprintf("Matrix(%dx%d)", m.rows, m.cols)
	if m.rows*m.cols <= 64 {
		s += "["
		for i := 0; i < m.rows; i++ {
			s += fmt.Sprintf("%v", m.Row(i))
			if i != m.rows-1 {
				s += "; "
			}
		}
		s += "]"
	}
	return s
}
