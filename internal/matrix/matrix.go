// Package matrix provides the dense linear-algebra substrate used by every
// analytics component in coda: row-major float64 matrices with arithmetic,
// QR-based least squares, and a Jacobi eigendecomposition for PCA.
//
// The package is deliberately small and allocation-conscious rather than a
// general BLAS replacement; components in internal/preprocess,
// internal/mlmodels and internal/nn only need the operations defined here.
package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned (wrapped) whenever operand dimensions are incompatible.
var ErrShape = errors.New("matrix: incompatible shapes")

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty 0x0 matrix. Use New or NewFromRows to build
// non-empty matrices.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// New returns a zeroed rows x cols matrix.
// It panics if rows or cols is negative; a zero dimension is allowed.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewFromRows builds a matrix from a slice of equal-length rows, copying the
// data. It returns an error if rows are ragged.
func NewFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrShape, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// FromSlice wraps an existing row-major backing slice without copying.
// len(data) must equal rows*cols.
func FromSlice(rows, cols int, data []float64) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("%w: data length %d != %d*%d", ErrShape, len(data), rows, cols)
	}
	return &Matrix{rows: rows, cols: cols, data: data}, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns v to the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a view (not a copy) of row i as a slice.
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// RowCopy returns a copy of row i.
func (m *Matrix) RowCopy(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.Row(i))
	return out
}

// ColCopy returns a copy of column j.
func (m *Matrix) ColCopy(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Data returns the underlying row-major backing slice (not a copy).
func (m *Matrix) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// SelectRows returns a new matrix containing rows idx (in order), copying data.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	out := New(len(idx), m.cols)
	for k, i := range idx {
		copy(out.Row(k), m.Row(i))
	}
	return out
}

// SelectCols returns a new matrix containing columns idx (in order).
func (m *Matrix) SelectCols(idx []int) *Matrix {
	out := New(m.rows, len(idx))
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for k, j := range idx {
			dst[k] = src[j]
		}
	}
	return out
}

// SliceRows returns a copy of rows [a, b).
func (m *Matrix) SliceRows(a, b int) *Matrix {
	out := New(b-a, m.cols)
	copy(out.data, m.data[a*m.cols:b*m.cols])
	return out
}

// T returns the transpose of m as a new matrix (tiled; see TInto).
func (m *Matrix) T() *Matrix {
	return TInto(nil, m)
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: add %dx%d and %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out, nil
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: sub %dx%d and %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out, nil
}

// Scale returns s*m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Mul returns the matrix product m*b. The kernel is cache-blocked and
// parallel above a size cutoff (see kernels.go) but bitwise identical to
// the naive triple loop at any worker count.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	return MulInto(nil, m, b)
}

// MulVec returns the matrix-vector product m*v. Each element is an
// ascending-index dot product; rows are computed in parallel above a
// size cutoff with bitwise-identical results.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	return MulVecInto(nil, m, v)
}

// ColMeans returns the per-column mean.
func (m *Matrix) ColMeans() []float64 {
	means := make([]float64, m.cols)
	if m.rows == 0 {
		return means
	}
	for i := 0; i < m.rows; i++ {
		for j, v := range m.Row(i) {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(m.rows)
	}
	return means
}

// ColStds returns the per-column (population) standard deviation in a
// single pass over the data. Sums are shifted by row 0 — a value of the
// column's own magnitude — so the one-pass variance Σd²/n - (Σd/n)²
// stays numerically benign even for large-offset data (unlike the
// textbook ΣX²-based one-pass form); see TestColStatsStability.
func (m *Matrix) ColStds() []float64 {
	_, stds := m.ColMeansStds()
	return stds
}

// ColMins returns the per-column minimum. For an empty matrix all zeros.
func (m *Matrix) ColMins() []float64 {
	mins := make([]float64, m.cols)
	if m.rows == 0 {
		return mins
	}
	copy(mins, m.Row(0))
	for i := 1; i < m.rows; i++ {
		for j, v := range m.Row(i) {
			if v < mins[j] {
				mins[j] = v
			}
		}
	}
	return mins
}

// ColMaxs returns the per-column maximum. For an empty matrix all zeros.
func (m *Matrix) ColMaxs() []float64 {
	maxs := make([]float64, m.cols)
	if m.rows == 0 {
		return maxs
	}
	copy(maxs, m.Row(0))
	for i := 1; i < m.rows; i++ {
		for j, v := range m.Row(i) {
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	return maxs
}

// Covariance returns the cols x cols sample covariance matrix of m's
// columns in a single pass over the data (the old kernel needed a ColMeans
// pass first). Products are accumulated about a row-0 shift s:
//
//	cov[a][b] = (Σ(xa-sa)(xb-sb) - Da*Db/n) / (n-1),  Da = Σ(xa-sa)
//
// Shifting by an actual data row keeps the correction term commensurate
// with the product sum, so cancellation stays benign for large-offset data
// (see TestCovarianceStability). The kernel is serial: it feeds the Jacobi
// eigensolver, which dominates PCA cost, and serial accumulation keeps the
// result independent of the worker budget.
func (m *Matrix) Covariance() *Matrix {
	cov := New(m.cols, m.cols)
	if m.rows < 2 {
		return cov
	}
	c := m.cols
	shift := m.RowCopy(0)
	d := make([]float64, c)    // per-column Σ (x - shift)
	drow := make([]float64, c) // current row minus shift
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dv := v - shift[j]
			drow[j] = dv
			d[j] += dv
		}
		for a := 0; a < c; a++ {
			da := drow[a]
			if da == 0 {
				continue
			}
			crow := cov.Row(a)
			for b := a; b < c; b++ {
				crow[b] += da * drow[b]
			}
		}
	}
	n := float64(m.rows)
	n1 := float64(m.rows - 1)
	for a := 0; a < c; a++ {
		for b := a; b < c; b++ {
			v := (cov.At(a, b) - d[a]*d[b]/n) / n1
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov
}

// Equal reports whether m and b have identical shape and all entries within
// tol of each other.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix(%dx%d)", m.rows, m.cols)
	if m.rows*m.cols <= 64 {
		s += "["
		for i := 0; i < m.rows; i++ {
			s += fmt.Sprintf("%v", m.Row(i))
			if i != m.rows-1 {
				s += "; "
			}
		}
		s += "]"
	}
	return s
}
