package matrix

import (
	"fmt"
	"math"
)

// Cache-blocked, goroutine-tiled compute kernels.
//
// Every float64 kernel here is bit-compatible with the straightforward
// serial loop it replaces: tiling only reorders WHICH (i,j) cell is worked
// on when, never the order of the floating-point additions that accumulate
// into a given cell (k ascending, exactly like the naive triple loop). Row
// parallelism assigns each output row to exactly one goroutine, so results
// are bitwise identical at any worker count — a property the determinism
// tests (kernels_test.go) and the search-level equivalence benchmark rely
// on.
//
// The float32 kernels have a weaker — but still deterministic — contract:
// each output cell is produced by exactly one goroutine with a fixed
// summation order, so results never depend on the worker budget, but the
// hot kernels (MulInto, MulTransposeBInto) unroll the k loop four-way and
// reassociate the four partial products. That reassociation is what buys
// f32 its speedup on scalar hardware (instruction-level parallelism plus
// halved memory traffic); it means the f32 product is not bit-equal to a
// naive f32 triple loop, only to itself.

const (
	// mulBlockK is the k-tile: how many rows of b are streamed per tile.
	// 128 rows x mulBlockJ cols x 8 bytes = 256 KiB, sized for L2.
	mulBlockK = 128
	// mulBlockJ is the j-tile: the c/b row segment written per inner loop.
	// 256 float64s = 2 KiB, so the c segment stays in L1 across the k-tile.
	mulBlockJ = 256
	// mulParMinFlops is the flop cutoff (2*m*n*k) below which Mul stays
	// serial; goroutine startup dominates under ~64^3.
	mulParMinFlops = 2 * 64 * 64 * 64
	// parMinRows is the smallest row chunk handed to a parallel worker.
	parMinRows = 16
)

// MulInto computes dst = a*b, reusing dst's backing array when it has
// capacity (dst may be nil or any shape) and returning the result matrix.
// The float64 product is bitwise identical to the naive triple-loop
// product; the float32 product uses the unrolled kernel (deterministic,
// see the package comment).
func MulInto[T Float](dst, a, b *Mat[T]) (*Mat[T], error) {
	if a.cols != b.rows {
		return nil, shapeErr("mul", a, b)
	}
	dst = RecycleNoClear(dst, a.rows, b.cols)
	flops := 2 * a.rows * a.cols * b.cols
	if flops < mulParMinFlops {
		mulBlockedRange(dst, a, b, 0, a.rows)
		return dst, nil
	}
	parallelRows(a.rows, parMinRows, func(lo, hi int) {
		mulBlockedRange(dst, a, b, lo, hi)
	})
	return dst, nil
}

// mulBlockedRange computes rows [lo, hi) of dst = a*b with k/j tiling,
// dispatching float32 operands to the unrolled kernel. In the float64
// kernel the per-cell additions run in ascending k order with the same
// skip-zero test as the naive kernel, so the result is bitwise identical.
func mulBlockedRange[T Float](dst, a, b *Mat[T], lo, hi int) {
	if d32, ok := any(dst).(*Mat[float32]); ok {
		mulBlockedRange32(d32, any(a).(*Mat[float32]), any(b).(*Mat[float32]), lo, hi)
		return
	}
	k, n := a.cols, b.cols
	for i := lo; i < hi; i++ {
		clear(dst.data[i*n : (i+1)*n])
	}
	if n == 0 {
		return
	}
	for k0 := 0; k0 < k; k0 += mulBlockK {
		k1 := min(k0+mulBlockK, k)
		for j0 := 0; j0 < n; j0 += mulBlockJ {
			j1 := min(j0+mulBlockJ, n)
			for i := lo; i < hi; i++ {
				arow := a.data[i*k : (i+1)*k]
				crow := dst.data[i*n+j0 : i*n+j1]
				for kk := k0; kk < k1; kk++ {
					av := arow[kk]
					if av == 0 {
						continue
					}
					brow := b.data[kk*n+j0 : kk*n+j1]
					for j, bv := range brow {
						crow[j] += av * bv
					}
				}
			}
		}
	}
}

// mulBlockedRange32 is the float32 matmul kernel: same k/j tiling as the
// float64 kernel but with the k loop unrolled four-way, accumulating
// (a0*b0 + a1*b1) + (a2*b2 + a3*b3) into each cell per step. The four
// independent products give the scalar pipeline real ILP — float32 gains
// nothing per-ALU-op over float64, so unrolling plus halved memory traffic
// is where the speedup comes from. Summation order is fixed and
// row-partitioned, so results are identical at any worker count.
func mulBlockedRange32(dst, a, b *Mat[float32], lo, hi int) {
	k, n := a.cols, b.cols
	for i := lo; i < hi; i++ {
		clear(dst.data[i*n : (i+1)*n])
	}
	if n == 0 {
		return
	}
	for k0 := 0; k0 < k; k0 += mulBlockK {
		k1 := min(k0+mulBlockK, k)
		for j0 := 0; j0 < n; j0 += mulBlockJ {
			j1 := min(j0+mulBlockJ, n)
			for i := lo; i < hi; i++ {
				arow := a.data[i*k : (i+1)*k]
				crow := dst.data[i*n+j0 : i*n+j1]
				kk := k0
				for ; kk+4 <= k1; kk += 4 {
					a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
					b0 := b.data[kk*n+j0 : kk*n+j1][:len(crow)]
					b1 := b.data[(kk+1)*n+j0 : (kk+1)*n+j1][:len(crow)]
					b2 := b.data[(kk+2)*n+j0 : (kk+2)*n+j1][:len(crow)]
					b3 := b.data[(kk+3)*n+j0 : (kk+3)*n+j1][:len(crow)]
					for j := range crow {
						crow[j] += (a0*b0[j] + a1*b1[j]) + (a2*b2[j] + a3*b3[j])
					}
				}
				for ; kk < k1; kk++ {
					av := arow[kk]
					if av == 0 {
						continue
					}
					brow := b.data[kk*n+j0 : kk*n+j1]
					for j, bv := range brow {
						crow[j] += av * bv
					}
				}
			}
		}
	}
}

// naiveMulInto is the pre-blocking reference kernel (single goroutine,
// no tiling). It is kept as the benchmark baseline the CI bench-kernels
// job compares the blocked kernel against, and as the bit-exactness oracle
// in tests (float64 only; the float32 kernel reassociates, see above).
func naiveMulInto[T Float](dst, a, b *Mat[T]) *Mat[T] {
	dst = Recycle(dst, a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return dst
}

// MulVecInto computes dst = m*v, reusing dst when cap(dst) >= m.rows.
// Each output element is an ascending-index dot product — identical
// order to the serial kernel — parallelised across rows.
func MulVecInto[T Float](dst []T, m *Mat[T], v []T) ([]T, error) {
	if m.cols != len(v) {
		return nil, shapeErrVec("mulvec", m, len(v))
	}
	if cap(dst) >= m.rows {
		dst = dst[:m.rows]
	} else {
		dst = make([]T, m.rows)
	}
	parallelRows(m.rows, 4*parMinRows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.data[i*m.cols : (i+1)*m.cols]
			var s T
			for j, a := range row {
				s += a * v[j]
			}
			dst[i] = s
		}
	})
	return dst, nil
}

// TInto writes m's transpose into dst (reused when capacity allows) using
// square tiles so both source and destination are walked cache-friendly.
func TInto[T Float](dst, m *Mat[T]) *Mat[T] {
	dst = RecycleNoClear(dst, m.cols, m.rows)
	const tile = 32 // 32x32 float64 tile = 8 KiB working set
	r, c := m.rows, m.cols
	for i0 := 0; i0 < r; i0 += tile {
		i1 := min(i0+tile, r)
		for j0 := 0; j0 < c; j0 += tile {
			j1 := min(j0+tile, c)
			for i := i0; i < i1; i++ {
				row := m.data[i*c : (i+1)*c]
				for j := j0; j < j1; j++ {
					dst.data[j*r+i] = row[j]
				}
			}
		}
	}
	return dst
}

// MulTransposeAInto computes dst = aᵀ*b without materialising aᵀ.
// a is n x p, b is n x q, dst is p x q. Per output cell the additions run
// in ascending-k order, bitwise identical to naive aᵀ then Mul.
func MulTransposeAInto[T Float](dst, a, b *Mat[T]) (*Mat[T], error) {
	if a.rows != b.rows {
		return nil, shapeErr("mulTa", a, b)
	}
	dst = Recycle(dst, a.cols, b.cols)
	return dst, mulTransposeAAccum(dst, a, b)
}

// MulTransposeAAccum computes dst += aᵀ*b (dst must already be p x q).
// Gradient accumulation uses this to fold the += into the matmul.
func MulTransposeAAccum[T Float](dst, a, b *Mat[T]) error {
	if a.rows != b.rows {
		return shapeErr("mulTa", a, b)
	}
	if dst.rows != a.cols || dst.cols != b.cols {
		return shapeErr("mulTa dst", dst, b)
	}
	return mulTransposeAAccum(dst, a, b)
}

func mulTransposeAAccum[T Float](dst, a, b *Mat[T]) error {
	n, p, q := a.rows, a.cols, b.cols
	if q == 0 || p == 0 {
		return nil
	}
	// Parallel over dst rows (= columns of a): worker for [lo,hi) reads
	// a[k][lo:hi] and all of b; k ascends so per-cell order matches the
	// serial kernel exactly.
	parallelRows(p, parMinRows/2, func(lo, hi int) {
		for k := 0; k < n; k++ {
			arow := a.data[k*p : (k+1)*p]
			brow := b.data[k*q : (k+1)*q]
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				crow := dst.data[i*q : (i+1)*q]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
	return nil
}

// MulTransposeBInto computes dst = a*bᵀ without materialising bᵀ.
// a is m x k, b is n x k, dst is m x n: dst[i][j] = dot(a.Row(i), b.Row(j)).
// The float64 dots run in ascending-index order (bitwise identical to naive
// a*(bᵀ)); float32 dots use the unrolled four-accumulator form.
func MulTransposeBInto[T Float](dst, a, b *Mat[T]) (*Mat[T], error) {
	if a.cols != b.cols {
		return nil, shapeErr("mulTb", a, b)
	}
	dst = RecycleNoClear(dst, a.rows, b.rows)
	if d32, ok := any(dst).(*Mat[float32]); ok {
		mulTransposeB32(d32, any(a).(*Mat[float32]), any(b).(*Mat[float32]))
		return dst, nil
	}
	k, n := a.cols, b.rows
	parallelRows(a.rows, parMinRows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			crow := dst.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.data[j*k : (j+1)*k]
				var s T
				for kk, av := range arow {
					s += av * brow[kk]
				}
				crow[j] = s
			}
		}
	})
	return dst, nil
}

// mulTransposeB32 is the float32 a*bᵀ kernel: each dot product runs with
// four independent accumulators folded pairwise at the end — deterministic,
// worker-count independent, but reassociated relative to a serial dot.
func mulTransposeB32(dst, a, b *Mat[float32]) {
	k, n := a.cols, b.rows
	parallelRows(a.rows, parMinRows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			crow := dst.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.data[j*k : (j+1)*k][:len(arow)]
				var s0, s1, s2, s3 float32
				kk := 0
				for ; kk+4 <= len(arow); kk += 4 {
					s0 += arow[kk] * brow[kk]
					s1 += arow[kk+1] * brow[kk+1]
					s2 += arow[kk+2] * brow[kk+2]
					s3 += arow[kk+3] * brow[kk+3]
				}
				for ; kk < len(arow); kk++ {
					s0 += arow[kk] * brow[kk]
				}
				crow[j] = (s0 + s1) + (s2 + s3)
			}
		}
	})
}

// AddInto computes dst = a + b elementwise, reusing dst when capacity
// allows. dst may alias a or b for in-place accumulation.
func AddInto[T Float](dst, a, b *Mat[T]) (*Mat[T], error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, shapeErr("add", a, b)
	}
	if dst != a && dst != b {
		dst = RecycleNoClear(dst, a.rows, a.cols)
	}
	ad, bd, dd := a.data, b.data, dst.data
	for i := range dd {
		dd[i] = ad[i] + bd[i]
	}
	return dst, nil
}

// Recycle returns a zeroed rows x cols matrix, reusing m's backing array
// when it has capacity. m may be nil or any shape; the returned matrix may
// alias m's storage, so callers must treat m as invalidated.
func Recycle[T Float](m *Mat[T], rows, cols int) *Mat[T] {
	m = RecycleNoClear(m, rows, cols)
	clear(m.data)
	return m
}

// RecycleNoClear is Recycle without zeroing; every element will be
// overwritten by the caller.
func RecycleNoClear[T Float](m *Mat[T], rows, cols int) *Mat[T] {
	n := rows * cols
	if m != nil && cap(m.data) >= n {
		m.data = m.data[:n]
		m.rows, m.cols = rows, cols
		return m
	}
	return NewOf[T](rows, cols)
}

// RecycleVec returns a length-n slice reusing v's capacity when possible,
// without zeroing.
func RecycleVec[T Float](v []T, n int) []T {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]T, n)
}

// SelectRowsInto copies rows idx of m into dst, reusing dst's backing.
func SelectRowsInto[T Float](dst, m *Mat[T], idx []int) *Mat[T] {
	dst = RecycleNoClear(dst, len(idx), m.cols)
	for k, i := range idx {
		copy(dst.Row(k), m.Row(i))
	}
	return dst
}

// ColMeansStds computes per-column means and population standard deviations
// in a single pass, shifted by row 0 for numerical stability (see ColStds).
// The returned means equal shift + Σ(x-shift)/n, which can differ from
// ColMeans (Σx/n) in the last bits; StandardScaler uses this fused form.
func (m *Mat[T]) ColMeansStds() (means, stds []T) {
	means = make([]T, m.cols)
	stds = make([]T, m.cols)
	if m.rows == 0 {
		return means, stds
	}
	shift := m.RowCopy(0)
	d1 := make([]T, m.cols) // Σ (x - shift)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			d := v - shift[j]
			d1[j] += d
			stds[j] += d * d // Σ (x - shift)^2, accumulated in place
		}
	}
	n := T(m.rows)
	for j := range means {
		md := d1[j] / n
		means[j] = shift[j] + md
		// var = Σd² /n - (Σd/n)² ; shifted by a data value so the two
		// terms are commensurate and cancellation stays benign.
		v := stds[j]/n - md*md
		if v < 0 {
			v = 0 // guard rounding for constant columns
		}
		stds[j] = T(math.Sqrt(float64(v)))
	}
	return means, stds
}

func shapeErr[T Float](op string, a, b *Mat[T]) error {
	return fmt.Errorf("%w: %s %dx%d by %dx%d", ErrShape, op, a.rows, a.cols, b.rows, b.cols)
}

func shapeErrVec[T Float](op string, m *Mat[T], n int) error {
	return fmt.Errorf("%w: %s %dx%d by %d", ErrShape, op, m.rows, m.cols, n)
}
