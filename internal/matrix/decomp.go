package matrix

import (
	"fmt"
	"math"
	"sort"
)

// SolveLeastSquares returns x minimizing ||A*x - b||_2 using Householder QR
// with column-norm-based rank handling. A is rows x cols with rows >= cols
// required; b has len rows.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.rows != len(b) {
		return nil, fmt.Errorf("%w: lstsq A %dx%d, b %d", ErrShape, a.rows, a.cols, len(b))
	}
	if a.rows < a.cols {
		return nil, fmt.Errorf("%w: lstsq underdetermined %dx%d", ErrShape, a.rows, a.cols)
	}
	m, n := a.rows, a.cols
	r := a.Clone()
	y := make([]float64, m)
	copy(y, b)

	// Householder QR: transform R in place, apply the same reflections to y.
	for k := 0; k < n; k++ {
		// Compute the norm of column k below the diagonal.
		norm := 0.0
		for i := k; i < m; i++ {
			v := r.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue // rank-deficient column; leave zeros, coefficient stays 0
		}
		if r.At(k, k) > 0 {
			norm = -norm
		}
		// Householder vector v stored in column k below diagonal.
		for i := k; i < m; i++ {
			r.Set(i, k, r.At(i, k)/norm)
		}
		r.Set(k, k, r.At(k, k)+1)
		// Apply reflection to remaining columns.
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += r.At(i, k) * r.At(i, j)
			}
			s = -s / r.At(k, k)
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)+s*r.At(i, k))
			}
		}
		// Apply reflection to y.
		s := 0.0
		for i := k; i < m; i++ {
			s += r.At(i, k) * y[i]
		}
		s = -s / r.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * r.At(i, k)
		}
		r.Set(k, k, -norm)
	}

	// Back substitution on the upper-triangular part of r.
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		d := r.At(k, k)
		if math.Abs(d) < 1e-12 {
			x[k] = 0
			continue
		}
		s := y[k]
		for j := k + 1; j < n; j++ {
			s -= r.At(k, j) * x[j]
		}
		x[k] = s / d
	}
	return x, nil
}

// SymEig computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns eigenvalues in descending order and the
// corresponding eigenvectors as the columns of the returned matrix.
func SymEig(a *Matrix) (vals []float64, vecs *Matrix, err error) {
	if a.rows != a.cols {
		return nil, nil, fmt.Errorf("%w: symeig on %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	s := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += s.At(i, j) * s.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := s.At(p, q)
				if math.Abs(apq) < 1e-18 {
					continue
				}
				app, aqq := s.At(p, p), s.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				sn := t * c
				// Rotate rows/columns p and q of s.
				for k := 0; k < n; k++ {
					skp, skq := s.At(k, p), s.At(k, q)
					s.Set(k, p, c*skp-sn*skq)
					s.Set(k, q, sn*skp+c*skq)
				}
				for k := 0; k < n; k++ {
					spk, sqk := s.At(p, k), s.At(q, k)
					s.Set(p, k, c*spk-sn*sqk)
					s.Set(q, k, sn*spk+c*sqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-sn*vkq)
					v.Set(k, q, sn*vkp+c*vkq)
				}
			}
		}
	}

	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = s.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })
	sortedVals := make([]float64, n)
	sortedVecs := New(n, n)
	for newJ, oldJ := range order {
		sortedVals[newJ] = vals[oldJ]
		for i := 0; i < n; i++ {
			sortedVecs.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return sortedVals, sortedVecs, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}
