package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustFromRows(t *testing.T, rows [][]float64) *Matrix {
	t.Helper()
	m, err := NewFromRows(rows)
	if err != nil {
		t.Fatalf("NewFromRows: %v", err)
	}
	return m
}

func TestNewFromRowsRagged(t *testing.T) {
	_, err := NewFromRows([][]float64{{1, 2}, {3}})
	if err == nil {
		t.Fatal("want error for ragged rows")
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 5)
	if got := m.At(1, 2); got != 5 {
		t.Fatalf("At(1,2) = %v, want 5", got)
	}
	r := m.Row(1)
	r[0] = 7 // Row is a view
	if m.At(1, 0) != 7 {
		t.Fatal("Row should be a view into the matrix")
	}
	rc := m.RowCopy(1)
	rc[0] = 99
	if m.At(1, 0) != 7 {
		t.Fatal("RowCopy must not alias the matrix")
	}
}

func TestMul(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := mustFromRows(t, [][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
	if _, err := a.Mul(New(3, 2)); err == nil {
		t.Fatal("want shape error")
	}
}

func TestMulVec(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	got, err := a.MulVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", got)
	}
}

func TestTranspose(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("T shape %dx%d", at.Rows(), at.Cols())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("T values wrong: %v", at)
	}
}

func TestAddSubScale(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{4, 3}, {2, 1}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	want := mustFromRows(t, [][]float64{{5, 5}, {5, 5}})
	if !sum.Equal(want, 0) {
		t.Fatalf("Add = %v", sum)
	}
	diff, err := sum.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(a, 0) {
		t.Fatalf("Sub = %v", diff)
	}
	if s := a.Scale(2); s.At(1, 1) != 8 {
		t.Fatalf("Scale = %v", s)
	}
}

func TestSelectRowsCols(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	r := a.SelectRows([]int{2, 0})
	if r.At(0, 0) != 7 || r.At(1, 2) != 3 {
		t.Fatalf("SelectRows = %v", r)
	}
	c := a.SelectCols([]int{2, 1})
	if c.At(0, 0) != 3 || c.At(2, 1) != 8 {
		t.Fatalf("SelectCols = %v", c)
	}
	s := a.SliceRows(1, 3)
	if s.Rows() != 2 || s.At(0, 0) != 4 {
		t.Fatalf("SliceRows = %v", s)
	}
}

func TestColStats(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 10}, {3, 30}})
	means := a.ColMeans()
	if means[0] != 2 || means[1] != 20 {
		t.Fatalf("ColMeans = %v", means)
	}
	stds := a.ColStds()
	if math.Abs(stds[0]-1) > 1e-12 || math.Abs(stds[1]-10) > 1e-12 {
		t.Fatalf("ColStds = %v", stds)
	}
	if mins := a.ColMins(); mins[0] != 1 || mins[1] != 10 {
		t.Fatalf("ColMins = %v", mins)
	}
	if maxs := a.ColMaxs(); maxs[0] != 3 || maxs[1] != 30 {
		t.Fatalf("ColMaxs = %v", maxs)
	}
}

func TestCovariance(t *testing.T) {
	// Perfectly correlated columns: cov matrix [[1,2],[2,4]] for this data.
	a := mustFromRows(t, [][]float64{{0, 0}, {1, 2}, {2, 4}})
	cov := a.Covariance()
	want := mustFromRows(t, [][]float64{{1, 2}, {2, 4}})
	if !cov.Equal(want, 1e-12) {
		t.Fatalf("Covariance = %v, want %v", cov, want)
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// y = 2*x0 - 3*x1 + 1 with an intercept column.
	a := mustFromRows(t, [][]float64{
		{1, 0, 0},
		{1, 1, 0},
		{1, 0, 1},
		{1, 1, 1},
		{1, 2, 1},
	})
	truth := []float64{1, 2, -3}
	b, err := a.MulVec(truth)
	if err != nil {
		t.Fatal(err)
	}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(x[i]-truth[i]) > 1e-9 {
			t.Fatalf("lstsq x = %v, want %v", x, truth)
		}
	}
}

func TestSolveLeastSquaresOverdetermined(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, p := 200, 4
	a := New(n, p)
	truth := []float64{0.5, -1.5, 2.0, 3.0}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < p; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			s += v * truth[j]
		}
		b[i] = s + 0.001*rng.NormFloat64()
	}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j := range truth {
		if math.Abs(x[j]-truth[j]) > 0.01 {
			t.Fatalf("lstsq x = %v, want ~%v", x, truth)
		}
	}
}

func TestSolveLeastSquaresShapeErrors(t *testing.T) {
	if _, err := SolveLeastSquares(New(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("want underdetermined error")
	}
	if _, err := SolveLeastSquares(New(3, 2), []float64{1, 2}); err == nil {
		t.Fatal("want b-length error")
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := mustFromRows(t, [][]float64{{3, 0}, {0, 1}})
	vals, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("vals = %v", vals)
	}
	if math.Abs(math.Abs(vecs.At(0, 0))-1) > 1e-10 {
		t.Fatalf("vecs = %v", vecs)
	}
}

func TestSymEigReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 6
	// Random symmetric matrix.
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	vals, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	// Check A*v_j = lambda_j * v_j for each eigenpair.
	for j := 0; j < n; j++ {
		v := vecs.ColCopy(j)
		av, err := a.MulVec(v)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if math.Abs(av[i]-vals[j]*v[i]) > 1e-8 {
				t.Fatalf("eigenpair %d fails: A*v=%v lambda*v=%v", j, av[i], vals[j]*v[i])
			}
		}
	}
	// Eigenvalues sorted descending.
	for j := 1; j < n; j++ {
		if vals[j] > vals[j-1]+1e-12 {
			t.Fatalf("eigenvalues not descending: %v", vals)
		}
	}
}

func TestSymEigShapeError(t *testing.T) {
	if _, _, err := SymEig(New(2, 3)); err == nil {
		t.Fatal("want shape error")
	}
}

// Property: transpose is an involution.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := New(r, c)
		for i := range m.Data() {
			m.Data()[i] = rng.NormFloat64()
		}
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A*B)^T == B^T * A^T.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b := New(r, k), New(k, c)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		for i := range b.Data() {
			b.Data()[i] = rng.NormFloat64()
		}
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		btat, err := b.T().Mul(a.T())
		if err != nil {
			return false
		}
		return ab.T().Equal(btat, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	a := mustFromRows(t, [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	got, err := a.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a, 0) {
		t.Fatal("A*I != A")
	}
}

func TestFromSlice(t *testing.T) {
	m, err := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("FromSlice At(1,0) = %v", m.At(1, 0))
	}
	if _, err := FromSlice(2, 2, []float64{1}); err == nil {
		t.Fatal("want length error")
	}
}

// TestSolveLeastSquaresRankDeficient pins the rank handling: a duplicated
// column must not crash the solver, and the fit must still reproduce b.
func TestSolveLeastSquaresRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 60
	a := New(n, 3)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		a.Set(i, 0, v)
		a.Set(i, 1, v) // exact duplicate column
		a.Set(i, 2, rng.NormFloat64())
		b[i] = 3*v - a.At(i, 2)
	}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// The combined weight on the duplicated columns must equal 3 and the
	// residual must be ~0, whatever split the solver chose.
	if math.Abs(x[0]+x[1]-3) > 1e-6 || math.Abs(x[2]+1) > 1e-6 {
		t.Fatalf("rank-deficient solution %v", x)
	}
	pred, err := a.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if math.Abs(pred[i]-b[i]) > 1e-6 {
			t.Fatalf("residual at %d: %v vs %v", i, pred[i], b[i])
		}
	}
}
