package matrix

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// randMat builds a deterministic pseudo-random matrix with a sprinkling of
// exact zeros so the kernels' skip-zero branches are exercised.
func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		if rng.Intn(8) == 0 {
			continue // leave exact zero
		}
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// bitsEqual reports whether two matrices are bitwise identical.
func bitsEqual(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.rows != want.rows || got.cols != want.cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.rows, got.cols, want.rows, want.cols)
	}
	for i := range want.data {
		if math.Float64bits(got.data[i]) != math.Float64bits(want.data[i]) {
			t.Fatalf("%s: element %d = %v, want %v (bitwise)", name, i, got.data[i], want.data[i])
		}
	}
}

func TestMulBlockedMatchesNaiveBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Sizes straddle the tile boundaries and the parallel cutoff.
	for _, dims := range [][3]int{{3, 4, 5}, {17, 33, 9}, {64, 64, 64}, {130, 257, 70}, {100, 300, 259}} {
		a := randMat(rng, dims[0], dims[1])
		b := randMat(rng, dims[1], dims[2])
		got, err := MulInto(nil, a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveMulInto(nil, a, b)
		bitsEqual(t, "blocked mul", got, want)
	}
}

func TestMulParallelMatchesSerialBitwise(t *testing.T) {
	defer SetMaxWorkers(runtime.GOMAXPROCS(0))
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 211, 97)
	b := randMat(rng, 97, 180)
	v := make([]float64, 97)
	for i := range v {
		v[i] = rng.NormFloat64()
	}

	SetMaxWorkers(1)
	serial, err := MulInto(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	serialVec, err := MulVecInto(nil, a.SliceRows(0, 97), v)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 3, 8} {
		SetMaxWorkers(workers)
		par, err := MulInto(nil, a, b)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "parallel mul", par, serial)
		parVec, err := MulVecInto(nil, a.SliceRows(0, 97), v)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serialVec {
			if math.Float64bits(parVec[i]) != math.Float64bits(serialVec[i]) {
				t.Fatalf("mulvec workers=%d element %d = %v, want %v", workers, i, parVec[i], serialVec[i])
			}
		}
	}
}

func TestMulTransposeAMatchesNaiveBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 57, 23)
	b := randMat(rng, 57, 41)
	got, err := MulTransposeAInto(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveMulInto(nil, a.T(), b)
	bitsEqual(t, "mulTa", got, want)

	// Accumulating variant: dst starts non-zero and gains the product.
	acc := randMat(rng, 23, 41)
	base := acc.Clone()
	if err := MulTransposeAAccum(acc, a, b); err != nil {
		t.Fatal(err)
	}
	for i := range acc.data {
		wantv := base.data[i]
		// reproduce the ascending-k accumulation on top of base
		wantv = accumRef(wantv, a, b, i/41, i%41)
		if math.Float64bits(acc.data[i]) != math.Float64bits(wantv) {
			t.Fatalf("mulTaAccum element %d = %v, want %v", i, acc.data[i], wantv)
		}
	}
}

// accumRef folds a's column i dotted with b's column j onto v in ascending
// row order with the kernel's skip-zero rule.
func accumRef(v float64, a, b *Matrix, i, j int) float64 {
	for k := 0; k < a.rows; k++ {
		av := a.At(k, i)
		if av == 0 {
			continue
		}
		v += av * b.At(k, j)
	}
	return v
}

func TestMulTransposeBMatchesNaiveBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMat(rng, 37, 29)
	b := randMat(rng, 44, 29)
	got, err := MulTransposeBInto(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: plain ascending dot products (the naive mul's skip-zero
	// branch does not reorder a dot product, so direct dots are the oracle).
	want := New(37, 44)
	for i := 0; i < 37; i++ {
		for j := 0; j < 44; j++ {
			s := 0.0
			for k := 0; k < 29; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			want.Set(i, j, s)
		}
	}
	bitsEqual(t, "mulTb", got, want)
}

func TestTIntoMatchesElementwise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dims := range [][2]int{{1, 1}, {7, 3}, {33, 65}, {100, 31}} {
		m := randMat(rng, dims[0], dims[1])
		got := TInto(nil, m)
		for i := 0; i < m.rows; i++ {
			for j := 0; j < m.cols; j++ {
				if got.At(j, i) != m.At(i, j) {
					t.Fatalf("T(%dx%d)[%d][%d] mismatch", dims[0], dims[1], j, i)
				}
			}
		}
	}
}

func TestAddIntoAliasing(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewFromRows([][]float64{{10, 20}, {30, 40}})
	out, err := AddInto(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(1, 1) != 44 {
		t.Fatalf("AddInto = %v", out)
	}
	// In-place: dst aliases a.
	if _, err := AddInto(a, a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 11 || a.At(1, 1) != 44 {
		t.Fatalf("in-place AddInto = %v", a)
	}
}

func TestRecycleReusesBacking(t *testing.T) {
	m := New(4, 6)
	m.Set(2, 2, 9)
	r := Recycle(m, 3, 8)
	if r.Rows() != 3 || r.Cols() != 8 {
		t.Fatalf("Recycle shape %dx%d", r.Rows(), r.Cols())
	}
	if &r.data[0] != &m.data[0] {
		t.Fatal("Recycle did not reuse backing array")
	}
	for _, v := range r.data {
		if v != 0 {
			t.Fatal("Recycle did not zero")
		}
	}
	grown := Recycle(r, 10, 10)
	if len(grown.data) != 100 {
		t.Fatalf("Recycle grow len %d", len(grown.data))
	}
}

func TestSelectRowsInto(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	dst := SelectRowsInto(nil, m, []int{2, 0})
	if dst.At(0, 0) != 5 || dst.At(1, 1) != 2 {
		t.Fatalf("SelectRowsInto = %v", dst)
	}
	dst2 := SelectRowsInto(dst, m, []int{1})
	if &dst2.data[0] != &dst.data[0] {
		t.Fatal("SelectRowsInto did not reuse backing")
	}
	if dst2.At(0, 1) != 4 {
		t.Fatalf("SelectRowsInto reuse = %v", dst2)
	}
}

// refTwoPassStds is the pre-PR two-pass reference: exact means first, then
// squared deviations.
func refTwoPassStds(m *Matrix) []float64 {
	means := m.ColMeans()
	stds := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		for j, v := range m.Row(i) {
			d := v - means[j]
			stds[j] += d * d
		}
	}
	for j := range stds {
		stds[j] = math.Sqrt(stds[j] / float64(m.rows))
	}
	return stds
}

// refTwoPassCovariance is the pre-PR two-pass reference covariance.
func refTwoPassCovariance(m *Matrix) *Matrix {
	cov := New(m.cols, m.cols)
	if m.rows < 2 {
		return cov
	}
	means := m.ColMeans()
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for a := 0; a < m.cols; a++ {
			da := row[a] - means[a]
			crow := cov.Row(a)
			for b := a; b < m.cols; b++ {
				crow[b] += da * (row[b] - means[b])
			}
		}
	}
	n := float64(m.rows - 1)
	for a := 0; a < m.cols; a++ {
		for b := a; b < m.cols; b++ {
			v := cov.At(a, b) / n
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov
}

// TestColStatsStability feeds data with a huge common offset — the case
// that destroys the textbook ΣX² one-pass variance — and checks the
// shifted single-pass kernel against the two-pass reference.
func TestColStatsStability(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := New(500, 4)
	offsets := []float64{1e9, -2.5e8, 1e6, 0}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = offsets[j] + rng.NormFloat64()
		}
	}
	want := refTwoPassStds(m)
	got := m.ColStds()
	for j := range want {
		if rel := math.Abs(got[j]-want[j]) / want[j]; rel > 1e-9 {
			t.Fatalf("col %d std = %v, two-pass %v (rel err %g)", j, got[j], want[j], rel)
		}
	}
	means, _ := m.ColMeansStds()
	ref := m.ColMeans()
	for j := range ref {
		if d := math.Abs(means[j] - ref[j]); d > 1e-6*math.Abs(ref[j])+1e-12 {
			t.Fatalf("col %d fused mean = %v, ColMeans %v", j, means[j], ref[j])
		}
	}
}

func TestCovarianceStability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New(400, 3)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		row[0] = 1e9 + rng.NormFloat64()
		row[1] = -5e8 + 2*rng.NormFloat64()
		row[2] = rng.NormFloat64()
	}
	want := refTwoPassCovariance(m)
	got := m.Covariance()
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			scale := math.Max(math.Abs(want.At(a, b)), 1)
			if d := math.Abs(got.At(a, b) - want.At(a, b)); d/scale > 1e-9 {
				t.Fatalf("cov[%d][%d] = %v, two-pass %v", a, b, got.At(a, b), want.At(a, b))
			}
		}
	}
	// Degenerate shapes stay well-defined.
	if c := New(1, 3).Covariance(); c.At(0, 0) != 0 {
		t.Fatal("single-row covariance should be zero")
	}
}

func TestSetMaxWorkersClampsAndReports(t *testing.T) {
	defer SetMaxWorkers(runtime.GOMAXPROCS(0))
	SetMaxWorkers(-3)
	if Parallelism() != 1 {
		t.Fatalf("Parallelism after SetMaxWorkers(-3) = %d", Parallelism())
	}
	SetMaxWorkers(6)
	if Parallelism() != 6 {
		t.Fatalf("Parallelism = %d, want 6", Parallelism())
	}
}
