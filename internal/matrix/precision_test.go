package matrix

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// randMat32 converts a deterministic f64 random matrix down to float32.
func randMat32(rng *rand.Rand, rows, cols int) *Mat[float32] {
	return ConvertInto[float32](nil, randMat(rng, rows, cols))
}

func bits32Equal(t *testing.T, name string, got, want *Mat[float32]) {
	t.Helper()
	if got.rows != want.rows || got.cols != want.cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.rows, got.cols, want.rows, want.cols)
	}
	for i := range want.data {
		if math.Float32bits(got.data[i]) != math.Float32bits(want.data[i]) {
			t.Fatalf("%s: element %d = %v, want %v (bitwise)", name, i, got.data[i], want.data[i])
		}
	}
}

// TestF32KernelsWorkerCountIndependent pins the float32 kernels'
// determinism contract: the unrolled f32 summation order is fixed per
// element, so results must be bitwise identical at any worker budget.
func TestF32KernelsWorkerCountIndependent(t *testing.T) {
	defer SetMaxWorkers(runtime.GOMAXPROCS(0))
	rng := rand.New(rand.NewSource(2))
	a := randMat32(rng, 211, 97)
	b := randMat32(rng, 97, 180)
	v := make([]float32, 97)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}

	SetMaxWorkers(1)
	serial, err := MulInto(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	serialTA, err := MulTransposeAInto(nil, a.SliceRows(0, 97), b)
	if err != nil {
		t.Fatal(err)
	}
	serialTB, err := MulTransposeBInto(nil, a, b.T())
	if err != nil {
		t.Fatal(err)
	}
	serialVec, err := MulVecInto(nil, a.SliceRows(0, 97), v)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 3, 8} {
		SetMaxWorkers(workers)
		par, err := MulInto(nil, a, b)
		if err != nil {
			t.Fatal(err)
		}
		bits32Equal(t, "f32 mul", par, serial)
		parTA, err := MulTransposeAInto(nil, a.SliceRows(0, 97), b)
		if err != nil {
			t.Fatal(err)
		}
		bits32Equal(t, "f32 mulTA", parTA, serialTA)
		parTB, err := MulTransposeBInto(nil, a, b.T())
		if err != nil {
			t.Fatal(err)
		}
		bits32Equal(t, "f32 mulTB", parTB, serialTB)
		parVec, err := MulVecInto(nil, a.SliceRows(0, 97), v)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serialVec {
			if math.Float32bits(parVec[i]) != math.Float32bits(serialVec[i]) {
				t.Fatalf("f32 mulvec workers=%d element %d = %v, want %v", workers, i, parVec[i], serialVec[i])
			}
		}
	}
}

// TestF32MulTracksF64 bounds the rounding gap between the two widths: the
// f32 product of down-converted inputs must match the f64 product within
// accumulated single-precision rounding.
func TestF32MulTracksF64(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMat(rng, 96, 128)
	b := randMat(rng, 128, 64)
	want, err := MulInto(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MulInto(nil, ConvertInto[float32](nil, a), ConvertInto[float32](nil, b))
	if err != nil {
		t.Fatal(err)
	}
	// ~k*eps32 worst case with k=128; the blocked/unrolled accumulation
	// keeps the observed error far below this bound.
	const tol = 128 * 1.2e-7 * 8
	for i := 0; i < want.Rows(); i++ {
		for j := 0; j < want.Cols(); j++ {
			w := want.At(i, j)
			if d := math.Abs(float64(got.At(i, j)) - w); d > tol*(math.Abs(w)+1) {
				t.Fatalf("(%d,%d): f32 %v vs f64 %v (diff %v)", i, j, got.At(i, j), w, d)
			}
		}
	}
}
