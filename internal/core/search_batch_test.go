package core_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"coda/internal/core"
	"coda/internal/crossval"
	"coda/internal/metrics"
)

var errBatchDown = errors.New("batch endpoint unreachable")

// memBatchStore is a BatchResultStore + Flusher double recording which
// protocol the search used and how often each entry point ran.
type memBatchStore struct {
	mu      sync.Mutex
	scores  map[string]float64
	claimed map[string]string // key -> client holding the claim

	clientID string
	failLookupBatch,
	failClaimBatch bool

	lookupBatches, claimBatches int
	unitLookups, unitClaims     int
	pubs, releases, flushes     int
}

func newMemBatchStore(clientID string) *memBatchStore {
	return &memBatchStore{
		scores: map[string]float64{}, claimed: map[string]string{}, clientID: clientID,
	}
}

func (m *memBatchStore) Lookup(_ context.Context, key string) (float64, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.unitLookups++
	s, ok := m.scores[key]
	return s, ok, nil
}

func (m *memBatchStore) Claim(_ context.Context, key string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.unitClaims++
	return m.claimLocked(key), nil
}

func (m *memBatchStore) claimLocked(key string) bool {
	if owner, held := m.claimed[key]; held && owner != m.clientID {
		return false
	}
	m.claimed[key] = m.clientID
	return true
}

func (m *memBatchStore) Publish(_ context.Context, key string, score float64, _ string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pubs++
	m.scores[key] = score
	delete(m.claimed, key)
	return nil
}

func (m *memBatchStore) LookupBatch(_ context.Context, keys []string) (map[string]float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lookupBatches++
	if m.failLookupBatch {
		return nil, errBatchDown
	}
	out := map[string]float64{}
	for _, k := range keys {
		if s, ok := m.scores[k]; ok {
			out[k] = s
		}
	}
	return out, nil
}

func (m *memBatchStore) ClaimBatch(_ context.Context, keys []string) (map[string]bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.claimBatches++
	if m.failClaimBatch {
		return nil, errBatchDown
	}
	out := map[string]bool{}
	for _, k := range keys {
		out[k] = m.claimLocked(k)
	}
	return out, nil
}

func (m *memBatchStore) Release(_ context.Context, key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releases++
	if m.claimed[key] == m.clientID {
		delete(m.claimed, key)
	}
	return nil
}

func (m *memBatchStore) Flush(context.Context) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushes++
	return nil
}

func batchOpts(store core.ResultStore) core.SearchOptions {
	scorer, _ := metrics.ScorerByName("rmse")
	return core.SearchOptions{
		Splitter:    crossval.KFold{K: 3, Shuffle: true},
		Scorer:      scorer,
		Seed:        5,
		Store:       store,
		SkipClaimed: true,
	}
}

// TestSearchPrefersBatchProtocol pins the round-trip collapse: a
// batch-capable store sees exactly one bulk lookup and one bulk claim
// per search instead of one of each per unit, and is flushed on exit.
func TestSearchPrefersBatchProtocol(t *testing.T) {
	ds := regDS(t, 100)
	st := newMemBatchStore("alice")
	res, err := core.Search(context.Background(), degradedGraph(), ds, batchOpts(st))
	if err != nil {
		t.Fatal(err)
	}
	if res.Computed != 4 || res.CacheHits != 0 || res.Skipped != 0 {
		t.Fatalf("first run computed=%d cache=%d skipped=%d", res.Computed, res.CacheHits, res.Skipped)
	}
	if st.lookupBatches != 1 || st.claimBatches != 1 {
		t.Fatalf("bulk calls lookup=%d claim=%d, want exactly 1 each", st.lookupBatches, st.claimBatches)
	}
	if st.unitLookups != 0 || st.unitClaims != 0 {
		t.Fatalf("per-unit calls lookup=%d claim=%d, want 0: batch store must not fall back", st.unitLookups, st.unitClaims)
	}
	if st.pubs != 4 {
		t.Fatalf("pubs=%d, want one per computed unit", st.pubs)
	}
	if st.flushes == 0 {
		t.Fatal("search exit must flush the publish queue")
	}
	if len(st.claimed) != 0 {
		t.Fatalf("%d claims outstanding after a clean search", len(st.claimed))
	}

	// Second cooperating client against the same repository: everything
	// is a bulk cache hit, and no claim batch is needed at all.
	st.clientID = "bob"
	second, err := core.Search(context.Background(), degradedGraph(), ds, batchOpts(st))
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != 4 || second.Computed != 0 {
		t.Fatalf("second run computed=%d cache=%d, want all cached", second.Computed, second.CacheHits)
	}
	if st.claimBatches != 1 {
		t.Fatalf("claimBatches=%d, want no claim batch when every key is cached", st.claimBatches)
	}
	if second.Best == nil || second.Best.Mean != res.Best.Mean {
		t.Fatal("cached best score differs from computed one")
	}
}

// TestSearchBatchSkipClaimed: keys bulk-claimed by a peer are skipped,
// not recomputed.
func TestSearchBatchSkipClaimed(t *testing.T) {
	ds := regDS(t, 100)
	peer := newMemBatchStore("peer")
	// The peer claims everything first.
	if _, err := core.Search(context.Background(), degradedGraph(), ds, batchOpts(peer)); err != nil {
		t.Fatal(err)
	}
	// Wipe scores but re-claim the keys as the peer, so the second
	// client finds them claimed-but-unpublished.
	peer.mu.Lock()
	for k := range peer.scores {
		peer.claimed[k] = "peer"
		delete(peer.scores, k)
	}
	peer.mu.Unlock()
	st := peer
	st.clientID = "me"
	res, err := core.Search(context.Background(), degradedGraph(), ds, batchOpts(st))
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 4 || res.Computed != 0 {
		t.Fatalf("skipped=%d computed=%d, want all units skipped", res.Skipped, res.Computed)
	}
}

// TestSearchBatchLookupFailureDegrades: a failed bulk lookup degrades
// the whole search to local computation — one failed call, not 3×units.
func TestSearchBatchLookupFailureDegrades(t *testing.T) {
	ds := regDS(t, 80)
	st := newMemBatchStore("alice")
	st.failLookupBatch = true
	res, err := core.Search(context.Background(), degradedGraph(), ds, batchOpts(st))
	if err != nil {
		t.Fatalf("search must degrade, not fail: %v", err)
	}
	if res.Computed != 4 || res.Degraded != 4 || res.Best == nil {
		t.Fatalf("computed=%d degraded=%d best=%v, want full local degradation", res.Computed, res.Degraded, res.Best)
	}
	if st.lookupBatches != 1 || st.claimBatches != 0 || st.unitLookups != 0 {
		t.Fatalf("calls lookupBatch=%d claimBatch=%d unitLookup=%d, want one failed bulk call total",
			st.lookupBatches, st.claimBatches, st.unitLookups)
	}
	if st.pubs != 0 {
		t.Fatalf("pubs=%d, degraded units must not publish", st.pubs)
	}
}

// TestSearchBatchClaimFailureDegrades: cached units still come from the
// bulk lookup; the rest degrade when the bulk claim fails.
func TestSearchBatchClaimFailureDegrades(t *testing.T) {
	ds := regDS(t, 80)
	st := newMemBatchStore("alice")
	if _, err := core.Search(context.Background(), degradedGraph(), ds, batchOpts(st)); err != nil {
		t.Fatal(err)
	}
	// Drop half the cache and fail future claim batches.
	st.mu.Lock()
	dropped := 0
	for k := range st.scores {
		if dropped < 2 {
			delete(st.scores, k)
			dropped++
		}
	}
	st.failClaimBatch = true
	st.mu.Unlock()

	res, err := core.Search(context.Background(), degradedGraph(), ds, batchOpts(st))
	if err != nil {
		t.Fatalf("search must degrade, not fail: %v", err)
	}
	if res.CacheHits != 2 || res.Computed != 2 || res.Degraded != 2 {
		t.Fatalf("cache=%d computed=%d degraded=%d, want cached units intact and the rest degraded",
			res.CacheHits, res.Computed, res.Degraded)
	}
}

// TestSearchCancelledReleasesBatchClaims: a cancelled batched search
// must not leak its bulk-granted claims until TTL.
func TestSearchCancelledReleasesBatchClaims(t *testing.T) {
	ds := regDS(t, 80)
	st := newMemBatchStore("alice")
	ctx, cancel := context.WithCancel(context.Background())
	opts := batchOpts(st)
	// Cancel from inside the first scorer call so claims are already
	// bulk-granted but most units never publish.
	base := opts.Scorer.Fn
	opts.Scorer.Fn = func(y, yhat []float64) (float64, error) {
		cancel()
		return base(y, yhat)
	}
	if _, err := core.Search(ctx, degradedGraph(), ds, opts); err == nil {
		t.Fatal("want cancellation error")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.claimed) != 0 {
		t.Fatalf("%d claims leaked by a cancelled search", len(st.claimed))
	}
}
