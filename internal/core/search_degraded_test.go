package core_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"coda/internal/core"
	"coda/internal/crossval"
	"coda/internal/metrics"
	"coda/internal/mlmodels"
	"coda/internal/preprocess"
)

var errMidSearch = errors.New("darr flaked mid-search")

// intermittentStore works for the first `healthyCalls` operations, then
// fails every one — a DARR that dies while a search is in flight.
type intermittentStore struct {
	mu           sync.Mutex
	healthyCalls int
	calls        int
	scores       map[string]float64
	claimed      map[string]bool
	pubs         int
}

func newIntermittentStore(healthyCalls int) *intermittentStore {
	return &intermittentStore{
		healthyCalls: healthyCalls,
		scores:       map[string]float64{},
		claimed:      map[string]bool{},
	}
}

func (s *intermittentStore) failing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	return s.calls > s.healthyCalls
}

func (s *intermittentStore) Lookup(_ context.Context, key string) (float64, bool, error) {
	if s.failing() {
		return 0, false, errMidSearch
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.scores[key]
	return v, ok, nil
}

func (s *intermittentStore) Claim(_ context.Context, key string) (bool, error) {
	if s.failing() {
		return false, errMidSearch
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.claimed[key] {
		return false, nil
	}
	s.claimed[key] = true
	return true, nil
}

func (s *intermittentStore) Publish(_ context.Context, key string, score float64, _ string) error {
	if s.failing() {
		return errMidSearch
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pubs++
	s.scores[key] = score
	return nil
}

func degradedGraph() *core.Graph {
	g := core.NewGraph()
	g.AddFeatureScalers(preprocess.NewStandardScaler(), preprocess.NewNoOp())
	g.AddRegressionModels(mlmodels.NewLinearRegression(), mlmodels.NewKNN(mlmodels.KNNRegression, 5))
	return g
}

// TestSearchDegradesOnMidSearchStoreErrors pins the fault-tolerance
// contract: when the ResultStore starts erroring partway through, the
// search neither aborts nor loses units — failed-store units are computed
// locally and counted as degraded, and the best pipeline matches the
// store-free run.
func TestSearchDegradesOnMidSearchStoreErrors(t *testing.T) {
	ds := regDS(t, 100)
	scorer, _ := metrics.ScorerByName("rmse")
	base := core.SearchOptions{
		Splitter: crossval.KFold{K: 3, Shuffle: true},
		Scorer:   scorer,
		Seed:     7,
	}

	baseline, err := core.Search(context.Background(), degradedGraph(), ds, base)
	if err != nil || baseline.Best == nil {
		t.Fatalf("baseline: best=%v err=%v", baseline.Best, err)
	}

	// The store survives the first unit (lookup+claim+publish = 3 calls)
	// then blacks out for the remaining three units.
	opts := base
	store := newIntermittentStore(3)
	opts.Store = store
	res, err := core.Search(context.Background(), degradedGraph(), ds, opts)
	if err != nil {
		t.Fatalf("mid-search store failure must not abort the search: %v", err)
	}
	if res.Computed != 4 {
		t.Fatalf("computed = %d, want all 4 units evaluated locally", res.Computed)
	}
	if res.Degraded != 3 {
		t.Fatalf("degraded = %d, want the 3 post-blackout units", res.Degraded)
	}
	if store.pubs != 1 {
		t.Fatalf("store received %d publishes, want 1 before the blackout", store.pubs)
	}
	if res.Best == nil || res.Best.Spec != baseline.Best.Spec || res.Best.Mean != baseline.Best.Mean {
		t.Fatalf("best under degradation = %+v, want baseline %q", res.Best, baseline.Best.Spec)
	}
	degradedUnits := 0
	for _, u := range res.Units {
		if u.Degraded {
			degradedUnits++
		}
	}
	if degradedUnits != res.Degraded {
		t.Fatalf("unit flags (%d) disagree with summary (%d)", degradedUnits, res.Degraded)
	}
}

// TestSearchDegradesOnPublishFailure covers the tail case: computation
// succeeds but the publish is lost, so peers never see the result — the
// unit must be flagged degraded while the search still succeeds.
func TestSearchDegradesOnPublishFailure(t *testing.T) {
	ds := regDS(t, 80)
	scorer, _ := metrics.ScorerByName("rmse")
	// Healthy for unit 1's lookup+claim, fails at its publish and after.
	store := newIntermittentStore(2)
	res, err := core.Search(context.Background(), degradedGraph(), ds, core.SearchOptions{
		Splitter: crossval.KFold{K: 3, Shuffle: true},
		Scorer:   scorer,
		Seed:     5,
		Store:    store,
	})
	if err != nil {
		t.Fatalf("publish failure must not abort: %v", err)
	}
	if res.Degraded == 0 {
		t.Fatal("lost publishes should mark units degraded")
	}
	if res.Best == nil || res.Computed != 4 {
		t.Fatalf("computed=%d best=%v, want full local completion", res.Computed, res.Best)
	}
}
