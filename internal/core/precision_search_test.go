package core_test

import (
	"context"
	"math"
	"testing"

	"coda/internal/core"
	"coda/internal/crossval"
	"coda/internal/matrix"
	"coda/internal/metrics"
	"coda/internal/nnmodels"
	"coda/internal/preprocess"
	"coda/internal/tswindow"
)

// precisionSearch runs the kernel-stress search graph with the network
// precision hyperparameter pinned to the given width.
func precisionSearch(t *testing.T, seed int64, precision float64) *core.SearchResult {
	t.Helper()
	g := core.NewGraph()
	g.AddFeatureScalers(preprocess.NewStandardScaler(), preprocess.NewMinMaxScaler())
	g.AddTransformerStage("windowing", tswindow.NewCascadedWindows(6, 1, 3))
	g.AddEstimatorStage("model",
		nnmodels.NewLSTMRegressor(false),
		nnmodels.NewCNNRegressor(false),
	)
	scorer, err := metrics.ScorerByName("rmse")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Search(context.Background(), g, fusionSeries(60), core.SearchOptions{
		Splitter: crossval.KFold{K: 2, Shuffle: true},
		Scorer:   scorer,
		ParamGrid: map[string][]float64{
			"lstm__epochs": {2}, "cnn__epochs": {2},
			"lstm__precision": {precision}, "cnn__precision": {precision},
		},
		Parallelism: 8,
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSearchF32KernelStressDeterministic drives core.Search at Parallelism
// 8 with the matrix kernel worker budget at 8 on the float32 compute path
// (run under -race in CI to stress the f32 arenas), and checks bitwise
// determinism across runs: the f32 kernels' fixed summation order makes
// even the reduced-precision search reproducible.
func TestSearchF32KernelStressDeterministic(t *testing.T) {
	prev := matrix.Parallelism()
	matrix.SetMaxWorkers(8)
	defer matrix.SetMaxWorkers(prev)

	a := precisionSearch(t, 7, 32)
	b := precisionSearch(t, 7, 32)
	if a.Best == nil || b.Best == nil {
		t.Fatalf("search found no best: %+v / %+v", a.Best, b.Best)
	}
	if math.Float64bits(a.Best.Mean) != math.Float64bits(b.Best.Mean) {
		t.Fatalf("best mean not deterministic: %v vs %v", a.Best.Mean, b.Best.Mean)
	}
	if a.Best.Spec != b.Best.Spec {
		t.Fatalf("winner not deterministic: %q vs %q", a.Best.Spec, b.Best.Spec)
	}
	if len(a.Units) != len(b.Units) {
		t.Fatalf("unit counts differ: %d vs %d", len(a.Units), len(b.Units))
	}
	for i := range a.Units {
		ua, ub := a.Units[i], b.Units[i]
		for f := range ua.Scores {
			if math.Float64bits(ua.Scores[f]) != math.Float64bits(ub.Scores[f]) {
				t.Fatalf("unit %d fold %d score %v vs %v", i, f, ua.Scores[f], ub.Scores[f])
			}
		}
	}
}

// TestSearchF32TracksF64 checks the acceptance criterion that a reduced-
// precision search scores every unit within the documented tolerance of
// the float64 search, so model selection quality carries over.
func TestSearchF32TracksF64(t *testing.T) {
	r64 := precisionSearch(t, 7, 64)
	r32 := precisionSearch(t, 7, 32)
	if len(r64.Units) != len(r32.Units) {
		t.Fatalf("unit counts differ: %d vs %d", len(r64.Units), len(r32.Units))
	}
	const relTol = 5e-2 // documented f32-vs-f64 search-score tolerance
	for i := range r64.Units {
		u64, u32 := r64.Units[i], r32.Units[i]
		if (u64.Err == "") != (u32.Err == "") {
			t.Fatalf("unit %d error mismatch: %q vs %q", i, u64.Err, u32.Err)
		}
		if len(u64.Scores) != len(u32.Scores) {
			t.Fatalf("unit %d fold counts differ", i)
		}
		for f, s64 := range u64.Scores {
			s32 := u32.Scores[f]
			if math.IsNaN(s32) != math.IsNaN(s64) {
				t.Fatalf("unit %d fold %d NaN mismatch: %v vs %v", i, f, s32, s64)
			}
			if math.Abs(s32-s64) > relTol*(math.Abs(s64)+1e-6) {
				t.Fatalf("unit %d fold %d: f32 score %v vs f64 %v exceeds %v rel tol",
					i, f, s32, s64, relTol)
			}
		}
	}
}
