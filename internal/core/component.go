// Package core implements the paper's primary contribution: the
// Transformer-Estimator Graph (TEG), a rooted DAG whose vertices are named
// machine-learning operations and whose root-to-leaf paths are pipelines.
// The package provides the component contracts, graph construction API
// (Section IV-A, Listing 1), pipeline fit/predict semantics (Figure 5), and
// the model validation and selection engine (Section IV-B, Listing 2),
// including parameter-grid expansion with the sklearn-style
// "node__param" naming convention.
package core

import (
	"fmt"
	"sort"
	"strconv"

	"coda/internal/dataset"
)

// Component is the common contract for every vertex operation in a
// Transformer-Estimator Graph. Name returns the default node name (for
// example "pca"); parameters are addressed externally as
// "<node>__<param>" per the paper's naming convention.
type Component interface {
	// Name returns the component's default node name.
	Name() string
	// SetParam sets a named hyperparameter. Unknown keys are an error.
	SetParam(key string, value float64) error
	// Params returns the current hyperparameter values.
	Params() map[string]float64
}

// Transformer is a Component whose operation rewrites a dataset: feature
// scaling, selection, projection, or time-series windowing. Fit learns any
// data-dependent state (an Estimate operation in the paper's terminology);
// Transform applies it.
type Transformer interface {
	Component
	Fit(ds *dataset.Dataset) error
	Transform(ds *dataset.Dataset) (*dataset.Dataset, error)
	// Clone returns an unfitted copy carrying the same hyperparameters,
	// so concurrent folds and paths never share mutable state.
	Clone() Transformer
}

// Estimator is a Component that learns a predictive model from a dataset
// and predicts targets for new data.
type Estimator interface {
	Component
	Fit(ds *dataset.Dataset) error
	Predict(ds *dataset.Dataset) ([]float64, error)
	// Clone returns an unfitted copy carrying the same hyperparameters.
	Clone() Estimator
}

// ComponentSpec renders a component with its parameters as a canonical,
// deterministic string such as "pca(n_components=3)". The DARR keys results
// by these specs so cooperating clients agree on what has been computed.
func ComponentSpec(c Component) string {
	params := c.Params()
	if len(params) == 0 {
		return c.Name()
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := c.Name() + "("
	for i, k := range keys {
		if i > 0 {
			s += ","
		}
		s += k + "=" + strconv.FormatFloat(params[k], 'g', -1, 64)
	}
	return s + ")"
}

// SetGraphParam applies a "node__param" assignment to the matching node
// component, returning a descriptive error when the node or parameter does
// not exist.
func setComponentParam(c Component, param string, v float64) error {
	if err := c.SetParam(param, v); err != nil {
		return fmt.Errorf("core: setting %s__%s: %w", c.Name(), param, err)
	}
	return nil
}
