package core

import (
	"fmt"
	"strings"

	"coda/internal/dataset"
)

// AffineSource is implemented by fitted transformers whose Transform is a
// pure per-column affine map: out[j] = x[j] - sub[j], then divided by
// div[j] when div[j] != 0, or forced to exactly 0 when div[j] == 0 (the
// constant-column MinMax case). All of the preprocess scalers satisfy this.
// AffineColumns must return ok = false before Fit.
type AffineSource interface {
	Transformer
	AffineColumns() (sub, div []float64, ok bool)
}

// AffineFuser is implemented by transformers that can apply a pending
// upstream affine map while building their output, skipping the
// materialisation of the scaled intermediate dataset (the tswindow
// preprocessors). TransformAffine(ds, sub, div) must be bit-identical to
// Transform applied to the affine-scaled copy of ds — including derived
// targets and affine metadata — and the implementer's Fit must not depend
// on input values (windowing is configuration-only), since under fusion
// Fit observes the pre-scaling dataset.
type AffineFuser interface {
	Transformer
	TransformAffine(ds *dataset.Dataset, sub, div []float64) (*dataset.Dataset, error)
}

// ViewFuser is implemented by windowing transformers that can emit a
// zero-copy window view (dataset.Win) over the source series — with an
// optional pending upstream affine applied per gathered element — instead
// of materialising the window matrix. TransformWindowView(ds, sub, div)
// must yield windows whose gathered values, derived targets and affine
// metadata are bit-identical to TransformAffine (or Transform, when
// sub/div are nil). Only CascadedWindows implements it today.
type ViewFuser interface {
	Transformer
	TransformWindowView(ds *dataset.Dataset, sub, div []float64) (*dataset.Dataset, error)
}

// WindowViewConsumer is implemented by estimators whose Fit/Predict accept
// a dataset carrying a window view (dataset.Win with nil X). The pipeline
// only takes the ViewFuser path when the terminal estimator opts in via
// this marker; everything else receives materialized windows as before.
type WindowViewConsumer interface {
	ConsumesWindowView() bool
}

// Pipeline is one concrete root-to-leaf path instantiated with its own
// (unshared) component copies: a sequence of transformer nodes ending in an
// estimator node. Fit implements Figure 5's training semantics — internal
// nodes run "fit & transform", the final node runs "fit" — and Predict the
// prediction semantics — internal nodes run "transform" only.
type Pipeline struct {
	Nodes []*Node

	fitted bool
}

// NewPipeline instantiates a path with fresh clones of every component, so
// pipelines built from the same graph can be fitted concurrently.
func NewPipeline(path Path) (*Pipeline, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("core: empty path")
	}
	p := &Pipeline{Nodes: make([]*Node, len(path))}
	for i, n := range path {
		if i < len(path)-1 && n.IsEstimator() {
			return nil, fmt.Errorf("core: estimator node %q before end of path", n.Name)
		}
		p.Nodes[i] = n.clone()
	}
	if !p.Nodes[len(p.Nodes)-1].IsEstimator() {
		return nil, fmt.Errorf("core: path must end in an estimator, got %q", path[len(path)-1].Name)
	}
	return p, nil
}

// Clone returns an unfitted copy carrying all current parameters.
func (p *Pipeline) Clone() *Pipeline {
	return p.CloneFrom(0)
}

// CloneFrom returns an unfitted pipeline holding clones of Nodes[start:]
// only. The search engine uses it to evaluate just the suffix below a
// prefix-cache hit without paying to clone transformer nodes it will
// never fit; CloneFrom(0) is Clone.
func (p *Pipeline) CloneFrom(start int) *Pipeline {
	out := &Pipeline{Nodes: make([]*Node, len(p.Nodes)-start)}
	for i, n := range p.Nodes[start:] {
		out.Nodes[i] = n.clone()
	}
	return out
}

// Estimator returns the terminal model node's estimator.
func (p *Pipeline) Estimator() Estimator { return p.Nodes[len(p.Nodes)-1].Estimator }

// SetParam applies a "node__param" assignment (the paper's sklearn-derived
// convention: node name, two underscores, attribute name).
func (p *Pipeline) SetParam(key string, v float64) error {
	node, param, ok := strings.Cut(key, "__")
	if !ok {
		return fmt.Errorf("core: parameter key %q is not of the form node__param", key)
	}
	for _, n := range p.Nodes {
		if n.Name != node {
			continue
		}
		if n.Estimator != nil {
			return setComponentParam(n.Estimator, param, v)
		}
		// For a chain node, the param goes to the first component in the
		// chain that accepts it (component parameter names are disjoint
		// in practice); with a single transformer it applies directly.
		if len(n.Transformers) == 1 {
			return setComponentParam(n.Transformers[0], param, v)
		}
		for _, t := range n.Transformers {
			if err := t.SetParam(param, v); err == nil {
				return nil
			}
		}
		return fmt.Errorf("core: chain node %q: no component accepts parameter %q", node, param)
	}
	return fmt.Errorf("core: no node named %q in pipeline %s", node, p.Spec())
}

// HasNode reports whether the pipeline contains the named node.
func (p *Pipeline) HasNode(name string) bool {
	for _, n := range p.Nodes {
		if n.Name == name {
			return true
		}
	}
	return false
}

// Fit trains the pipeline per Figure 5: every internal transformer node is
// fitted then applied to refresh the data for subsequent modelling, and the
// final estimator is fitted on the fully transformed data.
func (p *Pipeline) Fit(ds *dataset.Dataset) error { return p.FitFrom(0, ds) }

// FitFrom trains the pipeline suffix Nodes[start:], treating ds as data
// already transformed through Nodes[:start]. The search engine uses it to
// resume below the deepest prefix-cache hit; FitFrom(0, ds) is Fit. The
// skipped prefix nodes stay unfitted in this pipeline — prediction must
// likewise enter through PredictWithTruthFrom(start, ...).
func (p *Pipeline) FitFrom(start int, ds *dataset.Dataset) error {
	if start < 0 || start >= len(p.Nodes) {
		return fmt.Errorf("core: FitFrom start %d outside pipeline of %d nodes", start, len(p.Nodes))
	}
	cur, err := p.runTransformers(start, ds, true)
	if err != nil {
		return err
	}
	if err := p.Estimator().Fit(cur); err != nil {
		return fmt.Errorf("core: fitting estimator %q: %w", p.Nodes[len(p.Nodes)-1].Name, err)
	}
	p.fitted = true
	return nil
}

// transformOnly pushes a dataset through the fitted internal nodes.
func (p *Pipeline) transformOnly(ds *dataset.Dataset) (*dataset.Dataset, error) {
	return p.transformOnlyFrom(0, ds)
}

// transformOnlyFrom pushes ds through the fitted internal nodes starting
// at node index start (ds must already be transformed through the nodes
// before it).
func (p *Pipeline) transformOnlyFrom(start int, ds *dataset.Dataset) (*dataset.Dataset, error) {
	return p.runTransformers(start, ds, false)
}

// pipeStep is one transformer with the node it belongs to, flattened so
// fusion can look across node boundaries (scalers and windowers live in
// separate graph stages).
type pipeStep struct {
	node string
	t    Transformer
}

// runTransformers pushes ds through the transformer chain of Nodes[start:],
// fitting each transformer first when fit is set. Adjacent
// AffineSource -> AffineFuser pairs are fused: the scaler's per-column
// affine map is applied inside the windower's own copy, so the scaled
// intermediate dataset is never materialised. Fusion is bit-identical to
// the unfused chain (see AffineFuser), which the prefix cache's equivalence
// guarantee relies on — cached search paths materialise per-node
// intermediates (that is what makes them shareable, see prefixcache.go) and
// must score identically to this fused path.
func (p *Pipeline) runTransformers(start int, ds *dataset.Dataset, fit bool) (*dataset.Dataset, error) {
	var steps []pipeStep
	for _, n := range p.Nodes[start : len(p.Nodes)-1] {
		for _, t := range n.Transformers {
			steps = append(steps, pipeStep{node: n.Name, t: t})
		}
	}
	// Window→conv fusion eligibility: the terminal transformer step can
	// emit a zero-copy window view instead of the window matrix, but only
	// when the estimator declares it consumes views.
	viewOK := false
	if wc, ok := p.Estimator().(WindowViewConsumer); ok {
		viewOK = wc.ConsumesWindowView()
	}
	cur := ds
	for i := 0; i < len(steps); i++ {
		st := steps[i]
		if fit {
			if err := st.t.Fit(cur); err != nil {
				return nil, fmt.Errorf("core: fitting node %q: %w", st.node, err)
			}
		}
		if i+1 < len(steps) {
			if src, okSrc := st.t.(AffineSource); okSrc {
				if fuser, okFuse := steps[i+1].t.(AffineFuser); okFuse {
					if sub, div, fitted := src.AffineColumns(); fitted {
						if fit {
							// Windower Fit is input-value-independent
							// (AffineFuser contract), so fitting on the
							// pre-scaling data is equivalent.
							if err := fuser.Fit(cur); err != nil {
								return nil, fmt.Errorf("core: fitting node %q: %w", steps[i+1].node, err)
							}
						}
						// Three-way scaler×windower×conv fusion: when the
						// windower ends the chain and the estimator takes
						// views, skip materializing the windows too.
						if viewOK && i+1 == len(steps)-1 {
							if vf, okView := steps[i+1].t.(ViewFuser); okView {
								next, err := vf.TransformWindowView(cur, sub, div)
								if err != nil {
									return nil, fmt.Errorf("core: fused transform %q -> %q: %w", st.node, steps[i+1].node, err)
								}
								cur = next
								i++
								continue
							}
						}
						next, err := fuser.TransformAffine(cur, sub, div)
						if err != nil {
							return nil, fmt.Errorf("core: fused transform %q -> %q: %w", st.node, steps[i+1].node, err)
						}
						cur = next
						i++
						continue
					}
				}
			}
		}
		// A terminal windower with no pending scaler affine still fuses
		// with a view-consuming estimator (identity affine is exact).
		if viewOK && i == len(steps)-1 {
			if vf, okView := st.t.(ViewFuser); okView {
				next, err := vf.TransformWindowView(cur, nil, nil)
				if err != nil {
					return nil, fmt.Errorf("core: fused transform %q: %w", st.node, err)
				}
				cur = next
				continue
			}
		}
		next, err := st.t.Transform(cur)
		if err != nil {
			return nil, fmt.Errorf("core: transforming through node %q: %w", st.node, err)
		}
		cur = next
	}
	return cur, nil
}

// Predict runs Figure 5's prediction operation: transform-only through the
// internal nodes, then the trained model generates predictions. When
// scaling transformers rescaled the quantity being predicted (time-series
// pipelines derive targets from scaled series), predictions are mapped back
// to original units, so outputs — and scores — are comparable across
// scaling options.
func (p *Pipeline) Predict(ds *dataset.Dataset) ([]float64, error) {
	if !p.fitted {
		return nil, fmt.Errorf("core: pipeline %s not fitted", p.Spec())
	}
	cur, err := p.transformOnly(ds)
	if err != nil {
		return nil, err
	}
	yhat, err := p.Estimator().Predict(cur)
	if err != nil {
		return nil, err
	}
	return cur.DenormY(yhat), nil
}

// PredictWithTruth predicts and also returns the ground-truth targets after
// transformation — necessary because time-series windowing transformers
// derive the targets from the series itself, so the evaluation truth is
// only known post-transform. Both predictions and truth are mapped back to
// original units (see Predict).
func (p *Pipeline) PredictWithTruth(ds *dataset.Dataset) (yhat, ytrue []float64, err error) {
	return p.PredictWithTruthFrom(0, ds)
}

// PredictWithTruthFrom is PredictWithTruth for a pipeline fitted with
// FitFrom(start, ...): ds must already be transformed through
// Nodes[:start] (the prefix-cache's transformed test dataset).
func (p *Pipeline) PredictWithTruthFrom(start int, ds *dataset.Dataset) (yhat, ytrue []float64, err error) {
	if !p.fitted {
		return nil, nil, fmt.Errorf("core: pipeline %s not fitted", p.Spec())
	}
	cur, err := p.transformOnlyFrom(start, ds)
	if err != nil {
		return nil, nil, err
	}
	yhat, err = p.Estimator().Predict(cur)
	if err != nil {
		return nil, nil, err
	}
	return cur.DenormY(yhat), cur.DenormY(cur.Y), nil
}

// PrefixSpecs returns the canonical spec of every transformer prefix of
// the pipeline, shallowest first: element d-1 covers Nodes[:d] for
// d = 1..len(Nodes)-1 (the estimator is never part of a prefix). Specs
// render component names with resolved parameter values, so two
// differently-named graph nodes wrapping identical components share a
// spec — and therefore share prefix-cache entries, which is sound
// because they perform identical computations.
func (p *Pipeline) PrefixSpecs() []string {
	if len(p.Nodes) < 2 {
		return nil
	}
	specs := make([]string, 0, len(p.Nodes)-1)
	acc := "input"
	for _, n := range p.Nodes[:len(p.Nodes)-1] {
		acc += " -> " + n.spec()
		specs = append(specs, acc)
	}
	return specs
}

// Spec renders the pipeline with all current parameter values; together
// with a dataset fingerprint and evaluation spec it keys DARR records.
func (p *Pipeline) Spec() string {
	parts := make([]string, 0, len(p.Nodes)+1)
	parts = append(parts, "input")
	for _, n := range p.Nodes {
		parts = append(parts, n.spec())
	}
	return strings.Join(parts, " -> ")
}
