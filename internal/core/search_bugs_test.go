package core_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"coda/internal/core"
	"coda/internal/crossval"
	"coda/internal/darr"
	"coda/internal/metrics"
	"coda/internal/mlmodels"
	"coda/internal/preprocess"
)

// perUnitOnly hides a darr.Client's batch methods so the search takes
// the per-unit protocol while claim release stays available.
type perUnitOnly struct{ c *darr.Client }

func (p perUnitOnly) Lookup(ctx context.Context, key string) (float64, bool, error) {
	return p.c.Lookup(ctx, key)
}
func (p perUnitOnly) Claim(ctx context.Context, key string) (bool, error) {
	return p.c.Claim(ctx, key)
}
func (p perUnitOnly) Publish(ctx context.Context, key string, score float64, explanation string) error {
	return p.c.Publish(ctx, key, score, explanation)
}
func (p perUnitOnly) Release(ctx context.Context, key string) error {
	return p.c.Release(ctx, key)
}

var errBadScorer = errors.New("scorer exploded")

// TestFailedUnitReleasesClaim pins the claim-leak fix on both protocols:
// a unit that claims its key and then fails must release the claim so a
// second client can take the work immediately — not after the TTL.
func TestFailedUnitReleasesClaim(t *testing.T) {
	failing := metrics.Scorer{Name: "rmse", Lower: true,
		Fn: func(y, yhat []float64) (float64, error) { return 0, errBadScorer }}

	for _, tc := range []struct {
		name  string
		store func(repo *darr.Repo, id string) core.ResultStore
	}{
		{"batched", func(repo *darr.Repo, id string) core.ResultStore {
			return &darr.Client{Repo: repo, ClientID: id, Metric: "rmse"}
		}},
		{"per-unit", func(repo *darr.Repo, id string) core.ResultStore {
			return perUnitOnly{&darr.Client{Repo: repo, ClientID: id, Metric: "rmse"}}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ds := regDS(t, 80)
			repo := darr.NewRepo(nil, time.Hour) // TTL long enough to expose any leak
			opts := core.SearchOptions{
				Splitter:    crossval.KFold{K: 3, Shuffle: true},
				Scorer:      failing,
				Seed:        2,
				Store:       tc.store(repo, "alice"),
				SkipClaimed: true,
			}
			res, err := core.Search(context.Background(), degradedGraph(), ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range res.Units {
				if u.Err == "" || u.Skipped {
					t.Fatalf("unit %s err=%q skipped=%v, want every unit failed", u.Spec, u.Err, u.Skipped)
				}
			}
			if n := repo.ActiveClaims(); n != 0 {
				t.Fatalf("%d claims leaked by failed units", n)
			}
			// A second client gets the work immediately: nothing skipped.
			opts.Store = tc.store(repo, "bob")
			second, err := core.Search(context.Background(), degradedGraph(), ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			if second.Skipped != 0 {
				t.Fatalf("second client skipped %d units: failed claims were not released", second.Skipped)
			}
			if n := repo.ActiveClaims(); n != 0 {
				t.Fatalf("%d claims leaked by the second client", n)
			}
		})
	}
}

// TestNaNScorerNeverBest pins the non-finite guard: a scorer that
// returns NaN must yield failed units, never an unbeatable Best, and
// must publish nothing to the shared repository.
func TestNaNScorerNeverBest(t *testing.T) {
	nan := metrics.Scorer{Name: "rmse", Lower: true,
		Fn: func(y, yhat []float64) (float64, error) { return math.NaN(), nil }}
	ds := regDS(t, 80)
	store := newMemStore()
	res, err := core.Search(context.Background(), degradedGraph(), ds, core.SearchOptions{
		Splitter: crossval.KFold{K: 3, Shuffle: true},
		Scorer:   nan,
		Store:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil || res.BestPipeline != nil {
		t.Fatalf("NaN-scoring unit became Best: %+v", res.Best)
	}
	for _, u := range res.Units {
		if !strings.Contains(u.Err, "non-finite") {
			t.Fatalf("unit %s err=%q, want non-finite failure", u.Spec, u.Err)
		}
	}
	if store.pubs != 0 {
		t.Fatalf("%d NaN scores published to the shared store", store.pubs)
	}
}

// TestCachedNaNNeverBest: a poisoned repository entry (a peer published
// NaN) is served as a cache hit but must not win best-unit selection.
func TestCachedNaNNeverBest(t *testing.T) {
	ds := regDS(t, 80)
	scorer, _ := metrics.ScorerByName("rmse")
	store := newMemStore()
	opts := core.SearchOptions{
		Splitter: crossval.KFold{K: 3, Shuffle: true},
		Scorer:   scorer,
		Store:    store,
	}
	if _, err := core.Search(context.Background(), degradedGraph(), ds, opts); err != nil {
		t.Fatal(err)
	}
	for k := range store.scores {
		store.scores[k] = math.NaN()
	}
	res, err := core.Search(context.Background(), degradedGraph(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 4 {
		t.Fatalf("cache hits %d, want all units cached", res.CacheHits)
	}
	if res.Best != nil {
		t.Fatalf("poisoned NaN cache entry became Best: %+v", res.Best)
	}
}

// emptySplitter returns no folds, the empty-fold poisoning case: the
// mean over zero scores is 0/0 = NaN.
type emptySplitter struct{}

func (emptySplitter) Splits(int, *rand.Rand) ([]crossval.Split, error) { return nil, nil }
func (emptySplitter) Spec() string                                     { return "empty" }

// TestEmptyFoldSetRecordsFailure: zero cross-validation folds must fail
// every unit instead of crowning a NaN-mean Best.
func TestEmptyFoldSetRecordsFailure(t *testing.T) {
	ds := regDS(t, 40)
	scorer, _ := metrics.ScorerByName("rmse")
	res, err := core.Search(context.Background(), degradedGraph(), ds, core.SearchOptions{
		Splitter: emptySplitter{},
		Scorer:   scorer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil {
		t.Fatalf("empty-fold unit became Best with mean %v", res.Best.Mean)
	}
	for _, u := range res.Units {
		if !strings.Contains(u.Err, "non-finite") {
			t.Fatalf("unit %s err=%q, want non-finite failure", u.Spec, u.Err)
		}
	}
}

// TestDuplicateSpecsRefitByIndex pins the indexOfSpec fix: units from
// duplicate graph paths share spec and params, so only the carried unit
// index can map the winner back to its pipeline.
func TestDuplicateSpecsRefitByIndex(t *testing.T) {
	g := core.NewGraph()
	g.AddFeatureScalers(preprocess.NewNoOp(), preprocess.NewNoOp())
	g.AddRegressionModels(mlmodels.NewLinearRegression())
	ds := regDS(t, 80)
	scorer, _ := metrics.ScorerByName("rmse")
	res, err := core.Search(context.Background(), g, ds, core.SearchOptions{
		Splitter: crossval.KFold{K: 3, Shuffle: true},
		Scorer:   scorer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Units) != 2 || res.Units[0].Spec != res.Units[1].Spec {
		t.Fatalf("want two duplicate-spec units, got %+v", res.Units)
	}
	for i, u := range res.Units {
		if u.Index != i {
			t.Fatalf("unit %d carries index %d", i, u.Index)
		}
	}
	if res.Best == nil || res.BestPipeline == nil {
		t.Fatal("search over duplicate specs must still produce a refitted winner")
	}
	if res.Best.Index != res.Units[res.Best.Index].Index {
		t.Fatalf("best index %d does not match its unit", res.Best.Index)
	}
}
