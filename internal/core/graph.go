package core

import (
	"fmt"
	"sort"
	"strings"
)

// Node is one vertex of a Transformer-Estimator Graph: a unique name plus
// the operation it performs (a chain of one or more Transformers, or an
// Estimator). Per the paper, the name is the placeholder through which
// external information — parameters named "<node>__<param>" — reaches the
// operation.
type Node struct {
	Name         string
	Transformers []Transformer // non-nil for transformer nodes
	Estimator    Estimator     // non-nil for estimator nodes
}

// IsEstimator reports whether the node is a model (leaf-stage) vertex.
func (n *Node) IsEstimator() bool { return n.Estimator != nil }

// spec renders the node with its current parameters.
func (n *Node) spec() string {
	if n.IsEstimator() {
		return ComponentSpec(n.Estimator)
	}
	parts := make([]string, len(n.Transformers))
	for i, t := range n.Transformers {
		parts[i] = ComponentSpec(t)
	}
	return strings.Join(parts, "+")
}

// clone deep-copies the node with unfitted components.
func (n *Node) clone() *Node {
	out := &Node{Name: n.Name}
	if n.Estimator != nil {
		out.Estimator = n.Estimator.Clone()
	}
	for _, t := range n.Transformers {
		out.Transformers = append(out.Transformers, t.Clone())
	}
	return out
}

// Stage is one layer of the graph: a named modelling step with multiple
// candidate operations (Table I's rows).
type Stage struct {
	Name    string
	Options []*Node
}

// Graph is a Transformer-Estimator Graph G(V, E): a rooted, staged DAG.
// Build it with the Add* methods (mirroring the paper's Listing 1), then
// optionally restrict stage-to-stage connectivity with Connect — by
// default every option connects to every option of the next stage, as in
// Figure 3; Figure 11's selective wiring uses explicit edges.
//
// Builder errors stick to the graph and surface from Finalize/Paths, so
// construction code can chain calls without per-call error checks.
type Graph struct {
	stages []*Stage
	// explicit edges: fromNode -> set of allowed toNodes in the next
	// stage. A from-node absent from the map connects to all options.
	edges map[string]map[string]bool
	names map[string]*Node
	err   error
}

// NewGraph returns an empty Transformer-Estimator Graph.
func NewGraph() *Graph {
	return &Graph{edges: map[string]map[string]bool{}, names: map[string]*Node{}}
}

// Err returns the first builder error, if any.
func (g *Graph) Err() error { return g.err }

func (g *Graph) fail(format string, args ...any) {
	if g.err == nil {
		g.err = fmt.Errorf(format, args...)
	}
}

// register gives the node a unique name (appending _2, _3, ... on
// collision) and indexes it.
func (g *Graph) register(n *Node, base string) {
	name := base
	for i := 2; ; i++ {
		if _, taken := g.names[name]; !taken {
			break
		}
		name = fmt.Sprintf("%s_%d", base, i)
	}
	n.Name = name
	g.names[name] = n
}

// lastStageIsEstimator reports whether an estimator stage has been added
// (estimator stages are terminal).
func (g *Graph) lastStageIsEstimator() bool {
	if len(g.stages) == 0 {
		return false
	}
	opts := g.stages[len(g.stages)-1].Options
	return len(opts) > 0 && opts[0].IsEstimator()
}

// AddTransformerStage appends a stage whose options are single
// transformers. The stage name is only a label; node names derive from the
// transformers themselves.
func (g *Graph) AddTransformerStage(stageName string, options ...Transformer) *Graph {
	chains := make([][]Transformer, len(options))
	for i, t := range options {
		chains[i] = []Transformer{t}
	}
	return g.AddChainStage(stageName, chains...)
}

// AddChainStage appends a stage whose options may be chains of
// transformers, as in Listing 1's [Covariance(), PCA()] option. A chained
// node is named by joining its component names with "+".
func (g *Graph) AddChainStage(stageName string, options ...[]Transformer) *Graph {
	if g.err != nil {
		return g
	}
	if g.lastStageIsEstimator() {
		g.fail("core: cannot add stage %q after the estimator stage", stageName)
		return g
	}
	if len(options) == 0 {
		g.fail("core: stage %q has no options", stageName)
		return g
	}
	st := &Stage{Name: stageName}
	for _, chain := range options {
		if len(chain) == 0 {
			g.fail("core: stage %q contains an empty chain option", stageName)
			return g
		}
		names := make([]string, len(chain))
		for i, t := range chain {
			if t == nil {
				g.fail("core: stage %q contains a nil transformer", stageName)
				return g
			}
			names[i] = t.Name()
		}
		n := &Node{Transformers: chain}
		g.register(n, strings.Join(names, "+"))
		st.Options = append(st.Options, n)
	}
	g.stages = append(g.stages, st)
	return g
}

// AddEstimatorStage appends the terminal modelling stage.
func (g *Graph) AddEstimatorStage(stageName string, options ...Estimator) *Graph {
	if g.err != nil {
		return g
	}
	if g.lastStageIsEstimator() {
		g.fail("core: graph already has an estimator stage")
		return g
	}
	if len(options) == 0 {
		g.fail("core: estimator stage %q has no options", stageName)
		return g
	}
	st := &Stage{Name: stageName}
	for _, e := range options {
		if e == nil {
			g.fail("core: stage %q contains a nil estimator", stageName)
			return g
		}
		n := &Node{Estimator: e}
		g.register(n, e.Name())
		st.Options = append(st.Options, n)
	}
	g.stages = append(g.stages, st)
	return g
}

// AddFeatureScalers mirrors Listing 1's add_feature_scalers.
func (g *Graph) AddFeatureScalers(options ...Transformer) *Graph {
	return g.AddTransformerStage("feature scaling", options...)
}

// AddFeatureSelectors mirrors Listing 1's add_feature_selector; options may
// be chains such as {Covariance, PCA}.
func (g *Graph) AddFeatureSelectors(options ...[]Transformer) *Graph {
	return g.AddChainStage("feature selection", options...)
}

// AddRegressionModels mirrors Listing 1's add_regression_models.
func (g *Graph) AddRegressionModels(options ...Estimator) *Graph {
	return g.AddEstimatorStage("regression", options...)
}

// Connect restricts the edge set: once called for a from-node, that node
// connects only to the to-nodes named in Connect calls (which must live in
// the immediately following stage). Nodes never named as a from keep the
// default all-to-all connectivity.
func (g *Graph) Connect(from, to string) *Graph {
	if g.err != nil {
		return g
	}
	fromNode, ok := g.names[from]
	if !ok {
		g.fail("core: Connect: unknown node %q", from)
		return g
	}
	toNode, ok := g.names[to]
	if !ok {
		g.fail("core: Connect: unknown node %q", to)
		return g
	}
	fs, ts := g.stageOf(fromNode), g.stageOf(toNode)
	if ts != fs+1 {
		g.fail("core: Connect: %q (stage %d) and %q (stage %d) are not adjacent", from, fs, to, ts)
		return g
	}
	if g.edges[from] == nil {
		g.edges[from] = map[string]bool{}
	}
	g.edges[from][to] = true
	return g
}

func (g *Graph) stageOf(n *Node) int {
	for i, st := range g.stages {
		for _, opt := range st.Options {
			if opt == n {
				return i
			}
		}
	}
	return -1
}

// NodeByName returns the named node, for parameter inspection.
func (g *Graph) NodeByName(name string) (*Node, bool) {
	n, ok := g.names[name]
	return n, ok
}

// NodeNames returns all node names in stage order.
func (g *Graph) NodeNames() []string {
	var out []string
	for _, st := range g.stages {
		for _, opt := range st.Options {
			out = append(out, opt.Name)
		}
	}
	return out
}

// Stages returns the graph's stages in order.
func (g *Graph) Stages() []*Stage { return g.stages }

// Finalize validates the graph: builder errors, at least one stage, a
// terminal estimator stage, and every node reachable and co-reachable given
// the explicit edges.
func (g *Graph) Finalize() error {
	if g.err != nil {
		return g.err
	}
	if len(g.stages) == 0 {
		return fmt.Errorf("core: graph has no stages")
	}
	if !g.lastStageIsEstimator() {
		return fmt.Errorf("core: graph must end with an estimator stage (call AddEstimatorStage)")
	}
	if len(g.Paths()) == 0 {
		return fmt.Errorf("core: graph has no complete root-to-leaf paths; check Connect calls")
	}
	return nil
}

// allowed reports whether an edge from -> to is in E.
func (g *Graph) allowed(from, to *Node) bool {
	set, restricted := g.edges[from.Name]
	if !restricted {
		return true
	}
	return set[to.Name]
}

// Path is one root-to-leaf pipeline skeleton: one option per stage.
type Path []*Node

// Spec renders the path as the paper writes pipelines:
// "input -> robustscaler -> selectkbest(k=3) -> decisiontree(...)".
func (p Path) Spec() string {
	parts := make([]string, 0, len(p)+1)
	parts = append(parts, "input")
	for _, n := range p {
		parts = append(parts, n.spec())
	}
	return strings.Join(parts, " -> ")
}

// Paths enumerates every root-to-leaf path respecting the edge set.
func (g *Graph) Paths() []Path {
	if g.err != nil || len(g.stages) == 0 {
		return nil
	}
	var out []Path
	var walk func(stage int, acc Path)
	walk = func(stage int, acc Path) {
		if stage == len(g.stages) {
			out = append(out, append(Path(nil), acc...))
			return
		}
		for _, opt := range g.stages[stage].Options {
			if len(acc) > 0 && !g.allowed(acc[len(acc)-1], opt) {
				continue
			}
			walk(stage+1, append(acc, opt))
		}
	}
	walk(0, nil)
	return out
}

// NumPipelines returns the number of root-to-leaf paths (36 for the Figure
// 3 working example).
func (g *Graph) NumPipelines() int { return len(g.Paths()) }

// DOT renders the graph in Graphviz format — the visual-inspection output
// of Listing 1's create_graph method.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph TEG {\n  rankdir=LR;\n  input [shape=circle];\n")
	for _, st := range g.stages {
		for _, opt := range st.Options {
			shape := "box"
			if opt.IsEstimator() {
				shape = "ellipse"
			}
			fmt.Fprintf(&b, "  %q [shape=%s, label=%q];\n", opt.Name, shape, opt.Name)
		}
	}
	if len(g.stages) > 0 {
		for _, opt := range g.stages[0].Options {
			fmt.Fprintf(&b, "  input -> %q;\n", opt.Name)
		}
	}
	for i := 0; i+1 < len(g.stages); i++ {
		for _, from := range g.stages[i].Options {
			var tos []string
			for _, to := range g.stages[i+1].Options {
				if g.allowed(from, to) {
					tos = append(tos, to.Name)
				}
			}
			sort.Strings(tos)
			for _, to := range tos {
				fmt.Fprintf(&b, "  %q -> %q;\n", from.Name, to)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
