package core

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"coda/internal/crossval"
	"coda/internal/dataset"
	"coda/internal/obs"
)

// The paper's Transformer-Estimator Graph exists because root-to-leaf
// paths share transformer prefixes, and the DARR avoids recomputing work
// across clients. This file closes the remaining gap within a client: a
// search over S scalers x F selectors x E estimators used to re-fit every
// shared transformer prefix once per unit per fold (S*F*E*K scaler fits),
// even though only S*K distinct scaler fits exist. The fold plan
// materializes each CV split's train/test datasets once per search, and
// the prefix cache memoizes (fold, canonical prefix spec) -> transformed
// train/test datasets behind a byte-bounded LRU with singleflight
// deduplication, so concurrent workers never fit the same prefix twice
// and each unit fits only the suffix below its deepest cache hit.
//
// The cached path is bit-identical to the naive path: entries hold the
// exact datasets the per-unit fit chain would have produced (fitting is
// deterministic), and datasets are immutable once built — transformers
// clone matrices before writing and estimators copy what they keep.

// Prefix-cache telemetry: the scoreboard for the within-client reuse
// claim, mirroring the DARR counters for the cross-client one.
var (
	mPrefixHits      = obs.GetCounter("coda_search_prefix_cache_hits_total")
	mPrefixMisses    = obs.GetCounter("coda_search_prefix_cache_misses_total")
	mPrefixEvictions = obs.GetCounter("coda_search_prefix_cache_evictions_total")
	mPrefixFits      = obs.GetCounter("coda_search_prefix_fits_total")
	// Cache bytes are split by element width: the f64 series counts the
	// cached datasets themselves (8 bytes/element), the f32 series counts
	// lazily built float32 mirrors (4 bytes/element) that reduced-precision
	// fits hang off cached entries. Both count against -prefix-cache-mb.
	gPrefixBytesF64 = obs.GetGauge(`coda_search_prefix_cache_bytes{precision="f64"}`)
	gPrefixBytesF32 = obs.GetGauge(`coda_search_prefix_cache_bytes{precision="f32"}`)
	mFoldsBuilt     = obs.GetCounter("coda_search_fold_datasets_total")
)

// DefaultPrefixCacheMB is the prefix-cache capacity used when
// SearchOptions leaves PrefixCacheMB and PrefixCacheBytes zero.
const DefaultPrefixCacheMB = 64

// PrefixCacheStats reports how one search's shared-prefix cache behaved.
// Absent evictions, Fits == DistinctPrefixes: every distinct
// (fold, prefix) pair was fitted exactly once no matter how many units
// shared it. The bench suite gates on that invariant.
type PrefixCacheStats struct {
	// Hits counts prefix resolutions served from the cache, including
	// waits on an in-flight computation (singleflight joins).
	Hits int64
	// Misses counts resolutions that had to compute the prefix.
	Misses int64
	// Evictions counts completed entries dropped by the byte-bounded LRU.
	Evictions int64
	// Fits counts transformer-node fit+transform computations performed.
	Fits int64
	// DistinctPrefixes counts distinct (fold, prefix spec) pairs the
	// search requested — the floor for Fits.
	DistinctPrefixes int64
	// Folds is the number of materialized cross-validation splits.
	Folds int
}

// foldData is one materialized cross-validation split: the train and
// test datasets every unit shares, built once per search instead of
// re-copied from the full dataset by every unit x fold evaluation.
type foldData struct {
	train, test *dataset.Dataset
}

// materializeFolds subsets the dataset once per split. The results are
// shared read-only across all worker goroutines.
func materializeFolds(ds *dataset.Dataset, splits []crossval.Split) []foldData {
	folds := make([]foldData, len(splits))
	for i, sp := range splits {
		folds[i] = foldData{train: ds.Subset(sp.Train), test: ds.Subset(sp.Test)}
		mFoldsBuilt.Add(2)
	}
	return folds
}

// prefixKey identifies one cached computation: a fold index plus the
// canonical spec of the transformer prefix (node component names with
// resolved parameter values, rendered by Pipeline.PrefixSpecs).
type prefixKey struct {
	fold int
	spec string
}

// prefixEntry is one cache slot. done closes when the computation
// finishes; waiters block on it (singleflight). Results are written
// before close, so receivers observe them without further locking.
type prefixEntry struct {
	key         prefixKey
	done        chan struct{}
	train, test *dataset.Dataset
	err         error
	size        int64
	// size32 is the portion of size contributed by float32 mirrors built
	// after the entry landed (reduced-precision fits); tracked separately
	// so the per-width gauges stay exact through eviction.
	size32 int64
	// ready flips under the cache lock when results are in; only ready
	// entries are evictable, so an in-flight computation is never torn
	// out from under its waiters.
	ready bool
	// evicted marks entries removed from the LRU; a computation that
	// finishes after its entry was evicted skips byte accounting.
	evicted bool
}

// prefixCache memoizes fitted transformer prefixes for one search. It is
// byte-bounded: completed entries are LRU-evicted once the total
// estimated dataset size exceeds maxBytes. Error entries are cached too
// (fits are deterministic, so the error would simply recur) at zero cost.
type prefixCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	bytes32  int64 // portion of bytes held by float32 mirrors
	entries  map[prefixKey]*list.Element
	ll       *list.List // of *prefixEntry; front = most recently used
	// seen records every key ever requested, never evicted, so stats can
	// report the distinct-pair floor for Fits.
	seen map[prefixKey]struct{}

	hits, misses, evictions, fits int64
}

func newPrefixCache(maxBytes int64) *prefixCache {
	if maxBytes <= 0 {
		maxBytes = int64(DefaultPrefixCacheMB) << 20
	}
	return &prefixCache{
		maxBytes: maxBytes,
		entries:  map[prefixKey]*list.Element{},
		ll:       list.New(),
		seen:     map[prefixKey]struct{}{},
	}
}

// capBytes resolves the configured prefix-cache capacity.
func (o SearchOptions) capBytes() int64 {
	if o.PrefixCacheBytes > 0 {
		return o.PrefixCacheBytes
	}
	if o.PrefixCacheMB > 0 {
		return int64(o.PrefixCacheMB) << 20
	}
	return int64(DefaultPrefixCacheMB) << 20
}

// resolve walks the pipeline's transformer prefixes from the fold's raw
// datasets down to the deepest level, getting or computing each level
// from the previous one. It returns the transformed train/test datasets
// and the node index evaluation should resume from (the full transformer
// depth on success). An error fitting or transforming any prefix level is
// the same error the naive per-unit chain would have hit.
func (c *prefixCache) resolve(ctx context.Context, fold int, p *Pipeline, prefixes []string, fd foldData) (train, test *dataset.Dataset, depth int, err error) {
	train, test = fd.train, fd.test
	for d, spec := range prefixes {
		node := p.Nodes[d]
		prevTrain, prevTest := train, test
		train, test, err = c.getOrCompute(ctx, prefixKey{fold: fold, spec: spec}, func() (*dataset.Dataset, *dataset.Dataset, error) {
			return fitPrefixNode(node, prevTrain, prevTest)
		})
		if err != nil {
			return nil, nil, 0, err
		}
		depth = d + 1
	}
	return train, test, depth, nil
}

// getOrCompute returns the cached datasets for key, joining an in-flight
// computation when one exists, or computes and caches them. Waiting
// respects ctx so a cancelled search never blocks on a peer's fit.
func (c *prefixCache) getOrCompute(ctx context.Context, key prefixKey, compute func() (*dataset.Dataset, *dataset.Dataset, error)) (*dataset.Dataset, *dataset.Dataset, error) {
	c.mu.Lock()
	c.seen[key] = struct{}{}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*prefixEntry)
		c.ll.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		mPrefixHits.Inc()
		select {
		case <-e.done:
			return e.train, e.test, e.err
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	e := &prefixEntry{key: key, done: make(chan struct{})}
	el := c.ll.PushFront(e)
	c.entries[key] = el
	c.misses++
	c.fits++
	c.mu.Unlock()
	mPrefixMisses.Inc()
	mPrefixFits.Inc()

	train, test, err := compute()

	c.mu.Lock()
	e.train, e.test, e.err = train, test, err
	if err == nil {
		// Conservative estimate: pass-through nodes (NoOp) alias their
		// input datasets, so an aliased entry is charged again; that only
		// makes eviction earlier, never correctness-relevant.
		e.size = datasetBytes(train) + datasetBytes(test)
		c.installMirror(e, train)
		c.installMirror(e, test)
	}
	e.ready = true
	if !e.evicted {
		c.bytes += e.size
		gPrefixBytesF64.Add(float64(e.size))
		c.evictLocked(el)
	}
	c.mu.Unlock()
	close(e.done)
	return train, test, err
}

// installMirror hangs a lazy float32 mirror off a cached dataset so
// reduced-precision estimators sharing the entry convert X/Y once instead
// of per fit. The mirror's build callback charges its 4-byte-per-element
// footprint to the entry (and the cap) the moment it materializes. Caller
// holds c.mu; aliased datasets (NoOp pass-through) keep their first mirror.
func (c *prefixCache) installMirror(e *prefixEntry, ds *dataset.Dataset) {
	if ds == nil || ds.X == nil || ds.Mirror != nil {
		return
	}
	ds.Mirror = dataset.NewF32Mirror(func(b int64) {
		c.mu.Lock()
		defer c.mu.Unlock()
		e.size += b
		e.size32 += b
		if e.evicted {
			return
		}
		c.bytes += b
		c.bytes32 += b
		gPrefixBytesF32.Add(float64(b))
		c.evictLocked(nil)
	})
}

// datasetBytes estimates a dataset's retained memory at its actual element
// width: float64 payloads at 8 bytes per element. A fused window view (X
// nil) aliases the source series, so only its affine vectors are charged;
// float32 mirror bytes are charged separately when a mirror materializes.
func datasetBytes(ds *dataset.Dataset) int64 {
	if ds == nil {
		return 0
	}
	n := int64(len(ds.Y)+len(ds.ColScale)+len(ds.ColOffset)) * 8
	if ds.X != nil {
		n += int64(len(ds.X.Data())) * 8
	} else if ds.Win != nil {
		n += int64(len(ds.Win.Sub)+len(ds.Win.Div)) * 8
	}
	for _, s := range ds.ColNames {
		n += int64(len(s))
	}
	return n + 64
}

// evictLocked drops least-recently-used completed entries until the cache
// fits its byte bound. In-flight entries and keep are never evicted, so a
// single oversized entry can briefly pin the cache above its cap; it
// becomes evictable as soon as anything newer lands. Caller holds c.mu.
func (c *prefixCache) evictLocked(keep *list.Element) {
	for c.bytes > c.maxBytes {
		el := c.ll.Back()
		for el != nil {
			e := el.Value.(*prefixEntry)
			if el != keep && e.ready {
				break
			}
			el = el.Prev()
		}
		if el == nil {
			return
		}
		e := el.Value.(*prefixEntry)
		c.ll.Remove(el)
		delete(c.entries, e.key)
		e.evicted = true
		c.bytes -= e.size
		c.bytes32 -= e.size32
		gPrefixBytesF64.Add(-float64(e.size - e.size32))
		gPrefixBytesF32.Add(-float64(e.size32))
		c.evictions++
		mPrefixEvictions.Inc()
	}
}

// release returns the cache's bytes to the process-wide gauge when the
// search finishes; entry data is garbage as soon as callers drop it.
func (c *prefixCache) release() {
	c.mu.Lock()
	defer c.mu.Unlock()
	gPrefixBytesF64.Add(-float64(c.bytes - c.bytes32))
	gPrefixBytesF32.Add(-float64(c.bytes32))
	c.bytes = 0
	c.bytes32 = 0
}

// stats snapshots the cache counters for SearchResult.
func (c *prefixCache) stats(folds int) PrefixCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PrefixCacheStats{
		Hits:             c.hits,
		Misses:           c.misses,
		Evictions:        c.evictions,
		Fits:             c.fits,
		DistinctPrefixes: int64(len(c.seen)),
		Folds:            folds,
	}
}

// fitPrefixNode extends a cached prefix by one level: it fits a fresh
// clone of node on the (already prefix-transformed) training data and
// pushes both train and test through it — the same per-node work
// Pipeline.Fit and transformOnly would do, producing bit-identical
// datasets. It deliberately does NOT use the AffineSource/AffineFuser
// fusion from runTransformers: the cache's whole purpose is to
// materialise and share per-node intermediates across pipelines, and
// fusion is bit-identical to the unfused chain by contract, so cached
// and fused paths still score identically.
func fitPrefixNode(node *Node, train, test *dataset.Dataset) (trainOut, testOut *dataset.Dataset, err error) {
	n := node.clone()
	trainOut = train
	for _, t := range n.Transformers {
		if err := t.Fit(trainOut); err != nil {
			return nil, nil, fmt.Errorf("core: fitting node %q: %w", n.Name, err)
		}
		next, err := t.Transform(trainOut)
		if err != nil {
			return nil, nil, fmt.Errorf("core: transforming through node %q: %w", n.Name, err)
		}
		trainOut = next
	}
	testOut = test
	for _, t := range n.Transformers {
		next, err := t.Transform(testOut)
		if err != nil {
			return nil, nil, fmt.Errorf("core: transforming through node %q: %w", n.Name, err)
		}
		testOut = next
	}
	return trainOut, testOut, nil
}
