package core_test

import (
	"context"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"coda/internal/core"
	"coda/internal/crossval"
	"coda/internal/dataset"
	"coda/internal/metrics"
	"coda/internal/mlmodels"
	"coda/internal/obs"
	"coda/internal/preprocess"
)

// searchGraphs enumerates the graph shapes the equivalence property runs
// over, including a duplicate-spec graph (the same component registered
// twice produces differently-named nodes with identical specs — prefix
// entries and DARR keys must still resolve correctly).
func searchGraphs() map[string]func() *core.Graph {
	return map[string]func() *core.Graph{
		"fig3": func() *core.Graph {
			g := core.NewGraph()
			g.AddFeatureScalers(
				preprocess.NewMinMaxScaler(),
				preprocess.NewStandardScaler(),
				preprocess.NewRobustScaler(),
				preprocess.NewNoOp(),
			)
			g.AddFeatureSelectors(
				[]core.Transformer{preprocess.NewCovariance(), preprocess.NewPCA(3)},
				[]core.Transformer{preprocess.NewSelectKBest(3)},
				[]core.Transformer{preprocess.NewNoOp()},
			)
			g.AddRegressionModels(
				mlmodels.NewDecisionTree(mlmodels.TreeRegression),
				mlmodels.NewKNN(mlmodels.KNNRegression, 5),
			)
			return g
		},
		"duplicate-specs": func() *core.Graph {
			g := core.NewGraph()
			g.AddFeatureScalers(
				preprocess.NewStandardScaler(),
				preprocess.NewStandardScaler(), // registers as standardscaler_2, same spec
			)
			g.AddRegressionModels(
				mlmodels.NewLinearRegression(),
				mlmodels.NewLinearRegression(),
			)
			return g
		},
		"single-stage": func() *core.Graph {
			g := core.NewGraph()
			g.AddRegressionModels(
				mlmodels.NewLinearRegression(),
				mlmodels.NewKNN(mlmodels.KNNRegression, 3),
			)
			return g
		},
		"with-failures": func() *core.Graph {
			g := core.NewGraph()
			g.AddFeatureScalers(preprocess.NewStandardScaler(), preprocess.NewNoOp())
			// PCA demanding more components than features fails on every
			// path through it; the noop paths succeed.
			g.AddFeatureSelectors(
				[]core.Transformer{preprocess.NewPCA(99)},
				[]core.Transformer{preprocess.NewNoOp()},
			)
			g.AddRegressionModels(mlmodels.NewLinearRegression())
			return g
		},
	}
}

// runBoth executes the same search with the prefix cache on and off and
// returns both results.
func runBoth(t *testing.T, build func() *core.Graph, ds *dataset.Dataset, opts core.SearchOptions) (on, off *core.SearchResult) {
	t.Helper()
	opts.DisablePrefixCache = false
	on, err := core.Search(context.Background(), build(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DisablePrefixCache = true
	off, err = core.Search(context.Background(), build(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	return on, off
}

// assertSearchEquivalent requires the cached and naive searches to be
// bit-identical where it matters: unit specs, failure status, per-fold
// scores, means, and the winning unit.
func assertSearchEquivalent(t *testing.T, on, off *core.SearchResult) {
	t.Helper()
	if len(on.Units) != len(off.Units) {
		t.Fatalf("unit count: cache-on %d, cache-off %d", len(on.Units), len(off.Units))
	}
	for i := range on.Units {
		a, b := on.Units[i], off.Units[i]
		if a.Spec != b.Spec {
			t.Fatalf("unit %d spec diverged:\n  on : %s\n  off: %s", i, a.Spec, b.Spec)
		}
		if (a.Err == "") != (b.Err == "") {
			t.Fatalf("unit %d (%s) failure status diverged: on=%q off=%q", i, a.Spec, a.Err, b.Err)
		}
		if a.Err != "" {
			continue
		}
		if len(a.Scores) != len(b.Scores) {
			t.Fatalf("unit %d fold count: on=%d off=%d", i, len(a.Scores), len(b.Scores))
		}
		for f := range a.Scores {
			if math.Float64bits(a.Scores[f]) != math.Float64bits(b.Scores[f]) {
				t.Fatalf("unit %d fold %d score not bit-identical: on=%v off=%v", i, f, a.Scores[f], b.Scores[f])
			}
		}
		if math.Float64bits(a.Mean) != math.Float64bits(b.Mean) {
			t.Fatalf("unit %d mean not bit-identical: on=%v off=%v", i, a.Mean, b.Mean)
		}
	}
	switch {
	case (on.Best == nil) != (off.Best == nil):
		t.Fatalf("best presence diverged: on=%v off=%v", on.Best, off.Best)
	case on.Best != nil:
		if on.Best.Index != off.Best.Index || math.Float64bits(on.Best.Mean) != math.Float64bits(off.Best.Mean) {
			t.Fatalf("best diverged: on=#%d %v, off=#%d %v",
				on.Best.Index, on.Best.Mean, off.Best.Index, off.Best.Mean)
		}
	}
}

// TestPrefixCacheEquivalence is the cache-on vs cache-off property over
// seeds and graph shapes: identical Best, per-unit scores, and DARR
// publishes.
func TestPrefixCacheEquivalence(t *testing.T) {
	scorer, _ := metrics.ScorerByName("rmse")
	for name, build := range searchGraphs() {
		for _, seed := range []int64{1, 7, 42} {
			rng := rand.New(rand.NewSource(seed))
			ds, _, err := dataset.MakeRegression(dataset.RegressionSpec{
				Samples: 90, Features: 6, Informative: 3, Noise: 2,
			}, rng)
			if err != nil {
				t.Fatal(err)
			}
			grid := map[string][]float64{"selectkbest__k": {2, 4}}
			opts := core.SearchOptions{
				Splitter:    crossval.KFold{K: 4, Shuffle: true},
				Scorer:      scorer,
				ParamGrid:   grid,
				Parallelism: 4,
				Seed:        seed,
			}
			on, off := runBoth(t, build, ds, opts)
			assertSearchEquivalent(t, on, off)

			// DARR publishes must match bit for bit: same keys, same
			// scores. Which duplicate-spec unit borrows a published score
			// vs computes it is timing-dependent under parallel workers,
			// so this pass pins Parallelism to 1.
			storeOn, storeOff := newMemStore(), newMemStore()
			opts.Parallelism = 1
			opts.DisablePrefixCache = false
			opts.Store = storeOn
			on, err = core.Search(context.Background(), build(), ds, opts)
			if err != nil {
				t.Fatalf("%s seed %d cache-on: %v", name, seed, err)
			}
			opts.Store = storeOff
			opts.DisablePrefixCache = true
			off, err = core.Search(context.Background(), build(), ds, opts)
			if err != nil {
				t.Fatalf("%s seed %d cache-off: %v", name, seed, err)
			}
			assertSearchEquivalent(t, on, off)
			pubOn, pubOff := storeOn.snapshotScores(), storeOff.snapshotScores()
			if len(pubOn) != len(pubOff) {
				t.Fatalf("%s seed %d: %d publishes cached vs %d naive",
					name, seed, len(pubOn), len(pubOff))
			}
			for k, v := range pubOn {
				w, ok := pubOff[k]
				if !ok {
					t.Fatalf("%s seed %d: key published only with cache: %s", name, seed, k)
				}
				if math.Float64bits(v) != math.Float64bits(w) {
					t.Fatalf("%s seed %d: published score diverged for %s: %v vs %v", name, seed, k, v, w)
				}
			}
		}
	}
}

// TestPrefixCacheStats checks the reuse accounting: with ample capacity
// every distinct (fold, prefix) pair is fitted exactly once and shared
// prefixes produce hits.
func TestPrefixCacheStats(t *testing.T) {
	scorer, _ := metrics.ScorerByName("rmse")
	ds := regDS(t, 80)
	res, err := core.Search(context.Background(), fig3Graph(t), ds, core.SearchOptions{
		Splitter:    crossval.KFold{K: 3, Shuffle: true},
		Scorer:      scorer,
		Parallelism: 4,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Prefix
	if st.Folds != 3 {
		t.Fatalf("folds = %d, want 3", st.Folds)
	}
	if st.Hits == 0 {
		t.Fatal("shared prefixes produced zero cache hits")
	}
	if st.Evictions != 0 {
		t.Fatalf("default capacity evicted %d entries on a tiny dataset", st.Evictions)
	}
	if st.Fits != st.DistinctPrefixes {
		t.Fatalf("fits=%d != distinct (fold,prefix) pairs=%d without evictions", st.Fits, st.DistinctPrefixes)
	}
	// Figure 3 graph: 4 level-1 prefixes + 4x3 level-2 prefixes = 16
	// distinct prefixes per fold.
	if want := int64(3 * 16); st.DistinctPrefixes != want {
		t.Fatalf("distinct pairs = %d, want %d", st.DistinctPrefixes, want)
	}
	disabled, err := core.Search(context.Background(), fig3Graph(t), ds, core.SearchOptions{
		Splitter:           crossval.KFold{K: 3, Shuffle: true},
		Scorer:             scorer,
		Seed:               5,
		DisablePrefixCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if disabled.Prefix != (core.PrefixCacheStats{}) {
		t.Fatalf("disabled cache reported stats: %+v", disabled.Prefix)
	}
}

// TestPrefixCacheEvictionStress forces constant evictions with a byte cap
// far below the working set at Parallelism=8; results must still match
// the naive path exactly. Run under -race this also exercises the
// singleflight and LRU paths concurrently.
func TestPrefixCacheEvictionStress(t *testing.T) {
	scorer, _ := metrics.ScorerByName("rmse")
	ds := regDS(t, 100)
	opts := core.SearchOptions{
		Splitter:         crossval.KFold{K: 5, Shuffle: true},
		Scorer:           scorer,
		Parallelism:      8,
		Seed:             11,
		PrefixCacheBytes: 8 << 10, // a couple of fold-sized datasets at most
	}
	on, err := core.Search(context.Background(), fig3Graph(t), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if on.Prefix.Evictions == 0 {
		t.Fatalf("tiny cap produced no evictions: %+v", on.Prefix)
	}
	opts.DisablePrefixCache = true
	off, err := core.Search(context.Background(), fig3Graph(t), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSearchEquivalent(t, on, off)
}

// TestFailedUnitsStayInLatencyHistogram locks in the fix for failed units
// vanishing from coda_search_unit_seconds: a search whose pipelines all
// fail must grow the error-labeled series.
func TestFailedUnitsStayInLatencyHistogram(t *testing.T) {
	before := scrapeSeries(t, `coda_search_unit_seconds_count{outcome="error"}`)
	ds := regDS(t, 60)
	g := core.NewGraph()
	g.AddFeatureScalers(preprocess.NewNoOp())
	g.AddRegressionModels(mlmodels.NewARModel(50, 0)) // order too large for folds
	scorer, _ := metrics.ScorerByName("rmse")
	res, err := core.Search(context.Background(), g, ds, core.SearchOptions{
		Splitter: crossval.KFold{K: 3, Shuffle: true},
		Scorer:   scorer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil {
		t.Fatal("expected every unit to fail")
	}
	after := scrapeSeries(t, `coda_search_unit_seconds_count{outcome="error"}`)
	if after <= before {
		t.Fatalf("error-labeled unit latency did not grow: before=%v after=%v", before, after)
	}
}

// scrapeSeries reads one series value from the default obs registry's
// Prometheus rendering.
func scrapeSeries(t *testing.T, series string) float64 {
	t.Helper()
	var sb strings.Builder
	obs.WritePrometheus(&sb)
	for _, line := range strings.Split(sb.String(), "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	return 0
}
