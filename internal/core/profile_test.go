package core_test

import (
	"context"
	"io"
	"log/slog"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"coda/internal/core"
	"coda/internal/crossval"
	"coda/internal/dataset"
	"coda/internal/metrics"
	"coda/internal/mlmodels"
	"coda/internal/obs"
	"coda/internal/obs/trace"
	"coda/internal/preprocess"
)

// profileSearch runs a local search big enough that its wall time
// dwarfs the pre-span validation and post-span bookkeeping the profile
// cannot see.
func profileSearch(t *testing.T) (core.SearchResult, time.Duration) {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	ds, _, err := dataset.MakeRegression(dataset.RegressionSpec{Samples: 400, Features: 6, Informative: 4, Noise: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	scorer, _ := metrics.ScorerByName("rmse")
	g := core.NewGraph()
	g.AddFeatureScalers(preprocess.NewStandardScaler(), preprocess.NewNoOp())
	g.AddRegressionModels(mlmodels.NewLinearRegression(), mlmodels.NewKNN(mlmodels.KNNRegression, 5))
	start := time.Now()
	res, err := core.Search(context.Background(), g, ds, core.SearchOptions{
		Splitter:    crossval.KFold{K: 4, Shuffle: true},
		Scorer:      scorer,
		Seed:        7,
		Parallelism: 2,
		Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	return *res, wall
}

func TestSearchProfileSumsToWallTime(t *testing.T) {
	res, wall := profileSearch(t)
	p := res.Profile
	if p.Total <= 0 {
		t.Fatal("profile total is zero; tracing should be on by default")
	}
	sum := p.Compute + p.DARRWait + p.StoreWait + p.Queue + p.Other
	if sum != p.Total {
		t.Fatalf("components sum to %v, want exactly total %v", sum, p.Total)
	}
	if p.Compute <= 0 {
		t.Errorf("local search reported zero compute time: %+v", p)
	}
	if p.Total > wall {
		t.Errorf("profile total %v exceeds measured wall time %v", p.Total, wall)
	}
	// The span window opens after option validation and closes before
	// final result assembly; that slack must stay within 5% of wall
	// (plus a small absolute floor for very fast runs).
	if slack := wall - p.Total; slack > wall/20+2*time.Millisecond {
		t.Errorf("profile total %v misses %v of the %v wall time", p.Total, slack, wall)
	}
}

func TestSearchCriticalPathMetricExported(t *testing.T) {
	profileSearch(t)
	rr := httptest.NewRecorder()
	obs.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, comp := range trace.Components {
		series := `coda_search_critical_path_seconds_count{component="` + comp + `"}`
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}

func TestSearchProfileZeroWhenTracingOff(t *testing.T) {
	trace.SetEnabled(false)
	defer trace.SetEnabled(true)
	res, _ := profileSearch(t)
	if res.Profile != (core.SearchProfile{}) {
		t.Fatalf("profile with tracing off = %+v, want zero", res.Profile)
	}
}
