package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/matrix"
	"coda/internal/mlmodels"
	"coda/internal/preprocess"
	"coda/internal/tswindow"
)

// fusionSeries builds a deterministic multivariate series with large
// per-column offsets and one constant column, so the MinMax div==0
// constant-column sentinel and the Standard/Robust div=1 degenerate cases
// are all exercised.
func fusionSeries(rows int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(11))
	const cols = 4
	x := matrix.New(rows, cols)
	offsets := []float64{1e6, -350, 0, 42}
	for i := 0; i < rows; i++ {
		row := x.Row(i)
		for j := 0; j < cols; j++ {
			if j == 2 {
				row[j] = 7.25 // constant column
				continue
			}
			row[j] = offsets[j] + 10*math.Sin(float64(i)/3) + rng.NormFloat64()
		}
	}
	return &dataset.Dataset{
		X:        x,
		ColNames: []string{"a", "b", "const", "target"},
	}
}

func bitsEqualSlice(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: %v != %v (bits %x vs %x)",
				label, i, got[i], want[i], math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestTransformAffineBitwiseEquality proves the fused scale→window path is
// bit-identical to materialising the scaled intermediate: for every scaler
// × windower pair, TransformAffine(ds, sub, div) must equal
// Transform(scaler.Transform(ds)) in data, targets and affine metadata.
func TestTransformAffineBitwiseEquality(t *testing.T) {
	ds := fusionSeries(60)
	scalers := []core.Transformer{
		preprocess.NewStandardScaler(),
		preprocess.NewMinMaxScaler(),
		preprocess.NewRobustScaler(),
	}
	windowers := []core.Transformer{
		tswindow.NewCascadedWindows(5, 2, 3),
		tswindow.NewFlatWindowing(4, 1, 3),
		tswindow.NewTSAsIID(2, 3),
		tswindow.NewTSAsIs(1, 3),
	}
	for _, sc := range scalers {
		for _, w := range windowers {
			name := fmt.Sprintf("%s_%s", sc.Name(), w.Name())
			t.Run(name, func(t *testing.T) {
				scaler := sc.Clone()
				if err := scaler.Fit(ds); err != nil {
					t.Fatal(err)
				}
				src, ok := scaler.(core.AffineSource)
				if !ok {
					t.Fatalf("%s does not implement AffineSource", scaler.Name())
				}
				sub, div, fitted := src.AffineColumns()
				if !fitted {
					t.Fatal("AffineColumns reports unfitted after Fit")
				}

				mid, err := scaler.Transform(ds)
				if err != nil {
					t.Fatal(err)
				}
				want, err := w.Clone().Transform(mid)
				if err != nil {
					t.Fatal(err)
				}

				fuser, ok := w.Clone().(core.AffineFuser)
				if !ok {
					t.Fatalf("%s does not implement AffineFuser", w.Name())
				}
				got, err := fuser.TransformAffine(ds, sub, div)
				if err != nil {
					t.Fatal(err)
				}

				bitsEqualSlice(t, "X", got.X.Data(), want.X.Data())
				bitsEqualSlice(t, "Y", got.Y, want.Y)
				bitsEqualSlice(t, "YScale/YOffset",
					[]float64{got.YScale, got.YOffset}, []float64{want.YScale, want.YOffset})
				bitsEqualSlice(t, "ColScale", got.ColScale, want.ColScale)
				bitsEqualSlice(t, "ColOffset", got.ColOffset, want.ColOffset)
				if got.WindowLen != want.WindowLen || got.NumVars != want.NumVars {
					t.Fatalf("shape metadata: WindowLen %d/%d NumVars %d/%d",
						got.WindowLen, want.WindowLen, got.NumVars, want.NumVars)
				}
				// Row 0 of the fused output must differ from the raw series
				// (the affine actually applied), guarding against a
				// pass-through fake equality.
				if got.X.At(0, 0) == ds.X.At(0, 0) {
					t.Fatal("fused output equals raw input; affine not applied")
				}
			})
		}
	}
}

// TestAffineColumnsUnfitted checks the not-fitted sentinel so the fusion
// lookahead can never consume a stale map.
func TestAffineColumnsUnfitted(t *testing.T) {
	for _, sc := range []core.AffineSource{
		preprocess.NewStandardScaler(),
		preprocess.NewMinMaxScaler(),
		preprocess.NewRobustScaler(),
	} {
		if _, _, ok := sc.AffineColumns(); ok {
			t.Fatalf("%s: AffineColumns ok before Fit", sc.Name())
		}
	}
}

// TestFusedPipelineMatchesManualChain runs a full scaler→windower→model
// pipeline (which fuses internally) against the hand-rolled unfused chain
// and demands bitwise-equal predictions and truths in original units.
func TestFusedPipelineMatchesManualChain(t *testing.T) {
	train := fusionSeries(80)
	test := fusionSeries(40)

	scaler := preprocess.NewMinMaxScaler()
	wind := tswindow.NewFlatWindowing(4, 1, 3)
	est := mlmodels.NewLinearRegression()

	p, err := core.NewPipeline(core.Path{
		{Name: "scaling", Transformers: []core.Transformer{scaler.Clone()}},
		{Name: "window", Transformers: []core.Transformer{wind.Clone().(core.Transformer)}},
		{Name: "model", Estimator: est.Clone()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	gotHat, gotTrue, err := p.PredictWithTruth(test)
	if err != nil {
		t.Fatal(err)
	}

	// Manual unfused chain with fresh clones of the same components.
	sc2 := scaler.Clone()
	w2 := wind.Clone()
	e2 := est.Clone()
	if err := sc2.Fit(train); err != nil {
		t.Fatal(err)
	}
	mid, err := sc2.Transform(train)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Fit(mid); err != nil {
		t.Fatal(err)
	}
	wtrain, err := w2.Transform(mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Fit(wtrain); err != nil {
		t.Fatal(err)
	}
	midTest, err := sc2.Transform(test)
	if err != nil {
		t.Fatal(err)
	}
	wtest, err := w2.Transform(midTest)
	if err != nil {
		t.Fatal(err)
	}
	wantHatScaled, err := e2.Predict(wtest)
	if err != nil {
		t.Fatal(err)
	}
	wantHat := wtest.DenormY(wantHatScaled)
	wantTrue := wtest.DenormY(wtest.Y)

	bitsEqualSlice(t, "yhat", gotHat, wantHat)
	bitsEqualSlice(t, "ytrue", gotTrue, wantTrue)
}
