package core_test

import (
	"context"
	"io"
	"log/slog"
	"math/rand"
	"testing"

	"coda/internal/core"
	"coda/internal/crossval"
	"coda/internal/dataset"
	"coda/internal/metrics"
	"coda/internal/mlmodels"
	"coda/internal/obs"
	"coda/internal/obs/trace"
	"coda/internal/preprocess"
)

// benchSearch runs a small but real local search (2 scalers x 2 models =
// 4 pipelines over a 120-sample regression set) so per-unit telemetry is
// a measurable fraction of the work. Parallelism is pinned to 1 so
// allocation counts are deterministic for the CI regression gate.
func benchSearch(b *testing.B) {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	ds, _, err := dataset.MakeRegression(dataset.RegressionSpec{Samples: 120, Features: 4, Informative: 3, Noise: 1}, rng)
	if err != nil {
		b.Fatal(err)
	}
	scorer, _ := metrics.ScorerByName("rmse")
	discard := slog.New(slog.NewTextHandler(io.Discard, nil))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := core.NewGraph()
		g.AddFeatureScalers(preprocess.NewStandardScaler(), preprocess.NewNoOp())
		g.AddRegressionModels(mlmodels.NewLinearRegression(), mlmodels.NewKNN(mlmodels.KNNRegression, 5))
		if _, err := core.Search(context.Background(), g, ds, core.SearchOptions{
			Splitter:    crossval.KFold{K: 3, Shuffle: true},
			Scorer:      scorer,
			Seed:        11,
			Parallelism: 1,
			Logger:      discard,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsOverhead compares the fully instrumented core.Search hot
// path (metrics + spans) against the same path with tracing alone off
// (trace.SetEnabled) and with all telemetry off (obs.SetEnabled). Diff
// ns/op across the three to price each layer; the allocs/op of all three
// are gated against BENCH_baseline.json in CI.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("instrumented", func(b *testing.B) {
		benchSearch(b)
	})
	b.Run("untraced", func(b *testing.B) {
		trace.SetEnabled(false)
		defer trace.SetEnabled(true)
		benchSearch(b)
	})
	b.Run("uninstrumented", func(b *testing.B) {
		obs.SetEnabled(false)
		defer obs.SetEnabled(true)
		benchSearch(b)
	})
}
