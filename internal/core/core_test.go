package core_test

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"coda/internal/core"
	"coda/internal/crossval"
	"coda/internal/dataset"
	"coda/internal/metrics"
	"coda/internal/mlmodels"
	"coda/internal/preprocess"
)

// fig3Graph builds the paper's Figure 3 working example: 4 scalers x 3
// selectors x 3 regression models = 36 pipelines.
func fig3Graph(t *testing.T) *core.Graph {
	t.Helper()
	g := core.NewGraph()
	g.AddFeatureScalers(
		preprocess.NewMinMaxScaler(),
		preprocess.NewStandardScaler(),
		preprocess.NewRobustScaler(),
		preprocess.NewNoOp(),
	)
	g.AddFeatureSelectors(
		[]core.Transformer{preprocess.NewCovariance(), preprocess.NewPCA(3)},
		[]core.Transformer{preprocess.NewSelectKBest(3)},
		[]core.Transformer{preprocess.NewNoOp()},
	)
	g.AddRegressionModels(
		mlmodels.NewDecisionTree(mlmodels.TreeRegression),
		mlmodels.NewKNN(mlmodels.KNNRegression, 5),
		mlmodels.NewRandomForest(mlmodels.TreeRegression, 10),
	)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func regDS(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	ds, _, err := dataset.MakeRegression(dataset.RegressionSpec{Samples: n, Features: 5, Informative: 3, Noise: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFig3GraphHas36Pipelines(t *testing.T) {
	g := fig3Graph(t)
	if n := g.NumPipelines(); n != 36 {
		t.Fatalf("Figure 3 graph has %d pipelines, paper says 36", n)
	}
}

func TestGraphNodeNamingAndUniqueness(t *testing.T) {
	g := fig3Graph(t)
	names := g.NodeNames()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate node name %q", n)
		}
		seen[n] = true
	}
	if !seen["covariance+pca"] {
		t.Fatalf("chain node name missing: %v", names)
	}
	// Duplicate components get suffixed names.
	if !seen["noop"] || !seen["noop_2"] {
		t.Fatalf("expected noop and noop_2 in %v", names)
	}
}

func TestGraphBuilderErrors(t *testing.T) {
	g := core.NewGraph()
	g.AddEstimatorStage("m", mlmodels.NewKNN(mlmodels.KNNRegression, 3))
	g.AddTransformerStage("late", preprocess.NewNoOp())
	if err := g.Finalize(); err == nil {
		t.Fatal("want stage-after-estimator error")
	}

	g2 := core.NewGraph()
	g2.AddTransformerStage("s", preprocess.NewNoOp())
	if err := g2.Finalize(); err == nil {
		t.Fatal("want missing-estimator error")
	}

	g3 := core.NewGraph()
	if err := g3.Finalize(); err == nil {
		t.Fatal("want empty-graph error")
	}

	g4 := core.NewGraph()
	g4.AddTransformerStage("s")
	if g4.Err() == nil {
		t.Fatal("want no-options error")
	}

	g5 := core.NewGraph()
	g5.AddTransformerStage("s", preprocess.NewNoOp())
	g5.AddEstimatorStage("m", mlmodels.NewKNN(mlmodels.KNNRegression, 3))
	g5.Connect("bogus", "knn")
	if g5.Err() == nil {
		t.Fatal("want unknown-node error")
	}
}

func TestConnectRestrictsPaths(t *testing.T) {
	g := core.NewGraph()
	g.AddTransformerStage("scale", preprocess.NewStandardScaler(), preprocess.NewNoOp())
	g.AddEstimatorStage("model",
		mlmodels.NewKNN(mlmodels.KNNRegression, 3),
		mlmodels.NewDecisionTree(mlmodels.TreeRegression),
	)
	// Unrestricted: 2*2 = 4 paths.
	if n := g.NumPipelines(); n != 4 {
		t.Fatalf("unrestricted paths = %d, want 4", n)
	}
	// Restrict standardscaler to knn only; noop keeps both.
	g.Connect("standardscaler", "knn")
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	paths := g.Paths()
	if len(paths) != 3 {
		t.Fatalf("restricted paths = %d, want 3", len(paths))
	}
	for _, p := range paths {
		if p[0].Name == "standardscaler" && p[1].Name != "knn" {
			t.Fatalf("edge restriction violated: %s", p.Spec())
		}
	}
}

func TestConnectNonAdjacentFails(t *testing.T) {
	g := core.NewGraph()
	g.AddTransformerStage("a", preprocess.NewStandardScaler())
	g.AddTransformerStage("b", preprocess.NewNoOp())
	g.AddEstimatorStage("m", mlmodels.NewKNN(mlmodels.KNNRegression, 3))
	g.Connect("standardscaler", "knn") // skips a stage
	if g.Err() == nil {
		t.Fatal("want non-adjacent error")
	}
}

func TestPipelineFitPredictSemantics(t *testing.T) {
	ds := regDS(t, 120)
	g := fig3Graph(t)
	paths := g.Paths()
	// Find the robustscaler -> selectkbest -> decisiontree path (paper's P1).
	var p1 core.Path
	for _, p := range paths {
		if p.Spec() == "input -> robustscaler -> selectkbest(k=3) -> decisiontree(max_depth=0,min_leaf=1)" {
			p1 = p
		}
	}
	if p1 == nil {
		var specs []string
		for _, p := range paths {
			specs = append(specs, p.Spec())
		}
		t.Fatalf("P1 path not found in:\n%s", strings.Join(specs, "\n"))
	}
	pipe, err := core.NewPipeline(p1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Predict(ds); err == nil {
		t.Fatal("predict before fit must fail")
	}
	if err := pipe.Fit(ds); err != nil {
		t.Fatal(err)
	}
	preds, err := pipe.Predict(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != ds.NumSamples() {
		t.Fatalf("predictions %d, want %d", len(preds), ds.NumSamples())
	}
	yhat, ytrue, err := pipe.PredictWithTruth(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(yhat) != len(ytrue) {
		t.Fatal("PredictWithTruth length mismatch")
	}
	for i := range ytrue {
		if ytrue[i] != ds.Y[i] {
			t.Fatal("tabular transform must not alter targets")
		}
	}
}

func TestPipelineCloneIndependence(t *testing.T) {
	ds := regDS(t, 80)
	g := fig3Graph(t)
	pipe, err := core.NewPipeline(g.Paths()[0])
	if err != nil {
		t.Fatal(err)
	}
	clone := pipe.Clone()
	if err := pipe.Fit(ds); err != nil {
		t.Fatal(err)
	}
	// The clone must still be unfitted.
	if _, err := clone.Predict(ds); err == nil {
		t.Fatal("clone shares fitted state")
	}
}

func TestPipelineSetParam(t *testing.T) {
	g := fig3Graph(t)
	var withPCA core.Path
	for _, p := range g.Paths() {
		if strings.Contains(p.Spec(), "pca") && strings.Contains(p.Spec(), "knn") {
			withPCA = p
			break
		}
	}
	pipe, err := core.NewPipeline(withPCA)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.SetParam("covariance+pca__n_components", 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pipe.Spec(), "pca(n_components=2)") {
		t.Fatalf("param not applied: %s", pipe.Spec())
	}
	if err := pipe.SetParam("knn__k", 9); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pipe.Spec(), "knn(k=9)") {
		t.Fatalf("estimator param not applied: %s", pipe.Spec())
	}
	if err := pipe.SetParam("nosuchnode__x", 1); err == nil {
		t.Fatal("want unknown-node error")
	}
	if err := pipe.SetParam("malformed", 1); err == nil {
		t.Fatal("want malformed-key error")
	}
	if err := pipe.SetParam("knn__bogus", 1); err == nil {
		t.Fatal("want unknown-param error")
	}
}

func TestSearchFindsBestPipeline(t *testing.T) {
	// Linear data: KNN/tree do fine, but with a clean linear signal a
	// linear model wins. Build a small graph where one option is clearly
	// best: LinearRegression vs a constant-ish KNN with k=1 overfitting.
	rng := rand.New(rand.NewSource(21))
	ds, _, err := dataset.MakeRegression(dataset.RegressionSpec{Samples: 150, Features: 4, Informative: 4, Noise: 0.1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := core.NewGraph()
	g.AddFeatureScalers(preprocess.NewStandardScaler(), preprocess.NewNoOp())
	g.AddRegressionModels(
		mlmodels.NewLinearRegression(),
		mlmodels.NewDecisionTree(mlmodels.TreeRegression),
	)
	scorer, err := metrics.ScorerByName("rmse")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Search(context.Background(), g, ds, core.SearchOptions{
		Splitter:    crossval.KFold{K: 5, Shuffle: true},
		Scorer:      scorer,
		Parallelism: 4,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Units) != 4 {
		t.Fatalf("units %d, want 4", len(res.Units))
	}
	if res.Best == nil || !strings.Contains(res.Best.Spec, "linearregression") {
		t.Fatalf("best = %+v, want linearregression to win on linear data", res.Best)
	}
	if res.BestPipeline == nil {
		t.Fatal("missing refitted best pipeline")
	}
	preds, err := res.BestPipeline.Predict(ds)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := metrics.R2(ds.Y, preds)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.99 {
		t.Fatalf("refit best pipeline R2 = %v", r2)
	}
	if res.Computed != 4 || res.CacheHits != 0 {
		t.Fatalf("computed=%d cachehits=%d", res.Computed, res.CacheHits)
	}
}

func TestSearchParamGridExpansion(t *testing.T) {
	ds := regDS(t, 100)
	g := core.NewGraph()
	g.AddFeatureScalers(preprocess.NewNoOp())
	g.AddRegressionModels(
		mlmodels.NewKNN(mlmodels.KNNRegression, 5),
		mlmodels.NewLinearRegression(),
	)
	scorer, _ := metrics.ScorerByName("rmse")
	res, err := core.Search(context.Background(), g, ds, core.SearchOptions{
		Splitter:  crossval.KFold{K: 3, Shuffle: true},
		Scorer:    scorer,
		ParamGrid: map[string][]float64{"knn__k": {1, 3, 7}},
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// knn path expands to 3 units; linearregression path (grid key not
	// applicable) contributes 1.
	if len(res.Units) != 4 {
		t.Fatalf("units %d, want 4", len(res.Units))
	}
	ks := map[float64]bool{}
	for _, u := range res.Units {
		if strings.Contains(u.Spec, "knn") {
			ks[u.Params["knn__k"]] = true
		}
	}
	if !ks[1] || !ks[3] || !ks[7] {
		t.Fatalf("grid values not all evaluated: %v", ks)
	}
}

func TestSearchRecordsPipelineFailures(t *testing.T) {
	// SelectKBest requires a target; feed an unsupervised dataset so every
	// pipeline's estimator fails, but search itself must not error.
	ds := regDS(t, 60)
	g := core.NewGraph()
	g.AddFeatureScalers(preprocess.NewNoOp())
	g.AddRegressionModels(mlmodels.NewARModel(50, 0)) // order too large for folds
	scorer, _ := metrics.ScorerByName("rmse")
	res, err := core.Search(context.Background(), g, ds, core.SearchOptions{
		Splitter: crossval.KFold{K: 3, Shuffle: true},
		Scorer:   scorer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil {
		t.Fatal("no pipeline should have succeeded")
	}
	if res.Units[0].Err == "" {
		t.Fatal("failure not recorded")
	}
}

func TestSearchValidation(t *testing.T) {
	ds := regDS(t, 60)
	g := fig3Graph(t)
	scorer, _ := metrics.ScorerByName("rmse")
	if _, err := core.Search(context.Background(), g, ds, core.SearchOptions{Scorer: scorer}); err == nil {
		t.Fatal("want missing-splitter error")
	}
	if _, err := core.Search(context.Background(), g, ds, core.SearchOptions{Splitter: crossval.KFold{K: 3}}); err == nil {
		t.Fatal("want missing-scorer error")
	}
}

func TestSearchCancellation(t *testing.T) {
	ds := regDS(t, 80)
	g := fig3Graph(t)
	scorer, _ := metrics.ScorerByName("rmse")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := core.Search(ctx, g, ds, core.SearchOptions{
		Splitter: crossval.KFold{K: 3, Shuffle: true},
		Scorer:   scorer,
	}); err == nil {
		t.Fatal("want cancellation error")
	}
}

// memStore is a ResultStore double recording interactions. It is
// mutex-guarded because searches default to one worker per CPU.
type memStore struct {
	mu      sync.Mutex
	scores  map[string]float64
	claims  map[string]bool
	lookups int
	pubs    int
}

func newMemStore() *memStore {
	return &memStore{scores: map[string]float64{}, claims: map[string]bool{}}
}

func (m *memStore) Lookup(_ context.Context, key string) (float64, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lookups++
	s, ok := m.scores[key]
	return s, ok, nil
}

func (m *memStore) Claim(_ context.Context, key string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.claims[key] {
		return false, nil
	}
	m.claims[key] = true
	return true, nil
}

func (m *memStore) Publish(_ context.Context, key string, score float64, _ string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pubs++
	m.scores[key] = score
	return nil
}

func (m *memStore) snapshotScores() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.scores))
	for k, v := range m.scores {
		out[k] = v
	}
	return out
}

func TestSearchCooperationAvoidsRedundantWork(t *testing.T) {
	ds := regDS(t, 100)
	build := func() *core.Graph {
		g := core.NewGraph()
		g.AddFeatureScalers(preprocess.NewStandardScaler(), preprocess.NewNoOp())
		g.AddRegressionModels(mlmodels.NewLinearRegression(), mlmodels.NewKNN(mlmodels.KNNRegression, 5))
		return g
	}
	scorer, _ := metrics.ScorerByName("rmse")
	store := newMemStore()
	opts := core.SearchOptions{
		Splitter: crossval.KFold{K: 3, Shuffle: true},
		Scorer:   scorer,
		Seed:     3,
		Store:    store,
	}
	first, err := core.Search(context.Background(), build(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Computed != 4 || first.CacheHits != 0 {
		t.Fatalf("first run computed=%d cache=%d", first.Computed, first.CacheHits)
	}
	// Second client, same data and eval spec: everything is a cache hit.
	second, err := core.Search(context.Background(), build(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != 4 || second.Computed != 0 {
		t.Fatalf("second run computed=%d cache=%d, want all cached", second.Computed, second.CacheHits)
	}
	if second.Best == nil || second.Best.Mean != first.Best.Mean {
		t.Fatal("cached best score differs from computed one")
	}
}

func TestDOTOutput(t *testing.T) {
	g := fig3Graph(t)
	dot := g.DOT()
	for _, want := range []string{"digraph TEG", "input ->", "\"randomforest\"", "\"covariance+pca\""} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestComponentSpecDeterministic(t *testing.T) {
	f := mlmodels.NewRandomForest(mlmodels.TreeRegression, 10)
	a := core.ComponentSpec(f)
	b := core.ComponentSpec(f)
	if a != b {
		t.Fatal("ComponentSpec must be deterministic")
	}
	if !strings.Contains(a, "n_trees=10") {
		t.Fatalf("spec %q missing params", a)
	}
}

// TestClassificationGraphWithF1 exercises the paper's Listing 2 flow for a
// classification task: 10-fold cross-validation scored by f1-score.
func TestClassificationGraphWithF1(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ds, err := dataset.MakeClassification(dataset.ClassificationSpec{
		Samples: 240, Features: 5, Classes: 2, ClusterSep: 3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := core.NewGraph()
	g.AddFeatureScalers(preprocess.NewStandardScaler(), preprocess.NewNoOp())
	g.AddEstimatorStage("classification",
		mlmodels.NewLogisticRegression(),
		mlmodels.NewDecisionTree(mlmodels.TreeClassification),
		mlmodels.NewKNN(mlmodels.KNNClassification, 5),
		mlmodels.NewRandomForest(mlmodels.TreeClassification, 20),
	)
	scorer, err := metrics.ScorerByName("f1-score")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Search(context.Background(), g, ds, core.SearchOptions{
		Splitter:    crossval.KFold{K: 10, Shuffle: true}, // Listing 2: k=10
		Scorer:      scorer,
		Parallelism: 4,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Units) != 8 {
		t.Fatalf("units %d, want 8", len(res.Units))
	}
	if res.Best == nil || res.Best.Mean < 0.9 {
		t.Fatalf("best f1 = %+v, want > 0.9 on separable blobs", res.Best)
	}
	// f1 is higher-better: the search must maximize.
	for _, u := range res.Units {
		if u.Err == "" && u.Mean > res.Best.Mean {
			t.Fatalf("unit %s (%v) beats declared best (%v)", u.Spec, u.Mean, res.Best.Mean)
		}
	}
}

// Property: with unrestricted connectivity, the number of pipelines is the
// product of per-stage option counts.
func TestPipelineCountProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stages := 1 + rng.Intn(3)
		want := 1
		g := core.NewGraph()
		for s := 0; s < stages; s++ {
			n := 1 + rng.Intn(4)
			want *= n
			opts := make([]core.Transformer, n)
			for i := range opts {
				opts[i] = preprocess.NewNoOp()
			}
			g.AddTransformerStage("s", opts...)
		}
		nModels := 1 + rng.Intn(3)
		want *= nModels
		models := make([]core.Estimator, nModels)
		for i := range models {
			models[i] = mlmodels.NewKNN(mlmodels.KNNRegression, 3)
		}
		g.AddEstimatorStage("m", models...)
		if err := g.Finalize(); err != nil {
			return false
		}
		return g.NumPipelines() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// flakyStore fails every operation, simulating a DARR outage.
type flakyStore struct{}

func (flakyStore) Lookup(context.Context, string) (float64, bool, error) {
	return 0, false, errBlackout
}
func (flakyStore) Claim(context.Context, string) (bool, error) { return false, errBlackout }
func (flakyStore) Publish(context.Context, string, float64, string) error {
	return errBlackout
}

var errBlackout = errors.New("darr unreachable")

// TestSearchSurvivesStoreOutage pins graceful degradation: when the DARR is
// down, the search computes everything locally and still succeeds.
func TestSearchSurvivesStoreOutage(t *testing.T) {
	ds := regDS(t, 80)
	g := core.NewGraph()
	g.AddFeatureScalers(preprocess.NewNoOp())
	g.AddRegressionModels(mlmodels.NewLinearRegression(), mlmodels.NewKNN(mlmodels.KNNRegression, 5))
	scorer, _ := metrics.ScorerByName("rmse")
	res, err := core.Search(context.Background(), g, ds, core.SearchOptions{
		Splitter:    crossval.KFold{K: 3, Shuffle: true},
		Scorer:      scorer,
		Store:       flakyStore{},
		SkipClaimed: true,
	})
	if err != nil {
		t.Fatalf("search must survive a DARR outage: %v", err)
	}
	if res.Computed != 2 || res.Best == nil {
		t.Fatalf("computed=%d best=%v; outage should force local computation", res.Computed, res.Best)
	}
}
