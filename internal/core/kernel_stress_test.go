package core_test

import (
	"context"
	"math"
	"testing"

	"coda/internal/core"
	"coda/internal/crossval"
	"coda/internal/matrix"
	"coda/internal/metrics"
	"coda/internal/nnmodels"
	"coda/internal/preprocess"
	"coda/internal/tswindow"
)

// stressSearch runs a small time-series search whose estimators exercise
// the nn scratch-buffer arenas and the matrix kernel worker budget at the
// same time: 8 evaluation workers × a kernel budget of 8 contend on the
// global kernel semaphore, which must degrade to serial (never deadlock or
// race) when oversubscribed.
func stressSearch(t *testing.T, seed int64) *core.SearchResult {
	t.Helper()
	g := core.NewGraph()
	g.AddFeatureScalers(preprocess.NewStandardScaler(), preprocess.NewMinMaxScaler())
	g.AddTransformerStage("windowing", tswindow.NewCascadedWindows(6, 1, 3))
	g.AddEstimatorStage("model",
		nnmodels.NewLSTMRegressor(false),
		nnmodels.NewCNNRegressor(false),
	)
	scorer, err := metrics.ScorerByName("rmse")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Search(context.Background(), g, fusionSeries(60), core.SearchOptions{
		Splitter:    crossval.KFold{K: 2, Shuffle: true},
		Scorer:      scorer,
		ParamGrid:   map[string][]float64{"lstm__epochs": {2}, "cnn__epochs": {2}},
		Parallelism: 8,
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSearchKernelStressDeterministic drives core.Search at Parallelism 8
// with the matrix kernel worker budget also at 8 (run under -race in CI to
// stress the arena scratch buffers), and checks the search is bitwise
// deterministic for a fixed seed regardless of scheduling.
func TestSearchKernelStressDeterministic(t *testing.T) {
	prev := matrix.Parallelism()
	matrix.SetMaxWorkers(8)
	defer matrix.SetMaxWorkers(prev)

	a := stressSearch(t, 7)
	b := stressSearch(t, 7)
	if a.Best == nil || b.Best == nil {
		t.Fatalf("search found no best: %+v / %+v", a.Best, b.Best)
	}
	if math.Float64bits(a.Best.Mean) != math.Float64bits(b.Best.Mean) {
		t.Fatalf("best mean not deterministic: %v vs %v", a.Best.Mean, b.Best.Mean)
	}
	if a.Best.Spec != b.Best.Spec {
		t.Fatalf("winner not deterministic: %q vs %q", a.Best.Spec, b.Best.Spec)
	}
	if len(a.Units) != len(b.Units) {
		t.Fatalf("unit counts differ: %d vs %d", len(a.Units), len(b.Units))
	}
	for i := range a.Units {
		ua, ub := a.Units[i], b.Units[i]
		if ua.Err != ub.Err {
			t.Fatalf("unit %d error mismatch: %q vs %q", i, ua.Err, ub.Err)
		}
		if len(ua.Scores) != len(ub.Scores) {
			t.Fatalf("unit %d fold counts differ", i)
		}
		for f := range ua.Scores {
			if math.Float64bits(ua.Scores[f]) != math.Float64bits(ub.Scores[f]) {
				t.Fatalf("unit %d fold %d score not deterministic: %v vs %v",
					i, f, ua.Scores[f], ub.Scores[f])
			}
		}
	}
}
