package core_test

import (
	"fmt"
	"testing"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/nnmodels"
	"coda/internal/preprocess"
	"coda/internal/tswindow"
)

// winProbe is a do-nothing estimator that opts into window-view fusion and
// records whether the pipeline actually delivered a fused view, so the
// runTransformers lookahead wiring is tested directly.
type winProbe struct {
	fitWin, predictWin bool
}

func (p *winProbe) Name() string                   { return "winprobe" }
func (p *winProbe) SetParam(string, float64) error { return nil }
func (p *winProbe) Params() map[string]float64     { return nil }
func (p *winProbe) Clone() core.Estimator          { return p }
func (p *winProbe) ConsumesWindowView() bool       { return true }
func (p *winProbe) Fit(ds *dataset.Dataset) error  { p.fitWin = ds.Win != nil; return nil }
func (p *winProbe) Predict(ds *dataset.Dataset) ([]float64, error) {
	p.predictWin = ds.Win != nil
	return make([]float64, ds.NumSamples()), nil
}

// TestWindowViewReachesOptedInEstimator checks both fused shapes: the
// scaler×windower pair (three-way fusion) and a standalone terminal
// windower (identity affine) must both hand the estimator a window view,
// for fit and predict alike.
func TestWindowViewReachesOptedInEstimator(t *testing.T) {
	ds := fusionSeries(60)

	t.Run("scaler_windower", func(t *testing.T) {
		probe := &winProbe{}
		p, err := core.NewPipeline(core.Path{
			{Name: "scaling", Transformers: []core.Transformer{preprocess.NewMinMaxScaler()}},
			{Name: "window", Transformers: []core.Transformer{tswindow.NewCascadedWindows(5, 1, 3)}},
			{Name: "model", Estimator: probe},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Fit(ds); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Predict(fusionSeries(40)); err != nil {
			t.Fatal(err)
		}
		if !probe.fitWin || !probe.predictWin {
			t.Fatalf("window view not delivered: fit=%v predict=%v", probe.fitWin, probe.predictWin)
		}
	})

	t.Run("windower_only", func(t *testing.T) {
		probe := &winProbe{}
		p, err := core.NewPipeline(core.Path{
			{Name: "window", Transformers: []core.Transformer{tswindow.NewCascadedWindows(5, 1, 3)}},
			{Name: "model", Estimator: probe},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Fit(ds); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Predict(fusionSeries(40)); err != nil {
			t.Fatal(err)
		}
		if !probe.fitWin || !probe.predictWin {
			t.Fatalf("window view not delivered: fit=%v predict=%v", probe.fitWin, probe.predictWin)
		}
	})

	t.Run("non_consumer_gets_materialized", func(t *testing.T) {
		// An estimator that does not opt in must keep receiving a
		// materialized window matrix.
		est := nnmodels.NewDNNRegressor(false)
		if err := est.SetParam("epochs", 2); err != nil {
			t.Fatal(err)
		}
		p, err := core.NewPipeline(core.Path{
			{Name: "window", Transformers: []core.Transformer{tswindow.NewFlatWindowing(4, 1, 3)}},
			{Name: "model", Estimator: est},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Fit(ds); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Predict(fusionSeries(40)); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFusedWindowConvMatchesMaterialized is the zero-copy window→conv
// equivalence proof: for every scaler × conv estimator pair, the fused
// pipeline (Conv1D gathering im2col straight from the source series through
// the window view) must produce bitwise-identical predictions and truths to
// the hand-rolled unfused chain that materializes the scaled series and the
// window matrix. Identical rng consumption in FitWindowed vs Fit makes the
// whole training trajectory comparable, not just one forward pass.
func TestFusedWindowConvMatchesMaterialized(t *testing.T) {
	train := fusionSeries(80)
	test := fusionSeries(40)

	scalers := []core.Transformer{
		preprocess.NewStandardScaler(),
		preprocess.NewMinMaxScaler(),
		preprocess.NewRobustScaler(),
	}
	models := map[string]func() core.Estimator{
		"cnn":       func() core.Estimator { return nnmodels.NewCNNRegressor(false) },
		"wavenet":   func() core.Estimator { return nnmodels.NewWaveNetRegressor() },
		"seriesnet": func() core.Estimator { return nnmodels.NewSeriesNetRegressor() },
	}

	for _, sc := range scalers {
		for mname, mk := range models {
			t.Run(fmt.Sprintf("%s_%s", sc.Name(), mname), func(t *testing.T) {
				wind := tswindow.NewCascadedWindows(6, 1, 3)
				est := mk()
				if err := est.SetParam("epochs", 3); err != nil {
					t.Fatal(err)
				}
				if err := est.SetParam("seed", 9); err != nil {
					t.Fatal(err)
				}

				p, err := core.NewPipeline(core.Path{
					{Name: "scaling", Transformers: []core.Transformer{sc.Clone()}},
					{Name: "window", Transformers: []core.Transformer{wind.Clone().(core.Transformer)}},
					{Name: "model", Estimator: est.Clone()},
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Fit(train); err != nil {
					t.Fatal(err)
				}
				gotHat, gotTrue, err := p.PredictWithTruth(test)
				if err != nil {
					t.Fatal(err)
				}

				// Manual unfused chain on fresh clones of the same components.
				sc2 := sc.Clone()
				w2 := wind.Clone()
				e2 := est.Clone()
				if err := sc2.Fit(train); err != nil {
					t.Fatal(err)
				}
				mid, err := sc2.Transform(train)
				if err != nil {
					t.Fatal(err)
				}
				if err := w2.Fit(mid); err != nil {
					t.Fatal(err)
				}
				wtrain, err := w2.Transform(mid)
				if err != nil {
					t.Fatal(err)
				}
				if err := e2.Fit(wtrain); err != nil {
					t.Fatal(err)
				}
				midTest, err := sc2.Transform(test)
				if err != nil {
					t.Fatal(err)
				}
				wtest, err := w2.Transform(midTest)
				if err != nil {
					t.Fatal(err)
				}
				wantHatScaled, err := e2.Predict(wtest)
				if err != nil {
					t.Fatal(err)
				}
				wantHat := wtest.DenormY(wantHatScaled)
				wantTrue := wtest.DenormY(wtest.Y)

				bitsEqualSlice(t, "yhat", gotHat, wantHat)
				bitsEqualSlice(t, "ytrue", gotTrue, wantTrue)
			})
		}
	}
}
