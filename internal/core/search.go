package core

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"coda/internal/crossval"
	"coda/internal/dataset"
	"coda/internal/metrics"
	"coda/internal/obs"
)

// Search telemetry: how long each evaluation unit takes to compute
// locally, and how units were satisfied — the scoreboard for the paper's
// cooperative-reuse claim.
var (
	mUnitSeconds   = obs.GetHistogram("coda_search_unit_seconds", nil)
	mUnitsComputed = obs.GetCounter(`coda_search_units_total{outcome="computed"}`)
	mUnitsCached   = obs.GetCounter(`coda_search_units_total{outcome="cache_hit"}`)
	mUnitsSkipped  = obs.GetCounter(`coda_search_units_total{outcome="skipped"}`)
	mUnitsFailed   = obs.GetCounter(`coda_search_units_total{outcome="error"}`)
	mUnitsDegraded = obs.GetCounter("coda_search_degraded_units_total")
)

// ResultStore is the cooperation hook the search engine uses to avoid
// redundant computations across clients (Section III, Figure 2). The DARR
// client implements it; a nil store means every unit is computed locally.
//
// Every method takes the search's context so a cancelled Search cancels
// in-flight DARR traffic. Implementations may fail transiently (a remote
// DARR over a WAN); Search treats any error as "store unavailable for
// this unit" and degrades to local computation rather than aborting.
type ResultStore interface {
	// Lookup returns a previously published mean score for the key.
	Lookup(ctx context.Context, key string) (score float64, ok bool, err error)
	// Claim atomically reserves the key for this client; false means
	// another client is already computing it.
	Claim(ctx context.Context, key string) (bool, error)
	// Publish stores a finished result with its explanation.
	Publish(ctx context.Context, key string, score float64, explanation string) error
}

// SearchOptions configures model validation and selection over a graph
// (Section IV-B; Listing 2's set_cross_validation / set_accuracy).
type SearchOptions struct {
	// Splitter is the cross-validation strategy (required).
	Splitter crossval.Splitter
	// Scorer is the agreed performance measure (required).
	Scorer metrics.Scorer
	// ParamGrid maps "node__param" keys to candidate values; keys whose
	// node is absent from a path are ignored for that path.
	ParamGrid map[string][]float64
	// Parallelism bounds concurrent pipeline evaluations (default 1).
	Parallelism int
	// Seed drives fold shuffling, shared across clients so cooperating
	// searches agree on the evaluation (part of the DARR key).
	Seed int64
	// Store enables cooperative deduplication via the DARR.
	Store ResultStore
	// SkipClaimed, with a Store, skips units another client has claimed
	// instead of computing them redundantly.
	SkipClaimed bool
	// Logger receives structured search telemetry (completion summary at
	// debug, degradation warnings). Nil uses slog.Default().
	Logger *slog.Logger
}

// UnitResult is the outcome of evaluating one (path, parameter set) unit.
type UnitResult struct {
	Spec      string             // pipeline spec with parameters applied
	Params    map[string]float64 // grid assignment used
	Scores    []float64          // per-fold scores
	Mean      float64
	Err       string // non-empty when the pipeline failed on this data
	FromCache bool   // true when the result came from the ResultStore
	Skipped   bool   // true when another client had claimed the unit
	// Degraded is true when the ResultStore failed for this unit and the
	// search fell back to purely local computation (no cache, no claim,
	// no publish) — the wide-area fault-tolerance path.
	Degraded bool
}

// SearchResult is the outcome of Search.
type SearchResult struct {
	Units []UnitResult
	// Best points at the best successful unit (nil if all failed).
	Best *UnitResult
	// BestPipeline is the winning pipeline refitted on the full dataset.
	BestPipeline *Pipeline
	// Computed / CacheHits / Skipped count how units were satisfied.
	Computed, CacheHits, Skipped int
	// Degraded counts units computed locally because the ResultStore was
	// failing (they are also included in Computed).
	Degraded int
}

// searchUnit is one pipeline x parameter-assignment work item.
type searchUnit struct {
	index    int
	pipeline *Pipeline
	params   map[string]float64
}

// Search evaluates every pipeline in the graph under every applicable
// parameter-grid assignment with the configured cross-validation strategy,
// and returns per-unit scores plus the best pipeline refitted on all data.
// Individual pipeline failures are recorded, not fatal — the point of a TEG
// is to try many options, some of which may not suit the data.
func Search(ctx context.Context, g *Graph, ds *dataset.Dataset, opts SearchOptions) (*SearchResult, error) {
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	if opts.Splitter == nil {
		return nil, fmt.Errorf("core: SearchOptions.Splitter is required")
	}
	if opts.Scorer.Fn == nil {
		return nil, fmt.Errorf("core: SearchOptions.Scorer is required")
	}
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	splits, err := opts.Splitter.Splits(ds.NumSamples(), rand.New(rand.NewSource(opts.Seed)))
	if err != nil {
		return nil, fmt.Errorf("core: computing folds: %w", err)
	}

	units, err := expandUnits(g, opts.ParamGrid)
	if err != nil {
		return nil, err
	}

	fp := ds.Fingerprint()
	evalSpec := fmt.Sprintf("%s|%s|seed=%d", opts.Splitter.Spec(), opts.Scorer.Name, opts.Seed)

	results := make([]UnitResult, len(units))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Parallelism)
	for _, u := range units {
		u := u
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			results[u.index] = evaluateUnit(ctx, u, ds, splits, fp, evalSpec, opts)
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: search cancelled: %w", err)
	}

	res := &SearchResult{Units: results}
	failed := 0
	for i := range results {
		u := &results[i]
		switch {
		case u.Skipped:
			res.Skipped++
			mUnitsSkipped.Inc()
		case u.FromCache:
			res.CacheHits++
			mUnitsCached.Inc()
		case u.Err == "":
			res.Computed++
			mUnitsComputed.Inc()
		default:
			failed++
			mUnitsFailed.Inc()
		}
		if u.Degraded {
			res.Degraded++
			mUnitsDegraded.Inc()
		}
		if u.Err != "" || u.Skipped {
			continue
		}
		if res.Best == nil || opts.Scorer.Better(u.Mean, res.Best.Mean) {
			res.Best = u
		}
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	logger.Debug("search complete",
		"request_id", obs.RequestID(ctx), "dataset_fp", fp, "units", len(results),
		"computed", res.Computed, "cache_hits", res.CacheHits,
		"skipped", res.Skipped, "failed", failed, "degraded", res.Degraded)
	if res.Degraded > 0 {
		logger.Warn("search degraded: result store unavailable for some units",
			"request_id", obs.RequestID(ctx), "degraded", res.Degraded, "units", len(results))
	}
	if res.Best != nil {
		best := units[indexOfSpec(results, res.Best.Spec, res.Best.Params)]
		refit := best.pipeline.Clone()
		if err := refit.Fit(ds); err != nil {
			return nil, fmt.Errorf("core: refitting best pipeline %s: %w", res.Best.Spec, err)
		}
		res.BestPipeline = refit
	}
	return res, nil
}

func indexOfSpec(results []UnitResult, spec string, params map[string]float64) int {
	for i := range results {
		if results[i].Spec == spec && equalParams(results[i].Params, params) {
			return i
		}
	}
	return 0
}

func equalParams(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// UnitKey builds the canonical DARR key for one evaluation unit. Clients
// that agree on dataset fingerprint, pipeline spec (with parameters) and
// evaluation spec share results.
func UnitKey(datasetFP, pipelineSpec, evalSpec string) string {
	return datasetFP + "|" + pipelineSpec + "|" + evalSpec
}

func evaluateUnit(ctx context.Context, u searchUnit, ds *dataset.Dataset, splits []crossval.Split, fp, evalSpec string, opts SearchOptions) UnitResult {
	out := UnitResult{Spec: u.pipeline.Spec(), Params: u.params}
	key := UnitKey(fp, out.Spec, evalSpec)

	if opts.Store != nil {
		score, ok, err := opts.Store.Lookup(ctx, key)
		switch {
		case err != nil:
			// The store is failing (WAN fault, circuit open, outage):
			// degrade this unit to local-only computation instead of
			// erroring out mid-search.
			out.Degraded = true
		case ok:
			out.Mean = score
			out.FromCache = true
			return out
		}
		if !out.Degraded {
			claimed, err := opts.Store.Claim(ctx, key)
			switch {
			case err != nil:
				out.Degraded = true
			case !claimed && opts.SkipClaimed:
				out.Skipped = true
				return out
			}
		}
	}

	start := time.Now()
	scores := make([]float64, 0, len(splits))
	for _, sp := range splits {
		if ctx.Err() != nil {
			out.Err = ctx.Err().Error()
			return out
		}
		p := u.pipeline.Clone()
		train := ds.Subset(sp.Train)
		test := ds.Subset(sp.Test)
		if err := p.Fit(train); err != nil {
			out.Err = err.Error()
			return out
		}
		yhat, ytrue, err := p.PredictWithTruth(test)
		if err != nil {
			out.Err = err.Error()
			return out
		}
		score, err := opts.Scorer.Fn(ytrue, yhat)
		if err != nil {
			out.Err = err.Error()
			return out
		}
		scores = append(scores, score)
	}
	out.Scores = scores
	sum := 0.0
	for _, s := range scores {
		sum += s
	}
	out.Mean = sum / float64(len(scores))
	mUnitSeconds.ObserveSince(start)

	if opts.Store != nil && !out.Degraded {
		explanation := fmt.Sprintf("pipeline=%s cv=%s metric=%s folds=%d", out.Spec, evalSpec, opts.Scorer.Name, len(scores))
		// Best-effort publish: a store outage must not fail the search,
		// but the unit is marked degraded because peers won't see it.
		if err := opts.Store.Publish(ctx, key, out.Mean, explanation); err != nil {
			out.Degraded = true
		}
	}
	return out
}

// expandUnits enumerates (path x applicable grid assignment) units, applying
// grid values via SetParam on fresh pipeline clones.
func expandUnits(g *Graph, grid map[string][]float64) ([]searchUnit, error) {
	paths := g.Paths()
	keys := make([]string, 0, len(grid))
	for k := range grid {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var units []searchUnit
	for _, path := range paths {
		base, err := NewPipeline(path)
		if err != nil {
			return nil, err
		}
		// Grid keys that name a node on this path.
		var applicable []string
		for _, k := range keys {
			node, _, ok := strings.Cut(k, "__")
			if ok && base.HasNode(node) {
				applicable = append(applicable, k)
			}
		}
		assignments := cartesian(applicable, grid)
		for _, assign := range assignments {
			p := base.Clone()
			for k, v := range assign {
				if err := p.SetParam(k, v); err != nil {
					return nil, fmt.Errorf("core: applying grid %s=%s: %w", k, strconv.FormatFloat(v, 'g', -1, 64), err)
				}
			}
			units = append(units, searchUnit{index: len(units), pipeline: p, params: assign})
		}
	}
	return units, nil
}

// cartesian expands the grid over the given keys; with no keys it returns a
// single empty assignment.
func cartesian(keys []string, grid map[string][]float64) []map[string]float64 {
	out := []map[string]float64{{}}
	for _, k := range keys {
		vals := grid[k]
		if len(vals) == 0 {
			continue
		}
		next := make([]map[string]float64, 0, len(out)*len(vals))
		for _, assign := range out {
			for _, v := range vals {
				na := make(map[string]float64, len(assign)+1)
				for ak, av := range assign {
					na[ak] = av
				}
				na[k] = v
				next = append(next, na)
			}
		}
		out = next
	}
	return out
}
