package core

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"coda/internal/crossval"
	"coda/internal/dataset"
	"coda/internal/matrix"
	"coda/internal/metrics"
	"coda/internal/obs"
	"coda/internal/obs/trace"
)

// Search telemetry: how long each evaluation unit takes to compute
// locally, and how units were satisfied — the scoreboard for the paper's
// cooperative-reuse claim. Unit latency is labeled by outcome so failed
// and degraded units stay visible in the histogram instead of vanishing
// from it.
var (
	mUnitSecondsOK  = obs.GetHistogram(`coda_search_unit_seconds{outcome="ok"}`, nil)
	mUnitSecondsErr = obs.GetHistogram(`coda_search_unit_seconds{outcome="error"}`, nil)
	mUnitsComputed  = obs.GetCounter(`coda_search_units_total{outcome="computed"}`)
	mUnitsCached    = obs.GetCounter(`coda_search_units_total{outcome="cache_hit"}`)
	mUnitsSkipped   = obs.GetCounter(`coda_search_units_total{outcome="skipped"}`)
	mUnitsFailed    = obs.GetCounter(`coda_search_units_total{outcome="error"}`)
	mUnitsDegraded  = obs.GetCounter("coda_search_degraded_units_total")
)

// Critical-path telemetry: where searches spend their wall time, split
// by the component that owned each instant (trace.ComputeProfile). The
// aggregate view of the per-search SearchResult.Profile.
var mCritPath = map[string]*obs.Histogram{
	trace.CompCompute:   obs.GetHistogram(`coda_search_critical_path_seconds{component="compute"}`, nil),
	trace.CompDARRWait:  obs.GetHistogram(`coda_search_critical_path_seconds{component="darr_wait"}`, nil),
	trace.CompStoreWait: obs.GetHistogram(`coda_search_critical_path_seconds{component="store_wait"}`, nil),
	trace.CompQueue:     obs.GetHistogram(`coda_search_critical_path_seconds{component="queue"}`, nil),
	trace.CompOther:     obs.GetHistogram(`coda_search_critical_path_seconds{component="other"}`, nil),
}

// ResultStore is the cooperation hook the search engine uses to avoid
// redundant computations across clients (Section III, Figure 2). The DARR
// client implements it; a nil store means every unit is computed locally.
//
// Every method takes the search's context so a cancelled Search cancels
// in-flight DARR traffic. Implementations may fail transiently (a remote
// DARR over a WAN); Search treats any error as "store unavailable for
// this unit" and degrades to local computation rather than aborting.
type ResultStore interface {
	// Lookup returns a previously published mean score for the key.
	Lookup(ctx context.Context, key string) (score float64, ok bool, err error)
	// Claim atomically reserves the key for this client; false means
	// another client is already computing it.
	Claim(ctx context.Context, key string) (bool, error)
	// Publish stores a finished result with its explanation.
	Publish(ctx context.Context, key string, score float64, explanation string) error
}

// BatchResultStore extends ResultStore with bulk operations. A
// cooperative search over N units costs up to 3N sequential round trips
// on the per-unit protocol (Lookup, Claim, Publish each); a batch-capable
// store lets Search resolve every unit's cache and claim state in two
// bulk calls before spawning workers, and lets the store coalesce
// Publishes, so the whole search needs a handful of requests. Search
// uses these methods whenever the configured Store implements them and
// falls back to the per-unit protocol otherwise.
type BatchResultStore interface {
	ResultStore
	// LookupBatch resolves many keys at once; the result holds entries
	// only for keys with published scores.
	LookupBatch(ctx context.Context, keys []string) (map[string]float64, error)
	// ClaimBatch attempts to reserve every key for this client and
	// reports the per-key grant decisions.
	ClaimBatch(ctx context.Context, keys []string) (map[string]bool, error)
	// Release drops this client's claim on key so a claimed-but-failed
	// unit becomes immediately re-claimable by peers instead of blocking
	// them until the claim TTL expires.
	Release(ctx context.Context, key string) error
}

// ClaimReleaser is the optional Release hook Search uses (via type
// assertion) on claimed-but-unpublished exit paths — unit failure,
// non-finite scores, cancellation. Plain ResultStore implementations
// without it keep working; their claims simply age out by TTL.
type ClaimReleaser interface {
	Release(ctx context.Context, key string) error
}

// Flusher is implemented by stores that buffer Publishes (the batched
// HTTP client's async publish queue). Search flushes on exit so every
// queued record reaches the repository before results are reported.
type Flusher interface {
	Flush(ctx context.Context) error
}

// SearchOptions configures model validation and selection over a graph
// (Section IV-B; Listing 2's set_cross_validation / set_accuracy).
type SearchOptions struct {
	// Splitter is the cross-validation strategy (required).
	Splitter crossval.Splitter
	// Scorer is the agreed performance measure (required).
	Scorer metrics.Scorer
	// ParamGrid maps "node__param" keys to candidate values; keys whose
	// node is absent from a path are ignored for that path.
	ParamGrid map[string][]float64
	// Parallelism bounds concurrent pipeline evaluations. Zero means one
	// worker per CPU (runtime.GOMAXPROCS(0)); negative means 1.
	//
	// Evaluation workers compose with the matrix kernel worker budget
	// (matrix.SetMaxWorkers): kernels acquire extra workers from a global
	// non-blocking semaphore and fall back to serial when none are free,
	// so Parallelism×kernel parallelism never oversubscribes the machine —
	// at high Parallelism the search-level workers soak up the budget and
	// kernels run serially; at Parallelism 1 a large matmul fans out.
	Parallelism int
	// DisablePrefixCache turns off the shared-prefix computation cache,
	// restoring the naive path that re-fits every pipeline's full
	// transformer chain per fold. Mainly for A/B measurement; results are
	// bit-identical either way.
	DisablePrefixCache bool
	// PrefixCacheMB caps the prefix cache's estimated memory in MiB
	// (0 = DefaultPrefixCacheMB). Least-recently-used fitted prefixes are
	// evicted past the cap and transparently refitted on demand.
	PrefixCacheMB int
	// PrefixCacheBytes, when positive, overrides PrefixCacheMB with a
	// byte-level cap — for tests and fine tuning.
	PrefixCacheBytes int64
	// Seed drives fold shuffling, shared across clients so cooperating
	// searches agree on the evaluation (part of the DARR key).
	Seed int64
	// Store enables cooperative deduplication via the DARR.
	Store ResultStore
	// SkipClaimed, with a Store, skips units another client has claimed
	// instead of computing them redundantly.
	SkipClaimed bool
	// Logger receives structured search telemetry (completion summary at
	// debug, degradation warnings). Nil uses slog.Default().
	Logger *slog.Logger
}

// UnitResult is the outcome of evaluating one (path, parameter set) unit.
type UnitResult struct {
	// Index is this unit's position in SearchResult.Units. It maps the
	// winner back to its pipeline even when duplicate graph paths
	// produce identical specs and parameter assignments.
	Index     int
	Spec      string             // pipeline spec with parameters applied
	Params    map[string]float64 // grid assignment used
	Scores    []float64          // per-fold scores
	Mean      float64
	Err       string // non-empty when the pipeline failed on this data
	FromCache bool   // true when the result came from the ResultStore
	Skipped   bool   // true when another client had claimed the unit
	// Degraded is true when the ResultStore failed for this unit and the
	// search fell back to purely local computation (no cache, no claim,
	// no publish) — the wide-area fault-tolerance path.
	Degraded bool
}

// SearchProfile attributes one search's wall time to the component that
// owned each instant on the critical path: local compute (fold fits,
// refit), DARR round trips, object-store traffic, waiting for a worker
// slot, and everything else (scheduling, bookkeeping). When spans
// overlap — a fold fitting while another unit waits on a claim — the
// instant counts as compute: communication only matters to the critical
// path when nothing is computing. The five components sum exactly to
// Total.
type SearchProfile struct {
	Total     time.Duration
	Compute   time.Duration
	DARRWait  time.Duration
	StoreWait time.Duration
	Queue     time.Duration
	Other     time.Duration
}

// SearchResult is the outcome of Search.
type SearchResult struct {
	Units []UnitResult
	// Best points at the best successful unit (nil if all failed).
	Best *UnitResult
	// BestPipeline is the winning pipeline refitted on the full dataset.
	BestPipeline *Pipeline
	// Computed / CacheHits / Skipped count how units were satisfied.
	Computed, CacheHits, Skipped int
	// Degraded counts units computed locally because the ResultStore was
	// failing (they are also included in Computed).
	Degraded int
	// Prefix reports how the shared-prefix computation cache behaved
	// (zero-valued when DisablePrefixCache was set).
	Prefix PrefixCacheStats
	// Profile is the critical-path breakdown of the search's wall time
	// (zero-valued when tracing is disabled).
	Profile SearchProfile
}

// searchUnit is one pipeline x parameter-assignment work item.
type searchUnit struct {
	index    int
	pipeline *Pipeline
	params   map[string]float64
}

// Search evaluates every pipeline in the graph under every applicable
// parameter-grid assignment with the configured cross-validation strategy,
// and returns per-unit scores plus the best pipeline refitted on all data.
// Individual pipeline failures are recorded, not fatal — the point of a TEG
// is to try many options, some of which may not suit the data.
func Search(ctx context.Context, g *Graph, ds *dataset.Dataset, opts SearchOptions) (*SearchResult, error) {
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	if opts.Splitter == nil {
		return nil, fmt.Errorf("core: SearchOptions.Splitter is required")
	}
	if opts.Scorer.Fn == nil {
		return nil, fmt.Errorf("core: SearchOptions.Scorer is required")
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	// The root span covers everything from fold materialization to the
	// final refit; its trace is what /debug/traces shows and what the
	// critical-path profile is computed over.
	ctx, searchSpan := trace.Start(ctx, "search")
	defer searchSpan.End()

	splits, err := opts.Splitter.Splits(ds.NumSamples(), rand.New(rand.NewSource(opts.Seed)))
	if err != nil {
		return nil, fmt.Errorf("core: computing folds: %w", err)
	}

	units, err := expandUnits(g, opts.ParamGrid)
	if err != nil {
		return nil, err
	}

	// The fold plan: every unit shares one materialized train/test pair
	// per split instead of re-subsetting the full dataset per unit x fold.
	folds := materializeFolds(ds, splits)
	var cache *prefixCache
	if !opts.DisablePrefixCache {
		cache = newPrefixCache(opts.capBytes())
		defer cache.release()
	}

	fp := ds.Fingerprint()
	evalSpec := fmt.Sprintf("%s|%s|seed=%d", opts.Splitter.Spec(), opts.Scorer.Name, opts.Seed)

	// Batch-capable stores resolve every unit's cache/claim state up
	// front in two bulk round trips instead of 2×units sequential ones.
	var batch *batchState
	if bs, ok := opts.Store.(BatchResultStore); ok && len(units) > 0 {
		keys := make([]string, len(units))
		for i, u := range units {
			keys[i] = UnitKey(fp, u.pipeline.Spec(), evalSpec)
		}
		batch = prefetchBatch(ctx, bs, keys, opts)
	}

	searchSpan.SetAttr(trace.Int("units", len(units)), trace.Int("folds", len(folds)),
		trace.Int("parallelism", opts.Parallelism))

	results := make([]UnitResult, len(units))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Parallelism)
	for _, u := range units {
		u := u
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		// Time spent waiting for a worker slot is queue time on the
		// critical path — visible saturation, not invisible stalling.
		// (Attrs are set behind the nil check so the disabled tracer
		// costs zero allocations in this loop.)
		_, qsp := trace.Start(ctx, "search.queue")
		if qsp != nil {
			qsp.SetComponent(trace.CompQueue)
			qsp.SetAttr(trace.Int("unit", u.index))
		}
		sem <- struct{}{}
		qsp.End()
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			results[u.index] = evaluateUnit(ctx, u, folds, cache, fp, evalSpec, opts, batch)
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// Bulk-acquired claims for units that never ran (or queued
		// publishes that never flushed) must not leak until TTL.
		abandonBatch(ctx, opts, batch)
		return nil, fmt.Errorf("core: search cancelled: %w", err)
	}

	res := &SearchResult{Units: results}
	if cache != nil {
		res.Prefix = cache.stats(len(folds))
	}
	failed := 0
	for i := range results {
		u := &results[i]
		switch {
		case u.Skipped:
			res.Skipped++
			mUnitsSkipped.Inc()
		case u.FromCache:
			res.CacheHits++
			mUnitsCached.Inc()
		case u.Err == "":
			res.Computed++
			mUnitsComputed.Inc()
		default:
			failed++
			mUnitsFailed.Inc()
		}
		if u.Degraded {
			res.Degraded++
			mUnitsDegraded.Inc()
		}
		if u.Err != "" || u.Skipped {
			continue
		}
		// A non-finite mean (e.g. a peer published NaN) compares as
		// better-than-nothing and would become an unbeatable Best.
		if math.IsNaN(u.Mean) || math.IsInf(u.Mean, 0) {
			continue
		}
		if res.Best == nil || opts.Scorer.Better(u.Mean, res.Best.Mean) {
			res.Best = u
		}
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	if f, ok := opts.Store.(Flusher); ok {
		fctx, fsp := trace.Start(ctx, "search.flush")
		fsp.SetComponent(trace.CompDARRWait)
		if err := f.Flush(fctx); err != nil {
			fsp.SetAttr(trace.String("error", err.Error()))
			logger.Warn("search publish flush failed",
				"request_id", obs.RequestID(ctx), "err", err)
		}
		fsp.End()
	}
	logger.Debug("search complete",
		"request_id", obs.RequestID(ctx), "dataset_fp", fp, "units", len(results),
		"parallelism", opts.Parallelism, "kernel_workers", matrix.Parallelism(),
		"computed", res.Computed, "cache_hits", res.CacheHits,
		"skipped", res.Skipped, "failed", failed, "degraded", res.Degraded,
		"prefix_hits", res.Prefix.Hits, "prefix_misses", res.Prefix.Misses,
		"prefix_evictions", res.Prefix.Evictions)
	if res.Degraded > 0 {
		logger.Warn("search degraded: result store unavailable for some units",
			"request_id", obs.RequestID(ctx), "degraded", res.Degraded, "units", len(results))
	}
	if res.Best != nil {
		// Each UnitResult carries its own unit index: a spec lookup here
		// could silently pick (and refit) the wrong pipeline when
		// duplicate graph paths share a spec.
		refit := units[res.Best.Index].pipeline.Clone()
		_, rsp := trace.Start(ctx, "search.refit", trace.String("spec", res.Best.Spec))
		rsp.SetComponent(trace.CompCompute)
		err := refit.Fit(ds)
		rsp.End()
		if err != nil {
			return nil, fmt.Errorf("core: refitting best pipeline %s: %w", res.Best.Spec, err)
		}
		res.BestPipeline = refit
	}
	if searchSpan != nil {
		prof := searchSpan.Profile()
		res.Profile = SearchProfile{
			Total:     prof.Total,
			Compute:   prof.Component(trace.CompCompute),
			DARRWait:  prof.Component(trace.CompDARRWait),
			StoreWait: prof.Component(trace.CompStoreWait),
			Queue:     prof.Component(trace.CompQueue),
			Other:     prof.Component(trace.CompOther),
		}
		if prof.Total > 0 {
			for comp, h := range mCritPath {
				h.Observe(prof.Component(comp).Seconds())
			}
			logger.Debug("search critical path",
				"request_id", obs.RequestID(ctx), "trace_id", searchSpan.TraceID().String(),
				"total", res.Profile.Total, "compute", res.Profile.Compute,
				"darr_wait", res.Profile.DARRWait, "store_wait", res.Profile.StoreWait,
				"queue", res.Profile.Queue, "other", res.Profile.Other)
		}
	}
	return res, nil
}

// UnitKey builds the canonical DARR key for one evaluation unit. Clients
// that agree on dataset fingerprint, pipeline spec (with parameters) and
// evaluation spec share results.
func UnitKey(datasetFP, pipelineSpec, evalSpec string) string {
	return datasetFP + "|" + pipelineSpec + "|" + evalSpec
}

// batchState is the outcome of the bulk Lookup/Claim pass a
// BatchResultStore enables: every unit's cached score and claim grant,
// fetched in two round trips before workers spawn.
type batchState struct {
	cached  map[string]float64
	granted map[string]bool
	// lookupFailed / claimFailed record a failed bulk call; affected
	// units degrade to local-only computation, matching the per-unit
	// protocol's fault-tolerance contract.
	lookupFailed bool
	claimFailed  bool
}

// prefetchBatch runs the bulk Lookup and (for the cache misses) the bulk
// Claim. Bulk-call failures are recorded, not fatal — the search
// degrades instead of hammering a failing store once per unit.
func prefetchBatch(ctx context.Context, bs BatchResultStore, keys []string, opts SearchOptions) *batchState {
	st := &batchState{granted: map[string]bool{}}
	lctx, lsp := trace.Start(ctx, "search.bulk_lookup", trace.Int("keys", len(keys)))
	lsp.SetComponent(trace.CompDARRWait)
	scores, err := bs.LookupBatch(lctx, keys)
	if err != nil {
		lsp.SetAttr(trace.String("error", err.Error()))
		lsp.End()
		st.lookupFailed = true
		return st
	}
	lsp.SetAttr(trace.Int("hits", len(scores)))
	lsp.End()
	st.cached = scores
	toClaim := keys[:0:0]
	for _, k := range keys {
		if _, ok := scores[k]; !ok {
			toClaim = append(toClaim, k)
		}
	}
	if len(toClaim) == 0 {
		return st
	}
	cctx, csp := trace.Start(ctx, "search.bulk_claim", trace.Int("keys", len(toClaim)))
	csp.SetComponent(trace.CompDARRWait)
	granted, err := bs.ClaimBatch(cctx, toClaim)
	if err != nil {
		csp.SetAttr(trace.String("error", err.Error()))
		csp.End()
		st.claimFailed = true
		return st
	}
	grants := 0
	for _, g := range granted {
		if g {
			grants++
		}
	}
	csp.SetAttr(trace.Int("granted", grants))
	csp.End()
	st.granted = granted
	return st
}

// abandonBatch cleans up after a search that exits without evaluating
// every unit (cancellation): queued publishes are flushed so finished
// work still reaches the repository, then every bulk-granted claim is
// released — a released-but-published key is a harmless no-op, while an
// unreleased claim would block peers until TTL. Runs on a detached
// context because the search's own context is already cancelled.
func abandonBatch(ctx context.Context, opts SearchOptions, batch *batchState) {
	if batch == nil {
		return
	}
	dctx := context.WithoutCancel(ctx)
	if f, ok := opts.Store.(Flusher); ok {
		_ = f.Flush(dctx)
	}
	r, ok := opts.Store.(ClaimReleaser)
	if !ok {
		return
	}
	for key, granted := range batch.granted {
		if granted {
			_ = r.Release(dctx, key)
		}
	}
}

// releaseClaim frees a held work claim on the claimed-but-unpublished
// exit paths (pipeline failure, non-finite score, cancellation, publish
// failure) so peers can re-claim the key immediately instead of waiting
// out the TTL. Best-effort on a detached context: the store may be the
// thing that failed, and a cancelled search must still free its claims.
func releaseClaim(ctx context.Context, opts SearchOptions, key string, held bool) {
	if !held {
		return
	}
	if r, ok := opts.Store.(ClaimReleaser); ok {
		_ = r.Release(context.WithoutCancel(ctx), key)
	}
}

// resolveFromBatch applies the prefetched bulk state to one unit. done
// means the unit is fully resolved (cache hit or skip); claimHeld means
// this client holds the key's claim and must publish or release it.
func resolveFromBatch(out *UnitResult, key string, batch *batchState, opts SearchOptions) (done, claimHeld bool) {
	if batch.lookupFailed {
		out.Degraded = true
		return false, false
	}
	if score, ok := batch.cached[key]; ok {
		out.Mean = score
		out.FromCache = true
		return true, false
	}
	if batch.claimFailed {
		out.Degraded = true
		return false, false
	}
	if !batch.granted[key] {
		if opts.SkipClaimed {
			out.Skipped = true
			return true, false
		}
		return false, false
	}
	return false, true
}

// resolvePerUnit is the original sequential protocol: one Lookup and one
// Claim round trip for this unit.
func resolvePerUnit(ctx context.Context, out *UnitResult, key string, opts SearchOptions) (done, claimHeld bool) {
	score, ok, err := opts.Store.Lookup(ctx, key)
	switch {
	case err != nil:
		// The store is failing (WAN fault, circuit open, outage):
		// degrade this unit to local-only computation instead of
		// erroring out mid-search.
		out.Degraded = true
		return false, false
	case ok:
		out.Mean = score
		out.FromCache = true
		return true, false
	}
	claimed, err := opts.Store.Claim(ctx, key)
	switch {
	case err != nil:
		out.Degraded = true
		return false, false
	case !claimed && opts.SkipClaimed:
		out.Skipped = true
		return true, false
	}
	return false, claimed
}

func evaluateUnit(ctx context.Context, u searchUnit, folds []foldData, cache *prefixCache, fp, evalSpec string, opts SearchOptions, batch *batchState) (out UnitResult) {
	out = UnitResult{Index: u.index, Spec: u.pipeline.Spec(), Params: u.params}
	key := UnitKey(fp, out.Spec, evalSpec)

	// The unit span is structural (no component): per-fold children carry
	// compute, and any per-unit store round trips carry their own waits —
	// tagging the whole unit as compute would mask them.
	ctx, usp := trace.Start(ctx, "search.unit")
	if usp != nil {
		usp.SetAttr(trace.Int("unit", u.index), trace.String("spec", out.Spec))
		defer func() {
			usp.SetAttr(trace.String("outcome", unitOutcome(&out)))
			usp.End()
		}()
	}

	claimHeld := false
	if opts.Store != nil {
		var done bool
		if batch != nil {
			done, claimHeld = resolveFromBatch(&out, key, batch, opts)
		} else {
			done, claimHeld = resolvePerUnit(ctx, &out, key, opts)
		}
		if done {
			return out
		}
	}

	// Every locally evaluated unit is timed — failed and degraded units
	// land in the error-labeled series instead of vanishing from the
	// latency histogram.
	start := time.Now()
	scores, evalErr := computeUnitScores(ctx, u, folds, cache, opts)
	if evalErr != nil {
		mUnitSecondsErr.ObserveSince(start)
		out.Err = evalErr.Error()
		releaseClaim(ctx, opts, key, claimHeld)
		return out
	}
	out.Scores = scores
	mean := math.NaN()
	if len(scores) > 0 {
		sum := 0.0
		for _, s := range scores {
			sum += s
		}
		mean = sum / float64(len(scores))
	}
	if math.IsNaN(mean) || math.IsInf(mean, 0) {
		// A misbehaving scorer or an empty split set must record a
		// failure, not poison best-unit selection or the shared DARR
		// with an unbeatable non-finite "score".
		mUnitSecondsErr.ObserveSince(start)
		out.Err = fmt.Sprintf("non-finite mean score %g over %d folds", mean, len(scores))
		releaseClaim(ctx, opts, key, claimHeld)
		return out
	}
	out.Mean = mean
	mUnitSecondsOK.ObserveSince(start)

	if opts.Store != nil && !out.Degraded {
		explanation := fmt.Sprintf("pipeline=%s cv=%s metric=%s folds=%d", out.Spec, evalSpec, opts.Scorer.Name, len(scores))
		// Best-effort publish: a store outage must not fail the search,
		// but the unit is marked degraded because peers won't see it.
		if err := opts.Store.Publish(ctx, key, out.Mean, explanation); err != nil {
			out.Degraded = true
			releaseClaim(ctx, opts, key, claimHeld)
		}
	}
	return out
}

// computeUnitScores runs the unit's pipeline over every materialized
// fold. With a prefix cache, each fold resolves the deepest shared
// transformer prefix (computing and caching missing levels) and fits only
// the pipeline suffix below it; without one it fits the full chain. Both
// paths perform the same deterministic operations on the same data, so
// scores are bit-identical — the cache only removes repetition.
func computeUnitScores(ctx context.Context, u searchUnit, folds []foldData, cache *prefixCache, opts SearchOptions) ([]float64, error) {
	var prefixes []string
	if cache != nil {
		prefixes = u.pipeline.PrefixSpecs()
	}
	scores := make([]float64, 0, len(folds))
	for fi, fd := range folds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		score, err := scoreFold(ctx, u, fi, fd, cache, prefixes, opts)
		if err != nil {
			return nil, err
		}
		scores = append(scores, score)
	}
	return scores, nil
}

// scoreFold fits and scores the unit's pipeline on one fold, under a
// compute-tagged span recording how deep the prefix cache reached.
func scoreFold(ctx context.Context, u searchUnit, fi int, fd foldData, cache *prefixCache, prefixes []string, opts SearchOptions) (float64, error) {
	_, fsp := trace.Start(ctx, "search.fold_fit")
	if fsp != nil {
		fsp.SetComponent(trace.CompCompute)
		fsp.SetAttr(trace.Int("fold", fi))
	}
	defer fsp.End()

	train, test, depth := fd.train, fd.test, 0
	if cache != nil {
		var err error
		train, test, depth, err = cache.resolve(ctx, fi, u.pipeline, prefixes, fd)
		if err != nil {
			return 0, err
		}
		if fsp != nil {
			fsp.SetAttr(trace.Int("prefix_depth", depth), trace.Bool("prefix_hit", depth > 0))
		}
	}
	// Only the suffix below the deepest cache hit is cloned and fitted;
	// the cached prefix nodes would never be touched.
	p := u.pipeline.CloneFrom(depth)
	if err := p.Fit(train); err != nil {
		return 0, err
	}
	yhat, ytrue, err := p.PredictWithTruth(test)
	if err != nil {
		return 0, err
	}
	return opts.Scorer.Fn(ytrue, yhat)
}

// unitOutcome names how a unit was satisfied, for the unit span's
// outcome attribute.
func unitOutcome(u *UnitResult) string {
	switch {
	case u.Skipped:
		return "skipped"
	case u.FromCache:
		return "cache_hit"
	case u.Err != "":
		return "error"
	default:
		return "computed"
	}
}

// expandUnits enumerates (path x applicable grid assignment) units, applying
// grid values via SetParam on fresh pipeline clones.
func expandUnits(g *Graph, grid map[string][]float64) ([]searchUnit, error) {
	paths := g.Paths()
	keys := make([]string, 0, len(grid))
	for k := range grid {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var units []searchUnit
	for _, path := range paths {
		base, err := NewPipeline(path)
		if err != nil {
			return nil, err
		}
		// Grid keys that name a node on this path.
		var applicable []string
		for _, k := range keys {
			node, _, ok := strings.Cut(k, "__")
			if ok && base.HasNode(node) {
				applicable = append(applicable, k)
			}
		}
		assignments := cartesian(applicable, grid)
		for _, assign := range assignments {
			p := base.Clone()
			for k, v := range assign {
				if err := p.SetParam(k, v); err != nil {
					return nil, fmt.Errorf("core: applying grid %s=%s: %w", k, strconv.FormatFloat(v, 'g', -1, 64), err)
				}
			}
			units = append(units, searchUnit{index: len(units), pipeline: p, params: assign})
		}
	}
	return units, nil
}

// cartesian expands the grid over the given keys; with no keys it returns a
// single empty assignment.
func cartesian(keys []string, grid map[string][]float64) []map[string]float64 {
	out := []map[string]float64{{}}
	for _, k := range keys {
		vals := grid[k]
		if len(vals) == 0 {
			continue
		}
		next := make([]map[string]float64, 0, len(out)*len(vals))
		for _, assign := range out {
			for _, v := range vals {
				na := make(map[string]float64, len(assign)+1)
				for ak, av := range assign {
					na[ak] = av
				}
				na[k] = v
				next = append(next, na)
			}
		}
		out = next
	}
	return out
}
