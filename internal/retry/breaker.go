package retry

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"coda/internal/obs"
)

// Breaker telemetry: state transitions and calls rejected while open.
var (
	mBreakerOpened        = obs.GetCounter(`coda_breaker_transitions_total{to="open"}`)
	mBreakerClosed        = obs.GetCounter(`coda_breaker_transitions_total{to="closed"}`)
	mBreakerHalfOpen      = obs.GetCounter(`coda_breaker_transitions_total{to="half-open"}`)
	mBreakerShortCircuits = obs.GetCounter("coda_breaker_short_circuits_total")
)

// ErrOpen is returned (wrapped) by callers that find their circuit
// breaker open: the remote side has failed repeatedly and calls are being
// short-circuited so the layer above can degrade to local computation.
var ErrOpen = errors.New("retry: circuit open")

// BreakerState is the classic three-state circuit-breaker state.
type BreakerState int

// Breaker states.
const (
	// Closed: traffic flows, failures are counted.
	Closed BreakerState = iota
	// Open: traffic is short-circuited until the cooldown elapses.
	Open
	// HalfOpen: one probe is in flight; its outcome closes or re-opens.
	HalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Breaker trips after Threshold consecutive failures, fails fast for
// Cooldown, then lets a single probe through; a successful probe closes
// the circuit, a failed one re-opens it. All methods are safe for
// concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int // consecutive failures while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	trips    int
}

// NewBreaker builds a breaker. threshold <= 0 defaults to 5 consecutive
// failures; cooldown <= 0 defaults to 10s. nowFn may be nil (wall clock);
// tests inject virtual clocks.
func NewBreaker(threshold int, cooldown time.Duration, nowFn func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	if nowFn == nil {
		nowFn = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: nowFn}
}

// Allow reports whether a call may proceed. While open it returns false
// until the cooldown elapses, then admits exactly one probe (moving to
// half-open); concurrent callers keep failing fast until the probe
// reports via Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = HalfOpen
			b.probing = true
			mBreakerHalfOpen.Inc()
			return true
		}
		mBreakerShortCircuits.Inc()
		return false
	case HalfOpen:
		if b.probing {
			mBreakerShortCircuits.Inc()
			return false
		}
		b.probing = true
		return true
	default:
		return false
	}
}

// Record reports a call outcome. Successes reset the failure count and
// close a half-open circuit; failures count toward the threshold and
// re-open a half-open circuit immediately.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		if b.state != Closed {
			mBreakerClosed.Inc()
		}
		b.state = Closed
		b.failures = 0
		b.probing = false
		return
	}
	switch b.state {
	case HalfOpen:
		b.trip()
	case Closed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case Open:
		// A straggler finishing after the trip; nothing to do.
	}
}

func (b *Breaker) trip() {
	b.state = Open
	b.failures = 0
	b.probing = false
	b.openedAt = b.now()
	b.trips++
	mBreakerOpened.Inc()
}

// State returns the current state, applying the cooldown transition so
// callers see half-open once the wait has elapsed.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips counts how many times the breaker has opened.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// BreakerStatus is one breaker's health-report entry.
type BreakerStatus struct {
	State string `json:"state"`
	Trips int    `json:"trips"`
}

var (
	breakerRegMu sync.Mutex
	breakerReg   = map[string]*Breaker{}
)

// RegisterBreaker names a breaker in the process-wide status map that
// /healthz reports. Re-registering a name (e.g. one client per server
// URL) replaces the previous entry.
func RegisterBreaker(name string, b *Breaker) {
	if b == nil {
		return
	}
	breakerRegMu.Lock()
	defer breakerRegMu.Unlock()
	breakerReg[name] = b
}

// BreakerStatuses snapshots every registered breaker's state.
func BreakerStatuses() map[string]BreakerStatus {
	breakerRegMu.Lock()
	defer breakerRegMu.Unlock()
	out := make(map[string]BreakerStatus, len(breakerReg))
	for name, b := range breakerReg {
		out[name] = BreakerStatus{State: b.State().String(), Trips: b.Trips()}
	}
	return out
}

func init() {
	obs.RegisterHealth("breakers", func() any { return BreakerStatuses() })
}
