// Package retry is the fault-tolerance layer for client↔cloud traffic:
// exponential backoff with jitter, per-attempt timeouts, retry budgets
// that stop retry storms under sustained outages, error classification
// (transient faults retry, caller mistakes do not), and a circuit breaker
// that lets callers degrade gracefully when the remote side is down.
//
// The paper's cooperative searches run over wide-area links between
// client nodes and cloud analytics servers (Figure 1); this package makes
// a flaky WAN look like a slow-but-working one to the layers above.
package retry

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"syscall"
	"time"

	"coda/internal/obs"
	"coda/internal/obs/trace"
)

// Telemetry for the fault-tolerance layer: attempt volume, how often the
// backoff path engages, and abandoned calls. Scraped at /metrics.
var (
	mAttempts        = obs.GetCounter("coda_retry_attempts_total")
	mRetries         = obs.GetCounter("coda_retry_retries_total")
	mGiveups         = obs.GetCounter("coda_retry_giveups_total")
	mBudgetExhausted = obs.GetCounter("coda_retry_budget_exhausted_total")
	mBackoffSeconds  = obs.GetHistogram("coda_retry_backoff_seconds", nil)
)

// Default policy values, used when the corresponding Policy field is zero.
const (
	DefaultMaxAttempts    = 4
	DefaultInitialBackoff = 100 * time.Millisecond
	DefaultMaxBackoff     = 5 * time.Second
	DefaultMultiplier     = 2.0
	DefaultJitter         = 0.2
)

// Policy configures Do. The zero value is usable: every zero field takes
// the package default, and there is no per-attempt timeout or budget.
type Policy struct {
	// MaxAttempts bounds total tries, including the first (default 4).
	// A value of 1 disables retrying.
	MaxAttempts int
	// InitialBackoff is the sleep after the first failure (default 100ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 5s).
	MaxBackoff time.Duration
	// Multiplier grows the backoff between attempts (default 2).
	Multiplier float64
	// Jitter randomizes each backoff by ±Jitter fraction (default 0.2),
	// de-synchronizing clients that fail together.
	Jitter float64
	// PerAttemptTimeout bounds each attempt with its own deadline, so one
	// hung connection cannot eat the whole call budget. Zero means the
	// attempt runs under the caller's context alone.
	PerAttemptTimeout time.Duration
	// Budget, when set, is consulted before every retry (not the first
	// attempt); an exhausted budget fails the call immediately.
	Budget *Budget
	// Sleep is the backoff clock; nil uses a real timer. Tests inject a
	// recorder to assert the schedule without waiting.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = DefaultInitialBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultMaxBackoff
	}
	if p.Multiplier <= 1 {
		p.Multiplier = DefaultMultiplier
	}
	if p.Jitter <= 0 {
		p.Jitter = DefaultJitter
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Backoff returns the sleep before retry number `retry` (0-based), with
// jitter applied. Exposed for tests and for simulated-network code that
// wants the same schedule.
func (p Policy) Backoff(retry int, rng *rand.Rand) time.Duration {
	p = p.withDefaults()
	d := float64(p.InitialBackoff)
	for i := 0; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxBackoff) {
			d = float64(p.MaxBackoff)
			break
		}
	}
	if d > float64(p.MaxBackoff) {
		d = float64(p.MaxBackoff)
	}
	var u float64
	if rng != nil {
		u = rng.Float64()
	} else {
		u = rand.Float64()
	}
	// Spread uniformly over [1-Jitter, 1+Jitter].
	d *= 1 + p.Jitter*(2*u-1)
	return time.Duration(d)
}

// ErrBudgetExhausted marks a call abandoned because the retry budget ran
// dry — the remote side is likely in a sustained outage and hammering it
// with retries would make recovery slower.
var ErrBudgetExhausted = errors.New("retry: budget exhausted")

// Do runs op until it succeeds, fails terminally, or the policy gives up.
// The context passed to op carries the per-attempt deadline when one is
// configured; op must build its request from that context so cancellation
// propagates into the network layer.
func Do(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	var err error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			if p.Budget != nil && !p.Budget.Spend() {
				mBudgetExhausted.Inc()
				return fmt.Errorf("%w: after %d attempts: %v", ErrBudgetExhausted, attempt, err)
			}
			backoff := p.Backoff(attempt-1, nil)
			mRetries.Inc()
			mBackoffSeconds.Observe(backoff.Seconds())
			// Retries annotate the surrounding call span, so a trace shows
			// each backoff with its delay instead of a silent gap.
			trace.AddEvent(ctx, "retry",
				trace.Int("attempt", attempt+1), trace.Duration("backoff", backoff))
			if serr := p.Sleep(ctx, backoff); serr != nil {
				return serr
			}
		}
		mAttempts.Inc()
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if p.PerAttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.PerAttemptTimeout)
		}
		err = op(attemptCtx)
		cancel()
		if err == nil {
			if p.Budget != nil {
				p.Budget.OnSuccess()
			}
			return nil
		}
		// The caller's own context ending is terminal, even when the
		// surfaced error looks like a transient timeout.
		if cerr := ctx.Err(); cerr != nil {
			return err
		}
		if !Retryable(err) {
			return err
		}
	}
	mGiveups.Inc()
	return fmt.Errorf("retry: %d attempts: %w", p.MaxAttempts, err)
}

// StatusError reports a non-2xx HTTP response. Keeping it here lets the
// classifier see the status code without importing the HTTP client layer.
type StatusError struct {
	Status int
	Method string
	Path   string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("%s %s: status %d", e.Method, e.Path, e.Status)
}

// RetryableStatus reports whether an HTTP status code indicates a
// transient server-side condition: 5xx and 429 retry; 4xx means the
// request itself is wrong and repeating it cannot help.
func RetryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// Retryable classifies an error as transient (worth retrying) or
// terminal. Timeouts, connection resets/refusals, broken pipes, truncated
// responses and retryable HTTP statuses are transient; cancellations and
// 4xx statuses are terminal.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true // an attempt deadline, not the caller's cancellation
	}
	var se *StatusError
	if errors.As(err, &se) {
		return RetryableStatus(se.Status)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	switch {
	case errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNABORTED),
		errors.Is(err, syscall.EPIPE),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF):
		return true
	}
	return false
}

// Budget is a token bucket shared across calls (typically one per remote
// endpoint): every retry spends a token, every success earns a fraction
// back. Under a sustained outage the bucket drains and retries stop,
// bounding the amplification a fleet of clients inflicts on a struggling
// server.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	earn   float64
}

// NewBudget builds a full bucket holding max tokens, refilled by
// earnPerSuccess on every successful call. max <= 0 defaults to 10;
// earnPerSuccess <= 0 defaults to 0.1.
func NewBudget(max, earnPerSuccess float64) *Budget {
	if max <= 0 {
		max = 10
	}
	if earnPerSuccess <= 0 {
		earnPerSuccess = 0.1
	}
	return &Budget{tokens: max, max: max, earn: earnPerSuccess}
}

// Spend takes one token, reporting false when the bucket is empty.
func (b *Budget) Spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// OnSuccess earns back a fraction of a token.
func (b *Budget) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.earn
	if b.tokens > b.max {
		b.tokens = b.max
	}
}

// Tokens returns the current balance (for tests and metrics).
func (b *Budget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
