package retry

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"
)

// fakeSleep records requested backoffs without waiting.
type fakeSleep struct {
	mu    sync.Mutex
	slept []time.Duration
}

func (f *fakeSleep) sleep(_ context.Context, d time.Duration) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.slept = append(f.slept, d)
	return nil
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	fs := &fakeSleep{}
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 5, Sleep: fs.sleep}, func(context.Context) error {
		calls++
		if calls < 3 {
			return &StatusError{Status: 503, Method: "GET", Path: "/x"}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(fs.slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(fs.slept))
	}
}

func TestDoStopsOnTerminalError(t *testing.T) {
	calls := 0
	terminal := &StatusError{Status: 404, Method: "GET", Path: "/x"}
	err := Do(context.Background(), Policy{MaxAttempts: 5, Sleep: (&fakeSleep{}).sleep}, func(context.Context) error {
		calls++
		return terminal
	})
	if !errors.Is(err, terminal) {
		t.Fatalf("err = %v, want the 404", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry on 4xx)", calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 3, Sleep: (&fakeSleep{}).sleep}, func(context.Context) error {
		calls++
		return syscall.ECONNRESET
	})
	if err == nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want failure after 3 attempts", err, calls)
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("final error should wrap the last failure: %v", err)
	}
}

func TestDoRespectsCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, Policy{MaxAttempts: 5, Sleep: (&fakeSleep{}).sleep}, func(context.Context) error {
		calls++
		cancel()
		return syscall.ECONNRESET // transient, but the caller is gone
	})
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want 1 call then stop", err, calls)
	}
}

func TestDoPerAttemptTimeout(t *testing.T) {
	deadlines := 0
	err := Do(context.Background(), Policy{
		MaxAttempts:       3,
		PerAttemptTimeout: time.Millisecond,
		Sleep:             (&fakeSleep{}).sleep,
	}, func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			deadlines++
		}
		<-ctx.Done()
		return ctx.Err()
	})
	if err == nil {
		t.Fatal("want exhaustion error")
	}
	if deadlines != 3 {
		t.Fatalf("saw %d attempt deadlines, want 3", deadlines)
	}
}

func TestDoBudgetExhaustion(t *testing.T) {
	b := NewBudget(2, 0.1)
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 10, Budget: b, Sleep: (&fakeSleep{}).sleep}, func(context.Context) error {
		calls++
		return syscall.ECONNRESET
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if calls != 3 { // first attempt + 2 budgeted retries
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestBackoffScheduleAndJitterBounds(t *testing.T) {
	p := Policy{InitialBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Multiplier: 2, Jitter: 0.2}
	rng := rand.New(rand.NewSource(1))
	nominal := []time.Duration{100, 200, 400, 800, 1000, 1000}
	for i, n := range nominal {
		base := n * time.Millisecond
		d := p.Backoff(i, rng)
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		if d < lo || d > hi {
			t.Fatalf("backoff(%d) = %v, want within [%v, %v]", i, d, lo, hi)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, true},
		{syscall.ECONNRESET, true},
		{syscall.ECONNREFUSED, true},
		{io.ErrUnexpectedEOF, true},
		{io.EOF, true},
		{fmt.Errorf("wrapped: %w", syscall.ECONNRESET), true},
		{&net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}, true},
		{&StatusError{Status: 500}, true},
		{&StatusError{Status: 503}, true},
		{&StatusError{Status: 429}, true},
		{&StatusError{Status: 404}, false},
		{&StatusError{Status: 400}, false},
		{errors.New("some app error"), false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestBudgetEarnsBack(t *testing.T) {
	b := NewBudget(2, 0.5)
	if !b.Spend() || !b.Spend() {
		t.Fatal("fresh budget should cover two retries")
	}
	if b.Spend() {
		t.Fatal("empty budget must refuse")
	}
	b.OnSuccess()
	b.OnSuccess() // back to one full token
	if !b.Spend() {
		t.Fatal("earned tokens should be spendable")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := NewBreaker(3, 10*time.Second, clock)

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Record(errors.New("boom"))
	}
	if b.State() != Open || b.Trips() != 1 {
		t.Fatalf("state=%v trips=%d, want open after threshold", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("open breaker must fail fast")
	}

	now = now.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: one probe should pass")
	}
	if b.Allow() {
		t.Fatal("only one half-open probe at a time")
	}
	b.Record(errors.New("still down"))
	if b.State() != Open || b.Trips() != 2 {
		t.Fatalf("failed probe should re-open (state=%v trips=%d)", b.State(), b.Trips())
	}

	now = now.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe should pass")
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("successful probe should close, got %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker should allow traffic")
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b := NewBreaker(50, time.Second, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if b.Allow() {
					if j%2 == i%2 {
						b.Record(errors.New("x"))
					} else {
						b.Record(nil)
					}
				}
			}
		}()
	}
	wg.Wait()
}
