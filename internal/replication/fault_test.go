package replication_test

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"coda/internal/darr"
	"coda/internal/faultinject"
	"coda/internal/httpapi"
	"coda/internal/replication"
	"coda/internal/retry"
	"coda/internal/store"
)

// faultyHTTPClient wires a home store behind an HTTP server and returns a
// client whose transport injects the given faults.
func faultyHTTPClient(t *testing.T, hs store.ObjectStore, cfg faultinject.Config) (*httpapi.Client, *faultinject.Transport) {
	t.Helper()
	ts := httptest.NewServer(httpapi.NewServer(darr.NewRepo(nil, time.Minute), hs))
	t.Cleanup(ts.Close)
	tr := faultinject.NewTransport(nil, cfg)
	c := httpapi.NewClient(ts.URL, "replica-client")
	c.HTTP = &http.Client{Transport: tr, Timeout: 10 * time.Second}
	c.Retry = retry.Policy{
		MaxAttempts:    8,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     10 * time.Millisecond,
	}
	return c, tr
}

// TestPushPullReplicationUnder30PercentLoss drives both replication
// directions over a wire dropping ~30% of requests: a producer pushes
// successive versions into the home store, a consumer pulls them into a
// replica, and the replica must converge to exactly the produced bytes.
func TestPushPullReplicationUnder30PercentLoss(t *testing.T) {
	hs := store.NewHomeStore(store.Options{BlockSize: 64})
	producer, ptr := faultyHTTPClient(t, hs, faultinject.Config{Seed: 21, DropFraction: 0.3})
	consumer, ctr := faultyHTTPClient(t, hs, faultinject.Config{Seed: 22, DropFraction: 0.3})
	ctx := context.Background()

	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 8192)
	rng.Read(data)
	rep := store.NewReplica()

	for version := 1; version <= 5; version++ {
		// Push: mutate a slice of the object and upload the new version.
		for i := 0; i < 32; i++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		if _, err := producer.PutObject(ctx, "series", data); err != nil {
			t.Fatalf("push v%d under loss: %v", version, err)
		}
		// Pull: the consumer syncs its replica (deltas when they pay).
		if err := consumer.PullObject(ctx, rep, "series"); err != nil {
			t.Fatalf("pull v%d under loss: %v", version, err)
		}
		got, ok := rep.Data("series")
		if !ok || !bytes.Equal(got, data) {
			t.Fatalf("replica diverged at version %d", version)
		}
	}
	if ptr.Counts().Dropped == 0 || ctr.Counts().Dropped == 0 {
		t.Fatalf("fault injectors idle (producer %+v, consumer %+v) — test proves nothing",
			ptr.Counts(), ctr.Counts())
	}
}

// lossySubscriber models a push subscriber on a lossy link: it ignores a
// deterministic fraction of deliveries, as if they never arrived.
type lossySubscriber struct {
	rep  *store.Replica
	rng  *rand.Rand
	loss float64
	lost int
}

func (s *lossySubscriber) Deliver(u replication.Update) {
	if s.rng.Float64() < s.loss {
		s.lost++
		return
	}
	if u.Reply != nil {
		_ = s.rep.ApplyReply(u.Reply)
	}
}

// TestPushLossRepairedByPull shows the recovery loop the paper's
// lease-based push implies: when pushes are lost in transit the replica
// falls behind, and a single version-aware pull against the home store
// repairs it.
func TestPushLossRepairedByPull(t *testing.T) {
	hs := store.NewHomeStore(store.Options{BlockSize: 64})
	m := replication.NewManager(hs, nil)
	sub := &lossySubscriber{rep: store.NewReplica(), rng: rand.New(rand.NewSource(8)), loss: 0.5}
	if _, err := m.Subscribe("o", "edge-client", replication.PushValue, time.Hour, sub); err != nil {
		t.Fatal(err)
	}

	var latest []byte
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		latest = make([]byte, 2048)
		rng.Read(latest)
		if _, err := m.Publish("o", latest); err != nil {
			t.Fatal(err)
		}
	}
	if sub.lost == 0 {
		t.Fatal("no pushes were lost — test proves nothing")
	}

	// Repair: ask the home store for everything past the version we hold.
	reply, err := hs.Get("o", sub.rep.VersionOf("o"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.rep.ApplyReply(reply); err != nil {
		t.Fatal(err)
	}
	got, ok := sub.rep.Data("o")
	if !ok || !bytes.Equal(got, latest) {
		t.Fatal("pull repair did not converge the replica to the latest version")
	}
}
