package replication

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"coda/internal/store"
)

// fakeClock is an injectable virtual clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// collector records delivered updates.
type collector struct {
	mu      sync.Mutex
	updates []Update
}

func (c *collector) Deliver(u Update) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.updates = append(c.updates, u)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.updates)
}

func (c *collector) last() Update {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.updates[len(c.updates)-1]
}

func setup() (store.ObjectStore, *Manager, *fakeClock) {
	hs := store.NewHomeStore(store.Options{BlockSize: 32})
	clock := newFakeClock()
	return hs, NewManager(hs, clock.Now), clock
}

func TestPushValueDeliversFullObject(t *testing.T) {
	_, m, _ := setup()
	col := &collector{}
	if _, err := m.Subscribe("o1", "c1", PushValue, time.Minute, col); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Publish("o1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if col.count() != 1 {
		t.Fatalf("deliveries %d", col.count())
	}
	u := col.last()
	if u.Notify || u.Reply == nil || string(u.Reply.Full) != "hello" {
		t.Fatalf("update %+v", u)
	}
}

func TestPushDeltaUsesAckVersion(t *testing.T) {
	_, m, _ := setup()
	col := &collector{}
	lease, err := m.Subscribe("o1", "c1", PushDelta, time.Minute, col)
	if err != nil {
		t.Fatal(err)
	}
	base := bytes.Repeat([]byte("abcdefgh"), 512)
	v1, err := m.Publish("o1", base)
	if err != nil {
		t.Fatal(err)
	}
	// First update: subscriber had nothing, gets the full value.
	if col.last().Reply.IsDelta() {
		t.Fatal("first push should be full")
	}
	lease.AckVersion(v1)

	// Small edit: now the push should be a delta.
	v2 := append([]byte(nil), base...)
	v2[10] ^= 0xff
	if _, err := m.Publish("o1", v2); err != nil {
		t.Fatal(err)
	}
	u := col.last()
	if !u.Reply.IsDelta() {
		t.Fatal("second push should be a delta against the acked version")
	}
	if u.Reply.BaseVersion != v1 {
		t.Fatalf("delta base %d, want %d", u.Reply.BaseVersion, v1)
	}
	if lease.BytesPushed() >= int64(2*len(base)) {
		t.Fatalf("delta mode pushed %d bytes for two updates of %d-byte object", lease.BytesPushed(), len(base))
	}
}

func TestPushNotifyCarriesNoPayload(t *testing.T) {
	_, m, _ := setup()
	col := &collector{}
	lease, err := m.Subscribe("o1", "c1", PushNotify, time.Minute, col)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("sensor"), 4096)
	v1, err := m.Publish("o1", big)
	if err != nil {
		t.Fatal(err)
	}
	lease.AckVersion(v1)
	big2 := append([]byte(nil), big...)
	big2[0] ^= 1
	if _, err := m.Publish("o1", big2); err != nil {
		t.Fatal(err)
	}
	u := col.last()
	if !u.Notify || u.Reply != nil {
		t.Fatalf("notify update %+v", u)
	}
	if u.ChangedBytes <= 0 {
		t.Fatal("notification should estimate change magnitude")
	}
	if u.WireBytes() > 64 {
		t.Fatalf("notification costs %d bytes", u.WireBytes())
	}
	if u.Version != v1+1 {
		t.Fatalf("notified version %d", u.Version)
	}
}

func TestLeaseExpiryStopsDeliveries(t *testing.T) {
	_, m, clock := setup()
	col := &collector{}
	if _, err := m.Subscribe("o1", "c1", PushValue, time.Minute, col); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Publish("o1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	if _, err := m.Publish("o1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if col.count() != 1 {
		t.Fatalf("expired lease received %d deliveries", col.count())
	}
	if m.ActiveLeases("o1") != 0 {
		t.Fatal("expired lease still counted active")
	}
}

func TestLeaseRenewExtends(t *testing.T) {
	_, m, clock := setup()
	col := &collector{}
	lease, err := m.Subscribe("o1", "c1", PushValue, time.Minute, col)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(30 * time.Second)
	if err := m.Renew(lease, time.Minute); err != nil {
		t.Fatal(err)
	}
	clock.Advance(45 * time.Second) // beyond original expiry, within renewal
	if _, err := m.Publish("o1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if col.count() != 1 {
		t.Fatal("renewed lease missed a delivery")
	}
	// Renewal after expiry fails.
	clock.Advance(10 * time.Minute)
	if err := m.Renew(lease, time.Minute); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("want ErrLeaseExpired, got %v", err)
	}
}

func TestLeaseCancel(t *testing.T) {
	_, m, _ := setup()
	col := &collector{}
	lease, err := m.Subscribe("o1", "c1", PushValue, time.Hour, col)
	if err != nil {
		t.Fatal(err)
	}
	m.Cancel(lease)
	if _, err := m.Publish("o1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if col.count() != 0 {
		t.Fatal("cancelled lease still receives updates")
	}
}

func TestSubscribeValidation(t *testing.T) {
	_, m, _ := setup()
	if _, err := m.Subscribe("o1", "c1", PushValue, 0, &collector{}); err == nil {
		t.Fatal("want ttl error")
	}
	if _, err := m.Subscribe("o1", "c1", PushValue, time.Minute, nil); err == nil {
		t.Fatal("want nil-subscriber error")
	}
	if _, err := m.Subscribe("o1", "c1", PushMode(99), time.Minute, &collector{}); err == nil {
		t.Fatal("want mode error")
	}
}

func TestMultipleSubscribersFanOut(t *testing.T) {
	_, m, _ := setup()
	cols := make([]*collector, 5)
	for i := range cols {
		cols[i] = &collector{}
		if _, err := m.Subscribe("o1", "c", PushValue, time.Minute, cols[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Publish("o1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i, c := range cols {
		if c.count() != 1 {
			t.Fatalf("subscriber %d got %d updates", i, c.count())
		}
	}
}

func TestTriggers(t *testing.T) {
	tests := []struct {
		name    string
		trigger Trigger
		updates []int // payload sizes
		want    bool
	}{
		{"count below", CountTrigger{N: 3}, []int{1, 1, 1}, false},
		{"count above", CountTrigger{N: 3}, []int{1, 1, 1, 1}, true},
		{"bytes below", BytesTrigger{N: 100}, []int{50, 50}, false},
		{"bytes above", BytesTrigger{N: 100}, []int{50, 51}, true},
		{"app specific", FuncTrigger{Label: "odd", Fn: func(s UpdateStats) bool { return s.Count%2 == 1 }}, []int{1, 1, 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			mon := NewMonitor(tt.trigger)
			for _, sz := range tt.updates {
				mon.RecordUpdate(sz)
			}
			if got := mon.Check(); got != tt.want {
				t.Fatalf("Check() = %v, want %v (stats %+v)", got, tt.want, mon.Stats())
			}
		})
	}
}

func TestMonitorResetCycle(t *testing.T) {
	mon := NewMonitor(CountTrigger{N: 2})
	for i := 0; i < 3; i++ {
		mon.RecordUpdate(10)
	}
	if !mon.Check() {
		t.Fatal("trigger should fire")
	}
	mon.Reset()
	if mon.Check() {
		t.Fatal("reset should clear stats")
	}
	if mon.Recomputes() != 1 {
		t.Fatalf("recomputes %d", mon.Recomputes())
	}
}

func TestTriggerNames(t *testing.T) {
	if (CountTrigger{N: 5}).Name() != "count>5" {
		t.Fatal("count name")
	}
	if (BytesTrigger{N: 9}).Name() != "bytes>9" {
		t.Fatal("bytes name")
	}
	if (FuncTrigger{}).Name() != "app-specific" {
		t.Fatal("func default name")
	}
}

func TestPushModesEndToEndBandwidthOrdering(t *testing.T) {
	// One object, many small updates: notify < delta < value in bytes.
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 8192)
	rng.Read(data)

	run := func(mode PushMode) int64 {
		_, m, _ := setup()
		col := &collector{}
		lease, err := m.Subscribe("o", "c", mode, time.Hour, col)
		if err != nil {
			t.Fatal(err)
		}
		cur := append([]byte(nil), data...)
		for step := 0; step < 10; step++ {
			cur = append([]byte(nil), cur...)
			cur[rng.Intn(len(cur))] ^= 0xff
			v, err := m.Publish("o", cur)
			if err != nil {
				t.Fatal(err)
			}
			lease.AckVersion(v)
		}
		return lease.BytesPushed()
	}
	value := run(PushValue)
	deltaBytes := run(PushDelta)
	notify := run(PushNotify)
	if !(notify < deltaBytes && deltaBytes < value) {
		t.Fatalf("bandwidth ordering violated: notify=%d delta=%d value=%d", notify, deltaBytes, value)
	}
}
