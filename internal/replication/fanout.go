package replication

import (
	"sync"
	"time"

	"coda/internal/store"
)

// Config tunes a Manager's fanout pipeline.
type Config struct {
	// Workers is the size of the fanout worker pool. 0 keeps the
	// synchronous inline fanout (Publish delivers before returning);
	// any positive count makes Publish enqueue-and-return, with at most
	// Workers concurrent deliveries across all leases.
	Workers int
	// CoalesceWindow, when positive, is the minimum gap between two
	// deliveries to the same lease: publishes landing inside the window
	// merge into the lease's pending slot and go out as one frame
	// carrying the latest version and the accumulated publish count. A
	// hot object with many watchers then costs O(watchers) frames per
	// window instead of O(watchers × updates). The window rides the wall
	// clock (timer-based), so managers on virtual clocks should leave it
	// zero. Async mode only.
	CoalesceWindow time.Duration
	// SweepInterval, when positive, runs Sweep on that period so expired
	// leases on idle keys — which the publish-path prune never revisits —
	// leave the registry. Async mode only; synchronous callers invoke
	// Sweep themselves.
	SweepInterval time.Duration
}

// NewManagerWith wraps a home store with an explicit fanout configuration.
// nowFn may be nil (wall clock); tests and simulations inject virtual
// clocks. Async managers (cfg.Workers > 0) own goroutines — call Close
// when done with them.
func NewManagerWith(hs store.ObjectStore, nowFn func() time.Time, cfg Config) *Manager {
	if nowFn == nil {
		nowFn = time.Now
	}
	m := &Manager{store: hs, now: nowFn, cfg: cfg,
		leases: map[string][]*Lease{}, byID: map[string]*Lease{}}
	m.qcond = sync.NewCond(&m.qmu)
	for i := 0; i < cfg.Workers; i++ {
		m.workers.Add(1)
		go m.worker()
	}
	if cfg.Workers > 0 && cfg.SweepInterval > 0 {
		m.sweepStop = make(chan struct{})
		m.workers.Add(1)
		go m.sweeper(cfg.SweepInterval)
	}
	return m
}

// async reports whether this manager fans out through the worker pool.
func (m *Manager) async() bool { return m.cfg.Workers > 0 }

// ManagerStats is a point-in-time snapshot of the serving tier.
type ManagerStats struct {
	ActiveLeases int `json:"active_leases"`
	QueueDepth   int `json:"queue_depth"`
	Workers      int `json:"workers"`
}

// Stats snapshots the lease registry and fanout queue.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	active := len(m.byID)
	m.mu.Unlock()
	m.qmu.Lock()
	depth := len(m.queue)
	m.qmu.Unlock()
	return ManagerStats{ActiveLeases: active, QueueDepth: depth, Workers: m.cfg.Workers}
}

// Close stops the worker pool and the sweeper after draining already
// queued deliveries. It is idempotent and a no-op for synchronous
// managers. Publishes after Close still commit to the store; their
// fanout frames are dropped.
func (m *Manager) Close() {
	m.qmu.Lock()
	if m.closed {
		m.qmu.Unlock()
		return
	}
	m.closed = true
	m.qcond.Broadcast()
	m.qmu.Unlock()
	if m.sweepStop != nil {
		close(m.sweepStop)
	}
	m.workers.Wait()
}

// Flush blocks until every queued or in-delivery frame has been handed to
// its subscriber — the barrier tests and the load harness use to observe
// a quiesced fanout.
func (m *Manager) Flush() {
	m.qmu.Lock()
	for m.inflight > 0 {
		m.qcond.Wait()
	}
	m.qmu.Unlock()
}

// enqueuePending merges one publish into the lease's coalescing slot and
// schedules a delivery when the lease is idle. Called with no locks held.
func (m *Manager) enqueuePending(l *Lease, version uint64, now time.Time) {
	l.mu.Lock()
	if l.cancelled {
		l.mu.Unlock()
		return
	}
	if l.pendCount == 0 {
		l.pendSince = now
	} else {
		mCoalesced.Inc()
	}
	l.pendCount++
	if version > l.pendVersion {
		l.pendVersion = version
	}
	if l.state != leaseIdle {
		// Already queued or being delivered; the pending slot will be
		// picked up by the worker's post-delivery check.
		l.mu.Unlock()
		return
	}
	l.state = leaseQueued
	var delay time.Duration
	if w := m.cfg.CoalesceWindow; w > 0 && !l.lastDeliver.IsZero() {
		delay = w - now.Sub(l.lastDeliver)
	}
	l.mu.Unlock()
	m.push(l, delay)
}

// push hands a queued lease to the worker pool, after delay when the
// coalescing window demands spacing.
func (m *Manager) push(l *Lease, delay time.Duration) {
	m.qmu.Lock()
	m.inflight++
	m.qmu.Unlock()
	if delay > 0 {
		time.AfterFunc(delay, func() { m.pushNow(l) })
		return
	}
	m.pushNow(l)
}

func (m *Manager) pushNow(l *Lease) {
	m.qmu.Lock()
	if m.closed {
		m.inflight--
		m.qcond.Broadcast()
		m.qmu.Unlock()
		l.mu.Lock()
		l.state = leaseIdle
		l.pendCount, l.pendVersion = 0, 0
		l.mu.Unlock()
		return
	}
	m.queue = append(m.queue, l)
	mQueueDepth.Set(float64(len(m.queue)))
	m.qcond.Broadcast()
	m.qmu.Unlock()
}

// worker drains the fanout queue: take a lease, deliver its coalesced
// frame, re-queue it if more publishes arrived meanwhile.
func (m *Manager) worker() {
	defer m.workers.Done()
	for {
		m.qmu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.qcond.Wait()
		}
		if len(m.queue) == 0 {
			m.qmu.Unlock()
			return
		}
		l := m.queue[0]
		m.queue = m.queue[1:]
		mQueueDepth.Set(float64(len(m.queue)))
		m.qmu.Unlock()

		m.deliverPending(l)

		m.qmu.Lock()
		m.inflight--
		if m.inflight == 0 {
			m.qcond.Broadcast()
		}
		m.qmu.Unlock()
	}
}

// deliverPending swaps out the lease's coalescing slot, builds the update
// against the store's current state, and delivers it. Failures and panics
// are counted and isolated to this lease; other leases' frames ride other
// queue entries.
func (m *Manager) deliverPending(l *Lease) {
	now := m.now()
	l.mu.Lock()
	if l.cancelled || now.After(l.expires) {
		expired := !l.cancelled
		l.state = leaseIdle
		l.pendCount, l.pendVersion = 0, 0
		l.mu.Unlock()
		if expired {
			mLeasesExpired.Inc()
			m.unregister(l)
		}
		return
	}
	count := l.pendCount
	version := l.pendVersion
	since := l.pendSince
	l.pendCount, l.pendVersion = 0, 0
	l.state = leaseDelivering
	l.mu.Unlock()

	u, err := m.buildUpdate(l, l.Key, version)
	if err != nil {
		mPushErrors.Inc()
		m.logger().Warn("building push update failed",
			"key", l.Key, "client", l.ClientID, "lease", l.ID, "err", err)
	} else {
		u.Coalesced = count
		if derr := m.deliverOne(l, u); derr == nil {
			mFanoutSeconds.Observe(m.now().Sub(since).Seconds())
		}
	}

	l.mu.Lock()
	l.lastDeliver = m.now()
	if l.pendCount > 0 && !l.cancelled {
		l.state = leaseQueued
		l.mu.Unlock()
		m.push(l, m.cfg.CoalesceWindow)
		return
	}
	l.state = leaseIdle
	l.mu.Unlock()
}

// sweeper periodically prunes expired leases on idle keys.
func (m *Manager) sweeper(every time.Duration) {
	defer m.workers.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.Sweep()
		case <-m.sweepStop:
			return
		}
	}
}
