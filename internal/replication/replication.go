// Package replication implements Section III's update-propagation
// machinery between home data stores and clients:
//
//   - Pull: clients query the home store when they want fresh data.
//   - Push (lease-based subscriptions, after Gray & Cheriton): the home
//     store sends updates to subscribed clients until their lease expires;
//     clients renew to keep receiving, or cancel early.
//   - Three push payloads: the entire current value, a delta against the
//     subscriber's version, or a lightweight notification carrying only
//     the new version number and change magnitude, letting the client
//     decide if and when to fetch.
//
// The package also provides the change-detection triggers that decide when
// re-running analytics is warranted: update count, update bytes, or an
// application-specific predicate.
//
// A Manager fans out in one of two modes. The default (Config.Workers == 0)
// delivers synchronously inside Publish — simple, and right for in-process
// consumers like the experiments. With Config.Workers > 0 the manager runs
// a bounded worker pool over per-lease coalescing slots: Publish merges the
// update into each lease's pending slot and returns immediately, so a slow,
// failing, or panicking subscriber never stalls the publisher or any other
// lease, and a burst of updates to a hot object collapses into one frame
// per lease carrying the latest version and the accumulated change size.
// That is the serving tier behind httpapi's SSE/long-poll lease endpoints.
package replication

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"coda/internal/obs"
	"coda/internal/obs/trace"
	"coda/internal/store"
)

// Replication telemetry: fan-out volume and wire cost per push mode, the
// lease population, and the async fanout pipeline.
var (
	mPushValue     = obs.GetCounter(`coda_replication_pushes_total{mode="push-value"}`)
	mPushDelta     = obs.GetCounter(`coda_replication_pushes_total{mode="push-delta"}`)
	mPushNotify    = obs.GetCounter(`coda_replication_pushes_total{mode="push-notify"}`)
	mPushBytes     = obs.GetCounter("coda_replication_push_bytes_total")
	mLeasesExpired = obs.GetCounter("coda_replication_leases_pruned_total")

	mPushErrors    = obs.GetCounter("coda_replication_push_errors_total")
	mPushPanics    = obs.GetCounter("coda_replication_push_panics_total")
	mLeasesActive  = obs.GetGauge("coda_replication_leases_active")
	mSubscribes    = obs.GetCounter("coda_replication_subscribes_total")
	mCancels       = obs.GetCounter("coda_replication_cancels_total")
	mRenewals      = obs.GetCounter("coda_replication_renewals_total")
	mCoalesced     = obs.GetCounter("coda_replication_coalesced_updates_total")
	mQueueDepth    = obs.GetGauge("coda_replication_fanout_queue_depth")
	mFanoutSeconds = obs.GetHistogram("coda_replication_fanout_seconds", nil)
)

// PushMode selects the payload a subscription delivers.
type PushMode int

// Push modes from Section III.
const (
	// PushValue sends the entire current value on every update.
	PushValue PushMode = iota + 1
	// PushDelta sends a delta against the subscriber's last-acknowledged
	// version (falling back to the full value when a delta does not pay).
	PushDelta
	// PushNotify sends only the new version number and an indication of
	// how much the object changed.
	PushNotify
)

// String names the mode.
func (m PushMode) String() string {
	switch m {
	case PushValue:
		return "push-value"
	case PushDelta:
		return "push-delta"
	case PushNotify:
		return "push-notify"
	default:
		return fmt.Sprintf("pushmode(%d)", int(m))
	}
}

// Update is what a subscriber receives.
type Update struct {
	Key     string
	Version uint64
	// Reply carries the value or delta for PushValue/PushDelta.
	Reply *store.Reply
	// Notify is set for PushNotify: no payload, just metadata.
	Notify bool
	// ChangedBytes estimates how much the object changed (delta wire
	// size), included with notifications per Section III.
	ChangedBytes int
	// Coalesced counts the publishes this update represents: 1 on the
	// synchronous path, possibly more when the async fanout merged a
	// burst into one frame carrying only the latest version.
	Coalesced int
}

// WireBytes estimates the network payload of this update; notifications
// cost a small fixed header.
func (u *Update) WireBytes() int {
	if u.Notify {
		return notifyWireBytes
	}
	if u.Reply != nil {
		return u.Reply.WireBytes()
	}
	return 0
}

const notifyWireBytes = 24 // key hash + version + change size

// Subscriber consumes pushed updates. Deliver runs on the publisher's
// goroutine (synchronous managers) or on a fanout worker (async managers)
// and must not block; a blocking Deliver occupies one fanout worker until
// it returns. A panic in Deliver is recovered and counted — it costs that
// lease one frame, never the fanout.
type Subscriber interface {
	Deliver(u Update)
}

// SubscriberFunc adapts a function to Subscriber.
type SubscriberFunc func(u Update)

// Deliver implements Subscriber.
func (f SubscriberFunc) Deliver(u Update) { f(u) }

// ErrLeaseExpired is returned by Renew/Cancel on an already-expired lease.
var ErrLeaseExpired = errors.New("replication: lease expired")

// ErrLeaseNotFound is returned by the ByID operations for unknown ids.
var ErrLeaseNotFound = errors.New("replication: lease not found")

// leaseState tracks where a lease sits in the async fanout pipeline.
type leaseState int

const (
	leaseIdle       leaseState = iota // no pending frame
	leaseQueued                       // pending frame awaiting a worker
	leaseDelivering                   // a worker is delivering its frame
)

// Lease is one client's subscription to an object for a bounded period.
type Lease struct {
	// ID names the lease for the HTTP serving tier (renew/cancel/ack by
	// id); it is unique within the process.
	ID       string
	Key      string
	ClientID string
	Mode     PushMode

	mu          sync.Mutex
	expires     time.Time
	cancelled   bool
	ackVersion  uint64 // last version the subscriber holds (for deltas)
	deliveries  int
	coalesced   int64 // extra publishes merged into delivered frames
	bytesPushed int64
	sub         Subscriber

	// Async fanout state: the coalescing slot. pendCount publishes since
	// the last delivery, collapsed to pendVersion (the latest); pendSince
	// stamps the oldest undelivered publish for the latency histogram.
	state       leaseState
	pendCount   int
	pendVersion uint64
	pendSince   time.Time
	lastDeliver time.Time
}

// Expired reports whether the lease has lapsed at time now.
func (l *Lease) Expired(now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cancelled || now.After(l.expires)
}

// Expires returns the current expiry instant.
func (l *Lease) Expires() time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.expires
}

// AckVersion records the version the subscriber now holds, enabling
// delta pushes against it.
func (l *Lease) AckVersion(v uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if v > l.ackVersion {
		l.ackVersion = v
	}
}

// Deliveries returns how many update frames this lease received.
func (l *Lease) Deliveries() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.deliveries
}

// CoalescedUpdates returns how many publishes beyond one-per-frame were
// merged into this lease's delivered frames.
func (l *Lease) CoalescedUpdates() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.coalesced
}

// BytesPushed returns total payload bytes pushed over this lease.
func (l *Lease) BytesPushed() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytesPushed
}

// newLeaseID mints a process-unique lease id.
func newLeaseID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("replication: reading random lease id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Manager owns a home store's subscriptions and fans out updates. It
// programs against the ObjectStore seam, so any backend (in-memory,
// append-only log) sits underneath unchanged.
type Manager struct {
	store store.ObjectStore
	now   func() time.Time
	cfg   Config
	// Logger receives per-publish debug logs; nil uses slog.Default().
	Logger *slog.Logger
	// OnRelease, when set, is invoked once for every lease leaving the
	// registry — cancelled, pruned after expiry, or swept — with no
	// manager locks held. The HTTP serving tier uses it to tear down the
	// per-lease stream mailbox.
	OnRelease func(*Lease)

	mu     sync.Mutex
	leases map[string][]*Lease // key -> registered leases
	byID   map[string]*Lease

	// Async fanout pipeline; see fanout.go.
	qmu       sync.Mutex
	qcond     *sync.Cond
	queue     []*Lease
	inflight  int // leases in state queued or delivering
	closed    bool
	workers   sync.WaitGroup
	sweepStop chan struct{}
}

func (m *Manager) logger() *slog.Logger {
	if m.Logger != nil {
		return m.Logger
	}
	return slog.Default()
}

// NewManager wraps a home store with synchronous fanout. nowFn may be nil
// (wall clock); tests and simulations inject virtual clocks.
func NewManager(hs store.ObjectStore, nowFn func() time.Time) *Manager {
	return NewManagerWith(hs, nowFn, Config{})
}

// Subscribe registers a lease for key with the given duration and mode.
func (m *Manager) Subscribe(key, clientID string, mode PushMode, ttl time.Duration, sub Subscriber) (*Lease, error) {
	if sub == nil {
		return nil, fmt.Errorf("replication: nil subscriber")
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("replication: lease duration %v must be positive", ttl)
	}
	switch mode {
	case PushValue, PushDelta, PushNotify:
	default:
		return nil, fmt.Errorf("replication: unknown push mode %v", mode)
	}
	l := &Lease{ID: newLeaseID(), Key: key, ClientID: clientID, Mode: mode, expires: m.now().Add(ttl), sub: sub}
	m.mu.Lock()
	m.leases[key] = append(m.leases[key], l)
	m.byID[l.ID] = l
	m.mu.Unlock()
	mSubscribes.Inc()
	mLeasesActive.Add(1)
	return l, nil
}

// Renew extends an unexpired lease by ttl from now.
func (m *Manager) Renew(l *Lease, ttl time.Duration) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cancelled || m.now().After(l.expires) {
		return fmt.Errorf("%w: %s/%s", ErrLeaseExpired, l.ClientID, l.Key)
	}
	l.expires = m.now().Add(ttl)
	mRenewals.Inc()
	return nil
}

// Cancel ends a lease early, as clients are expected to do when they no
// longer need update information. The lease leaves the registry
// immediately — ActiveLeases and memory reflect the cancellation without
// waiting for a future Publish of the same key.
func (m *Manager) Cancel(l *Lease) {
	l.mu.Lock()
	already := l.cancelled
	l.cancelled = true
	l.mu.Unlock()
	if already {
		return
	}
	mCancels.Inc()
	m.unregister(l)
}

// LeaseByID resolves a lease id, reporting false for unknown (or already
// released) ids.
func (m *Manager) LeaseByID(id string) (*Lease, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.byID[id]
	return l, ok
}

// RenewByID renews the lease named by id.
func (m *Manager) RenewByID(id string, ttl time.Duration) (*Lease, error) {
	l, ok := m.LeaseByID(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrLeaseNotFound, id)
	}
	if err := m.Renew(l, ttl); err != nil {
		return nil, err
	}
	return l, nil
}

// CancelByID cancels the lease named by id.
func (m *Manager) CancelByID(id string) error {
	l, ok := m.LeaseByID(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrLeaseNotFound, id)
	}
	m.Cancel(l)
	return nil
}

// AckByID records the version held by the subscriber of lease id.
func (m *Manager) AckByID(id string, version uint64) error {
	l, ok := m.LeaseByID(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrLeaseNotFound, id)
	}
	l.AckVersion(version)
	return nil
}

// unregister removes l from the key index and the id registry, firing
// OnRelease exactly once per lease.
func (m *Manager) unregister(l *Lease) {
	m.mu.Lock()
	removed := false
	if _, ok := m.byID[l.ID]; ok {
		delete(m.byID, l.ID)
		removed = true
		ls := m.leases[l.Key]
		for i, x := range ls {
			if x == l {
				ls = append(ls[:i], ls[i+1:]...)
				break
			}
		}
		if len(ls) == 0 {
			delete(m.leases, l.Key)
		} else {
			m.leases[l.Key] = ls
		}
	}
	m.mu.Unlock()
	if removed {
		mLeasesActive.Add(-1)
		if m.OnRelease != nil {
			m.OnRelease(l)
		}
	}
}

// ActiveLeases counts unexpired leases for a key.
func (m *Manager) ActiveLeases(key string) int {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, l := range m.leases[key] {
		if !l.Expired(now) {
			n++
		}
	}
	return n
}

// registered reports how many leases the registry holds for key,
// regardless of expiry — the memory-accounting view Sweep maintains.
func (m *Manager) registered(key string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.leases[key])
}

// Sweep prunes every expired lease across all keys — including keys that
// stopped publishing, which the publish-path prune never revisits — and
// returns how many it released. Async managers run this periodically
// (Config.SweepInterval); synchronous callers may invoke it directly.
func (m *Manager) Sweep() int {
	now := m.now()
	m.mu.Lock()
	var expired []*Lease
	for _, ls := range m.leases {
		for _, l := range ls {
			if l.Expired(now) {
				expired = append(expired, l)
			}
		}
	}
	m.mu.Unlock()
	for _, l := range expired {
		mLeasesExpired.Inc()
		m.unregister(l)
	}
	return len(expired)
}

// Publish writes a new version to the home store and pushes it to every
// active lease according to its mode, pruning expired leases as it goes.
// It returns the new version number.
func (m *Manager) Publish(key string, data []byte) (uint64, error) {
	return m.PublishCtx(context.Background(), key, data)
}

// PublishCtx is Publish with a caller-supplied context, so a publish
// that happens inside a traced operation (a search's re-analytics
// trigger, an HTTP handler) appears as a store-tagged child span with
// its fan-out recorded.
//
// Synchronous managers deliver inline: every active lease is attempted
// even when building or delivering an earlier lease's update fails, and
// the per-lease failures come back joined (errors.Join) alongside the
// committed version. Async managers merge the update into each lease's
// coalescing slot and return as soon as the store write commits.
func (m *Manager) PublishCtx(ctx context.Context, key string, data []byte) (uint64, error) {
	_, sp := trace.Start(ctx, "replication.publish", trace.String("key", key))
	sp.SetComponent(trace.CompStoreWait)
	defer sp.End()
	version, err := m.store.Put(key, data)
	if err != nil {
		sp.SetAttr(trace.String("error", err.Error()))
		return 0, fmt.Errorf("replication: publishing %q: %w", key, err)
	}

	now := m.now()
	m.mu.Lock()
	leases := m.leases[key]
	active := leases[:0]
	var pruned []*Lease
	for _, l := range leases {
		if l.Expired(now) {
			pruned = append(pruned, l)
		} else {
			active = append(active, l)
		}
	}
	if len(active) == 0 {
		delete(m.leases, key)
	} else {
		m.leases[key] = active
	}
	snapshot := append([]*Lease(nil), active...)
	m.mu.Unlock()
	for _, l := range pruned {
		mLeasesExpired.Inc()
		m.unregister(l)
	}

	var fanoutErr error
	if m.async() {
		for _, l := range snapshot {
			m.enqueuePending(l, version, now)
		}
	} else {
		fanoutErr = m.fanoutSync(snapshot, key, version)
	}
	sp.SetAttr(trace.Int64("version", int64(version)), trace.Int("subscribers", len(snapshot)))
	if lg := m.logger(); lg.Enabled(context.Background(), slog.LevelDebug) {
		lg.Debug("published object version",
			"key", key, "version", version, "subscribers", len(snapshot), "async", m.async())
	}
	return version, fanoutErr
}

// fanoutSync delivers one update per lease inline. A lease whose update
// cannot be built, or whose subscriber panics, is recorded and skipped —
// every remaining lease still gets its delivery.
func (m *Manager) fanoutSync(snapshot []*Lease, key string, version uint64) error {
	var errs []error
	for _, l := range snapshot {
		u, err := m.buildUpdate(l, key, version)
		if err != nil {
			mPushErrors.Inc()
			errs = append(errs, fmt.Errorf("replication: building update for %s: %w", l.ClientID, err))
			continue
		}
		u.Coalesced = 1
		if err := m.deliverOne(l, u); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// deliverOne hands one update to the lease's subscriber, isolating panics
// and moving the delivery accounting after the handoff so a failed
// delivery is never counted as delivered.
func (m *Manager) deliverOne(l *Lease, u Update) (err error) {
	defer func() {
		if p := recover(); p != nil {
			mPushPanics.Inc()
			mPushErrors.Inc()
			err = fmt.Errorf("replication: subscriber %s/%s panicked: %v", l.ClientID, l.Key, p)
			m.logger().Error("subscriber panicked during delivery",
				"key", l.Key, "client", l.ClientID, "lease", l.ID, "panic", fmt.Sprint(p))
		}
	}()
	l.mu.Lock()
	sub := l.sub
	l.mu.Unlock()
	sub.Deliver(u)
	l.mu.Lock()
	l.deliveries++
	if u.Coalesced > 1 {
		l.coalesced += int64(u.Coalesced - 1)
	}
	l.bytesPushed += int64(u.WireBytes())
	l.mu.Unlock()
	switch l.Mode {
	case PushValue:
		mPushValue.Inc()
	case PushDelta:
		mPushDelta.Inc()
	case PushNotify:
		mPushNotify.Inc()
	}
	mPushBytes.Add(int64(u.WireBytes()))
	return nil
}

func (m *Manager) buildUpdate(l *Lease, key string, version uint64) (Update, error) {
	switch l.Mode {
	case PushValue:
		reply, err := m.store.Get(key, 0) // force full value
		if err != nil {
			return Update{}, err
		}
		return Update{Key: key, Version: reply.Version, Reply: reply}, nil
	case PushDelta:
		l.mu.Lock()
		ack := l.ackVersion
		l.mu.Unlock()
		reply, err := m.store.Get(key, ack)
		if err != nil {
			return Update{}, err
		}
		return Update{Key: key, Version: reply.Version, Reply: reply}, nil
	case PushNotify:
		l.mu.Lock()
		ack := l.ackVersion
		l.mu.Unlock()
		changed := 0
		if ack != 0 {
			if reply, err := m.store.Get(key, ack); err == nil && reply.IsDelta() {
				changed = reply.Delta.WireSize()
			}
		}
		return Update{Key: key, Version: version, Notify: true, ChangedBytes: changed}, nil
	default:
		return Update{}, fmt.Errorf("replication: lease has invalid mode %v", l.Mode)
	}
}
