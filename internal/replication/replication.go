// Package replication implements Section III's update-propagation
// machinery between home data stores and clients:
//
//   - Pull: clients query the home store when they want fresh data.
//   - Push (lease-based subscriptions, after Gray & Cheriton): the home
//     store sends updates to subscribed clients until their lease expires;
//     clients renew to keep receiving, or cancel early.
//   - Three push payloads: the entire current value, a delta against the
//     subscriber's version, or a lightweight notification carrying only
//     the new version number and change magnitude, letting the client
//     decide if and when to fetch.
//
// The package also provides the change-detection triggers that decide when
// re-running analytics is warranted: update count, update bytes, or an
// application-specific predicate.
package replication

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"coda/internal/obs"
	"coda/internal/obs/trace"
	"coda/internal/store"
)

// Replication telemetry: fan-out volume and wire cost per push mode.
var (
	mPushValue     = obs.GetCounter(`coda_replication_pushes_total{mode="push-value"}`)
	mPushDelta     = obs.GetCounter(`coda_replication_pushes_total{mode="push-delta"}`)
	mPushNotify    = obs.GetCounter(`coda_replication_pushes_total{mode="push-notify"}`)
	mPushBytes     = obs.GetCounter("coda_replication_push_bytes_total")
	mLeasesExpired = obs.GetCounter("coda_replication_leases_pruned_total")
)

// PushMode selects the payload a subscription delivers.
type PushMode int

// Push modes from Section III.
const (
	// PushValue sends the entire current value on every update.
	PushValue PushMode = iota + 1
	// PushDelta sends a delta against the subscriber's last-acknowledged
	// version (falling back to the full value when a delta does not pay).
	PushDelta
	// PushNotify sends only the new version number and an indication of
	// how much the object changed.
	PushNotify
)

// String names the mode.
func (m PushMode) String() string {
	switch m {
	case PushValue:
		return "push-value"
	case PushDelta:
		return "push-delta"
	case PushNotify:
		return "push-notify"
	default:
		return fmt.Sprintf("pushmode(%d)", int(m))
	}
}

// Update is what a subscriber receives.
type Update struct {
	Key     string
	Version uint64
	// Reply carries the value or delta for PushValue/PushDelta.
	Reply *store.Reply
	// Notify is set for PushNotify: no payload, just metadata.
	Notify bool
	// ChangedBytes estimates how much the object changed (delta wire
	// size), included with notifications per Section III.
	ChangedBytes int
}

// WireBytes estimates the network payload of this update; notifications
// cost a small fixed header.
func (u *Update) WireBytes() int {
	if u.Notify {
		return notifyWireBytes
	}
	if u.Reply != nil {
		return u.Reply.WireBytes()
	}
	return 0
}

const notifyWireBytes = 24 // key hash + version + change size

// Subscriber consumes pushed updates. Deliver runs on the publisher's
// goroutine and must not block.
type Subscriber interface {
	Deliver(u Update)
}

// SubscriberFunc adapts a function to Subscriber.
type SubscriberFunc func(u Update)

// Deliver implements Subscriber.
func (f SubscriberFunc) Deliver(u Update) { f(u) }

// ErrLeaseExpired is returned by Renew/Cancel on an already-expired lease.
var ErrLeaseExpired = errors.New("replication: lease expired")

// Lease is one client's subscription to an object for a bounded period.
type Lease struct {
	Key      string
	ClientID string
	Mode     PushMode

	mu          sync.Mutex
	expires     time.Time
	cancelled   bool
	ackVersion  uint64 // last version the subscriber holds (for deltas)
	deliveries  int
	bytesPushed int64
	sub         Subscriber
}

// Expired reports whether the lease has lapsed at time now.
func (l *Lease) Expired(now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cancelled || now.After(l.expires)
}

// AckVersion records the version the subscriber now holds, enabling
// delta pushes against it.
func (l *Lease) AckVersion(v uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if v > l.ackVersion {
		l.ackVersion = v
	}
}

// Deliveries returns how many updates this lease received.
func (l *Lease) Deliveries() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.deliveries
}

// BytesPushed returns total payload bytes pushed over this lease.
func (l *Lease) BytesPushed() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytesPushed
}

// Manager owns a home store's subscriptions and fans out updates. It
// programs against the ObjectStore seam, so any backend (in-memory,
// append-only log) sits underneath unchanged.
type Manager struct {
	store store.ObjectStore
	now   func() time.Time
	// Logger receives per-publish debug logs; nil uses slog.Default().
	Logger *slog.Logger

	mu     sync.Mutex
	leases map[string][]*Lease // key -> active leases
}

func (m *Manager) logger() *slog.Logger {
	if m.Logger != nil {
		return m.Logger
	}
	return slog.Default()
}

// NewManager wraps a home store. nowFn may be nil (wall clock); tests and
// simulations inject virtual clocks.
func NewManager(hs store.ObjectStore, nowFn func() time.Time) *Manager {
	if nowFn == nil {
		nowFn = time.Now
	}
	return &Manager{store: hs, now: nowFn, leases: map[string][]*Lease{}}
}

// Subscribe registers a lease for key with the given duration and mode.
func (m *Manager) Subscribe(key, clientID string, mode PushMode, ttl time.Duration, sub Subscriber) (*Lease, error) {
	if sub == nil {
		return nil, fmt.Errorf("replication: nil subscriber")
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("replication: lease duration %v must be positive", ttl)
	}
	switch mode {
	case PushValue, PushDelta, PushNotify:
	default:
		return nil, fmt.Errorf("replication: unknown push mode %v", mode)
	}
	l := &Lease{Key: key, ClientID: clientID, Mode: mode, expires: m.now().Add(ttl), sub: sub}
	m.mu.Lock()
	m.leases[key] = append(m.leases[key], l)
	m.mu.Unlock()
	return l, nil
}

// Renew extends an unexpired lease by ttl from now.
func (m *Manager) Renew(l *Lease, ttl time.Duration) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cancelled || m.now().After(l.expires) {
		return fmt.Errorf("%w: %s/%s", ErrLeaseExpired, l.ClientID, l.Key)
	}
	l.expires = m.now().Add(ttl)
	return nil
}

// Cancel ends a lease early, as clients are expected to do when they no
// longer need update information.
func (m *Manager) Cancel(l *Lease) {
	l.mu.Lock()
	l.cancelled = true
	l.mu.Unlock()
}

// ActiveLeases counts unexpired leases for a key.
func (m *Manager) ActiveLeases(key string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, l := range m.leases[key] {
		if !l.Expired(m.now()) {
			n++
		}
	}
	return n
}

// Publish writes a new version to the home store and pushes it to every
// active lease according to its mode, pruning expired leases as it goes.
// It returns the new version number.
func (m *Manager) Publish(key string, data []byte) (uint64, error) {
	return m.PublishCtx(context.Background(), key, data)
}

// PublishCtx is Publish with a caller-supplied context, so a publish
// that happens inside a traced operation (a search's re-analytics
// trigger, an HTTP handler) appears as a store-tagged child span with
// its fan-out recorded.
func (m *Manager) PublishCtx(ctx context.Context, key string, data []byte) (uint64, error) {
	_, sp := trace.Start(ctx, "replication.publish", trace.String("key", key))
	sp.SetComponent(trace.CompStoreWait)
	defer sp.End()
	version, err := m.store.Put(key, data)
	if err != nil {
		sp.SetAttr(trace.String("error", err.Error()))
		return 0, fmt.Errorf("replication: publishing %q: %w", key, err)
	}

	m.mu.Lock()
	leases := m.leases[key]
	active := leases[:0]
	for _, l := range leases {
		if !l.Expired(m.now()) {
			active = append(active, l)
		}
	}
	mLeasesExpired.Add(int64(len(leases) - len(active)))
	m.leases[key] = active
	snapshot := append([]*Lease(nil), active...)
	m.mu.Unlock()

	var pushedBytes int64
	for _, l := range snapshot {
		u, err := m.buildUpdate(l, key, version)
		if err != nil {
			return version, fmt.Errorf("replication: building update for %s: %w", l.ClientID, err)
		}
		l.mu.Lock()
		l.deliveries++
		l.bytesPushed += int64(u.WireBytes())
		sub := l.sub
		l.mu.Unlock()
		switch l.Mode {
		case PushValue:
			mPushValue.Inc()
		case PushDelta:
			mPushDelta.Inc()
		case PushNotify:
			mPushNotify.Inc()
		}
		pushedBytes += int64(u.WireBytes())
		sub.Deliver(u)
	}
	mPushBytes.Add(pushedBytes)
	sp.SetAttr(trace.Int64("version", int64(version)),
		trace.Int("subscribers", len(snapshot)), trace.Int64("pushed_bytes", pushedBytes))
	if lg := m.logger(); lg.Enabled(context.Background(), slog.LevelDebug) {
		lg.Debug("published object version",
			"key", key, "version", version, "subscribers", len(snapshot), "pushed_bytes", pushedBytes)
	}
	return version, nil
}

func (m *Manager) buildUpdate(l *Lease, key string, version uint64) (Update, error) {
	switch l.Mode {
	case PushValue:
		reply, err := m.store.Get(key, 0) // force full value
		if err != nil {
			return Update{}, err
		}
		return Update{Key: key, Version: version, Reply: reply}, nil
	case PushDelta:
		l.mu.Lock()
		ack := l.ackVersion
		l.mu.Unlock()
		reply, err := m.store.Get(key, ack)
		if err != nil {
			return Update{}, err
		}
		return Update{Key: key, Version: version, Reply: reply}, nil
	case PushNotify:
		l.mu.Lock()
		ack := l.ackVersion
		l.mu.Unlock()
		changed := 0
		if ack != 0 {
			if reply, err := m.store.Get(key, ack); err == nil && reply.IsDelta() {
				changed = reply.Delta.WireSize()
			}
		}
		return Update{Key: key, Version: version, Notify: true, ChangedBytes: changed}, nil
	default:
		return Update{}, fmt.Errorf("replication: lease has invalid mode %v", l.Mode)
	}
}
