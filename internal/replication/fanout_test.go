package replication

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"coda/internal/store"
)

// flakyStore wraps an ObjectStore and fails Get while armed — the lever
// for forcing buildUpdate errors against specific leases.
type flakyStore struct {
	store.ObjectStore
	mu       sync.Mutex
	failGets int // fail this many upcoming Get calls
}

func (f *flakyStore) Get(key string, have uint64) (*store.Reply, error) {
	f.mu.Lock()
	fail := f.failGets > 0
	if fail {
		f.failGets--
	}
	f.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("flaky store: injected Get failure")
	}
	return f.ObjectStore.Get(key, have)
}

func (f *flakyStore) arm(n int) {
	f.mu.Lock()
	f.failGets = n
	f.mu.Unlock()
}

// Regression (PR 8): a buildUpdate error for one lease must not starve the
// remaining subscribers — PublishCtx used to return on the first failure.
func TestPublishContinuesPastFailingSubscriber(t *testing.T) {
	fs := &flakyStore{ObjectStore: store.NewHomeStore(store.Options{BlockSize: 32})}
	clock := newFakeClock()
	m := NewManagerWith(fs, clock.Now, Config{})
	cols := make([]*collector, 3)
	for i := range cols {
		cols[i] = &collector{}
		if _, err := m.Subscribe("o1", fmt.Sprintf("c%d", i), PushValue, time.Hour, cols[i]); err != nil {
			t.Fatal(err)
		}
	}
	before := mPushErrors.Value()
	fs.arm(1) // first lease's Get fails; the publish Put itself is clean
	v, err := m.Publish("o1", []byte("payload"))
	if err == nil {
		t.Fatal("want a joined fanout error for the failed lease")
	}
	if v != 1 {
		t.Fatalf("version %d, want 1 (store write committed)", v)
	}
	delivered := 0
	for _, c := range cols {
		delivered += c.count()
	}
	if delivered != 2 {
		t.Fatalf("delivered to %d of 3 subscribers; the failure must only cost its own lease", delivered)
	}
	if got := mPushErrors.Value() - before; got != 1 {
		t.Fatalf("coda_replication_push_errors_total moved by %d, want 1", got)
	}
	// The failed lease keeps its slot and catches the next publish.
	if _, err := m.Publish("o1", []byte("payload2")); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range cols {
		total += c.count()
	}
	if total != 5 {
		t.Fatalf("after recovery publish, %d total deliveries, want 5", total)
	}
}

// Regression (PR 8): errors from several leases come back joined, each
// identifiable, and every healthy lease still delivers.
func TestPublishJoinsAllFanoutErrors(t *testing.T) {
	fs := &flakyStore{ObjectStore: store.NewHomeStore(store.Options{BlockSize: 32})}
	m := NewManagerWith(fs, newFakeClock().Now, Config{})
	ok := &collector{}
	if _, err := m.Subscribe("o1", "bad-a", PushValue, time.Hour, &collector{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Subscribe("o1", "bad-b", PushValue, time.Hour, &collector{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Subscribe("o1", "good", PushValue, time.Hour, ok); err != nil {
		t.Fatal(err)
	}
	fs.arm(2)
	_, err := m.Publish("o1", []byte("x"))
	if err == nil {
		t.Fatal("want joined errors")
	}
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) {
		t.Fatalf("error %v is not an errors.Join aggregate", err)
	}
	if n := len(joined.Unwrap()); n != 2 {
		t.Fatalf("joined %d errors, want 2", n)
	}
	if ok.count() != 1 {
		t.Fatalf("healthy subscriber got %d deliveries, want 1", ok.count())
	}
}

// Regression (PR 8): Cancel used to only flip a flag, leaking the lease in
// m.leases until the next Publish of that key — keys that stop publishing
// leaked every lease ever registered. Cancel must prune immediately.
func TestCancelFreesLeaseWithoutPublish(t *testing.T) {
	_, m, _ := setup()
	l, err := m.Subscribe("idle-key", "c1", PushNotify, time.Hour, &collector{})
	if err != nil {
		t.Fatal(err)
	}
	if m.registered("idle-key") != 1 {
		t.Fatal("lease not registered")
	}
	m.Cancel(l)
	if n := m.registered("idle-key"); n != 0 {
		t.Fatalf("cancelled lease still in registry (%d entries) with no publish to prune it", n)
	}
	if m.ActiveLeases("idle-key") != 0 {
		t.Fatal("ActiveLeases counts a cancelled lease")
	}
	if _, ok := m.LeaseByID(l.ID); ok {
		t.Fatal("cancelled lease still resolvable by id")
	}
	if st := m.Stats(); st.ActiveLeases != 0 {
		t.Fatalf("Stats().ActiveLeases = %d after cancel", st.ActiveLeases)
	}
	m.Cancel(l) // idempotent
}

// Regression (PR 8): expired leases on keys that never publish again must
// leave the registry via Sweep, not linger forever.
func TestSweepFreesExpiredLeasesOnIdleKeys(t *testing.T) {
	_, m, clock := setup()
	for i := 0; i < 4; i++ {
		if _, err := m.Subscribe("idle", fmt.Sprintf("c%d", i), PushNotify, time.Minute, &collector{}); err != nil {
			t.Fatal(err)
		}
	}
	keeper, err := m.Subscribe("idle", "keeper", PushNotify, time.Hour, &collector{})
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	if n := m.Sweep(); n != 4 {
		t.Fatalf("swept %d leases, want 4", n)
	}
	if m.registered("idle") != 1 {
		t.Fatalf("registry holds %d leases for idle key, want 1", m.registered("idle"))
	}
	if _, ok := m.LeaseByID(keeper.ID); !ok {
		t.Fatal("sweep removed an unexpired lease")
	}
	if n := m.Sweep(); n != 0 {
		t.Fatalf("second sweep found %d, want 0", n)
	}
}

// panicSubscriber panics on every delivery.
type panicSubscriber struct{ calls atomic.Int64 }

func (p *panicSubscriber) Deliver(Update) {
	p.calls.Add(1)
	panic("subscriber bug")
}

// Regression (PR 8): deliveries/bytesPushed were incremented before
// Deliver ran, so a panicking delivery still counted as delivered — and
// the panic killed the whole fanout. Accounting must follow success, and
// the panic must be contained to the one lease.
func TestPanicInDeliverIsolatedAndNotCounted(t *testing.T) {
	_, m, _ := setup()
	bad := &panicSubscriber{}
	badLease, err := m.Subscribe("o1", "bad", PushValue, time.Hour, bad)
	if err != nil {
		t.Fatal(err)
	}
	good := &collector{}
	goodLease, err := m.Subscribe("o1", "good", PushValue, time.Hour, good)
	if err != nil {
		t.Fatal(err)
	}
	before := mPushPanics.Value()
	if _, err := m.Publish("o1", []byte("v1")); err == nil {
		t.Fatal("want an error reporting the panicking subscriber")
	}
	if bad.calls.Load() != 1 {
		t.Fatalf("panicking subscriber called %d times, want 1", bad.calls.Load())
	}
	if badLease.Deliveries() != 0 {
		t.Fatalf("panicked delivery counted: deliveries=%d", badLease.Deliveries())
	}
	if badLease.BytesPushed() != 0 {
		t.Fatalf("panicked delivery accounted %d bytes", badLease.BytesPushed())
	}
	if good.count() != 1 || goodLease.Deliveries() != 1 {
		t.Fatalf("healthy subscriber got %d deliveries, want 1", good.count())
	}
	if got := mPushPanics.Value() - before; got != 1 {
		t.Fatalf("panic counter moved by %d, want 1", got)
	}
}

// blockingSubscriber holds every delivery until released.
type blockingSubscriber struct {
	entered chan struct{} // one token per delivery that has started
	release chan struct{} // closed to let deliveries finish
	col     collector
}

func newBlockingSubscriber() *blockingSubscriber {
	return &blockingSubscriber{entered: make(chan struct{}, 1024), release: make(chan struct{})}
}

func (b *blockingSubscriber) Deliver(u Update) {
	b.entered <- struct{}{}
	<-b.release
	b.col.Deliver(u)
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// Tentpole: with the worker pool, Publish enqueues and returns — a
// stalled subscriber occupies one worker, every other lease still gets
// its frame, and the publisher never blocks.
func TestAsyncPublishNotBlockedBySlowSubscriber(t *testing.T) {
	hs := store.NewHomeStore(store.Options{BlockSize: 32})
	m := NewManagerWith(hs, nil, Config{Workers: 2})
	defer m.Close()
	slow := newBlockingSubscriber()
	if _, err := m.Subscribe("o1", "slow", PushValue, time.Hour, slow); err != nil {
		t.Fatal(err)
	}
	fast := &collector{}
	fastLease, err := m.Subscribe("o1", "fast", PushValue, time.Hour, fast)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		if _, err := m.Publish("o1", []byte("v1")); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked behind a stalled subscriber")
	}
	<-slow.entered // the stalled delivery is in flight...
	waitFor(t, "fast subscriber's frame", func() bool { return fast.count() == 1 })
	if fastLease.Deliveries() != 1 {
		t.Fatal("fast lease delivery not accounted")
	}
	close(slow.release)
	m.Flush()
	if slow.col.count() != 1 {
		t.Fatalf("slow subscriber got %d frames after release, want 1", slow.col.count())
	}
}

// Tentpole: a burst of publishes lands as few coalesced frames carrying
// the latest version and the full publish count — O(watchers) frames per
// flush, not O(watchers × updates).
func TestAsyncFanoutCoalescesBursts(t *testing.T) {
	hs := store.NewHomeStore(store.Options{BlockSize: 32})
	m := NewManagerWith(hs, nil, Config{Workers: 1})
	defer m.Close()
	sub := newBlockingSubscriber()
	lease, err := m.Subscribe("hot", "c1", PushNotify, time.Hour, sub)
	if err != nil {
		t.Fatal(err)
	}
	const publishes = 10
	var last uint64
	for i := 0; i < publishes; i++ {
		v, err := m.Publish("hot", []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		last = v
	}
	// First frame is stuck in Deliver; everything later merged behind it.
	<-sub.entered
	close(sub.release)
	m.Flush()
	frames := sub.col.count()
	if frames < 1 || frames > 3 {
		t.Fatalf("%d publishes produced %d frames, want coalescing into <=3", publishes, frames)
	}
	if got := sub.col.last().Version; got != last {
		t.Fatalf("final frame carries version %d, want latest %d", got, last)
	}
	seen := 0
	sub.col.mu.Lock()
	for _, u := range sub.col.updates {
		seen += u.Coalesced
	}
	sub.col.mu.Unlock()
	if seen != publishes {
		t.Fatalf("frames account for %d publishes, want %d", seen, publishes)
	}
	if lease.Deliveries() != frames {
		t.Fatalf("lease accounted %d deliveries for %d frames", lease.Deliveries(), frames)
	}
	if lease.CoalescedUpdates() != int64(publishes-frames) {
		t.Fatalf("lease coalesced %d updates, want %d", lease.CoalescedUpdates(), publishes-frames)
	}
}

// Async expiry: a lease that lapses while queued is pruned by the worker
// without a delivery.
func TestAsyncExpiredLeaseDroppedAtDelivery(t *testing.T) {
	hs := store.NewHomeStore(store.Options{BlockSize: 32})
	clock := newFakeClock()
	m := NewManagerWith(hs, clock.Now, Config{Workers: 1})
	defer m.Close()
	gate := newBlockingSubscriber()
	if _, err := m.Subscribe("o1", "gate", PushNotify, time.Hour, gate); err != nil {
		t.Fatal(err)
	}
	doomed := &collector{}
	if _, err := m.Subscribe("o1", "doomed", PushNotify, time.Minute, doomed); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Publish("o1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	<-gate.entered // worker stuck on the gate lease; doomed still queued
	clock.Advance(2 * time.Minute)
	close(gate.release)
	m.Flush()
	if doomed.count() != 0 {
		t.Fatal("expired lease received a delivery")
	}
	if m.registered("o1") != 1 {
		t.Fatalf("registry holds %d leases, want only the unexpired one", m.registered("o1"))
	}
}

// Async panic isolation: a panicking subscriber costs its own frame only;
// the worker survives and keeps serving other leases.
func TestAsyncPanicDoesNotKillWorker(t *testing.T) {
	hs := store.NewHomeStore(store.Options{BlockSize: 32})
	m := NewManagerWith(hs, nil, Config{Workers: 1})
	defer m.Close()
	bad := &panicSubscriber{}
	if _, err := m.Subscribe("o1", "bad", PushValue, time.Hour, bad); err != nil {
		t.Fatal(err)
	}
	good := &collector{}
	if _, err := m.Subscribe("o1", "good", PushValue, time.Hour, good); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Publish("o1", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		m.Flush()
	}
	if good.count() != 3 {
		t.Fatalf("healthy subscriber got %d frames, want 3 — the panic killed the worker", good.count())
	}
	if bad.calls.Load() == 0 {
		t.Fatal("panicking subscriber never attempted")
	}
}

func TestByIDOperations(t *testing.T) {
	_, m, clock := setup()
	col := &collector{}
	l, err := m.Subscribe("o1", "c1", PushDelta, time.Minute, col)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := m.LeaseByID(l.ID); !ok || got != l {
		t.Fatal("LeaseByID lost the lease")
	}
	clock.Advance(30 * time.Second)
	if _, err := m.RenewByID(l.ID, time.Minute); err != nil {
		t.Fatal(err)
	}
	clock.Advance(45 * time.Second)
	if l.Expired(clock.Now()) {
		t.Fatal("renewal by id did not extend the lease")
	}
	if err := m.AckByID(l.ID, 7); err != nil {
		t.Fatal(err)
	}
	l.mu.Lock()
	ack := l.ackVersion
	l.mu.Unlock()
	if ack != 7 {
		t.Fatalf("ack by id recorded %d, want 7", ack)
	}
	if err := m.CancelByID(l.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.CancelByID(l.ID); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("cancel of a released id: %v, want ErrLeaseNotFound", err)
	}
	if _, err := m.RenewByID("no-such-id", time.Minute); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("renew unknown id: %v", err)
	}
}

func TestOnReleaseFiresOncePerLease(t *testing.T) {
	_, m, clock := setup()
	var mu sync.Mutex
	released := map[string]int{}
	m.OnRelease = func(l *Lease) {
		mu.Lock()
		released[l.ID]++
		mu.Unlock()
	}
	a, _ := m.Subscribe("k", "a", PushNotify, time.Minute, &collector{})
	b, _ := m.Subscribe("k", "b", PushNotify, time.Minute, &collector{})
	m.Cancel(a)
	m.Cancel(a) // double cancel must not double-fire
	clock.Advance(2 * time.Minute)
	m.Sweep()
	mu.Lock()
	defer mu.Unlock()
	if released[a.ID] != 1 || released[b.ID] != 1 {
		t.Fatalf("release counts %v, want exactly 1 each", released)
	}
}

// Lease churn under the race detector: 16 goroutines subscribing,
// renewing, cancelling, and publishing against one async manager with a
// virtual clock, then a sweep that must leave the registry consistent.
func TestLeaseChurnStressRace(t *testing.T) {
	hs := store.NewHomeStore(store.Options{BlockSize: 64})
	clock := newFakeClock()
	m := NewManagerWith(hs, clock.Now, Config{Workers: 8})
	defer m.Close()

	const goroutines = 16
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var mine []*Lease
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(4))
				switch rng.Intn(5) {
				case 0, 1:
					mode := []PushMode{PushValue, PushDelta, PushNotify}[rng.Intn(3)]
					l, err := m.Subscribe(key, fmt.Sprintf("g%d", g), mode, time.Minute, &collector{})
					if err != nil {
						t.Error(err)
						return
					}
					mine = append(mine, l)
				case 2:
					if len(mine) > 0 {
						_ = m.Renew(mine[rng.Intn(len(mine))], time.Minute)
					}
				case 3:
					if len(mine) > 0 {
						j := rng.Intn(len(mine))
						m.Cancel(mine[j])
						mine = append(mine[:j], mine[j+1:]...)
					}
				case 4:
					if _, err := m.Publish(key, []byte(fmt.Sprintf("g%d-i%d", g, i))); err != nil {
						t.Error(err)
						return
					}
				}
				if i%50 == 0 {
					clock.Advance(time.Second)
				}
			}
			for _, l := range mine {
				m.Cancel(l)
			}
		}(g)
	}
	wg.Wait()
	m.Flush()
	clock.Advance(2 * time.Minute)
	m.Sweep()
	if st := m.Stats(); st.ActiveLeases != 0 {
		t.Fatalf("after cancel-all + sweep, %d leases remain registered", st.ActiveLeases)
	}
	for k := 0; k < 4; k++ {
		if n := m.registered(fmt.Sprintf("k%d", k)); n != 0 {
			t.Fatalf("key k%d still holds %d leases", k, n)
		}
	}
}

func TestMonitorObserveUpdate(t *testing.T) {
	mon := NewMonitor(CountTrigger{N: 10})
	mon.ObserveUpdate(Update{Notify: true, Coalesced: 7, ChangedBytes: 128})
	mon.ObserveUpdate(Update{Notify: true}) // Coalesced 0 counts as 1
	s := mon.Stats()
	if s.Count != 8 || s.Bytes != 128 {
		t.Fatalf("stats %+v, want Count=8 Bytes=128", s)
	}
	if mon.Check() {
		t.Fatal("trigger fired early")
	}
	mon.ObserveUpdate(Update{Notify: true, Coalesced: 3})
	if !mon.Check() {
		t.Fatal("trigger should fire at 11 > 10 updates")
	}
}
