package replication

import (
	"fmt"
	"sync"
)

// UpdateStats summarizes the updates seen since analytics last ran.
type UpdateStats struct {
	Count int   // number of updates
	Bytes int64 // total update payload bytes
}

// Trigger decides when data has changed enough to warrant re-running
// analytics calculations (Section III lists three ways).
type Trigger interface {
	ShouldRecompute(s UpdateStats) bool
	Name() string
}

// CountTrigger fires when the number of updates since the last computation
// exceeds N.
type CountTrigger struct{ N int }

// ShouldRecompute implements Trigger.
func (t CountTrigger) ShouldRecompute(s UpdateStats) bool { return s.Count > t.N }

// Name implements Trigger.
func (t CountTrigger) Name() string { return fmt.Sprintf("count>%d", t.N) }

// BytesTrigger fires when the total size of updates since the last
// computation exceeds N bytes.
type BytesTrigger struct{ N int64 }

// ShouldRecompute implements Trigger.
func (t BytesTrigger) ShouldRecompute(s UpdateStats) bool { return s.Bytes > t.N }

// Name implements Trigger.
func (t BytesTrigger) Name() string { return fmt.Sprintf("bytes>%d", t.N) }

// FuncTrigger applies an application-specific predicate — the paper's
// "best way to determine when to perform updated analytics calculations",
// at the cost of being harder to implement.
type FuncTrigger struct {
	Label string
	Fn    func(s UpdateStats) bool
}

// ShouldRecompute implements Trigger.
func (t FuncTrigger) ShouldRecompute(s UpdateStats) bool { return t.Fn != nil && t.Fn(s) }

// Name implements Trigger.
func (t FuncTrigger) Name() string {
	if t.Label == "" {
		return "app-specific"
	}
	return t.Label
}

// Monitor accumulates update statistics for a data set and answers whether
// the configured trigger has fired; Reset is called after analytics rerun.
type Monitor struct {
	trigger Trigger

	mu         sync.Mutex
	stats      UpdateStats
	recomputes int
}

// NewMonitor wraps a trigger.
func NewMonitor(t Trigger) *Monitor { return &Monitor{trigger: t} }

// RecordUpdate notes one update of the given payload size.
func (m *Monitor) RecordUpdate(bytes int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Count++
	m.stats.Bytes += int64(bytes)
}

// ObserveUpdate folds one pushed update frame into the monitor — the
// bridge from the lease notification stream to re-analytics triggers, so
// recompute decisions ride the push path instead of polling the store. A
// coalesced frame counts every publish it represents; the change
// magnitude comes from the notification's estimate when present, the
// payload wire size otherwise.
func (m *Monitor) ObserveUpdate(u Update) {
	n := u.Coalesced
	if n < 1 {
		n = 1
	}
	bytes := u.ChangedBytes
	if bytes == 0 && u.Reply != nil {
		bytes = u.Reply.WireBytes()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Count += n
	m.stats.Bytes += int64(bytes)
}

// Check reports whether analytics should rerun now.
func (m *Monitor) Check() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.trigger.ShouldRecompute(m.stats)
}

// Reset clears the accumulated statistics after a recomputation.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = UpdateStats{}
	m.recomputes++
}

// Recomputes counts how many times Reset has been called — the recompute
// budget the S3 experiment trades against staleness.
func (m *Monitor) Recomputes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recomputes
}

// Stats returns a snapshot of the pending update statistics.
func (m *Monitor) Stats() UpdateStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
