package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"coda/internal/matrix"
)

func makeDS(t *testing.T) *Dataset {
	t.Helper()
	x, err := matrix.NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := New(x, []float64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	ds.ColNames = []string{"a", "b"}
	ds.TargetName = "y"
	return ds
}

func TestNewValidatesLengths(t *testing.T) {
	x := matrix.New(3, 2)
	if _, err := New(x, []float64{1, 2}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := New(x, nil); err != nil {
		t.Fatalf("nil Y should be fine: %v", err)
	}
}

func TestSubsetAndSlice(t *testing.T) {
	ds := makeDS(t)
	sub := ds.Subset([]int{3, 1})
	if sub.NumSamples() != 2 || sub.X.At(0, 0) != 7 || sub.Y[1] != 20 {
		t.Fatalf("Subset wrong: %+v", sub)
	}
	sl := ds.SliceRange(1, 3)
	if sl.NumSamples() != 2 || sl.X.At(0, 0) != 3 || sl.Y[1] != 30 {
		t.Fatalf("SliceRange wrong: %+v", sl)
	}
	// Mutating the subset must not touch the original.
	sub.X.Set(0, 0, 999)
	sub.Y[0] = 999
	if ds.X.At(3, 0) == 999 || ds.Y[3] == 999 {
		t.Fatal("Subset aliases original data")
	}
}

// TestSubsetMetadataIsolation locks in the copy-on-write fix for column
// metadata: Subset and SliceRange used to share ColNames/ColScale/ColOffset
// by reference, so a transformer rewriting one fold's metadata corrupted
// every sibling fold evaluated from the same parent.
func TestSubsetMetadataIsolation(t *testing.T) {
	ds := makeDS(t)
	ds.ColScale = []float64{2, 3}
	ds.ColOffset = []float64{1, -1}

	sub := ds.Subset([]int{0, 2})
	sub.ColNames[0] = "mutated"
	sub.ColScale[1] = 99
	sub.ColOffset[0] = 99
	if ds.ColNames[0] != "a" || ds.ColScale[1] != 3 || ds.ColOffset[0] != 1 {
		t.Fatalf("Subset aliases column metadata: %+v", ds)
	}

	sl := ds.SliceRange(0, 2)
	sl.ColNames[1] = "mutated"
	sl.ColScale[0] = 99
	sl.ColOffset[1] = 99
	if ds.ColNames[1] != "b" || ds.ColScale[0] != 2 || ds.ColOffset[1] != -1 {
		t.Fatalf("SliceRange aliases column metadata: %+v", ds)
	}

	// Nil metadata stays nil rather than becoming empty slices.
	bare := makeDS(t)
	bare.ColNames = nil
	if s := bare.Subset([]int{0}); s.ColNames != nil || s.ColScale != nil || s.ColOffset != nil {
		t.Fatalf("nil metadata not preserved: %+v", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	ds := makeDS(t)
	ds.WindowLen, ds.NumVars = 2, 1
	c := ds.Clone()
	c.X.Set(0, 0, -1)
	c.Y[0] = -1
	c.ColNames[0] = "zzz"
	if ds.X.At(0, 0) == -1 || ds.Y[0] == -1 || ds.ColNames[0] == "zzz" {
		t.Fatal("Clone aliases original")
	}
	if c.WindowLen != 2 || c.NumVars != 1 {
		t.Fatal("Clone drops window metadata")
	}
}

func TestFingerprintStability(t *testing.T) {
	ds := makeDS(t)
	fp1 := ds.Fingerprint()
	fp2 := ds.Clone().Fingerprint()
	if fp1 != fp2 {
		t.Fatal("identical data must have identical fingerprints")
	}
	other := makeDS(t)
	other.Y[0] = 11
	if other.Fingerprint() == fp1 {
		t.Fatal("different Y must change fingerprint")
	}
	other2 := makeDS(t)
	other2.X.Set(0, 0, 1.5)
	if other2.Fingerprint() == fp1 {
		t.Fatal("different X must change fingerprint")
	}
}

func TestTrainTestSplit(t *testing.T) {
	ds := makeDS(t)
	rng := rand.New(rand.NewSource(1))
	train, test, err := ds.TrainTestSplit(0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumSamples()+test.NumSamples() != 4 {
		t.Fatal("split loses samples")
	}
	if _, _, err := ds.TrainTestSplit(0, rng); err == nil {
		t.Fatal("want fraction error")
	}
	if _, _, err := ds.TrainTestSplit(1.5, rng); err == nil {
		t.Fatal("want fraction error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := makeDS(t)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "y")
	if err != nil {
		t.Fatal(err)
	}
	if !back.X.Equal(ds.X, 0) {
		t.Fatalf("X round trip: %v vs %v", back.X, ds.X)
	}
	for i := range ds.Y {
		if back.Y[i] != ds.Y[i] {
			t.Fatalf("Y round trip at %d", i)
		}
	}
	if back.ColNames[0] != "a" || back.ColNames[1] != "b" {
		t.Fatalf("ColNames round trip: %v", back.ColNames)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), "missing"); err == nil {
		t.Fatal("want missing-target error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,notanumber\n"), ""); err == nil {
		t.Fatal("want parse error")
	}
	// Unsupervised read.
	ds, err := ReadCSV(strings.NewReader("a,b\n1,2\n3,4\n"), "")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Y != nil || ds.NumSamples() != 2 {
		t.Fatalf("unsupervised read wrong: %+v", ds)
	}
}

func TestMakeRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ds, coef, err := MakeRegression(RegressionSpec{Samples: 100, Features: 5, Informative: 3, Noise: 0}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() != 100 || ds.NumFeatures() != 5 {
		t.Fatalf("shape %dx%d", ds.NumSamples(), ds.NumFeatures())
	}
	if coef[3] != 0 || coef[4] != 0 {
		t.Fatalf("uninformative coefs should be zero: %v", coef)
	}
	// With zero noise, Y must equal X*coef exactly.
	for i := 0; i < ds.NumSamples(); i++ {
		s := 0.0
		for j, c := range coef {
			s += ds.X.At(i, j) * c
		}
		if diff := s - ds.Y[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("Y[%d] inconsistent with coef", i)
		}
	}
	if _, _, err := MakeRegression(RegressionSpec{}, rng); err == nil {
		t.Fatal("want spec error")
	}
}

func TestMakeClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ds, err := MakeClassification(ClassificationSpec{Samples: 90, Features: 4, Classes: 3, ClusterSep: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[float64]int{}
	for _, v := range ds.Y {
		counts[v]++
	}
	if len(counts) != 3 {
		t.Fatalf("want 3 classes, got %v", counts)
	}
	for c, n := range counts {
		if n != 30 {
			t.Fatalf("class %v has %d samples, want 30 (balanced)", c, n)
		}
	}
	// Imbalanced classes.
	ds, err = MakeClassification(ClassificationSpec{
		Samples: 1000, Features: 3, Classes: 2, ClassFrac: []float64{0.9, 0.1},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	minority := 0
	for _, v := range ds.Y {
		if v == 1 {
			minority++
		}
	}
	if minority < 50 || minority > 200 {
		t.Fatalf("minority class count %d far from 10%%", minority)
	}
	if _, err := MakeClassification(ClassificationSpec{Samples: 10, Features: 2, Classes: 2, ClassFrac: []float64{1}}, rng); err == nil {
		t.Fatal("want ClassFrac length error")
	}
}

// Property: Subset(perm) preserves the multiset of (row, y) pairs, checked
// via the fingerprint of a re-sorted dataset being permutation sensitive but
// subset of identity being identical.
func TestSubsetIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		x := matrix.New(n, 3)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < 3; j++ {
				x.Set(i, j, rng.NormFloat64())
			}
			y[i] = rng.NormFloat64()
		}
		ds, err := New(x, y)
		if err != nil {
			return false
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return ds.Subset(idx).Fingerprint() == ds.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
