package dataset

import (
	"fmt"
	"sync"

	"coda/internal/matrix"
)

// WindowView is a zero-copy, affine-scaled view of cascaded history windows
// over a raw series: window w covers rows w .. w+History-1 of Src, and every
// element passes through the per-column scaler affine (x - Sub[j]) / Div[j]
// (Div[j] == 0 forces exactly 0 — the MinMax constant-column sentinel) as it
// is read. It is what tswindow.CascadedWindows produces under window→conv
// fusion instead of materializing the L x (History*v) window matrix, and it
// structurally implements nn.WindowSource so the first Conv1D layer's im2col
// can gather timesteps straight from the series.
//
// The view is read-only and safe for concurrent use; Src must not be
// mutated while the view is alive.
type WindowView struct {
	Src     *matrix.Matrix // raw T x v series
	History int            // window length p
	Horizon int            // prediction horizon (windows stop early by it)
	Sub     []float64      // per-column affine subtrahend (len = v)
	Div     []float64      // per-column affine divisor (len = v, 0 = sentinel)
}

// NewWindowView builds a view over src; sub/div nil means the identity
// affine (subtract 0, divide by 1 — exact for every float).
func NewWindowView(src *matrix.Matrix, history, horizon int, sub, div []float64) (*WindowView, error) {
	v := src.Cols()
	if sub == nil {
		sub = make([]float64, v)
		div = make([]float64, v)
		for j := range div {
			div[j] = 1
		}
	}
	if len(sub) != v || len(div) != v {
		return nil, fmt.Errorf("dataset: window view affine of %d/%d cols on %d-col series", len(sub), len(div), v)
	}
	w := &WindowView{Src: src, History: history, Horizon: horizon, Sub: sub, Div: div}
	if w.Windows() < 1 {
		return nil, fmt.Errorf("dataset: series of %d too short for history %d + horizon %d", src.Rows(), history, horizon)
	}
	return w, nil
}

// Windows returns the number of windows L = T - History - Horizon + 1.
func (w *WindowView) Windows() int { return w.Src.Rows() - w.History - w.Horizon + 1 }

// WindowLen returns the timesteps per window.
func (w *WindowView) WindowLen() int { return w.History }

// Vars returns the channels per timestep.
func (w *WindowView) Vars() int { return w.Src.Cols() }

// affine applies the scaler map to one element (see tswindow.applyAffine —
// kept bit-identical so fused gathers match materialized windows exactly).
func affine(x, sub, div float64) float64 {
	v := x - sub
	if div != 0 {
		return v / div
	}
	return 0
}

// CopyStep writes the scaled values of window ww at timestep t into dst.
func (w *WindowView) CopyStep(dst []float64, ww, t int) {
	src := w.Src.Row(ww + t)
	for j, x := range src {
		dst[j] = affine(x, w.Sub[j], w.Div[j])
	}
}

// CopyStep32 is CopyStep with one f64→f32 rounding per element.
func (w *WindowView) CopyStep32(dst []float32, ww, t int) {
	src := w.Src.Row(ww + t)
	for j, x := range src {
		dst[j] = float32(affine(x, w.Sub[j], w.Div[j]))
	}
}

// F32Mirror lazily caches a float32 conversion of a dataset's X and Y so
// repeated reduced-precision fits over a shared (cached) dataset convert
// once instead of per fit. The mirror lives behind a pointer so the shallow
// dataset copies transformers make (WithX drops it) share one build and one
// lock. The prefix cache installs it on cached fitted datasets and accounts
// the extra bytes via the onBuild callback.
type F32Mirror struct {
	mu      sync.Mutex
	x       *matrix.Mat[float32]
	y       []float32
	built   bool
	onBuild func(bytes int64)
}

// NewF32Mirror returns an empty mirror; onBuild (may be nil) runs once, on
// the first Get, with the number of bytes the converted copies occupy.
func NewF32Mirror(onBuild func(bytes int64)) *F32Mirror {
	return &F32Mirror{onBuild: onBuild}
}

// Bytes returns the bytes a built mirror of d would occupy (4 per element).
func (d *Dataset) f32MirrorBytes() int64 {
	n := int64(len(d.Y))
	if d.X != nil {
		n += int64(len(d.X.Data()))
	}
	return n * 4
}

// F32 returns the float32 conversion of d's X and Y, building it under the
// mirror's lock on first use. It returns ok = false when d carries no
// mirror (callers then convert locally into their own scratch).
func (d *Dataset) F32() (x *matrix.Mat[float32], y []float32, ok bool) {
	m := d.Mirror
	if m == nil {
		return nil, nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.built {
		if d.X != nil {
			m.x = matrix.ConvertInto[float32](nil, d.X)
		}
		m.y = matrix.ConvertVec[float32](nil, d.Y)
		m.built = true
		if m.onBuild != nil {
			m.onBuild(d.f32MirrorBytes())
		}
	}
	return m.x, m.y, true
}
