package dataset

import (
	"fmt"
	"math/rand"

	"coda/internal/matrix"
)

// RegressionSpec configures MakeRegression.
type RegressionSpec struct {
	Samples     int     // number of rows
	Features    int     // total feature columns
	Informative int     // features that influence Y (<= Features)
	Noise       float64 // stddev of Gaussian noise added to Y
	Bias        float64 // constant added to Y
}

// MakeRegression generates a linear regression problem in the style of
// sklearn.datasets.make_regression: standard-normal features, a sparse
// ground-truth coefficient vector over the informative features, Gaussian
// label noise. It also returns the ground-truth coefficients (length
// Features; zero for uninformative columns).
func MakeRegression(spec RegressionSpec, rng *rand.Rand) (*Dataset, []float64, error) {
	if spec.Samples <= 0 || spec.Features <= 0 {
		return nil, nil, fmt.Errorf("dataset: regression spec needs positive samples/features, got %+v", spec)
	}
	if spec.Informative <= 0 || spec.Informative > spec.Features {
		spec.Informative = spec.Features
	}
	coef := make([]float64, spec.Features)
	for j := 0; j < spec.Informative; j++ {
		coef[j] = 100 * rng.Float64()
	}
	x := matrix.New(spec.Samples, spec.Features)
	y := make([]float64, spec.Samples)
	for i := 0; i < spec.Samples; i++ {
		row := x.Row(i)
		s := spec.Bias
		for j := range row {
			v := rng.NormFloat64()
			row[j] = v
			s += v * coef[j]
		}
		y[i] = s + spec.Noise*rng.NormFloat64()
	}
	names := make([]string, spec.Features)
	for j := range names {
		names[j] = fmt.Sprintf("x%d", j)
	}
	return &Dataset{X: x, Y: y, ColNames: names, TargetName: "y"}, coef, nil
}

// ClassificationSpec configures MakeClassification.
type ClassificationSpec struct {
	Samples    int
	Features   int
	Classes    int     // >= 2
	ClusterSep float64 // distance between class centroids (default 2)
	ClassFrac  []float64
	// ClassFrac optionally gives per-class sample fractions (must sum to
	// ~1) to create class imbalance; nil means balanced classes.
}

// MakeClassification generates a Gaussian-blob classification problem: one
// centroid per class at distance ClusterSep along random directions, unit
// spherical noise around each centroid. Labels are 0..Classes-1 in Y.
func MakeClassification(spec ClassificationSpec, rng *rand.Rand) (*Dataset, error) {
	if spec.Samples <= 0 || spec.Features <= 0 {
		return nil, fmt.Errorf("dataset: classification spec needs positive samples/features, got %+v", spec)
	}
	if spec.Classes < 2 {
		spec.Classes = 2
	}
	if spec.ClusterSep == 0 {
		spec.ClusterSep = 2
	}
	if spec.ClassFrac != nil && len(spec.ClassFrac) != spec.Classes {
		return nil, fmt.Errorf("dataset: ClassFrac has %d entries for %d classes", len(spec.ClassFrac), spec.Classes)
	}
	centroids := matrix.New(spec.Classes, spec.Features)
	for c := 0; c < spec.Classes; c++ {
		for j := 0; j < spec.Features; j++ {
			centroids.Set(c, j, spec.ClusterSep*rng.NormFloat64())
		}
	}
	x := matrix.New(spec.Samples, spec.Features)
	y := make([]float64, spec.Samples)
	for i := 0; i < spec.Samples; i++ {
		c := i % spec.Classes
		if spec.ClassFrac != nil {
			u := rng.Float64()
			acc := 0.0
			for k, f := range spec.ClassFrac {
				acc += f
				if u <= acc {
					c = k
					break
				}
				c = k
			}
		}
		row := x.Row(i)
		for j := range row {
			row[j] = centroids.At(c, j) + rng.NormFloat64()
		}
		y[i] = float64(c)
	}
	names := make([]string, spec.Features)
	for j := range names {
		names[j] = fmt.Sprintf("x%d", j)
	}
	ds := &Dataset{X: x, Y: y, ColNames: names, TargetName: "class"}
	return ds.Shuffle(rng), nil
}
