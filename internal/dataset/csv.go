package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"coda/internal/matrix"
)

// ReadCSV parses numeric CSV data with a header row into a Dataset. If
// targetCol names a header column, that column becomes Y; pass "" for an
// unsupervised dataset.
func ReadCSV(r io.Reader, targetCol string) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	target := -1
	for i, h := range header {
		if h == targetCol && targetCol != "" {
			target = i
		}
	}
	if targetCol != "" && target < 0 {
		return nil, fmt.Errorf("dataset: target column %q not in header %v", targetCol, header)
	}

	var rows [][]float64
	var y []float64
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		row := make([]float64, 0, len(rec))
		for i, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d column %q: %w", line, header[i], err)
			}
			if i == target {
				y = append(y, v)
			} else {
				row = append(row, v)
			}
		}
		rows = append(rows, row)
	}

	x, err := matrix.NewFromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("dataset: building matrix: %w", err)
	}
	names := make([]string, 0, len(header))
	for i, h := range header {
		if i != target {
			names = append(names, h)
		}
	}
	ds := &Dataset{X: x, ColNames: names, TargetName: targetCol}
	if target >= 0 {
		ds.Y = y
	}
	return ds, nil
}

// WriteCSV writes the dataset as numeric CSV with a header row; the target
// column (named by TargetName, or "target") is written last when Y != nil.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, d.NumFeatures())
	for j := range header {
		if d.ColNames != nil && j < len(d.ColNames) {
			header[j] = d.ColNames[j]
		} else {
			header[j] = fmt.Sprintf("x%d", j)
		}
	}
	if d.Y != nil {
		name := d.TargetName
		if name == "" {
			name = "target"
		}
		header = append(header, name)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	rec := make([]string, len(header))
	for i := 0; i < d.NumSamples(); i++ {
		for j, v := range d.X.Row(i) {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if d.Y != nil {
			rec[len(rec)-1] = strconv.FormatFloat(d.Y[i], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
