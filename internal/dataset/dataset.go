// Package dataset defines the tabular data container that flows through
// every Transformer-Estimator Graph pipeline, together with CSV I/O,
// sampling utilities and synthetic-data generators.
package dataset

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"

	"coda/internal/matrix"
)

// Dataset is a feature matrix X with an optional target vector Y.
//
// Time-series windowing transformers (internal/tswindow) set WindowLen and
// NumVars so that downstream temporal estimators can reinterpret each row of
// X as a WindowLen x NumVars window without copying.
type Dataset struct {
	X        *matrix.Matrix
	Y        []float64
	ColNames []string

	// TargetName names the quantity in Y, for reporting.
	TargetName string

	// WindowLen is the history-window length p when rows of X are
	// flattened time windows; 0 means plain tabular data.
	WindowLen int
	// NumVars is the number of series variables v when windowed.
	NumVars int

	// ColScale/ColOffset record the affine map back to original units for
	// each column of X after scaling transformers ran:
	// original = scaled*ColScale[j] + ColOffset[j]. Nil means identity.
	// Windowing transformers consult them when deriving targets.
	ColScale  []float64
	ColOffset []float64
	// YScale/YOffset map Y (and predictions of Y) back to original units:
	// original = y*YScale + YOffset. YScale 0 means identity. Pipelines
	// use this so model scores are comparable across scaling options.
	YScale  float64
	YOffset float64

	// Win, when non-nil, replaces X with a zero-copy affine-scaled window
	// view over the raw series (window→conv fusion): X is nil and window
	// rows are gathered on demand. Only produced when the consuming
	// estimator opts in (core.WindowViewConsumer); Y and the affine
	// metadata above are materialized as usual.
	Win *WindowView

	// Mirror, when non-nil, lazily caches a float32 conversion of X/Y for
	// the reduced-precision NN path (see F32). Shared by shallow copies;
	// dropped whenever X is replaced.
	Mirror *F32Mirror
}

// New builds a Dataset, validating that len(y) matches x's rows when y is
// non-nil.
func New(x *matrix.Matrix, y []float64) (*Dataset, error) {
	if y != nil && x.Rows() != len(y) {
		return nil, fmt.Errorf("dataset: X has %d rows but Y has %d values", x.Rows(), len(y))
	}
	return &Dataset{X: x, Y: y}, nil
}

// NumSamples returns the number of rows (windows, for a fused window view).
func (d *Dataset) NumSamples() int {
	if d.X == nil && d.Win != nil {
		return d.Win.Windows()
	}
	return d.X.Rows()
}

// NumFeatures returns the number of feature columns (flattened window
// width, for a fused window view).
func (d *Dataset) NumFeatures() int {
	if d.X == nil && d.Win != nil {
		return d.Win.WindowLen() * d.Win.Vars()
	}
	return d.X.Cols()
}

// Clone deep-copies the dataset. A fused window view (Win) is shared, not
// copied — views are immutable.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		Win:        d.Win,
		TargetName: d.TargetName,
		WindowLen:  d.WindowLen,
		NumVars:    d.NumVars,
		YScale:     d.YScale,
		YOffset:    d.YOffset,
	}
	if d.X != nil {
		out.X = d.X.Clone()
	}
	if d.Y != nil {
		out.Y = append([]float64(nil), d.Y...)
	}
	if d.ColNames != nil {
		out.ColNames = append([]string(nil), d.ColNames...)
	}
	if d.ColScale != nil {
		out.ColScale = append([]float64(nil), d.ColScale...)
		out.ColOffset = append([]float64(nil), d.ColOffset...)
	}
	return out
}

// WithX returns a shallow variant of d with a replacement feature matrix,
// keeping Y and its affine metadata. Column names and column affines are
// cleared — the caller (a transformer) re-establishes them if its mapping
// preserves column identity.
func (d *Dataset) WithX(x *matrix.Matrix) *Dataset {
	out := *d
	out.X = x
	out.ColNames = nil
	out.ColScale = nil
	out.ColOffset = nil
	out.Win = nil
	out.Mirror = nil
	return &out
}

// ColAffine returns the affine map of column j back to original units
// (identity when none was recorded).
func (d *Dataset) ColAffine(j int) (scale, offset float64) {
	if d.ColScale == nil || j >= len(d.ColScale) {
		return 1, 0
	}
	return d.ColScale[j], d.ColOffset[j]
}

// DenormY maps target-space values (truth or predictions) back to original
// units using YScale/YOffset; identity when no scaling was recorded.
func (d *Dataset) DenormY(y []float64) []float64 {
	if d.YScale == 0 && d.YOffset == 0 {
		return y
	}
	scale := d.YScale
	if scale == 0 {
		scale = 1
	}
	out := make([]float64, len(y))
	for i, v := range y {
		out[i] = v*scale + d.YOffset
	}
	return out
}

// Subset returns a new dataset with the rows idx (copied, in order).
// Column metadata is deep-copied like Clone does: subsets serve as
// sibling cross-validation folds evaluated concurrently, and sharing
// ColNames/ColScale/ColOffset by reference would let a transformer that
// rewrites column metadata corrupt every sibling.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		X:          d.X.SelectRows(idx),
		ColNames:   cloneStrings(d.ColNames),
		TargetName: d.TargetName,
		WindowLen:  d.WindowLen,
		NumVars:    d.NumVars,
		ColScale:   cloneFloats(d.ColScale),
		ColOffset:  cloneFloats(d.ColOffset),
		YScale:     d.YScale,
		YOffset:    d.YOffset,
	}
	if d.Y != nil {
		out.Y = make([]float64, len(idx))
		for k, i := range idx {
			out.Y[k] = d.Y[i]
		}
	}
	return out
}

// SliceRange returns rows [a, b) as a new dataset. Column metadata is
// deep-copied for the same sibling-isolation reason as Subset.
func (d *Dataset) SliceRange(a, b int) *Dataset {
	out := &Dataset{
		X:          d.X.SliceRows(a, b),
		ColNames:   cloneStrings(d.ColNames),
		TargetName: d.TargetName,
		WindowLen:  d.WindowLen,
		NumVars:    d.NumVars,
		ColScale:   cloneFloats(d.ColScale),
		ColOffset:  cloneFloats(d.ColOffset),
		YScale:     d.YScale,
		YOffset:    d.YOffset,
	}
	if d.Y != nil {
		out.Y = append([]float64(nil), d.Y[a:b]...)
	}
	return out
}

func cloneStrings(s []string) []string {
	if s == nil {
		return nil
	}
	return append([]string(nil), s...)
}

func cloneFloats(s []float64) []float64 {
	if s == nil {
		return nil
	}
	return append([]float64(nil), s...)
}

// Shuffle returns a row-permuted copy using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) *Dataset {
	idx := rng.Perm(d.NumSamples())
	return d.Subset(idx)
}

// Fingerprint returns a stable hex digest of the dataset contents. The DARR
// keys shared analytics results by this fingerprint so that cooperating
// clients agree on what "the same data" means.
func (d *Dataset) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(d.X.Rows()))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(d.X.Cols()))
	h.Write(buf[:])
	for _, v := range d.X.Data() {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for _, v := range d.Y {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// TrainTestSplit splits d into a train set with the given fraction of
// samples and a test set with the remainder, shuffling with rng first.
// frac must be in (0, 1).
func (d *Dataset) TrainTestSplit(frac float64, rng *rand.Rand) (train, test *Dataset, err error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("dataset: train fraction %v outside (0,1)", frac)
	}
	n := d.NumSamples()
	idx := rng.Perm(n)
	cut := int(float64(n) * frac)
	if cut == 0 || cut == n {
		return nil, nil, fmt.Errorf("dataset: split of %d samples at %v leaves an empty side", n, frac)
	}
	return d.Subset(idx[:cut]), d.Subset(idx[cut:]), nil
}
