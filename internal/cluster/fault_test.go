package cluster

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func lossyTopology(t *testing.T, loss float64) *Topology {
	t.Helper()
	topo := NewTopology(Link{Latency: 10 * time.Millisecond, Bandwidth: 1 << 20, Loss: loss})
	for _, n := range []Node{
		{ID: "client", Kind: ClientNode, Speed: 1},
		{ID: "cloud", Kind: CloudServerNode, Speed: 4},
	} {
		if err := topo.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	return topo
}

// TestSendReliableDeliversUnder30PercentLoss sends a workload's worth of
// messages over a WAN link dropping 30% of them and checks that bounded
// retransmission delivers everything, at a measurable retransmission cost.
func TestSendReliableDeliversUnder30PercentLoss(t *testing.T) {
	topo := lossyTopology(t, 0.3)
	meter := &Traffic{}
	rng := rand.New(rand.NewSource(17))

	const messages = 1000
	totalAttempts := 0
	for i := 0; i < messages; i++ {
		attempts, _, delivered := topo.SendReliable(meter, rng, "client", "cloud", 512, 10)
		if !delivered {
			t.Fatalf("message %d lost despite 10 attempts at 30%% loss", i)
		}
		totalAttempts += attempts
	}
	if meter.Messages() != totalAttempts {
		t.Fatalf("meter saw %d messages, %d attempts were made", meter.Messages(), totalAttempts)
	}
	// Expected attempts per delivery at 30%% loss ≈ 1/0.7 ≈ 1.43.
	if totalAttempts < messages*125/100 || totalAttempts > messages*165/100 {
		t.Fatalf("total attempts %d for %d messages, want ~1.43x", totalAttempts, messages)
	}
	// Retransmissions are charged on the wire: more bytes than a lossless run.
	if meter.Bytes() <= int64(messages)*512 {
		t.Fatalf("meter bytes %d, retransmissions should exceed the lossless %d", meter.Bytes(), messages*512)
	}
}

func TestSendReliableIsDeterministic(t *testing.T) {
	run := func() (int, int64, time.Duration) {
		topo := lossyTopology(t, 0.3)
		meter := &Traffic{}
		rng := rand.New(rand.NewSource(99))
		var elapsed time.Duration
		for i := 0; i < 200; i++ {
			_, d, _ := topo.SendReliable(meter, rng, "client", "cloud", 256, 8)
			elapsed += d
		}
		return meter.Messages(), meter.Bytes(), elapsed
	}
	m1, b1, e1 := run()
	m2, b2, e2 := run()
	if m1 != m2 || b1 != b2 || e1 != e2 {
		t.Fatalf("same seed diverged: (%d,%d,%v) vs (%d,%d,%v)", m1, b1, e1, m2, b2, e2)
	}
}

func TestSendReliableGivesUpOnDeadLink(t *testing.T) {
	topo := lossyTopology(t, 1.0)
	meter := &Traffic{}
	rng := rand.New(rand.NewSource(1))
	attempts, _, delivered := topo.SendReliable(meter, rng, "client", "cloud", 128, 5)
	if delivered {
		t.Fatal("a fully lossy link cannot deliver")
	}
	if attempts != 5 || meter.Messages() != 5 {
		t.Fatalf("attempts=%d meterMessages=%d, want the full budget of 5", attempts, meter.Messages())
	}
}

func TestSendReliableLosslessFastPath(t *testing.T) {
	topo := lossyTopology(t, 0)
	meter := &Traffic{}
	attempts, elapsed, delivered := topo.SendReliable(meter, nil, "client", "cloud", 1024, 3)
	if !delivered || attempts != 1 {
		t.Fatalf("lossless link: attempts=%d delivered=%v, want 1 shot", attempts, delivered)
	}
	if want := topo.LinkBetween("client", "cloud").TransferTime(1024); elapsed != want {
		t.Fatalf("elapsed %v, want plain transfer time %v", elapsed, want)
	}
}

// TestSendReliableConcurrent exercises the shared meter and topology from
// many goroutines (each with its own rng), for the race detector.
func TestSendReliableConcurrent(t *testing.T) {
	topo := lossyTopology(t, 0.2)
	meter := &Traffic{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 100; i++ {
				if _, _, ok := topo.SendReliable(meter, rng, "client", "cloud", 64, 20); !ok {
					t.Errorf("worker %d: message lost", w)
					return
				}
			}
		}()
	}
	wg.Wait()
	if meter.Messages() < 800 {
		t.Fatalf("meter counted %d messages, want at least the 800 deliveries", meter.Messages())
	}
}
