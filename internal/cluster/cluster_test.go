package cluster

import (
	"testing"
	"time"
)

func TestLinkTransferTime(t *testing.T) {
	l := Link{Latency: 10 * time.Millisecond, Bandwidth: 1000} // 1 KB/s
	if got := l.TransferTime(1000); got != 10*time.Millisecond+time.Second {
		t.Fatalf("transfer time %v", got)
	}
	// Infinite bandwidth = latency only.
	l2 := Link{Latency: 5 * time.Millisecond}
	if got := l2.TransferTime(1 << 30); got != 5*time.Millisecond {
		t.Fatalf("infinite bandwidth transfer %v", got)
	}
}

func TestNodeComputeTime(t *testing.T) {
	slow := Node{ID: "edge", Kind: ClientNode, Speed: 1}
	fast := Node{ID: "cloud", Kind: CloudServerNode, Speed: 8}
	work := 4.0
	if slow.ComputeTime(work) != 4*time.Second {
		t.Fatalf("slow compute %v", slow.ComputeTime(work))
	}
	if fast.ComputeTime(work) != 500*time.Millisecond {
		t.Fatalf("fast compute %v", fast.ComputeTime(work))
	}
	// Zero speed defaults to baseline rather than dividing by zero.
	if (Node{}).ComputeTime(1) != time.Second {
		t.Fatal("zero-speed default")
	}
}

func TestTopology(t *testing.T) {
	top := NewTopology(Link{Latency: time.Millisecond, Bandwidth: 1e6})
	if err := top.AddNode(Node{ID: "client", Kind: ClientNode, Speed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := top.AddNode(Node{ID: "cloud", Kind: CloudServerNode, Speed: 10}); err != nil {
		t.Fatal(err)
	}
	if err := top.AddNode(Node{ID: "client"}); err == nil {
		t.Fatal("want duplicate error")
	}
	if err := top.AddNode(Node{}); err == nil {
		t.Fatal("want empty-ID error")
	}
	wan := Link{Latency: 50 * time.Millisecond, Bandwidth: 1e5}
	if err := top.SetLink("client", "cloud", wan); err != nil {
		t.Fatal(err)
	}
	if err := top.SetLink("client", "nope", wan); err == nil {
		t.Fatal("want unknown-node error")
	}
	if got := top.LinkBetween("client", "cloud"); got != wan {
		t.Fatalf("link %+v", got)
	}
	// Reverse direction not set: default.
	if got := top.LinkBetween("cloud", "client"); got != top.Default {
		t.Fatalf("default link %+v", got)
	}
	if _, err := top.Node("client"); err != nil {
		t.Fatal(err)
	}
	if _, err := top.Node("ghost"); err == nil {
		t.Fatal("want unknown node error")
	}
}

func TestTrafficAccounting(t *testing.T) {
	top := NewTopology(Link{Latency: 10 * time.Millisecond, Bandwidth: 1000})
	_ = top.AddNode(Node{ID: "a", Speed: 1})
	_ = top.AddNode(Node{ID: "b", Speed: 1})
	var meter Traffic
	d := top.Send(&meter, "a", "b", 500)
	if d != 10*time.Millisecond+500*time.Millisecond {
		t.Fatalf("send duration %v", d)
	}
	top.Send(&meter, "b", "a", 250)
	if meter.Messages() != 2 || meter.Bytes() != 750 {
		t.Fatalf("meter %d msgs %d bytes", meter.Messages(), meter.Bytes())
	}
	meter.AddCompute(time.Second)
	if meter.Elapsed() < time.Second {
		t.Fatalf("elapsed %v", meter.Elapsed())
	}
}

func TestNodeKindString(t *testing.T) {
	if ClientNode.String() != "client" || CloudServerNode.String() != "cloud-server" || WebServiceNode.String() != "web-service" {
		t.Fatal("kind names")
	}
}
