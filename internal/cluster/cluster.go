// Package cluster models the distributed deployment of Figure 1 — client
// nodes, cloud analytics servers, and AI web services connected by links of
// differing latency and bandwidth — with deterministic virtual-time
// accounting instead of real sleeps, so experiments measure message counts,
// bytes moved and simulated transfer/compute time exactly and reproducibly.
package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Link characterizes one directed network path.
type Link struct {
	Latency   time.Duration // per-message propagation delay
	Bandwidth float64       // bytes per second; <= 0 means infinite
	// Loss is the probability in [0, 1) that a message sent over the
	// link is dropped in transit — the wide-area fault model behind
	// SendReliable's retransmissions.
	Loss float64
}

// TransferTime returns the simulated time to move n bytes over the link.
func (l Link) TransferTime(n int) time.Duration {
	t := l.Latency
	if l.Bandwidth > 0 {
		t += time.Duration(float64(n) / l.Bandwidth * float64(time.Second))
	}
	return t
}

// NodeKind labels the three node roles in Figure 1.
type NodeKind int

// Node roles.
const (
	ClientNode NodeKind = iota + 1
	CloudServerNode
	WebServiceNode
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case ClientNode:
		return "client"
	case CloudServerNode:
		return "cloud-server"
	case WebServiceNode:
		return "web-service"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is one participant with a relative compute speed (1.0 = baseline
// client; cloud servers are typically faster).
type Node struct {
	ID    string
	Kind  NodeKind
	Speed float64 // relative compute speed; must be > 0
}

// ComputeTime returns the simulated time for `work` baseline-seconds of
// computation on this node.
func (n Node) ComputeTime(work float64) time.Duration {
	speed := n.Speed
	if speed <= 0 {
		speed = 1
	}
	return time.Duration(work / speed * float64(time.Second))
}

// Traffic accumulates the cost of a simulated exchange.
type Traffic struct {
	mu       sync.Mutex
	messages int
	bytes    int64
	elapsed  time.Duration
}

// Messages returns the message count.
func (t *Traffic) Messages() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.messages
}

// Bytes returns total payload bytes.
func (t *Traffic) Bytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes
}

// Elapsed returns accumulated simulated time (transfers + compute recorded
// against this traffic meter).
func (t *Traffic) Elapsed() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.elapsed
}

// AddCompute records simulated computation time.
func (t *Traffic) AddCompute(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.elapsed += d
}

// Topology is a set of nodes and directed links with a default link for
// unspecified pairs.
type Topology struct {
	Default Link

	mu    sync.Mutex
	nodes map[string]Node
	links map[string]Link
}

// NewTopology builds a topology whose unlisted pairs use defaultLink.
func NewTopology(defaultLink Link) *Topology {
	return &Topology{Default: defaultLink, nodes: map[string]Node{}, links: map[string]Link{}}
}

// AddNode registers a node; adding the same ID twice is an error.
func (t *Topology) AddNode(n Node) error {
	if n.ID == "" {
		return fmt.Errorf("cluster: node has empty ID")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.nodes[n.ID]; exists {
		return fmt.Errorf("cluster: duplicate node %q", n.ID)
	}
	t.nodes[n.ID] = n
	return nil
}

// Node returns the registered node.
func (t *Topology) Node(id string) (Node, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.nodes[id]
	if !ok {
		return Node{}, fmt.Errorf("cluster: unknown node %q", id)
	}
	return n, nil
}

// SetLink installs a directed link between two registered nodes.
func (t *Topology) SetLink(from, to string, l Link) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.nodes[from]; !ok {
		return fmt.Errorf("cluster: unknown node %q", from)
	}
	if _, ok := t.nodes[to]; !ok {
		return fmt.Errorf("cluster: unknown node %q", to)
	}
	t.links[from+"->"+to] = l
	return nil
}

// LinkBetween returns the effective link from one node to another.
func (t *Topology) LinkBetween(from, to string) Link {
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.links[from+"->"+to]; ok {
		return l
	}
	return t.Default
}

// Send simulates moving n bytes from one node to another, charging the
// traffic meter, and returns the transfer's simulated duration. Link loss
// is ignored: Send models a fire-and-forget message.
func (t *Topology) Send(meter *Traffic, from, to string, n int) time.Duration {
	link := t.LinkBetween(from, to)
	d := link.TransferTime(n)
	meter.mu.Lock()
	meter.messages++
	meter.bytes += int64(n)
	meter.elapsed += d
	meter.mu.Unlock()
	return d
}

// SendReliable simulates delivering n bytes over a lossy link with up to
// maxAttempts transmissions. Every attempt — including lost ones — is
// charged to the meter (the bytes were sent either way), and each lost
// attempt additionally costs one link latency of timeout detection before
// the retransmission. rng drives loss deterministically so experiments
// replay exactly; a nil rng uses the process-wide source. It returns the
// attempts used, the total simulated time, and whether a transmission got
// through.
func (t *Topology) SendReliable(meter *Traffic, rng *rand.Rand, from, to string, n, maxAttempts int) (attempts int, elapsed time.Duration, delivered bool) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	link := t.LinkBetween(from, to)
	draw := rand.Float64
	if rng != nil {
		draw = rng.Float64
	}
	for attempts = 1; attempts <= maxAttempts; attempts++ {
		elapsed += t.Send(meter, from, to, n)
		if draw() >= link.Loss {
			delivered = true
			break
		}
		// Lost in transit: the sender waits out a timeout before resending.
		elapsed += link.Latency
	}
	if !delivered {
		attempts = maxAttempts
	}
	return attempts, elapsed, delivered
}
