package nnmodels

import (
	"math/rand"
	"strings"
	"testing"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/metrics"
	"coda/internal/sim"
	"coda/internal/tswindow"
)

var (
	_ core.Estimator = (*DNNRegressor)(nil)
	_ core.Estimator = (*LSTMRegressor)(nil)
	_ core.Estimator = (*CNNRegressor)(nil)
	_ core.Estimator = (*WaveNetRegressor)(nil)
	_ core.Estimator = (*SeriesNetRegressor)(nil)
)

// windowedAR builds cascaded-window train/test sets from an AR-regime
// series, where temporal structure is learnable.
func windowedAR(t *testing.T, history int) (train, test *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	series, err := sim.GenerateSeries(sim.SeriesSpec{Steps: 400, Vars: 1, Regime: sim.RegimeAR, Noise: 0.1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := tswindow.NewCascadedWindows(history, 1, 0).Transform(series)
	if err != nil {
		t.Fatal(err)
	}
	cut := windows.NumSamples() * 3 / 4
	return windows.SliceRange(0, cut), windows.SliceRange(cut, windows.NumSamples())
}

// persistenceRMSE scores the "predict the window's final value" baseline.
func persistenceRMSE(t *testing.T, test *dataset.Dataset) float64 {
	t.Helper()
	preds := make([]float64, test.NumSamples())
	lastCol := (test.WindowLen-1)*test.NumVars + 0
	for i := range preds {
		preds[i] = test.X.At(i, lastCol)
	}
	r, err := metrics.RMSE(test.Y, preds)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func fitScore(t *testing.T, m core.Estimator, train, test *dataset.Dataset) float64 {
	t.Helper()
	if err := m.Fit(train); err != nil {
		t.Fatalf("%s fit: %v", m.Name(), err)
	}
	preds, err := m.Predict(test)
	if err != nil {
		t.Fatalf("%s predict: %v", m.Name(), err)
	}
	r, err := metrics.RMSE(test.Y, preds)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTemporalModelsBeatPersistenceOnARData(t *testing.T) {
	train, test := windowedAR(t, 8)
	base := persistenceRMSE(t, test)
	models := []core.Estimator{
		NewLSTMRegressor(false),
		NewCNNRegressor(false),
		NewWaveNetRegressor(),
		NewSeriesNetRegressor(),
	}
	for _, m := range models {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			rmse := fitScore(t, m, train, test)
			if rmse >= base {
				t.Fatalf("%s RMSE %v not better than persistence %v on AR data", m.Name(), rmse, base)
			}
		})
	}
}

func TestDeepVariantsTrain(t *testing.T) {
	train, test := windowedAR(t, 6)
	for _, m := range []core.Estimator{NewLSTMRegressor(true), NewCNNRegressor(true)} {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			if err := m.SetParam("epochs", 10); err != nil {
				t.Fatal(err)
			}
			rmse := fitScore(t, m, train, test)
			if rmse > 10*persistenceRMSE(t, test) {
				t.Fatalf("%s diverged: RMSE %v", m.Name(), rmse)
			}
		})
	}
}

func TestDNNOnFlatWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	series, err := sim.GenerateSeries(sim.SeriesSpec{Steps: 400, Vars: 1, Regime: sim.RegimeAR, Noise: 0.1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := tswindow.NewFlatWindowing(8, 1, 0).Transform(series)
	if err != nil {
		t.Fatal(err)
	}
	cut := flat.NumSamples() * 3 / 4
	train, test := flat.SliceRange(0, cut), flat.SliceRange(cut, flat.NumSamples())
	dnn := NewDNNRegressor(false)
	if err := dnn.SetParam("epochs", 80); err != nil {
		t.Fatal(err)
	}
	rmse := fitScore(t, dnn, train, test)
	// Flat windows retain history, so the DNN should do far better than
	// predicting the series mean.
	mean := 0.0
	for _, v := range train.Y {
		mean += v
	}
	mean /= float64(len(train.Y))
	meanPreds := make([]float64, test.NumSamples())
	for i := range meanPreds {
		meanPreds[i] = mean
	}
	meanRMSE, _ := metrics.RMSE(test.Y, meanPreds)
	if rmse >= meanRMSE*0.7 {
		t.Fatalf("DNN RMSE %v vs mean baseline %v", rmse, meanRMSE)
	}
}

func TestTemporalModelsRejectFlatInput(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	series, err := sim.GenerateSeries(sim.SeriesSpec{Steps: 100, Vars: 1, Regime: sim.RegimeAR}, rng)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := tswindow.NewFlatWindowing(6, 1, 0).Transform(series)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []core.Estimator{NewLSTMRegressor(false), NewCNNRegressor(false), NewWaveNetRegressor(), NewSeriesNetRegressor()} {
		err := m.Fit(flat)
		if err == nil {
			t.Fatalf("%s accepted flat input", m.Name())
		}
		if !strings.Contains(err.Error(), "cascaded-window") {
			t.Fatalf("%s error %q should mention cascaded windows", m.Name(), err)
		}
	}
}

func TestSetParamAndClone(t *testing.T) {
	models := []core.Estimator{
		NewDNNRegressor(false), NewDNNRegressor(true),
		NewLSTMRegressor(false), NewLSTMRegressor(true),
		NewCNNRegressor(false), NewCNNRegressor(true),
		NewWaveNetRegressor(), NewSeriesNetRegressor(),
	}
	seen := map[string]bool{}
	for _, m := range models {
		if seen[m.Name()] {
			t.Fatalf("duplicate model name %s", m.Name())
		}
		seen[m.Name()] = true
		if err := m.SetParam("epochs", 5); err != nil {
			t.Fatalf("%s SetParam(epochs): %v", m.Name(), err)
		}
		if err := m.SetParam("bogus", 1); err == nil {
			t.Fatalf("%s accepted bogus param", m.Name())
		}
		c := m.Clone()
		if c.Name() != m.Name() {
			t.Fatalf("clone renamed %s -> %s", m.Name(), c.Name())
		}
		if c.Params()["epochs"] != 5 {
			t.Fatalf("%s clone lost epochs", m.Name())
		}
		if _, err := c.Predict(&dataset.Dataset{}); err == nil {
			t.Fatalf("%s clone should be unfitted", m.Name())
		}
	}
}

func TestFitDeterministicForSeed(t *testing.T) {
	train, test := windowedAR(t, 6)
	run := func() []float64 {
		m := NewLSTMRegressor(false)
		if err := m.SetParam("epochs", 5); err != nil {
			t.Fatal(err)
		}
		if err := m.SetParam("seed", 7); err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(train); err != nil {
			t.Fatal(err)
		}
		p, err := m.Predict(test)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("identical seeds must give identical models")
		}
	}
}
