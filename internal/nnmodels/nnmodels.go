// Package nnmodels adapts the internal/nn substrate to core.Estimator,
// providing the paper's Section IV-C model zoo for the time-series
// prediction pipeline:
//
//   - Temporal models: LSTM (simple = 1 layer, deep = 4 stacked layers with
//     per-layer dropout), CNN (simple and deep 1-D convolutional nets),
//     WaveNet (stacked gated dilated causal convolutions) and SeriesNet
//     (WaveNet-derived residual dilated stacks). These consume cascaded
//     windows (WindowLen/NumVars metadata set by tswindow.CascadedWindows).
//   - IID models: standard DNNs (simple = 2 hidden layers, deep = 4),
//     consuming flat windows or TS-as-IID rows.
//
// All models train with Adam on mean squared error.
package nnmodels

import (
	"fmt"
	"math/rand"

	"coda/internal/core"
	"coda/internal/dataset"
	"coda/internal/nn"
)

// coreEstimator aliases the interface every adapter's Clone must return.
type coreEstimator = core.Estimator

// netConfig carries the hyperparameters shared by every network estimator.
type netConfig struct {
	Epochs  int     // training epochs (default 60)
	Batch   int     // mini-batch size (default 32)
	LR      float64 // Adam learning rate (default 0.01)
	Hidden  int     // hidden width / filter count (default 16)
	Dropout float64 // dropout rate (default 0.1)
	Seed    int64
}

func defaultConfig() netConfig {
	return netConfig{Epochs: 60, Batch: 32, LR: 0.01, Hidden: 16, Dropout: 0.1}
}

// setParam handles the shared hyperparameters; returns false for unknown keys.
func (c *netConfig) setParam(key string, v float64) bool {
	switch key {
	case "epochs":
		c.Epochs = int(v)
	case "batch":
		c.Batch = int(v)
	case "lr":
		c.LR = v
	case "hidden":
		c.Hidden = int(v)
	case "dropout":
		c.Dropout = v
	case "seed":
		c.Seed = int64(v)
	default:
		return false
	}
	return true
}

func (c *netConfig) params() map[string]float64 {
	return map[string]float64{
		"epochs": float64(c.Epochs), "batch": float64(c.Batch), "lr": c.LR,
		"hidden": float64(c.Hidden), "dropout": c.Dropout, "seed": float64(c.Seed),
	}
}

func errUnknownParam(model, key string) error {
	return fmt.Errorf("nnmodels: %s has no parameter %q", model, key)
}

// windowDims extracts and validates the (seqLen, channels) metadata that
// temporal estimators need from a cascaded-windows dataset.
func windowDims(model string, ds *dataset.Dataset) (seqLen, channels int, err error) {
	if ds.WindowLen <= 0 || ds.NumVars <= 0 {
		return 0, 0, fmt.Errorf("nnmodels: %s requires cascaded-window input (WindowLen/NumVars metadata); got a flat dataset — route it through tswindow.CascadedWindows", model)
	}
	if ds.NumFeatures() != ds.WindowLen*ds.NumVars {
		return 0, 0, fmt.Errorf("nnmodels: %s window metadata %dx%d inconsistent with %d columns", model, ds.WindowLen, ds.NumVars, ds.NumFeatures())
	}
	return ds.WindowLen, ds.NumVars, nil
}

func fitNetwork(net *nn.Network, ds *dataset.Dataset, cfg netConfig) error {
	return net.Fit(ds.X, ds.Y, nn.FitConfig{Epochs: cfg.Epochs, BatchSize: cfg.Batch, Seed: cfg.Seed})
}

// DNNRegressor is the paper's standard (IID) deep neural network: simple =
// two hidden layers with dropout, deep = four. It treats rows as flat
// feature vectors and so pairs with FlatWindowing or TSAsIID.
type DNNRegressor struct {
	Deep bool
	cfg  netConfig

	net *nn.Network
}

// NewDNNRegressor returns an unfitted DNN (simple or deep).
func NewDNNRegressor(deep bool) *DNNRegressor {
	return &DNNRegressor{Deep: deep, cfg: defaultConfig()}
}

// Name implements core.Component.
func (d *DNNRegressor) Name() string {
	if d.Deep {
		return "deepdnn"
	}
	return "dnn"
}

// SetParam implements core.Component.
func (d *DNNRegressor) SetParam(key string, v float64) error {
	if !d.cfg.setParam(key, v) {
		return errUnknownParam(d.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (d *DNNRegressor) Params() map[string]float64 { return d.cfg.params() }

// Clone implements core.Estimator.
func (d *DNNRegressor) Clone() coreEstimator { return &DNNRegressor{Deep: d.Deep, cfg: d.cfg} }

// Fit builds and trains the network.
func (d *DNNRegressor) Fit(ds *dataset.Dataset) error {
	if ds.Y == nil {
		return fmt.Errorf("nnmodels: %s requires targets", d.Name())
	}
	rng := rand.New(rand.NewSource(d.cfg.Seed))
	in := ds.NumFeatures()
	h := d.cfg.Hidden
	hiddenLayers := 2
	if d.Deep {
		hiddenLayers = 4
	}
	layers := make([]nn.Layer, 0, hiddenLayers*3+1)
	width := in
	for i := 0; i < hiddenLayers; i++ {
		layers = append(layers, nn.NewDense(width, h, rng), nn.NewReLU(), nn.NewDropout(d.cfg.Dropout, rng))
		width = h
	}
	layers = append(layers, nn.NewDense(width, 1, rng))
	d.net = nn.NewNetwork(nn.NewAdam(d.cfg.LR), layers...)
	if err := fitNetwork(d.net, ds, d.cfg); err != nil {
		return fmt.Errorf("nnmodels: %s fit: %w", d.Name(), err)
	}
	return nil
}

// Predict implements core.Estimator.
func (d *DNNRegressor) Predict(ds *dataset.Dataset) ([]float64, error) {
	if d.net == nil {
		return nil, fmt.Errorf("nnmodels: %s not fitted", d.Name())
	}
	return d.net.Predict(ds.X)
}

// LSTMRegressor is the paper's temporal LSTM model: simple = one LSTM layer
// plus dropout, deep = four stacked LSTM layers each followed by dropout.
// Both end in a fully-connected linear layer.
type LSTMRegressor struct {
	Deep bool
	cfg  netConfig

	net *nn.Network
}

// NewLSTMRegressor returns an unfitted LSTM model.
func NewLSTMRegressor(deep bool) *LSTMRegressor {
	c := defaultConfig()
	c.Hidden = 12
	return &LSTMRegressor{Deep: deep, cfg: c}
}

// Name implements core.Component.
func (l *LSTMRegressor) Name() string {
	if l.Deep {
		return "deeplstm"
	}
	return "lstm"
}

// SetParam implements core.Component.
func (l *LSTMRegressor) SetParam(key string, v float64) error {
	if !l.cfg.setParam(key, v) {
		return errUnknownParam(l.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (l *LSTMRegressor) Params() map[string]float64 { return l.cfg.params() }

// Clone implements core.Estimator.
func (l *LSTMRegressor) Clone() coreEstimator { return &LSTMRegressor{Deep: l.Deep, cfg: l.cfg} }

// Fit builds the recurrent stack from the window metadata and trains it.
func (l *LSTMRegressor) Fit(ds *dataset.Dataset) error {
	if ds.Y == nil {
		return fmt.Errorf("nnmodels: %s requires targets", l.Name())
	}
	seqLen, channels, err := windowDims(l.Name(), ds)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(l.cfg.Seed))
	h := l.cfg.Hidden
	var layers []nn.Layer
	if l.Deep {
		inSize := channels
		for i := 0; i < 3; i++ {
			lstm := nn.NewLSTM(seqLen, inSize, h, rng)
			lstm.ReturnSeq = true
			layers = append(layers, lstm, nn.NewDropout(l.cfg.Dropout, rng))
			inSize = h
		}
		layers = append(layers, nn.NewLSTM(seqLen, h, h, rng), nn.NewDropout(l.cfg.Dropout, rng))
	} else {
		layers = append(layers, nn.NewLSTM(seqLen, channels, h, rng), nn.NewDropout(l.cfg.Dropout, rng))
	}
	layers = append(layers, nn.NewDense(h, 1, rng))
	l.net = nn.NewNetwork(nn.NewAdam(l.cfg.LR), layers...)
	if err := fitNetwork(l.net, ds, l.cfg); err != nil {
		return fmt.Errorf("nnmodels: %s fit: %w", l.Name(), err)
	}
	return nil
}

// Predict implements core.Estimator.
func (l *LSTMRegressor) Predict(ds *dataset.Dataset) ([]float64, error) {
	if l.net == nil {
		return nil, fmt.Errorf("nnmodels: %s not fitted", l.Name())
	}
	if _, _, err := windowDims(l.Name(), ds); err != nil {
		return nil, err
	}
	return l.net.Predict(ds.X)
}

// CNNRegressor is the paper's 1-D convolutional model: a convolution, max
// pooling, a dense ReLU layer and a linear output; the deep variant stacks
// a second convolution-pool stage.
type CNNRegressor struct {
	Deep bool
	cfg  netConfig

	net *nn.Network
}

// NewCNNRegressor returns an unfitted CNN model.
func NewCNNRegressor(deep bool) *CNNRegressor {
	c := defaultConfig()
	c.Hidden = 8
	return &CNNRegressor{Deep: deep, cfg: c}
}

// Name implements core.Component.
func (c *CNNRegressor) Name() string {
	if c.Deep {
		return "deepcnn"
	}
	return "cnn"
}

// SetParam implements core.Component.
func (c *CNNRegressor) SetParam(key string, v float64) error {
	if !c.cfg.setParam(key, v) {
		return errUnknownParam(c.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (c *CNNRegressor) Params() map[string]float64 { return c.cfg.params() }

// Clone implements core.Estimator.
func (c *CNNRegressor) Clone() coreEstimator { return &CNNRegressor{Deep: c.Deep, cfg: c.cfg} }

// Fit builds the convolutional stack from the window metadata.
func (c *CNNRegressor) Fit(ds *dataset.Dataset) error {
	if ds.Y == nil {
		return fmt.Errorf("nnmodels: %s requires targets", c.Name())
	}
	seqLen, channels, err := windowDims(c.Name(), ds)
	if err != nil {
		return err
	}
	const kernel = 3
	if seqLen < kernel+1 {
		return fmt.Errorf("nnmodels: %s needs history >= %d, got %d", c.Name(), kernel+1, seqLen)
	}
	rng := rand.New(rand.NewSource(c.cfg.Seed))
	f := c.cfg.Hidden
	var layers []nn.Layer
	conv1 := nn.NewConv1D(seqLen, channels, f, kernel, 1, false, rng)
	layers = append(layers, conv1, nn.NewReLU())
	length := conv1.OutLen()
	if length >= 2 {
		pool := nn.NewMaxPool1D(length, f, 2)
		layers = append(layers, pool)
		length = pool.OutLen()
	}
	if c.Deep && length >= kernel+1 {
		conv2 := nn.NewConv1D(length, f, f, kernel, 1, false, rng)
		layers = append(layers, conv2, nn.NewReLU())
		length = conv2.OutLen()
		if length >= 2 {
			pool2 := nn.NewMaxPool1D(length, f, 2)
			layers = append(layers, pool2)
			length = pool2.OutLen()
		}
	}
	layers = append(layers,
		nn.NewDense(length*f, c.cfg.Hidden, rng), nn.NewReLU(),
		nn.NewDropout(c.cfg.Dropout, rng),
		nn.NewDense(c.cfg.Hidden, 1, rng),
	)
	c.net = nn.NewNetwork(nn.NewAdam(c.cfg.LR), layers...)
	if err := fitNetwork(c.net, ds, c.cfg); err != nil {
		return fmt.Errorf("nnmodels: %s fit: %w", c.Name(), err)
	}
	return nil
}

// Predict implements core.Estimator.
func (c *CNNRegressor) Predict(ds *dataset.Dataset) ([]float64, error) {
	if c.net == nil {
		return nil, fmt.Errorf("nnmodels: %s not fitted", c.Name())
	}
	if _, _, err := windowDims(c.Name(), ds); err != nil {
		return nil, err
	}
	return c.net.Predict(ds.X)
}

// WaveNetRegressor stacks gated dilated causal convolutions (dilations 1,
// 2, 4) with residual connections — the probabilistic-audio architecture
// the paper adopts for time-series prediction — followed by a linear head
// on the final timestep.
type WaveNetRegressor struct {
	cfg netConfig

	net *nn.Network
}

// NewWaveNetRegressor returns an unfitted WaveNet model.
func NewWaveNetRegressor() *WaveNetRegressor {
	c := defaultConfig()
	c.Hidden = 8
	return &WaveNetRegressor{cfg: c}
}

// Name implements core.Component.
func (w *WaveNetRegressor) Name() string { return "wavenet" }

// SetParam implements core.Component.
func (w *WaveNetRegressor) SetParam(key string, v float64) error {
	if !w.cfg.setParam(key, v) {
		return errUnknownParam(w.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (w *WaveNetRegressor) Params() map[string]float64 { return w.cfg.params() }

// Clone implements core.Estimator.
func (w *WaveNetRegressor) Clone() coreEstimator { return &WaveNetRegressor{cfg: w.cfg} }

// Fit builds the gated dilated stack.
func (w *WaveNetRegressor) Fit(ds *dataset.Dataset) error {
	if ds.Y == nil {
		return fmt.Errorf("nnmodels: %s requires targets", w.Name())
	}
	seqLen, channels, err := windowDims(w.Name(), ds)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(w.cfg.Seed))
	f := w.cfg.Hidden
	layers := []nn.Layer{
		// 1x1 causal conv lifts the input channels to the block width.
		nn.NewConv1D(seqLen, channels, f, 1, 1, true, rng),
	}
	for _, dilation := range []int{1, 2, 4} {
		layers = append(layers, nn.NewGatedResidualBlock(seqLen, f, 2, dilation, rng))
	}
	layers = append(layers, nn.NewLastTimestep(seqLen, f), nn.NewDense(f, 1, rng))
	w.net = nn.NewNetwork(nn.NewAdam(w.cfg.LR), layers...)
	if err := fitNetwork(w.net, ds, w.cfg); err != nil {
		return fmt.Errorf("nnmodels: %s fit: %w", w.Name(), err)
	}
	return nil
}

// Predict implements core.Estimator.
func (w *WaveNetRegressor) Predict(ds *dataset.Dataset) ([]float64, error) {
	if w.net == nil {
		return nil, fmt.Errorf("nnmodels: %s not fitted", w.Name())
	}
	if _, _, err := windowDims(w.Name(), ds); err != nil {
		return nil, err
	}
	return w.net.Predict(ds.X)
}

// SeriesNetRegressor is the WaveNet-derived architecture of Section IV-C2:
// residual dilated causal convolution blocks (dilations 1, 2, 4, 8) with
// ReLU activations and linear skip projections, requiring no data
// preprocessing beyond windowing.
type SeriesNetRegressor struct {
	cfg netConfig

	net *nn.Network
}

// NewSeriesNetRegressor returns an unfitted SeriesNet model.
func NewSeriesNetRegressor() *SeriesNetRegressor {
	c := defaultConfig()
	c.Hidden = 8
	return &SeriesNetRegressor{cfg: c}
}

// Name implements core.Component.
func (s *SeriesNetRegressor) Name() string { return "seriesnet" }

// SetParam implements core.Component.
func (s *SeriesNetRegressor) SetParam(key string, v float64) error {
	if !s.cfg.setParam(key, v) {
		return errUnknownParam(s.Name(), key)
	}
	return nil
}

// Params implements core.Component.
func (s *SeriesNetRegressor) Params() map[string]float64 { return s.cfg.params() }

// Clone implements core.Estimator.
func (s *SeriesNetRegressor) Clone() coreEstimator { return &SeriesNetRegressor{cfg: s.cfg} }

// Fit builds the residual dilated stack.
func (s *SeriesNetRegressor) Fit(ds *dataset.Dataset) error {
	if ds.Y == nil {
		return fmt.Errorf("nnmodels: %s requires targets", s.Name())
	}
	seqLen, channels, err := windowDims(s.Name(), ds)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	f := s.cfg.Hidden
	layers := []nn.Layer{
		nn.NewConv1D(seqLen, channels, f, 1, 1, true, rng),
	}
	for _, dilation := range []int{1, 2, 4, 8} {
		layers = append(layers, nn.NewResidualConvBlock(seqLen, f, 2, dilation, rng))
	}
	layers = append(layers, nn.NewLastTimestep(seqLen, f), nn.NewDense(f, 1, rng))
	s.net = nn.NewNetwork(nn.NewAdam(s.cfg.LR), layers...)
	if err := fitNetwork(s.net, ds, s.cfg); err != nil {
		return fmt.Errorf("nnmodels: %s fit: %w", s.Name(), err)
	}
	return nil
}

// Predict implements core.Estimator.
func (s *SeriesNetRegressor) Predict(ds *dataset.Dataset) ([]float64, error) {
	if s.net == nil {
		return nil, fmt.Errorf("nnmodels: %s not fitted", s.Name())
	}
	if _, _, err := windowDims(s.Name(), ds); err != nil {
		return nil, err
	}
	return s.net.Predict(ds.X)
}
